// Wire frame codec (net/wire.h): the byte-level skeleton of the
// cross-process runtime.  The load-bearing property mirrors the store
// codec's: the decoder is TOTAL and RESYNCHRONIZING.  For ANY byte stream —
// truncation at an arbitrary byte, a flipped header bit, pure garbage,
// valid frames embedded in noise — FrameDecoder never throws, never reads
// past what was fed, and recovers every intact frame that follows the
// damage, counting exactly what the damage cost (crc_drops, resyncs,
// junk_bytes).
#include "udc/net/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "udc/common/check.h"
#include "udc/common/rng.h"

namespace udc {
namespace {

std::vector<std::uint8_t> bytes_of(const WireFrame& f) {
  return encode_frame(f.type, f.payload);
}

WireData sample_data() {
  WireData d;
  d.from = 1;
  d.to = 2;
  d.seq = 9;
  d.send_tick = 41;
  d.clock = 43;
  d.msg.kind = MsgKind::kAlpha;
  d.msg.action = 7;
  d.acks = {3, 4, 5};
  return d;
}

// Feed a buffer one byte at a time, draining after each feed, and return
// every frame decoded.  Exercises the reassembly path: no decode may ever
// depend on a frame arriving in one read.
std::vector<WireFrame> drip_decode(FrameDecoder& dec,
                                   const std::vector<std::uint8_t>& buf) {
  std::vector<WireFrame> out;
  for (std::uint8_t b : buf) {
    dec.feed(&b, 1);
    while (auto f = dec.next()) out.push_back(std::move(*f));
  }
  return out;
}

// --- frame round trips ----------------------------------------------------

TEST(WireFrame, RoundTripsEveryFrameType) {
  for (std::uint8_t t = 1; t <= kMaxFrameType; ++t) {
    WireFrame f;
    f.type = static_cast<FrameType>(t);
    f.payload = {0xDE, 0xAD, static_cast<std::uint8_t>(t)};
    FrameDecoder dec;
    std::vector<std::uint8_t> enc = bytes_of(f);
    ASSERT_EQ(enc.size(), kWireHeaderBytes + f.payload.size());
    dec.feed(enc.data(), enc.size());
    auto back = dec.next();
    ASSERT_TRUE(back.has_value()) << int(t);
    EXPECT_EQ(back->type, f.type);
    EXPECT_EQ(back->payload, f.payload);
    EXPECT_FALSE(dec.next().has_value());
    EXPECT_EQ(dec.counters().frames, 1u);
    EXPECT_EQ(dec.counters().crc_drops, 0u);
    EXPECT_EQ(dec.counters().resyncs, 0u);
  }
}

TEST(WireFrame, EmptyPayloadAndSingleByteFeedsDecode) {
  WireFrame f;
  f.type = FrameType::kPing;
  FrameDecoder dec;
  std::vector<WireFrame> got = drip_decode(dec, bytes_of(f));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].type, FrameType::kPing);
  EXPECT_TRUE(got[0].payload.empty());
}

TEST(WireFrame, OversizePayloadIsACallerBug) {
  std::vector<std::uint8_t> big(kMaxWirePayload + 1, 0);
  EXPECT_THROW(encode_frame(FrameType::kData, big.data(), big.size()),
               InvariantViolation);
  // At the cap itself it must succeed: the bound is inclusive.
  std::vector<std::uint8_t> cap(kMaxWirePayload, 0);
  EXPECT_NO_THROW(encode_frame(FrameType::kData, cap.data(), cap.size()));
}

// --- truncation -----------------------------------------------------------

TEST(WireFrame, TruncationAtEveryPointYieldsNothingAndNoCrash) {
  WireFrame f;
  f.type = FrameType::kData;
  f.payload = encode_data(sample_data());
  std::vector<std::uint8_t> enc = bytes_of(f);
  for (std::size_t len = 0; len < enc.size(); ++len) {
    FrameDecoder dec;
    dec.feed(enc.data(), len);
    EXPECT_FALSE(dec.next().has_value()) << "cut at " << len;
    EXPECT_EQ(dec.counters().frames, 0u) << "cut at " << len;
    EXPECT_EQ(dec.buffered(), len);
  }
}

TEST(WireFrame, FrameCutMidStreamCompletesWhenTheRestArrives) {
  WireFrame f;
  f.type = FrameType::kStatus;
  f.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::uint8_t> enc = bytes_of(f);
  for (std::size_t cut = 1; cut < enc.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(enc.data(), cut);
    ASSERT_FALSE(dec.next().has_value());
    dec.feed(enc.data() + cut, enc.size() - cut);
    auto back = dec.next();
    ASSERT_TRUE(back.has_value()) << "cut at " << cut;
    EXPECT_EQ(back->payload, f.payload);
  }
}

TEST(WireFrame, ResetDropsThePartialFrame) {
  WireFrame f;
  f.type = FrameType::kData;
  f.payload = {9, 9, 9};
  std::vector<std::uint8_t> enc = bytes_of(f);
  FrameDecoder dec;
  dec.feed(enc.data(), enc.size() - 1);  // almost a whole frame
  dec.reset();                           // connection died; new stream
  EXPECT_EQ(dec.buffered(), 0u);
  dec.feed(enc.data(), enc.size());
  ASSERT_TRUE(dec.next().has_value());
  EXPECT_EQ(dec.counters().frames, 1u);
}

// --- corruption + resync --------------------------------------------------

// Flip each bit of each header byte in turn; the damaged frame must never
// surface, and a pristine frame following it must always be recovered.
TEST(WireFrame, HeaderBitFlipsDropTheFrameAndResyncToTheNext) {
  WireFrame f;
  f.type = FrameType::kData;
  f.payload = encode_data(sample_data());
  std::vector<std::uint8_t> good = bytes_of(f);
  WireFrame tail;
  tail.type = FrameType::kPong;
  tail.payload = {0x55};
  std::vector<std::uint8_t> tail_enc = bytes_of(tail);

  for (std::size_t byte = 0; byte < kWireHeaderBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> stream = good;
      stream[byte] ^= static_cast<std::uint8_t>(1u << bit);
      stream.insert(stream.end(), tail_enc.begin(), tail_enc.end());

      FrameDecoder dec;
      dec.feed(stream.data(), stream.size());
      std::vector<WireFrame> got;
      while (auto fr = dec.next()) got.push_back(std::move(*fr));

      if (got.empty()) {
        // A flipped LENGTH byte can inflate the claimed payload within the
        // cap: on a live stream the decoder legitimately waits for the
        // phantom bytes, holding the tail hostage.  Feed filler until the
        // phantom frame completes and fails its CRC — the rescan then finds
        // the original tail inside the released bytes (or, if the phantom
        // consumed it, a freshly fed one).
        std::vector<std::uint8_t> filler(kMaxWirePayload, 0);
        dec.feed(filler.data(), filler.size());
        while (auto fr = dec.next()) got.push_back(std::move(*fr));
        if (got.empty()) {
          dec.feed(tail_enc.data(), tail_enc.size());
          while (auto fr = dec.next()) got.push_back(std::move(*fr));
        }
      }

      ASSERT_EQ(got.size(), 1u) << "byte " << byte << " bit " << bit;
      EXPECT_EQ(got[0].type, FrameType::kPong);
      EXPECT_EQ(got[0].payload, tail.payload);
      // The corruption must be accounted for somewhere: either the CRC
      // caught an accepted header, or the resync scanner skipped bytes.
      const WireDecodeCounters& c = dec.counters();
      EXPECT_GT(c.crc_drops + c.resyncs, 0u)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(WireFrame, PayloadCorruptionIsACrcDrop) {
  WireFrame f;
  f.type = FrameType::kData;
  f.payload = encode_data(sample_data());
  std::vector<std::uint8_t> enc = bytes_of(f);
  enc[kWireHeaderBytes + 3] ^= 0x40;  // one payload bit
  FrameDecoder dec;
  dec.feed(enc.data(), enc.size());
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_GE(dec.counters().crc_drops, 1u);
}

TEST(WireFrame, LeadingGarbageIsSkippedAndCounted) {
  std::vector<std::uint8_t> stream = {0x00, 0x01, 0x02, 0xFF, 0xFE};
  const std::size_t junk = stream.size();
  WireFrame f;
  f.type = FrameType::kHello;
  f.payload = {7};
  std::vector<std::uint8_t> enc = bytes_of(f);
  stream.insert(stream.end(), enc.begin(), enc.end());

  FrameDecoder dec;
  dec.feed(stream.data(), stream.size());
  auto back = dec.next();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, FrameType::kHello);
  EXPECT_GE(dec.counters().junk_bytes, junk);
  EXPECT_GE(dec.counters().resyncs, 1u);
}

// A magic pair INSIDE garbage must not fool the decoder into emitting a
// frame: the CRC rejects it and the scan continues to the real one.
TEST(WireFrame, FakeMagicInsideGarbageDoesNotYieldAFrame) {
  std::vector<std::uint8_t> stream = {kWireMagic0, kWireMagic1, 0x77, 0x66,
                                      0x05, 0x00,  0x00,        0x00,
                                      0x01, 0x02,  0x03,        0x04};
  WireFrame f;
  f.type = FrameType::kAck;
  f.payload = {1, 2};
  std::vector<std::uint8_t> enc = bytes_of(f);
  stream.insert(stream.end(), enc.begin(), enc.end());

  FrameDecoder dec;
  std::vector<WireFrame> got = drip_decode(dec, stream);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].type, FrameType::kAck);
  EXPECT_EQ(got[0].payload, f.payload);
}

TEST(WireFrame, RandomGarbageFuzzNeverThrowsOrEmits) {
  Rng rng(0xF022);  // fixed seed
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<std::uint8_t> junk(257);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next() & 0xFF);
    FrameDecoder dec;
    dec.feed(junk.data(), junk.size());
    int frames = 0;
    while (dec.next().has_value()) ++frames;
    // A random 257-byte blob yielding a CRC-valid frame is ~2^-32 per
    // candidate; treat any emission as a failure.
    EXPECT_EQ(frames, 0) << "trial " << trial;
  }
}

TEST(WireFrame, FramesInterleavedWithGarbageAllRecovered) {
  Rng rng(2024);
  std::vector<std::uint8_t> stream;
  const int kFrames = 16;
  for (int i = 0; i < kFrames; ++i) {
    // garbage gap
    std::size_t gap = rng.next() % 9;
    for (std::size_t g = 0; g < gap; ++g) {
      stream.push_back(static_cast<std::uint8_t>(rng.next() & 0xFF));
    }
    WireFrame f;
    f.type = FrameType::kData;
    WireData d = sample_data();
    d.seq = static_cast<std::uint64_t>(i);
    f.payload = encode_data(d);
    std::vector<std::uint8_t> enc = bytes_of(f);
    stream.insert(stream.end(), enc.begin(), enc.end());
  }
  FrameDecoder dec;
  std::vector<WireFrame> got = drip_decode(dec, stream);
  // Garbage immediately before a frame can at worst eat THAT frame (if the
  // junk happens to parse as a plausible header consuming real bytes, those
  // bytes are lost — suffix-loss at the frame level), but the explicit
  // resync must recover the stream: most frames survive.
  EXPECT_GE(got.size(), static_cast<std::size_t>(kFrames - 4));
  for (const WireFrame& f : got) {
    auto d = decode_data(f.payload.data(), f.payload.size());
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->from, 1);
  }
}

// --- payload envelope codecs ---------------------------------------------

TEST(WireEnvelope, HelloRoundTrip) {
  WireHello h;
  h.id = 2;
  h.n = 5;
  h.epoch = 3;
  h.run_id = 0xABCDEF0123456789ull;
  h.data_port = 54321;
  std::vector<std::uint8_t> enc = encode_hello(h);
  auto back = decode_hello(enc.data(), enc.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, h);
}

TEST(WireEnvelope, DataRoundTripAllMessageKinds) {
  for (std::uint8_t k = 0; k <= static_cast<std::uint8_t>(MsgKind::kRejoin);
       ++k) {
    WireData d = sample_data();
    d.msg.kind = static_cast<MsgKind>(k);
    d.msg.procs = ProcSet::full(4);
    d.msg.a = -17;
    d.msg.b = 1'234'567'890'123LL;
    std::vector<std::uint8_t> enc = encode_data(d);
    auto back = decode_data(enc.data(), enc.size());
    ASSERT_TRUE(back.has_value()) << int(k);
    EXPECT_EQ(*back, d);
  }
}

TEST(WireEnvelope, StatusRoundTripWithCountersAndFlags) {
  WireStatus s;
  s.id = 1;
  s.epoch = 4;
  s.clock = 999;
  s.durable_events = 123;
  s.inits = {5, 9};
  s.performs = {5};
  s.counters = {1, 2, 3, 0, 0, 7};
  s.done = true;
  std::vector<std::uint8_t> enc = encode_status(s);
  auto back = decode_status(enc.data(), enc.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);
}

TEST(WireEnvelope, AckInitPeersRoundTrip) {
  WireAck a;
  a.from = 0;
  a.to = 2;
  a.seqs = {1, 2, 1000000};
  auto ea = encode_ack(a);
  auto ba = decode_ack(ea.data(), ea.size());
  ASSERT_TRUE(ba.has_value());
  EXPECT_EQ(*ba, a);

  WireInit i;
  i.action = 42;
  auto ei = encode_init(i);
  auto bi = decode_init(ei.data(), ei.size());
  ASSERT_TRUE(bi.has_value());
  EXPECT_EQ(*bi, i);

  WirePeers p;
  p.ports = {{0, 1111}, {1, 2222}, {2, 0}};
  auto ep = encode_peers(p);
  auto bp = decode_peers(ep.data(), ep.size());
  ASSERT_TRUE(bp.has_value());
  EXPECT_EQ(*bp, p);
}

// Every envelope decoder is total: truncation at every byte yields nullopt,
// and one trailing byte is rejected (no silent over-read, no silent slack).
TEST(WireEnvelope, DecodersAreTotalOnTruncationAndTrailingBytes) {
  WireHello h;
  h.id = 1;
  h.n = 3;
  h.epoch = 2;
  h.run_id = 77;
  h.data_port = 4242;
  WireStatus s;
  s.id = 0;
  s.inits = {1};
  s.counters = {9, 8};
  WireAck a;
  a.from = 1;
  a.to = 0;
  a.seqs = {3};
  WirePeers p;
  p.ports = {{1, 9}};
  WireInit ini;
  ini.action = 6;

  auto check_total = [](std::vector<std::uint8_t> enc, auto decoder) {
    for (std::size_t len = 0; len < enc.size(); ++len) {
      EXPECT_FALSE(decoder(enc.data(), len).has_value()) << len;
    }
    enc.push_back(0);
    EXPECT_FALSE(decoder(enc.data(), enc.size()).has_value());
  };
  check_total(encode_hello(h), [](const std::uint8_t* d, std::size_t l) {
    return decode_hello(d, l);
  });
  check_total(encode_data(sample_data()),
              [](const std::uint8_t* d, std::size_t l) {
                return decode_data(d, l);
              });
  check_total(encode_status(s), [](const std::uint8_t* d, std::size_t l) {
    return decode_status(d, l);
  });
  check_total(encode_ack(a), [](const std::uint8_t* d, std::size_t l) {
    return decode_ack(d, l);
  });
  check_total(encode_init(ini), [](const std::uint8_t* d, std::size_t l) {
    return decode_init(d, l);
  });
  check_total(encode_peers(p), [](const std::uint8_t* d, std::size_t l) {
    return decode_peers(d, l);
  });
}

TEST(WireEnvelope, DataEnvelopeFuzzIsTotal) {
  Rng rng(7777);
  for (int trial = 0; trial < 256; ++trial) {
    std::vector<std::uint8_t> junk(rng.next() % 64);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next() & 0xFF);
    // Must not throw; may or may not decode.
    (void)decode_data(junk.data(), junk.size());
    (void)decode_status(junk.data(), junk.size());
    (void)decode_hello(junk.data(), junk.size());
  }
}

}  // namespace
}  // namespace udc
