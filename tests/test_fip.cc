// The full-information protocol variant (coord/udc_fip.h): UDC preserved,
// knowledge spreads along every message chain, A4 coverage rises.
#include "udc/coord/udc_fip.h"

#include <gtest/gtest.h>

#include "udc/coord/action.h"
#include "udc/coord/spec.h"
#include "udc/fd/oracle.h"
#include "udc/kt/assumptions.h"
#include "udc/logic/eval.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

constexpr int kN = 4;
constexpr Time kHorizon = 500;
constexpr Time kGrace = 180;

System fip_system(bool fip, double drop, Time horizon = kHorizon,
                  bool power_set = false) {
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = horizon;
  cfg.channel.drop_prob = drop;
  cfg.seed = 8;
  auto workload = make_workload(kN, 1, 5, 7);
  auto plans = all_crash_plans_up_to(kN, kN - 1, 25, 120);
  ProtocolFactory protocol =
      fip ? ProtocolFactory([](ProcessId) {
        return std::make_unique<FipUdcProcess>();
      })
          : ProtocolFactory([](ProcessId) {
              return std::make_unique<UdcStrongFdProcess>();
            });
  if (power_set) {
    auto workloads = workload_power_set(workload);
    return generate_system_multi(
        cfg, plans, workloads,
        [] { return std::make_unique<PerfectOracle>(4); }, protocol, 1);
  }
  return generate_system(cfg, plans, workload,
                         [] { return std::make_unique<PerfectOracle>(4); },
                         protocol, 2);
}

TEST(Fip, StillAttainsUdc) {
  System sys = fip_system(true, 0.3);
  auto workload = make_workload(kN, 1, 5, 7);
  auto actions = workload_actions(workload);
  CoordReport rep = check_udc(sys, actions, kGrace);
  EXPECT_TRUE(rep.achieved())
      << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST(Fip, GossipNeverFabricatesInitiation) {
  // DC3 across the sweep: every performed action traces to a real init,
  // even though processes now also act on second-hand gossip.
  System sys = fip_system(true, 0.4);
  auto workload = make_workload(kN, 1, 5, 7);
  auto actions = workload_actions(workload);
  EXPECT_TRUE(check_udc(sys, actions, kGrace).dc3);
}

TEST(Fip, KnowledgeSpreadsBeyondAlphaTraffic) {
  // In the plain protocol a process can only learn of α from α's own
  // messages; under FIP the init rides every gossip slot.  Measure: the
  // number of (process, action, time) points where knowledge holds is
  // strictly larger under FIP on the same seeds.
  auto count_knowledge = [](System& sys,
                            const std::vector<InitDirective>& workload) {
    ModelChecker mc(sys);
    int count = 0;
    for (std::size_t i = 0; i < sys.size(); ++i) {
      for (const InitDirective& d : workload) {
        for (ProcessId q = 0; q < kN; ++q) {
          if (q == d.p) continue;
          for (Time m = 0; m <= sys.run(i).horizon(); m += 25) {
            if (mc.holds_at(Point{i, m},
                            f_knows(q, f_init(d.p, d.action)))) {
              ++count;
            }
          }
        }
      }
    }
    return count;
  };
  auto workload = make_workload(kN, 1, 5, 7);
  System plain = fip_system(false, 0.3, 260, /*power_set=*/true);
  System fip = fip_system(true, 0.3, 260, /*power_set=*/true);
  int plain_count = count_knowledge(plain, workload);
  int fip_count = count_knowledge(fip, workload);
  EXPECT_GT(fip_count, plain_count);
  EXPECT_GT(plain_count, 0);
}

TEST(Fip, A4CoverageAtLeastAsGood) {
  auto workload = make_workload(kN, 1, 5, 7);
  auto actions = workload_actions(workload);
  System plain = fip_system(false, 0.3, 200, /*power_set=*/true);
  System fip = fip_system(true, 0.3, 200, /*power_set=*/true);
  AssumptionReport plain_a4 = check_a4(plain, actions, 20);
  AssumptionReport fip_a4 = check_a4(fip, actions, 20);
  EXPECT_GE(fip_a4.coverage() + 0.05, plain_a4.coverage())
      << "fip " << fip_a4.satisfied << "/" << fip_a4.checked << " vs plain "
      << plain_a4.satisfied << "/" << plain_a4.checked;
  // Absolute coverage is bounded by witness scarcity (clause (b) needs
  // crash-truncated twins at exactly the right times, and each faulty set
  // carries one crash schedule here); the comparative claim above is the
  // substantive one.
  EXPECT_GT(fip_a4.coverage(), 0.7);
}

}  // namespace
}  // namespace udc
