// The §2.3 language and its model checker, on hand-built miniature systems
// where every truth value can be computed by inspection.
#include "udc/logic/eval.h"

#include <gtest/gtest.h>

#include "udc/logic/formula.h"

namespace udc {
namespace {

// System of two 2-process runs over 3 steps:
//   run 0: p0 inits α1 at t=1, does α1 at t=2; p1 idle.
//   run 1: p0 idle;                            p1 crashes at t=2.
System mini_system() {
  std::vector<udc::Run> runs;
  {
    Run::Builder b(2);
    b.append(0, Event::init(1)).end_step();
    b.append(0, Event::do_action(1)).end_step();
    b.end_step();
    runs.push_back(std::move(b).build());
  }
  {
    Run::Builder b(2);
    b.end_step();
    b.append(1, Event::crash()).end_step();
    b.end_step();
    runs.push_back(std::move(b).build());
  }
  return System(std::move(runs));
}

TEST(Logic, PrimitivesFollowCuts) {
  System sys = mini_system();
  ModelChecker mc(sys);
  EXPECT_FALSE(mc.holds_at(Point{0, 0}, f_init(0, 1)));
  EXPECT_TRUE(mc.holds_at(Point{0, 1}, f_init(0, 1)));
  EXPECT_TRUE(mc.holds_at(Point{0, 3}, f_init(0, 1)));  // stable
  EXPECT_FALSE(mc.holds_at(Point{0, 1}, f_do(0, 1)));
  EXPECT_TRUE(mc.holds_at(Point{0, 2}, f_do(0, 1)));
  EXPECT_FALSE(mc.holds_at(Point{1, 1}, f_crash(1)));
  EXPECT_TRUE(mc.holds_at(Point{1, 2}, f_crash(1)));
}

TEST(Logic, BooleanConnectives) {
  System sys = mini_system();
  ModelChecker mc(sys);
  Point at{0, 1};
  auto t = f_init(0, 1);   // true at (0,1)
  auto f = f_do(0, 1);     // false at (0,1)
  EXPECT_TRUE(mc.holds_at(at, f_not(f)));
  EXPECT_FALSE(mc.holds_at(at, f_not(t)));
  EXPECT_TRUE(mc.holds_at(at, f_or(t, f)));
  EXPECT_FALSE(mc.holds_at(at, f_and(t, f)));
  EXPECT_TRUE(mc.holds_at(at, f_implies(f, t)));
  EXPECT_TRUE(mc.holds_at(at, f_implies(f, f)));  // ex falso
  EXPECT_FALSE(mc.holds_at(at, f_implies(t, f)));
  EXPECT_TRUE(mc.holds_at(at, Formula::truth()));
}

TEST(Logic, TemporalOperators) {
  System sys = mini_system();
  ModelChecker mc(sys);
  // ◇do_0(α1) holds from the start of run 0 but never in run 1.
  EXPECT_TRUE(mc.holds_at(Point{0, 0}, f_eventually(f_do(0, 1))));
  EXPECT_FALSE(mc.holds_at(Point{1, 0}, f_eventually(f_do(0, 1))));
  // □init_0(α1) holds from t=1 in run 0 (stable primitive), not at t=0.
  EXPECT_TRUE(mc.holds_at(Point{0, 1}, f_always(f_init(0, 1))));
  EXPECT_FALSE(mc.holds_at(Point{0, 0}, f_always(f_init(0, 1))));
  // ◇ is the dual of □.
  EXPECT_TRUE(mc.holds_at(Point{0, 0},
                          f_not(f_always(f_not(f_do(0, 1))))));
}

TEST(Logic, KnowledgeQuantifiesOverIndistinguishablePoints) {
  System sys = mini_system();
  ModelChecker mc(sys);
  // At (1,2), p0's history is empty — p0 cannot rule out run 0 at t=0, so
  // it does not know crash(1).
  EXPECT_TRUE(mc.holds_at(Point{1, 2}, f_crash(1)));
  EXPECT_FALSE(mc.holds_at(Point{1, 2}, f_knows(0, f_crash(1))));
  // p0 knows its own init as soon as it happens (local formula).
  EXPECT_TRUE(mc.holds_at(Point{0, 1}, f_knows(0, f_init(0, 1))));
  // p1 never learns of the init in this system: no messages flow.
  EXPECT_FALSE(mc.holds_at(Point{0, 3}, f_knows(1, f_init(0, 1))));
  // Knowledge is veridical: K_p phi -> phi, everywhere.
  EXPECT_TRUE(mc.valid(f_implies(f_knows(0, f_init(0, 1)), f_init(0, 1))));
}

TEST(Logic, KnowledgeIntrospection) {
  System sys = mini_system();
  ModelChecker mc(sys);
  auto phi = f_init(0, 1);
  // Positive introspection K0 phi -> K0 K0 phi is valid in S5.
  EXPECT_TRUE(mc.valid(
      f_implies(f_knows(0, phi), f_knows(0, f_knows(0, phi)))));
  // And locality of knowledge: K0 phi ∨ K0 ¬(K0 phi)... the classic
  // K_p(K_p phi) ∨ K_p(¬K_p phi) validity.
  EXPECT_TRUE(mc.valid(f_or(f_knows(0, f_knows(0, phi)),
                            f_knows(0, f_not(f_knows(0, phi))))));
}

TEST(Logic, DistributedKnowledge) {
  System sys = mini_system();
  ModelChecker mc(sys);
  // p0 alone distinguishes the runs via its init; the group {p0, p1}
  // therefore has distributed knowledge of init wherever p0 knows it.
  ProcSet both = ProcSet::full(2);
  EXPECT_TRUE(
      mc.holds_at(Point{0, 1}, Formula::dist_knows(both, f_init(0, 1))));
  // D_S is at least as strong as any single member's knowledge:
  EXPECT_TRUE(mc.valid(f_implies(f_knows(1, f_crash(1)),
                                 Formula::dist_knows(both, f_crash(1)))));
}

TEST(Logic, ValidAndCounterexample) {
  System sys = mini_system();
  ModelChecker mc(sys);
  EXPECT_TRUE(mc.valid(f_implies(f_do(0, 1), f_init(0, 1))));  // DC3-ish
  auto bad = f_init(0, 1);
  auto cex = mc.find_counterexample(bad);
  ASSERT_TRUE(cex.has_value());
  EXPECT_FALSE(mc.holds_at(*cex, bad));
}

TEST(Logic, CacheIsConsistentAcrossQueries) {
  System sys = mini_system();
  ModelChecker mc(sys);
  auto phi = f_eventually(f_do(0, 1));
  bool first = mc.holds_at(Point{0, 0}, phi);
  std::size_t entries = mc.cache_entries();
  bool second = mc.holds_at(Point{0, 0}, phi);
  EXPECT_EQ(first, second);
  EXPECT_EQ(mc.cache_entries(), entries);  // fully memoized
}

TEST(Logic, FormulaToString) {
  auto phi = f_implies(f_knows(0, f_init(0, 1)),
                       f_eventually(f_or(f_do(1, 1), f_crash(1))));
  std::string s = phi->to_string();
  EXPECT_NE(s.find("K0"), std::string::npos);
  EXPECT_NE(s.find("◇"), std::string::npos);
  EXPECT_NE(s.find("crash(1)"), std::string::npos);
}

}  // namespace
}  // namespace udc
