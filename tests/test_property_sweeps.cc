// Parameterized property sweeps (TEST_P): protocol correctness across the
// (n, drop, detector) grid, structural run invariants under randomized
// protocols, and epistemic laws on generated systems.
#include <gtest/gtest.h>

#include "udc/common/rng.h"
#include "udc/coord/action.h"
#include "udc/coord/nudc_protocol.h"
#include "udc/coord/spec.h"
#include "udc/coord/udc_generalized.h"
#include "udc/coord/udc_atd.h"
#include "udc/coord/udc_fip.h"
#include "udc/coord/udc_majority.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/atd.h"
#include "udc/event/fairness.h"
#include "udc/fd/generalized.h"
#include "udc/fd/oracle.h"
#include "udc/fd/properties.h"
#include "udc/kt/knowledge_fd.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

// ---------------------------------------------------------------------------
// Sweep 1: UDC protocols across (n, drop).
// ---------------------------------------------------------------------------
struct UdcSweepParam {
  int n;
  double drop;
  const char* detector;  // "perfect" | "strong" | "t-useful"
};

inline bool det_is_majority(const char* d) {
  return std::string(d) == "majority";
}

class UdcGrid : public ::testing::TestWithParam<UdcSweepParam> {};

TEST_P(UdcGrid, AchievesUdcAcrossCrashPlans) {
  const UdcSweepParam param = GetParam();
  SimConfig cfg;
  cfg.n = param.n;
  cfg.horizon = param.drop >= 0.5 ? 800 : 500;
  cfg.channel.drop_prob = param.drop;
  const Time grace = param.drop >= 0.5 ? 300 : 180;
  auto workload = make_workload(param.n, 1, 5, 7);
  auto actions = workload_actions(workload);
  int t = det_is_majority(param.detector) ? (param.n - 1) / 2 : param.n - 1;
  auto plans = all_crash_plans_up_to(param.n, t, 25, 120);

  OracleFactory oracle;
  ProtocolFactory protocol;
  std::string det = param.detector;
  if (det == "perfect") {
    oracle = [] { return std::make_unique<PerfectOracle>(4); };
    protocol = [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); };
  } else if (det == "strong") {
    oracle = [] { return std::make_unique<StrongOracle>(4, 0.2); };
    protocol = [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); };
  } else if (det == "fip") {
    oracle = [] { return std::make_unique<PerfectOracle>(4); };
    protocol = [](ProcessId) { return std::make_unique<FipUdcProcess>(); };
  } else if (det == "atd") {
    oracle = [] { return std::make_unique<AtdOracle>(6); };
    protocol = [](ProcessId) { return std::make_unique<UdcAtdProcess>(); };
  } else if (det == "majority") {
    oracle = nullptr;
    protocol = [](ProcessId) {
      return std::make_unique<UdcMajorityProcess>();
    };
  } else {
    int t = param.n - 1;
    oracle = [t] { return std::make_unique<TUsefulOracle>(t, 4, 1); };
    protocol = [t](ProcessId) {
      return std::make_unique<UdcGeneralizedProcess>(t);
    };
  }
  System sys = generate_system(cfg, plans, workload, oracle, protocol, 1);
  CoordReport rep = check_udc(sys, actions, grace);
  EXPECT_TRUE(rep.achieved())
      << (rep.violations.empty() ? "" : rep.violations[0]);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UdcGrid,
    ::testing::Values(UdcSweepParam{3, 0.0, "perfect"},
                      UdcSweepParam{3, 0.5, "perfect"},
                      UdcSweepParam{4, 0.3, "perfect"},
                      UdcSweepParam{4, 0.3, "strong"},
                      UdcSweepParam{4, 0.5, "strong"},
                      UdcSweepParam{5, 0.3, "strong"},
                      UdcSweepParam{4, 0.3, "t-useful"},
                      UdcSweepParam{5, 0.3, "t-useful"},
                      UdcSweepParam{6, 0.3, "perfect"},
                      UdcSweepParam{4, 0.3, "fip"},
                      UdcSweepParam{5, 0.5, "fip"},
                      UdcSweepParam{5, 0.3, "atd"},
                      UdcSweepParam{4, 0.5, "atd"},
                      UdcSweepParam{5, 0.3, "majority"},
                      UdcSweepParam{7, 0.3, "majority"}),
    [](const ::testing::TestParamInfo<UdcSweepParam>& info) {
      std::string name = "n" + std::to_string(info.param.n) + "_drop" +
                         std::to_string(static_cast<int>(info.param.drop * 10)) +
                         "_" + info.param.detector;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Sweep 2: structural invariants under a randomized chaos protocol.  The
// simulator must produce R1-R4-valid, fairness-clean runs no matter what
// the protocol does with its intents.
// ---------------------------------------------------------------------------
class ChaosProcess : public Process {
 public:
  explicit ChaosProcess(std::uint64_t seed) : rng_(seed) {}

  void on_tick(Env& env) override {
    if (!env.outbox_empty()) return;
    switch (rng_.next_below(4)) {
      case 0: {  // random app message
        if (env.n() < 2) break;
        ProcessId to = static_cast<ProcessId>(
            rng_.next_below(static_cast<std::uint64_t>(env.n())));
        if (to == env.self()) break;
        Message m;
        m.kind = MsgKind::kApp;
        m.a = static_cast<std::int64_t>(rng_.next_below(4));
        env.send(to, m);
        break;
      }
      case 1:  // random (non-init'd!) perform — will violate DC3, which is
               // exactly what the spec checker is for; run validity is the
               // property under test here.
        env.perform(make_action(env.self(), 99));
        break;
      default:
        break;
    }
  }
  void on_receive(ProcessId from, const Message& msg, Env& env) override {
    if (rng_.chance(0.3)) {
      Message reply = msg;
      env.send(from, reply);
    }
  }

 private:
  Rng rng_;
};

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, RunsValidateAndStayFair) {
  std::uint64_t seed = GetParam();
  SimConfig cfg;
  cfg.n = 5;
  cfg.horizon = 300;
  cfg.channel.drop_prob = 0.4;
  cfg.seed = seed;
  CrashPlan plan =
      sampled_crash_plans(5, 4, 1, 20, 200, seed * 31 + 7).front();
  PerfectOracle oracle(6);
  SimResult res = simulate(cfg, plan, &oracle, {}, [seed](ProcessId p) {
    return std::make_unique<ChaosProcess>(seed * 100 + p);
  });
  // Build succeeded => R1-R4 hold.  Check the fairness surrogate and the
  // detector property re-verification on top.
  EXPECT_TRUE(check_fairness(res.run, 40).fair());
  FdPropertyReport fd = check_fd_properties(res.run, 80);
  EXPECT_TRUE(fd.strong_accuracy);
  // Chaos performs violate DC3 by construction — the checker must say so
  // whenever a perform happened.
  std::vector<ActionId> chaos_actions;
  for (ProcessId p = 0; p < 5; ++p) chaos_actions.push_back(make_action(p, 99));
  bool any_perform = false;
  for (ProcessId p = 0; p < 5; ++p) {
    for (const Event& e : res.run.history(p).events()) {
      any_perform |= e.kind == EventKind::kDo;
    }
  }
  if (any_perform) {
    EXPECT_FALSE(check_udc(res.run, chaos_actions, 0).dc3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Sweep 3: epistemic laws over generated systems — knowledge veridicality
// and monotonicity of known_crashed along every run.
// ---------------------------------------------------------------------------
class KnowledgeLaws : public ::testing::TestWithParam<double> {};

TEST_P(KnowledgeLaws, VeridicalAndMonotone) {
  SimConfig cfg;
  cfg.n = 3;
  cfg.horizon = 120;
  cfg.channel.drop_prob = GetParam();
  cfg.seed = 17;
  auto workload = make_workload(3, 1, 4, 6);
  auto plans = all_crash_plans_up_to(3, 2, 15, 60);
  System sys = generate_system(
      cfg, plans, workload, [] { return std::make_unique<PerfectOracle>(4); },
      [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); }, 1);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const udc::Run& r = sys.run(i);
    for (ProcessId p = 0; p < 3; ++p) {
      ProcSet prev;
      for (Time m = 0; m <= r.horizon(); m += 3) {
        ProcSet known = known_crashed(sys, Point{i, m}, p);
        // Veridical: only actually-crashed processes are known crashed.
        for (ProcessId q : known) {
          EXPECT_TRUE(r.crashed_by(q, m));
        }
        // Monotone along the run (histories only grow; crash is stable).
        EXPECT_TRUE(prev.subset_of(known))
            << "run " << i << " p" << p << " m=" << m;
        prev = known;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DropRates, KnowledgeLaws,
                         ::testing::Values(0.0, 0.25, 0.5));

// ---------------------------------------------------------------------------
// Sweep 4: the t-usefulness predicate is monotone in the ways the paper's
// definition implies.
// ---------------------------------------------------------------------------
TEST(TUsefulProperties, MonotoneInKAndAntitoneInS) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    int n = 3 + static_cast<int>(rng.next_below(6));  // 3..8
    int t = 1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    ProcSet s(rng.next() & ((1u << n) - 1));
    ProcSet faulty(rng.next() & s.bits());  // F ⊆ S so clause (a) holds
    int k = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(s.size()) + 1));
    bool useful = is_t_useful_report(s, k, faulty, n, t);
    // Raising k (within |S|) preserves usefulness.
    if (useful && k + 1 <= s.size()) {
      EXPECT_TRUE(is_t_useful_report(s, k + 1, faulty, n, t));
    }
    // Growing S at fixed k can only hurt clause (b).
    ProcSet bigger = s;
    for (ProcessId q = 0; q < n; ++q) {
      if (!bigger.contains(q)) {
        bigger.insert(q);
        break;
      }
    }
    if (!useful && bigger != s) {
      EXPECT_FALSE(is_t_useful_report(bigger, k, faulty, n, t));
    }
    // Usefulness never holds with k > |S|.
    EXPECT_FALSE(is_t_useful_report(s, s.size() + 1, faulty, n, t));
  }
}

}  // namespace
}  // namespace udc
