#include "udc/sim/simulator.h"

#include <gtest/gtest.h>

#include "udc/coord/action.h"
#include "udc/coord/nudc_protocol.h"
#include "udc/event/fairness.h"
#include "udc/sim/crash_schedule.h"

namespace udc {
namespace {

// A protocol that does nothing at all.
class IdleProcess : public Process {
 public:
  void on_receive(ProcessId, const Message&, Env&) override {}
};

// Sends one app message to everyone on start, then echoes receives back.
class PingProcess : public Process {
 public:
  void on_start(Env& env) override {
    if (env.self() != 0) return;
    Message m;
    m.kind = MsgKind::kApp;
    m.a = 1;
    for (ProcessId q = 1; q < env.n(); ++q) env.send(q, m);
  }
  void on_receive(ProcessId from, const Message& msg, Env& env) override {
    if (msg.a == 1) {
      Message reply;
      reply.kind = MsgKind::kApp;
      reply.a = 2;
      env.send(from, reply);
    }
  }
};

ProtocolFactory factory_of(auto make) {
  return [make](ProcessId) -> std::unique_ptr<Process> { return make(); };
}

TEST(Simulator, IdleProtocolYieldsEmptyHistories) {
  SimConfig cfg;
  cfg.n = 3;
  cfg.horizon = 20;
  SimResult res =
      simulate(cfg, no_crashes(3), nullptr, {},
               factory_of([] { return std::make_unique<IdleProcess>(); }));
  EXPECT_EQ(res.run.horizon(), 20);
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(res.run.history(p).size(), 0u);
  }
  EXPECT_EQ(res.messages_sent, 0u);
}

TEST(Simulator, CrashHappensAtScheduledTime) {
  SimConfig cfg;
  cfg.n = 3;
  cfg.horizon = 20;
  CrashPlan plan = make_crash_plan(3, {{1, 7}});
  SimResult res =
      simulate(cfg, plan, nullptr, {},
               factory_of([] { return std::make_unique<IdleProcess>(); }));
  EXPECT_EQ(res.run.crash_time(1), std::optional<Time>(7));
  EXPECT_EQ(res.run.faulty_set(), ProcSet::singleton(1));
  EXPECT_EQ(res.run.history(1).size(), 1u);
  EXPECT_EQ(res.run.history(1).back().kind, EventKind::kCrash);
}

TEST(Simulator, PingPongProducesValidSendRecvPairs) {
  SimConfig cfg;
  cfg.n = 4;
  cfg.horizon = 60;
  SimResult res =
      simulate(cfg, no_crashes(4), nullptr, {},
               factory_of([] { return std::make_unique<PingProcess>(); }));
  // Every peer got the ping and replied; p0 got the replies.
  int replies = 0;
  for (const Event& e : res.run.history(0).events()) {
    if (e.kind == EventKind::kRecv && e.msg.a == 2) ++replies;
  }
  EXPECT_EQ(replies, 3);
}

TEST(Simulator, InitDirectiveAppendsInitEvent) {
  SimConfig cfg;
  cfg.n = 2;
  cfg.horizon = 30;
  std::vector<InitDirective> workload{{5, 0, make_action(0, 0)}};
  SimResult res =
      simulate(cfg, no_crashes(2), nullptr, workload,
               factory_of([] { return std::make_unique<IdleProcess>(); }));
  EXPECT_TRUE(res.run.init_in(0, 5, make_action(0, 0)));
  EXPECT_FALSE(res.run.init_in(0, 4, make_action(0, 0)));
  EXPECT_EQ(res.inits_skipped, 0u);
}

TEST(Simulator, InitAfterCrashIsSkipped) {
  SimConfig cfg;
  cfg.n = 2;
  cfg.horizon = 30;
  CrashPlan plan = make_crash_plan(2, {{0, 3}});
  std::vector<InitDirective> workload{{10, 0, make_action(0, 0)}};
  SimResult res =
      simulate(cfg, plan, nullptr, workload,
               factory_of([] { return std::make_unique<IdleProcess>(); }));
  EXPECT_FALSE(res.run.init_in(0, 30, make_action(0, 0)));
  EXPECT_EQ(res.inits_skipped, 1u);
}

TEST(Simulator, DeterministicForSameSeed) {
  SimConfig cfg;
  cfg.n = 3;
  cfg.horizon = 80;
  cfg.channel.drop_prob = 0.4;
  cfg.seed = 99;
  std::vector<InitDirective> workload{{2, 0, make_action(0, 0)}};
  auto once = [&] {
    return simulate(cfg, no_crashes(3), nullptr, workload, [](ProcessId) {
             return std::make_unique<NUdcProcess>();
           }).run;
  };
  udc::Run a = once();
  udc::Run b = once();
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_TRUE(a.history(p) == b.history(p));
  }
}

TEST(Simulator, FairLossyRunSatisfiesFairnessSurrogate) {
  SimConfig cfg;
  cfg.n = 3;
  cfg.horizon = 400;
  cfg.channel.drop_prob = 0.5;
  std::vector<InitDirective> workload{{2, 0, make_action(0, 0)}};
  SimResult res = simulate(cfg, no_crashes(3), nullptr, workload,
                           [](ProcessId) {
                             return std::make_unique<NUdcProcess>();
                           });
  EXPECT_GT(res.messages_dropped, 0u);
  // With drop 0.5 and hundreds of retransmissions, a message sent 25+ times
  // is delivered with overwhelming probability.
  EXPECT_TRUE(check_fairness(res.run, /*threshold=*/25).fair());
}

TEST(Simulator, RunsAlwaysValidateR1ToR4) {
  // The builder inside simulate() throws on any R-violation; a pile of
  // crash/workload/drop combinations exercising it is a cheap regression
  // net for the event-selection logic.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SimConfig cfg;
    cfg.n = 4;
    cfg.horizon = 120;
    cfg.channel.drop_prob = 0.3;
    cfg.seed = seed;
    CrashPlan plan = make_crash_plan(4, {{0, 11}, {2, 40}});
    auto workload = make_workload(4, 1, 2, 3);
    EXPECT_NO_THROW(simulate(cfg, plan, nullptr, workload, [](ProcessId) {
      return std::make_unique<NUdcProcess>();
    }));
  }
}

}  // namespace
}  // namespace udc
