// Footnote 11 of the paper: with a STRONGLY ACCURATE detector the Prop 3.1
// protocol may stop retransmitting after performing (quiescence); with
// merely weak accuracy, halting on a false suspicion strands a live peer
// and uniformity is lost.
#include <gtest/gtest.h>

#include "udc/coord/action.h"
#include "udc/coord/spec.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/oracle.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

constexpr int kN = 4;
constexpr Time kHorizon = 500;
constexpr Time kGrace = 160;

Time last_send_time(const udc::Run& r) {
  Time last = 0;
  for (ProcessId p = 0; p < r.n(); ++p) {
    const History& h = r.history(p);
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (h[i].kind == EventKind::kSend) {
        last = std::max(last, r.event_time(p, i));
      }
    }
  }
  return last;
}

System quiescent_system(const OracleFactory& oracle, bool quiescent) {
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = kHorizon;
  cfg.channel.drop_prob = 0.25;
  auto workload = make_workload(kN, 1, 5, 7);
  auto plans = all_crash_plans_up_to(kN, kN - 1, 25, 120);
  return generate_system(cfg, plans, workload, oracle,
                         [quiescent](ProcessId) {
                           return std::make_unique<UdcStrongFdProcess>(
                               8, quiescent);
                         },
                         2);
}

TEST(Quiescence, PerfectDetectorAllowsQuiescentUdc) {
  System sys = quiescent_system(
      [] { return std::make_unique<PerfectOracle>(4); }, /*quiescent=*/true);
  auto workload = make_workload(kN, 1, 5, 7);
  auto actions = workload_actions(workload);
  CoordReport rep = check_udc(sys, actions, kGrace);
  EXPECT_TRUE(rep.achieved())
      << (rep.violations.empty() ? "" : rep.violations[0]);
  // Quiescence: the network goes silent well before the horizon in every
  // run (all performs done, no residual retransmission).
  for (const udc::Run& r : sys.runs()) {
    EXPECT_LT(last_send_time(r), kHorizon - 100);
  }
}

TEST(Quiescence, NonQuiescentModeKeepsChattering) {
  // Without footnote 11, a process that performed keeps retransmitting to
  // crashed peers forever — the price of not trusting accuracy.  Witness:
  // a run with a crash has sends near the horizon.
  System sys = quiescent_system(
      [] { return std::make_unique<PerfectOracle>(4); }, /*quiescent=*/false);
  bool some_run_chatters = false;
  for (const udc::Run& r : sys.runs()) {
    if (!r.faulty_set().empty() && last_send_time(r) > kHorizon - 50) {
      some_run_chatters = true;
    }
  }
  EXPECT_TRUE(some_run_chatters);
}

TEST(Quiescence, WeakAccuracyMakesQuiescentModeUnsound) {
  // The converse direction of footnote 11: with false suspicions, stopping
  // after performing can strand a falsely-suspected live process.  A noisy
  // strong detector across a sweep must eventually produce the violation.
  System sys = quiescent_system(
      [] { return std::make_unique<StrongOracle>(4, 0.6); },
      /*quiescent=*/true);
  auto workload = make_workload(kN, 1, 5, 7);
  auto actions = workload_actions(workload);
  CoordReport rep = check_udc(sys, actions, kGrace);
  EXPECT_FALSE(rep.achieved());
}

TEST(Quiescence, WeakAccuracyIsFineWithoutQuiescence) {
  // Same noisy detector, quiescence off: the protocol keeps retransmitting
  // to falsely-suspected peers and UDC survives (Prop 3.1 proper).
  System sys = quiescent_system(
      [] { return std::make_unique<StrongOracle>(4, 0.6); },
      /*quiescent=*/false);
  auto workload = make_workload(kN, 1, 5, 7);
  auto actions = workload_actions(workload);
  CoordReport rep = check_udc(sys, actions, kGrace);
  EXPECT_TRUE(rep.achieved())
      << (rep.violations.empty() ? "" : rep.violations[0]);
}

}  // namespace
}  // namespace udc
