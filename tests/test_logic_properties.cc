// Locality, stability, and failure-insensitivity (§2.3, Def 3.3).
#include "udc/logic/properties.h"

#include <gtest/gtest.h>

namespace udc {
namespace {

// Four runs, 2 processes:
//   run 0: p0 inits α1 at 1; p1 crashes at 2.
//   run 1: p0 inits α1 at 1; p1 survives (same p0 view as run 0).
//   run 2: nothing happens.
//   run 3: no init; p1 crashes at 2 (de-correlates p1's crash from the
//          init, as the paper's A1/A3 independence assumptions demand —
//          without it, crashing would "teach" p1 about the init).
System insensitivity_system() {
  std::vector<udc::Run> runs;
  {
    Run::Builder b(2);
    b.append(0, Event::init(1)).end_step();
    b.append(1, Event::crash()).end_step();
    b.end_step();
    runs.push_back(std::move(b).build());
  }
  {
    Run::Builder b(2);
    b.append(0, Event::init(1)).end_step();
    b.end_step();
    b.end_step();
    runs.push_back(std::move(b).build());
  }
  {
    Run::Builder b(2);
    b.end_step();
    b.end_step();
    b.end_step();
    runs.push_back(std::move(b).build());
  }
  {
    Run::Builder b(2);
    b.end_step();
    b.append(1, Event::crash()).end_step();
    b.end_step();
    runs.push_back(std::move(b).build());
  }
  return System(std::move(runs));
}

TEST(LogicProperties, InitIsLocalToItsOwner) {
  System sys = insensitivity_system();
  ModelChecker mc(sys);
  EXPECT_TRUE(is_local_to(mc, 0, f_init(0, 1)));
  // p1 cannot tell runs 0/1 (init) from run 2 (no init) early on.
  EXPECT_FALSE(is_local_to(mc, 1, f_init(0, 1)));
}

TEST(LogicProperties, KnowledgeFormulasAreLocal) {
  System sys = insensitivity_system();
  ModelChecker mc(sys);
  // K_p phi is local to p for ANY phi (standard S5 fact the checker must
  // reproduce).
  EXPECT_TRUE(is_local_to(mc, 1, f_knows(1, f_init(0, 1))));
  EXPECT_TRUE(is_local_to(mc, 1, f_knows(1, f_crash(0))));
  EXPECT_TRUE(is_local_to(mc, 0, f_knows(0, f_crash(1))));
}

TEST(LogicProperties, StableFormulas) {
  System sys = insensitivity_system();
  ModelChecker mc(sys);
  EXPECT_TRUE(is_stable(mc, f_init(0, 1)));
  EXPECT_TRUE(is_stable(mc, f_crash(1)));
  EXPECT_TRUE(is_stable(mc, f_always(f_not(f_do(1, 1)))));
  // K_q of a stable formula is stable in these systems (knowledge only
  // grows along a run when histories only grow).
  EXPECT_TRUE(is_stable(mc, f_knows(0, f_init(0, 1))));
}

TEST(LogicProperties, UnstableFormulaDetected) {
  // "history length is even"-style toggling primitive.
  System sys = insensitivity_system();
  ModelChecker mc(sys);
  auto toggling = Formula::prim("even-time", [](const udc::Run&, Time m) {
    return m % 2 == 0;
  });
  EXPECT_FALSE(is_stable(mc, toggling));
}

TEST(LogicProperties, A3StyleInsensitivity) {
  System sys = insensitivity_system();
  ModelChecker mc(sys);
  // K_1(init_0(α1)) is insensitive to failure by p1: runs 0 and 1 give the
  // exact witness pair (same p1 prefix, ± crash).
  EXPECT_TRUE(is_insensitive_to_failure_by(
      mc, sys, 1, f_knows(1, f_init(0, 1))));
  // crash(1) itself is maximally SENSITIVE to failure by p1.
  EXPECT_FALSE(is_insensitive_to_failure_by(mc, sys, 1, f_crash(1)));
  // Def 3.3 presupposes locality: a non-local formula like init_0(α1) can
  // differ across an (h, h·crash) pair simply because the pair spans runs
  // with different inits — the checker rightly reports it sensitive.
  EXPECT_FALSE(is_insensitive_to_failure_by(mc, sys, 1, f_init(0, 1)));
}

TEST(LogicProperties, InsensitivityVacuousWithoutCrashPairs) {
  // A system with no crash events has no witness pairs: the check passes
  // vacuously (and must not crash).
  std::vector<udc::Run> runs;
  Run::Builder b(2);
  b.append(0, Event::init(1)).end_step();
  runs.push_back(std::move(b).build());
  System sys(std::move(runs));
  ModelChecker mc(sys);
  EXPECT_TRUE(is_insensitive_to_failure_by(mc, sys, 1, f_crash(1)));
}

}  // namespace
}  // namespace udc
