// §4: generalized (S, k) detectors, t-usefulness, and the gen<->perfect
// conversions.
#include "udc/fd/generalized.h"

#include <gtest/gtest.h>

#include "udc/fd/properties.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/simulator.h"

namespace udc {
namespace {

constexpr int kN = 5;

TEST(TUseful, ReportPredicateMatchesPaperDefinition) {
  ProcSet faulty;
  faulty.insert(0);
  faulty.insert(1);
  // n = 5, t = 3, F = {0,1}.
  // S = {0,1,2}: n - |S| = 2 > min(3,4) - k  iff  k > 1.
  ProcSet s;
  s.insert(0);
  s.insert(1);
  s.insert(2);
  EXPECT_FALSE(is_t_useful_report(s, 1, faulty, 5, 3));
  EXPECT_TRUE(is_t_useful_report(s, 2, faulty, 5, 3));
  // (a): F ⊄ S kills it regardless of k.
  ProcSet not_covering = ProcSet::singleton(0) | ProcSet::singleton(2);
  EXPECT_FALSE(is_t_useful_report(not_covering, 2, faulty, 5, 3));
  // (c): k > |S| is never useful.
  EXPECT_FALSE(is_t_useful_report(s, 4, faulty, 5, 3));
}

TEST(TUseful, TrivialReportUsefulIffTBelowHalf) {
  // (S, 0) with |S| = t covering F: useful iff n - t > t.
  ProcSet faulty;  // no failures
  for (int t = 0; t <= kN; ++t) {
    ProcSet s;
    for (int i = 0; i < t; ++i) s.insert(i);
    EXPECT_EQ(is_t_useful_report(s, 0, faulty, kN, t), t < (kN + 1) / 2 || 2 * t < kN)
        << "t=" << t;
  }
}

TEST(TUseful, NMinus1UsefulForcesFullyCrashedSet) {
  // For t >= n-1, usefulness requires k > |S| - 1, i.e. k = |S| (§4).
  ProcSet faulty = ProcSet::singleton(1);
  for (int size = 1; size <= kN; ++size) {
    ProcSet s;
    s.insert(1);
    for (int i = 0; s.size() < size; ++i) s.insert(i == 1 ? kN - 1 : i);
    EXPECT_FALSE(is_t_useful_report(s, s.size() - 1, faulty, kN, kN - 1));
    // k = |S| needs |F ∩ S| >= k for accuracy, but usefulness alone holds:
    EXPECT_TRUE(is_t_useful_report(s, s.size(), faulty, kN, kN - 1) ==
                faulty.subset_of(s));
  }
}

class IdleProcess : public Process {
 public:
  void on_receive(ProcessId, const Message&, Env&) override {}
};

udc::Run gen_run(FdOracle& oracle, const CrashPlan& plan, Time horizon = 200) {
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = horizon;
  cfg.seed = 17;
  return simulate(cfg, plan, &oracle, {}, [](ProcessId) {
           return std::make_unique<IdleProcess>();
         }).run;
}

TEST(TUsefulOracle, SatisfiesBothClauses) {
  for (int t : {2, 3, 4}) {
    std::vector<CrashPlan> plans = {
        no_crashes(kN),
        make_crash_plan(kN, {{1, 30}}),
        make_crash_plan(kN, {{0, 20}, {4, 50}}),
    };
    for (const CrashPlan& plan : plans) {
      if (plan.faulty_set().size() > t) continue;
      TUsefulOracle oracle(t, 4, 1);
      udc::Run r = gen_run(oracle, plan);
      GenFdReport rep = check_t_useful(r, t, /*grace=*/60);
      EXPECT_TRUE(rep.t_useful())
          << "t=" << t << " F=" << plan.faulty_set().to_string() << ": "
          << (rep.violations.empty() ? "" : rep.violations[0]);
    }
  }
}

TEST(TrivialGeneralizedOracle, TUsefulForSmallT) {
  // t < n/2: the content-free cycling detector is t-useful (Cor 4.2's
  // engine).  Horizon must cover a full cycle of C(n,t) subsets.
  for (int t : {0, 1, 2}) {
    TrivialGeneralizedOracle oracle(t, 2);
    CrashPlan plan = t >= 1 ? make_crash_plan(kN, {{2, 10}}) : no_crashes(kN);
    udc::Run r = gen_run(oracle, plan, /*horizon=*/120);
    GenFdReport rep = check_t_useful(r, t, /*grace=*/40);
    EXPECT_TRUE(rep.t_useful()) << "t=" << t;
  }
}

TEST(TrivialGeneralizedOracle, NotUsefulWhenTAtLeastHalf) {
  // For t >= n/2 the (S, 0) reports can never satisfy the inequality:
  // completeness must fail in a run with crashes.
  TrivialGeneralizedOracle oracle(3, 2);
  udc::Run r = gen_run(oracle, make_crash_plan(kN, {{2, 10}}), 200);
  GenFdReport rep = check_t_useful(r, 3, /*grace=*/60);
  EXPECT_TRUE(rep.generalized_strong_accuracy);
  EXPECT_FALSE(rep.generalized_impermanent_strong_completeness);
}

TEST(GenAccuracy, OverclaimingKIsCaught) {
  Run::Builder b(3);
  b.append(0, Event::suspect_gen(ProcSet::full(3), 1)).end_step();  // lie
  b.append(2, Event::crash()).end_step();
  udc::Run r = std::move(b).build();
  GenFdReport rep = check_t_useful(r, 2);
  EXPECT_FALSE(rep.generalized_strong_accuracy);
  // Same report after the crash is fine.
  Run::Builder b2(3);
  b2.append(2, Event::crash()).end_step();
  b2.append(0, Event::suspect_gen(ProcSet::full(3), 1)).end_step();
  GenFdReport rep2 = check_t_useful(std::move(b2).build(), 2, /*grace=*/0);
  EXPECT_TRUE(rep2.generalized_strong_accuracy);
}

TEST(Conversions, GenToPerfectOnFullyDeterminedReports) {
  // An (n-1)-useful detector only emits (S, |S|); converting gives a
  // standard perfect detector.
  Run::Builder b(3);
  b.append(1, Event::crash()).end_step();
  b.append(0, Event::suspect_gen(ProcSet::singleton(1), 1)).end_step();
  b.append(2, Event::suspect_gen(ProcSet::singleton(1), 1)).end_step();
  udc::Run r = std::move(b).build();
  udc::Run converted = convert_gen_to_perfect(r);
  FdPropertyReport rep = check_fd_properties(converted);
  EXPECT_TRUE(rep.perfect()) << rep.summary();
  EXPECT_EQ(converted.suspects_at(0, converted.horizon()),
            ProcSet::singleton(1));
}

TEST(Conversions, GenToPerfectIgnoresPartialReports) {
  Run::Builder b(3);
  b.append(1, Event::crash()).end_step();
  // Partial report (|S| > k) carries no definite crash: must not be folded.
  b.append(0, Event::suspect_gen(ProcSet::full(3), 1)).end_step();
  udc::Run converted = convert_gen_to_perfect(std::move(b).build());
  EXPECT_TRUE(converted.suspects_at(0, converted.horizon()).empty());
}

TEST(Conversions, PerfectToGenIsNUseful) {
  Run::Builder b(3);
  b.append(1, Event::crash()).end_step();
  b.append(0, Event::suspect(ProcSet::singleton(1))).end_step();
  b.append(2, Event::suspect(ProcSet::singleton(1))).end_step();
  udc::Run r = std::move(b).build();
  udc::Run converted = convert_perfect_to_gen(r);
  GenFdReport rep = check_t_useful(converted, /*t=*/3);
  EXPECT_TRUE(rep.t_useful())
      << (rep.violations.empty() ? "" : rep.violations[0]);
}

}  // namespace
}  // namespace udc
