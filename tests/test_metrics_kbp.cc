// coord/metrics and kt/kbp: the measurement layer and the knowledge-based
// program checker.
#include <gtest/gtest.h>

#include "udc/coord/metrics.h"
#include "udc/coord/nudc_protocol.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/oracle.h"
#include "udc/kt/kbp.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

TEST(Metrics, HandBuiltRunAccounting) {
  const ActionId a = make_action(0, 0);
  Run::Builder b(3);
  b.append(0, Event::init(a)).end_step();           // t=1
  b.append(0, Event::do_action(a)).end_step();      // t=2
  b.append(1, Event::do_action(a)).end_step();      // t=3
  b.append(2, Event::crash()).end_step();           // t=4
  udc::Run r = std::move(b).build();
  ActionMetrics m = measure_action(r, a);
  EXPECT_EQ(m.initiated_at, std::optional<Time>(1));
  EXPECT_EQ(m.first_do, std::optional<Time>(2));
  // p2 crashed, so completion = last CORRECT do = t=3.
  EXPECT_EQ(m.completed_at, std::optional<Time>(3));
  EXPECT_EQ(m.latency(), std::optional<Time>(2));
}

TEST(Metrics, IncompleteActionHasNoLatency) {
  const ActionId a = make_action(0, 0);
  Run::Builder b(2);
  b.append(0, Event::init(a)).end_step();
  b.append(0, Event::do_action(a)).end_step();
  b.end_step();  // p1 never performs
  udc::Run r = std::move(b).build();
  ActionMetrics m = measure_action(r, a);
  EXPECT_TRUE(m.initiated_at.has_value());
  EXPECT_FALSE(m.completed_at.has_value());
  EXPECT_FALSE(m.latency().has_value());
}

TEST(Metrics, UninitiatedActionIsEmpty) {
  udc::Run r = std::move(Run::Builder(2).end_step()).build();
  ActionMetrics m = measure_action(r, make_action(1, 5));
  EXPECT_FALSE(m.initiated_at.has_value());
  EXPECT_FALSE(m.first_do.has_value());
}

TEST(Metrics, SystemAggregation) {
  SimConfig cfg;
  cfg.n = 4;
  cfg.horizon = 400;
  cfg.channel.drop_prob = 0.25;
  auto workload = make_workload(4, 1, 5, 7);
  auto actions = workload_actions(workload);
  auto plans = all_crash_plans_up_to(4, 2, 25, 100);
  System sys = generate_system(
      cfg, plans, workload, [] { return std::make_unique<PerfectOracle>(4); },
      [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); }, 1);
  CoordinationMetrics agg = measure_coordination(sys, actions);
  EXPECT_GT(agg.initiated, 0u);
  // Some inits are skipped (owner crashed first); of the initiated ones,
  // the protocol completes nearly all well inside the horizon.
  EXPECT_GT(agg.completion_rate(), 0.9);
  EXPECT_GT(agg.mean_latency, 0);
  EXPECT_GE(agg.max_latency, static_cast<Time>(agg.mean_latency));
}

TEST(Metrics, LastSendTimeOnHandBuiltRun) {
  Message m;
  m.kind = MsgKind::kApp;
  Run::Builder b(2);
  b.append(0, Event::send(1, m)).end_step();
  b.append(1, Event::recv(0, m)).end_step();
  b.end_step();
  udc::Run r = std::move(b).build();
  EXPECT_EQ(last_send_time(r), 1);
  udc::Run silent = std::move(Run::Builder(2).end_step()).build();
  EXPECT_EQ(last_send_time(silent), 0);
}

TEST(Kbp, UdcProtocolImplementsItsKnowledgeProgram) {
  SimConfig cfg;
  cfg.n = 3;
  cfg.horizon = 200;
  cfg.channel.drop_prob = 0.25;
  cfg.seed = 21;
  auto workload = make_workload(3, 1, 4, 6);
  auto actions = workload_actions(workload);
  auto workloads = workload_power_set(workload);
  auto plans = all_crash_plans_up_to(3, 2, 20, 60);
  System sys = generate_system_multi(
      cfg, plans, workloads, [] { return std::make_unique<PerfectOracle>(4); },
      [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); }, 1);
  ModelChecker mc(sys);
  KbpReport rep = check_kbp(mc, sys, actions);
  EXPECT_GT(rep.perform_points, 20u);
  EXPECT_TRUE(rep.implements())
      << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST(Kbp, SpuriousPerformerViolatesK1) {
  // A hand-built run where p1 performs without any initiation anywhere:
  // the knowledge guard must flag it.
  const ActionId a = make_action(0, 0);
  std::vector<udc::Run> runs;
  Run::Builder b(2);
  b.append(1, Event::do_action(a)).end_step();
  runs.push_back(std::move(b).build());
  System sys(std::move(runs));
  ModelChecker mc(sys);
  std::vector<ActionId> actions{a};
  KbpReport rep = check_kbp(mc, sys, actions);
  EXPECT_EQ(rep.perform_points, 1u);
  EXPECT_EQ(rep.k1_holds, 0u);
  EXPECT_FALSE(rep.implements());
  ASSERT_FALSE(rep.violations.empty());
  EXPECT_NE(rep.violations[0].find("K1"), std::string::npos);
}

TEST(Kbp, NonUniformFloodingStillSatisfiesK1) {
  // Even the nUDC protocol satisfies K1 (you only perform what you heard
  // about); the UNIFORM guard K2 is where it can fall short — a process
  // may perform knowing the init while no surviving process does.
  SimConfig cfg;
  cfg.n = 3;
  cfg.horizon = 160;
  cfg.channel.drop_prob = 0.3;
  cfg.seed = 9;
  auto workload = make_workload(3, 1, 4, 6);
  auto actions = workload_actions(workload);
  auto workloads = workload_power_set(workload);
  auto plans = all_crash_plans_up_to(3, 2, 10, 40);
  System sys = generate_system_multi(
      cfg, plans, workloads, nullptr,
      [](ProcessId) { return std::make_unique<NUdcProcess>(); }, 1);
  ModelChecker mc(sys);
  KbpReport rep = check_kbp(mc, sys, actions);
  EXPECT_EQ(rep.k1_holds, rep.perform_points);
}

}  // namespace
}  // namespace udc
