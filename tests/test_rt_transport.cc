// RtTransport (rt/transport.h): the fair-lossy channel realized as a real
// ARQ — drop-policy losses, jittered-backoff retransmission, link acks,
// receiver-side dedup.  Timing here is real, so the assertions are
// invariants (exactly-once surfacing, quiescence, counter consistency),
// never exact schedules.
#include "udc/rt/transport.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "udc/common/check.h"
#include "udc/event/message.h"
#include "udc/net/network.h"

namespace udc {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

Message app_msg(std::int64_t tag) {
  Message m;
  m.kind = MsgKind::kApp;
  m.a = tag;
  return m;
}

// Thread-safe delivery sink; processes listed in `down` refuse messages
// (the transport must keep their sends pending, like a crashed worker).
struct Sink {
  std::mutex mu;
  std::vector<std::int64_t> tags;
  std::set<ProcessId> down;

  RtTransport::DeliverFn fn() {
    return [this](ProcessId, ProcessId to, const Message& m, Time) {
      std::lock_guard<std::mutex> lock(mu);
      if (down.count(to) != 0) return false;
      tags.push_back(m.a);
      return true;
    };
  }
  std::size_t count() {
    std::lock_guard<std::mutex> lock(mu);
    return tags.size();
  }
  std::set<std::int64_t> distinct() {
    std::lock_guard<std::mutex> lock(mu);
    return std::set<std::int64_t>(tags.begin(), tags.end());
  }
};

RtTransportOptions fast_opts() {
  RtTransportOptions o;
  o.min_delay = std::chrono::microseconds(10);
  o.max_delay = std::chrono::microseconds(100);
  o.backoff = BackoffOptions{/*base=*/200, /*growth=*/2.0, /*cap=*/2'000,
                             /*jitter=*/0.25};
  return o;
}

bool wait_for(const std::function<bool()>& pred, milliseconds limit) {
  auto deadline = steady_clock::now() + limit;
  while (steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return pred();
}

TEST(RtTransport, DeliversEverySendExactlyOnceUnderHeavyLoss) {
  Sink sink;
  RtTransport tr(2, fast_opts(), std::make_shared<IidDropPolicy>(0.5),
                 /*seed=*/11, [] { return Time{0}; }, sink.fn());
  const int kSends = 40;
  for (int i = 0; i < kSends; ++i) tr.send(0, 1, app_msg(i));
  ASSERT_TRUE(tr.quiesce(steady_clock::now() + milliseconds(10'000)));
  // Quiescence means every send was acked, and an ack follows an accepted
  // delivery; dedup means no send surfaced twice.
  EXPECT_EQ(sink.count(), static_cast<std::size_t>(kSends));
  EXPECT_EQ(sink.distinct().size(), static_cast<std::size_t>(kSends));
  RuntimeCounters c = tr.counters();
  EXPECT_EQ(c.sends, static_cast<std::size_t>(kSends));
  EXPECT_EQ(c.delivered, static_cast<std::size_t>(kSends));
  EXPECT_EQ(c.acks, static_cast<std::size_t>(kSends));
  EXPECT_EQ(c.abandoned, 0u);
  // At 50% loss per attempt, 40 messages retry essentially surely.
  EXPECT_GT(c.drops + c.retransmits, 0u);
}

TEST(RtTransport, LostAcksCauseRetransmitsButNeverDuplicateSurfacing) {
  Sink sink;
  // Forward channel 0->1 perfect; the reverse (ack) channel loses 90%.
  auto policy = std::make_shared<PerLinkDropPolicy>(0.0);
  policy->set(1, 0, 0.9);
  RtTransport tr(2, fast_opts(), policy, /*seed=*/5, [] { return Time{0}; },
                 sink.fn());
  const int kSends = 10;
  for (int i = 0; i < kSends; ++i) tr.send(0, 1, app_msg(i));
  ASSERT_TRUE(tr.quiesce(steady_clock::now() + milliseconds(10'000)));
  // Link-level duplicates were re-acked, not re-surfaced.
  EXPECT_EQ(sink.count(), static_cast<std::size_t>(kSends));
  RuntimeCounters c = tr.counters();
  EXPECT_EQ(c.delivered, static_cast<std::size_t>(kSends));
  EXPECT_GT(c.retransmits, 0u);
}

TEST(RtTransport, DedupStateStaysBoundedUnderReorderingLoss) {
  Sink sink;
  RtTransportOptions o = fast_opts();
  o.dedup_window = 4;     // tiny, so eviction actually happens
  o.max_attempts = 1;     // no retries: lost sends stay lost (channel loss)
  RtTransport tr(2, o, std::make_shared<IidDropPolicy>(0.5), /*seed=*/17,
                 [] { return Time{0}; }, sink.fn());
  const int kSends = 400;
  for (int i = 0; i < kSends; ++i) tr.send(0, 1, app_msg(i));
  ASSERT_TRUE(tr.quiesce(steady_clock::now() + milliseconds(10'000)));
  // The whole point of the watermark + window scheme: 400 sends with ~50%
  // loss punch arbitrary gaps into the wire-sequence space, yet the
  // receiver never holds more than dedup_window out-of-order entries.
  EXPECT_LE(tr.dedup_peak(), 4u);
  // And bounding the state never lets a duplicate through: everything that
  // surfaced is distinct.
  EXPECT_EQ(sink.distinct().size(), sink.count());
  EXPECT_GT(sink.count(), 0u);
}

TEST(RtTransport, AbandonToDropsPendingTrafficTowardADeadProcess) {
  Sink sink;
  sink.down.insert(1);  // refuses everything, like a crashed worker
  RtTransport tr(2, fast_opts(), std::make_shared<IidDropPolicy>(0.0),
                 /*seed=*/3, [] { return Time{0}; }, sink.fn());
  for (int i = 0; i < 5; ++i) tr.send(0, 1, app_msg(i));
  // Refused deliveries keep the sends pending and retrying.
  EXPECT_FALSE(tr.quiesce(steady_clock::now() + milliseconds(50)));
  EXPECT_EQ(sink.count(), 0u);
  tr.abandon_to(1);
  EXPECT_TRUE(tr.quiesce(steady_clock::now()));
  RuntimeCounters c = tr.counters();
  EXPECT_EQ(c.abandoned, 5u);
  EXPECT_EQ(c.delivered, 0u);
}

TEST(RtTransport, MaxAttemptsGivesUpDeterministically) {
  Sink sink;
  RtTransportOptions o = fast_opts();
  o.backoff = BackoffOptions{/*base=*/100, /*growth=*/2.0, /*cap=*/400,
                             /*jitter=*/0};
  o.max_attempts = 2;
  RtTransport tr(2, o, std::make_shared<IidDropPolicy>(1.0), /*seed=*/9,
                 [] { return Time{0}; }, sink.fn());
  tr.send(0, 1, app_msg(0));
  ASSERT_TRUE(wait_for([&] { return tr.counters().abandoned == 1; },
                       milliseconds(5'000)));
  RuntimeCounters c = tr.counters();
  EXPECT_EQ(c.abandoned, 1u);
  EXPECT_EQ(c.delivered, 0u);
  EXPECT_EQ(c.drops, 2u);  // both permitted attempts hit the total-loss wall
  EXPECT_TRUE(tr.quiesce(steady_clock::now()));
}

TEST(RtTransport, HeartbeatsAreFireAndForget) {
  Sink sink;
  RtTransport lossy(2, fast_opts(), std::make_shared<IidDropPolicy>(1.0),
                    /*seed=*/1, [] { return Time{0}; }, sink.fn());
  lossy.send_heartbeat(0, 1, Message{MsgKind::kHeartbeat});
  // The drop is resolved synchronously, and nothing is pending afterwards:
  // no retry will ever resurrect a lost heartbeat.
  RuntimeCounters c = lossy.counters();
  EXPECT_EQ(c.heartbeats, 1u);
  EXPECT_EQ(c.drops, 1u);
  EXPECT_TRUE(lossy.quiesce(steady_clock::now()));
  lossy.stop();

  Sink sink2;
  RtTransport clean(2, fast_opts(), std::make_shared<IidDropPolicy>(0.0),
                    /*seed=*/1, [] { return Time{0}; }, sink2.fn());
  clean.send_heartbeat(0, 1, Message{MsgKind::kHeartbeat});
  EXPECT_TRUE(wait_for([&] { return sink2.count() == 1; },
                       milliseconds(5'000)));
  EXPECT_EQ(clean.counters().retransmits, 0u);
}

TEST(RtTransport, StopIsIdempotentAndSendsAfterStopAreNoOps) {
  Sink sink;
  RtTransport tr(2, fast_opts(), std::make_shared<IidDropPolicy>(0.0),
                 /*seed=*/2, [] { return Time{0}; }, sink.fn());
  tr.send(0, 1, app_msg(7));
  tr.stop();
  tr.stop();
  std::size_t sends_at_stop = tr.counters().sends;
  tr.send(0, 1, app_msg(8));
  tr.send_heartbeat(0, 1, Message{MsgKind::kHeartbeat});
  EXPECT_EQ(tr.counters().sends, sends_at_stop);
  EXPECT_EQ(tr.counters().heartbeats, 0u);
}

TEST(RtTransport, RejectsMalformedConstruction) {
  Sink sink;
  EXPECT_THROW(RtTransport(0, fast_opts(),
                           std::make_shared<IidDropPolicy>(0.0), 1,
                           [] { return Time{0}; }, sink.fn()),
               InvariantViolation);
  EXPECT_THROW(RtTransport(2, fast_opts(), nullptr, 1,
                           [] { return Time{0}; }, sink.fn()),
               InvariantViolation);
  RtTransportOptions bad;
  bad.min_delay = std::chrono::microseconds(100);
  bad.max_delay = std::chrono::microseconds(10);
  EXPECT_THROW(RtTransport(2, bad, std::make_shared<IidDropPolicy>(0.0), 1,
                           [] { return Time{0}; }, sink.fn()),
               InvariantViolation);
}

}  // namespace
}  // namespace udc
