// Sharded TraceRecorder (rt/record.h) under real concurrency: the property
// the whole PR rests on is that removing the global recording mutex does not
// weaken the model.  The tests here drive n worker threads through a
// record-then-send / receive-then-record discipline (the same one RtEnv and
// worker_main use) and then demand
//
//   * the lifted Run validates R1-R4 (Run's constructor throws otherwise),
//   * every receive's tick strictly exceeds its matching send's tick (R3,
//     checked per delivery, not just by the validator),
//   * a sealed process admits nothing after its kCrash (R4),
//   * replaying the merged total order through the single-mutex
//     SerialTraceRecorder reproduces the run BIT-IDENTICALLY — histories,
//     event times, horizon — so the sharded fast path and the PR-3 baseline
//     are observationally the same recorder,
//   * the shared atomic clock is monotone per thread and globally
//     duplicate-free under concurrent bump() and record().
#include "udc/rt/record.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "udc/event/event.h"
#include "udc/event/message.h"

namespace udc {
namespace {

constexpr int kN = 4;
constexpr int kSendsPerWorker = 1'250;  // 2 * kN * 1250 = 10k events total

Message tagged(std::int64_t tag) {
  Message m;
  m.kind = MsgKind::kApp;
  m.a = tag;
  return m;
}

// A toy transport: per-process inboxes carrying the sender, the payload,
// and the tick at which the sender RECORDED the send.
struct WireItem {
  ProcessId from;
  Message msg;
  Time send_tick;
};

struct Inbox {
  std::mutex mu;
  std::deque<WireItem> q;

  void push(WireItem w) {
    std::lock_guard<std::mutex> lock(mu);
    q.push_back(std::move(w));
  }
  bool pop(WireItem& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (q.empty()) return false;
    out = std::move(q.front());
    q.pop_front();
    return true;
  }
};

// Replays `run`'s merged total order through a SerialTraceRecorder and
// returns its lift — the baseline's view of the same execution.
Run serial_replay(const Run& run) {
  struct Slot {
    Time t;
    ProcessId p;
    const Event* e;
  };
  std::vector<Slot> slots;
  for (ProcessId p = 0; p < run.n(); ++p) {
    const History& h = run.history(p);
    for (std::size_t i = 0; i < h.size(); ++i) {
      slots.push_back({run.event_time(p, i), p, &h[i]});
    }
  }
  std::sort(slots.begin(), slots.end(),
            [](const Slot& a, const Slot& b) { return a.t < b.t; });
  SerialTraceRecorder serial(run.n());
  Time cur = 0;
  for (const Slot& s : slots) {
    while (cur < s.t - 1) {
      serial.bump();
      ++cur;
    }
    if (s.e->kind == EventKind::kCrash) {
      EXPECT_TRUE(serial.record_crash(s.p).has_value());
    } else {
      EXPECT_TRUE(serial.record(s.p, *s.e).has_value());
    }
    ++cur;
  }
  while (cur < run.horizon()) {
    serial.bump();
    ++cur;
  }
  return serial.lift();
}

TEST(RtRecordConcurrent, TenThousandEventsLiftToAValidRunMatchingTheSerial) {
  TraceRecorder rec(kN);
  std::vector<Inbox> inboxes(kN);
  std::atomic<int> senders_left{kN};
  std::atomic<std::size_t> r3_violations{0};

  auto worker = [&](ProcessId self) {
    const ProcessId partner = static_cast<ProcessId>((self + 1) % kN);
    auto drain = [&] {
      WireItem w;
      while (inboxes[static_cast<std::size_t>(self)].pop(w)) {
        auto rt = rec.record(self, Event::recv(w.from, w.msg));
        ASSERT_TRUE(rt.has_value());
        // R3, concretely: the recv's fetch_add happens-after the send's.
        if (*rt <= w.send_tick) r3_violations.fetch_add(1);
      }
    };
    for (int k = 0; k < kSendsPerWorker; ++k) {
      const Message msg =
          tagged(static_cast<std::int64_t>(self) * 10'000'000 + k);
      auto st = rec.record(self, Event::send(partner, msg));
      ASSERT_TRUE(st.has_value());
      inboxes[static_cast<std::size_t>(partner)].push({self, msg, *st});
      drain();
    }
    senders_left.fetch_sub(1);
    // Receive whatever is still in flight: every pushed item must be
    // recorded before the lift, or R3's multiset match would fail.
    for (;;) {
      drain();
      if (senders_left.load() == 0) {
        drain();
        std::lock_guard<std::mutex> lock(
            inboxes[static_cast<std::size_t>(self)].mu);
        if (inboxes[static_cast<std::size_t>(self)].q.empty()) return;
      }
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  for (ProcessId p = 0; p < kN; ++p) threads.emplace_back(worker, p);
  for (auto& t : threads) t.join();

  EXPECT_EQ(r3_violations.load(), 0u);
  EXPECT_EQ(rec.event_count(), static_cast<std::size_t>(2 * kN) *
                                   static_cast<std::size_t>(kSendsPerWorker));

  // lift() re-validates R1-R4 from scratch; a bad merge throws here.
  const udc::Run run = rec.lift();
  std::size_t total = 0;
  for (ProcessId p = 0; p < kN; ++p) total += run.history(p).size();
  EXPECT_EQ(total, rec.event_count());

  // Baseline equivalence: one single-mutex recorder fed the merged order
  // must reproduce the run bit for bit.
  const udc::Run replayed = serial_replay(run);
  ASSERT_EQ(replayed.n(), run.n());
  EXPECT_EQ(replayed.horizon(), run.horizon());
  for (ProcessId p = 0; p < kN; ++p) {
    ASSERT_EQ(replayed.history(p), run.history(p)) << "process " << p;
    for (std::size_t i = 0; i < run.history(p).size(); ++i) {
      EXPECT_EQ(replayed.event_time(p, i), run.event_time(p, i));
    }
  }
}

TEST(RtRecordConcurrent, SealAdmitsNothingAfterTheCrashTick) {
  TraceRecorder rec(2);
  std::atomic<std::size_t> accepted{0};
  std::thread victim([&] {
    for (int k = 0; k < 200'000; ++k) {
      if (!rec.record(0, Event::do_action(3))) return;  // sealed under us
      accepted.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(rec.record_crash(0).has_value());
  victim.join();

  // R4: everything the worker got in, then kCrash, then nothing.
  EXPECT_TRUE(rec.sealed(0));
  EXPECT_FALSE(rec.record(0, Event::do_action(3)).has_value());
  EXPECT_FALSE(rec.record_crash(0).has_value());
  const std::vector<Event> h = rec.history_of(0);
  ASSERT_EQ(h.size(), accepted.load() + 1);
  EXPECT_EQ(h.back().kind, EventKind::kCrash);
  const udc::Run run = rec.lift();  // validates kCrash-is-last
  EXPECT_TRUE(run.is_faulty(0));
  EXPECT_FALSE(run.is_faulty(1));
}

TEST(RtRecordConcurrent, ClockIsMonotonePerThreadAndGloballyDuplicateFree) {
  TraceRecorder rec(kN);
  constexpr int kBumpers = 2;
  constexpr int kOpsPerThread = 5'000;
  std::vector<std::vector<Time>> seen(kN + kBumpers);

  std::vector<std::thread> threads;
  for (int b = 0; b < kBumpers; ++b) {
    threads.emplace_back([&rec, &out = seen[static_cast<std::size_t>(b)]] {
      out.reserve(kOpsPerThread);
      for (int k = 0; k < kOpsPerThread; ++k) out.push_back(rec.bump());
    });
  }
  for (ProcessId p = 0; p < kN; ++p) {
    threads.emplace_back(
        [&rec, p, &out = seen[static_cast<std::size_t>(kBumpers + p)]] {
          out.reserve(kOpsPerThread);
          for (int k = 0; k < kOpsPerThread; ++k) {
            auto t = rec.record(p, Event::do_action(1));
            ASSERT_TRUE(t.has_value());
            out.push_back(*t);
          }
        });
  }
  for (auto& t : threads) t.join();

  std::set<Time> all;
  for (const auto& ticks : seen) {
    for (std::size_t i = 1; i < ticks.size(); ++i) {
      ASSERT_LT(ticks[i - 1], ticks[i]);  // per-thread strictly increasing
    }
    all.insert(ticks.begin(), ticks.end());
  }
  const std::size_t total =
      static_cast<std::size_t>(kN + kBumpers) * kOpsPerThread;
  EXPECT_EQ(all.size(), total);  // no tick handed out twice
  EXPECT_EQ(rec.now(), static_cast<Time>(total));
  EXPECT_EQ(*all.rbegin(), static_cast<Time>(total));
}

}  // namespace
}  // namespace udc
