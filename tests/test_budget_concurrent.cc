// Concurrency coverage for budgeted generation: generate_system_budgeted's
// exact-prefix contract must survive a worker pool.  Jobs are claimed in
// sweep order with the budget checked at claim time, so a max_runs cap
// trips at a deterministic claim index and the result is bit-identical at
// EVERY thread count; a deadline still yields an exact (possibly empty)
// prefix.  The structured partial verdict is the same shape either way —
// downstream checkers see a prefix of the unbudgeted sweep, never a
// mutation.  (Serial cases live in test_budget.cc.)
#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "udc/common/budget.h"
#include "udc/coord/action.h"
#include "udc/coord/nudc_protocol.h"
#include "udc/event/trace.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

struct Sweep {
  SimConfig cfg;
  std::vector<CrashPlan> plans;
  std::vector<InitDirective> workload;
  ProtocolFactory protocol;
};

Sweep small_sweep() {
  Sweep s;
  s.cfg.n = 3;
  s.cfg.horizon = 60;
  s.cfg.channel.drop_prob = 0.2;
  s.plans = all_crash_plans_up_to(3, 1, 5, 10);  // 4 plans
  s.workload = {{5, 0, make_action(0, 0)}};
  s.protocol = [](ProcessId) { return std::make_unique<NUdcProcess>(); };
  return s;
}

TEST(BudgetedParallel, MaxRunsPrefixIsBitIdenticalAtEveryThreadCount) {
  Sweep s = small_sweep();
  System full = generate_system(s.cfg, s.plans, s.workload, nullptr,
                                s.protocol, 2);  // 8 runs
  Budget budget;
  budget.with_max_runs(5);
  BudgetedSystem serial;
  for (unsigned threads : {1u, 2u, 4u}) {
    BudgetedSystem b =
        generate_system_budgeted(s.cfg, s.plans, s.workload, nullptr,
                                 s.protocol, 2, budget, threads);
    EXPECT_EQ(b.status, BudgetStatus::kBudgetExceeded) << threads;
    EXPECT_EQ(b.runs_completed, 5u) << threads;
    ASSERT_TRUE(b.system.has_value()) << threads;
    ASSERT_EQ(b.system->size(), 5u) << threads;
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(format_run(b.system->run(i)), format_run(full.run(i)))
          << "threads=" << threads << " run " << i;
    }
    if (threads == 1u) {
      serial = std::move(b);
    } else {
      // Stats are summed over the prefix only, so they match the serial
      // sweep exactly too — no leakage from discarded in-flight runs.
      EXPECT_EQ(b.stats.runs, serial.stats.runs);
      EXPECT_EQ(b.stats.messages_sent, serial.stats.messages_sent);
      EXPECT_EQ(b.stats.messages_dropped, serial.stats.messages_dropped);
    }
  }
}

TEST(BudgetedParallel, UnlimitedBudgetCompletesIdenticallyOnAPool) {
  Sweep s = small_sweep();
  System full = generate_system(s.cfg, s.plans, s.workload, nullptr,
                                s.protocol, 2);
  BudgetedSystem b =
      generate_system_budgeted(s.cfg, s.plans, s.workload, nullptr,
                               s.protocol, 2, Budget::unlimited(), 4);
  EXPECT_EQ(b.status, BudgetStatus::kComplete);
  ASSERT_TRUE(b.system.has_value());
  ASSERT_EQ(b.system->size(), full.size());
  EXPECT_EQ(b.runs_completed, full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(format_run(b.system->run(i)), format_run(full.run(i)));
  }
}

TEST(BudgetedParallel, ExpiredDeadlineTripsEveryWorkerBeforeTheFirstRun) {
  Sweep s = small_sweep();
  Budget budget;
  budget.with_deadline(std::chrono::milliseconds(0));
  BudgetedSystem b = generate_system_budgeted(
      s.cfg, s.plans, s.workload, nullptr, s.protocol, 2, budget, 4);
  EXPECT_EQ(b.status, BudgetStatus::kBudgetExceeded);
  EXPECT_EQ(b.runs_completed, 0u);
  EXPECT_FALSE(b.system.has_value());
  EXPECT_EQ(b.stats.runs, 0u);
}

TEST(BudgetedParallel, DistantDeadlinePlusRunCapStillGivesTheExactPrefix) {
  Sweep s = small_sweep();
  System full = generate_system(s.cfg, s.plans, s.workload, nullptr,
                                s.protocol, 2);
  Budget budget;
  budget.with_deadline(std::chrono::hours(1)).with_max_runs(3);
  BudgetedSystem b = generate_system_budgeted(
      s.cfg, s.plans, s.workload, nullptr, s.protocol, 2, budget, 4);
  EXPECT_EQ(b.status, BudgetStatus::kBudgetExceeded);
  EXPECT_EQ(b.runs_completed, 3u);
  ASSERT_TRUE(b.system.has_value());
  ASSERT_EQ(b.system->size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(format_run(b.system->run(i)), format_run(full.run(i)));
  }
}

}  // namespace
}  // namespace udc
