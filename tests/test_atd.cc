// §5 / [ATD99]: the weakest-detector class for UDC — strong completeness +
// rotating ("at all times some correct process is unsuspected") accuracy.
#include <gtest/gtest.h>

#include "udc/coord/action.h"
#include "udc/coord/spec.h"
#include "udc/coord/udc_atd.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/atd.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

constexpr int kN = 5;  // 3+ correct survivors so rotation can bite
constexpr Time kHorizon = 500;
constexpr Time kGrace = 180;

class IdleProcess : public Process {
 public:
  void on_receive(ProcessId, const Message&, Env&) override {}
};

System atd_system(const ProtocolFactory& protocol, int t = kN - 3) {
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = kHorizon;
  cfg.channel.drop_prob = 0.25;
  auto workload = make_workload(kN, 1, 5, 7);
  auto plans = all_crash_plans_up_to(kN, t, 25, 120);
  return generate_system(cfg, plans, workload,
                         [] { return std::make_unique<AtdOracle>(6); },
                         protocol, 2);
}

TEST(AtdOracle, SatisfiesAtdAccuracyButNotWeakAccuracy) {
  System sys = atd_system([](ProcessId) {
    return std::make_unique<IdleProcess>();
  });
  AtdAccuracyReport atd = check_atd_accuracy(sys);
  EXPECT_TRUE(atd.holds)
      << (atd.violations.empty() ? "" : atd.violations[0]);
  FdPropertyReport classic = check_fd_properties(sys, kGrace);
  EXPECT_TRUE(classic.strong_completeness) << classic.summary();
  // The strict separation: with >= 3 correct processes every one of them
  // gets suspected at some point, so weak accuracy fails.
  EXPECT_FALSE(classic.weak_accuracy);
}

TEST(AtdOracle, WeakAccuracyImpliesAtdAccuracy) {
  // The inclusion direction: any weakly-accurate detector run also passes
  // the ATD check (the fixed q* is a constant rotating witness).
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = 300;
  auto plans = all_crash_plans_up_to(kN, 2, 25, 120);
  System sys = generate_system(
      cfg, plans, {}, [] { return std::make_unique<StrongOracle>(4, 0.3); },
      [](ProcessId) { return std::make_unique<IdleProcess>(); }, 2);
  ASSERT_TRUE(check_fd_properties(sys, 100).weak_accuracy);
  EXPECT_TRUE(check_atd_accuracy(sys).holds);
}

TEST(Atd, CurrentSuspicionProtocolAttainsUdc) {
  System sys = atd_system([](ProcessId) {
    return std::make_unique<UdcAtdProcess>();
  });
  auto workload = make_workload(kN, 1, 5, 7);
  auto actions = workload_actions(workload);
  CoordReport rep = check_udc(sys, actions, kGrace);
  EXPECT_TRUE(rep.achieved())
      << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST(Atd, CumulativeProtocolIsUnsoundUnderAtdAccuracy) {
  // The Prop 3.1 protocol accumulates suspicions; under the rotating
  // detector every peer is eventually "suspected", so a process can
  // perform WITHOUT A SINGLE ACK, crash immediately, and strand the
  // action.  Deterministic witness: fast rotation covers all peers before
  // the init; the initiator's do-intent (queued ahead of its sends)
  // executes, then it crashes before any α-message escapes.
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = 400;
  cfg.channel.drop_prob = 0.0;
  std::vector<InitDirective> workload{{30, 0, make_action(0, 0)}};
  auto actions = workload_actions(workload);
  CrashPlan plan = make_crash_plan(kN, {{0, 32}});
  AtdOracle oracle(4);  // full rotation well before t=30, and no report due
                        // between the init (t=30) and the crash (t=32), so
                        // the queued do-intent drains at t=31
  SimResult res = simulate(cfg, plan, &oracle, workload, [](ProcessId) {
    return std::make_unique<UdcStrongFdProcess>();
  });
  // The initiator performed...
  EXPECT_TRUE(res.run.do_in(0, 32, make_action(0, 0)));
  // ...and uniformity is gone.
  CoordReport rep = check_udc(res.run, actions, 150);
  EXPECT_FALSE(rep.dc2);
  // The ATD-gated protocol refuses this trap on the same schedule: with no
  // acks and only the CURRENT (partial) suspicion set, the gate stays
  // closed, so the initiator crashes without performing — DC1 satisfied by
  // the crash, DC2 vacuous, UDC intact.
  AtdOracle oracle2(4);
  SimResult res2 = simulate(cfg, plan, &oracle2, workload, [](ProcessId) {
    return std::make_unique<UdcAtdProcess>();
  });
  EXPECT_TRUE(check_udc(res2.run, actions, 150).achieved());
}

TEST(Atd, CurrentSuspicionProtocolAlsoWorksWithWeakAccuracy) {
  // The ATD protocol is not specialized to the rotating detector: under a
  // plain strong detector it degrades gracefully to Prop 3.1 behaviour.
  SimConfig cfg;
  cfg.n = 4;
  cfg.horizon = kHorizon;
  cfg.channel.drop_prob = 0.3;
  auto workload = make_workload(4, 1, 5, 7);
  auto actions = workload_actions(workload);
  auto plans = all_crash_plans_up_to(4, 3, 25, 120);
  System sys = generate_system(
      cfg, plans, workload,
      [] { return std::make_unique<StrongOracle>(4, 0.2); },
      [](ProcessId) { return std::make_unique<UdcAtdProcess>(); }, 2);
  CoordReport rep = check_udc(sys, actions, kGrace);
  EXPECT_TRUE(rep.achieved())
      << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST(AtdAccuracyChecker, FlagsTheViolation) {
  // Hand-built: two processes suspect each other simultaneously.
  Run::Builder b(2);
  b.append(0, Event::suspect(ProcSet::singleton(1)))
      .append(1, Event::suspect(ProcSet::singleton(0)))
      .end_step();
  udc::Run r = std::move(b).build();
  AtdAccuracyReport rep = check_atd_accuracy(r);
  EXPECT_FALSE(rep.holds);
  ASSERT_FALSE(rep.violations.empty());
}

TEST(AtdAccuracyChecker, RotationIsAllowed) {
  // p0 suspects p1 now and p2 later; at each instant someone correct is
  // clean — exactly what separates ATD accuracy from weak accuracy.
  Run::Builder b(3);
  b.append(0, Event::suspect(ProcSet::singleton(1))).end_step();
  b.append(0, Event::suspect(ProcSet::singleton(2))).end_step();
  udc::Run r = std::move(b).build();
  EXPECT_TRUE(check_atd_accuracy(r).holds);
  FdPropertyReport classic = check_fd_properties(r);
  EXPECT_TRUE(classic.weak_accuracy);  // p1? no — p1 suspected at t=1...
  // Careful: weak accuracy here still holds because p0 itself is never
  // suspected.  The separating 2-process case needs the first suspicion
  // RETRACTED before the second lands (in-force sets are what count):
  Run::Builder b2(2);
  b2.append(0, Event::suspect(ProcSet::singleton(1))).end_step();
  b2.append(0, Event::suspect(ProcSet{})).end_step();  // retraction
  b2.append(1, Event::suspect(ProcSet::singleton(0))).end_step();
  udc::Run r2 = std::move(b2).build();
  EXPECT_TRUE(check_atd_accuracy(r2).holds);  // never both at once
  EXPECT_FALSE(check_fd_properties(r2).weak_accuracy);
}

}  // namespace
}  // namespace udc
