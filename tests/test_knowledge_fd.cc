// Knowledge-based suspicion (kt/knowledge_fd) against both hand-built
// systems and the formula-based definition.
#include "udc/kt/knowledge_fd.h"

#include <gtest/gtest.h>

#include "udc/coord/udc_strongfd.h"
#include "udc/fd/oracle.h"
#include "udc/logic/eval.h"
#include "udc/logic/formula.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

// Two 2-process runs; in run 0, p1 crashes and p0 RECEIVES a message first
// (so p0's view distinguishes the runs after the receive); in run 1 nothing
// crashes and the message is not sent.
System crash_knowledge_system() {
  std::vector<udc::Run> runs;
  {
    Run::Builder b(2);
    Message m;
    m.kind = MsgKind::kApp;
    m.a = 7;
    b.append(1, Event::send(0, m)).end_step();
    b.append(1, Event::crash()).end_step();
    b.append(0, Event::recv(1, m)).end_step();
    b.end_step();
    runs.push_back(std::move(b).build());
  }
  {
    Run::Builder b(2);
    b.end_step();
    b.end_step();
    b.end_step();
    b.end_step();
    runs.push_back(std::move(b).build());
  }
  return System(std::move(runs));
}

TEST(KnowledgeFd, VeridicalAndMonotoneWithEvidence) {
  System sys = crash_knowledge_system();
  // Before the receive, p0 cannot distinguish the runs: no knowledge.
  EXPECT_TRUE(known_crashed(sys, Point{0, 2}, 0).empty());
  // After the receive, every point p0 considers possible has p1 crashed...
  // EXCEPT that run 0's own earlier times are not in the class (different
  // history), and the class is exactly {(0,3),(0,4)} where p1 has crashed.
  EXPECT_EQ(known_crashed(sys, Point{0, 3}, 0), ProcSet::singleton(1));
  // Knowledge of one's own crash is never queried in the constructions, but
  // the definition gives: p1 at (0,2..) has history [send, crash].
  EXPECT_EQ(known_crashed(sys, Point{0, 2}, 1), ProcSet::singleton(1));
  // In run 1 nothing is ever known crashed.
  for (Time m = 0; m <= 4; ++m) {
    EXPECT_TRUE(known_crashed(sys, Point{1, m}, 0).empty());
  }
}

TEST(KnowledgeFd, AgreesWithFormulaDefinition) {
  System sys = crash_knowledge_system();
  ModelChecker mc(sys);
  sys.for_each_point([&](Point at) {
    for (ProcessId p = 0; p < sys.n(); ++p) {
      ProcSet direct = known_crashed(sys, at, p);
      for (ProcessId q = 0; q < sys.n(); ++q) {
        EXPECT_EQ(direct.contains(q),
                  mc.holds_at(at, f_knows(p, f_crash(q))))
            << "p=" << p << " q=" << q << " at (" << at.run << "," << at.m
            << ")";
      }
    }
  });
}

TEST(KnowledgeFd, CountKnowledgeMinimizesOverClass) {
  System sys = crash_knowledge_system();
  ProcSet s = ProcSet::full(2);
  // p0 pre-receive: some indistinguishable point has zero crashes.
  EXPECT_EQ(known_crashed_count_in(sys, Point{0, 2}, 0, s), 0);
  // post-receive: every possible point has exactly one crash in S.
  EXPECT_EQ(known_crashed_count_in(sys, Point{0, 3}, 0, s), 1);
  // Restricting S away from the crashed process gives zero.
  EXPECT_EQ(known_crashed_count_in(sys, Point{0, 3}, 0, ProcSet::singleton(0)),
            0);
  // Empty S trivially yields zero.
  EXPECT_EQ(known_crashed_count_in(sys, Point{0, 3}, 0, ProcSet{}), 0);
}

TEST(KnowledgeFd, PerfectOracleYieldsKnowledgeOfCrashes) {
  // In a generated system with a perfect detector, a suspicion event IS
  // knowledge: every indistinguishable point carries the same (accurate)
  // report.
  SimConfig cfg;
  cfg.n = 3;
  cfg.horizon = 60;
  auto plans = all_crash_plans_up_to(3, 2, 10, 30);
  System sys = generate_system(
      cfg, plans, {}, [] { return std::make_unique<PerfectOracle>(4); },
      [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); }, 1);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const udc::Run& r = sys.run(i);
    for (ProcessId p = 0; p < 3; ++p) {
      if (r.is_faulty(p)) continue;
      ProcSet reported = r.suspects_at(p, r.horizon());
      ProcSet known = known_crashed(sys, Point{i, r.horizon()}, p);
      EXPECT_TRUE(reported.subset_of(known))
          << "run " << i << " p" << p << ": reported "
          << reported.to_string() << " known " << known.to_string();
    }
  }
}

}  // namespace
}  // namespace udc
