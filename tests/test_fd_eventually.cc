// The eventually-X detector classes (◇W, ◇S, ◇P), the eventual-accuracy
// checkers, and the CT96 ◇W -> ◇S conversion via current-suspicion gossip.
#include <gtest/gtest.h>

#include "udc/coord/nudc_protocol.h"
#include "udc/fd/convert.h"
#include "udc/fd/oracle.h"
#include "udc/fd/properties.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

constexpr int kN = 4;
constexpr Time kHorizon = 260;
constexpr Time kGrace = 80;

class IdleProcess : public Process {
 public:
  void on_receive(ProcessId, const Message&, Env&) override {}
};

udc::Run run_with(FdOracle& oracle, const CrashPlan& plan,
                  std::uint64_t seed) {
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = kHorizon;
  cfg.seed = seed;
  return simulate(cfg, plan, &oracle, {}, [](ProcessId) {
           return std::make_unique<IdleProcess>();
         }).run;
}

TEST(EventualAccuracy, PerfectDetectorStabilizesAtZero) {
  PerfectOracle oracle(4);
  udc::Run r = run_with(oracle, make_crash_plan(kN, {{1, 30}}), 1);
  EventualAccuracyReport rep = check_eventual_accuracy(r);
  ASSERT_TRUE(rep.eventually_strong());
  EXPECT_EQ(*rep.strong_from, 0);
  ASSERT_TRUE(rep.eventually_weak());
  EXPECT_EQ(*rep.weak_from, 0);
}

TEST(EventualAccuracy, NoisyThenAccurateReportsStabilization) {
  EventuallyStrongOracle oracle(4, 60, 0.5);
  udc::Run r = run_with(oracle, make_crash_plan(kN, {{1, 100}}), 7);
  EventualAccuracyReport rep = check_eventual_accuracy(r);
  ASSERT_TRUE(rep.eventually_strong());
  // Stabilization happens by the oracle's cutoff plus one reporting period.
  EXPECT_LE(*rep.strong_from, oracle.stabilization_time() + 4 + 1);
  EXPECT_TRUE(rep.eventually_weak());
}

TEST(EventualAccuracy, StickyFalseSuspicionNeverStabilizesStrongly) {
  // A Strong oracle's false suspicions are permanent: eventual STRONG
  // accuracy fails (some live process suspected through the horizon), but
  // eventual WEAK accuracy holds (the protected process).
  StrongOracle oracle(4, 0.9);
  udc::Run r = run_with(oracle, make_crash_plan(kN, {{1, 30}}), 3);
  EventualAccuracyReport rep = check_eventual_accuracy(r);
  EXPECT_FALSE(rep.eventually_strong());
  EXPECT_TRUE(rep.eventually_weak());
}

TEST(EventuallyWeakOracle, ProfileIsDiamondW) {
  // Per run: weak completeness; eventual weak accuracy; pre-stabilization
  // noise generally breaks (perpetual) weak accuracy across a sweep.
  FdPropertyReport perpetual;
  bool all_eventually_weak = true;
  std::uint64_t seed = 40;
  for (const CrashPlan& plan :
       {make_crash_plan(kN, {{1, 60}}), make_crash_plan(kN, {{0, 60}, {2, 90}}),
        no_crashes(kN)}) {
    EventuallyWeakOracle oracle(4, 80, 0.5);
    udc::Run r = run_with(oracle, plan, seed++);
    perpetual.merge(check_fd_properties(r, kGrace));
    all_eventually_weak &= check_eventual_accuracy(r).eventually_weak();
  }
  EXPECT_TRUE(perpetual.weak_completeness);
  EXPECT_FALSE(perpetual.strong_completeness);  // only the watcher reports
  EXPECT_FALSE(perpetual.weak_accuracy);        // noise hit everyone at times
  EXPECT_TRUE(all_eventually_weak);
}

TEST(DiamondConversion, CurrentGossipUpgradesCompletenessAndRetracts) {
  // ◇W + current-suspicion gossip -> ◇S: strong completeness, eventual
  // weak accuracy preserved (retractions propagate).
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = 400;
  cfg.channel.drop_prob = 0.2;
  auto plans = std::vector<CrashPlan>{
      make_crash_plan(kN, {{1, 120}}),
      make_crash_plan(kN, {{0, 120}, {3, 180}}),
  };
  System sys = generate_system(
      cfg, plans, {},
      [] { return std::make_unique<EventuallyWeakOracle>(4, 60, 0.4); },
      [](ProcessId) {
        return std::make_unique<SuspicionGossiper>(
            SuspicionGossiper::Mode::kCurrent);
      },
      2);
  FdPropertyReport before = check_fd_properties(sys, /*grace=*/120);
  ASSERT_FALSE(before.strong_completeness);

  System converted = convert_eventually_weak_to_strong(sys);
  FdPropertyReport after = check_fd_properties(converted, /*grace=*/120);
  EXPECT_TRUE(after.strong_completeness) << after.summary();
  EventualAccuracyReport acc = check_eventual_accuracy(converted);
  EXPECT_TRUE(acc.eventually_weak());
}

TEST(DiamondConversion, CumulativeGossipWouldNotRetract) {
  // Contrast: the Prop 2.1 (cumulative) conversion freezes pre-
  // stabilization noise forever — eventual weak accuracy can be lost.
  // This is exactly why CT96's ◇-conversion gossips CURRENT suspicions.
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = 400;
  cfg.channel.drop_prob = 0.2;
  cfg.seed = 77;
  auto plans = std::vector<CrashPlan>{make_crash_plan(kN, {{1, 120}})};
  System sys = generate_system(
      cfg, plans, {},
      [] { return std::make_unique<EventuallyWeakOracle>(4, 60, 0.9); },
      [](ProcessId) {
        return std::make_unique<SuspicionGossiper>(
            SuspicionGossiper::Mode::kCumulative);
      },
      3);
  System converted = convert_weak_to_strong_via_gossip(sys);
  EventualAccuracyReport acc = check_eventual_accuracy(converted);
  // With noise 0.9 for ~60 ticks, every correct process gets falsely
  // suspected and the cumulative union never forgets.
  EXPECT_FALSE(acc.eventually_weak());
}

TEST(EventualAccuracy, SystemLevelTakesWorstRun) {
  std::vector<udc::Run> runs;
  {
    PerfectOracle oracle(4);
    runs.push_back(run_with(oracle, no_crashes(kN), 1));
  }
  {
    EventuallyStrongOracle oracle(4, 100, 0.5);
    runs.push_back(run_with(oracle, make_crash_plan(kN, {{2, 60}}), 2));
  }
  System sys(std::move(runs));
  EventualAccuracyReport rep = check_eventual_accuracy(sys);
  ASSERT_TRUE(rep.eventually_strong());
  EXPECT_GT(*rep.strong_from, 0);  // dominated by the noisy run
}

}  // namespace
}  // namespace udc
