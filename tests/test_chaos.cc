// The chaos engine end to end: fault-script data model, the script-driven
// channel, lying oracles vs the FD property checkers, the search driver, the
// witness shrinker, and bit-identical witness replay — plus the
// DropPolicy::clone regression (per-run policy isolation) the whole engine
// depends on.
#include "udc/chaos/chaos_engine.h"

#include <gtest/gtest.h>

#include "udc/chaos/fault_script.h"
#include "udc/chaos/lying_oracle.h"
#include "udc/chaos/registry.h"
#include "udc/chaos/witness.h"
#include "udc/common/check.h"
#include "udc/coord/action.h"
#include "udc/event/trace.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/simulator.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

FaultScript sample_script() {
  FaultScript s;
  s.crashes.push_back({2, 50});
  s.partitions.push_back({ProcSet::singleton(0), ProcSet::full(4), 40, 90});
  s.partitions.push_back(
      {ProcSet::singleton(1), ProcSet::singleton(3), 10, kTimeMax});
  s.silences.push_back({1, 2, 30, 60});
  s.bursts.push_back({20, 120, 0.25, 0.4});
  LieDirective lie;
  lie.kind = LieDirective::Kind::kWrongSuspicion;
  lie.observer = 1;
  lie.begin = 15;
  lie.end = 95;
  lie.accused = ProcSet::singleton(3);
  s.lies.push_back(lie);
  LieDirective gag;
  gag.kind = LieDirective::Kind::kSuppress;
  gag.begin = 5;
  gag.end = 200;
  s.lies.push_back(gag);
  return s;
}

TEST(FaultScript, FormatParseRoundTrip) {
  FaultScript s = sample_script();
  EXPECT_EQ(s.injection_count(), 7u);
  FaultScript back = FaultScript::parse(s.format());
  EXPECT_EQ(back, s);
  EXPECT_EQ(back.format(), s.format());
}

TEST(FaultScript, ParseRejectsGarbage) {
  EXPECT_THROW(FaultScript::parse("crash victim=banana"), InvariantViolation);
  EXPECT_THROW(FaultScript::parse("meteor strike at=9"), InvariantViolation);
}

TEST(FaultScript, CrashPlanCollapsesDuplicateVictimsToEarliest) {
  FaultScript s;
  s.crashes.push_back({2, 50});
  s.crashes.push_back({2, 30});
  s.crashes.push_back({1, 40});
  CrashPlan plan = s.crash_plan(4);
  EXPECT_EQ(plan.crash_time(2), std::optional<Time>(30));
  EXPECT_EQ(plan.crash_time(1), std::optional<Time>(40));
  EXPECT_FALSE(plan.is_faulty(0));
  // Out-of-range victims are an invariant violation, not UB.
  FaultScript bad;
  bad.crashes.push_back({7, 10});
  EXPECT_THROW(bad.crash_plan(4), InvariantViolation);
}

TEST(FaultScript, ReferencesProcessAtOrAbove) {
  FaultScript s = sample_script();
  EXPECT_TRUE(s.references_process_at_or_above(3));   // full(4) includes p3
  EXPECT_FALSE(s.references_process_at_or_above(4));  // highest mention is p3
  EXPECT_FALSE(FaultScript{}.references_process_at_or_above(2));
}

TEST(FaultScript, StorageFaultsRoundTripGenerateAndReject) {
  // All five kinds, including the every-process wildcard victim and an
  // unbounded window, survive format -> parse exactly.
  FaultScript s;
  const StorageFault::Kind kinds[] = {
      StorageFault::Kind::kTornWrite, StorageFault::Kind::kTruncate,
      StorageFault::Kind::kBitFlip, StorageFault::Kind::kShortRead,
      StorageFault::Kind::kSyncFail,
  };
  ProcessId victim = 0;
  for (StorageFault::Kind kind : kinds) {
    StorageFault f;
    f.kind = kind;
    f.victim = (victim == 2) ? kInvalidProcess : victim;
    f.begin = 10 * victim;
    f.end = (victim % 2 == 0) ? kTimeMax : 10 * victim + 40;
    s.storage_faults.push_back(f);
    ++victim;
  }
  EXPECT_EQ(s.injection_count(), 5u);
  FaultScript back = FaultScript::parse(s.format());
  EXPECT_EQ(back, s);
  EXPECT_EQ(back.format(), s.format());

  // Generation honors max_storage_faults, stays inside the group, and is
  // seed-deterministic like every other directive family.
  ScriptGenOptions opts;
  opts.n = 4;
  opts.max_storage_faults = 3;
  EXPECT_EQ(generate_fault_script(opts, 9), generate_fault_script(opts, 9));
  bool saw_one = false;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    FaultScript g = generate_fault_script(opts, seed);
    saw_one = saw_one || !g.storage_faults.empty();
    EXPECT_LE(g.storage_faults.size(), 3u) << "seed " << seed;
    EXPECT_FALSE(g.references_process_at_or_above(opts.n)) << "seed " << seed;
    EXPECT_EQ(FaultScript::parse(g.format()), g) << "seed " << seed;
  }
  EXPECT_TRUE(saw_one);

  EXPECT_THROW(FaultScript::parse("storage kind=meteor victim=0 begin=0 end=1"),
               InvariantViolation);
}

TEST(FaultScript, GenerationIsSeedDeterministic) {
  ScriptGenOptions opts;
  opts.n = 5;
  opts.horizon = 200;
  opts.max_lies = 2;
  FaultScript a = generate_fault_script(opts, 42);
  FaultScript b = generate_fault_script(opts, 42);
  EXPECT_EQ(a, b);
  // Generated scripts never mention processes outside the group.
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    FaultScript s = generate_fault_script(opts, seed);
    EXPECT_FALSE(s.references_process_at_or_above(opts.n)) << "seed " << seed;
    FaultScript round = FaultScript::parse(s.format());
    EXPECT_EQ(round, s) << "seed " << seed;
  }
}

// --- the script-driven channel --------------------------------------------

TEST(ScriptDropPolicy, EmptyScriptMatchesStockIidChannel) {
  // An unscripted chaos scenario must regenerate the stock channel's runs
  // bit for bit — the replay guarantee hinges on it.
  ChaosScenario sc;
  sc.protocol = "nudc";
  sc.detector = "none";
  sc.n = 4;
  sc.t = 1;
  sc.drop = 0.3;
  ChaosOutcome scripted = run_scenario(sc, FaultScript{});

  SimConfig cfg;
  cfg.n = sc.n;
  cfg.horizon = sc.horizon;
  cfg.seed = sc.seed;
  cfg.channel.max_delay = sc.max_delay;
  cfg.channel.drop_prob = sc.drop;  // plain IidDropPolicy
  auto workload = make_workload(sc.n, sc.actions_per_process, sc.init_start,
                                sc.init_spacing);
  SimResult stock = simulate(cfg, no_crashes(sc.n), nullptr, workload,
                             protocol_factory_by_name(sc.protocol, sc.t));
  EXPECT_EQ(format_run(scripted.run), format_run(stock.run));
}

TEST(ScriptDropPolicy, PartitionAndSilenceWindowsDropExactly) {
  FaultScript s;
  s.partitions.push_back(
      {ProcSet::singleton(0), ProcSet::singleton(1), 10, 20});
  s.silences.push_back({2, 3, 50, 60});
  ScriptDropPolicy policy(s, 0.0);
  Rng rng(7);
  Message m;
  m.kind = MsgKind::kApp;
  EXPECT_FALSE(policy.drop(0, 1, m, 9, rng));   // before the partition
  EXPECT_TRUE(policy.drop(0, 1, m, 10, rng));   // inside [10, 20)
  EXPECT_TRUE(policy.drop(0, 1, m, 19, rng));
  EXPECT_FALSE(policy.drop(0, 1, m, 20, rng));  // healed
  EXPECT_FALSE(policy.drop(1, 0, m, 15, rng));  // reverse direction untouched
  EXPECT_TRUE(policy.drop(2, 3, m, 50, rng));   // silence [50, 60]
  EXPECT_TRUE(policy.drop(2, 3, m, 60, rng));
  EXPECT_FALSE(policy.drop(2, 3, m, 61, rng));
  EXPECT_FALSE(policy.drop(3, 2, m, 55, rng));
}

TEST(DropPolicyClone, StatefulPolicyDoesNotBleedAcrossSimulations) {
  // Regression for ChannelConfig::make_policy handing the SAME custom_policy
  // instance to every simulation: a Gilbert-Elliott policy carries Markov
  // state, so the second run of an identical config used to start in
  // whatever state the first run left behind.
  SimConfig cfg;
  cfg.n = 3;
  cfg.horizon = 120;
  cfg.channel.custom_policy = std::make_shared<GilbertElliottPolicy>(0.3, 0.3);
  std::vector<InitDirective> workload{{5, 0, make_action(0, 0)}};
  auto protocol = protocol_factory_by_name("nudc", 1);
  SimResult first = simulate(cfg, no_crashes(3), nullptr, workload, protocol);
  SimResult second = simulate(cfg, no_crashes(3), nullptr, workload, protocol);
  EXPECT_EQ(format_run(first.run), format_run(second.run));
}

TEST(DropPolicyClone, SweepRunsEqualStandaloneRuns) {
  // Each run of a seed sweep must be a pure function of (config, plan, seed)
  // — i.e. identical to the same-seed standalone simulation.
  SimConfig cfg;
  cfg.n = 3;
  cfg.horizon = 120;
  cfg.channel.custom_policy = std::make_shared<GilbertElliottPolicy>(0.3, 0.3);
  std::vector<InitDirective> workload{{5, 0, make_action(0, 0)}};
  auto protocol = protocol_factory_by_name("nudc", 1);
  std::vector<CrashPlan> plans{no_crashes(3), no_crashes(3)};
  System sys = generate_system(cfg, plans, workload, nullptr, protocol, 1);
  ASSERT_EQ(sys.size(), 2u);
  SimConfig second = cfg;
  second.seed = cfg.seed + 1;
  SimResult alone = simulate(second, no_crashes(3), nullptr, workload,
                             protocol);
  EXPECT_EQ(format_run(sys.run(1)), format_run(alone.run));
}

TEST(DropPolicyClone, CloneIsAFreshInstance) {
  auto ge = std::make_shared<GilbertElliottPolicy>(0.5, 0.5);
  auto clone = ge->clone();
  EXPECT_NE(clone.get(), ge.get());
  auto iid = std::make_shared<IidDropPolicy>(0.1);
  EXPECT_NE(iid->clone().get(), iid.get());
  auto link = std::make_shared<PerLinkDropPolicy>(0.0);
  link->set(0, 1, 1.0);
  auto link_clone = link->clone();
  Rng rng(1);
  Message m;
  m.kind = MsgKind::kApp;
  EXPECT_TRUE(link_clone->drop(0, 1, m, 1, rng));  // copies the rate matrix
  EXPECT_FALSE(link_clone->drop(1, 0, m, 1, rng));
}

// --- lying oracles vs the property checkers --------------------------------
//
// Acceptance bar: for EVERY perpetual class (P/S/Q/W) an injected lie must
// be flagged by check_fd_properties — the clean run certifies the class, the
// lying run fails the advertised property.

ChaosScenario fd_scenario(const std::string& detector) {
  ChaosScenario sc;
  sc.protocol = "reliable";
  sc.detector = detector;
  sc.n = 4;
  sc.t = 1;
  sc.horizon = 240;
  sc.grace = 80;
  return sc;
}

FaultScript crash_only() {
  FaultScript s;
  s.crashes.push_back({3, 30});  // binding: 30 <= horizon - grace
  return s;
}

LieDirective accuse(ProcSet who) {
  LieDirective lie;
  lie.kind = LieDirective::Kind::kWrongSuspicion;
  lie.begin = 100;
  lie.end = 200;
  lie.accused = who;
  return lie;
}

LieDirective suppress_all() {
  LieDirective lie;
  lie.kind = LieDirective::Kind::kSuppress;
  lie.begin = 1;
  lie.end = kTimeMax;
  return lie;
}

TEST(LyingOracle, WrongSuspicionBreaksStrongAccuracyOfP) {
  ChaosScenario sc = fd_scenario("perfect");
  ChaosOutcome clean = run_scenario(sc, crash_only());
  ASSERT_TRUE(clean.fd_report.perfect()) << clean.fd_report.summary();

  FaultScript lying = crash_only();
  lying.lies.push_back(accuse(ProcSet::singleton(1)));  // p1 is alive
  ChaosOutcome bad = run_scenario(sc, lying);
  EXPECT_FALSE(bad.fd_report.strong_accuracy) << bad.fd_report.summary();
}

TEST(LyingOracle, AccusingEveryCorrectProcessBreaksWeakAccuracyOfS) {
  ChaosScenario sc = fd_scenario("strong");
  ChaosOutcome clean = run_scenario(sc, crash_only());
  ASSERT_TRUE(clean.fd_report.strong()) << clean.fd_report.summary();

  FaultScript lying = crash_only();
  ProcSet correct;
  correct.insert(0);
  correct.insert(1);
  correct.insert(2);
  lying.lies.push_back(accuse(correct));
  ChaosOutcome bad = run_scenario(sc, lying);
  EXPECT_FALSE(bad.fd_report.weak_accuracy) << bad.fd_report.summary();
}

TEST(LyingOracle, WrongSuspicionBreaksStrongAccuracyOfQ) {
  // Q = weak completeness + strong accuracy ("quasi" in the registry).
  ChaosScenario sc = fd_scenario("quasi");
  ChaosOutcome clean = run_scenario(sc, crash_only());
  ASSERT_TRUE(clean.fd_report.strong_accuracy) << clean.fd_report.summary();
  ASSERT_TRUE(clean.fd_report.weak_completeness) << clean.fd_report.summary();

  FaultScript lying = crash_only();
  lying.lies.push_back(accuse(ProcSet::singleton(2)));
  ChaosOutcome bad = run_scenario(sc, lying);
  EXPECT_FALSE(bad.fd_report.strong_accuracy) << bad.fd_report.summary();
}

TEST(LyingOracle, AccusingEveryCorrectProcessBreaksWeakAccuracyOfW) {
  ChaosScenario sc = fd_scenario("weak");
  ChaosOutcome clean = run_scenario(sc, crash_only());
  ASSERT_TRUE(clean.fd_report.weak()) << clean.fd_report.summary();

  FaultScript lying = crash_only();
  ProcSet correct;
  correct.insert(0);
  correct.insert(1);
  correct.insert(2);
  lying.lies.push_back(accuse(correct));
  ChaosOutcome bad = run_scenario(sc, lying);
  EXPECT_FALSE(bad.fd_report.weak_accuracy) << bad.fd_report.summary();
}

TEST(LyingOracle, SuppressionBreaksStrongCompletenessOfP) {
  ChaosScenario sc = fd_scenario("perfect");
  FaultScript gagged = crash_only();
  gagged.lies.push_back(suppress_all());
  ChaosOutcome bad = run_scenario(sc, gagged);
  EXPECT_FALSE(bad.fd_report.strong_completeness) << bad.fd_report.summary();
}

TEST(LyingOracle, SuppressingEveryObserverBreaksWeakCompletenessOfW) {
  ChaosScenario sc = fd_scenario("weak");
  FaultScript gagged = crash_only();
  gagged.lies.push_back(suppress_all());
  ChaosOutcome bad = run_scenario(sc, gagged);
  EXPECT_FALSE(bad.fd_report.weak_completeness) << bad.fd_report.summary();
}

// --- search, shrink, replay ------------------------------------------------

TEST(ChaosSearch, RunScenarioIsDeterministic) {
  ChaosScenario sc;
  sc.protocol = "majority";
  sc.n = 5;
  sc.t = 2;
  sc.drop = 0.3;
  FaultScript script = generate_fault_script({.n = 5, .horizon = 240}, 9);
  ChaosOutcome a = run_scenario(sc, script);
  ChaosOutcome b = run_scenario(sc, script);
  EXPECT_EQ(format_run(a.run), format_run(b.run));
  EXPECT_EQ(a.report.dc1, b.report.dc1);
  EXPECT_EQ(a.report.dc2, b.report.dc2);
  EXPECT_EQ(a.report.dc3, b.report.dc3);
}

// One acceptance-bar search per † cell: the violation must come out of
// GENERATED scripts, the shrunk witness must be strictly smaller, its replay
// must still violate, and the serialized form must reproduce bit-identically.
void expect_cell_rediscovered(const ChaosScenario& scenario) {
  ChaosSearchOptions opts;
  opts.iterations = 64;
  ChaosSearchResult found = search_violation(scenario, opts);
  ASSERT_TRUE(found.witness.has_value())
      << "no violation in " << found.iterations_run << " generated scripts";

  ChaosWitness shrunk = shrink_witness(*found.witness);
  // Strictly smaller: fewer injections, or a shorter horizon, or fewer
  // processes.
  const bool smaller =
      shrunk.script.injection_count() < found.witness->script.injection_count() ||
      shrunk.scenario.horizon < found.witness->scenario.horizon ||
      shrunk.scenario.n < found.witness->scenario.n;
  EXPECT_TRUE(smaller) << "shrinker made no progress on "
                       << found.witness->script.injection_count()
                       << " injections";
  EXPECT_LE(shrunk.script.injection_count(),
            found.witness->script.injection_count());

  // The shrunk witness still violates, and replays bit-identically through
  // the serialized form.
  ChaosOutcome re = run_scenario(shrunk.scenario, shrunk.script);
  EXPECT_TRUE(re.violated);
  ReplayResult replay = replay_witness(format_witness(shrunk));
  EXPECT_TRUE(replay.trace_matches);
  EXPECT_TRUE(replay.verdict_matches);
  EXPECT_TRUE(replay.violated);
  EXPECT_TRUE(replay.reproduced());
}

TEST(ChaosSearch, RediscoversMajorityDaggerCell) {
  // Table 1, n/2 <= t < n-1 over unreliable channels: majority echo without
  // a detector ("t-useful necessary").
  ChaosScenario sc;
  sc.protocol = "majority";
  sc.detector = "none";
  sc.n = 5;
  sc.t = 3;
  sc.drop = 0.3;
  expect_cell_rediscovered(sc);
}

TEST(ChaosSearch, RediscoversStrongFdDaggerCell) {
  // Table 1, t >= n-1 over unreliable channels: the strong-FD broadcast
  // stripped of its detector ("Perfect necessary").
  ChaosScenario sc;
  sc.protocol = "strongfd";
  sc.detector = "none";
  sc.n = 4;
  sc.t = 3;
  sc.drop = 0.3;
  expect_cell_rediscovered(sc);
}

TEST(ChaosSearch, NoFalseAlarmOnAHealthyCell) {
  // Inside the possibility region (t < n/2, no script crashes beyond t, low
  // chaos) the search should come up dry — the engine finds real violations,
  // not noise.
  ChaosScenario sc;
  sc.protocol = "reliable";
  sc.detector = "none";
  sc.n = 4;
  sc.t = 1;
  sc.drop = 0.0;
  ChaosSearchOptions opts;
  opts.iterations = 8;
  opts.gen.max_partitions = 0;  // partitions may violate fairness R5, which
  opts.gen.max_silences = 0;    // the possibility direction assumes
  opts.gen.max_bursts = 0;
  ChaosSearchResult r = search_violation(sc, opts);
  EXPECT_FALSE(r.witness.has_value());
  EXPECT_EQ(r.iterations_run, 8);
  EXPECT_EQ(r.status, BudgetStatus::kComplete);
}

TEST(ChaosSearch, BudgetBoundsTheSearch) {
  ChaosScenario sc;
  sc.protocol = "reliable";
  sc.detector = "none";
  sc.n = 4;
  sc.t = 1;
  ChaosSearchOptions opts;
  opts.iterations = 50;
  opts.gen.max_partitions = 0;
  opts.gen.max_silences = 0;
  opts.gen.max_bursts = 0;
  opts.budget.with_max_runs(3);
  ChaosSearchResult r = search_violation(sc, opts);
  EXPECT_FALSE(r.witness.has_value());
  EXPECT_EQ(r.iterations_run, 3);
  EXPECT_EQ(r.status, BudgetStatus::kBudgetExceeded);
}

TEST(Witness, ParseRejectsCorruptInput) {
  EXPECT_THROW(replay_witness("not a witness"), InvariantViolation);
  EXPECT_THROW(parse_witness("udc-witness v1\nscenario protocol=majority"),
               InvariantViolation);
}

TEST(Witness, FormatParseRoundTripsScenarioAndScript) {
  ChaosWitness w;
  w.scenario.protocol = "majority";
  w.scenario.detector = "none";
  w.scenario.n = 5;
  w.scenario.t = 2;
  w.scenario.drop = 0.3;
  w.scenario.spec = ChaosScenario::Spec::kNudc;
  w.script = sample_script();
  ChaosOutcome outcome = run_scenario(w.scenario, w.script);
  w.report = outcome.report;
  ChaosWitness back = parse_witness(format_witness(w, &outcome.run));
  EXPECT_EQ(back.scenario.protocol, w.scenario.protocol);
  EXPECT_EQ(back.scenario.n, w.scenario.n);
  EXPECT_EQ(back.scenario.drop, w.scenario.drop);  // hexfloat exactness
  EXPECT_EQ(back.scenario.spec, w.scenario.spec);
  EXPECT_EQ(back.script, w.script);
  EXPECT_EQ(back.report.dc1, w.report.dc1);
  EXPECT_EQ(back.report.dc2, w.report.dc2);
  EXPECT_EQ(back.report.dc3, w.report.dc3);
}

}  // namespace
}  // namespace udc
