// Happens-before and message chains (§3 footnote 5).
#include "udc/event/causality.h"

#include <gtest/gtest.h>

#include "udc/coord/action.h"
#include "udc/coord/nudc_protocol.h"
#include "udc/kt/knowledge_fd.h"
#include "udc/logic/eval.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

Message app(std::int64_t tag) {
  Message m;
  m.kind = MsgKind::kApp;
  m.a = tag;
  return m;
}

// p0 -t1-> p1 -t4-> p2: a two-hop chain.
udc::Run chain_run() {
  Run::Builder b(3);
  b.append(0, Event::send(1, app(1))).end_step();              // t=1
  b.append(1, Event::recv(0, app(1))).end_step();              // t=2
  b.end_step();                                                // t=3
  b.append(1, Event::send(2, app(2))).end_step();              // t=4
  b.append(2, Event::recv(1, app(2))).end_step();              // t=5
  return std::move(b).build();
}

TEST(Causality, DirectAndTransitiveChains) {
  udc::Run r = chain_run();
  CausalIndex idx(r);
  EXPECT_EQ(idx.earliest_reach(0, 1, 1), 2);
  EXPECT_EQ(idx.earliest_reach(0, 1, 2), 5);  // via p1
  EXPECT_EQ(idx.earliest_reach(1, 4, 2), 5);
  EXPECT_TRUE(idx.has_chain(0, 1, 2, 5));
  EXPECT_FALSE(idx.has_chain(0, 1, 2, 4));
  // No chain backwards.
  EXPECT_EQ(idx.earliest_reach(2, 0, 0), kTimeMax);
}

TEST(Causality, ChainRequiresSendAfterStart) {
  udc::Run r = chain_run();
  CausalIndex idx(r);
  // Starting AFTER p0's only send: nothing reachable.
  EXPECT_EQ(idx.earliest_reach(0, 2, 1), kTimeMax);
  // Starting exactly at the send time counts ("at or after m_p").
  EXPECT_EQ(idx.earliest_reach(0, 1, 1), 2);
}

TEST(Causality, ChainRequiresSendAfterIntermediateReceive) {
  // p1's relay at t=4 is AFTER its receive at t=2: chain valid.  But a
  // hypothetical start at p1 later than 4 finds nothing.
  udc::Run r = chain_run();
  CausalIndex idx(r);
  EXPECT_EQ(idx.earliest_reach(1, 5, 2), kTimeMax);
}

TEST(Causality, HappensBefore) {
  udc::Run r = chain_run();
  CausalIndex idx(r);
  EXPECT_TRUE(idx.happens_before(0, 1, 0, 3));   // same process, later
  EXPECT_FALSE(idx.happens_before(0, 3, 0, 1));
  EXPECT_TRUE(idx.happens_before(0, 1, 2, 5));
  EXPECT_FALSE(idx.happens_before(2, 1, 0, 5));  // never any path back
}

TEST(Causality, RetransmissionsAllUsable) {
  // Two sends of the same message; a chain starting after the first send
  // can still ride the second.
  Run::Builder b(2);
  b.append(0, Event::send(1, app(1))).end_step();  // t=1
  b.append(0, Event::send(1, app(1))).end_step();  // t=2 (retransmission)
  b.append(1, Event::recv(0, app(1))).end_step();  // t=3
  udc::Run r = std::move(b).build();
  CausalIndex idx(r);
  EXPECT_EQ(idx.earliest_reach(0, 2, 1), 3);
  EXPECT_EQ(idx.earliest_reach(0, 1, 1), 3);
  EXPECT_EQ(idx.earliest_reach(0, 3, 1), kTimeMax);
}

TEST(Causality, KnowledgeOfInitImpliesChainFromInitiator) {
  // The information-flow property behind A4/Thm 3.6: in a flooding system,
  // a process (other than the owner) knows init_p'(α) at (r,m) only if a
  // message chain from the init point reaches it by m.
  SimConfig cfg;
  cfg.n = 3;
  cfg.horizon = 120;
  cfg.channel.drop_prob = 0.3;
  cfg.seed = 5;
  auto workload = make_workload(3, 1, 4, 6);
  auto workloads = workload_power_set(workload);
  auto plans = all_crash_plans_up_to(3, 2, 20, 60);
  System sys = generate_system_multi(
      cfg, plans, workloads, nullptr,
      [](ProcessId) { return std::make_unique<NUdcProcess>(); }, 1);
  ModelChecker mc(sys);
  int knowledge_points = 0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const udc::Run& r = sys.run(i);
    CausalIndex idx(r);
    for (const InitDirective& d : workload) {
      for (ProcessId q = 0; q < 3; ++q) {
        if (q == d.p) continue;
        for (Time m = 0; m <= r.horizon(); m += 9) {
          if (mc.holds_at(Point{i, m}, f_knows(q, f_init(d.p, d.action)))) {
            ++knowledge_points;
            EXPECT_TRUE(chain_from_init(idx, r, d.p, d.action, q, m))
                << "run " << i << " q" << q << " m=" << m;
          }
        }
      }
    }
  }
  EXPECT_GT(knowledge_points, 10);
}

}  // namespace
}  // namespace udc
