// Fairness R5, realized operationally: the paper only *assumes* "a message
// sent infinitely often is delivered"; udckit's channels must earn it.  The
// finite surrogate pinned here: across a seed sweep, every message value
// sent >= k times over an i.i.d. lossy channel is delivered within the
// horizon — for the simulator's Network (network.h's header claim) and for
// the live RtTransport, whose retransmission loop supplies the "sent k
// times" half itself.  A never-healing partition is the counterpoint: it
// violates fairness by design, and no amount of resending lands.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <set>

#include "udc/event/message.h"
#include "udc/net/network.h"
#include "udc/rt/transport.h"

namespace udc {
namespace {

Message tagged(std::int64_t tag) {
  Message m;
  m.kind = MsgKind::kApp;
  m.a = tag;
  return m;
}

// Network + IidDropPolicy: 6 message values, each sent 40 times at 60% loss.
// Per value the miss probability is 0.6^40 < 2e-9, and the draws are a pure
// function of the seed — the sweep is deterministic, not flaky.
TEST(R5Realization, RepeatedSendsLandOnTheLossySimulatedChannel) {
  const int kValues = 6;
  const int kCopies = 40;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Network net(2, std::make_shared<IidDropPolicy>(0.6), /*max_delay=*/3,
                seed);
    for (Time at = 1; at <= kCopies; ++at) {
      for (int v = 0; v < kValues; ++v) net.send(0, 1, tagged(v), at);
    }
    std::set<std::int64_t> got;
    for (Time now = 1; now <= kCopies + 4; ++now) {
      while (auto d = net.pop_deliverable(1, now)) got.insert(d->msg.a);
    }
    EXPECT_EQ(got.size(), static_cast<std::size_t>(kValues))
        << "seed " << seed;
  }
}

// The adversarial contrast: a partition that never heals drops every copy.
// R5 is an assumption about channels, not a theorem — this is the channel
// the daggered necessity cells are built from.
TEST(R5Realization, AnUnhealedPartitionDefeatsResending) {
  Network net(2,
              std::make_shared<PartitionDropPolicy>(
                  ProcSet::singleton(0), ProcSet::singleton(1),
                  /*cut_time=*/0, /*background_drop=*/0.0),
              /*max_delay=*/3, /*seed=*/1);
  for (Time at = 1; at <= 50; ++at) net.send(0, 1, tagged(0), at);
  for (Time now = 1; now <= 60; ++now) {
    EXPECT_FALSE(net.pop_deliverable(1, now).has_value());
  }
  EXPECT_EQ(net.total_dropped(), 50u);
}

// Burst loss (Gilbert-Elliott) keeps R5 as long as Bad episodes end with
// positive probability: episodes are almost surely finite, so persistent
// resending still lands every value.
TEST(R5Realization, BurstLossStillSatisfiesFairnessAcrossSeeds) {
  const int kValues = 4;
  const int kCopies = 60;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Network net(2,
                std::make_shared<GilbertElliottPolicy>(
                    /*p_good_to_bad=*/0.4, /*p_bad_to_good=*/0.3),
                /*max_delay=*/3, seed);
    for (Time at = 1; at <= kCopies; ++at) {
      for (int v = 0; v < kValues; ++v) net.send(0, 1, tagged(v), at);
    }
    std::set<std::int64_t> got;
    for (Time now = 1; now <= kCopies + 4; ++now) {
      while (auto d = net.pop_deliverable(1, now)) got.insert(d->msg.a);
    }
    EXPECT_EQ(got.size(), static_cast<std::size_t>(kValues))
        << "seed " << seed;
  }
}

// The live transport closes the loop: its ARQ is what sends "the same
// message" repeatedly, so one protocol-level send() realizes the R5
// antecedent by itself, and quiescence certifies the consequent.
TEST(R5Realization, LiveTransportRetransmissionDeliversEverySend) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::mutex mu;
    std::set<std::int64_t> got;
    RtTransportOptions opts;
    opts.min_delay = std::chrono::microseconds(10);
    opts.max_delay = std::chrono::microseconds(100);
    opts.backoff = BackoffOptions{/*base=*/200, /*growth=*/2.0,
                                  /*cap=*/2'000, /*jitter=*/0.25};
    RtTransport tr(2, opts, std::make_shared<IidDropPolicy>(0.5), seed,
                   [] { return Time{0}; },
                   [&](ProcessId, ProcessId, const Message& m, Time) {
                     std::lock_guard<std::mutex> lock(mu);
                     got.insert(m.a);
                     return true;
                   });
    const int kSends = 12;
    for (int i = 0; i < kSends; ++i) tr.send(0, 1, tagged(i));
    ASSERT_TRUE(tr.quiesce(std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(10'000)))
        << "seed " << seed;
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(got.size(), static_cast<std::size_t>(kSends))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace udc
