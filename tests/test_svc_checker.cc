// Linearizable-session checker (svc/checker): the judge the soak's verdict
// hangs on, so each clause gets a dedicated counterexample — a clean run
// passes, and every specific corruption (lost acked write, divergent
// replica, session reorder, conflicting duplicate, version regress, phantom
// read) trips exactly the clause that names it.
#include "udc/svc/checker.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "udc/coord/action.h"

namespace udc {
namespace {

SvcOp write_op(std::uint64_t session, std::uint64_t seq, std::int32_t reg,
               std::int64_t value) {
  SvcOp op;
  op.session = session;
  op.seq = seq;
  op.kind = SvcOpKind::kWrite;
  op.reg = reg;
  op.value = value;
  return op;
}

SvcBatch batch(std::uint64_t slot, std::vector<SvcOp> ops) {
  SvcBatch b;
  b.slot = slot;
  b.term = 1;
  b.action = make_action(0, static_cast<std::uint32_t>(slot));
  b.ops = std::move(ops);
  return b;
}

SvcClientRecord confirmed_write(std::uint64_t session, std::uint64_t seq,
                                std::int32_t reg, std::int64_t value,
                                std::uint64_t version) {
  SvcClientRecord c;
  c.session = session;
  c.seq = seq;
  c.kind = SvcOpKind::kWrite;
  c.reg = reg;
  c.value = value;
  c.version = version;
  return c;
}

SvcClientRecord confirmed_read(std::uint64_t session, std::int32_t reg,
                               std::int64_t value, std::uint64_t version) {
  SvcClientRecord c;
  c.session = session;
  c.seq = 0;
  c.kind = SvcOpKind::kRead;
  c.reg = reg;
  c.value = value;
  c.version = version;
  return c;
}

// The canonical happy history: two replicas, identical applied order,
// session 1 writes reg 0 twice, session 2 writes reg 1 once.
std::vector<std::vector<SvcBatch>> clean_history() {
  std::vector<SvcBatch> order = {
      batch(1, {write_op(1, 1, 0, 10), write_op(2, 1, 1, 7)}),
      batch(2, {write_op(1, 2, 0, 20)}),
  };
  return {order, order};
}

TEST(SvcChecker, CleanRunAchievesEverything) {
  auto rep = check_sessions(
      clean_history(),
      {confirmed_write(1, 1, 0, 10, 1), confirmed_write(2, 1, 1, 7, 1),
       confirmed_write(1, 2, 0, 20, 2), confirmed_read(2, 0, 20, 2)});
  EXPECT_TRUE(rep.achieved()) << (rep.violations.empty()
                                      ? "no violations"
                                      : rep.violations.front());
  EXPECT_EQ(rep.effective_applies, 6u);  // 3 ops x 2 replicas
  EXPECT_EQ(rep.suppressed_duplicates, 0u);
  EXPECT_TRUE(rep.violations.empty());
}

TEST(SvcChecker, DuplicatesAcrossRetryBatchesAreSuppressedNotViolations) {
  // The adopted orphan batch AND the client's retry batch both carry
  // (session 1, seq 2): second apply suppresses.
  std::vector<SvcBatch> order = {
      batch(1, {write_op(1, 1, 0, 10)}),
      batch(2, {write_op(1, 2, 0, 20)}),
      batch(3, {write_op(1, 2, 0, 20), write_op(2, 1, 1, 7)}),
  };
  auto rep = check_sessions({order, order}, {});
  EXPECT_TRUE(rep.achieved());
  EXPECT_EQ(rep.suppressed_duplicates, 2u);  // one per replica
  EXPECT_EQ(rep.effective_applies, 6u);
}

TEST(SvcChecker, ConflictingDuplicateContentBreaksExactlyOnce) {
  // Two different operations claimed one (session, seq) dedup slot.
  std::vector<SvcBatch> order = {
      batch(1, {write_op(1, 1, 0, 10)}),
      batch(2, {write_op(1, 1, 0, 999)}),
  };
  auto rep = check_sessions({order}, {});
  EXPECT_FALSE(rep.exactly_once);
  EXPECT_FALSE(rep.achieved());
  ASSERT_FALSE(rep.violations.empty());
}

TEST(SvcChecker, SessionSeqHoleBreaksOrder) {
  std::vector<SvcBatch> order = {
      batch(1, {write_op(1, 1, 0, 10)}),
      batch(2, {write_op(1, 3, 0, 30)}),  // seq 2 never applied
  };
  auto rep = check_sessions({order}, {});
  EXPECT_FALSE(rep.per_session_order);
  EXPECT_FALSE(rep.achieved());
}

TEST(SvcChecker, DivergentReplicaBreaksAgreement) {
  std::vector<SvcBatch> a = {batch(1, {write_op(1, 1, 0, 10)}),
                             batch(2, {write_op(1, 2, 0, 20)})};
  std::vector<SvcBatch> b = {batch(1, {write_op(1, 1, 0, 10)})};
  auto rep = check_sessions({a, b}, {});
  EXPECT_FALSE(rep.agreement);
  EXPECT_FALSE(rep.achieved());
}

TEST(SvcChecker, AckedThenLostWriteBreaksClientConfirmed) {
  // The uniformity violation this service exists to rule out: the client
  // saw the ack, no replica kept the write.
  std::vector<SvcBatch> order = {batch(1, {write_op(1, 1, 0, 10)})};
  auto rep = check_sessions({order, order},
                            {confirmed_write(1, 2, 0, 20, 2)});
  EXPECT_FALSE(rep.client_confirmed);
  EXPECT_FALSE(rep.achieved());
}

TEST(SvcChecker, AckedResultMismatchBreaksClientConfirmed) {
  std::vector<SvcBatch> order = {batch(1, {write_op(1, 1, 0, 10)})};
  auto rep = check_sessions({order}, {confirmed_write(1, 1, 0, 11, 1)});
  EXPECT_FALSE(rep.client_confirmed);
}

TEST(SvcChecker, VersionRegressBreaksReadMonotone) {
  std::vector<SvcBatch> order = {batch(1, {write_op(1, 1, 0, 10)}),
                                 batch(2, {write_op(1, 2, 0, 20)})};
  auto rep = check_sessions(
      {order}, {confirmed_read(3, 0, 20, 2), confirmed_read(3, 0, 10, 1)});
  EXPECT_FALSE(rep.read_monotone);
  EXPECT_FALSE(rep.achieved());
}

TEST(SvcChecker, PhantomReadBreaksReadMonotone) {
  // A read reporting a (version, value) no write produced.
  std::vector<SvcBatch> order = {batch(1, {write_op(1, 1, 0, 10)})};
  auto rep = check_sessions({order}, {confirmed_read(3, 0, 777, 1)});
  EXPECT_FALSE(rep.read_monotone);
}

TEST(SvcChecker, ReadOfInitialZeroIsFine) {
  std::vector<SvcBatch> order = {batch(1, {write_op(1, 1, 0, 10)})};
  auto rep = check_sessions({order}, {confirmed_read(3, 5, 0, 0)});
  EXPECT_TRUE(rep.achieved());
}

TEST(SvcChecker, EmptyRunIsVacuouslyConformant) {
  auto rep = check_sessions({{}, {}, {}}, {});
  EXPECT_TRUE(rep.achieved());
  EXPECT_EQ(rep.effective_applies, 0u);
}

}  // namespace
}  // namespace udc
