// HeartbeatDetector (fd/heartbeat.h): the §2.2 oracle as a program.  The
// detector is a pure state machine over an abstract clock, so every
// transition — suspicion on silence, trust restore on a late heartbeat, the
// multiplicative timeout backoff that yields ◇-class accuracy — is pinned
// here without threads.  The live runtime's end-to-end accuracy claims are
// re-checked on lifted runs in test_rt_runtime.cc.
#include "udc/fd/heartbeat.h"

#include <gtest/gtest.h>

#include "udc/common/check.h"
#include "udc/common/proc_set.h"

namespace udc {
namespace {

HeartbeatOptions opts(Time interval, Time timeout, double backoff = 2.0,
                      Time max_timeout = 0) {
  return HeartbeatOptions{interval, timeout, backoff, max_timeout};
}

TEST(Heartbeat, FirstPollEstablishesTheInitialEmptySuspectSet) {
  HeartbeatDetector d(3, 0, opts(10, 50));
  auto first = d.poll(5);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, ProcSet());
  // Change-driven: nothing happened, so no report.
  EXPECT_FALSE(d.poll(6).has_value());
}

TEST(Heartbeat, SilenceStrictlyPastTheTimeoutRaisesASuspicion) {
  HeartbeatDetector d(3, 0, opts(10, 50));
  (void)d.poll(0);
  d.observe_heartbeat(2, 40);
  // At exactly timeout ticks of silence nobody is suspected yet.
  EXPECT_FALSE(d.poll(50).has_value());
  // One tick later peer 1 (silent since 0) trips; peer 2 heartbeat at 40.
  auto report = d.poll(51);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(*report, ProcSet::singleton(1));
  EXPECT_EQ(d.suspects(), ProcSet::singleton(1));
  EXPECT_EQ(d.suspicions_raised(), 1u);
  EXPECT_EQ(d.false_suspicions(), 0u);
}

TEST(Heartbeat, LateHeartbeatRestoresTrustAndBacksTheTimeoutOff) {
  HeartbeatDetector d(3, 0, opts(10, 50));
  (void)d.poll(0);
  d.observe_heartbeat(2, 40);
  ASSERT_TRUE(d.poll(51).has_value());  // suspect 1
  EXPECT_EQ(d.timeout_of(1), 50);
  // The suspicion was false: peer 1 was just slow.  Trust restored, timeout
  // doubled — after finitely many of these the timeout exceeds any delay
  // the network settles into (eventual strong accuracy).
  d.observe_heartbeat(1, 60);
  EXPECT_EQ(d.suspects(), ProcSet());
  EXPECT_EQ(d.timeout_of(1), 100);
  EXPECT_EQ(d.timeout_of(2), 50);  // per-peer: 2's timeout untouched
  EXPECT_EQ(d.false_suspicions(), 1u);
  EXPECT_EQ(d.trust_restores(), 1u);
  // The retraction is a set change, so the next poll reports it.
  auto report = d.poll(61);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(*report, ProcSet());
  // Keep 2 beating so only 1's widened window is being measured.
  d.observe_heartbeat(2, 150);
  // Re-suspecting 1 now needs the widened window: 60 + 100.
  EXPECT_FALSE(d.poll(160).has_value());
  auto again = d.poll(161);
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->contains(1));
}

TEST(Heartbeat, MaxTimeoutCapsTheBackoff) {
  HeartbeatDetector d(2, 0, opts(10, 100, 3.0, /*max_timeout=*/120));
  (void)d.poll(0);
  ASSERT_TRUE(d.poll(101).has_value());
  d.observe_heartbeat(1, 110);
  EXPECT_EQ(d.timeout_of(1), 120);  // 300 capped
}

TEST(Heartbeat, ReportsOnlyOnChange) {
  HeartbeatDetector d(4, 1, opts(10, 50));
  (void)d.poll(0);
  ASSERT_TRUE(d.poll(51).has_value());  // 0, 2, 3 all trip at once
  EXPECT_EQ(d.suspects(), ProcSet::full(4) - ProcSet::singleton(1));
  // Further silence changes nothing: suspected peers stay suspected.
  EXPECT_FALSE(d.poll(200).has_value());
  EXPECT_FALSE(d.poll(400).has_value());
}

TEST(Heartbeat, RejectsBadConstruction) {
  EXPECT_THROW(HeartbeatDetector(0, 0, opts(10, 50)), InvariantViolation);
  EXPECT_THROW(HeartbeatDetector(3, 3, opts(10, 50)), InvariantViolation);
  EXPECT_THROW(HeartbeatDetector(3, 0, opts(0, 50)), InvariantViolation);
  // Timeout must strictly exceed the interval or everyone is suspected
  // between two of their own beacons.
  EXPECT_THROW(HeartbeatDetector(3, 0, opts(10, 10)), InvariantViolation);
  EXPECT_THROW(HeartbeatDetector(3, 0, opts(10, 50, 0.5)),
               InvariantViolation);
}

TEST(Heartbeat, RejectsHeartbeatsFromSelfOrOutOfRange) {
  HeartbeatDetector d(3, 0, opts(10, 50));
  EXPECT_THROW(d.observe_heartbeat(0, 5), InvariantViolation);
  EXPECT_THROW(d.observe_heartbeat(3, 5), InvariantViolation);
}

}  // namespace
}  // namespace udc
