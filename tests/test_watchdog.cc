// ArmWatchdog (rt/remote/watchdog): the wall-clock deadline that turns a
// hung soak arm into diagnostics + a failed job instead of a mute CI
// timeout.  The exit function is injected so a firing is observable here
// without killing the test runner.
#include "udc/rt/remote/watchdog.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

namespace udc {
namespace {

using namespace std::chrono_literals;

TEST(ArmWatchdog, CancelBeforeDeadlineNeverFires) {
  std::atomic<int> diags{0};
  std::atomic<int> exits{0};
  ArmWatchdog dog(10'000ms, [&] { ++diags; }, [&] { ++exits; });
  dog.cancel();
  EXPECT_FALSE(dog.fired());
  EXPECT_EQ(diags.load(), 0);
  EXPECT_EQ(exits.load(), 0);
}

TEST(ArmWatchdog, FiresDiagnosticsThenExitFnAfterDeadline) {
  std::atomic<int> diags{0};
  std::atomic<int> exits{0};
  std::atomic<bool> diag_before_exit{false};
  ArmWatchdog dog(
      30ms, [&] { ++diags; },
      [&] {
        diag_before_exit = diags.load() == 1;
        ++exits;
      });
  // Simulate the hung arm: just wait out the deadline.  cancel() after a
  // firing must still join cleanly, with the diagnostics already complete.
  std::this_thread::sleep_for(120ms);
  dog.cancel();
  EXPECT_TRUE(dog.fired());
  EXPECT_EQ(diags.load(), 1);
  EXPECT_EQ(exits.load(), 1);
  EXPECT_TRUE(diag_before_exit.load());
}

TEST(ArmWatchdog, CancelIsIdempotentAndDestructorIsSafe) {
  std::atomic<int> exits{0};
  {
    ArmWatchdog dog(10'000ms, nullptr, [&] { ++exits; });
    dog.cancel();
    dog.cancel();
  }  // destructor cancels again
  EXPECT_EQ(exits.load(), 0);
}

TEST(WatchdogDiagnostics, DumpsFileSizesAndNodeLogTails) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("udc_watchdog_test." + std::to_string(::getpid()));
  fs::create_directories(dir);
  {
    std::ofstream log(dir / "node-0.log");
    log << "node 0 started\nlast line before the hang\n";
    std::ofstream wal(dir / "wal-1.shard");
    wal << std::string(100, 'x');
  }

  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* mem = ::open_memstream(&buf, &len);
  ASSERT_NE(mem, nullptr);
  dump_run_dir_diagnostics(dir.string(), mem);
  std::fclose(mem);
  std::string out(buf, len);
  ::free(buf);

  EXPECT_NE(out.find("node-0.log"), std::string::npos);
  EXPECT_NE(out.find("wal-1.shard"), std::string::npos);
  EXPECT_NE(out.find("last line before the hang"), std::string::npos);
  // The WAL shard gets a size line but no tail (only node-*.log files do).
  EXPECT_EQ(out.find("tail of wal-1.shard"), std::string::npos);

  fs::remove_all(dir);
}

TEST(WatchdogDiagnostics, MissingRunDirIsReportedNotFatal) {
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* mem = ::open_memstream(&buf, &len);
  ASSERT_NE(mem, nullptr);
  dump_run_dir_diagnostics("/nonexistent/run/dir", mem);
  std::fclose(mem);
  std::string out(buf, len);
  ::free(buf);
  EXPECT_NE(out.find("run dir missing"), std::string::npos);
}

}  // namespace
}  // namespace udc
