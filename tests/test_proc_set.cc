#include "udc/common/proc_set.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace udc {
namespace {

TEST(ProcSet, EmptyByDefault) {
  ProcSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_FALSE(s.contains(0));
}

TEST(ProcSet, InsertEraseContains) {
  ProcSet s;
  s.insert(3);
  s.insert(7);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(5));
  EXPECT_EQ(s.size(), 2);
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.size(), 1);
}

TEST(ProcSet, FullAndComplement) {
  ProcSet all = ProcSet::full(5);
  EXPECT_EQ(all.size(), 5);
  for (ProcessId p = 0; p < 5; ++p) EXPECT_TRUE(all.contains(p));
  EXPECT_FALSE(all.contains(5));

  ProcSet s = ProcSet::singleton(2);
  ProcSet comp = s.complement(5);
  EXPECT_EQ(comp.size(), 4);
  EXPECT_FALSE(comp.contains(2));
  EXPECT_TRUE(comp.contains(4));
}

TEST(ProcSet, FullAt64DoesNotOverflow) {
  ProcSet all = ProcSet::full(64);
  EXPECT_EQ(all.size(), 64);
  EXPECT_TRUE(all.contains(63));
}

TEST(ProcSet, SetAlgebra) {
  ProcSet a;
  a.insert(0);
  a.insert(1);
  ProcSet b;
  b.insert(1);
  b.insert(2);
  EXPECT_EQ((a | b).size(), 3);
  EXPECT_EQ((a & b).size(), 1);
  EXPECT_TRUE((a & b).contains(1));
  EXPECT_EQ((a - b).size(), 1);
  EXPECT_TRUE((a - b).contains(0));
}

TEST(ProcSet, SubsetOf) {
  ProcSet a = ProcSet::singleton(1);
  ProcSet b;
  b.insert(1);
  b.insert(2);
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_TRUE(ProcSet{}.subset_of(a));
  EXPECT_TRUE(a.subset_of(a));
}

TEST(ProcSet, IterationAscending) {
  ProcSet s;
  s.insert(9);
  s.insert(2);
  s.insert(41);
  std::vector<ProcessId> order;
  for (ProcessId p : s) order.push_back(p);
  EXPECT_EQ(order, (std::vector<ProcessId>{2, 9, 41}));
}

TEST(ProcSet, IterationOfEmptySet) {
  int count = 0;
  for (ProcessId p : ProcSet{}) {
    (void)p;
    ++count;
  }
  EXPECT_EQ(count, 0);
}

TEST(ProcSet, ToString) {
  ProcSet s;
  EXPECT_EQ(s.to_string(), "{}");
  s.insert(1);
  s.insert(3);
  EXPECT_EQ(s.to_string(), "{1,3}");
}

TEST(ProcSet, HashDistinguishes) {
  ProcSetHash h;
  EXPECT_NE(h(ProcSet::singleton(0)), h(ProcSet::singleton(1)));
  EXPECT_EQ(h(ProcSet::singleton(3)), h(ProcSet::singleton(3)));
}

}  // namespace
}  // namespace udc
