// Second property-test wave: trace round-trips over real protocol runs,
// fairness-threshold behaviour, the knowledge frontier helper, and the
// gossip-lease parameter of the ◇-conversion.
#include <gtest/gtest.h>

#include "udc/coord/action.h"
#include "udc/coord/spec.h"
#include "udc/coord/nudc_protocol.h"
#include "udc/coord/udc_fip.h"
#include "udc/coord/udc_majority.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/event/fairness.h"
#include "udc/event/trace.h"
#include "udc/fd/convert.h"
#include "udc/fd/oracle.h"
#include "udc/fd/properties.h"
#include "udc/kt/knowledge_fd.h"
#include "udc/logic/eval.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

// ---------------------------------------------------------------------------
// Trace round trip over every shipped protocol (the serializer must cover
// whatever event mixes real executions produce).
// ---------------------------------------------------------------------------
struct TraceParam {
  const char* protocol;
  double drop;
};

class TraceRoundTrip : public ::testing::TestWithParam<TraceParam> {};

TEST_P(TraceRoundTrip, ProtocolRunsSurviveSerialization) {
  const TraceParam param = GetParam();
  SimConfig cfg;
  cfg.n = 4;
  cfg.horizon = 250;
  cfg.channel.drop_prob = param.drop;
  cfg.seed = 77;
  auto workload = make_workload(4, 1, 5, 7);
  CrashPlan plan = make_crash_plan(4, {{1, 40}, {3, 90}});
  ProtocolFactory factory;
  std::string name = param.protocol;
  if (name == "nudc") {
    factory = [](ProcessId) { return std::make_unique<NUdcProcess>(); };
  } else if (name == "strongfd") {
    factory = [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); };
  } else if (name == "fip") {
    factory = [](ProcessId) { return std::make_unique<FipUdcProcess>(); };
  } else {
    factory = [](ProcessId) { return std::make_unique<UdcMajorityProcess>(); };
  }
  StrongOracle oracle(4, 0.2);
  SimResult res = simulate(cfg, plan, &oracle, workload, factory);
  udc::Run parsed = parse_run(format_run(res.run));
  ASSERT_EQ(parsed.horizon(), res.run.horizon());
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_TRUE(parsed.history(p) == res.run.history(p)) << "p" << p;
  }
  // And the parsed run is checker-equivalent.
  auto actions = workload_actions(workload);
  EXPECT_EQ(check_udc(parsed, actions, 100).achieved(),
            check_udc(res.run, actions, 100).achieved());
  EXPECT_EQ(check_fd_properties(parsed, 80).summary(),
            check_fd_properties(res.run, 80).summary());
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, TraceRoundTrip,
    ::testing::Values(TraceParam{"nudc", 0.3}, TraceParam{"strongfd", 0.3},
                      TraceParam{"fip", 0.5}, TraceParam{"majority", 0.3}),
    [](const ::testing::TestParamInfo<TraceParam>& info) {
      return std::string(info.param.protocol) + "_drop" +
             std::to_string(static_cast<int>(info.param.drop * 10));
    });

// ---------------------------------------------------------------------------
// Fairness-threshold monotonicity: raising the threshold can only remove
// violations, and the same silenced channel is caught at every threshold
// at or below its send count.
// ---------------------------------------------------------------------------
class FairnessThreshold : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FairnessThreshold, MonotoneInThreshold) {
  std::size_t threshold = GetParam();
  Message m;
  m.kind = MsgKind::kApp;
  Run::Builder b(2);
  for (int i = 0; i < 12; ++i) {
    b.append(0, Event::send(1, m)).end_step();
  }
  udc::Run r = std::move(b).build();
  FairnessReport rep = check_fairness(r, threshold);
  EXPECT_EQ(rep.fair(), threshold > 12);
  FairnessReport higher = check_fairness(r, threshold + 1);
  EXPECT_LE(higher.violations.size(), rep.violations.size());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, FairnessThreshold,
                         ::testing::Values(1u, 5u, 12u, 13u, 50u));

// ---------------------------------------------------------------------------
// first_knowledge_time: agrees with a manual scan and is monotone under
// information (FIP learns no later than the plain protocol on the same
// seeds).
// ---------------------------------------------------------------------------
TEST(KnowledgeFrontier, MatchesManualScanAndDetectsNever) {
  SimConfig cfg;
  cfg.n = 3;
  cfg.horizon = 120;
  cfg.channel.drop_prob = 0.3;
  cfg.seed = 5;
  auto workload = make_workload(3, 1, 4, 6);
  auto workloads = workload_power_set(workload);
  auto plans = all_crash_plans_up_to(3, 2, 20, 60);
  System sys = generate_system_multi(
      cfg, plans, workloads, nullptr,
      [](ProcessId) { return std::make_unique<NUdcProcess>(); }, 1);
  ModelChecker mc(sys);
  const InitDirective& d = workload[0];
  for (std::size_t i = 0; i < sys.size(); i += 5) {
    for (ProcessId q = 0; q < 3; ++q) {
      auto fast = first_knowledge_time(mc, sys, i, q, f_init(d.p, d.action));
      std::optional<Time> manual;
      for (Time m = 0; m <= sys.run(i).horizon() && !manual; ++m) {
        if (mc.holds_at(Point{i, m}, f_knows(q, f_init(d.p, d.action)))) {
          manual = m;
        }
      }
      EXPECT_EQ(fast, manual) << "run " << i << " q" << q;
    }
  }
  // A no-init run: the owner itself never knows.
  std::size_t empty_run = 0;
  bool found = false;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    if (!sys.run(i).init_in(d.p, sys.run(i).horizon(), d.action) &&
        !sys.run(i).is_faulty(d.p)) {
      empty_run = i;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_FALSE(first_knowledge_time(mc, sys, empty_run, d.p,
                                    f_init(d.p, d.action))
                   .has_value());
}

// ---------------------------------------------------------------------------
// The ◇-conversion lease: too-short leases expire live contributions and
// cost completeness; adequate leases keep it.
// ---------------------------------------------------------------------------
TEST(DiamondLease, TooShortLeasesLoseCompleteness) {
  SimConfig cfg;
  cfg.n = 4;
  cfg.horizon = 400;
  cfg.channel.drop_prob = 0.2;
  cfg.seed = 31;
  auto plans = std::vector<CrashPlan>{make_crash_plan(4, {{1, 120}})};
  System sys = generate_system(
      cfg, plans, {},
      [] { return std::make_unique<EventuallyWeakOracle>(4, 60, 0.4); },
      [](ProcessId) {
        return std::make_unique<SuspicionGossiper>(
            SuspicionGossiper::Mode::kCurrent);
      },
      2);
  System good = convert_eventually_weak_to_strong(sys, /*lease=*/60);
  System starved = convert_eventually_weak_to_strong(sys, /*lease=*/1);
  EXPECT_TRUE(check_fd_properties(good, 120).strong_completeness);
  // lease=1 expires essentially every gossip contribution: only the
  // watcher's own report survives, which is merely weak completeness.
  FdPropertyReport rep = check_fd_properties(starved, 120);
  EXPECT_FALSE(rep.strong_completeness);
  EXPECT_TRUE(rep.weak_completeness);
}

}  // namespace
}  // namespace udc
