// GroupCommitter + ProcessStore group-commit mode (store/group_commit.h,
// DESIGN.md §10): fsync moves off the append path into batched background
// flushes.  The semantic claim under test: what a machine-style crash (the
// kTruncate storage fault, which cuts the WAL back to bytes_synced) can lose
// is exactly the unflushed SUFFIX — nothing with group commit after a flush,
// everything appended since the last one otherwise.  Plus the plumbing:
// commit_every kicks the flusher early, stop() is a final barrier, and idle
// flushes are free.
#include "udc/store/group_commit.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "udc/chaos/fault_script.h"
#include "udc/common/rng.h"
#include "udc/event/event.h"
#include "udc/store/process_store.h"

namespace udc {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  fs::path d = fs::temp_directory_path() / ("udc_gc_" + name);
  fs::remove_all(d);
  fs::create_directories(d);
  return d;
}

StorageFault truncate_fault() {
  StorageFault f;
  f.kind = StorageFault::Kind::kTruncate;
  return f;  // victim = every process, window = always
}

StoreOptions gc_opts(int commit_every,
                     std::chrono::microseconds interval) {
  StoreOptions o;
  o.group_commit = true;
  o.commit_every = commit_every;
  o.commit_interval = interval;
  return o;
}

bool wait_for(const std::function<bool()>& pred,
              std::chrono::milliseconds limit) {
  auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return pred();
}

TEST(GroupCommit, UnflushedBatchIsExactlyWhatAMachineCrashLoses) {
  Rng rng(7);
  // A huge interval and batch keep the flusher out of the picture entirely:
  // nothing ever fsyncs, so the kTruncate fault erases the whole WAL.
  ProcessStore store(fresh_dir("unflushed").string(), 0,
                     gc_opts(1'000'000, std::chrono::seconds(100)),
                     {truncate_fault()});
  for (Time t = 1; t <= 20; ++t) store.append(t, Event::do_action(1));
  store.apply_kill_faults(/*kill_time=*/21, rng);
  EXPECT_TRUE(store.recover().empty());
  const StoreCounters c = store.counters();
  EXPECT_EQ(c.storage_faults_injected, 1u);
  EXPECT_EQ(c.group_commits, 0u);
}

TEST(GroupCommit, FlushMakesTheBatchCrashProof) {
  Rng rng(7);
  ProcessStore store(fresh_dir("flushed").string(), 0,
                     gc_opts(1'000'000, std::chrono::seconds(100)),
                     {truncate_fault()});
  for (Time t = 1; t <= 20; ++t) store.append(t, Event::do_action(1));
  store.flush();  // the group commit, by hand
  store.apply_kill_faults(/*kill_time=*/21, rng);
  EXPECT_EQ(store.recover().size(), 20u);
  const StoreCounters c = store.counters();
  EXPECT_EQ(c.group_commits, 1u);
}

TEST(GroupCommit, CommitEveryKicksTheFlusherAheadOfTheInterval) {
  ProcessStore store(fresh_dir("kick").string(), 0,
                     gc_opts(/*commit_every=*/4, std::chrono::seconds(100)),
                     {});
  GroupCommitter committer;
  committer.attach(&store);
  // Four frames reach commit_every; the kick must beat the 100 s interval
  // by roughly five orders of magnitude.
  for (Time t = 1; t <= 4; ++t) store.append(t, Event::do_action(1));
  EXPECT_TRUE(wait_for([&] { return store.counters().group_commits >= 1; },
                       std::chrono::milliseconds(5'000)));
  committer.stop();
}

TEST(GroupCommit, QuietStoresFlushByIntervalAndIdleFlushesAreFree) {
  ProcessStore store(fresh_dir("interval").string(), 0,
                     gc_opts(/*commit_every=*/1'000'000,
                             std::chrono::microseconds(500)),
                     {});
  GroupCommitter committer;
  committer.attach(&store);
  store.append(1, Event::do_action(1));  // one frame, far below commit_every
  EXPECT_TRUE(wait_for([&] { return store.counters().group_commits >= 1; },
                       std::chrono::milliseconds(5'000)));
  // With nothing pending, the periodic flusher must not keep "committing":
  // idle rounds are no-ops, not counter noise.
  const std::size_t settled = store.counters().group_commits;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(store.counters().group_commits, settled);
  committer.stop();
}

TEST(GroupCommit, StopIsAFinalBarrier) {
  Rng rng(9);
  auto dir = fresh_dir("stop");
  {
    ProcessStore store(dir.string(), 0,
                       gc_opts(1'000'000, std::chrono::seconds(100)),
                       {truncate_fault()});
    GroupCommitter committer;
    committer.attach(&store);
    for (Time t = 1; t <= 3; ++t) store.append(t, Event::do_action(1));
    committer.stop();  // must flush the 3-frame tail
    store.apply_kill_faults(/*kill_time=*/4, rng);
    EXPECT_EQ(store.recover().size(), 3u);
  }
}

TEST(GroupCommit, StopIsIdempotent) {
  ProcessStore store(fresh_dir("idem").string(), 0,
                     gc_opts(8, std::chrono::microseconds(500)), {});
  GroupCommitter committer;
  committer.attach(&store);
  store.append(1, Event::do_action(1));
  committer.stop();
  committer.stop();  // second stop: no deadlock, no double-join
  SUCCEED();
}

}  // namespace
}  // namespace udc
