// run_live (rt/runtime.h) end to end: real threads, a real ARQ transport, a
// real heartbeat detector — and every lifted trace re-checked by the SAME
// spec.h / fd/properties.h checkers the simulator uses.  These tests keep
// the run counts modest; the CI-scale soak (>= 50 mixed-fault runs) lives in
// tools/udc_rt_soak.  The sanitize_for_live tests at the top are pure.
#include "udc/rt/runtime.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "udc/chaos/fault_script.h"
#include "udc/common/check.h"
#include "udc/coord/action.h"

namespace udc {
namespace {

// --- sanitize_for_live ----------------------------------------------------

TEST(SanitizeForLive, CrashesAreDedupedPerVictimAndCappedAtT) {
  FaultScript s;
  s.crashes = {{0, 50}, {0, 20}, {1, 30}, {2, 10}, {7, 5}};  // 7 >= n
  FaultScript out = sanitize_for_live(s, /*n=*/3, /*t=*/1);
  ASSERT_EQ(out.crashes.size(), 1u);  // earliest victim wins the t slots
  EXPECT_EQ(out.crashes[0].victim, 2);
  EXPECT_EQ(out.crashes[0].at, 10);

  FaultScript two = sanitize_for_live(s, /*n=*/3, /*t=*/2);
  ASSERT_EQ(two.crashes.size(), 2u);
  EXPECT_EQ(two.crashes[0].victim, 2);
  EXPECT_EQ(two.crashes[1].victim, 0);
  EXPECT_EQ(two.crashes[1].at, 20);  // dedup keeps 0's earliest injection
}

TEST(SanitizeForLive, UnboundedWindowsAreClampedAndLiesDropped) {
  FaultScript s;
  s.partitions.push_back(
      {ProcSet::singleton(0), ProcSet::full(4), 40, kTimeMax});
  s.silences.push_back({1, 2, 30, kTimeMax});
  s.bursts.push_back({20, kTimeMax, 0.25, 0.4});
  s.lies.push_back(LieDirective{});
  FaultScript out = sanitize_for_live(s, /*n=*/4, /*t=*/1,
                                      /*window_cap=*/500);
  ASSERT_EQ(out.partitions.size(), 1u);
  EXPECT_EQ(out.partitions[0].heal, 540);  // a live run cannot wait forever
  ASSERT_EQ(out.silences.size(), 1u);
  EXPECT_EQ(out.silences[0].end, 530);
  ASSERT_EQ(out.bursts.size(), 1u);
  EXPECT_EQ(out.bursts[0].end, 520);
  EXPECT_TRUE(out.lies.empty());  // no oracle to corrupt below a real FD
}

TEST(SanitizeForLive, OutOfRangeChannelReferencesAreDropped) {
  FaultScript s;
  s.partitions.push_back({ProcSet::singleton(5), ProcSet::full(4), 0, 100});
  s.silences.push_back({9, 0, 0, 100});
  FaultScript out = sanitize_for_live(s, /*n=*/4, /*t=*/1);
  EXPECT_TRUE(out.partitions.empty());
  EXPECT_TRUE(out.silences.empty());
}

// --- live runs ------------------------------------------------------------

std::string violations_of(const RtVerdict& v) {
  std::string all;
  for (const std::string& viol : v.coord.violations) all += viol + "\n";
  return all;
}

// The first four runs of the default udc_rt_soak sweep: generated mixed
// fault scripts (crash + healing partitions + silences + burst loss) over
// both conformance-tested protocols, with run 2 exercising the restart path.
TEST(RunLive, GeneratedFaultScriptsYieldConformantLiftedRuns) {
  ScriptGenOptions gen;
  gen.n = 4;
  gen.horizon = 1'200;
  gen.max_crashes = 1;
  gen.max_partitions = 2;
  gen.max_silences = 2;
  gen.max_bursts = 1;
  gen.max_lies = 0;
  for (int i = 0; i < 4; ++i) {
    RtOptions o;
    o.n = 4;
    o.t = 1;
    o.protocol = (i % 2 == 0) ? "strongfd" : "majority";
    o.restartable_crashes = (i % 3 == 2);
    o.workload = make_workload(4, 2, 60, 40);
    o.seed = 1 + static_cast<std::uint64_t>(i);
    o.script = generate_fault_script(gen, o.seed);
    RtVerdict v = run_live(o);
    EXPECT_EQ(v.status, BudgetStatus::kComplete) << "run " << i;
    EXPECT_TRUE(v.conformant)
        << "run " << i << " (" << o.protocol << ")\n" << violations_of(v);
    ASSERT_TRUE(v.run.has_value());
    EXPECT_GT(v.counters.events_recorded, 0u);
    EXPECT_GT(v.counters.heartbeats, 0u);
  }
}

TEST(RunLive, RestartedWorkerReplaysItsLogAndPreservesUniformity) {
  RtOptions o;
  o.n = 4;
  o.t = 1;
  o.protocol = "strongfd";
  o.restartable_crashes = true;
  o.workload = make_workload(4, 1, 60, 40);
  // Completion cannot be declared before every directive is injected, so a
  // crash scheduled ahead of the first directive (tick 60) is guaranteed to
  // land while the run is still open — the restart path always executes.
  o.script.crashes.push_back({1, 40});
  o.seed = 7;
  RtVerdict v = run_live(o);
  EXPECT_EQ(v.status, BudgetStatus::kComplete);
  // Completion needs every action performed by every unsealed process, so
  // the crashed-then-restarted worker must have come back and caught up.
  EXPECT_GE(v.counters.restarts, 1u);
  // The injection is counted, but restartable crashes record no kCrash
  // event — in the lifted run the process merely goes silent and resumes.
  EXPECT_EQ(v.counters.crashes, 1u);
  EXPECT_TRUE(v.conformant) << violations_of(v);  // checked against DC2'
}

TEST(RunLive, CrashFreeLossFreeRunIsEventuallyStrongAccurate) {
  RtOptions o;
  o.n = 4;
  o.t = 1;
  o.protocol = "strongfd";
  o.workload = make_workload(4, 1, 60, 40);
  o.background_drop = 0.0;
  o.seed = 13;
  RtVerdict v = run_live(o);
  EXPECT_EQ(v.status, BudgetStatus::kComplete);
  EXPECT_TRUE(v.conformant) << violations_of(v);
  // Nobody crashed, so completeness is vacuous; the ◇-class content is
  // accuracy: any (scheduling-induced) false suspicion must have been
  // retracted, after which suspicions stay truthful through the horizon.
  EXPECT_TRUE(v.fd.strong_completeness);
  EXPECT_TRUE(v.accuracy.eventually_strong());
}

TEST(RunLive, TinyDeadlineDegradesToAStructuredPartialVerdict) {
  RtOptions o;
  o.n = 4;
  o.t = 1;
  o.workload = make_workload(4, 1, 60, 40);
  o.seed = 21;
  o.default_deadline = std::chrono::milliseconds(1);
  RtVerdict v = run_live(o);
  EXPECT_EQ(v.status, BudgetStatus::kBudgetExceeded);
  ASSERT_TRUE(v.run.has_value());  // partial trace still lifts and checks
  EXPECT_FALSE(v.conformant);
}

TEST(RunLive, RejectsMalformedOptions) {
  RtOptions bad_n;
  bad_n.n = 0;
  EXPECT_THROW(run_live(bad_n), InvariantViolation);

  RtOptions bad_t;
  bad_t.n = 3;
  bad_t.t = 3;
  EXPECT_THROW(run_live(bad_t), InvariantViolation);

  RtOptions bad_owner;
  bad_owner.n = 4;
  // Directive says process 1 initiates an action owned by process 0.
  bad_owner.workload.push_back({10, 1, make_action(0, 0)});
  EXPECT_THROW(run_live(bad_owner), InvariantViolation);
}

}  // namespace
}  // namespace udc
