// The consensus baselines: CT-S (strong FD, up to n-1 failures) and the
// rotating-coordinator ◇S algorithm (t < n/2), under loss and crashes.
#include <gtest/gtest.h>

#include "udc/consensus/ct_strong.h"
#include "udc/consensus/rotating.h"
#include "udc/consensus/spec.h"
#include "udc/fd/oracle.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/simulator.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

constexpr int kN = 4;
constexpr Time kHorizon = 600;

const std::vector<std::int64_t> kValues{3, 1, 4, 1};

TEST(ConsensusSpec, DecideActionEncoding) {
  EXPECT_TRUE(is_decide_action(decide_action(0)));
  EXPECT_TRUE(is_decide_action(decide_action(57)));
  EXPECT_FALSE(is_decide_action(0));
  EXPECT_EQ(decided_value(decide_action(57)), 57);
}

TEST(ConsensusSpec, ChecksAgreementAndValidity) {
  Run::Builder b(2);
  b.append(0, Event::do_action(decide_action(3)))
      .append(1, Event::do_action(decide_action(1)))
      .end_step();
  udc::Run r = std::move(b).build();
  std::vector<std::int64_t> initial{3, 1};
  ConsensusReport rep = check_consensus(r, initial);
  EXPECT_FALSE(rep.uniform_agreement);
  EXPECT_FALSE(rep.agreement);
  EXPECT_TRUE(rep.validity);
  EXPECT_TRUE(rep.termination);

  Run::Builder b2(2);
  b2.append(0, Event::do_action(decide_action(9))).end_step();
  ConsensusReport rep2 = check_consensus(std::move(b2).build(), initial);
  EXPECT_FALSE(rep2.validity);
  EXPECT_FALSE(rep2.termination);  // p1 never decides
}

TEST(ConsensusSpec, IntegrityCatchesDoubleDecide) {
  Run::Builder b(1);
  b.append(0, Event::do_action(decide_action(1))).end_step();
  b.append(0, Event::do_action(decide_action(1))).end_step();
  ConsensusReport rep =
      check_consensus(std::move(b).build(), std::vector<std::int64_t>{1});
  EXPECT_FALSE(rep.integrity);
}

System consensus_system(const OracleFactory& oracle,
                        const ProtocolFactory& protocol, int t, double drop) {
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = kHorizon;
  cfg.channel.drop_prob = drop;
  auto plans = all_crash_plans_up_to(kN, t, 20, 120);
  return generate_system(cfg, plans, {}, oracle, protocol, 2);
}

TEST(CtStrong, SolvesUniformConsensusUpToNMinus1Failures) {
  System sys = consensus_system(
      [] { return std::make_unique<StrongOracle>(4, 0.2); },
      ct_strong_factory(kValues), kN - 1, 0.3);
  ConsensusReport rep = check_consensus(sys, kValues);
  EXPECT_TRUE(rep.achieved_uniform())
      << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST(CtStrong, PerfectFdAlsoWorks) {
  System sys =
      consensus_system([] { return std::make_unique<PerfectOracle>(4); },
                       ct_strong_factory(kValues), kN - 1, 0.3);
  EXPECT_TRUE(check_consensus(sys, kValues).achieved_uniform());
}

TEST(CtStrong, ReliableChannelsToo) {
  System sys =
      consensus_system([] { return std::make_unique<StrongOracle>(4, 0.2); },
                       ct_strong_factory(kValues), kN - 1, 0.0);
  EXPECT_TRUE(check_consensus(sys, kValues).achieved_uniform());
}

TEST(CtStrong, NoFdBlocksTermination) {
  // FLP in action: with a crash and no detector, phase 1 never completes.
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = kHorizon;
  CrashPlan plan = make_crash_plan(kN, {{2, 15}});
  SimResult res =
      simulate(cfg, plan, nullptr, {}, ct_strong_factory(kValues));
  ConsensusReport rep = check_consensus(res.run, kValues);
  EXPECT_FALSE(rep.termination);
  EXPECT_TRUE(rep.uniform_agreement);  // safety is never lost
}

TEST(Rotating, SolvesConsensusBelowHalfWithDiamondS) {
  System sys = consensus_system(
      [] { return std::make_unique<EventuallyStrongOracle>(4, 60, 0.3); },
      rotating_consensus_factory(kValues), /*t=*/1, 0.3);
  ConsensusReport rep = check_consensus(sys, kValues);
  EXPECT_TRUE(rep.achieved_uniform())
      << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST(Rotating, PerfectFdIsAlsoFine) {
  // ◇S is weaker than P; the algorithm must a fortiori work with P.
  System sys =
      consensus_system([] { return std::make_unique<PerfectOracle>(4); },
                       rotating_consensus_factory(kValues), 1, 0.2);
  EXPECT_TRUE(check_consensus(sys, kValues).achieved_uniform());
}

TEST(Rotating, SafetyHoldsEvenAtHalfFailures) {
  // With t = 2 = n/2 termination may be lost (coordinator majorities can
  // die), but decisions that do happen must stay consistent.
  System sys = consensus_system(
      [] { return std::make_unique<EventuallyStrongOracle>(4, 60, 0.3); },
      rotating_consensus_factory(kValues), 2, 0.3);
  ConsensusReport rep = check_consensus(sys, kValues);
  EXPECT_TRUE(rep.uniform_agreement);
  EXPECT_TRUE(rep.validity);
  EXPECT_TRUE(rep.integrity);
}

TEST(Consensus, DecisionIsDeterministicGivenSeed) {
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = kHorizon;
  cfg.channel.drop_prob = 0.3;
  cfg.seed = 424242;
  StrongOracle o1(4, 0.2), o2(4, 0.2);
  SimResult a = simulate(cfg, no_crashes(kN), &o1, {}, ct_strong_factory(kValues));
  SimResult b = simulate(cfg, no_crashes(kN), &o2, {}, ct_strong_factory(kValues));
  for (ProcessId p = 0; p < kN; ++p) {
    EXPECT_EQ(decision_of(a.run, p), decision_of(b.run, p));
  }
}

}  // namespace
}  // namespace udc
