// Parallel model checking: verdicts, counterexamples, the sharded System
// index, and the kt/ constructions are bit-identical to the serial path at
// every thread count.  Also covers the checker's cache accounting (filled
// slots only, asserted against a recount) and the dense packing of
// mixed-horizon systems.
#include <gtest/gtest.h>

#include "udc/coord/action.h"
#include "udc/coord/spec.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/oracle.h"
#include "udc/kt/knowledge_fd.h"
#include "udc/kt/simulate_fd.h"
#include "udc/logic/eval.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

struct SweepCfg {
  int n;
  Time horizon;
  double drop;
};

System sweep_system(const SweepCfg& cfg) {
  SimConfig sim;
  sim.n = cfg.n;
  sim.horizon = cfg.horizon;
  sim.channel.drop_prob = cfg.drop;
  sim.seed = 11;
  auto workload = make_workload(cfg.n, 1, 4, 6);
  auto plans = all_crash_plans_up_to(cfg.n, cfg.n - 1, 10, cfg.horizon / 3);
  return generate_system(
      sim, plans, workload, [] { return std::make_unique<PerfectOracle>(4); },
      [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); }, 1);
}

// The DC1-DC3 suite for every workload action, plus the K_p(crash q)
// "knows faulty" family and a nested epistemic-temporal formula.
std::vector<FormulaPtr> formula_suite(const System& sys,
                                      std::span<const ActionId> actions) {
  std::vector<FormulaPtr> suite;
  for (ActionId alpha : actions) {
    suite.push_back(dc1_formula(alpha, sys.n()));
    suite.push_back(dc2_formula(alpha, sys.n()));
    suite.push_back(dc3_formula(alpha, sys.n()));
    suite.push_back(udc_formula(alpha, sys.n()));
  }
  for (ProcessId p = 0; p < sys.n(); ++p) {
    for (ProcessId q = 0; q < sys.n(); ++q) {
      suite.push_back(f_implies(f_knows(p, f_crash(q)), f_crash(q)));
      suite.push_back(f_eventually(f_or(f_knows(p, f_crash(q)),
                                        f_not(f_crash(q)))));
    }
  }
  suite.push_back(f_common_knows(ProcSet::full(sys.n()),
                                 f_implies(f_crash(0), f_crash(0))));
  return suite;
}

TEST(CheckerParallel, VerdictsAndWitnessesMatchSerialAcrossSweep) {
  const SweepCfg sweep[] = {
      {3, 60, 0.0}, {3, 90, 0.3}, {4, 60, 0.25}};
  for (const SweepCfg& cfg : sweep) {
    SCOPED_TRACE(testing::Message() << "n=" << cfg.n << " horizon="
                                    << cfg.horizon << " drop=" << cfg.drop);
    System sys = sweep_system(cfg);
    auto workload = make_workload(cfg.n, 1, 4, 6);
    auto actions = workload_actions(workload);
    ModelChecker serial(sys);
    for (const FormulaPtr& phi : formula_suite(sys, actions)) {
      SCOPED_TRACE(phi->to_string());
      auto expect = serial.find_counterexample(phi);
      const bool expect_valid = !expect.has_value();
      for (unsigned threads : {1u, 2u, 8u}) {
        ModelChecker mc(sys);
        auto got = mc.find_counterexample_parallel(phi, threads);
        ASSERT_EQ(got.has_value(), expect.has_value()) << threads << " threads";
        if (expect) {
          EXPECT_EQ(got->run, expect->run) << threads << " threads";
          EXPECT_EQ(got->m, expect->m) << threads << " threads";
        }
        ModelChecker mc2(sys);
        EXPECT_EQ(mc2.valid_parallel(phi, threads), expect_valid)
            << threads << " threads";
      }
    }
  }
}

TEST(CheckerParallel, CacheEntriesMeansSlotsActuallyFilled) {
  System sys = sweep_system({3, 60, 0.3});
  ModelChecker mc(sys);
  // Temporal operators used to bump the counter once per visited point even
  // when the slot was already filled, and then once more at the tail; mixing
  // □/◇/U with overlapping subformulas exercises exactly those paths.
  auto alpha = workload_actions(make_workload(3, 1, 4, 6)).front();
  std::vector<FormulaPtr> suite{
      f_eventually(f_crash(0)),
      f_always(f_implies(f_crash(0), f_crash(0))),
      f_until(f_not(f_crash(0)), f_crash(0)),
      f_eventually(f_knows(1, f_crash(0))),
      dc1_formula(alpha, sys.n()),
      f_common_knows(ProcSet::full(sys.n()), Formula::truth()),
  };
  for (const FormulaPtr& phi : suite) {
    mc.holds_at(Point{0, 0}, phi);
    EXPECT_EQ(mc.cache_entries(), mc.cache_entries_recount())
        << "after " << phi->to_string();
    mc.valid(phi);
    EXPECT_EQ(mc.cache_entries(), mc.cache_entries_recount())
        << "after validity of " << phi->to_string();
  }
  // Re-queries are fully memoized: no slot is filled twice.
  const std::size_t settled = mc.cache_entries();
  for (const FormulaPtr& phi : suite) mc.valid(phi);
  EXPECT_EQ(mc.cache_entries(), settled);
  EXPECT_EQ(mc.cache_entries_recount(), settled);
  // And the counter can never exceed formulas × points.
  EXPECT_LE(mc.cache_entries(), mc.interned_formulas() * sys.total_points());
}

// Runs with different horizons share one dense point numbering: no slot is
// allocated for the phantom points of short runs.
TEST(CheckerParallel, MixedHorizonSystemsArePackedDensely) {
  std::vector<udc::Run> runs;
  {
    Run::Builder b(2);  // horizon 2
    b.append(0, Event::init(1)).end_step();
    b.append(0, Event::do_action(1)).end_step();
    runs.push_back(std::move(b).build());
  }
  {
    Run::Builder b(2);  // horizon 6
    for (int i = 0; i < 3; ++i) b.end_step();
    b.append(1, Event::crash()).end_step();
    for (int i = 0; i < 2; ++i) b.end_step();
    runs.push_back(std::move(b).build());
  }
  {
    Run::Builder b(2);  // horizon 1
    b.end_step();
    runs.push_back(std::move(b).build());
  }
  System sys(std::move(runs));
  // 3 + 7 + 2 points, not 3 runs × (max_horizon + 1) = 21.
  EXPECT_EQ(sys.total_points(), 12u);
  EXPECT_EQ(sys.point_offset(0), 0u);
  EXPECT_EQ(sys.point_offset(1), 3u);
  EXPECT_EQ(sys.point_offset(2), 10u);
  EXPECT_EQ(sys.point_index(Point{2, 1}), 11u);

  ModelChecker mc(sys);
  EXPECT_TRUE(mc.holds_at(Point{0, 2}, f_do(0, 1)));
  EXPECT_TRUE(mc.holds_at(Point{1, 4}, f_crash(1)));
  EXPECT_FALSE(mc.holds_at(Point{1, 3}, f_crash(1)));
  EXPECT_TRUE(mc.valid(f_implies(f_do(0, 1), f_init(0, 1))));
  auto phi = f_eventually(f_crash(1));
  auto serial_cex = mc.find_counterexample(phi);
  ASSERT_TRUE(serial_cex.has_value());
  for (unsigned threads : {1u, 2u, 8u}) {
    ModelChecker mc2(sys);
    auto cex = mc2.find_counterexample_parallel(phi, threads);
    ASSERT_TRUE(cex.has_value());
    EXPECT_EQ(cex->run, serial_cex->run);
    EXPECT_EQ(cex->m, serial_cex->m);
  }
  EXPECT_EQ(mc.cache_entries(), mc.cache_entries_recount());
  // Each allocated table covers exactly total_points 2-bit slots.
  EXPECT_EQ(mc.cache_bytes() % sizeof(std::uint64_t), 0u);
  EXPECT_LE(mc.cache_bytes(),
            mc.interned_formulas() * ((sys.total_points() + 31) / 32) *
                sizeof(std::uint64_t));
}

TEST(CheckerParallel, ShardedIndexBuildMatchesSerial) {
  SweepCfg cfg{4, 80, 0.3};
  SimConfig sim;
  sim.n = cfg.n;
  sim.horizon = cfg.horizon;
  sim.channel.drop_prob = cfg.drop;
  sim.seed = 7;
  auto workload = make_workload(cfg.n, 1, 4, 6);
  auto plans = all_crash_plans_up_to(cfg.n, cfg.n - 1, 10, 30);
  std::vector<udc::Run> runs;
  std::uint64_t seed = 3;
  for (const CrashPlan& plan : plans) {
    SimConfig c = sim;
    c.seed = seed++;
    PerfectOracle oracle(4);
    runs.push_back(simulate(c, plan, &oracle, workload, [](ProcessId) {
                     return std::make_unique<UdcStrongFdProcess>();
                   }).run);
  }
  std::vector<udc::Run> copy = runs;
  System serial(std::move(runs));
  for (unsigned threads : {2u, 3u, 8u}) {
    std::vector<udc::Run> copy2 = copy;
    System sharded(std::move(copy2), threads);
    ASSERT_EQ(sharded.size(), serial.size());
    serial.for_each_point([&](Point at) {
      for (ProcessId p = 0; p < serial.n(); ++p) {
        auto a = serial.equivalence_class(p, at);
        auto b = sharded.equivalence_class(p, at);
        ASSERT_EQ(a.size(), b.size())
            << threads << " threads, p" << p << " run " << at.run << " m "
            << at.m;
        for (std::size_t k = 0; k < a.size(); ++k) {
          ASSERT_TRUE(a[k] == b[k])
              << threads << " threads, p" << p << " member " << k;
        }
      }
    });
  }
}

TEST(CheckerParallel, KtConstructionsMatchSerialAtAnyThreadCount) {
  System sys = sweep_system({3, 60, 0.25});
  System rf1 = build_rf(sys, 1);
  System rfp1 = build_rf_prime(sys, 1);
  for (unsigned threads : {2u, 8u}) {
    System rf = build_rf(sys, threads);
    System rfp = build_rf_prime(sys, threads);
    ASSERT_EQ(rf.size(), rf1.size());
    ASSERT_EQ(rfp.size(), rfp1.size());
    for (std::size_t i = 0; i < rf1.size(); ++i) {
      for (ProcessId p = 0; p < sys.n(); ++p) {
        ASSERT_TRUE(rf.run(i).history(p) == rf1.run(i).history(p))
            << threads << " threads, run " << i << ", p" << p;
        ASSERT_TRUE(rfp.run(i).history(p) == rfp1.run(i).history(p))
            << threads << " threads, run " << i << ", p" << p;
      }
    }
  }
  auto frontier1 = knowledge_frontier(sys, f_crash(0), 1);
  for (unsigned threads : {2u, 8u}) {
    auto frontier = knowledge_frontier(sys, f_crash(0), threads);
    ASSERT_EQ(frontier.size(), frontier1.size());
    for (std::size_t i = 0; i < frontier1.size(); ++i) {
      ASSERT_EQ(frontier[i], frontier1[i]) << threads << " threads, run " << i;
    }
  }
}

}  // namespace
}  // namespace udc
