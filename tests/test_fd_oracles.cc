// Oracles are verified through the run-level property checkers: for each
// oracle class we generate runs across crash plans and assert exactly the
// advertised accuracy/completeness profile.
#include <gtest/gtest.h>

#include "udc/coord/action.h"
#include "udc/coord/nudc_protocol.h"
#include "udc/fd/oracle.h"
#include "udc/fd/properties.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/simulator.h"

namespace udc {
namespace {

constexpr int kN = 4;
constexpr Time kHorizon = 160;
constexpr Time kGrace = 40;

// The FD consumer doesn't matter for oracle properties; an idle protocol
// keeps the runs small.
class IdleProcess : public Process {
 public:
  void on_receive(ProcessId, const Message&, Env&) override {}
};

udc::Run run_with(FdOracle& oracle, const CrashPlan& plan, std::uint64_t seed) {
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = kHorizon;
  cfg.seed = seed;
  return simulate(cfg, plan, &oracle, {}, [](ProcessId) {
           return std::make_unique<IdleProcess>();
         }).run;
}

std::vector<CrashPlan> standard_plans() {
  return {
      no_crashes(kN),
      make_crash_plan(kN, {{2, 20}}),
      make_crash_plan(kN, {{0, 10}, {3, 50}}),
      make_crash_plan(kN, {{0, 10}, {1, 30}, {2, 60}}),
  };
}

template <typename OracleT, typename... Args>
FdPropertyReport sweep(Args... args) {
  FdPropertyReport rep;
  std::uint64_t seed = 1;
  for (const CrashPlan& plan : standard_plans()) {
    OracleT oracle(args...);
    rep.merge(check_fd_properties(run_with(oracle, plan, seed++), kGrace));
  }
  return rep;
}

TEST(PerfectOracle, IsPerfect) {
  FdPropertyReport rep = sweep<PerfectOracle>(Time{4});
  EXPECT_TRUE(rep.perfect()) << rep.summary();
  EXPECT_TRUE(rep.weak_accuracy);
  EXPECT_TRUE(rep.weak_completeness);
}

TEST(StrongOracle, StrongButNotPerfect) {
  FdPropertyReport rep = sweep<StrongOracle>(Time{4}, 0.5);
  EXPECT_TRUE(rep.strong()) << rep.summary();
  // False suspicions must eventually appear across this sweep.
  EXPECT_FALSE(rep.strong_accuracy);
}

TEST(StrongOracle, ZeroFalseRateDegeneratesToPerfect) {
  FdPropertyReport rep = sweep<StrongOracle>(Time{4}, 0.0);
  EXPECT_TRUE(rep.perfect()) << rep.summary();
}

TEST(WeakOracle, WeakButNotStrong) {
  FdPropertyReport rep = sweep<WeakOracle>(Time{4}, 0.0);
  EXPECT_TRUE(rep.weak()) << rep.summary();
  // With n-1 > 1 correct observers and a single watcher per faulty process,
  // strong completeness must fail somewhere in the sweep.
  EXPECT_FALSE(rep.strong_completeness);
}

TEST(ImpermanentStrongOracle, CompletenessOnlyImpermanent) {
  FdPropertyReport rep = sweep<ImpermanentStrongOracle>(Time{4});
  EXPECT_TRUE(rep.impermanent_strong()) << rep.summary();
  EXPECT_TRUE(rep.strong_accuracy);  // it never lies, it just forgets
  EXPECT_FALSE(rep.strong_completeness);
}

TEST(ImpermanentWeakOracle, WeakestOfAll) {
  FdPropertyReport rep = sweep<ImpermanentWeakOracle>(Time{4});
  EXPECT_TRUE(rep.impermanent_weak()) << rep.summary();
  EXPECT_FALSE(rep.weak_completeness);
  EXPECT_FALSE(rep.impermanent_strong_completeness);
}

TEST(EventuallyStrongOracle, CompleteAndEventuallyAccurate) {
  FdPropertyReport rep = sweep<EventuallyStrongOracle>(Time{4}, Time{40}, 0.5);
  EXPECT_TRUE(rep.strong_completeness) << rep.summary();
  // Pre-stabilization noise breaks (perpetual) weak accuracy in the sweep.
  EXPECT_FALSE(rep.weak_accuracy);
}

TEST(EventuallyStrongOracle, AccurateFromStabilizationOn) {
  EventuallyStrongOracle oracle(2, 40, 0.6);
  CrashPlan plan = make_crash_plan(kN, {{1, 30}});
  udc::Run r = run_with(oracle, plan, 3);
  Time stab = oracle.stabilization_time();
  for (ProcessId p = 0; p < kN; ++p) {
    if (plan.is_faulty(p)) continue;
    for (Time m = stab; m <= r.horizon(); ++m) {
      for (ProcessId q : r.suspects_at(p, m)) {
        EXPECT_TRUE(r.crashed_by(q, m))
            << "post-stabilization suspicion of live p" << q;
      }
    }
  }
}

TEST(NullOracle, NeverReports) {
  NullOracle oracle;
  udc::Run r = run_with(oracle, make_crash_plan(kN, {{1, 20}}), 5);
  for (ProcessId p = 0; p < kN; ++p) {
    for (const Event& e : r.history(p).events()) {
      EXPECT_FALSE(e.is_failure_detector_event());
    }
  }
  // With no reports at all, completeness fails but accuracy holds.
  FdPropertyReport rep = check_fd_properties(r, kGrace);
  EXPECT_TRUE(rep.strong_accuracy);
  EXPECT_TRUE(rep.weak_accuracy);
  EXPECT_FALSE(rep.impermanent_weak_completeness);
}

TEST(Oracles, AllFaultyRunIsVacuouslyFine) {
  // F(r) = Proc: weak accuracy/completeness are vacuous by the paper's
  // definitions (they require F(r) != Proc).
  CrashPlan plan = make_crash_plan(
      kN, {{0, 10}, {1, 20}, {2, 30}, {3, 40}});
  WeakOracle oracle(4, 0.3);
  udc::Run r = run_with(oracle, plan, 9);
  FdPropertyReport rep = check_fd_properties(r, kGrace);
  EXPECT_TRUE(rep.weak_accuracy);
  EXPECT_TRUE(rep.weak_completeness);
}

TEST(Oracles, ChangeDrivenEmission) {
  // Oracles are change-driven: a crash-free run gets exactly one report per
  // observer (the initial empty set), and a run with two crashes gets three
  // (initial + one per change), all on period boundaries.
  {
    PerfectOracle oracle(8);
    udc::Run r = run_with(oracle, no_crashes(kN), 2);
    ASSERT_EQ(r.history(0).size(), 1u);
    EXPECT_EQ(r.history(0)[0].kind, EventKind::kSuspect);
    EXPECT_TRUE(r.history(0)[0].suspects.empty());
    EXPECT_EQ(r.event_time(0, 0) % 8, 0);
  }
  {
    PerfectOracle oracle(8);
    udc::Run r = run_with(oracle, make_crash_plan(kN, {{1, 20}, {2, 50}}), 2);
    ASSERT_EQ(r.history(0).size(), 3u);
    EXPECT_TRUE(r.history(0)[0].suspects.empty());
    EXPECT_EQ(r.history(0)[1].suspects, ProcSet::singleton(1));
    EXPECT_EQ(r.history(0)[2].suspects,
              ProcSet::singleton(1) | ProcSet::singleton(2));
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(r.event_time(0, i) % 8, 0);
    }
  }
}

}  // namespace
}  // namespace udc
