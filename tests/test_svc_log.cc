// Replicated service log (svc/log): term rules, quorum, the DC2'
// out-of-order apply rule, floor arithmetic, and the stale-entry erasure
// that failover adoption depends on.
#include "udc/svc/log.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "udc/coord/action.h"

namespace udc {
namespace {

SvcBatch batch(std::uint64_t slot, std::uint64_t term, ActionId action,
               std::initializer_list<std::uint64_t> sessions = {}) {
  SvcBatch b;
  b.slot = slot;
  b.term = term;
  b.action = action;
  for (std::uint64_t s : sessions) {
    SvcOp op;
    op.session = s;
    op.seq = 1;
    op.kind = SvcOpKind::kWrite;
    op.reg = static_cast<std::int32_t>(s % 64);  // one register per session
    op.value = 1;
    b.ops.push_back(op);
  }
  return b;
}

TEST(ReplicatedLog, AcceptTermRules) {
  ReplicatedLog log;
  const ActionId a1 = make_action(0, 1);
  const ActionId a2 = make_action(1, 1);
  EXPECT_TRUE(log.accept(batch(1, 5, a1)));
  // Lower term for the same slot: refused.
  EXPECT_FALSE(log.accept(batch(1, 4, a2)));
  ASSERT_NE(log.entry(1), nullptr);
  EXPECT_EQ(log.entry(1)->batch.action, a1);
  // Equal term, same action: idempotent re-accept.
  EXPECT_TRUE(log.accept(batch(1, 5, a1)));
  // Higher term, different action: the slot is overwritten and the old
  // acks are void (different content, different quorum).
  log.ack(1, 0);
  log.ack(1, 1);
  EXPECT_TRUE(log.has_quorum(1, 3));
  EXPECT_TRUE(log.accept(batch(1, 6, a2)));
  EXPECT_EQ(log.entry(1)->batch.action, a2);
  EXPECT_FALSE(log.has_quorum(1, 3));
  EXPECT_EQ(log.slot_of(a1), std::nullopt);
  EXPECT_EQ(log.slot_of(a2), std::optional<std::uint64_t>(1));
}

TEST(ReplicatedLog, ReSealUnderNewTermVoidsOldTermAcks) {
  // Lost-acknowledged-write regression: a re-elected leader re-seals its
  // own batch (SAME action) under a higher term.  The acks recorded under
  // the old term may cover acceptances the ackers have since replaced —
  // counting them would commit on a fake quorum, and shifting partitions
  // can then commit two different actions at one slot at different
  // replicas.  A term change must void the ack set just like a content
  // change does.
  ReplicatedLog log;
  const ActionId a = make_action(0, 1);
  ASSERT_TRUE(log.accept(batch(1, 2, a)));
  log.ack(1, 0);
  log.ack(1, 1);
  EXPECT_TRUE(log.has_quorum(1, 3));
  // Same action, higher term: accepted, but the quorum must be gone.
  EXPECT_TRUE(log.accept(batch(1, 5, a)));
  EXPECT_EQ(log.entry(1)->batch.term, 5u);
  EXPECT_FALSE(log.has_quorum(1, 3));
  // Fresh acks under the new acceptance rebuild it.
  log.ack(1, 0);
  log.ack(1, 2);
  EXPECT_TRUE(log.has_quorum(1, 3));
  // Same action, SAME term: idempotent — acks survive.
  EXPECT_TRUE(log.accept(batch(1, 5, a)));
  EXPECT_TRUE(log.has_quorum(1, 3));
}

TEST(ReplicatedLog, CommittedSlotNeverChangesContent) {
  ReplicatedLog log;
  const ActionId a1 = make_action(0, 1);
  const ActionId a2 = make_action(1, 1);
  ASSERT_TRUE(log.accept(batch(1, 2, a1)));
  log.mark_committed(1);
  // Re-teach of the same action: fine (idempotent).  Different content at
  // ANY term: refused — that would be the uniformity violation.
  EXPECT_TRUE(log.accept(batch(1, 9, a1)));
  EXPECT_FALSE(log.accept(batch(1, 99, a2)));
  EXPECT_EQ(log.entry(1)->batch.action, a1);
}

TEST(ReplicatedLog, QuorumCountsDistinctAckers) {
  ReplicatedLog log;
  ASSERT_TRUE(log.accept(batch(3, 1, make_action(0, 1))));
  EXPECT_FALSE(log.has_quorum(3, 3));
  log.ack(3, 0);
  log.ack(3, 0);  // duplicate acker: still one disk
  EXPECT_FALSE(log.has_quorum(3, 3));
  log.ack(3, 2);
  EXPECT_TRUE(log.has_quorum(3, 3));
  // Unknown slot: ack is a no-op, quorum is false.
  log.ack(9, 0);
  EXPECT_FALSE(log.has_quorum(9, 3));
}

TEST(ReplicatedLog, StaleEntryErasedWhenActionMovesSlots) {
  // Failover adoption re-seals an orphaned action at a NEW slot; the old
  // uncommitted entry must vanish (it can never commit — its action is
  // committing elsewhere — and left in place it would block the floor).
  ReplicatedLog log;
  const ActionId a = make_action(0, 7);
  ASSERT_TRUE(log.accept(batch(4, 1, a)));
  EXPECT_TRUE(log.accept(batch(6, 2, a)));
  EXPECT_EQ(log.entry(4), nullptr);
  EXPECT_EQ(log.slot_of(a), std::optional<std::uint64_t>(6));
  EXPECT_EQ(log.size(), 1u);
}

TEST(ReplicatedLog, CommittedActionRefusesToMoveSlots) {
  ReplicatedLog log;
  const ActionId a = make_action(0, 7);
  ASSERT_TRUE(log.accept(batch(4, 1, a)));
  log.mark_committed(4);
  EXPECT_FALSE(log.accept(batch(6, 2, a)));
  EXPECT_EQ(log.slot_of(a), std::optional<std::uint64_t>(4));
}

TEST(ReplicatedLog, Dc2PrimeApplicability) {
  ReplicatedLog log;
  // Slot 1 (session 10) uncommitted; slot 2 (session 20) committed.
  ASSERT_TRUE(log.accept(batch(1, 1, make_action(0, 1), {10})));
  ASSERT_TRUE(log.accept(batch(2, 1, make_action(0, 2), {20})));
  log.mark_committed(2);
  // Commutes (disjoint sessions AND registers) with every unapplied
  // earlier slot: applicable out of order — no session can observe the
  // inversion and no replica can diverge.
  EXPECT_TRUE(log.applicable(2));
  EXPECT_EQ(log.ready(), std::vector<std::uint64_t>{2});

  // Slot 4 shares session 10 with unapplied slot 1: must wait.
  ASSERT_TRUE(log.accept(batch(4, 1, make_action(0, 4), {10})));
  log.mark_committed(4);
  EXPECT_FALSE(log.applicable(4));


  // Slot 5 is behind an UNKNOWN slot 3: must wait for catch-up (the gap
  // might hold a shared session).
  ASSERT_TRUE(log.accept(batch(5, 1, make_action(0, 5), {30})));
  log.mark_committed(5);
  EXPECT_FALSE(log.applicable(5));

  // Applying slot 2 out of order: floor stays 0 (slot 1 unapplied).
  EXPECT_TRUE(log.mark_applied(2));
  EXPECT_EQ(log.applied_floor(), 0u);
  EXPECT_EQ(log.applied_above_floor(), std::vector<std::uint64_t>{2});

  // Once slot 1 commits and applies in order, the floor sweeps past the
  // already-applied slot 2.
  log.mark_committed(1);
  EXPECT_FALSE(log.mark_applied(1));
  EXPECT_EQ(log.applied_floor(), 2u);
  EXPECT_TRUE(log.applied_above_floor().empty());
  EXPECT_EQ(log.applied_count(), 2u);
}

TEST(ReplicatedLog, SharedRegisterBlocksOutOfOrderApply) {
  // Different sessions, SAME register: the swapped applies do not commute
  // (final value and acked versions would depend on apply order), so the
  // later slot must wait even though no session is shared.
  ReplicatedLog log;
  SvcOp a;
  a.session = 10;
  a.seq = 1;
  a.kind = SvcOpKind::kWrite;
  a.reg = 7;
  a.value = 1;
  SvcOp b = a;
  b.session = 99;
  b.value = 2;
  SvcBatch b1;
  b1.slot = 1;
  b1.term = 1;
  b1.action = make_action(0, 1);
  b1.ops = {a};
  SvcBatch b2;
  b2.slot = 2;
  b2.term = 1;
  b2.action = make_action(0, 2);
  b2.ops = {b};
  ASSERT_TRUE(log.accept(b1));
  ASSERT_TRUE(log.accept(b2));
  log.mark_committed(2);
  EXPECT_FALSE(log.applicable(2));
  // Once slot 1 is applied, slot 2 is simply next in order.
  log.mark_committed(1);
  EXPECT_FALSE(log.mark_applied(1));
  EXPECT_TRUE(log.applicable(2));
}

TEST(ReplicatedLog, LearnFloorCommitsCoveredSlotsOfTheNoticeTerm) {
  ReplicatedLog log;
  ASSERT_TRUE(log.accept(batch(1, 1, make_action(0, 1), {10})));
  ASSERT_TRUE(log.accept(batch(2, 1, make_action(0, 2), {20})));
  ASSERT_TRUE(log.accept(batch(3, 1, make_action(0, 3), {30})));
  log.learn_floor(2, 1);
  EXPECT_TRUE(log.entry(1)->committed);
  EXPECT_TRUE(log.entry(2)->committed);
  EXPECT_FALSE(log.entry(3)->committed);
  // The learned floor makes 1 and 2 applicable in order.
  EXPECT_EQ(log.ready(), (std::vector<std::uint64_t>{1, 2}));
}

TEST(ReplicatedLog, LearnFloorLeavesOtherTermEntriesForCatchUp) {
  // A term-4 notice floor covering a term-1 local entry proves nothing
  // about that entry's CONTENT (the cluster may have committed different
  // content there under a later leadership) — it must stay uncommitted
  // until catch-up sync re-teaches it with a per-entry flag.
  ReplicatedLog log;
  ASSERT_TRUE(log.accept(batch(1, 1, make_action(0, 1), {10})));
  ASSERT_TRUE(log.accept(batch(2, 4, make_action(1, 1), {20})));
  log.learn_floor(2, 4);
  EXPECT_FALSE(log.entry(1)->committed);
  EXPECT_TRUE(log.entry(2)->committed);
}

TEST(ReplicatedLog, KnownCommittedContentBeatsHigherTermLeftover) {
  // Failover wedge regression: a leader-elect holds an uncommitted term-9
  // leftover at slot 1; the sync majority ships the batch the cluster
  // actually COMMITTED there under term 2.  The committed content must
  // win despite the lower term — refusing it would nack every re-propose
  // forever and freeze the floor below slot 1.
  ReplicatedLog log;
  const ActionId mine = make_action(0, 1);
  const ActionId theirs = make_action(1, 1);
  ASSERT_TRUE(log.accept(batch(1, 9, mine)));
  EXPECT_FALSE(log.accept(batch(1, 2, theirs)));  // plain path: term rules
  EXPECT_TRUE(log.accept(batch(1, 2, theirs), /*known_committed=*/true));
  EXPECT_EQ(log.entry(1)->batch.action, theirs);
  // The displaced action is homeless again (the caller stashes it for
  // adoption before the accept).
  EXPECT_EQ(log.slot_of(mine), std::nullopt);
  // A COMMITTED local entry never yields, vouched or not.
  log.mark_committed(1);
  EXPECT_FALSE(log.accept(batch(1, 99, mine), /*known_committed=*/true));
  EXPECT_EQ(log.entry(1)->batch.action, theirs);
}

TEST(ReplicatedLog, UncommittedListsLowestFirst) {
  ReplicatedLog log;
  ASSERT_TRUE(log.accept(batch(5, 1, make_action(0, 5))));
  ASSERT_TRUE(log.accept(batch(2, 1, make_action(0, 2))));
  ASSERT_TRUE(log.accept(batch(8, 1, make_action(0, 8))));
  log.mark_committed(5);
  auto unc = log.uncommitted();
  ASSERT_EQ(unc.size(), 2u);
  EXPECT_EQ(unc[0]->batch.slot, 2u);
  EXPECT_EQ(unc[1]->batch.slot, 8u);
  EXPECT_EQ(log.max_slot(), 8u);
}

}  // namespace
}  // namespace udc
