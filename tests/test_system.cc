#include "udc/event/system.h"

#include <gtest/gtest.h>

#include "udc/common/check.h"

namespace udc {
namespace {

udc::Run one_init_run(ActionId a, bool second_proc_acts) {
  Run::Builder b(2);
  b.append(0, Event::init(a)).end_step();
  if (second_proc_acts) {
    b.append(1, Event::do_action(a)).end_step();
  } else {
    b.end_step();
  }
  return std::move(b).build();
}

TEST(System, RejectsEmpty) {
  EXPECT_THROW(System(std::vector<udc::Run>{}), InvariantViolation);
}

TEST(System, RejectsMixedN) {
  std::vector<udc::Run> runs;
  runs.push_back(std::move(Run::Builder(2)).build());
  runs.push_back(std::move(Run::Builder(3)).build());
  EXPECT_THROW(System(std::move(runs)), InvariantViolation);
}

TEST(System, BasicAccessors) {
  std::vector<udc::Run> runs;
  runs.push_back(one_init_run(1, false));
  runs.push_back(one_init_run(1, true));
  System sys(std::move(runs));
  EXPECT_EQ(sys.size(), 2u);
  EXPECT_EQ(sys.n(), 2);
  EXPECT_EQ(sys.max_horizon(), 2);
}

TEST(System, EquivalenceClassGroupsIdenticalLocalStates) {
  std::vector<udc::Run> runs;
  runs.push_back(one_init_run(1, false));
  runs.push_back(one_init_run(1, true));
  System sys(std::move(runs));

  // Process 0's view at time 1 is identical in both runs (one init event).
  auto cls = sys.equivalence_class(0, Point{0, 1});
  // Members: (run0, m=1), (run0, m=2), (run1, m=1), (run1, m=2).
  EXPECT_EQ(cls.size(), 4u);

  // Process 1 at time 2 differs between the runs.
  auto cls1 = sys.equivalence_class(1, Point{1, 2});
  EXPECT_EQ(cls1.size(), 1u);
  EXPECT_EQ(cls1[0].run, 1u);
  EXPECT_EQ(cls1[0].m, 2);

  // Process 1 with an empty history cannot tell any of the runs/times with
  // an empty p1-history apart: times 0,1,2 of run 0 and times 0,1 of run 1.
  auto cls_empty = sys.equivalence_class(1, Point{0, 0});
  EXPECT_EQ(cls_empty.size(), 5u);
}

TEST(System, EquivalenceClassContainsSelf) {
  std::vector<udc::Run> runs;
  runs.push_back(one_init_run(3, true));
  System sys(std::move(runs));
  sys.for_each_point([&](Point at) {
    for (ProcessId p = 0; p < sys.n(); ++p) {
      auto cls = sys.equivalence_class(p, at);
      bool found = false;
      for (Point q : cls) {
        if (q == at) found = true;
      }
      EXPECT_TRUE(found) << "point (" << at.run << "," << at.m
                         << ") missing from own class of p" << p;
    }
  });
}

TEST(System, PointBeyondHorizonRejected) {
  std::vector<udc::Run> runs;
  runs.push_back(one_init_run(1, false));
  System sys(std::move(runs));
  EXPECT_THROW(sys.equivalence_class(0, Point{0, 99}), InvariantViolation);
  EXPECT_THROW(sys.equivalence_class(0, Point{5, 0}), InvariantViolation);
}

TEST(System, ForEachPointCoversEverything) {
  std::vector<udc::Run> runs;
  runs.push_back(one_init_run(1, false));  // horizon 2
  runs.push_back(one_init_run(1, true));   // horizon 2
  System sys(std::move(runs));
  std::size_t count = 0;
  sys.for_each_point([&](Point) { ++count; });
  EXPECT_EQ(count, 6u);  // 2 runs x (horizon 2 + 1)
}

}  // namespace
}  // namespace udc
