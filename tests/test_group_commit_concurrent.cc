// Concurrent group-commit property test (store/group_commit.h, DESIGN.md
// §11), built to run under TSan: many stores append from their own worker
// threads while ONE committer batches their barriers, a scripted kSyncFail
// window poisons barriers mid-run, and the workers are then hard-killed
// under the machine-crash kTruncate fault WHILE the committer is still
// live.  The property under test is the loss-window contract:
//
//   durable_floor() <= |recover()| <= frames appended,
//   and recover() is an EXACT PREFIX of what was appended
//
// — i.e. what any kill loses is "since the last successful group commit",
// never a hole, never a reordering, never anything a barrier already
// covered.  The sweep runs the same scenario through every SyncBarrier
// engine (auto / io_uring / pool / serial; unavailable engines fall back),
// so the batched-fdatasync plumbing is raced under every implementation.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "udc/chaos/fault_script.h"
#include "udc/common/rng.h"
#include "udc/event/event.h"
#include "udc/store/group_commit.h"
#include "udc/store/process_store.h"
#include "udc/store/sync_barrier.h"

namespace udc {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  fs::path d = fs::temp_directory_path() / ("udc_gcc_" + name);
  fs::remove_all(d);
  fs::create_directories(d);
  return d;
}

// The event each worker appends at tick t: cycle through the record kinds
// so the ring's variable-length frames actually vary (send/recv carry a
// message, do_action is near-minimal).
Event event_at(ProcessId self, Time t) {
  Message m;
  m.kind = MsgKind::kApp;
  m.a = static_cast<std::int64_t>(self) * 1'000'000 + t;
  switch (t % 3) {
    case 0:
      return Event::send(static_cast<ProcessId>((self + 1) % 8), m);
    case 1:
      return Event::recv(static_cast<ProcessId>((self + 7) % 8), m);
    default:
      return Event::do_action(static_cast<ActionId>(t));
  }
}

struct SweepCase {
  CommitBarrier mode;
  const char* name;
};

class GroupCommitConcurrent : public ::testing::TestWithParam<SweepCase> {};

// The full pipeline under fire: 8 stores x 8 workers, staged rings, small
// segments (so rotation happens mid-run), snapshot rotation interleaved,
// a kSyncFail window over the middle third, then kill-under-committer and
// the prefix/floor assertions per store.
TEST_P(GroupCommitConcurrent, KillMidBatchLosesAtMostSinceLastCommit) {
  const int n = 8;
  const Time kEvents = 600;
  const SweepCase param = GetParam();
  auto dir = fresh_dir(std::string("kill_") + param.name);

  StoreOptions o;
  o.group_commit = true;
  o.segment_bytes = 4 * 1024;  // many rotations across 600 frames
  o.ring_frames = 64;          // small ring: self-drain backpressure too
  o.commit_every = 16;
  o.commit_interval = std::chrono::microseconds{200};
  o.snapshot_every = 150;  // rotations race the committer's drains
  o.barrier = param.mode;

  // Machine-crash semantics at every kill, plus poisoned barriers over the
  // middle third of the run.
  StorageFault trunc;
  trunc.kind = StorageFault::Kind::kTruncate;
  StorageFault sync_fail;
  sync_fail.kind = StorageFault::Kind::kSyncFail;
  sync_fail.begin = kEvents / 3;
  sync_fail.end = 2 * kEvents / 3;

  std::vector<std::unique_ptr<ProcessStore>> stores;
  for (ProcessId p = 0; p < n; ++p) {
    stores.push_back(std::make_unique<ProcessStore>(
        dir.string(), p, o, std::vector<StorageFault>{trunc, sync_fail}));
  }
  GroupCommitter committer(GroupCommitOptions{param.mode, 4});
  for (auto& s : stores) committer.attach(s.get());

  {
    std::vector<std::thread> workers;
    for (ProcessId p = 0; p < n; ++p) {
      workers.emplace_back([&, p] {
        ProcessStore& st = *stores[static_cast<std::size_t>(p)];
        for (Time t = 1; t <= kEvents; ++t) {
          st.append(t, event_at(p, t));
          // Park once inside the kSyncFail window, until a failing round
          // has actually hit this store — the failure counter below must
          // not depend on scheduler luck (this box runs ctest heavily
          // oversubscribed).  NOT at a multiple of snapshot_every: a
          // rotation empties the WAL, and idle failing rounds are
          // (correctly) not counted.  The round is guaranteed to come:
          // ~100 frames are staged since the last rotation, well past
          // commit_every, so the committer has already been kicked.
          if (t == kEvents / 2 - 50) {
            const auto deadline =
                std::chrono::steady_clock::now() + std::chrono::seconds(10);
            while (st.counters().sync_failures == 0 &&
                   std::chrono::steady_clock::now() < deadline) {
              std::this_thread::sleep_for(std::chrono::microseconds(200));
            }
          }
        }
      });
    }
    for (auto& w : workers) w.join();
  }

  // Floors are read while the committer is STILL RUNNING — they only grow,
  // so each remains a valid lower bound for its store's recovery.
  std::vector<std::size_t> floors;
  for (auto& s : stores) floors.push_back(s->durable_floor());

  // Kill every store under the live committer: close() must wait out any
  // in-flight drain, a round that pinned a now-closed writer must see a
  // non-pending ticket, and nothing may deadlock or race.  Only then stop.
  Rng rng(20260808);
  for (auto& s : stores) s->apply_kill_faults(kEvents + 1, rng);
  committer.stop();

  std::size_t sync_failures = 0;
  for (ProcessId p = 0; p < n; ++p) {
    ProcessStore& st = *stores[static_cast<std::size_t>(p)];
    const std::size_t floor = floors[static_cast<std::size_t>(p)];
    std::vector<StoreRecord> rec = st.recover();
    ASSERT_GE(rec.size(), floor) << "store " << int(p)
                                 << " lost barrier-covered frames";
    ASSERT_LE(rec.size(), static_cast<std::size_t>(kEvents));
    // Exact prefix: ticks were appended 1..kEvents in order, so recovery
    // must hand back 1..|rec| with the matching payloads.
    for (std::size_t i = 0; i < rec.size(); ++i) {
      ASSERT_EQ(rec[i].t, static_cast<Time>(i + 1))
          << "store " << int(p) << " hole/reorder at " << i;
      ASSERT_EQ(rec[i].e, event_at(p, rec[i].t))
          << "store " << int(p) << " payload mismatch at " << i;
    }
    sync_failures += st.counters().sync_failures;
  }
  // The poisoned window really bit: with a 2 ms mid-window park per worker
  // and a 200 µs interval, interval rounds must have hit the failing flag.
  EXPECT_GE(sync_failures, 1u);
  fs::remove_all(dir);
}

// A full ring is the only backpressure on the append fast path: with the
// committer's kicks disabled (huge commit_every / interval), the appender
// itself must take the drain lock and empty the ring — and everything it
// drained plus a final flush must survive the machine-crash truncate.
TEST_P(GroupCommitConcurrent, FullRingSelfDrainThenFlushIsCrashProof) {
  const SweepCase param = GetParam();
  auto dir = fresh_dir(std::string("ring_") + param.name);
  StoreOptions o;
  o.group_commit = true;
  o.segment_bytes = 2 * 1024;
  o.ring_frames = 8;  // overflows every few appends
  o.commit_every = 1'000'000;
  o.commit_interval = std::chrono::seconds{100};
  o.snapshot_every = 1'000'000;
  o.barrier = param.mode;
  StorageFault trunc;
  trunc.kind = StorageFault::Kind::kTruncate;
  ProcessStore store(dir.string(), 0, o, {trunc});
  for (Time t = 1; t <= 1'000; ++t) store.append(t, event_at(0, t));
  store.flush();
  Rng rng(11);
  store.apply_kill_faults(1'001, rng);
  std::vector<StoreRecord> rec = store.recover();
  ASSERT_EQ(rec.size(), 1'000u);
  for (std::size_t i = 0; i < rec.size(); ++i) {
    ASSERT_EQ(rec[i].t, static_cast<Time>(i + 1));
  }
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, GroupCommitConcurrent,
    ::testing::Values(SweepCase{CommitBarrier::kAuto, "auto"},
                      SweepCase{CommitBarrier::kUring, "uring"},
                      SweepCase{CommitBarrier::kPool, "pool"},
                      SweepCase{CommitBarrier::kSerial, "serial"}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace udc
