// Propositions 2.1 and 2.2: conversions between detector classes preserve
// accuracy while upgrading completeness.
#include "udc/fd/convert.h"

#include <gtest/gtest.h>

#include "udc/coord/nudc_protocol.h"
#include "udc/fd/oracle.h"
#include "udc/fd/properties.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/simulator.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

constexpr int kN = 4;
constexpr Time kHorizon = 240;
constexpr Time kGrace = 80;

System gossiping_system(OracleFactory oracle_factory) {
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = kHorizon;
  cfg.channel.drop_prob = 0.2;
  auto plans = std::vector<CrashPlan>{
      no_crashes(kN),
      make_crash_plan(kN, {{2, 30}}),
      make_crash_plan(kN, {{0, 20}, {3, 60}}),
  };
  return generate_system(cfg, plans, {}, oracle_factory, [](ProcessId) {
    return std::make_unique<SuspicionGossiper>();
  }, /*seeds_per_plan=*/2);
}

TEST(Prop22, ImpermanentStrongBecomesStrong) {
  System sys = gossiping_system(
      [] { return std::make_unique<ImpermanentStrongOracle>(4); });
  FdPropertyReport before = check_fd_properties(sys, kGrace);
  ASSERT_TRUE(before.impermanent_strong()) << before.summary();
  ASSERT_FALSE(before.strong_completeness);

  System converted = convert_impermanent_to_permanent(sys);
  FdPropertyReport after = check_fd_properties(converted, kGrace);
  EXPECT_TRUE(after.strong_completeness) << after.summary();
  // Accuracy preserved: the impermanent-strong oracle is strongly accurate,
  // and the union of accurate reports stays accurate.
  EXPECT_TRUE(after.strong_accuracy);
  EXPECT_TRUE(after.weak_accuracy);
}

TEST(Prop21, WeakBecomesStrongViaGossip) {
  System sys =
      gossiping_system([] { return std::make_unique<WeakOracle>(4, 0.0); });
  FdPropertyReport before = check_fd_properties(sys, kGrace);
  ASSERT_TRUE(before.weak()) << before.summary();
  ASSERT_FALSE(before.strong_completeness);

  System converted = convert_weak_to_strong_via_gossip(sys);
  FdPropertyReport after = check_fd_properties(converted, kGrace);
  EXPECT_TRUE(after.strong_completeness) << after.summary();
  EXPECT_TRUE(after.weak_accuracy);  // protected process still unsuspected
}

TEST(Prop21, ImpermanentWeakBecomesImpermanentStrongThenStrong) {
  // The two propositions compose: impermanent-weak -> (gossip) ->
  // impermanent-strong -> (union) -> strong.
  System sys = gossiping_system(
      [] { return std::make_unique<ImpermanentWeakOracle>(4); });
  FdPropertyReport before = check_fd_properties(sys, kGrace);
  ASSERT_TRUE(before.impermanent_weak()) << before.summary();

  System converted = convert_weak_to_strong_via_gossip(sys);
  FdPropertyReport after = check_fd_properties(converted, kGrace);
  EXPECT_TRUE(after.strong_completeness) << after.summary();
  EXPECT_TRUE(after.weak_accuracy);
}

TEST(Conversions, PreserveNonFdEventsInOrder) {
  System sys =
      gossiping_system([] { return std::make_unique<WeakOracle>(4, 0.0); });
  System converted = convert_weak_to_strong_via_gossip(sys);
  ASSERT_EQ(sys.size(), converted.size());
  for (std::size_t i = 0; i < sys.size(); ++i) {
    for (ProcessId p = 0; p < kN; ++p) {
      std::vector<Event> orig, conv;
      for (const Event& e : sys.run(i).history(p).events()) {
        if (!e.is_failure_detector_event()) orig.push_back(e);
      }
      for (const Event& e : converted.run(i).history(p).events()) {
        if (!e.is_failure_detector_event()) conv.push_back(e);
      }
      ASSERT_EQ(orig.size(), conv.size());
      for (std::size_t j = 0; j < orig.size(); ++j) {
        EXPECT_TRUE(orig[j] == conv[j]);
      }
    }
  }
}

TEST(InterleaveReports, DoublesTimeAndDropsOldReports) {
  Run::Builder b(2);
  b.append(0, Event::init(1))
      .append(1, Event::suspect(ProcSet::singleton(0)))
      .end_step();
  b.append(0, Event::do_action(1)).end_step();
  udc::Run r = std::move(b).build();

  int calls = 0;
  udc::Run f = interleave_reports(r, [&calls](ProcessId, Time) {
    ++calls;
    return std::optional<Event>(Event::suspect(ProcSet{}));
  });
  EXPECT_EQ(f.horizon(), 2 * r.horizon() + 1);
  // Reporter runs for each process at each original time 0..horizon.
  EXPECT_EQ(calls, 2 * (static_cast<int>(r.horizon()) + 1));
  // p1's original suspect event is gone; its history is fresh reports only.
  for (const Event& e : f.history(1).events()) {
    EXPECT_TRUE(e.is_failure_detector_event());
    EXPECT_TRUE(e.suspects.empty());
  }
  // p0's init lands at even step 2 (P2: original time 1 -> 2m+2 = 2).
  EXPECT_FALSE(f.init_in(0, 1, 1));
  EXPECT_TRUE(f.init_in(0, 2, 1));
  EXPECT_TRUE(f.do_in(0, 4, 1));
  EXPECT_FALSE(f.do_in(0, 3, 1));
}

TEST(InterleaveReports, NoReportsAfterCrash) {
  Run::Builder b(1);
  b.append(0, Event::crash()).end_step();
  b.end_step();
  udc::Run r = std::move(b).build();
  udc::Run f = interleave_reports(r, [](ProcessId, Time) {
    return std::optional<Event>(Event::suspect(ProcSet{}));
  });
  // History: one report at odd step 1 (pre-crash), crash at even step 2,
  // then nothing (R4).
  ASSERT_EQ(f.history(0).size(), 2u);
  EXPECT_EQ(f.history(0)[0].kind, EventKind::kSuspect);
  EXPECT_EQ(f.history(0)[1].kind, EventKind::kCrash);
}

}  // namespace
}  // namespace udc
