// The majority-echo protocol: UDC below n/2 failures with NO detector at
// all, and the sharp failure of liveness at t >= n/2.
#include "udc/coord/udc_majority.h"

#include <gtest/gtest.h>

#include "udc/coord/action.h"
#include "udc/coord/spec.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

constexpr Time kHorizon = 500;
constexpr Time kGrace = 180;

CoordReport sweep(int n, int t, double drop) {
  SimConfig cfg;
  cfg.n = n;
  cfg.horizon = kHorizon;
  cfg.channel.drop_prob = drop;
  auto workload = make_workload(n, 1, 5, 7);
  auto actions = workload_actions(workload);
  auto plans = all_crash_plans_up_to(n, t, 25, 120);
  System sys = generate_system(cfg, plans, workload, nullptr, [](ProcessId) {
    return std::make_unique<UdcMajorityProcess>();
  }, 2);
  return check_udc(sys, actions, kGrace);
}

TEST(Majority, UdcBelowHalfWithNoDetector) {
  for (int n : {3, 4, 5, 7}) {
    int t = (n - 1) / 2;
    CoordReport rep = sweep(n, t, 0.3);
    EXPECT_TRUE(rep.achieved())
        << "n=" << n << " t=" << t << ": "
        << (rep.violations.empty() ? "" : rep.violations[0]);
  }
}

TEST(Majority, HeavyLossStillFine) {
  CoordReport rep = sweep(5, 2, 0.5);
  EXPECT_TRUE(rep.achieved())
      << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST(Majority, LivenessDiesAtHalf) {
  // t = n/2 crashes can leave the survivors one echo short of a quorum
  // forever: DC1 breaks (initiator neither performs nor crashes).
  SimConfig cfg;
  cfg.n = 4;
  cfg.horizon = kHorizon;
  cfg.channel.drop_prob = 0.2;
  std::vector<InitDirective> workload{{30, 0, make_action(0, 0)}};
  auto actions = workload_actions(workload);
  CrashPlan plan = make_crash_plan(4, {{2, 5}, {3, 5}});  // before the init
  SimResult res = simulate(cfg, plan, nullptr, workload, [](ProcessId) {
    return std::make_unique<UdcMajorityProcess>();
  });
  CoordReport rep = check_udc(res.run, actions, kGrace);
  EXPECT_FALSE(rep.dc1);
}

TEST(Majority, QuorumIntersectionPreventsStrandedActions) {
  // The uniformity mechanism itself: engineer the initiator to perform and
  // die immediately after its quorum forms; the quorum's correct members
  // carry the action to everyone.
  SimConfig cfg;
  cfg.n = 5;
  cfg.horizon = kHorizon;
  cfg.channel.drop_prob = 0.3;
  cfg.seed = 3;
  std::vector<InitDirective> workload{{10, 0, make_action(0, 0)}};
  auto actions = workload_actions(workload);
  // Crash the initiator shortly after it can first have performed.
  for (Time crash_at : {30, 40, 60, 90}) {
    CrashPlan plan = make_crash_plan(5, {{0, crash_at}});
    SimResult res = simulate(cfg, plan, nullptr, workload, [](ProcessId) {
      return std::make_unique<UdcMajorityProcess>();
    });
    CoordReport rep = check_udc(res.run, actions, kGrace);
    EXPECT_TRUE(rep.achieved())
        << "crash at " << crash_at << ": "
        << (rep.violations.empty() ? "" : rep.violations[0]);
  }
}

TEST(Majority, SingleProcessGroupIsItsOwnQuorum) {
  SimConfig cfg;
  cfg.n = 1;
  cfg.horizon = 20;
  std::vector<InitDirective> workload{{3, 0, make_action(0, 0)}};
  SimResult res = simulate(cfg, no_crashes(1), nullptr, workload,
                           [](ProcessId) {
                             return std::make_unique<UdcMajorityProcess>();
                           });
  EXPECT_TRUE(res.run.do_in(0, 20, make_action(0, 0)));
}

}  // namespace
}  // namespace udc
