// Direct unit tests of the §2.2 property checkers on hand-built runs, where
// every clause can be exercised in isolation.
#include "udc/fd/properties.h"

#include <gtest/gtest.h>

namespace udc {
namespace {

// Two processes; p1 crashes at time 2; p0 observes.
Run::Builder two_proc_with_crash() {
  Run::Builder b(2);
  b.end_step();                               // time 1
  b.append(1, Event::crash()).end_step();     // time 2
  return b;
}

TEST(FdProperties, EmptyRunSatisfiesEverything) {
  udc::Run r = std::move(Run::Builder(2).end_step()).build();
  FdPropertyReport rep = check_fd_properties(r);
  EXPECT_TRUE(rep.perfect());
  EXPECT_TRUE(rep.weak());
  EXPECT_TRUE(rep.violations.empty());
}

TEST(FdProperties, AccurateAndPermanentSuspicionIsPerfect) {
  Run::Builder b = two_proc_with_crash();
  b.append(0, Event::suspect(ProcSet::singleton(1))).end_step();
  udc::Run r = std::move(b).build();
  FdPropertyReport rep = check_fd_properties(r);
  EXPECT_TRUE(rep.perfect()) << rep.summary();
}

TEST(FdProperties, EarlySuspicionBreaksStrongAccuracyOnly) {
  Run::Builder b(2);
  b.append(0, Event::suspect(ProcSet::singleton(1))).end_step();  // p1 alive!
  b.append(1, Event::crash()).end_step();
  udc::Run r = std::move(b).build();
  FdPropertyReport rep = check_fd_properties(r);
  EXPECT_FALSE(rep.strong_accuracy);
  EXPECT_TRUE(rep.weak_accuracy);  // p0 itself is never suspected
  EXPECT_TRUE(rep.strong_completeness);
  ASSERT_FALSE(rep.violations.empty());
  EXPECT_NE(rep.violations[0].find("strong accuracy"), std::string::npos);
}

TEST(FdProperties, SuspectingEveryCorrectProcessBreaksWeakAccuracy) {
  Run::Builder b(2);
  b.append(0, Event::suspect(ProcSet::singleton(1)))
      .append(1, Event::suspect(ProcSet::singleton(0)))
      .end_step();
  udc::Run r = std::move(b).build();
  FdPropertyReport rep = check_fd_properties(r);
  EXPECT_FALSE(rep.weak_accuracy);
  EXPECT_FALSE(rep.strong_accuracy);
}

TEST(FdProperties, MissingSuspicionBreaksCompleteness) {
  udc::Run r = std::move(two_proc_with_crash().end_step()).build();
  FdPropertyReport rep = check_fd_properties(r);
  EXPECT_FALSE(rep.strong_completeness);
  EXPECT_FALSE(rep.weak_completeness);
  EXPECT_FALSE(rep.impermanent_strong_completeness);
  EXPECT_FALSE(rep.impermanent_weak_completeness);
  EXPECT_TRUE(rep.strong_accuracy);
}

TEST(FdProperties, RetractedSuspicionIsOnlyImpermanent) {
  Run::Builder b = two_proc_with_crash();
  b.append(0, Event::suspect(ProcSet::singleton(1))).end_step();
  b.append(0, Event::suspect(ProcSet{})).end_step();  // retract
  udc::Run r = std::move(b).build();
  FdPropertyReport rep = check_fd_properties(r);
  EXPECT_FALSE(rep.strong_completeness);
  EXPECT_FALSE(rep.weak_completeness);
  EXPECT_TRUE(rep.impermanent_strong_completeness);
  EXPECT_TRUE(rep.impermanent_weak_completeness);
}

TEST(FdProperties, GraceWindowExemptsLateCrashes) {
  Run::Builder b(2);
  for (int i = 0; i < 8; ++i) b.end_step();
  b.append(1, Event::crash()).end_step();  // crash at time 9 of 10
  b.end_step();
  udc::Run r = std::move(b).build();
  EXPECT_FALSE(check_fd_properties(r, /*grace=*/0).strong_completeness);
  EXPECT_TRUE(check_fd_properties(r, /*grace=*/5).strong_completeness);
}

TEST(FdProperties, WeakCompletenessNeedsOnlyOneWatcher) {
  Run::Builder b(3);
  b.append(2, Event::crash()).end_step();
  b.append(0, Event::suspect(ProcSet::singleton(2))).end_step();
  udc::Run r = std::move(b).build();
  FdPropertyReport rep = check_fd_properties(r);
  EXPECT_TRUE(rep.weak_completeness);
  EXPECT_FALSE(rep.strong_completeness);  // p1 never suspects p2
}

TEST(FdProperties, SystemCheckIsConjunctionOverRuns) {
  udc::Run good = [] {
    Run::Builder b = two_proc_with_crash();
    b.append(0, Event::suspect(ProcSet::singleton(1))).end_step();
    return std::move(b).build();
  }();
  udc::Run bad = std::move(two_proc_with_crash().end_step()).build();
  std::vector<udc::Run> runs;
  runs.push_back(std::move(good));
  runs.push_back(std::move(bad));
  System sys(std::move(runs));
  FdPropertyReport rep = check_fd_properties(sys);
  EXPECT_TRUE(rep.strong_accuracy);
  EXPECT_FALSE(rep.strong_completeness);
}

TEST(FdProperties, StrongestClassLadder) {
  FdPropertyReport rep;  // all true
  EXPECT_EQ(strongest_class(rep), FdClass::kPerfect);
  rep.strong_accuracy = false;
  EXPECT_EQ(strongest_class(rep), FdClass::kStrong);
  rep.strong_completeness = false;
  EXPECT_EQ(strongest_class(rep), FdClass::kWeak);
  rep.weak_completeness = false;
  EXPECT_EQ(strongest_class(rep), FdClass::kImpermanentStrong);
  rep.impermanent_strong_completeness = false;
  EXPECT_EQ(strongest_class(rep), FdClass::kImpermanentWeak);
  rep.impermanent_weak_completeness = false;
  EXPECT_EQ(strongest_class(rep), FdClass::kNone);
  EXPECT_STREQ(fd_class_name(FdClass::kNone), "none");
}

}  // namespace
}  // namespace udc
