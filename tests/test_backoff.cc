// Jittered exponential backoff (net/backoff.h): the retry schedule behind
// the live transport's fair-lossy-channel realization.  The schedule is a
// pure function of (options, attempt, rng stream), so every property is
// pinned deterministically.
#include "udc/net/backoff.h"

#include <gtest/gtest.h>

#include "udc/common/check.h"
#include "udc/common/rng.h"

namespace udc {
namespace {

TEST(Backoff, GrowsGeometricallyUntilTheCap) {
  BackoffOptions o{/*base=*/100, /*growth=*/2.0, /*cap=*/1'000, /*jitter=*/0};
  EXPECT_EQ(backoff_delay(o, 0), 100);
  EXPECT_EQ(backoff_delay(o, 1), 200);
  EXPECT_EQ(backoff_delay(o, 2), 400);
  EXPECT_EQ(backoff_delay(o, 3), 800);
  EXPECT_EQ(backoff_delay(o, 4), 1'000);
  // The loop short-circuits at the cap, so a huge attempt index cannot
  // overflow the double accumulation.
  EXPECT_EQ(backoff_delay(o, 10'000), 1'000);
}

TEST(Backoff, GrowthOneIsAFixedIntervalAndZeroCapMeansUncapped) {
  BackoffOptions fixed{/*base=*/3, /*growth=*/1.0, /*cap=*/0, /*jitter=*/0};
  EXPECT_EQ(backoff_delay(fixed, 0), 3);
  EXPECT_EQ(backoff_delay(fixed, 9), 3);
  BackoffOptions uncapped{/*base=*/10, /*growth=*/2.0, /*cap=*/0,
                          /*jitter=*/0};
  EXPECT_EQ(backoff_delay(uncapped, 10), 10 * 1024);
}

TEST(Backoff, JitteredDelayStaysInsideTheBand) {
  BackoffOptions o{/*base=*/1'000, /*growth=*/2.0, /*cap=*/16'000,
                   /*jitter=*/0.25};
  Rng rng(7);
  for (int attempt = 0; attempt < 6; ++attempt) {
    // base * 2^attempt is divisible by 4, so the band edges are exact.
    const std::int64_t d = backoff_delay(o, attempt);
    const std::int64_t lo = d * 3 / 4;
    const std::int64_t hi = d * 5 / 4;
    for (int i = 0; i < 200; ++i) {
      std::int64_t j = backoff_delay_jittered(o, attempt, rng);
      EXPECT_GE(j, lo);
      EXPECT_LE(j, hi);
    }
  }
}

TEST(Backoff, JitterNeverEscapesTheConfiguredCap) {
  // The cap is re-applied AFTER jitter: even when the pre-jitter delay sits
  // exactly at the cap and the draw lands near (1 + jitter), the result must
  // stay in [1, cap].  10k samples across the attempt range where delays
  // saturate (this was a real bug: jitter applied to an already-capped delay
  // used to overshoot by up to the jitter fraction).
  BackoffOptions o{/*base=*/700, /*growth=*/1.7, /*cap=*/9'000,
                   /*jitter=*/0.95};
  Rng rng(20'260'806);
  for (int attempt = 0; attempt < 40; ++attempt) {
    for (int i = 0; i < 250; ++i) {
      const std::int64_t j = backoff_delay_jittered(o, attempt, rng);
      ASSERT_GE(j, 1) << "attempt " << attempt;
      ASSERT_LE(j, o.cap) << "attempt " << attempt;
    }
  }
  // cap = 0 stays genuinely uncapped but still respects the floor of 1.
  BackoffOptions uncapped{/*base=*/700, /*growth=*/1.7, /*cap=*/0,
                          /*jitter=*/0.95};
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(backoff_delay_jittered(uncapped, 3, rng), 1);
  }
}

TEST(Backoff, ZeroJitterIsExactAndSameSeedIsSameSchedule) {
  BackoffOptions o{/*base=*/500, /*growth=*/2.0, /*cap=*/64'000,
                   /*jitter=*/0};
  Rng rng(1);
  EXPECT_EQ(backoff_delay_jittered(o, 2, rng), backoff_delay(o, 2));
  o.jitter = 0.25;
  Rng a(42);
  Rng b(42);
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(backoff_delay_jittered(o, attempt, a),
              backoff_delay_jittered(o, attempt, b));
  }
}

TEST(Backoff, DelayNeverRoundsBelowOne) {
  BackoffOptions o{/*base=*/1, /*growth=*/1.0, /*cap=*/0, /*jitter=*/0.9};
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(backoff_delay_jittered(o, 0, rng), 1);
  }
}

TEST(Backoff, RejectsNonsenseOptions) {
  Rng rng(1);
  BackoffOptions bad_base{/*base=*/0, /*growth=*/2.0, /*cap=*/0,
                          /*jitter=*/0};
  EXPECT_THROW(backoff_delay(bad_base, 0), InvariantViolation);
  BackoffOptions bad_growth{/*base=*/10, /*growth=*/0.5, /*cap=*/0,
                            /*jitter=*/0};
  EXPECT_THROW(backoff_delay(bad_growth, 0), InvariantViolation);
  BackoffOptions ok{};
  EXPECT_THROW(backoff_delay(ok, -1), InvariantViolation);
  BackoffOptions bad_jitter{/*base=*/10, /*growth=*/2.0, /*cap=*/0,
                            /*jitter=*/1.0};
  EXPECT_THROW(backoff_delay_jittered(bad_jitter, 0, rng),
               InvariantViolation);
}

}  // namespace
}  // namespace udc
