// Cross-module integration: the paper's storyline end to end on one
// generated system — protocol runs -> spec checks -> knowledge formulas
// (Prop 3.5) -> simulated detectors (Thm 3.6) -> detector properties.
#include <gtest/gtest.h>

#include "udc/coord/action.h"
#include "udc/coord/spec.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/oracle.h"
#include "udc/fd/properties.h"
#include "udc/kt/assumptions.h"
#include "udc/kt/knowledge_fd.h"
#include "udc/kt/simulate_fd.h"
#include "udc/logic/eval.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

constexpr int kN = 3;
constexpr Time kHorizon = 200;
constexpr Time kGrace = 80;

struct Fixture {
  std::vector<InitDirective> workload = make_workload(kN, 1, 4, 6);
  std::vector<ActionId> actions = workload_actions(workload);
  System sys = [this] {
    SimConfig cfg;
    cfg.n = kN;
    cfg.horizon = kHorizon;
    cfg.channel.drop_prob = 0.25;
    cfg.seed = 21;
    auto workloads = workload_variants(workload);
    auto plans = all_crash_plans_up_to(kN, kN - 1, 20, 60);
    return generate_system_multi(
        cfg, plans, workloads,
        [] { return std::make_unique<PerfectOracle>(4); },
        [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); },
        /*seeds_per_combo=*/1);
  }();
};

TEST(Integration, GeneratedSystemAttainsUdc) {
  Fixture fx;
  CoordReport rep = check_udc(fx.sys, fx.actions, kGrace);
  EXPECT_TRUE(rep.achieved())
      << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST(Integration, SourceDetectorIsPerfect) {
  Fixture fx;
  FdPropertyReport rep = check_fd_properties(fx.sys, kGrace);
  EXPECT_TRUE(rep.perfect()) << rep.summary();
}

TEST(Integration, KnowledgePreconditionOfDoing) {
  // The engine of Theorem 3.6's proof: whenever a correct process performs
  // α, it knows α was initiated (it holds either an α-message chain back to
  // the initiator or initiated itself).  Check K_q(init) at each correct
  // performer's first do-point.
  Fixture fx;
  ModelChecker mc(fx.sys);
  int performs_checked = 0;
  for (std::size_t i = 0; i < fx.sys.size(); ++i) {
    const udc::Run& r = fx.sys.run(i);
    for (ActionId alpha : fx.actions) {
      ProcessId owner = action_owner(alpha);
      for (ProcessId q = 0; q < kN; ++q) {
        auto m_do = r.first_event_time(q, [alpha](const Event& e) {
          return e.kind == EventKind::kDo && e.action == alpha;
        });
        if (!m_do) continue;
        ++performs_checked;
        EXPECT_TRUE(
            mc.holds_at(Point{i, *m_do}, f_knows(q, f_init(owner, alpha))))
            << "run " << i << " p" << q << " α" << alpha;
      }
    }
  }
  EXPECT_GT(performs_checked, 10);
}

TEST(Integration, Prop35HoldsAtPerformPoints) {
  // Proposition 3.5, checked where Theorem 3.6 uses it: at every point
  // where a process has just performed α, the knowledge precondition (it
  // knows α was initiated and that everyone will learn-or-crash) holds, and
  // so does the knowledge consequence (it knows: if anyone stays up, some
  // never-crashing process knows the init NOW).  Full validity of the
  // implication can be vacuously perturbed on a finite system — early
  // points can over-approximate knowledge — so the perform points are the
  // honest test (see DESIGN.md on finite substitutions).
  Fixture fx;
  ModelChecker mc(fx.sys);
  int checked = 0;
  for (std::size_t i = 0; i < fx.sys.size(); ++i) {
    const udc::Run& r = fx.sys.run(i);
    for (ActionId alpha : fx.actions) {
      ProcessId p_prime = action_owner(alpha);
      std::vector<FormulaPtr> learn_clauses;
      std::vector<FormulaPtr> someone_up;
      std::vector<FormulaPtr> witness;
      for (ProcessId q = 0; q < kN; ++q) {
        learn_clauses.push_back(f_eventually(
            f_or(f_knows(q, f_init(p_prime, alpha)), f_crash(q))));
        someone_up.push_back(f_always(f_not(f_crash(q))));
        witness.push_back(f_and(f_knows(q, f_init(p_prime, alpha)),
                                f_always(f_not(f_crash(q)))));
      }
      for (ProcessId p = 0; p < kN; ++p) {
        auto m_do = r.first_event_time(p, [alpha](const Event& e) {
          return e.kind == EventKind::kDo && e.action == alpha;
        });
        if (!m_do || r.is_faulty(p)) continue;
        Point at{i, *m_do};
        auto antecedent = f_knows(
            p, Formula::conjunction({f_init(p_prime, alpha),
                                     Formula::conjunction(learn_clauses)}));
        auto consequent =
            f_knows(p, f_implies(Formula::disjunction(someone_up),
                                 Formula::disjunction(witness)));
        EXPECT_TRUE(mc.holds_at(at, antecedent))
            << "antecedent run " << i << " p" << p << " α" << alpha;
        EXPECT_TRUE(mc.holds_at(at, consequent))
            << "consequent run " << i << " p" << p << " α" << alpha;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 5);
}

TEST(Integration, RfDetectorsMatchKnowledge) {
  // In R^f, every odd-step report must equal the knowledge set at the
  // corresponding original point (P3, by construction + spot re-check).
  Fixture fx;
  System rf = build_rf(fx.sys);
  const std::size_t i = 0;
  const udc::Run& orig = fx.sys.run(i);
  const udc::Run& mapped = rf.run(i);
  for (Time m = 0; m <= orig.horizon(); m += 7) {
    for (ProcessId p = 0; p < kN; ++p) {
      if (orig.crashed_by(p, m)) continue;
      ProcSet expect = known_crashed(fx.sys, Point{i, m}, p);
      // The report emitted at odd step 2m+1 is the latest one at 2m+1.
      EXPECT_EQ(mapped.suspects_at(p, 2 * m + 1), expect)
          << "p" << p << " m=" << m;
    }
  }
}

TEST(Integration, DirectAndFormulaCheckersAgreeOnGeneratedRuns) {
  // The two implementations of DC1-DC3 (run-level scan vs §2.3 formulas)
  // must render identical verdicts on real protocol output.  Workload ends
  // early and the horizon is long, so the formula semantics (which has no
  // grace window) sees completed propagation.
  Fixture fx;
  ModelChecker mc(fx.sys);
  int disagreements = 0;
  for (std::size_t i = 0; i < fx.sys.size(); ++i) {
    const udc::Run& r = fx.sys.run(i);
    for (ActionId alpha : fx.actions) {
      std::vector<ActionId> one{alpha};
      bool direct = check_udc(r, one, /*grace=*/0).achieved();
      bool formula = true;
      auto f = udc_formula(alpha, kN);
      for (Time m = 0; m <= r.horizon() && formula; m += 5) {
        formula = mc.holds_at(Point{i, m}, f);
      }
      if (direct != formula) ++disagreements;
    }
  }
  EXPECT_EQ(disagreements, 0);
}

TEST(Integration, WholePipelineYieldsPerfectSimulatedDetector) {
  Fixture fx;
  System rf = build_rf(fx.sys);
  FdPropertyReport rep = check_fd_properties(rf, 2 * kGrace);
  EXPECT_TRUE(rep.perfect())
      << rep.summary() << ' '
      << (rep.violations.empty() ? "" : rep.violations[0]);
  // And A5t holds exactly (the plan sweep is exhaustive).  A3 coverage is
  // inherently partial on this fixture — the ack-based protocol couples
  // message timing to the workload, so crash-twin runs drift; the dedicated
  // A3 test (test_assumptions.cc) uses a flooding system where the twins
  // match exactly.
  EXPECT_TRUE(check_a5t(fx.sys, kN - 1).holds());
  AssumptionReport a3 = check_a3(fx.sys, fx.actions);
  EXPECT_GT(a3.coverage(), 0.5) << a3.satisfied << "/" << a3.checked;
}

}  // namespace
}  // namespace udc
