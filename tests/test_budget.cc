// Budgeted graceful degradation: resource envelopes (common/budget.h), the
// budget-bounded system generator, and the budget-bounded model checker.
// Deterministic caps are the load-bearing assertions; the wall-clock
// deadline is only exercised at its two trivial extremes (already expired /
// far away) to keep the suite timing-independent.
#include "udc/common/budget.h"

#include <gtest/gtest.h>

#include "udc/coord/action.h"
#include "udc/coord/nudc_protocol.h"
#include "udc/event/trace.h"
#include "udc/logic/eval.h"
#include "udc/logic/formula.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

TEST(Budget, UnlimitedByDefault) {
  Budget b = Budget::unlimited();
  EXPECT_FALSE(b.has_deadline());
  EXPECT_FALSE(b.deadline_expired());
  EXPECT_FALSE(b.points_exhausted(1'000'000));
  EXPECT_FALSE(b.runs_exhausted(1'000'000));
  EXPECT_FALSE(b.memory_exhausted(1'000'000'000));
}

TEST(Budget, DeterministicCapsTripExactlyAtTheCap) {
  Budget b;
  b.with_max_points(10).with_max_runs(3).with_max_memo_bytes(64);
  EXPECT_FALSE(b.points_exhausted(9));
  EXPECT_TRUE(b.points_exhausted(10));
  EXPECT_FALSE(b.runs_exhausted(2));
  EXPECT_TRUE(b.runs_exhausted(3));
  EXPECT_FALSE(b.memory_exhausted(64));  // at the cap is still allowed
  EXPECT_TRUE(b.memory_exhausted(65));
}

TEST(Budget, DeadlineExtremes) {
  Budget expired;
  expired.with_deadline(std::chrono::milliseconds(0));
  EXPECT_TRUE(expired.deadline_expired());
  Budget distant;
  distant.with_deadline(std::chrono::hours(1));
  EXPECT_FALSE(distant.deadline_expired());
}

// --- generate_system_budgeted ---------------------------------------------

struct Sweep {
  SimConfig cfg;
  std::vector<CrashPlan> plans;
  std::vector<InitDirective> workload;
  ProtocolFactory protocol;
};

Sweep small_sweep() {
  Sweep s;
  s.cfg.n = 3;
  s.cfg.horizon = 60;
  s.cfg.channel.drop_prob = 0.2;
  s.plans = all_crash_plans_up_to(3, 1, 5, 10);  // 4 plans
  s.workload = {{5, 0, make_action(0, 0)}};
  s.protocol = [](ProcessId) { return std::make_unique<NUdcProcess>(); };
  return s;
}

TEST(GenerateSystemBudgeted, UnlimitedBudgetEqualsTheUnbudgetedSweep) {
  Sweep s = small_sweep();
  System full = generate_system(s.cfg, s.plans, s.workload, nullptr,
                                s.protocol, 2);
  BudgetedSystem b = generate_system_budgeted(s.cfg, s.plans, s.workload,
                                              nullptr, s.protocol, 2,
                                              Budget::unlimited());
  EXPECT_EQ(b.status, BudgetStatus::kComplete);
  ASSERT_TRUE(b.system.has_value());
  ASSERT_EQ(b.system->size(), full.size());
  EXPECT_EQ(b.runs_completed, full.size());
  EXPECT_EQ(b.stats.runs, full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(format_run(b.system->run(i)), format_run(full.run(i)));
  }
}

TEST(GenerateSystemBudgeted, MaxRunsYieldsTheExactPrefix) {
  Sweep s = small_sweep();
  System full = generate_system(s.cfg, s.plans, s.workload, nullptr,
                                s.protocol, 2);  // 8 runs
  Budget budget;
  budget.with_max_runs(3);
  BudgetedSystem b = generate_system_budgeted(s.cfg, s.plans, s.workload,
                                              nullptr, s.protocol, 2, budget);
  EXPECT_EQ(b.status, BudgetStatus::kBudgetExceeded);
  EXPECT_EQ(b.runs_completed, 3u);
  ASSERT_TRUE(b.system.has_value());
  ASSERT_EQ(b.system->size(), 3u);
  // The partial system is a PREFIX of the full sweep, never a mutation.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(format_run(b.system->run(i)), format_run(full.run(i)));
  }
}

TEST(GenerateSystemBudgeted, TrippedBeforeFirstRunMeansNoSystem) {
  Sweep s = small_sweep();
  Budget budget;
  budget.with_deadline(std::chrono::milliseconds(0));
  BudgetedSystem b = generate_system_budgeted(s.cfg, s.plans, s.workload,
                                              nullptr, s.protocol, 2, budget);
  EXPECT_EQ(b.status, BudgetStatus::kBudgetExceeded);
  EXPECT_EQ(b.runs_completed, 0u);
  EXPECT_FALSE(b.system.has_value());
  EXPECT_EQ(b.stats.runs, 0u);
}

// --- ModelChecker::valid_budgeted -----------------------------------------

System tiny_system() {
  Sweep s = small_sweep();
  s.cfg.channel.drop_prob = 0.0;
  std::vector<CrashPlan> plans{no_crashes(3)};
  return generate_system(s.cfg, plans, s.workload, nullptr, s.protocol, 2);
}

TEST(ValidBudgeted, UnlimitedBudgetDecidesLikeValid) {
  System sys = tiny_system();
  ModelChecker mc(sys);
  FormulaPtr tautology = f_not(f_crash(0));  // nobody crashes in tiny_system
  BudgetedVerdict v = mc.valid_budgeted(tautology, Budget::unlimited());
  EXPECT_EQ(v.status, BudgetStatus::kComplete);
  ASSERT_TRUE(v.valid.has_value());
  EXPECT_TRUE(*v.valid);
  EXPECT_FALSE(v.counterexample.has_value());
  EXPECT_EQ(v.points_checked, sys.total_points());
  EXPECT_TRUE(mc.valid(tautology));
}

TEST(ValidBudgeted, CounterexampleDecidesEvenUnderATightBudget) {
  System sys = tiny_system();
  ModelChecker mc(sys);
  // crash(0) is false at the very first point, so one evaluation suffices.
  Budget budget;
  budget.with_max_points(1);
  BudgetedVerdict v = mc.valid_budgeted(f_crash(0), budget);
  EXPECT_EQ(v.status, BudgetStatus::kComplete);
  ASSERT_TRUE(v.valid.has_value());
  EXPECT_FALSE(*v.valid);
  ASSERT_TRUE(v.counterexample.has_value());
  EXPECT_EQ(v.counterexample->run, 0u);
  EXPECT_EQ(v.counterexample->m, 0);
  EXPECT_EQ(v.points_checked, 1u);
}

TEST(ValidBudgeted, PointCapReturnsPartialVerdict) {
  System sys = tiny_system();
  ModelChecker mc(sys);
  Budget budget;
  budget.with_max_points(5);
  BudgetedVerdict v = mc.valid_budgeted(f_not(f_crash(0)), budget);
  EXPECT_EQ(v.status, BudgetStatus::kBudgetExceeded);
  EXPECT_FALSE(v.valid.has_value());
  EXPECT_FALSE(v.counterexample.has_value());
  EXPECT_EQ(v.points_checked, 5u);
}

TEST(ValidBudgeted, MemoryCapTripsOnceTheCacheOutgrowsIt) {
  System sys = tiny_system();
  ModelChecker mc(sys);
  Budget budget;
  budget.with_max_memo_bytes(1);  // the first filled table already exceeds 1
  BudgetedVerdict v = mc.valid_budgeted(f_not(f_crash(0)), budget);
  EXPECT_EQ(v.status, BudgetStatus::kBudgetExceeded);
  EXPECT_FALSE(v.valid.has_value());
  // The overshoot is bounded by one point's evaluation.
  EXPECT_EQ(v.points_checked, 1u);
  EXPECT_GT(mc.cache_bytes(), 1u);
}

TEST(ValidBudgeted, ExpiredDeadlineStopsAtTheFirstStride) {
  System sys = tiny_system();
  ModelChecker mc(sys);
  Budget budget;
  budget.with_deadline(std::chrono::milliseconds(0));
  BudgetedVerdict v = mc.valid_budgeted(f_not(f_crash(0)), budget);
  EXPECT_EQ(v.status, BudgetStatus::kBudgetExceeded);
  EXPECT_FALSE(v.valid.has_value());
  EXPECT_EQ(v.points_checked, 0u);  // the stride check fires at point 0
}

}  // namespace
}  // namespace udc
