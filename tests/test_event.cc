#include "udc/event/event.h"

#include <gtest/gtest.h>

#include "udc/common/check.h"
#include "udc/event/history.h"

namespace udc {
namespace {

Message alpha_msg(ActionId a) {
  Message m;
  m.kind = MsgKind::kAlpha;
  m.action = a;
  return m;
}

TEST(Event, FactoriesSetKind) {
  EXPECT_EQ(Event::send(1, alpha_msg(7)).kind, EventKind::kSend);
  EXPECT_EQ(Event::recv(1, alpha_msg(7)).kind, EventKind::kRecv);
  EXPECT_EQ(Event::do_action(7).kind, EventKind::kDo);
  EXPECT_EQ(Event::init(7).kind, EventKind::kInit);
  EXPECT_EQ(Event::crash().kind, EventKind::kCrash);
  EXPECT_EQ(Event::suspect(ProcSet::singleton(2)).kind, EventKind::kSuspect);
  EXPECT_EQ(Event::suspect_gen(ProcSet::singleton(2), 1).kind,
            EventKind::kSuspectGen);
}

TEST(Event, GeneralizedReportRejectsOversizedK) {
  EXPECT_THROW(Event::suspect_gen(ProcSet::singleton(2), 2),
               InvariantViolation);
  EXPECT_THROW(Event::suspect_gen(ProcSet{}, 1), InvariantViolation);
  EXPECT_NO_THROW(Event::suspect_gen(ProcSet{}, 0));
}

TEST(Event, EqualityIsStructural) {
  EXPECT_EQ(Event::send(1, alpha_msg(7)), Event::send(1, alpha_msg(7)));
  EXPECT_FALSE(Event::send(1, alpha_msg(7)) == Event::send(2, alpha_msg(7)));
  EXPECT_FALSE(Event::send(1, alpha_msg(7)) == Event::recv(1, alpha_msg(7)));
  EXPECT_FALSE(Event::do_action(1) == Event::do_action(2));
}

TEST(Event, IsFailureDetectorEvent) {
  EXPECT_TRUE(Event::suspect(ProcSet{}).is_failure_detector_event());
  EXPECT_TRUE(Event::suspect_gen(ProcSet{}, 0).is_failure_detector_event());
  EXPECT_FALSE(Event::crash().is_failure_detector_event());
  EXPECT_FALSE(Event::do_action(1).is_failure_detector_event());
}

TEST(Event, HashRespectsEquality) {
  Event a = Event::send(1, alpha_msg(7));
  Event b = Event::send(1, alpha_msg(7));
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(), Event::send(1, alpha_msg(8)).hash());
  EXPECT_NE(Event::suspect(ProcSet::singleton(1)).hash(),
            Event::suspect(ProcSet::singleton(2)).hash());
}

TEST(Event, ToStringRoundtripsKind) {
  EXPECT_EQ(Event::crash().to_string(), "crash");
  EXPECT_EQ(Event::do_action(3).to_string(), "do(α3)");
  EXPECT_NE(Event::suspect_gen(ProcSet::singleton(1), 1).to_string().find(
                "suspect"),
            std::string::npos);
}

TEST(History, AppendAndPrefixHash) {
  History h;
  EXPECT_TRUE(h.empty());
  h.append(Event::init(1));
  h.append(Event::do_action(1));
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].kind, EventKind::kInit);
  EXPECT_EQ(h.back().kind, EventKind::kDo);

  History h2;
  h2.append(Event::init(1));
  EXPECT_EQ(h.prefix_hash(1), h2.prefix_hash(1));
  EXPECT_NE(h.prefix_hash(2), h.prefix_hash(1));
}

TEST(History, PrefixesEqualIsOrderSensitive) {
  History a;
  a.append(Event::init(1));
  a.append(Event::do_action(1));
  History b;
  b.append(Event::do_action(1));
  b.append(Event::init(1));
  EXPECT_TRUE(History::prefixes_equal(a, 2, a, 2));
  EXPECT_FALSE(History::prefixes_equal(a, 2, b, 2));
  EXPECT_FALSE(History::prefixes_equal(a, 1, b, 2));
  // Empty prefixes always match.
  EXPECT_TRUE(History::prefixes_equal(a, 0, b, 0));
}

TEST(History, EqualityComparesWholeHistories) {
  History a;
  a.append(Event::crash());
  History b;
  b.append(Event::crash());
  EXPECT_TRUE(a == b);
  b.append(Event::crash());
  EXPECT_FALSE(a == b);
}

TEST(History, PrefixSpanView) {
  History h;
  h.append(Event::init(4));
  h.append(Event::do_action(4));
  auto span = h.prefix(1);
  ASSERT_EQ(span.size(), 1u);
  EXPECT_EQ(span[0].kind, EventKind::kInit);
  EXPECT_THROW(h.prefix(3), InvariantViolation);
}

}  // namespace
}  // namespace udc
