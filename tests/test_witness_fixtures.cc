// Checked-in minimized violation witnesses for known † (necessity) cells of
// Table 1, produced by the chaos search + shrinker (tools/udc_chaos) and
// pinned here: replay must regenerate each violating run bit for bit and
// re-derive the same failing verdict.  A diff in either means the simulator
// or checker semantics changed — exactly what these fixtures exist to catch.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "udc/chaos/witness.h"

namespace udc {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(UDC_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void expect_reproduces(const std::string& name) {
  ReplayResult r = replay_witness(read_fixture(name));
  EXPECT_TRUE(r.trace_matches) << name << ": regenerated trace diverged";
  EXPECT_TRUE(r.verdict_matches) << name << ": spec verdict changed";
  EXPECT_TRUE(r.violated) << name << ": spec no longer violated";
  EXPECT_TRUE(r.reproduced());
}

// n/2 <= t < n-1, unreliable channels, no detector: the majority-echo
// protocol's † cell ("t-useful necessary").
TEST(WitnessFixtures, MajorityUnreliableDaggerCell) {
  expect_reproduces("majority_tuseful_dagger.witness");
  ReplayResult r = replay_witness(read_fixture("majority_tuseful_dagger.witness"));
  EXPECT_EQ(r.witness.scenario.protocol, "majority");
  EXPECT_EQ(r.witness.scenario.detector, "none");
}

// t >= n-1, unreliable channels: the strong-FD broadcast without its
// detector ("Perfect necessary").
TEST(WitnessFixtures, StrongFdNoDetectorDaggerCell) {
  expect_reproduces("strongfd_perfect_dagger.witness");
  ReplayResult r = replay_witness(read_fixture("strongfd_perfect_dagger.witness"));
  EXPECT_EQ(r.witness.scenario.protocol, "strongfd");
  EXPECT_EQ(r.witness.scenario.detector, "none");
}

}  // namespace
}  // namespace udc
