// Snapshots and ProcessStore (store/): atomic compaction of the WAL, and
// the kill-time storage faults against the combined snapshot+WAL state.
// The contract under test: recover() always returns a PREFIX of what was
// appended — possibly shorter under faults, never reordered, never corrupt,
// never a throw — because suffix-loss is the failure model the runtime's
// recovery protocol knows how to repair.
#include "udc/store/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "udc/common/rng.h"
#include "udc/store/process_store.h"
#include "udc/store/wal.h"

namespace udc {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  fs::path d = fs::temp_directory_path() / ("udc_snap_" + name);
  fs::remove_all(d);
  fs::create_directories(d);
  return d;
}

std::vector<StoreRecord> records_upto(Time n) {
  std::vector<StoreRecord> out;
  for (Time t = 1; t <= n; ++t) out.push_back({t, Event::do_action(t % 5)});
  return out;
}

// --- snapshot files -------------------------------------------------------

TEST(StoreSnapshot, RoundTripsAndReportsLastTick) {
  fs::path dir = fresh_dir("roundtrip");
  std::string path = (dir / "p.snap").string();
  std::vector<StoreRecord> recs = records_upto(6);
  write_snapshot_file(path, recs);
  auto snap = read_snapshot_file(path);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->records, recs);
  EXPECT_EQ(snap->last_tick(), 6);
  EXPECT_EQ(Snapshot{}.last_tick(), 0);
  fs::remove_all(dir);
}

TEST(StoreSnapshot, OverwriteIsAtomicAndLeavesNoTempFile) {
  fs::path dir = fresh_dir("atomic");
  std::string path = (dir / "p.snap").string();
  write_snapshot_file(path, records_upto(3));
  write_snapshot_file(path, records_upto(9));  // replaces, never appends
  auto snap = read_snapshot_file(path);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->records.size(), 9u);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove_all(dir);
}

TEST(StoreSnapshot, AnyDefectReadsAsAbsentNotAsAnError) {
  fs::path dir = fresh_dir("defects");
  std::string path = (dir / "p.snap").string();
  EXPECT_FALSE(read_snapshot_file(path).has_value());  // missing

  write_snapshot_file(path, records_upto(4));
  ASSERT_TRUE(read_snapshot_file(path).has_value());

  // Truncation, a flipped byte anywhere, trailing junk, a wrong magic: a
  // snapshot is all-or-nothing, so each defect must void the whole file.
  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  auto rewrite = [&](const std::vector<char>& b) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(b.data(), static_cast<std::streamsize>(b.size()));
  };
  std::vector<char> truncated(bytes.begin(), bytes.end() - 5);
  rewrite(truncated);
  EXPECT_FALSE(read_snapshot_file(path).has_value());

  std::vector<char> flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x20;
  rewrite(flipped);
  EXPECT_FALSE(read_snapshot_file(path).has_value());

  std::vector<char> junk = bytes;
  junk.push_back('x');
  rewrite(junk);
  EXPECT_FALSE(read_snapshot_file(path).has_value());

  std::vector<char> bad_magic = bytes;
  bad_magic[0] = 'X';
  rewrite(bad_magic);
  EXPECT_FALSE(read_snapshot_file(path).has_value());
  fs::remove_all(dir);
}

// --- ProcessStore ---------------------------------------------------------

TEST(StoreProcess, RotatesSnapshotsAndRecoversSnapshotPlusTail) {
  fs::path dir = fresh_dir("rotate");
  StoreOptions opts;
  opts.fsync = FsyncPolicy::kEveryAppend;
  opts.snapshot_every = 4;
  ProcessStore store(dir.string(), /*p=*/0, opts, /*faults=*/{});
  std::vector<StoreRecord> recs = records_upto(10);
  for (const StoreRecord& r : recs) store.append(r.t, r.e);
  // Rotations at frames 4 and 8; two tail frames remain in the WAL.
  EXPECT_EQ(store.counters().snapshots_written, 2u);

  Rng rng(3);
  store.apply_kill_faults(/*kill_time=*/11, rng);  // no faults scripted
  std::vector<StoreRecord> recovered = store.recover();
  EXPECT_EQ(recovered, recs);
  EXPECT_EQ(store.counters().snapshots_loaded, 1u);
  EXPECT_EQ(store.counters().wal_frames_replayed, 2u);
  EXPECT_EQ(store.counters().recoveries_total, 1u);
  EXPECT_EQ(store.counters().torn_tails_truncated, 0u);
  fs::remove_all(dir);
}

TEST(StoreProcess, SurvivesASecondCrashImmediatelyAfterRecovery) {
  fs::path dir = fresh_dir("double");
  StoreOptions opts;
  opts.fsync = FsyncPolicy::kEveryAppend;
  opts.snapshot_every = 4;
  ProcessStore store(dir.string(), /*p=*/0, opts, /*faults=*/{});
  std::vector<StoreRecord> recs = records_upto(7);
  for (const StoreRecord& r : recs) store.append(r.t, r.e);
  Rng rng(4);
  store.apply_kill_faults(8, rng);
  EXPECT_EQ(store.recover(), recs);
  // Recovery re-compacted (snapshot rewritten, WAL emptied), so a crash
  // with NO intervening appends must recover the identical prefix.
  store.apply_kill_faults(9, rng);
  EXPECT_EQ(store.recover(), recs);
  EXPECT_EQ(store.counters().recoveries_total, 2u);
  fs::remove_all(dir);
}

// Per-kind kill faults.  Each scenario appends the same 10 records under a
// deliberately chosen fsync policy, kills with one fault, and checks the
// recovered prefix against the fault's loss model.
StorageFault fault_of(StorageFault::Kind kind) {
  StorageFault f;
  f.kind = kind;
  f.victim = 0;
  return f;  // window [0, kTimeMax): always live
}

TEST(StoreProcess, TornWriteLosesNothingRecordedJustTheTornTail) {
  fs::path dir = fresh_dir("torn");
  StoreOptions opts;
  opts.fsync = FsyncPolicy::kEveryAppend;
  opts.snapshot_every = 100;  // keep everything in the WAL
  ProcessStore store(dir.string(), 0, opts,
                     {fault_of(StorageFault::Kind::kTornWrite)});
  std::vector<StoreRecord> recs = records_upto(10);
  for (const StoreRecord& r : recs) store.append(r.t, r.e);
  Rng rng(5);
  store.apply_kill_faults(11, rng);
  EXPECT_EQ(store.recover(), recs);  // full prefix: the torn frame was new
  EXPECT_EQ(store.counters().torn_tails_truncated, 1u);
  EXPECT_EQ(store.counters().storage_faults_injected, 1u);
  fs::remove_all(dir);
}

TEST(StoreProcess, TruncateToSyncedIsTheFsyncPolicysTeeth) {
  // kNever + no snapshot: the whole unsynced WAL is lost.
  {
    fs::path dir = fresh_dir("trunc_never");
    StoreOptions opts;
    opts.fsync = FsyncPolicy::kNever;
    opts.snapshot_every = 100;
    ProcessStore store(dir.string(), 0, opts,
                       {fault_of(StorageFault::Kind::kTruncate)});
    std::vector<StoreRecord> recs = records_upto(10);
    for (const StoreRecord& r : recs) store.append(r.t, r.e);
    Rng rng(6);
    store.apply_kill_faults(11, rng);
    EXPECT_TRUE(store.recover().empty());
    fs::remove_all(dir);
  }
  // kEveryAppend: nothing is unsynced, the fault has nothing to bite.
  {
    fs::path dir = fresh_dir("trunc_always");
    StoreOptions opts;
    opts.fsync = FsyncPolicy::kEveryAppend;
    opts.snapshot_every = 100;
    ProcessStore store(dir.string(), 0, opts,
                       {fault_of(StorageFault::Kind::kTruncate)});
    std::vector<StoreRecord> recs = records_upto(10);
    for (const StoreRecord& r : recs) store.append(r.t, r.e);
    Rng rng(7);
    store.apply_kill_faults(11, rng);
    EXPECT_EQ(store.recover(), recs);
    fs::remove_all(dir);
  }
  // kEveryN(4): at most the last batch is lost — and the snapshot floor
  // still holds whatever was compacted.
  {
    fs::path dir = fresh_dir("trunc_n");
    StoreOptions opts;
    opts.fsync = FsyncPolicy::kEveryN;
    opts.fsync_every = 4;
    opts.snapshot_every = 100;
    ProcessStore store(dir.string(), 0, opts,
                       {fault_of(StorageFault::Kind::kTruncate)});
    std::vector<StoreRecord> recs = records_upto(10);
    for (const StoreRecord& r : recs) store.append(r.t, r.e);
    Rng rng(8);
    store.apply_kill_faults(11, rng);
    std::vector<StoreRecord> recovered = store.recover();
    ASSERT_EQ(recovered.size(), 8u);  // two unsynced frames gone
    for (std::size_t i = 0; i < recovered.size(); ++i) {
      EXPECT_EQ(recovered[i], recs[i]);
    }
    fs::remove_all(dir);
  }
}

TEST(StoreProcess, BitFlipCostsAtMostTheSuffixFromTheFlippedFrame) {
  fs::path dir = fresh_dir("bitflip");
  StoreOptions opts;
  opts.fsync = FsyncPolicy::kEveryAppend;
  opts.snapshot_every = 100;
  ProcessStore store(dir.string(), 0, opts,
                     {fault_of(StorageFault::Kind::kBitFlip)});
  std::vector<StoreRecord> recs = records_upto(10);
  for (const StoreRecord& r : recs) store.append(r.t, r.e);
  Rng rng(9);
  store.apply_kill_faults(11, rng);
  std::vector<StoreRecord> recovered = store.recover();
  ASSERT_LT(recovered.size(), recs.size());  // the flipped frame is cut
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_EQ(recovered[i], recs[i]);
  }
  EXPECT_EQ(store.counters().torn_tails_truncated, 1u);
  fs::remove_all(dir);
}

TEST(StoreProcess, ShortReadRecoversTheIdenticalLog) {
  fs::path dir = fresh_dir("shortread");
  StoreOptions opts;
  opts.fsync = FsyncPolicy::kEveryAppend;
  opts.snapshot_every = 100;
  ProcessStore store(dir.string(), 0, opts,
                     {fault_of(StorageFault::Kind::kShortRead)});
  std::vector<StoreRecord> recs = records_upto(10);
  for (const StoreRecord& r : recs) store.append(r.t, r.e);
  Rng rng(10);
  store.apply_kill_faults(11, rng);
  EXPECT_EQ(store.recover(), recs);
  fs::remove_all(dir);
}

TEST(StoreProcess, SyncFailWindowSuppressesFsyncAndTruncateCollectsTheDebt) {
  fs::path dir = fresh_dir("syncfail");
  StoreOptions opts;
  opts.fsync = FsyncPolicy::kEveryAppend;  // would normally sync everything
  opts.snapshot_every = 100;
  StorageFault fail = fault_of(StorageFault::Kind::kSyncFail);
  fail.begin = 6;  // ticks 6.. lose their fsyncs
  ProcessStore store(dir.string(), 0, opts,
                     {fail, fault_of(StorageFault::Kind::kTruncate)});
  std::vector<StoreRecord> recs = records_upto(10);
  for (const StoreRecord& r : recs) store.append(r.t, r.e);
  EXPECT_GE(store.counters().sync_failures, 1u);
  Rng rng(11);
  store.apply_kill_faults(11, rng);
  std::vector<StoreRecord> recovered = store.recover();
  // Ticks 1..5 were fsynced before the window opened; 6..10 were not, and
  // the machine-crash truncate reclaims exactly that unsynced suffix.
  ASSERT_EQ(recovered.size(), 5u);
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_EQ(recovered[i], recs[i]);
  }
  fs::remove_all(dir);
}

TEST(StoreProcess, FaultsOutsideTheirWindowDoNotFire) {
  fs::path dir = fresh_dir("window");
  StoreOptions opts;
  opts.fsync = FsyncPolicy::kNever;  // maximally vulnerable
  opts.snapshot_every = 100;
  StorageFault f = fault_of(StorageFault::Kind::kTruncate);
  f.begin = 100;
  f.end = 200;  // kill happens outside
  ProcessStore store(dir.string(), 0, opts, {f});
  std::vector<StoreRecord> recs = records_upto(10);
  for (const StoreRecord& r : recs) store.append(r.t, r.e);
  Rng rng(12);
  store.apply_kill_faults(/*kill_time=*/11, rng);
  EXPECT_EQ(store.recover(), recs);  // page cache survived the process kill
  EXPECT_EQ(store.counters().storage_faults_injected, 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace udc
