// Mailbox (rt/mailbox.h): the R2 one-event-at-a-time discipline, and the
// push/close protocol under the races the live runtime actually produces —
// transport dispatchers pushing while the supervisor closes a crashed
// worker's mailbox.  The concurrency test is a TSan target (the rt-tsan CI
// job runs it): the interesting output is the absence of data-race reports,
// the assertions are the accounting invariants.
#include "udc/rt/mailbox.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace udc {
namespace {

RtMail deliver_mail(std::int64_t tag) {
  RtMail m;
  m.kind = RtMail::Kind::kDeliver;
  m.from = 0;
  m.msg.kind = MsgKind::kApp;
  m.msg.a = tag;
  return m;
}

TEST(Mailbox, PushReportsAcceptanceAndCloseRefuses) {
  Mailbox mb;
  EXPECT_EQ(mb.push(deliver_mail(1)), MailboxPush::kAccepted);
  auto got = mb.pop_for(std::chrono::microseconds(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->msg.a, 1);

  mb.close();
  // A closed mailbox REPORTS the refusal — the producer decides what loss
  // means (the transport retries, the supervisor counts).
  EXPECT_EQ(mb.push(deliver_mail(2)), MailboxPush::kClosed);
  EXPECT_TRUE(mb.closed());
  EXPECT_FALSE(mb.pop_for(std::chrono::microseconds(1)).has_value());
}

TEST(Mailbox, CloseDiscardsQueuedMailAndWakesTheConsumer) {
  Mailbox mb;
  EXPECT_EQ(mb.push(deliver_mail(1)), MailboxPush::kAccepted);
  EXPECT_EQ(mb.push(deliver_mail(2)), MailboxPush::kAccepted);
  mb.close();
  // Queued mail dies with the process — a crash loses exactly its
  // undelivered input.
  EXPECT_FALSE(mb.pop_for(std::chrono::seconds(5)).has_value());
}

TEST(Mailbox, ConcurrentPushersVsCloseAccountForEveryMail) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2'000;
  Mailbox mb;
  std::atomic<std::size_t> pushed_ok{0};
  std::atomic<std::size_t> refused{0};
  std::atomic<std::size_t> consumed{0};

  std::thread consumer([&] {
    for (;;) {
      auto mail = mb.pop_for(std::chrono::microseconds(100));
      if (mail) {
        consumed.fetch_add(1);
      } else if (mb.closed()) {
        return;
      }
    }
  });

  std::vector<std::thread> producers;
  for (int i = 0; i < kProducers; ++i) {
    producers.emplace_back([&, i] {
      for (int k = 0; k < kPerProducer; ++k) {
        if (mb.push(deliver_mail(i * kPerProducer + k)) ==
            MailboxPush::kAccepted) {
          pushed_ok.fetch_add(1);
        } else {
          refused.fetch_add(1);
        }
      }
    });
  }

  // Close mid-stream: everything after this point must be refused, and no
  // producer may observe a torn queue (that is TSan's half of the test).
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  mb.close();
  for (auto& t : producers) t.join();
  consumer.join();

  EXPECT_EQ(pushed_ok.load() + refused.load(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  // close() discards the queue, so consumption never exceeds acceptance.
  EXPECT_LE(consumed.load(), pushed_ok.load());
  // And the mailbox stays closed: a straggler is refused, not dropped.
  EXPECT_EQ(mb.push(deliver_mail(-1)), MailboxPush::kClosed);
}

}  // namespace
}  // namespace udc
