// Regression suite: minimal reproductions of real defects found while
// building udckit.  Each test documents the failure mode so the fix cannot
// silently rot.
#include <gtest/gtest.h>

#include "udc/consensus/rotating.h"
#include "udc/consensus/spec.h"
#include "udc/coord/action.h"
#include "udc/coord/spec.h"
#include "udc/coord/udc_generalized.h"
#include "udc/fd/generalized.h"
#include "udc/fd/oracle.h"
#include "udc/logic/eval.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/simulator.h"

namespace udc {
namespace {

// BUG 1: the model checker memoized by raw Formula* while callers passed
// temporaries; a freed formula's address could be reused by a new formula,
// resurrecting stale cache entries.  Fixed by retaining every queried root.
TEST(Regression, ModelCheckerCacheSurvivesFormulaAddressReuse) {
  std::vector<udc::Run> runs;
  Run::Builder b(1);
  b.append(0, Event::init(1)).end_step();
  runs.push_back(std::move(b).build());
  System sys(std::move(runs));
  ModelChecker mc(sys);
  // Query many short-lived distinct formulas; with address reuse and no
  // retention, later truth values would echo earlier ones.
  for (int i = 0; i < 200; ++i) {
    bool expect = (i % 2) == 0;
    auto phi = expect ? f_init(0, 1) : f_do(0, 1);
    EXPECT_EQ(mc.holds_at(Point{0, 1}, phi), expect) << i;
  }
}

// BUG 2: rotating consensus stamped adoption of round r with ts = r, so
// adopting ROUND 0's proposal was indistinguishable from "never adopted"
// (initial ts 0) and the max-ts lock could tie-break to a conflicting
// initial value.  The n=5 agreement violation reproduced here only needs
// one process to adopt in round 0 while others' initial estimates survive.
TEST(Regression, RotatingConsensusRoundZeroLocking) {
  const std::vector<std::int64_t> values{3, 1, 4, 1, 5};
  // Exactly the sweep that exposed the bug (seed 14, F = {1,2}).
  SimConfig cfg;
  cfg.n = 5;
  cfg.horizon = 700;
  cfg.channel.drop_prob = 0.0;
  cfg.seed = 14;
  CrashPlan plan = make_crash_plan(5, {{1, 25}, {2, 75}});
  EventuallyStrongOracle oracle(4, 60, 0.3);
  SimResult res =
      simulate(cfg, plan, &oracle, {}, rotating_consensus_factory(values));
  ConsensusReport rep = check_consensus(res.run, values);
  EXPECT_TRUE(rep.uniform_agreement)
      << (rep.violations.empty() ? "" : rep.violations[0]);
}

// BUG 3: a participant's ack could be lost with no retransmission driver,
// leaving the coordinator waiting forever ("decisions 3 and -"): duplicate
// proposals for past rounds must be re-answered.  And BUG 4: a nack (which
// doubles as the refuser's estimate) is spontaneous, so it needs its own
// paced retransmission, or a coordinator can block on estimates from
// processes that have all moved past its round.
TEST(Regression, RotatingConsensusSurvivesLostRepliesUnderHeavyLoss) {
  const std::vector<std::int64_t> values{3, 1, 4, 1};
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SimConfig cfg;
    cfg.n = 4;
    cfg.horizon = 900;
    cfg.channel.drop_prob = 0.5;  // replies get lost often
    cfg.seed = seed;
    CrashPlan plan = make_crash_plan(4, {{0, 20}});
    EventuallyStrongOracle oracle(4, 60, 0.4);
    SimResult res =
        simulate(cfg, plan, &oracle, {}, rotating_consensus_factory(values));
    ConsensusReport rep = check_consensus(res.run, values);
    EXPECT_TRUE(rep.achieved_uniform())
        << "seed " << seed << ": "
        << (rep.violations.empty() ? "" : rep.violations[0]);
  }
}

// BUG 5: with recv strictly prioritized over the outbox, sustained traffic
// starved a process's own sends (it could never ack, so peers retransmitted
// forever — livelock).  The simulator now alternates, hash-based so it
// cannot phase-lock against periodic detector reports (BUG 6: a plain
// parity rule did, with a period-2 oracle eating every even slot).
TEST(Regression, NoStarvationUnderPeriod2OracleAndFloodingPeers) {
  SimConfig cfg;
  cfg.n = 4;
  cfg.horizon = 420;
  cfg.channel.drop_prob = 0.3;
  cfg.seed = 1;
  auto workload = make_workload(4, 1, 5, 7);
  auto actions = workload_actions(workload);
  TrivialGeneralizedOracle oracle(1, 2);  // reports every 2 ticks
  SimResult res = simulate(cfg, no_crashes(4), &oracle, workload,
                           [](ProcessId) {
                             return std::make_unique<UdcGeneralizedProcess>(1);
                           });
  CoordReport rep = check_udc(res.run, actions, 160);
  EXPECT_TRUE(rep.achieved())
      << (rep.violations.empty() ? "" : rep.violations[0]);
  // Starvation signature: a process with hundreds of consecutive sends and
  // no receives.  Bound the longest send streak instead.
  for (ProcessId p = 0; p < 4; ++p) {
    const History& h = res.run.history(p);
    int streak = 0, worst = 0;
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (h[i].kind == EventKind::kSend) {
        worst = std::max(worst, ++streak);
      } else if (h[i].kind == EventKind::kRecv) {
        streak = 0;
      }
    }
    EXPECT_LT(worst, 60) << "p" << p << " starved of receives";
  }
}

// BUG 7: unpaced flooding saturated every process's one-event-per-tick
// budget (each duplicate α-message also costs the receiver an ack slot),
// so four concurrent actions could not all finish.  The pacing fix keeps
// message volume proportional to useful work.
TEST(Regression, PacedRetransmissionKeepsFourActionsFeasible) {
  SimConfig cfg;
  cfg.n = 4;
  cfg.horizon = 420;
  cfg.channel.drop_prob = 0.3;
  cfg.seed = 2;
  auto workload = make_workload(4, 1, 5, 7);
  auto actions = workload_actions(workload);
  TUsefulOracle oracle(1, 4, 1);
  SimResult res = simulate(cfg, no_crashes(4), &oracle, workload,
                           [](ProcessId) {
                             return std::make_unique<UdcGeneralizedProcess>(1);
                           });
  EXPECT_TRUE(check_udc(res.run, actions, 160).achieved());
  // An unpaced flooder sent ~1 message per live tick per process (~1600);
  // paced, the whole run stays far below that.
  EXPECT_LT(res.messages_sent, 1200u);
}

}  // namespace
}  // namespace udc
