// Session dedup table (svc/session): the exactly-once half of the service,
// unit-tested and then property-tested the way the soak stresses it — any
// interleaving of duplicated, reordered, and retried operations across a
// leader failover applies each operation exactly once, leaves identical
// state at every replica, and keeps the cached reply a live retry needs.
#include "udc/svc/session.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "udc/common/check.h"
#include "udc/common/rng.h"
#include "udc/svc/wire.h"

namespace udc {
namespace {

TEST(SessionTable, FreshSessionExpectsOne) {
  SessionTable t;
  EXPECT_EQ(t.expected(42), 1u);
  EXPECT_FALSE(t.applied(42, 1));
  EXPECT_EQ(t.cached(42, 1), std::nullopt);
  EXPECT_EQ(t.size(), 0u);
}

TEST(SessionTable, RecordAdvancesAndCachesOnlyTheLastReply) {
  SessionTable t;
  t.record(7, 1, SvcResult{10, 1});
  t.record(7, 2, SvcResult{20, 2});
  EXPECT_EQ(t.expected(7), 3u);
  EXPECT_TRUE(t.applied(7, 1));
  EXPECT_TRUE(t.applied(7, 2));
  EXPECT_FALSE(t.applied(7, 3));
  // Only the LAST applied op keeps a cached reply: seq 2 is the only
  // duplicate a well-behaved client can still be waiting on.
  ASSERT_TRUE(t.cached(7, 2).has_value());
  EXPECT_EQ(t.cached(7, 2)->value, 20);
  EXPECT_EQ(t.cached(7, 1), std::nullopt);
  EXPECT_EQ(t.cached(7, 3), std::nullopt);
}

TEST(SessionTable, SessionsAreIndependent) {
  SessionTable t;
  t.record(1, 1, SvcResult{5, 1});
  EXPECT_EQ(t.expected(2), 1u);
  EXPECT_FALSE(t.applied(2, 1));
  EXPECT_EQ(t.size(), 1u);
}

TEST(SessionTable, OutOfOrderRecordIsAnInvariantBreach) {
  SessionTable t;
  t.record(3, 1, SvcResult{1, 1});
  EXPECT_THROW(t.record(3, 3, SvcResult{3, 3}), InvariantViolation);
  EXPECT_THROW(t.record(3, 1, SvcResult{1, 1}), InvariantViolation);
}

// ---------------------------------------------------------------------------
// The property test (the soak's exactly-once claim in miniature).
//
// A replica's apply loop is: for each op in committed-batch order, suppress
// if the table says applied, else record + mutate the register machine.
// The adversary controls the DELIVERY: ops are interleaved across sessions
// arbitrarily, every op may be re-delivered any number of times (client
// retry after a timeout; the successor leader re-proposing the dead
// leader's adopted in-flight batch re-delivers a whole window), and stale
// duplicates may arrive arbitrarily late.  The protocol guarantees only
// that FIRST deliveries respect each session's seq order (holes cannot
// commit); everything else is fair game.
// ---------------------------------------------------------------------------

struct Machine {
  SessionTable table;
  std::array<std::pair<std::int64_t, std::uint64_t>, 64> regs{};
  std::uint64_t effective = 0;
  std::uint64_t suppressed = 0;

  void apply(const SvcOp& op) {
    if (table.applied(op.session, op.seq)) {
      ++suppressed;
      return;
    }
    UDC_CHECK(op.seq == table.expected(op.session),
              "property harness delivered a hole");
    auto& r = regs[static_cast<std::size_t>(op.reg)];
    r.first = op.value;
    ++r.second;
    table.record(op.session, op.seq, SvcResult{op.value, r.second});
    ++effective;
  }
};

std::vector<SvcOp> chaotic_delivery(Rng& rng, int sessions, int ops_each) {
  // The canonical per-session streams.
  std::vector<std::vector<SvcOp>> canon(sessions);
  for (int s = 0; s < sessions; ++s) {
    for (int k = 1; k <= ops_each; ++k) {
      SvcOp op;
      op.session = 0x200u + static_cast<std::uint64_t>(s);
      op.seq = static_cast<std::uint64_t>(k);
      op.kind = SvcOpKind::kWrite;
      op.reg = static_cast<std::int32_t>(rng.next_below(64));
      op.value = static_cast<std::int64_t>(rng.next_below(1u << 20)) + 1;
      canon[s].push_back(op);
    }
  }
  std::vector<SvcOp> stream;
  std::vector<int> next(sessions, 0);
  int remaining = sessions * ops_each;
  const std::size_t failover_at = 5 + rng.next_below(20);
  while (remaining > 0) {
    const int s = static_cast<int>(rng.next_below(sessions));
    if (next[s] < ops_each && (next[s] == 0 || !rng.chance(0.3))) {
      stream.push_back(canon[s][static_cast<std::size_t>(next[s]++)]);
      --remaining;
    } else if (next[s] > 0) {
      // A stale or in-flight duplicate: client retry / re-proposed batch.
      stream.push_back(
          canon[s][rng.next_below(static_cast<std::uint32_t>(next[s]))]);
    }
    if (stream.size() == failover_at) {
      // Leader failover: the successor adopts the dead leader's in-flight
      // batch and re-proposes it, re-delivering a recent window wholesale,
      // while the clients' timeouts retry the same ops once more.
      const std::size_t window = std::min<std::size_t>(stream.size(), 8);
      for (std::size_t i = stream.size() - window; i < failover_at; ++i) {
        stream.push_back(stream[i]);
      }
    }
  }
  // Post-run stragglers: late duplicates of anything already delivered.
  for (int extra = 0; extra < sessions; ++extra) {
    const int s = static_cast<int>(rng.next_below(sessions));
    stream.push_back(
        canon[s][rng.next_below(static_cast<std::uint32_t>(ops_each))]);
  }
  return stream;
}

TEST(SessionTableProperty, AnyDuplicatedReorderedRetriedInterleavingIsExactlyOnce) {
  Rng rng(0xdedu);
  constexpr int kTrials = 200;
  constexpr int kSessions = 4;
  constexpr int kOpsEach = 8;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<SvcOp> stream = chaotic_delivery(rng, kSessions, kOpsEach);

    // The reference: exact first-occurrence filtering.  The table's claim
    // is that its suppression equals this filter precisely — an op applies
    // at its FIRST delivery and at no other.
    Machine ref;
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
    for (const SvcOp& op : stream) {
      if (!seen.insert({op.session, op.seq}).second) continue;
      ref.apply(op);
    }

    // Two replicas applying the SAME chaotic stream (replication hands
    // every replica the one committed order): both must converge to the
    // reference state with exactly one effective apply per operation.
    Machine a, b;
    for (const SvcOp& op : stream) {
      a.apply(op);
      b.apply(op);
    }
    EXPECT_EQ(a.effective, static_cast<std::uint64_t>(kSessions * kOpsEach))
        << "trial " << trial;
    EXPECT_GT(a.suppressed, 0u) << "trial " << trial;
    EXPECT_EQ(a.table, b.table) << "trial " << trial;
    EXPECT_EQ(a.regs, b.regs) << "trial " << trial;
    EXPECT_EQ(a.table, ref.table) << "trial " << trial;
    EXPECT_EQ(a.regs, ref.regs) << "trial " << trial;

    // Every session ended dense: expected == ops_each + 1, and the cached
    // reply for its last op (the one a live retry could still want) is the
    // value the reference computed.
    for (int s = 0; s < kSessions; ++s) {
      const std::uint64_t session = 0x200u + static_cast<std::uint64_t>(s);
      EXPECT_EQ(a.table.expected(session),
                static_cast<std::uint64_t>(kOpsEach) + 1);
      auto cached = a.table.cached(session, kOpsEach);
      ASSERT_TRUE(cached.has_value());
      EXPECT_EQ(*cached, *ref.table.cached(session, kOpsEach));
    }
  }
}

}  // namespace
}  // namespace udc
