// POSIX I/O helpers (net/io.h): EINTR restarts, short-count loops, and
// peer-death-as-value.  These run over real socketpairs and pipes — the
// properties under test (a signal mid-read does not surface, a closed peer
// is kPeerDown not SIGPIPE, EAGAIN reports progress) are exactly the ones a
// SIGKILL-heavy fleet leans on.
#include "udc/net/io.h"

#include <gtest/gtest.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

namespace udc {
namespace {

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void close_a() {
    ::close(a);
    a = -1;
  }
  void close_b() {
    ::close(b);
    b = -1;
  }
};

std::vector<std::uint8_t> pattern(std::size_t len) {
  std::vector<std::uint8_t> v(len);
  for (std::size_t i = 0; i < len; ++i) {
    v[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  return v;
}

TEST(NetIo, FullWriteThenFullReadRoundTrips) {
  SocketPair sp;
  std::vector<std::uint8_t> out = pattern(4096);
  IoResult w = full_write(sp.a, out.data(), out.size());
  ASSERT_TRUE(w.ok()) << io_status_name(w.status);
  EXPECT_EQ(w.bytes, out.size());

  std::vector<std::uint8_t> in(out.size());
  IoResult r = full_read(sp.b, in.data(), in.size());
  ASSERT_TRUE(r.ok()) << io_status_name(r.status);
  EXPECT_EQ(r.bytes, in.size());
  EXPECT_EQ(in, out);
}

TEST(NetIo, FullReadAssemblesDribbledWrites) {
  SocketPair sp;
  std::vector<std::uint8_t> out = pattern(1024);
  std::thread writer([&] {
    for (std::size_t i = 0; i < out.size(); i += 64) {
      ASSERT_TRUE(full_write(sp.a, out.data() + i, 64).ok());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::vector<std::uint8_t> in(out.size());
  IoResult r = full_read(sp.b, in.data(), in.size());
  writer.join();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(in, out);
}

TEST(NetIo, ReadFromClosedPeerIsPeerDownNotError) {
  SocketPair sp;
  std::vector<std::uint8_t> out = pattern(16);
  ASSERT_TRUE(full_write(sp.a, out.data(), out.size()).ok());
  sp.close_a();

  // The bytes already in flight arrive; the request for MORE than was sent
  // ends at EOF with the partial count and kPeerDown.
  std::vector<std::uint8_t> in(64);
  IoResult r = full_read(sp.b, in.data(), in.size());
  EXPECT_EQ(r.status, IoStatus::kPeerDown);
  EXPECT_EQ(r.bytes, out.size());
  EXPECT_TRUE(std::memcmp(in.data(), out.data(), out.size()) == 0);
}

TEST(NetIo, WriteToClosedPeerIsPeerDownNotSigpipe) {
  SocketPair sp;
  sp.close_b();
  // Big enough to defeat any kernel buffering of the first write.
  std::vector<std::uint8_t> out = pattern(1 << 16);
  IoResult w = full_write(sp.a, out.data(), out.size());
  // If this test survives at all, MSG_NOSIGNAL did its job (the default
  // SIGPIPE disposition would have killed the process).
  EXPECT_EQ(w.status, IoStatus::kPeerDown);
}

TEST(NetIo, WritevGathersAcrossIovecs) {
  SocketPair sp;
  std::vector<std::uint8_t> h = pattern(12);
  std::vector<std::uint8_t> p = pattern(300);
  struct iovec iov[2];
  iov[0].iov_base = h.data();
  iov[0].iov_len = h.size();
  iov[1].iov_base = p.data();
  iov[1].iov_len = p.size();
  IoResult w = full_writev(sp.a, iov, 2);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.bytes, h.size() + p.size());
  // Caller's iovec array must be untouched.
  EXPECT_EQ(iov[0].iov_len, h.size());
  EXPECT_EQ(iov[1].iov_len, p.size());

  std::vector<std::uint8_t> in(h.size() + p.size());
  ASSERT_TRUE(full_read(sp.b, in.data(), in.size()).ok());
  EXPECT_TRUE(std::memcmp(in.data(), h.data(), h.size()) == 0);
  EXPECT_TRUE(std::memcmp(in.data() + h.size(), p.data(), p.size()) == 0);
}

TEST(NetIo, WritevToClosedPeerIsPeerDownNotSigpipe) {
  SocketPair sp;
  sp.close_b();
  // Two big iovecs so the gather path, not a buffered first write, hits the
  // dead peer.
  std::vector<std::uint8_t> h = pattern(1 << 15);
  std::vector<std::uint8_t> p = pattern(1 << 16);
  struct iovec iov[2];
  iov[0].iov_base = h.data();
  iov[0].iov_len = h.size();
  iov[1].iov_base = p.data();
  iov[1].iov_len = p.size();
  // Surviving at all means MSG_NOSIGNAL held; default SIGPIPE disposition
  // would have killed the process.
  IoResult w = full_writev(sp.a, iov, 2);
  EXPECT_EQ(w.status, IoStatus::kPeerDown);
}

TEST(NetIo, WritevServesPipesViaEnotsockFallback) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::vector<std::uint8_t> h = pattern(12);
  std::vector<std::uint8_t> p = pattern(300);
  struct iovec iov[2];
  iov[0].iov_base = h.data();
  iov[0].iov_len = h.size();
  iov[1].iov_base = p.data();
  iov[1].iov_len = p.size();
  IoResult w = full_writev(fds[1], iov, 2);
  ASSERT_TRUE(w.ok()) << io_status_name(w.status);
  EXPECT_EQ(w.bytes, h.size() + p.size());
  std::vector<std::uint8_t> in(h.size() + p.size());
  ASSERT_TRUE(full_read(fds[0], in.data(), in.size()).ok());
  EXPECT_TRUE(std::memcmp(in.data(), h.data(), h.size()) == 0);
  EXPECT_TRUE(std::memcmp(in.data() + h.size(), p.data(), p.size()) == 0);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(NetIo, NonblockingReadReportsWouldBlock) {
  SocketPair sp;
  ASSERT_TRUE(set_nonblocking(sp.b));
  std::uint8_t buf[8];
  IoResult r = read_some(sp.b, buf, sizeof buf);
  EXPECT_EQ(r.status, IoStatus::kWouldBlock);
  EXPECT_EQ(r.bytes, 0u);

  // full_read on a nonblocking fd reports partial progress, not a spin.
  std::vector<std::uint8_t> out = pattern(16);
  ASSERT_TRUE(full_write(sp.a, out.data(), out.size()).ok());
  std::vector<std::uint8_t> in(64);
  IoResult fr = full_read(sp.b, in.data(), in.size());
  EXPECT_EQ(fr.status, IoStatus::kWouldBlock);
  EXPECT_EQ(fr.bytes, out.size());
}

TEST(NetIo, NonblockingWriteFillsTheBufferThenWouldBlocks) {
  SocketPair sp;
  ASSERT_TRUE(set_nonblocking(sp.a));
  std::vector<std::uint8_t> chunk = pattern(1 << 16);
  // Keep writing until the kernel buffer fills; must terminate via
  // kWouldBlock, never block and never error.
  std::size_t total = 0;
  for (int i = 0; i < 1024; ++i) {
    IoResult w = write_some(sp.a, chunk.data(), chunk.size());
    if (w.status == IoStatus::kWouldBlock) {
      SUCCEED();
      return;
    }
    ASSERT_EQ(w.status, IoStatus::kOk);
    total += w.bytes;
  }
  FAIL() << "socket buffer never filled after " << total << " bytes";
}

TEST(NetIo, ReadSomeZeroBytesIsPeerDown) {
  SocketPair sp;
  sp.close_a();
  std::uint8_t buf[8];
  IoResult r = read_some(sp.b, buf, sizeof buf);
  EXPECT_EQ(r.status, IoStatus::kPeerDown);
}

TEST(NetIo, BadFdIsKErrorWithErrnoPreserved) {
  std::uint8_t buf[4] = {1, 2, 3, 4};
  IoResult r = full_read(-1, buf, sizeof buf);
  EXPECT_EQ(r.status, IoStatus::kError);
  EXPECT_EQ(r.error, EBADF);
  IoResult w = full_write(-1, buf, sizeof buf);
  EXPECT_EQ(w.status, IoStatus::kError);
  EXPECT_EQ(w.error, EBADF);
}

TEST(NetIo, HelpersServePipesViaEnotsockFallback) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::vector<std::uint8_t> out = pattern(128);
  IoResult w = full_write(fds[1], out.data(), out.size());
  ASSERT_TRUE(w.ok()) << io_status_name(w.status);
  std::vector<std::uint8_t> in(out.size());
  IoResult r = full_read(fds[0], in.data(), in.size());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(in, out);
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- EINTR ----------------------------------------------------------------

// A no-op handler WITHOUT SA_RESTART: every signal delivery makes the
// blocking syscall return EINTR, which the helpers must absorb.
class EintrStorm {
 public:
  EintrStorm() {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = [](int) {};
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // deliberately NOT SA_RESTART
    sigaction(SIGUSR1, &sa, &old_);
    target_ = pthread_self();
    storm_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        pthread_kill(target_, SIGUSR1);
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }
  ~EintrStorm() {
    stop_.store(true, std::memory_order_relaxed);
    storm_.join();
    sigaction(SIGUSR1, &old_, nullptr);
  }

 private:
  pthread_t target_;
  std::atomic<bool> stop_{false};
  std::thread storm_;
  struct sigaction old_;
};

TEST(NetIo, FullReadSurvivesAnEintrStorm) {
  SocketPair sp;
  std::vector<std::uint8_t> out = pattern(1 << 15);
  std::thread writer([&] {
    // Trickle so the reader spends real time blocked in read(2) while
    // signals land on it.
    for (std::size_t i = 0; i < out.size(); i += 512) {
      ASSERT_TRUE(full_write(sp.a, out.data() + i, 512).ok());
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });
  std::vector<std::uint8_t> in(out.size());
  IoResult r;
  {
    EintrStorm storm;  // signals target THIS thread, the one in read(2)
    r = full_read(sp.b, in.data(), in.size());
  }
  writer.join();
  ASSERT_EQ(r.status, IoStatus::kOk) << io_status_name(r.status);
  EXPECT_EQ(in, out);
}

TEST(NetIo, FullWriteSurvivesAnEintrStorm) {
  SocketPair sp;
  std::vector<std::uint8_t> out = pattern(1 << 20);  // >> socket buffer
  std::vector<std::uint8_t> in(out.size());
  std::thread reader([&] {
    // Slow reader keeps the writer blocked in send(2) mid-storm.
    std::size_t got = 0;
    while (got < in.size()) {
      IoResult r = read_some(sp.b, in.data() + got, 4096);
      ASSERT_EQ(r.status, IoStatus::kOk);
      got += r.bytes;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  IoResult w;
  {
    EintrStorm storm;
    w = full_write(sp.a, out.data(), out.size());
  }
  reader.join();
  ASSERT_EQ(w.status, IoStatus::kOk) << io_status_name(w.status);
  EXPECT_EQ(w.bytes, out.size());
  EXPECT_EQ(in, out);
}

TEST(NetIo, StatusNamesAreStable) {
  EXPECT_STREQ(io_status_name(IoStatus::kOk), "ok");
  EXPECT_STREQ(io_status_name(IoStatus::kPeerDown), "peer-down");
  EXPECT_STREQ(io_status_name(IoStatus::kWouldBlock), "would-block");
  EXPECT_STREQ(io_status_name(IoStatus::kError), "error");
}

}  // namespace
}  // namespace udc
