// End-to-end protocol tests: Propositions 2.3, 2.4, 3.1 and 4.1, each as a
// sweep over crash plans / drop rates, plus the negative results that
// motivate the paper (flooding is NOT uniform under loss; reliable-channel
// UDC breaks under loss).
#include <gtest/gtest.h>

#include "udc/coord/action.h"
#include "udc/coord/nudc_protocol.h"
#include "udc/coord/spec.h"
#include "udc/coord/udc_generalized.h"
#include "udc/coord/udc_reliable.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/generalized.h"
#include "udc/fd/oracle.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/simulator.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

constexpr int kN = 4;
constexpr Time kHorizon = 420;
constexpr Time kGrace = 160;

std::vector<CrashPlan> plans_up_to(int t) {
  return all_crash_plans_up_to(kN, t, /*earliest=*/20, /*latest=*/120);
}

struct SweepResult {
  CoordReport udc;
  CoordReport nudc;
};

SweepResult sweep(double drop, int t, const OracleFactory& oracle,
                  const ProtocolFactory& protocol) {
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = kHorizon;
  cfg.channel.drop_prob = drop;
  auto workload = make_workload(kN, 1, 5, 7);
  auto actions = workload_actions(workload);
  auto plans = plans_up_to(t);
  System sys = generate_system(cfg, plans, workload, oracle, protocol,
                               /*seeds_per_plan=*/2);
  return SweepResult{check_udc(sys, actions, kGrace),
                     check_nudc(sys, actions, kGrace)};
}

// ---------------------------------------------------------------- Prop 2.3
TEST(Prop23, NUdcFloodingAttainsNUdcUnderLossAndAnyFailures) {
  auto res = sweep(0.4, kN, nullptr, [](ProcessId) {
    return std::make_unique<NUdcProcess>();
  });
  EXPECT_TRUE(res.nudc.achieved())
      << (res.nudc.violations.empty() ? "" : res.nudc.violations[0]);
}

TEST(Prop23, FloodingIsNotUniform) {
  // The uniformity gap: a performer that crashes before its α-messages get
  // through leaves UDC violated.  A targeted adversary makes it
  // deterministic: p0 performs at init, then every p0 channel is dead and
  // p0 crashes.
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = kHorizon;
  cfg.channel.custom_policy = std::make_shared<PartitionDropPolicy>(
      ProcSet::singleton(0), ProcSet::full(kN), /*cut_time=*/0,
      /*background_drop=*/0.0);
  std::vector<InitDirective> workload{{5, 0, make_action(0, 0)}};
  auto actions = workload_actions(workload);
  CrashPlan plan = make_crash_plan(kN, {{0, 40}});
  SimResult res = simulate(cfg, plan, nullptr, workload, [](ProcessId) {
    return std::make_unique<NUdcProcess>();
  });
  EXPECT_TRUE(res.run.do_in(0, kHorizon, actions[0]));
  CoordReport udc = check_udc(res.run, actions, kGrace);
  EXPECT_FALSE(udc.dc2);
  // But nUDC is intact: the performer crashed.
  EXPECT_TRUE(check_nudc(res.run, actions, kGrace).achieved());
}

// ---------------------------------------------------------------- Prop 2.4
TEST(Prop24, ReliableChannelsGiveUdcWithNoFdAnyFailures) {
  auto res = sweep(0.0, kN, nullptr, [](ProcessId) {
    return std::make_unique<UdcReliableProcess>();
  });
  EXPECT_TRUE(res.udc.achieved())
      << (res.udc.violations.empty() ? "" : res.udc.violations[0]);
}

TEST(Prop24, SendBeforeDoOrderingIsInHistories) {
  // The protocol's proof obligation: whenever do_p(α) is in a history, all
  // n-1 α-sends precede it.
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = 120;
  std::vector<InitDirective> workload{{3, 1, make_action(1, 0)}};
  SimResult res = simulate(cfg, no_crashes(kN), nullptr, workload,
                           [](ProcessId) {
                             return std::make_unique<UdcReliableProcess>();
                           });
  const History& h = res.run.history(1);
  int sends_before_do = 0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (h[i].kind == EventKind::kSend) ++sends_before_do;
    if (h[i].kind == EventKind::kDo) break;
  }
  EXPECT_EQ(sends_before_do, kN - 1);
}

TEST(Prop24, ReliableProtocolBreaksUnderMessageLoss) {
  // Motivates §3: run the Prop 2.4 protocol on a channel that silences the
  // initiator, crash it after it performed — uniformity gone.
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = kHorizon;
  cfg.channel.custom_policy = std::make_shared<PartitionDropPolicy>(
      ProcSet::singleton(0), ProcSet::full(kN), 0, 0.0);
  std::vector<InitDirective> workload{{5, 0, make_action(0, 0)}};
  auto actions = workload_actions(workload);
  CrashPlan plan = make_crash_plan(kN, {{0, 60}});
  SimResult res = simulate(cfg, plan, nullptr, workload, [](ProcessId) {
    return std::make_unique<UdcReliableProcess>();
  });
  EXPECT_FALSE(check_udc(res.run, actions, kGrace).achieved());
}

// ---------------------------------------------------------------- Prop 3.1
TEST(Prop31, StrongFdGivesUdcUnderLossAnyFailures) {
  auto res = sweep(0.4, kN, [] { return std::make_unique<StrongOracle>(4, 0.2); },
                   [](ProcessId) {
                     return std::make_unique<UdcStrongFdProcess>();
                   });
  EXPECT_TRUE(res.udc.achieved())
      << (res.udc.violations.empty() ? "" : res.udc.violations[0]);
}

TEST(Prop31, PerfectFdAlsoWorks) {
  auto res = sweep(0.4, kN, [] { return std::make_unique<PerfectOracle>(4); },
                   [](ProcessId) {
                     return std::make_unique<UdcStrongFdProcess>();
                   });
  EXPECT_TRUE(res.udc.achieved());
}

TEST(Cor32, ImpermanentStrongSuffices) {
  // Corollary 3.2 via Prop 2.2: the protocol accumulates suspicions itself,
  // so the impermanent-strong oracle is enough.
  auto res = sweep(0.4, kN,
                   [] { return std::make_unique<ImpermanentStrongOracle>(4); },
                   [](ProcessId) {
                     return std::make_unique<UdcStrongFdProcess>();
                   });
  EXPECT_TRUE(res.udc.achieved())
      << (res.udc.violations.empty() ? "" : res.udc.violations[0]);
}

TEST(Prop31, NoFdFailsLiveness) {
  // Without any detector the performer waits for acks forever once a peer
  // crashes: DC1 is violated (initiator neither performs nor crashes).
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = kHorizon;
  cfg.channel.drop_prob = 0.2;
  std::vector<InitDirective> workload{{30, 0, make_action(0, 0)}};
  auto actions = workload_actions(workload);
  CrashPlan plan = make_crash_plan(kN, {{1, 10}});
  SimResult res = simulate(cfg, plan, nullptr, workload, [](ProcessId) {
    return std::make_unique<UdcStrongFdProcess>();
  });
  CoordReport rep = check_udc(res.run, actions, kGrace);
  EXPECT_FALSE(rep.dc1);
}

// ---------------------------------------------------------------- Prop 4.1
TEST(Prop41, TUsefulFdGivesUdcForEachT) {
  for (int t = 1; t <= kN; ++t) {
    auto res = sweep(0.3, t,
                     [t_copy = t] {
                       return std::make_unique<TUsefulOracle>(t_copy, 4, 1);
                     },
                     [t_copy = t](ProcessId) {
                       return std::make_unique<UdcGeneralizedProcess>(t_copy);
                     });
    EXPECT_TRUE(res.udc.achieved())
        << "t=" << t << ": "
        << (res.udc.violations.empty() ? "" : res.udc.violations[0]);
  }
}

TEST(Cor42, TrivialDetectorSufficesBelowHalf) {
  // t < n/2 (t=1 for n=4): the content-free cycling detector gives UDC —
  // Gopal-Toueg, no failure information needed.
  auto res = sweep(0.3, 1,
                   [] { return std::make_unique<TrivialGeneralizedOracle>(1, 2); },
                   [](ProcessId) {
                     return std::make_unique<UdcGeneralizedProcess>(1);
                   });
  EXPECT_TRUE(res.udc.achieved())
      << (res.udc.violations.empty() ? "" : res.udc.violations[0]);
}

TEST(Prop41, TrivialDetectorFailsLivenessAboveHalf) {
  // t >= n/2: (S, 0) reports never satisfy the inequality, so a process
  // whose peer crashed can never perform: DC1 breaks.
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = kHorizon;
  cfg.channel.drop_prob = 0.2;
  std::vector<InitDirective> workload{{30, 0, make_action(0, 0)}};
  auto actions = workload_actions(workload);
  CrashPlan plan = make_crash_plan(kN, {{1, 10}, {2, 15}});
  TrivialGeneralizedOracle oracle(2, 2);
  SimResult res = simulate(cfg, plan, &oracle, workload, [](ProcessId) {
    return std::make_unique<UdcGeneralizedProcess>(2);
  });
  EXPECT_FALSE(check_udc(res.run, actions, kGrace).dc1);
}

TEST(Protocols, MessageCountsAreSane) {
  // Ack-based UDC on a lossless channel settles: after the handshake no
  // unbounded retransmission (all acks collected).
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = 400;
  std::vector<InitDirective> workload{{3, 0, make_action(0, 0)}};
  PerfectOracle oracle(4);
  SimResult res = simulate(cfg, no_crashes(kN), &oracle, workload,
                           [](ProcessId) {
                             return std::make_unique<UdcStrongFdProcess>();
                           });
  // Handshake is ~2 messages per ordered pair plus a few retransmissions
  // racing the acks; far below one message per tick per process.
  EXPECT_LT(res.messages_sent, 200u);
  auto actions = workload_actions(workload);
  EXPECT_TRUE(check_udc(res.run, actions, 100).achieved());
}

}  // namespace
}  // namespace udc
