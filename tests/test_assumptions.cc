// The A1-A5t assumption checkers (kt/assumptions.h).
#include "udc/kt/assumptions.h"

#include <gtest/gtest.h>

#include "udc/coord/action.h"
#include "udc/coord/nudc_protocol.h"
#include "udc/fd/oracle.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

constexpr int kN = 3;

// A system designed to satisfy A1/A5 richly: same seed across all crash
// plans, so runs share prefixes until the first crash diverges them, and
// every faulty set up to t occurs.
System rich_system(int t, double drop, Time horizon = 90) {
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = horizon;
  cfg.channel.drop_prob = drop;
  cfg.seed = 7;
  auto workload = make_workload(kN, 1, 3, 5);
  auto plans = all_crash_plans_up_to(kN, t, 30, 70);
  return generate_system(
      cfg, plans, workload, nullptr,
      [](ProcessId) { return std::make_unique<NUdcProcess>(); },
      /*seeds_per_plan=*/1);
}

TEST(A5t, ExhaustivePlansSatisfyIt) {
  System sys = rich_system(2, 0.2);
  AssumptionReport rep = check_a5t(sys, 2);
  EXPECT_TRUE(rep.holds()) << rep.satisfied << "/" << rep.checked;
  EXPECT_EQ(rep.checked, 7u);  // C(3,0)+C(3,1)+C(3,2)
}

TEST(A5t, MissingSubsetDetected) {
  System sys = rich_system(1, 0.2);
  AssumptionReport rep = check_a5t(sys, 2);
  EXPECT_FALSE(rep.holds());
  EXPECT_EQ(rep.checked, 7u);
  EXPECT_EQ(rep.satisfied, 4u);  // {} and the three singletons
}

TEST(A1, SharedSeedFamilyHasFullCoverageBeforeCrashes) {
  System sys = rich_system(2, 0.2);
  // Before the earliest crash (t=30) every run in the same seed family has
  // the same prefix, so any still-possible faulty set has an extension.
  // (NOTE: generate_system increments the seed per run; with one seed per
  // plan the streams differ, but the network/oracle draws are identical
  // until behaviour diverges... they are NOT identical across seeds, so we
  // regenerate with a fixed seed manually here.)
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = 90;
  cfg.channel.drop_prob = 0.2;
  cfg.seed = 7;
  auto workload = make_workload(kN, 1, 3, 5);
  std::vector<udc::Run> runs;
  for (const CrashPlan& plan : all_crash_plans_up_to(kN, 2, 30, 70)) {
    runs.push_back(simulate(cfg, plan, nullptr, workload, [](ProcessId) {
                     return std::make_unique<NUdcProcess>();
                   }).run);
  }
  System shared(std::move(runs));
  AssumptionReport rep = check_a1(shared, /*stride=*/7, /*max_time=*/28);
  EXPECT_GT(rep.checked, 0u);
  EXPECT_EQ(rep.coverage(), 1.0)
      << rep.satisfied << "/" << rep.checked << " A1 instances";
  (void)sys;
}

TEST(A1, CoverageDropsOnceCrashTimesAreFixed) {
  // Past the plans' crash window, the finite system lacks extensions that
  // would crash a process later than the generated plan did: coverage < 1,
  // quantifying the finite-horizon substitution (DESIGN.md §2).
  System sys = rich_system(2, 0.2);
  AssumptionReport rep = check_a1(sys, 10);
  EXPECT_GT(rep.checked, 0u);
  EXPECT_LT(rep.coverage(), 1.0);
}

// A workload-varied system (generate_system_multi): runs where each action
// is never initiated exist alongside the full-workload runs, which is the
// richness A3/A4 presuppose.
System multi_system(double drop) {
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = 90;
  cfg.channel.drop_prob = drop;
  cfg.seed = 7;
  auto workload = make_workload(kN, 1, 3, 5);
  auto workloads = workload_power_set(workload);
  auto plans = all_crash_plans_up_to(kN, 2, 30, 70);
  return generate_system_multi(
      cfg, plans, workloads, nullptr,
      [](ProcessId) { return std::make_unique<NUdcProcess>(); },
      /*seeds_per_combo=*/1);
}

TEST(A3, KnowledgeOfInitIsFailureInsensitive) {
  System sys = multi_system(0.2);
  auto workload = make_workload(kN, 1, 3, 5);
  auto actions = workload_actions(workload);
  AssumptionReport rep = check_a3(sys, actions);
  EXPECT_EQ(rep.checked, actions.size() * kN);
  EXPECT_TRUE(rep.holds()) << rep.satisfied << "/" << rep.checked;
}

TEST(A4, HighCoverageOnWorkloadVariedFloodingSystems) {
  // The flooding protocol is FIP-like for init facts (everything a process
  // knows about an action it broadcasts), so A4 instances should be
  // largely witnessed.  We assert high coverage rather than perfection:
  // finite systems can lack the exact (crash-truncated) witness run.
  System sys = multi_system(0.2);
  auto workload = make_workload(kN, 1, 3, 5);
  auto actions = workload_actions(workload);
  AssumptionReport rep = check_a4(sys, actions, /*stride=*/10);
  EXPECT_GT(rep.checked, 0u);
  EXPECT_GE(rep.coverage(), 0.9)
      << rep.satisfied << "/" << rep.checked << " A4 instances";
}

TEST(A2, PairedCrashTimesGiveWitnesses) {
  // A2 needs extension pairs where all faulty processes crash by m+1; build
  // a system that contains them: same faulty set {1}, same seed, crash
  // times sweeping a window, so for sampled m below a plan's crash time the
  // run crashing at m+1 is the required extension.
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = 60;
  cfg.channel.drop_prob = 0.0;
  cfg.seed = 4;
  auto workload = make_workload(kN, 1, 3, 5);
  std::vector<udc::Run> runs;
  for (Time crash_at = 9; crash_at <= 49; ++crash_at) {
    CrashPlan plan = make_crash_plan(kN, {{1, crash_at}});
    runs.push_back(simulate(cfg, plan, nullptr, workload, [](ProcessId) {
                     return std::make_unique<NUdcProcess>();
                   }).run);
  }
  System sys(std::move(runs));
  AssumptionReport rep = check_a2(sys, /*stride=*/8);
  EXPECT_GT(rep.checked, 0u);
  EXPECT_GT(rep.coverage(), 0.5)
      << rep.satisfied << "/" << rep.checked << " A2 instances";
}

TEST(A2, SparseSystemHasLowCoverage) {
  // With one crash time per faulty set, the "crash by m+1" extensions
  // mostly do not exist: coverage collapses — quantifying exactly what the
  // finite system is missing relative to the paper's context.
  System sys = rich_system(2, 0.2);
  AssumptionReport rep = check_a2(sys, 10);
  EXPECT_GT(rep.checked, 0u);
  EXPECT_LT(rep.coverage(), 0.6);
}

TEST(Reports, VacuousInstancesCounted) {
  System sys = rich_system(1, 0.0);
  AssumptionReport rep = check_a1(sys, 10);
  // Points where a process outside S has crashed are vacuous for that S.
  EXPECT_GT(rep.vacuous, 0u);
}

}  // namespace
}  // namespace udc
