// Parallel system generation: bit-identical to the serial path, at any
// thread count.
#include <gtest/gtest.h>

#include "udc/coord/action.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/oracle.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

TEST(ParallelGeneration, BitIdenticalToSerial) {
  SimConfig cfg;
  cfg.n = 4;
  cfg.horizon = 200;
  cfg.channel.drop_prob = 0.3;
  cfg.seed = 5;
  auto workload = make_workload(4, 1, 5, 7);
  auto plans = all_crash_plans_up_to(4, 3, 25, 100);
  auto oracle = [] { return std::make_unique<StrongOracle>(4, 0.2); };
  auto protocol = [](ProcessId) {
    return std::make_unique<UdcStrongFdProcess>();
  };
  SystemStats serial_stats, parallel_stats;
  System serial = generate_system(cfg, plans, workload, oracle, protocol, 2,
                                  &serial_stats);
  for (unsigned threads : {1u, 2u, 8u}) {
    SystemStats stats;
    System parallel = generate_system_parallel(cfg, plans, workload, oracle,
                                               protocol, 2, threads, &stats);
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      for (ProcessId p = 0; p < 4; ++p) {
        ASSERT_TRUE(serial.run(i).history(p) == parallel.run(i).history(p))
            << threads << " threads, run " << i << ", p" << p;
      }
    }
    EXPECT_EQ(stats.messages_sent, serial_stats.messages_sent);
    EXPECT_EQ(stats.messages_dropped, serial_stats.messages_dropped);
    EXPECT_EQ(stats.runs, serial_stats.runs);
  }
  (void)parallel_stats;
}

TEST(ParallelGeneration, DefaultThreadCountWorks) {
  SimConfig cfg;
  cfg.n = 3;
  cfg.horizon = 120;
  auto plans = all_crash_plans_up_to(3, 2, 20, 60);
  System sys = generate_system_parallel(
      cfg, plans, {}, [] { return std::make_unique<PerfectOracle>(4); },
      [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); }, 1);
  EXPECT_EQ(sys.size(), plans.size());
}

}  // namespace
}  // namespace udc
