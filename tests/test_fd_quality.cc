// fd/quality.h: the QoS measurements behind the class labels.
#include "udc/fd/quality.h"

#include <gtest/gtest.h>

#include "udc/fd/oracle.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

TEST(FdQuality, HandBuiltLatencyAccounting) {
  // p1 crashes at 2; p0 detects at 5 (latency 3); p2 never detects.
  Run::Builder b(3);
  b.end_step();                                                   // 1
  b.append(1, Event::crash()).end_step();                         // 2
  b.end_step();                                                   // 3
  b.end_step();                                                   // 4
  b.append(0, Event::suspect(ProcSet::singleton(1))).end_step();  // 5
  b.end_step();                                                   // 6
  udc::Run r = std::move(b).build();
  FdQuality q = measure_fd_quality(r);
  EXPECT_EQ(q.detections, 1u);
  EXPECT_EQ(q.missed, 1u);  // p2 never reports
  EXPECT_DOUBLE_EQ(q.mean_detection_latency, 3.0);
  EXPECT_EQ(q.max_detection_latency, 3);
  EXPECT_DOUBLE_EQ(q.false_positive_rate, 0.0);
}

TEST(FdQuality, FalsePositiveIntegration) {
  // p0 suspects live p1 during ticks 2..4 (suspicion in force from the
  // t=2 report until retracted at t=5): 3 false observer-ticks out of
  // 2 observers x 6 ticks.
  Run::Builder b(2);
  b.end_step();
  b.append(0, Event::suspect(ProcSet::singleton(1))).end_step();
  b.end_step();
  b.end_step();
  b.append(0, Event::suspect(ProcSet{})).end_step();
  b.end_step();
  udc::Run r = std::move(b).build();
  FdQuality q = measure_fd_quality(r);
  EXPECT_NEAR(q.false_positive_rate, 3.0 / 12.0, 1e-9);
  EXPECT_EQ(q.detections, 0u);
  EXPECT_EQ(q.missed, 0u);
}

class IdleProcess : public Process {
 public:
  void on_receive(ProcessId, const Message&, Env&) override {}
};

System oracle_system(const OracleFactory& oracle) {
  SimConfig cfg;
  cfg.n = 4;
  cfg.horizon = 300;
  auto plans = all_crash_plans_up_to(4, 2, 40, 120);
  return generate_system(cfg, plans, {}, oracle, [](ProcessId) {
    return std::make_unique<IdleProcess>();
  }, 2);
}

TEST(FdQuality, PerfectOracleDetectsEverythingCleanly) {
  System sys =
      oracle_system([] { return std::make_unique<PerfectOracle>(4); });
  FdQuality q = measure_fd_quality(sys);
  EXPECT_EQ(q.missed, 0u);
  EXPECT_DOUBLE_EQ(q.false_positive_rate, 0.0);
  // Detection comes on the next report tick: latency in [0, period].
  EXPECT_LE(q.max_detection_latency, 4);
}

TEST(FdQuality, NoisyStrongTradesAccuracyNotLatency) {
  System clean =
      oracle_system([] { return std::make_unique<PerfectOracle>(4); });
  System noisy =
      oracle_system([] { return std::make_unique<StrongOracle>(4, 0.5); });
  FdQuality qc = measure_fd_quality(clean);
  FdQuality qn = measure_fd_quality(noisy);
  EXPECT_EQ(qn.missed, 0u);
  EXPECT_GT(qn.false_positive_rate, qc.false_positive_rate);
  // Same reporting cadence: latencies comparable.
  EXPECT_LE(qn.max_detection_latency, qc.max_detection_latency + 4);
}

TEST(FdQuality, SlowerPeriodMeansSlowerDetectionAndLowerLoad) {
  System fast =
      oracle_system([] { return std::make_unique<PerfectOracle>(2); });
  System slow =
      oracle_system([] { return std::make_unique<PerfectOracle>(16); });
  FdQuality qf = measure_fd_quality(fast);
  FdQuality qs = measure_fd_quality(slow);
  EXPECT_LT(qf.max_detection_latency, qs.max_detection_latency + 1);
  EXPECT_LE(qs.max_detection_latency, 16);
  // Change-driven reporting: load differences are small, but the fast
  // detector can never be the lazier one.
  EXPECT_GE(qf.report_load, qs.report_load);
}

}  // namespace
}  // namespace udc
