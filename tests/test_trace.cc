// Run tracing: format/parse round trips, filters, and malformed-input
// rejection.
#include "udc/event/trace.h"

#include <gtest/gtest.h>

#include "udc/common/check.h"
#include "udc/coord/action.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/oracle.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

udc::Run protocol_run(std::uint64_t seed) {
  SimConfig cfg;
  cfg.n = 3;
  cfg.horizon = 120;
  cfg.channel.drop_prob = 0.3;
  cfg.seed = seed;
  auto workload = make_workload(3, 1, 4, 6);
  PerfectOracle oracle(4);
  return simulate(cfg, make_crash_plan(3, {{1, 30}}), &oracle, workload,
                  [](ProcessId) {
                    return std::make_unique<UdcStrongFdProcess>();
                  })
      .run;
}

TEST(Trace, RoundTripPreservesEverything) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    udc::Run original = protocol_run(seed);
    udc::Run parsed = parse_run(format_run(original));
    ASSERT_EQ(parsed.n(), original.n());
    ASSERT_EQ(parsed.horizon(), original.horizon());
    for (ProcessId p = 0; p < original.n(); ++p) {
      ASSERT_TRUE(original.history(p) == parsed.history(p)) << "p" << p;
      for (Time m = 0; m <= original.horizon(); m += 7) {
        EXPECT_EQ(original.history_len(p, m), parsed.history_len(p, m));
      }
    }
    EXPECT_EQ(original.faulty_set(), parsed.faulty_set());
  }
}

TEST(Trace, RoundTripOfHandBuiltRunWithAllEventKinds) {
  Run::Builder b(3);
  Message msg;
  msg.kind = MsgKind::kApp;
  msg.a = -5;
  msg.b = 77;
  msg.procs = ProcSet::singleton(2);
  b.append(0, Event::init(make_action(0, 3))).end_step();
  b.append(0, Event::send(1, msg)).end_step();
  b.append(1, Event::recv(0, msg))
      .append(2, Event::suspect_gen(ProcSet::full(3), 1))
      .end_step();
  b.append(0, Event::do_action(make_action(0, 3)))
      .append(1, Event::suspect(ProcSet::singleton(2)))
      .append(2, Event::crash())
      .end_step();
  b.end_step();  // trailing idle step
  udc::Run r = std::move(b).build();
  udc::Run parsed = parse_run(format_run(r));
  EXPECT_EQ(parsed.horizon(), r.horizon());
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_TRUE(r.history(p) == parsed.history(p)) << "p" << p;
  }
  // The generalized report survives with its k.
  auto rep = parsed.gen_suspects_at(2, 3);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->k, 1);
}

TEST(Trace, FiltersApply) {
  udc::Run r = protocol_run(3);
  TraceOptions only_p1;
  only_p1.only_process = 1;
  std::string text = format_run(r, only_p1);
  EXPECT_EQ(text.find(" p=0 "), std::string::npos);
  EXPECT_EQ(text.find(" p=2 "), std::string::npos);

  TraceOptions no_fd;
  no_fd.include_fd_events = false;
  EXPECT_EQ(format_run(r, no_fd).find("suspect"), std::string::npos);

  TraceOptions window;
  window.from = 10;
  window.to = 20;
  std::string w = format_run(r, window);
  EXPECT_EQ(w.find("t=9 "), std::string::npos);
  EXPECT_EQ(w.find("t=21 "), std::string::npos);
}

TEST(Trace, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_run(""), InvariantViolation);
  EXPECT_THROW(parse_run("bogus n=2 horizon=5\n"), InvariantViolation);
  EXPECT_THROW(parse_run("run n=2 horizon=5\nt=1 p=0 frobnicate\n"),
               InvariantViolation);
  // Out-of-order times.
  EXPECT_THROW(parse_run("run n=2 horizon=5\n"
                         "t=3 p=0 crash\n"
                         "t=1 p=1 crash\n"),
               InvariantViolation);
  // R-violations surface through the builder: receive without send.
  EXPECT_THROW(
      parse_run("run n=2 horizon=5\n"
                "t=1 p=1 recv from=0 kind=app action=-1 procs=0 a=0 b=0\n"),
      InvariantViolation);
}

TEST(Trace, SystemRoundTripPreservesKnowledgeStructure) {
  // Archive a generated system as text, reload it, and check the
  // indistinguishability structure (and hence all knowledge facts) is
  // byte-identical.
  SimConfig cfg;
  cfg.n = 3;
  cfg.horizon = 80;
  cfg.channel.drop_prob = 0.3;
  cfg.seed = 6;
  auto workload = make_workload(3, 1, 4, 6);
  auto plans = all_crash_plans_up_to(3, 2, 15, 50);
  PerfectOracle proto_oracle(4);
  std::vector<udc::Run> runs;
  for (const CrashPlan& plan : plans) {
    PerfectOracle oracle(4);
    runs.push_back(simulate(cfg, plan, &oracle, workload, [](ProcessId) {
                     return std::make_unique<UdcStrongFdProcess>();
                   }).run);
  }
  System original(std::move(runs));
  System reloaded = parse_system(format_system(original));
  ASSERT_EQ(reloaded.size(), original.size());
  original.for_each_point([&](Point at) {
    for (ProcessId p = 0; p < 3; ++p) {
      EXPECT_EQ(original.equivalence_class(p, at).size(),
                reloaded.equivalence_class(p, at).size());
    }
  });
}

TEST(Trace, ParseSystemRejectsCountMismatch) {
  udc::Run r = std::move(Run::Builder(2).end_step()).build();
  std::vector<udc::Run> runs;
  runs.push_back(std::move(r));
  System sys(std::move(runs));
  std::string text = format_system(sys);
  // Claim two runs but provide one.
  text.replace(text.find("runs=1"), 6, "runs=2");
  EXPECT_THROW(parse_system(text), InvariantViolation);
}

TEST(Trace, HeaderCarriesDimensions) {
  udc::Run r = std::move(Run::Builder(5).end_step().end_step()).build();
  std::string text = format_run(r);
  EXPECT_NE(text.find("run n=5 horizon=2"), std::string::npos);
  udc::Run parsed = parse_run(text);
  EXPECT_EQ(parsed.n(), 5);
  EXPECT_EQ(parsed.horizon(), 2);
}

}  // namespace
}  // namespace udc
