// Epoll reactor (net/reactor.h): two real reactors over loopback TCP.
// Covers the per-peer lifecycle (dial -> handshake -> established), frame
// exchange in both directions, handshake rejection (wrong run id), refuse
// windows as real teardown (the partition primitive), endpoint re-set, and
// reconnect-with-a-new-epoch — the wire half of reconnect-as-rejoin.
#include "udc/net/reactor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "udc/common/check.h"

namespace udc {
namespace {

using namespace std::chrono_literals;

// Collects callbacks under a lock and lets the test thread await them.
struct Sink {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<WireFrame> frames;
  std::vector<std::uint64_t> frame_epochs;
  int ups = 0;
  int downs = 0;
  std::uint64_t last_up_epoch = 0;
  std::uint16_t last_up_port = 0;

  Reactor::FrameFn frame_fn() {
    return [this](ProcessId, std::uint64_t epoch, const WireFrame& f) {
      std::lock_guard<std::mutex> g(mu);
      frames.push_back(f);
      frame_epochs.push_back(epoch);
      cv.notify_all();
    };
  }
  Reactor::PeerFn peer_fn() {
    return [this](ProcessId, std::uint64_t epoch, bool up,
                  std::uint16_t data_port) {
      std::lock_guard<std::mutex> g(mu);
      if (up) {
        ++ups;
        last_up_epoch = epoch;
        last_up_port = data_port;
      } else {
        ++downs;
      }
      cv.notify_all();
    };
  }

  template <typename Pred>
  bool await(Pred pred, std::chrono::milliseconds timeout = 5'000ms) {
    std::unique_lock<std::mutex> lk(mu);
    return cv.wait_for(lk, timeout, [&] { return pred(); });
  }
};

ReactorOptions opts_for(ProcessId self, std::uint64_t epoch = 0,
                        std::uint64_t run_id = 99) {
  ReactorOptions o;
  o.self = self;
  o.n = 2;
  o.epoch = epoch;
  o.run_id = run_id;
  o.seed = 17 + static_cast<std::uint64_t>(self);
  // Tight timers so teardown-detection tests finish fast.
  o.keepalive = 60ms;
  o.dead_after = 500ms;
  return o;
}

TEST(Reactor, DialHandshakeEstablishAndExchangeFrames) {
  Sink sa, sb;
  Reactor a(opts_for(0), sa.frame_fn(), sa.peer_fn());
  Reactor b(opts_for(1, /*epoch=*/3), sb.frame_fn(), sb.peer_fn());
  std::uint16_t port = a.listen(0);
  ASSERT_GT(port, 0);
  a.start();
  b.start();
  b.set_endpoint(0, port);

  ASSERT_TRUE(sa.await([&] { return sa.ups >= 1; }));
  ASSERT_TRUE(sb.await([&] { return sb.ups >= 1; }));
  EXPECT_TRUE(a.peer_established(1));
  EXPECT_TRUE(b.peer_established(0));
  // The acceptor learned the dialer's epoch from the hello.
  EXPECT_EQ(sa.last_up_epoch, 3u);

  ASSERT_TRUE(b.send(0, FrameType::kData, {1, 2, 3}));
  ASSERT_TRUE(a.send(1, FrameType::kStatus, {9}));
  ASSERT_TRUE(sa.await([&] { return !sa.frames.empty(); }));
  ASSERT_TRUE(sb.await([&] { return !sb.frames.empty(); }));
  EXPECT_EQ(sa.frames[0].type, FrameType::kData);
  EXPECT_EQ(sa.frames[0].payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(sa.frame_epochs[0], 3u);
  EXPECT_EQ(sb.frames[0].type, FrameType::kStatus);

  WireCounters ca = a.counters();
  EXPECT_GE(ca.accepts, 1u);
  EXPECT_GE(ca.connects, 1u);
  EXPECT_GE(ca.frames_rx, 1u);
  WireCounters cb = b.counters();
  EXPECT_GE(cb.dials, 1u);
  EXPECT_GE(cb.connects, 1u);

  b.stop();
  a.stop();
}

TEST(Reactor, SendWithoutAStreamIsUnroutableNotAnError) {
  Sink s;
  Reactor r(opts_for(0), s.frame_fn(), s.peer_fn());
  r.start();
  EXPECT_FALSE(r.send(1, FrameType::kPing, {}));
  EXPECT_GE(r.counters().send_unroutable, 1u);
  r.stop();
}

TEST(Reactor, WrongRunIdIsRejectedAndCounted) {
  Sink sa, sb;
  Reactor a(opts_for(0, 0, /*run_id=*/111), sa.frame_fn(), sa.peer_fn());
  Reactor b(opts_for(1, 0, /*run_id=*/222), sb.frame_fn(), sb.peer_fn());
  std::uint16_t port = a.listen(0);
  a.start();
  b.start();
  b.set_endpoint(0, port);

  // The stray dialer must never establish; the acceptor must count the
  // bounce.  (The dialer keeps retrying into the same rejection — that is
  // the jittered-backoff loop working as designed.)
  std::this_thread::sleep_for(400ms);
  EXPECT_FALSE(a.peer_established(1));
  EXPECT_FALSE(b.peer_established(0));
  EXPECT_GE(a.counters().handshake_rejects, 1u);
  EXPECT_EQ(sa.ups, 0);

  b.stop();
  a.stop();
}

TEST(Reactor, RefuseWindowTearsDownBouncesAndHealsOnClose) {
  Sink sa, sb;
  Reactor a(opts_for(0), sa.frame_fn(), sa.peer_fn());
  Reactor b(opts_for(1), sb.frame_fn(), sb.peer_fn());
  std::uint16_t port = a.listen(0);
  a.start();
  b.start();
  b.set_endpoint(0, port);
  ASSERT_TRUE(sa.await([&] { return sa.ups >= 1; }));

  // Open the partition on the ACCEPTOR side: the live stream dies and the
  // dialer's redials bounce at the handshake.
  a.set_refuse(1, true);
  ASSERT_TRUE(sa.await([&] { return sa.downs >= 1; }));
  ASSERT_TRUE(sb.await([&] { return sb.downs >= 1; }));
  std::this_thread::sleep_for(300ms);
  EXPECT_FALSE(a.peer_established(1));
  EXPECT_GE(a.counters().partitions_enforced, 1u);
  EXPECT_GE(a.counters().handshake_rejects, 1u);

  // Heal: the dialer's backoff loop re-establishes on its own.
  a.set_refuse(1, false);
  ASSERT_TRUE(sa.await([&] { return sa.ups >= 2; }));
  ASSERT_TRUE(sb.await([&] { return sb.ups >= 2; }));
  EXPECT_TRUE(a.peer_established(1));
  EXPECT_GE(b.counters().reconnects, 1u);

  b.stop();
  a.stop();
}

TEST(Reactor, NewEpochDialerReplacesTheOldIncarnation) {
  Sink sa;
  Reactor a(opts_for(0), sa.frame_fn(), sa.peer_fn());
  std::uint16_t port = a.listen(0);
  a.start();

  {
    Sink sb;
    Reactor b(opts_for(1, /*epoch=*/0), sb.frame_fn(), sb.peer_fn());
    b.start();
    b.set_endpoint(0, port);
    ASSERT_TRUE(sa.await([&] { return sa.ups >= 1; }));
    EXPECT_EQ(sa.last_up_epoch, 0u);
    b.stop();  // "SIGKILL": stream drops with no goodbye
  }
  ASSERT_TRUE(sa.await([&] { return sa.downs >= 1; }));

  // The relaunched incarnation dials back in with epoch+1 and a data port.
  Sink sb2;
  ReactorOptions o2 = opts_for(1, /*epoch=*/1);
  o2.advertised_port = 7777;
  Reactor b2(o2, sb2.frame_fn(), sb2.peer_fn());
  b2.start();
  b2.set_endpoint(0, port);
  ASSERT_TRUE(sa.await([&] { return sa.ups >= 2; }));
  EXPECT_EQ(sa.last_up_epoch, 1u);
  EXPECT_EQ(sa.last_up_port, 7777);
  // The dialer establishes on the hello-ack, a beat after the acceptor.
  ASSERT_TRUE(sb2.await([&] { return sb2.ups >= 1; }));

  ASSERT_TRUE(b2.send(0, FrameType::kData, {42}));
  ASSERT_TRUE(sa.await([&] { return !sa.frames.empty(); }));
  EXPECT_EQ(sa.frame_epochs[0], 1u);

  b2.stop();
  a.stop();
}

TEST(Reactor, EndpointResetToANewPortChasesTheMove) {
  // Peer 0 "restarts" on a new ephemeral port; re-setting the endpoint on
  // the dialer must close the dead stream and establish to the new one.
  Sink sa1;
  auto a1 = std::make_unique<Reactor>(opts_for(0), sa1.frame_fn(),
                                      sa1.peer_fn());
  std::uint16_t port1 = a1->listen(0);
  a1->start();

  Sink sb;
  Reactor b(opts_for(1), sb.frame_fn(), sb.peer_fn());
  b.start();
  b.set_endpoint(0, port1);
  ASSERT_TRUE(sb.await([&] { return sb.ups >= 1; }));

  a1->stop();
  a1.reset();
  ASSERT_TRUE(sb.await([&] { return sb.downs >= 1; }));

  Sink sa2;
  Reactor a2(opts_for(0), sa2.frame_fn(), sa2.peer_fn());
  std::uint16_t port2 = a2.listen(0);
  a2.start();
  b.set_endpoint(0, port2);
  ASSERT_TRUE(sb.await([&] { return sb.ups >= 2; }));
  EXPECT_TRUE(b.peer_established(0));

  b.stop();
  a2.stop();
}

TEST(Reactor, ChaosShimEatsDataFramesOnly) {
  Sink sa, sb;
  Reactor a(opts_for(0), sa.frame_fn(), sa.peer_fn());
  Reactor b(opts_for(1), sb.frame_fn(), sb.peer_fn());
  // Shim on the DIALER: every kData dies at the wire; control frames pass.
  b.set_shim([](ProcessId, const WireFrame& f) {
    return f.type != FrameType::kData;
  });
  std::uint16_t port = a.listen(0);
  a.start();
  b.start();
  b.set_endpoint(0, port);
  ASSERT_TRUE(sa.await([&] { return sa.ups >= 1; }));
  ASSERT_TRUE(sb.await([&] { return sb.ups >= 1; }));

  ASSERT_TRUE(b.send(0, FrameType::kData, {1}));   // eaten
  ASSERT_TRUE(b.send(0, FrameType::kStatus, {2}));  // passes
  ASSERT_TRUE(sa.await([&] { return !sa.frames.empty(); }));
  EXPECT_EQ(sa.frames[0].type, FrameType::kStatus);
  EXPECT_GE(b.counters().shim_drops, 1u);

  b.stop();
  a.stop();
}

TEST(Reactor, ListenBacksFillsAdvertisedPortWhenEphemeral) {
  Sink s;
  Reactor r(opts_for(0), s.frame_fn(), s.peer_fn());
  std::uint16_t port = r.listen(0);
  EXPECT_GT(port, 0);
  r.start();
  r.stop();
}

TEST(Reactor, BindFailureThrowsWithBindInTheMessage) {
  Sink s1;
  Reactor r1(opts_for(0), s1.frame_fn(), s1.peer_fn());
  std::uint16_t port = r1.listen(0);
  Sink s2;
  Reactor r2(opts_for(1), s2.frame_fn(), s2.peer_fn());
  try {
    r2.listen(port);
    FAIL() << "second bind of " << port << " unexpectedly succeeded";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("bind"), std::string::npos);
  }
}

}  // namespace
}  // namespace udc
