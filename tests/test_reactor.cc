// Epoll reactor (net/reactor.h): two real reactors over loopback TCP.
// Covers the per-peer lifecycle (dial -> handshake -> established), frame
// exchange in both directions, handshake rejection (wrong run id), refuse
// windows as real teardown (the partition primitive), endpoint re-set, and
// reconnect-with-a-new-epoch — the wire half of reconnect-as-rejoin.
#include "udc/net/reactor.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "udc/common/check.h"

namespace udc {
namespace {

using namespace std::chrono_literals;

// Collects callbacks under a lock and lets the test thread await them.
struct Sink {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<WireFrame> frames;
  std::vector<std::uint64_t> frame_epochs;
  int ups = 0;
  int downs = 0;
  std::uint64_t last_up_epoch = 0;
  std::uint16_t last_up_port = 0;

  Reactor::FrameFn frame_fn() {
    return [this](ProcessId, std::uint64_t epoch, const WireFrame& f) {
      std::lock_guard<std::mutex> g(mu);
      frames.push_back(f);
      frame_epochs.push_back(epoch);
      cv.notify_all();
    };
  }
  Reactor::PeerFn peer_fn() {
    return [this](ProcessId, std::uint64_t epoch, bool up,
                  std::uint16_t data_port) {
      std::lock_guard<std::mutex> g(mu);
      if (up) {
        ++ups;
        last_up_epoch = epoch;
        last_up_port = data_port;
      } else {
        ++downs;
      }
      cv.notify_all();
    };
  }

  template <typename Pred>
  bool await(Pred pred, std::chrono::milliseconds timeout = 5'000ms) {
    std::unique_lock<std::mutex> lk(mu);
    return cv.wait_for(lk, timeout, [&] { return pred(); });
  }
};

ReactorOptions opts_for(ProcessId self, std::uint64_t epoch = 0,
                        std::uint64_t run_id = 99) {
  ReactorOptions o;
  o.self = self;
  o.n = 2;
  o.epoch = epoch;
  o.run_id = run_id;
  o.seed = 17 + static_cast<std::uint64_t>(self);
  // Tight timers so teardown-detection tests finish fast.
  o.keepalive = 60ms;
  o.dead_after = 500ms;
  return o;
}

TEST(Reactor, DialHandshakeEstablishAndExchangeFrames) {
  Sink sa, sb;
  Reactor a(opts_for(0), sa.frame_fn(), sa.peer_fn());
  Reactor b(opts_for(1, /*epoch=*/3), sb.frame_fn(), sb.peer_fn());
  std::uint16_t port = a.listen(0);
  ASSERT_GT(port, 0);
  a.start();
  b.start();
  b.set_endpoint(0, port);

  ASSERT_TRUE(sa.await([&] { return sa.ups >= 1; }));
  ASSERT_TRUE(sb.await([&] { return sb.ups >= 1; }));
  EXPECT_TRUE(a.peer_established(1));
  EXPECT_TRUE(b.peer_established(0));
  // The acceptor learned the dialer's epoch from the hello.
  EXPECT_EQ(sa.last_up_epoch, 3u);

  ASSERT_TRUE(b.send(0, FrameType::kData, {1, 2, 3}));
  ASSERT_TRUE(a.send(1, FrameType::kStatus, {9}));
  ASSERT_TRUE(sa.await([&] { return !sa.frames.empty(); }));
  ASSERT_TRUE(sb.await([&] { return !sb.frames.empty(); }));
  EXPECT_EQ(sa.frames[0].type, FrameType::kData);
  EXPECT_EQ(sa.frames[0].payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(sa.frame_epochs[0], 3u);
  EXPECT_EQ(sb.frames[0].type, FrameType::kStatus);

  WireCounters ca = a.counters();
  EXPECT_GE(ca.accepts, 1u);
  EXPECT_GE(ca.connects, 1u);
  EXPECT_GE(ca.frames_rx, 1u);
  WireCounters cb = b.counters();
  EXPECT_GE(cb.dials, 1u);
  EXPECT_GE(cb.connects, 1u);

  b.stop();
  a.stop();
}

TEST(Reactor, SendWithoutAStreamIsUnroutableNotAnError) {
  Sink s;
  Reactor r(opts_for(0), s.frame_fn(), s.peer_fn());
  r.start();
  EXPECT_FALSE(r.send(1, FrameType::kPing, {}));
  EXPECT_GE(r.counters().send_unroutable, 1u);
  r.stop();
}

TEST(Reactor, WrongRunIdIsRejectedAndCounted) {
  Sink sa, sb;
  Reactor a(opts_for(0, 0, /*run_id=*/111), sa.frame_fn(), sa.peer_fn());
  Reactor b(opts_for(1, 0, /*run_id=*/222), sb.frame_fn(), sb.peer_fn());
  std::uint16_t port = a.listen(0);
  a.start();
  b.start();
  b.set_endpoint(0, port);

  // The stray dialer must never establish; the acceptor must count the
  // bounce.  (The dialer keeps retrying into the same rejection — that is
  // the jittered-backoff loop working as designed.)
  std::this_thread::sleep_for(400ms);
  EXPECT_FALSE(a.peer_established(1));
  EXPECT_FALSE(b.peer_established(0));
  EXPECT_GE(a.counters().handshake_rejects, 1u);
  EXPECT_EQ(sa.ups, 0);

  b.stop();
  a.stop();
}

TEST(Reactor, RefuseWindowTearsDownBouncesAndHealsOnClose) {
  Sink sa, sb;
  Reactor a(opts_for(0), sa.frame_fn(), sa.peer_fn());
  Reactor b(opts_for(1), sb.frame_fn(), sb.peer_fn());
  std::uint16_t port = a.listen(0);
  a.start();
  b.start();
  b.set_endpoint(0, port);
  ASSERT_TRUE(sa.await([&] { return sa.ups >= 1; }));

  // Open the partition on the ACCEPTOR side: the live stream dies and the
  // dialer's redials bounce at the handshake.
  a.set_refuse(1, true);
  ASSERT_TRUE(sa.await([&] { return sa.downs >= 1; }));
  ASSERT_TRUE(sb.await([&] { return sb.downs >= 1; }));
  std::this_thread::sleep_for(300ms);
  EXPECT_FALSE(a.peer_established(1));
  EXPECT_GE(a.counters().partitions_enforced, 1u);
  EXPECT_GE(a.counters().handshake_rejects, 1u);

  // Heal: the dialer's backoff loop re-establishes on its own.
  a.set_refuse(1, false);
  ASSERT_TRUE(sa.await([&] { return sa.ups >= 2; }));
  ASSERT_TRUE(sb.await([&] { return sb.ups >= 2; }));
  EXPECT_TRUE(a.peer_established(1));
  EXPECT_GE(b.counters().reconnects, 1u);

  b.stop();
  a.stop();
}

TEST(Reactor, NewEpochDialerReplacesTheOldIncarnation) {
  Sink sa;
  Reactor a(opts_for(0), sa.frame_fn(), sa.peer_fn());
  std::uint16_t port = a.listen(0);
  a.start();

  {
    Sink sb;
    Reactor b(opts_for(1, /*epoch=*/0), sb.frame_fn(), sb.peer_fn());
    b.start();
    b.set_endpoint(0, port);
    ASSERT_TRUE(sa.await([&] { return sa.ups >= 1; }));
    EXPECT_EQ(sa.last_up_epoch, 0u);
    b.stop();  // "SIGKILL": stream drops with no goodbye
  }
  ASSERT_TRUE(sa.await([&] { return sa.downs >= 1; }));

  // The relaunched incarnation dials back in with epoch+1 and a data port.
  Sink sb2;
  ReactorOptions o2 = opts_for(1, /*epoch=*/1);
  o2.advertised_port = 7777;
  Reactor b2(o2, sb2.frame_fn(), sb2.peer_fn());
  b2.start();
  b2.set_endpoint(0, port);
  ASSERT_TRUE(sa.await([&] { return sa.ups >= 2; }));
  EXPECT_EQ(sa.last_up_epoch, 1u);
  EXPECT_EQ(sa.last_up_port, 7777);
  // The dialer establishes on the hello-ack, a beat after the acceptor.
  ASSERT_TRUE(sb2.await([&] { return sb2.ups >= 1; }));

  ASSERT_TRUE(b2.send(0, FrameType::kData, {42}));
  ASSERT_TRUE(sa.await([&] { return !sa.frames.empty(); }));
  EXPECT_EQ(sa.frame_epochs[0], 1u);

  b2.stop();
  a.stop();
}

TEST(Reactor, EndpointResetToANewPortChasesTheMove) {
  // Peer 0 "restarts" on a new ephemeral port; re-setting the endpoint on
  // the dialer must close the dead stream and establish to the new one.
  Sink sa1;
  auto a1 = std::make_unique<Reactor>(opts_for(0), sa1.frame_fn(),
                                      sa1.peer_fn());
  std::uint16_t port1 = a1->listen(0);
  a1->start();

  Sink sb;
  Reactor b(opts_for(1), sb.frame_fn(), sb.peer_fn());
  b.start();
  b.set_endpoint(0, port1);
  ASSERT_TRUE(sb.await([&] { return sb.ups >= 1; }));

  a1->stop();
  a1.reset();
  ASSERT_TRUE(sb.await([&] { return sb.downs >= 1; }));

  Sink sa2;
  Reactor a2(opts_for(0), sa2.frame_fn(), sa2.peer_fn());
  std::uint16_t port2 = a2.listen(0);
  a2.start();
  b.set_endpoint(0, port2);
  ASSERT_TRUE(sb.await([&] { return sb.ups >= 2; }));
  EXPECT_TRUE(b.peer_established(0));

  b.stop();
  a2.stop();
}

TEST(Reactor, ChaosShimEatsDataFramesOnly) {
  Sink sa, sb;
  Reactor a(opts_for(0), sa.frame_fn(), sa.peer_fn());
  Reactor b(opts_for(1), sb.frame_fn(), sb.peer_fn());
  // Shim on the DIALER: every kData dies at the wire; control frames pass.
  b.set_shim([](ProcessId, const WireFrame& f) {
    return f.type != FrameType::kData;
  });
  std::uint16_t port = a.listen(0);
  a.start();
  b.start();
  b.set_endpoint(0, port);
  ASSERT_TRUE(sa.await([&] { return sa.ups >= 1; }));
  ASSERT_TRUE(sb.await([&] { return sb.ups >= 1; }));

  ASSERT_TRUE(b.send(0, FrameType::kData, {1}));   // eaten
  ASSERT_TRUE(b.send(0, FrameType::kStatus, {2}));  // passes
  ASSERT_TRUE(sa.await([&] { return !sa.frames.empty(); }));
  EXPECT_EQ(sa.frames[0].type, FrameType::kStatus);
  EXPECT_GE(b.counters().shim_drops, 1u);

  b.stop();
  a.stop();
}

TEST(Reactor, ListenBacksFillsAdvertisedPortWhenEphemeral) {
  Sink s;
  Reactor r(opts_for(0), s.frame_fn(), s.peer_fn());
  std::uint16_t port = r.listen(0);
  EXPECT_GT(port, 0);
  r.start();
  r.stop();
}

TEST(Reactor, KeepaliveMissesDeclareAHalfOpenPeerDown) {
  // A SIGKILLed peer sends no FIN: its stream looks healthy forever unless
  // someone probes it.  Fake the half-open side with a raw socket that
  // handshakes correctly and then goes silent — after `keepalive_misses`
  // unanswered pings the reactor must tear the stream down and report the
  // peer lost, well before the hard `dead_after` backstop.
  Sink sa;
  ReactorOptions o = opts_for(0);
  o.keepalive = 40ms;
  o.keepalive_misses = 3;
  o.dead_after = 60'000ms;  // backstop far away: misses must do the work
  Reactor a(o, sa.frame_fn(), sa.peer_fn());
  std::uint16_t port = a.listen(0);
  a.start();

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  WireHello h;
  h.id = 1;
  h.n = 2;
  h.epoch = 0;
  h.run_id = 99;
  auto frame = encode_frame(FrameType::kHello, encode_hello(h));
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));

  ASSERT_TRUE(sa.await([&] { return sa.ups >= 1; }));
  // ... and now total silence: never answer a ping, never close.
  ASSERT_TRUE(sa.await([&] { return sa.downs >= 1; }, 5'000ms));
  WireCounters c = a.counters();
  EXPECT_GE(c.keepalive_probes, 3u);
  EXPECT_GE(c.dead_closes, 1u);
  EXPECT_FALSE(a.peer_established(1));

  ::close(fd);
  a.stop();
}

TEST(Reactor, KeepaliveMissesZeroDisablesMissDetection) {
  // With miss detection off and the backstop far away, the same silent
  // half-open stream stays up — the knob really is the mechanism.
  Sink sa;
  ReactorOptions o = opts_for(0);
  o.keepalive = 40ms;
  o.keepalive_misses = 0;
  o.dead_after = 60'000ms;
  Reactor a(o, sa.frame_fn(), sa.peer_fn());
  std::uint16_t port = a.listen(0);
  a.start();

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  WireHello h;
  h.id = 1;
  h.n = 2;
  h.epoch = 0;
  h.run_id = 99;
  auto frame = encode_frame(FrameType::kHello, encode_hello(h));
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  ASSERT_TRUE(sa.await([&] { return sa.ups >= 1; }));

  std::this_thread::sleep_for(400ms);  // ~10 keepalive intervals of silence
  EXPECT_TRUE(a.peer_established(1));
  EXPECT_EQ(a.counters().dead_closes, 0u);
  EXPECT_GE(a.counters().keepalive_probes, 1u);  // probing, not punishing

  ::close(fd);
  a.stop();
}

TEST(Reactor, ClientHandshakesNeedAcceptClients) {
  // A service client (id >= kClientPeerBase, outside the fleet id space)
  // is bounced by a plain fleet reactor and accepted once accept_clients
  // is set — the gate nodes open for the session layer.
  auto client_opts = [](ProcessId self) {
    ReactorOptions o;
    o.self = self;
    o.n = 0;  // clients are fleet-size-agnostic
    o.run_id = 99;
    o.seed = 7;
    return o;
  };

  {
    Sink sa, sc;
    Reactor a(opts_for(0), sa.frame_fn(), sa.peer_fn());  // no accept_clients
    Reactor c(client_opts(kClientPeerBase + 1), sc.frame_fn(), sc.peer_fn());
    std::uint16_t port = a.listen(0);
    a.start();
    c.start();
    c.set_endpoint(0, port);
    std::this_thread::sleep_for(300ms);
    EXPECT_FALSE(c.peer_established(0));
    EXPECT_GE(a.counters().handshake_rejects, 1u);
    EXPECT_EQ(sa.ups, 0);
    c.stop();
    a.stop();
  }
  {
    Sink sa, sc;
    ReactorOptions o = opts_for(0);
    o.accept_clients = true;
    Reactor a(o, sa.frame_fn(), sa.peer_fn());
    Reactor c(client_opts(kClientPeerBase + 1), sc.frame_fn(), sc.peer_fn());
    std::uint16_t port = a.listen(0);
    a.start();
    c.start();
    c.set_endpoint(0, port);
    ASSERT_TRUE(sc.await([&] { return sc.ups >= 1; }));
    EXPECT_TRUE(c.peer_established(0));
    // Frames flow both ways across the client stream.
    ASSERT_TRUE(c.send(0, FrameType::kSvcRequest, {1, 2}));
    ASSERT_TRUE(sa.await([&] { return !sa.frames.empty(); }));
    EXPECT_EQ(sa.frames[0].type, FrameType::kSvcRequest);
    ASSERT_TRUE(a.send(kClientPeerBase + 1, FrameType::kSvcReply, {3}));
    ASSERT_TRUE(sc.await([&] { return !sc.frames.empty(); }));
    EXPECT_EQ(sc.frames[0].type, FrameType::kSvcReply);
    c.stop();
    a.stop();
  }
}

TEST(Reactor, BindFailureThrowsWithBindInTheMessage) {
  Sink s1;
  Reactor r1(opts_for(0), s1.frame_fn(), s1.peer_fn());
  std::uint16_t port = r1.listen(0);
  Sink s2;
  Reactor r2(opts_for(1), s2.frame_fn(), s2.peer_fn());
  try {
    r2.listen(port);
    FAIL() << "second bind of " << port << " unexpectedly succeeded";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("bind"), std::string::npos);
  }
}

}  // namespace
}  // namespace udc
