// The full CT96 detector lattice: every oracle lands in its class, and the
// partial order behaves.
#include "udc/fd/lattice.h"

#include <gtest/gtest.h>

#include "udc/sim/crash_schedule.h"
#include "udc/sim/simulator.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

constexpr int kN = 4;
constexpr Time kHorizon = 260;
constexpr Time kGrace = 80;

class IdleProcess : public Process {
 public:
  void on_receive(ProcessId, const Message&, Env&) override {}
};

System oracle_system(const OracleFactory& oracle) {
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = kHorizon;
  auto plans = std::vector<CrashPlan>{
      no_crashes(kN),
      make_crash_plan(kN, {{1, 60}}),
      make_crash_plan(kN, {{0, 60}, {2, 110}}),
  };
  return generate_system(cfg, plans, {}, oracle, [](ProcessId) {
    return std::make_unique<IdleProcess>();
  }, 2);
}

struct LatticeCase {
  const char* name;
  OracleFactory oracle;
  CtLatticeClass expected;
};

TEST(CtLattice, EveryOracleLandsInItsClass) {
  std::vector<LatticeCase> cases;
  cases.push_back({"perfect", [] { return std::make_unique<PerfectOracle>(4); },
                   CtLatticeClass::kP});
  cases.push_back({"strong",
                   [] { return std::make_unique<StrongOracle>(4, 0.4); },
                   CtLatticeClass::kS});
  cases.push_back({"Q (weak oracle, no noise)",
                   [] { return std::make_unique<QOracle>(4, 0.0); },
                   CtLatticeClass::kQ});
  cases.push_back({"weak (noisy)",
                   [] { return std::make_unique<WeakOracle>(4, 0.4); },
                   CtLatticeClass::kW});
  cases.push_back({"eventually strong (= <>P here)",
                   [] {
                     return std::make_unique<EventuallyStrongOracle>(4, 50,
                                                                     0.5);
                   },
                   CtLatticeClass::kDiamondP});
  cases.push_back({"eventually weak",
                   [] {
                     return std::make_unique<EventuallyWeakOracle>(4, 50, 0.5);
                   },
                   CtLatticeClass::kDiamondQ});
  for (auto& c : cases) {
    System sys = oracle_system(c.oracle);
    CtLatticeClass got = classify_ct(sys, kGrace);
    EXPECT_TRUE(ct_at_least(got, c.expected))
        << c.name << ": got " << ct_class_name(got) << ", wanted at least "
        << ct_class_name(c.expected);
  }
}

TEST(CtLattice, NoisyStrongIsNotPerfect) {
  System sys =
      oracle_system([] { return std::make_unique<StrongOracle>(4, 0.4); });
  CtLatticeClass got = classify_ct(sys, kGrace);
  EXPECT_EQ(got, CtLatticeClass::kS) << ct_class_name(got);
  EXPECT_FALSE(ct_at_least(got, CtLatticeClass::kP));
}

TEST(CtLattice, PartialOrderSanity) {
  using C = CtLatticeClass;
  // P is top: at least everything.
  for (C c : {C::kP, C::kS, C::kQ, C::kW, C::kDiamondP, C::kDiamondS,
              C::kDiamondQ, C::kDiamondW, C::kNone}) {
    EXPECT_TRUE(ct_at_least(C::kP, c)) << ct_class_name(c);
    EXPECT_TRUE(ct_at_least(c, C::kNone));
  }
  // Column/row relations.
  EXPECT_TRUE(ct_at_least(C::kS, C::kW));
  EXPECT_TRUE(ct_at_least(C::kQ, C::kW));
  EXPECT_TRUE(ct_at_least(C::kS, C::kDiamondS));
  EXPECT_TRUE(ct_at_least(C::kDiamondP, C::kDiamondS));
  EXPECT_TRUE(ct_at_least(C::kDiamondS, C::kDiamondW));
  EXPECT_TRUE(ct_at_least(C::kDiamondQ, C::kDiamondW));
  // Incomparabilities.
  EXPECT_FALSE(ct_at_least(C::kS, C::kQ));
  EXPECT_FALSE(ct_at_least(C::kQ, C::kS));
  EXPECT_FALSE(ct_at_least(C::kDiamondP, C::kS));
  EXPECT_FALSE(ct_at_least(C::kW, C::kDiamondP));
  // Nothing (but P/S) dominates S.
  EXPECT_FALSE(ct_at_least(C::kDiamondS, C::kS));
  EXPECT_FALSE(ct_at_least(C::kW, C::kS));
}

TEST(CtLattice, ClassNamesAreDistinct) {
  using C = CtLatticeClass;
  std::vector<C> all{C::kP, C::kS, C::kQ, C::kW, C::kDiamondP, C::kDiamondS,
                     C::kDiamondQ, C::kDiamondW, C::kNone};
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_STRNE(ct_class_name(all[i]), ct_class_name(all[j]));
    }
  }
}

}  // namespace
}  // namespace udc
