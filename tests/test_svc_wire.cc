// Service payload codecs (svc/wire): exact roundtrips for every envelope
// and total decode — truncation at EVERY byte boundary, trailing garbage,
// and out-of-range enum tags all yield nullopt, never a throw or a
// misparse.  The batch payload is also what the durable service log
// persists, so codec totality here is recovery totality there.
#include "udc/svc/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "udc/coord/action.h"

namespace udc {
namespace {

SvcOp op(std::uint64_t session, std::uint64_t seq, SvcOpKind k,
         std::int32_t reg, std::int64_t value) {
  SvcOp o;
  o.session = session;
  o.seq = seq;
  o.kind = k;
  o.reg = reg;
  o.value = value;
  return o;
}

SvcBatch sample_batch() {
  SvcBatch b;
  b.slot = 41;
  b.term = 7;
  b.action = make_action(2, 19);
  b.ops = {op(0x201, 3, SvcOpKind::kWrite, 5, -44),
           op(0x102, 1, SvcOpKind::kWrite, 63, 1'000'000'007)};
  return b;
}

// Every decoder must be total: every strict prefix of a valid encoding is
// rejected, as is one trailing byte.
template <typename T, typename Decode>
void expect_total(const std::vector<std::uint8_t>& bytes, Decode decode,
                  const T& want) {
  auto got = decode(bytes.data(), bytes.size());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, want);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(decode(bytes.data(), len).has_value())
        << "prefix of length " << len << " decoded";
  }
  std::vector<std::uint8_t> extra = bytes;
  extra.push_back(0);
  EXPECT_FALSE(decode(extra.data(), extra.size()).has_value());
}

TEST(SvcWire, RequestRoundtripAndTotality) {
  SvcRequest r;
  r.op = op(0x205, 12, SvcOpKind::kRead, 9, 0);
  expect_total(encode_svc_request(r), decode_svc_request, r);
}

TEST(SvcWire, RequestRejectsBadOpKind) {
  SvcRequest r;
  r.op = op(1, 1, SvcOpKind::kWrite, 0, 5);
  auto bytes = encode_svc_request(r);
  // The kind tag is a 1-byte varint somewhere in the payload; smash every
  // byte to an out-of-range tag and require that no mutation yields a
  // VALID request with an invalid kind.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto mut = bytes;
    mut[i] = 0x7f;  // not a valid SvcOpKind
    auto got = decode_svc_request(mut.data(), mut.size());
    if (got.has_value()) {
      EXPECT_TRUE(got->op.kind == SvcOpKind::kWrite ||
                  got->op.kind == SvcOpKind::kRead);
    }
  }
}

TEST(SvcWire, ReplyRoundtripAndTotality) {
  SvcReply r;
  r.session = 0x203;
  r.seq = 9;
  r.status = SvcStatus::kRetryLater;
  r.value = -3;
  r.version = 17;
  r.leader_hint = 2;
  r.backoff_ms = 450;
  expect_total(encode_svc_reply(r), decode_svc_reply, r);
}

TEST(SvcWire, ProposeRoundtripAndTotality) {
  SvcPropose p;
  p.term = 9;
  p.clock = 1234;
  p.batch = sample_batch();
  expect_total(encode_svc_propose(p), decode_svc_propose, p);
}

TEST(SvcWire, AckRoundtripAndTotality) {
  SvcAck a;
  a.term = 6;
  a.slot = 88;
  a.ok = false;
  a.clock = 555;
  expect_total(encode_svc_ack(a), decode_svc_ack, a);
}

TEST(SvcWire, CommitRoundtripAndTotality) {
  SvcCommit c;
  c.term = 3;
  c.clock = 99;
  c.floor = 12;
  c.extra = {14, 17};
  expect_total(encode_svc_commit(c), decode_svc_commit, c);
}

TEST(SvcWire, HbRoundtripAndTotality) {
  SvcHb h;
  h.term = 4;
  h.leader = 1;
  h.clock = 77;
  h.floor = 31;
  expect_total(encode_svc_hb(h), decode_svc_hb, h);
}

TEST(SvcWire, SyncRoundtripsAndTotality) {
  SvcSyncReq rq;
  rq.term = 11;
  rq.clock = 2'000;
  rq.floor = 40;
  expect_total(encode_svc_sync_req(rq), decode_svc_sync_req, rq);

  SvcSyncResp rs;
  rs.term = 11;
  rs.clock = 2'001;
  rs.floor = 52;
  rs.entries = {sample_batch(), sample_batch()};
  rs.committed = {1, 0};
  rs.last = false;
  expect_total(encode_svc_sync_resp(rs), decode_svc_sync_resp, rs);

  // An absent committed vector encodes as all-zero flags — the decoded
  // value is normalized, not byte-identical, so check fields directly.
  SvcSyncResp bare = rs;
  bare.committed.clear();
  const auto enc = encode_svc_sync_resp(bare);
  const auto dec = decode_svc_sync_resp(enc.data(), enc.size());
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->entries, bare.entries);
  EXPECT_EQ(dec->committed, (std::vector<std::uint8_t>{0, 0}));
}

TEST(SvcWire, StatusRoundtripAndTotality) {
  SvcNodeStatus s;
  s.id = 2;
  s.epoch = 3;
  s.term = 8;
  s.leader = 0;
  s.clock = 4'096;
  s.floor = 120;
  s.applied = 123;
  s.log_size = 125;
  s.sessions = 9;
  s.orphans = 1;
  s.durable_events = 640;
  s.syncing = true;
  s.done = false;
  s.counters = {1, 0, 7, 99};
  expect_total(encode_svc_status(s), decode_svc_status, s);
}

TEST(SvcWire, BatchPayloadRoundtripMatchesDurableLogFraming) {
  SvcBatch b = sample_batch();
  std::vector<std::uint8_t> bytes;
  put_svc_batch(bytes, b);
  expect_total(bytes, decode_svc_batch, b);
}

TEST(SvcWire, EmptyBatchRoundtrips) {
  // A no-op hole fill is an empty batch; it must survive the wire.
  SvcBatch b;
  b.slot = 5;
  b.term = 3;
  b.action = make_action(1, 2);
  std::vector<std::uint8_t> bytes;
  put_svc_batch(bytes, b);
  auto got = decode_svc_batch(bytes.data(), bytes.size());
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ops.empty());
  EXPECT_EQ(*got, b);
}

TEST(SvcWire, GarbageDecodesToNullopt) {
  std::vector<std::uint8_t> junk(64, 0xff);
  EXPECT_FALSE(decode_svc_request(junk.data(), junk.size()).has_value());
  EXPECT_FALSE(decode_svc_propose(junk.data(), junk.size()).has_value());
  EXPECT_FALSE(decode_svc_status(junk.data(), junk.size()).has_value());
  EXPECT_FALSE(decode_svc_batch(junk.data(), junk.size()).has_value());
  EXPECT_FALSE(decode_svc_batch(nullptr, 0).has_value());
}

}  // namespace
}  // namespace udc
