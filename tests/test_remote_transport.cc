// RemoteTransport (rt/remote/remote_transport.h): the durable-send gate,
// per-(peer, epoch) dedup, watermark overflow, ack piggybacking, and
// ARQ-over-a-lossy-wire.  The receive-side properties are unit-tested by
// invoking the reactor-thread entry points directly; the gate and the
// retransmission loop are additionally exercised over two real reactors on
// loopback with a frame-eating chaos shim in between.
#include "udc/rt/remote/remote_transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "udc/net/reactor.h"
#include "udc/net/wire.h"

namespace udc {
namespace {

using namespace std::chrono_literals;

Message alpha(ActionId a) {
  Message m;
  m.kind = MsgKind::kAlpha;
  m.action = a;
  return m;
}

WireData data_from(ProcessId from, ProcessId to, std::uint64_t seq,
                   Time send_tick = 10, Time clock = 11) {
  WireData d;
  d.from = from;
  d.to = to;
  d.seq = seq;
  d.send_tick = send_tick;
  d.clock = clock;
  d.msg = alpha(static_cast<ActionId>(seq));
  return d;
}

// A transport with an idle (never-started) reactor: on_wire_* / pump can be
// driven directly, and outbound frames simply go nowhere.
struct Bench {
  ReactorOptions ropts;
  Reactor reactor;
  AtomicRuntimeCounters counters;
  std::atomic<std::size_t> floor{0};
  std::atomic<Time> observed{0};

  std::mutex mu;
  std::vector<std::pair<ProcessId, Message>> delivered;
  std::vector<Time> send_ticks;

  RemoteTransport transport;

  explicit Bench(RemoteTransportOptions topts = {})
      : ropts([] {
          ReactorOptions o;
          o.self = 0;
          o.n = 3;
          return o;
        }()),
        reactor(
            ropts, [](ProcessId, std::uint64_t, const WireFrame&) {},
            [](ProcessId, std::uint64_t, bool, std::uint16_t) {}),
        transport(
            /*self=*/0, /*n=*/3, topts, reactor,
            [this] { return floor.load(); }, [] { return Time{100}; },
            [this](Time t) { observed.store(t); },
            [this](ProcessId from, const Message& m, Time st) {
              std::lock_guard<std::mutex> g(mu);
              delivered.emplace_back(from, m);
              send_ticks.push_back(st);
            },
            counters, /*seed=*/7) {}

  std::size_t delivered_count() {
    std::lock_guard<std::mutex> g(mu);
    return delivered.size();
  }
};

TEST(RemoteTransport, GateHoldsTheFrameUntilTheFloorCovers) {
  Bench b;
  b.transport.send(1, alpha(5), /*send_tick=*/42, /*gate=*/3);
  // Floor below the gate: pump must NOT release (released would show as a
  // retransmit-eligible pending; we can't see the wire here, but a released
  // send bumps nothing while an on-time ack for an UNRELEASED seq still
  // retires it — so probe via pending_count across the floor edge).
  b.transport.pump();
  EXPECT_EQ(b.transport.pending_count(), 1u);

  b.floor.store(2);
  b.transport.pump();  // still short of the gate
  EXPECT_EQ(b.transport.pending_count(), 1u);
  EXPECT_EQ(b.counters.retransmits.load(), 0u);

  b.floor.store(3);
  b.transport.pump();  // released now (transmission may be unroutable; the
                       // pending entry stays until an ack arrives)
  WireAck a;
  a.from = 1;
  a.to = 0;
  a.seqs = {1};
  b.transport.on_wire_ack(1, a);
  EXPECT_EQ(b.transport.pending_count(), 0u);
  EXPECT_EQ(b.counters.acks.load(), 1u);
}

TEST(RemoteTransport, DedupSuppressesDuplicatesWithinAnEpoch) {
  Bench b;
  b.transport.on_wire_data(1, /*epoch=*/0, data_from(1, 0, 1));
  b.transport.on_wire_data(1, /*epoch=*/0, data_from(1, 0, 1));
  b.transport.on_wire_data(1, /*epoch=*/0, data_from(1, 0, 2));
  b.transport.on_wire_data(1, /*epoch=*/0, data_from(1, 0, 2));
  EXPECT_EQ(b.delivered_count(), 2u);
  EXPECT_EQ(b.counters.dedup_suppressed.load(), 2u);
  EXPECT_EQ(b.counters.delivered.load(), 2u);
  // The sender's clock rider was folded into our logical clock.
  EXPECT_EQ(b.observed.load(), 11);
  // The send-tick rider survives to the deliver callback (R3's evidence).
  std::lock_guard<std::mutex> g(b.mu);
  EXPECT_EQ(b.send_ticks[0], 10);
}

TEST(RemoteTransport, NewEpochResetsTheDedupState) {
  Bench b;
  b.transport.on_wire_data(1, /*epoch=*/0, data_from(1, 0, 1));
  b.transport.on_wire_data(1, /*epoch=*/0, data_from(1, 0, 2));
  // The peer restarts: same seqs again under epoch 1 MUST deliver — its seq
  // space restarted with it.
  b.transport.on_wire_data(1, /*epoch=*/1, data_from(1, 0, 1));
  b.transport.on_wire_data(1, /*epoch=*/1, data_from(1, 0, 2));
  EXPECT_EQ(b.delivered_count(), 4u);
  EXPECT_EQ(b.counters.dedup_suppressed.load(), 0u);
}

TEST(RemoteTransport, SeqZeroIsBelowTheModelNoDedupNoAck) {
  Bench b;
  b.transport.on_wire_data(1, 0, data_from(1, 0, /*seq=*/0));
  b.transport.on_wire_data(1, 0, data_from(1, 0, /*seq=*/0));
  EXPECT_EQ(b.delivered_count(), 2u);  // every copy delivers
  EXPECT_EQ(b.counters.dedup_suppressed.load(), 0u);
}

TEST(RemoteTransport, MisroutedDataIsDropped) {
  Bench b;
  b.transport.on_wire_data(1, 0, data_from(1, /*to=*/2, 1));  // not for us
  b.transport.on_wire_data(1, 0, data_from(/*from=*/2, 0, 1));  // wrong peer
  EXPECT_EQ(b.delivered_count(), 0u);
}

TEST(RemoteTransport, WatermarkOverflowFoldsIntoChannelLoss) {
  RemoteTransportOptions topts;
  topts.dedup_window = 4;
  Bench b(topts);
  // seq 1 lost on the wire; 2..7 arrive out of order ahead of it.  The
  // window (4) overflows and folds: watermark jumps to the max seen.
  for (std::uint64_t s = 2; s <= 7; ++s) {
    b.transport.on_wire_data(1, 0, data_from(1, 0, s));
  }
  EXPECT_EQ(b.delivered_count(), 6u);
  // The late seq 1 is now below the watermark: suppressed.  That IS channel
  // loss — the protocol layer retransmits content under a fresh seq.
  b.transport.on_wire_data(1, 0, data_from(1, 0, 1));
  EXPECT_EQ(b.delivered_count(), 6u);
  EXPECT_EQ(b.counters.dedup_suppressed.load(), 1u);
}

TEST(RemoteTransport, InOrderSeqsAdvanceTheWatermarkWithoutGrowth) {
  RemoteTransportOptions topts;
  topts.dedup_window = 4;
  Bench b(topts);
  for (std::uint64_t s = 1; s <= 100; ++s) {
    b.transport.on_wire_data(1, 0, data_from(1, 0, s));
  }
  EXPECT_EQ(b.delivered_count(), 100u);
  EXPECT_EQ(b.counters.dedup_suppressed.load(), 0u);
}

TEST(RemoteTransport, ReceivedDataOwesAcksThatPiggybackOnReverseTraffic) {
  Bench b;
  b.transport.on_wire_data(1, 0, data_from(1, 0, 1));
  b.transport.on_wire_data(1, 0, data_from(1, 0, 2));
  // A heartbeat back to the peer carries the owed acks.
  b.transport.send_heartbeat(1, alpha(0));
  EXPECT_EQ(b.counters.acks_piggybacked.load(), 2u);
  // Nothing left owed: a second heartbeat piggybacks nothing.
  b.transport.send_heartbeat(1, alpha(0));
  EXPECT_EQ(b.counters.acks_piggybacked.load(), 2u);
}

TEST(RemoteTransport, PiggybackedAcksRetireOurPending) {
  Bench b;
  b.floor.store(100);
  b.transport.send(1, alpha(7), 5, /*gate=*/1);
  b.transport.pump();
  ASSERT_EQ(b.transport.pending_count(), 1u);
  // The peer's data frame acks our seq 1 in its acks field.
  WireData d = data_from(1, 0, 1);
  d.acks = {1};
  b.transport.on_wire_data(1, 0, d);
  EXPECT_EQ(b.transport.pending_count(), 0u);
  EXPECT_EQ(b.counters.acks.load(), 1u);
}

TEST(RemoteTransport, PeerUpReArmsReleasedSendsImmediately) {
  RemoteTransportOptions topts;
  topts.backoff.base = 60'000'000;  // 60s: backoff alone would never refire
  Bench b(topts);
  b.floor.store(10);
  b.transport.send(1, alpha(3), 5, 1);
  b.transport.pump();  // first transmission (released)
  b.transport.pump();  // within backoff: no retransmit
  EXPECT_EQ(b.counters.retransmits.load(), 0u);
  b.transport.on_peer_up(1);  // reconnect: the stream died, re-teach NOW
  b.transport.pump();
  EXPECT_EQ(b.counters.retransmits.load(), 1u);
}

// --- over real sockets ----------------------------------------------------

// Two reactors + two transports wired exactly as udc_rt_node wires them,
// with a shim that eats the first `kill` outbound kData frames on the
// dialer side: the ARQ must deliver anyway, exactly once.
struct Pair {
  struct Side {
    Reactor reactor;
    AtomicRuntimeCounters counters;
    std::atomic<std::size_t> floor{0};
    RemoteTransport* transport = nullptr;

    std::mutex mu;
    std::condition_variable cv;
    std::vector<Message> got;

    Side(ProcessId self, std::uint64_t run_id)
        : reactor(
              [&] {
                ReactorOptions o;
                o.self = self;
                o.n = 2;
                o.run_id = run_id;
                o.seed = 100 + static_cast<std::uint64_t>(self);
                return o;
              }(),
              [this](ProcessId peer, std::uint64_t epoch,
                     const WireFrame& f) {
                if (f.type == FrameType::kData) {
                  auto d = decode_data(f.payload.data(), f.payload.size());
                  if (d) transport->on_wire_data(peer, epoch, *d);
                } else if (f.type == FrameType::kAck) {
                  auto a = decode_ack(f.payload.data(), f.payload.size());
                  if (a) transport->on_wire_ack(peer, *a);
                }
              },
              [this](ProcessId peer, std::uint64_t, bool up, std::uint16_t) {
                if (up && transport) transport->on_peer_up(peer);
              }) {}
  };

  Side a{0, 55};
  Side b{1, 55};
  RemoteTransport ta;
  RemoteTransport tb;

  explicit Pair(RemoteTransportOptions topts = [] {
    RemoteTransportOptions t;
    t.backoff = {/*base=*/3'000, /*growth=*/1.5, /*cap=*/30'000,
                 /*jitter=*/0.2};
    return t;
  }())
      : ta(0, 2, topts, a.reactor, [this] { return a.floor.load(); },
           [] { return Time{50}; }, [](Time) {},
           [this](ProcessId, const Message& m, Time) {
             std::lock_guard<std::mutex> g(a.mu);
             a.got.push_back(m);
             a.cv.notify_all();
           },
           a.counters, 1),
        tb(1, 2, topts, b.reactor, [this] { return b.floor.load(); },
           [] { return Time{50}; }, [](Time) {},
           [this](ProcessId, const Message& m, Time) {
             std::lock_guard<std::mutex> g(b.mu);
             b.got.push_back(m);
             b.cv.notify_all();
           },
           b.counters, 2) {
    a.transport = &ta;
    b.transport = &tb;
  }

  void start() {
    std::uint16_t port = a.reactor.listen(0);
    a.reactor.start();
    b.reactor.start();
    b.reactor.set_endpoint(0, port);
  }

  ~Pair() {
    b.reactor.stop();
    a.reactor.stop();
  }
};

TEST(RemoteTransport, DeliversOverRealSocketsExactlyOnce) {
  Pair p;
  p.start();
  p.b.floor.store(1);
  p.tb.send(0, alpha(9), /*send_tick=*/7, /*gate=*/1);
  // Pump until delivered (establish + transmit are async).
  for (int i = 0; i < 2000; ++i) {
    p.tb.pump();
    {
      std::unique_lock<std::mutex> lk(p.a.mu);
      if (!p.a.got.empty()) break;
    }
    std::this_thread::sleep_for(1ms);
  }
  std::unique_lock<std::mutex> lk(p.a.mu);
  ASSERT_FALSE(p.a.got.empty());
  EXPECT_EQ(p.a.got[0], alpha(9));
  lk.unlock();
  // Let retransmissions (if any) drain, then assert no duplicate surfaced.
  for (int i = 0; i < 50; ++i) {
    p.tb.pump();
    p.ta.pump();  // flush standalone ack batches back to the sender
    std::this_thread::sleep_for(1ms);
  }
  std::lock_guard<std::mutex> g(p.a.mu);
  EXPECT_EQ(p.a.got.size(), 1u);
}

TEST(RemoteTransport, ArqBeatsAFrameEatingShim) {
  Pair p;
  // The shim eats the first 3 outbound kData frames from the dialer.
  std::atomic<int> eaten{0};
  p.b.reactor.set_shim([&eaten](ProcessId, const WireFrame& f) {
    if (f.type != FrameType::kData) return true;
    if (eaten.load() < 3) {
      ++eaten;
      return false;
    }
    return true;
  });
  p.start();
  p.b.floor.store(1);
  p.tb.send(0, alpha(4), 7, 1);
  for (int i = 0; i < 5000; ++i) {
    p.tb.pump();
    p.ta.pump();
    {
      std::unique_lock<std::mutex> lk(p.a.mu);
      if (!p.a.got.empty()) break;
    }
    std::this_thread::sleep_for(1ms);
  }
  std::lock_guard<std::mutex> g(p.a.mu);
  ASSERT_EQ(p.a.got.size(), 1u);
  EXPECT_EQ(p.a.got[0], alpha(4));
  EXPECT_GE(eaten.load(), 3);
  EXPECT_GE(p.b.counters.retransmits.load(), 1u);
}

TEST(RemoteTransport, GateBlocksTheWireUntilDurability) {
  Pair p;
  p.start();
  // Floor stays at 0: the send is recorded but must never hit the wire.
  p.tb.send(0, alpha(1), 7, /*gate=*/5);
  for (int i = 0; i < 150; ++i) {
    p.tb.pump();
    std::this_thread::sleep_for(1ms);
  }
  {
    std::lock_guard<std::mutex> g(p.a.mu);
    EXPECT_TRUE(p.a.got.empty()) << "frame escaped ahead of durability";
  }
  // Durability lands; the held frame is released on the next pump.
  p.b.floor.store(5);
  for (int i = 0; i < 2000; ++i) {
    p.tb.pump();
    {
      std::unique_lock<std::mutex> lk(p.a.mu);
      if (!p.a.got.empty()) break;
    }
    std::this_thread::sleep_for(1ms);
  }
  std::lock_guard<std::mutex> g(p.a.mu);
  ASSERT_EQ(p.a.got.size(), 1u);
  EXPECT_EQ(p.a.got[0], alpha(1));
}

}  // namespace
}  // namespace udc
