// The URB facade (coord/urb.h): uniform reliable broadcast as UDC.
#include "udc/coord/urb.h"

#include <gtest/gtest.h>

#include "udc/common/check.h"
#include "udc/sim/crash_schedule.h"

namespace udc {
namespace {

constexpr int kGroup = 4;

SimConfig config(double drop) {
  SimConfig cfg;
  cfg.n = kGroup;
  cfg.horizon = 400;
  cfg.channel.drop_prob = drop;
  return cfg;
}

TEST(Urb, BroadcastsAreDeliveredEverywhere) {
  UrbSession session(kGroup);
  ActionId m1 = session.broadcast(0, 5);
  ActionId m2 = session.broadcast(2, 12);
  StrongOracle detector(4, 0.1);
  auto outcome = session.execute(config(0.3), no_crashes(kGroup), &detector);
  for (ProcessId p = 0; p < kGroup; ++p) {
    EXPECT_TRUE(outcome.delivered_at(m1, p).has_value()) << "p" << p;
    EXPECT_TRUE(outcome.delivered_at(m2, p).has_value()) << "p" << p;
  }
  EXPECT_TRUE(outcome.uniform_delivery(session.messages(), 120).achieved());
}

TEST(Urb, UniformityUnderSenderCrash) {
  UrbSession session(kGroup);
  ActionId m1 = session.broadcast(1, 8);
  StrongOracle detector(4, 0.1);
  auto outcome = session.execute(config(0.3), make_crash_plan(kGroup, {{1, 20}}),
                                 &detector);
  // If ANY process delivered, all correct did (DC2); check directly too.
  bool anyone = false;
  for (ProcessId p = 0; p < kGroup; ++p) {
    anyone |= outcome.delivered_at(m1, p).has_value();
  }
  CoordReport rep = outcome.uniform_delivery(session.messages(), 120);
  EXPECT_TRUE(rep.achieved())
      << (rep.violations.empty() ? "" : rep.violations[0]);
  if (anyone) {
    for (ProcessId p = 0; p < kGroup; ++p) {
      if (!outcome.run.is_faulty(p)) {
        EXPECT_TRUE(outcome.delivered_at(m1, p).has_value()) << "p" << p;
      }
    }
  }
}

TEST(Urb, NoSpuriousDeliveries) {
  // DC3 in broadcast clothing: nothing is delivered that was not broadcast.
  UrbSession session(kGroup);
  ActionId m1 = session.broadcast(0, 5);
  StrongOracle detector(4, 0.1);
  auto outcome = session.execute(config(0.2), no_crashes(kGroup), &detector);
  for (ProcessId p = 0; p < kGroup; ++p) {
    for (const Event& e : outcome.run.history(p).events()) {
      if (e.kind == EventKind::kDo) {
        EXPECT_EQ(e.action, m1);
      }
    }
  }
}

TEST(Urb, PerSenderMessageIdsAreDistinct) {
  UrbSession session(kGroup);
  ActionId a = session.broadcast(0, 5);
  ActionId b = session.broadcast(0, 9);
  ActionId c = session.broadcast(1, 9);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  EXPECT_EQ(action_owner(a), 0);
  EXPECT_EQ(action_owner(c), 1);
  EXPECT_EQ(session.messages().size(), 3u);
}

TEST(Urb, RejectsBadArguments) {
  UrbSession session(kGroup);
  EXPECT_THROW(session.broadcast(kGroup, 5), InvariantViolation);
  SimConfig bad = config(0.0);
  bad.n = kGroup + 1;
  EXPECT_THROW(session.execute(bad, no_crashes(kGroup + 1), nullptr),
               InvariantViolation);
}

TEST(Urb, DeliveryOutcomeIsDeterministic) {
  UrbSession session(kGroup);
  ActionId m1 = session.broadcast(3, 7);
  SimConfig cfg = config(0.4);
  cfg.seed = 123;
  StrongOracle d1(4, 0.1), d2(4, 0.1);
  auto a = session.execute(cfg, make_crash_plan(kGroup, {{0, 30}}), &d1);
  auto b = session.execute(cfg, make_crash_plan(kGroup, {{0, 30}}), &d2);
  for (ProcessId p = 0; p < kGroup; ++p) {
    EXPECT_EQ(a.delivered_at(m1, p), b.delivered_at(m1, p));
  }
}

}  // namespace
}  // namespace udc
