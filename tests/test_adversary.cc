// The two-phase adversary (sim/adversary.h): reconnaissance-guided crash
// placement, and the uniformity-gap witnesses it produces on demand.
#include "udc/sim/adversary.h"

#include <gtest/gtest.h>

#include "udc/coord/action.h"
#include "udc/coord/nudc_protocol.h"
#include "udc/coord/spec.h"
#include "udc/event/trace.h"
#include "udc/net/network.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/simulator.h"

namespace udc {
namespace {

constexpr int kN = 4;

SimConfig base_config() {
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = 400;
  cfg.channel.drop_prob = 0.0;
  return cfg;
}

TEST(Adversary, StrikesExactlyAfterTheDo) {
  SimConfig cfg = base_config();
  std::vector<InitDirective> workload{{5, 0, make_action(0, 0)}};
  auto protocol = [](ProcessId) { return std::make_unique<NUdcProcess>(); };
  auto plan = crash_after_first_do(cfg, workload, nullptr, protocol, 0);
  ASSERT_TRUE(plan.has_value());
  // Verify the strike landed one tick after the actual do in the attacked
  // run (determinism: the prefix matches the reconnaissance).
  SimResult res = simulate(cfg, *plan, nullptr, workload, protocol);
  auto m_do = res.run.first_event_time(0, [](const Event& e) {
    return e.kind == EventKind::kDo;
  });
  ASSERT_TRUE(m_do.has_value());
  EXPECT_EQ(res.run.crash_time(0), std::optional<Time>(*m_do + 1));
}

TEST(Adversary, ProducesTheUniformityGapWitnessOnDemand) {
  // The flooding protocol performs at init, so do-then-die plus a silenced
  // channel strands the action; the adversary finds the moment without any
  // hand-tuned constants.
  SimConfig cfg = base_config();
  cfg.channel.custom_policy = std::make_shared<PartitionDropPolicy>(
      ProcSet::singleton(0), ProcSet::full(kN), 0, 0.0);
  std::vector<InitDirective> workload{{5, 0, make_action(0, 0)}};
  auto actions = workload_actions(workload);
  auto protocol = [](ProcessId) { return std::make_unique<NUdcProcess>(); };
  auto plan = crash_after_first_do(cfg, workload, nullptr, protocol, 0);
  ASSERT_TRUE(plan.has_value());
  SimResult res = simulate(cfg, *plan, nullptr, workload, protocol);
  CoordReport udc = check_udc(res.run, actions, 100);
  EXPECT_FALSE(udc.dc2);
  EXPECT_TRUE(check_nudc(res.run, actions, 100).achieved());
}

TEST(Adversary, NoStrikeWhenVictimNeverActs) {
  SimConfig cfg = base_config();
  // Empty workload: nobody ever performs or sends.
  class Idle : public Process {
   public:
    void on_receive(ProcessId, const Message&, Env&) override {}
  };
  auto protocol = [](ProcessId) { return std::make_unique<Idle>(); };
  EXPECT_FALSE(
      crash_after_first_do(cfg, {}, nullptr, protocol, 1).has_value());
  EXPECT_FALSE(
      crash_after_first_send(cfg, {}, nullptr, protocol, 1).has_value());
}

TEST(Adversary, SendStrikeHitsBetweenSendAndRelay) {
  SimConfig cfg = base_config();
  std::vector<InitDirective> workload{{5, 0, make_action(0, 0)}};
  auto protocol = [](ProcessId) { return std::make_unique<NUdcProcess>(); };
  auto plan = crash_after_first_send(cfg, workload, nullptr, protocol, 0);
  ASSERT_TRUE(plan.has_value());
  SimResult res = simulate(cfg, *plan, nullptr, workload, protocol);
  // Exactly one send escaped before the crash.
  int sends = 0;
  for (const Event& e : res.run.history(0).events()) {
    if (e.kind == EventKind::kSend) ++sends;
  }
  EXPECT_EQ(sends, 1);
}

TEST(Adversary, StrikePastHorizonLeavesVictimCorrect) {
  // A delay that pushes the strike beyond the horizon produces a plan whose
  // crash the finite run never reaches: the victim stays correct and the
  // run equals the unattacked one.
  SimConfig cfg = base_config();
  std::vector<InitDirective> workload{{5, 0, make_action(0, 0)}};
  auto protocol = [](ProcessId) { return std::make_unique<NUdcProcess>(); };
  auto plan = crash_after_first_do(cfg, workload, nullptr, protocol, 0,
                                   cfg.horizon + 100);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->is_faulty(0));
  EXPECT_GT(*plan->crash_time(0), cfg.horizon);
  SimResult attacked = simulate(cfg, *plan, nullptr, workload, protocol);
  SimResult untouched =
      simulate(cfg, no_crashes(kN), nullptr, workload, protocol);
  EXPECT_FALSE(attacked.run.is_faulty(0));
  EXPECT_EQ(format_run(attacked.run), format_run(untouched.run));
}

TEST(Adversary, NoStrikeWhenBaseScheduleKillsTheVictimFirst) {
  // The base schedule crashes the victim before its init ever fires, so the
  // reconnaissance run contains no do event to strike after.
  SimConfig cfg = base_config();
  std::vector<InitDirective> workload{{5, 0, make_action(0, 0)}};
  auto protocol = [](ProcessId) { return std::make_unique<NUdcProcess>(); };
  CrashPlan base = make_crash_plan(kN, {{0, 2}});
  EXPECT_FALSE(crash_after_first_do(cfg, workload, nullptr, protocol, 0, 1,
                                    base)
                   .has_value());
  EXPECT_FALSE(crash_after_first_send(cfg, workload, nullptr, protocol, 0, 1,
                                      base)
                   .has_value());
}

TEST(Adversary, NoStrikeWhenBaseScheduleBeatsTheStrikeTime) {
  // The victim acts, but the base schedule already kills it at or before
  // the would-be strike: nothing for the adversary to add.
  SimConfig cfg = base_config();
  std::vector<InitDirective> workload{{5, 0, make_action(0, 0)}};
  auto protocol = [](ProcessId) { return std::make_unique<NUdcProcess>(); };
  auto recon = crash_after_first_do(cfg, workload, nullptr, protocol, 0, 0);
  ASSERT_TRUE(recon.has_value());
  const Time m_do = *recon->crash_time(0);  // delay 0 => the do time itself
  CrashPlan base = make_crash_plan(kN, {{0, m_do + 1}});
  EXPECT_FALSE(crash_after_first_do(cfg, workload, nullptr, protocol, 0, 1,
                                    base)
                   .has_value());
  // A later base crash IS preempted: the strike replaces it.
  CrashPlan late = make_crash_plan(kN, {{0, m_do + 50}});
  auto plan = crash_after_first_do(cfg, workload, nullptr, protocol, 0, 1,
                                   late);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->crash_time(0), std::optional<Time>(m_do + 1));
}

TEST(Adversary, BaseScheduleCrashesOfOthersArePreserved) {
  // Other victims of the base schedule ride along into the returned plan,
  // and the reconnaissance observes THEIR crashes too: p1 dying early slows
  // nothing for p0's own do, but must appear in the final plan.
  SimConfig cfg = base_config();
  std::vector<InitDirective> workload{{5, 0, make_action(0, 0)}};
  auto protocol = [](ProcessId) { return std::make_unique<NUdcProcess>(); };
  CrashPlan base = make_crash_plan(kN, {{1, 30}});
  auto plan = crash_after_first_do(cfg, workload, nullptr, protocol, 0, 1,
                                   base);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->is_faulty(0));
  EXPECT_EQ(plan->crash_time(1), std::optional<Time>(30));
  EXPECT_FALSE(plan->is_faulty(2));
  EXPECT_FALSE(plan->is_faulty(3));
}

TEST(PerLinkPolicy, OnlyTheConfiguredLinkIsLossy) {
  auto policy = std::make_shared<PerLinkDropPolicy>(0.0);
  policy->set(0, 1, 1.0);
  Network net(3, policy, 1, 3);
  Message m;
  m.kind = MsgKind::kApp;
  for (int i = 0; i < 50; ++i) {
    net.send(0, 1, m, i + 1);
    net.send(0, 2, m, i + 1);
    net.send(1, 0, m, i + 1);
  }
  EXPECT_EQ(net.total_dropped(), 50u);  // exactly the 0->1 sends
  std::size_t got_02 = 0, got_10 = 0;
  for (Time t = 1; t <= 60; ++t) {
    while (net.pop_deliverable(2, t)) ++got_02;
    while (net.pop_deliverable(0, t)) ++got_10;
  }
  EXPECT_EQ(got_02, 50u);
  EXPECT_EQ(got_10, 50u);
  EXPECT_FALSE(net.pop_deliverable(1, 100).has_value());
}

}  // namespace
}  // namespace udc
