// The simulator's event-selection semantics: per-tick priorities, outbox
// FIFO, crash preemption, and R2 by construction — the contract every
// protocol relies on.
#include <gtest/gtest.h>

#include "udc/coord/action.h"
#include "udc/fd/oracle.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/simulator.h"

namespace udc {
namespace {

// Enqueues a fixed script of intents on the first tick.
class ScriptedProcess : public Process {
 public:
  void on_tick(Env& env) override {
    if (done_ || env.self() != 0) return;
    done_ = true;
    Message m;
    m.kind = MsgKind::kApp;
    m.a = 1;
    env.send(1, m);
    m.a = 2;
    env.send(1, m);
    env.perform(make_action(0, 7));
  }
  void on_receive(ProcessId, const Message&, Env&) override {}

 private:
  bool done_ = false;
};

TEST(SimSemantics, OutboxDrainsInFifoOrderOnePerTick) {
  SimConfig cfg;
  cfg.n = 2;
  cfg.horizon = 10;
  SimResult res = simulate(cfg, no_crashes(2), nullptr, {}, [](ProcessId) {
    return std::make_unique<ScriptedProcess>();
  });
  const History& h = res.run.history(0);
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0].kind, EventKind::kSend);
  EXPECT_EQ(h[0].msg.a, 1);
  EXPECT_EQ(h[1].kind, EventKind::kSend);
  EXPECT_EQ(h[1].msg.a, 2);
  EXPECT_EQ(h[2].kind, EventKind::kDo);
  // One event per tick: entry times are consecutive.
  EXPECT_EQ(res.run.event_time(0, 0), 1);
  EXPECT_EQ(res.run.event_time(0, 1), 2);
  EXPECT_EQ(res.run.event_time(0, 2), 3);
}

TEST(SimSemantics, CrashPreemptsEverything) {
  // Crash at t=2 lands even though the outbox still holds intents; nothing
  // after it (R4).
  SimConfig cfg;
  cfg.n = 2;
  cfg.horizon = 10;
  SimResult res = simulate(cfg, make_crash_plan(2, {{0, 2}}), nullptr, {},
                           [](ProcessId) {
                             return std::make_unique<ScriptedProcess>();
                           });
  const History& h = res.run.history(0);
  ASSERT_EQ(h.size(), 2u);  // one intent drained at t=1, then crash
  EXPECT_EQ(h[0].kind, EventKind::kSend);
  EXPECT_EQ(h[1].kind, EventKind::kCrash);
  EXPECT_EQ(res.run.crash_time(0), std::optional<Time>(2));
}

TEST(SimSemantics, InitTakesSlotBeforeFdAndDelivery) {
  // At the directive's tick the init wins the slot even with a report due
  // and a message ripe: the other two land on later ticks.
  SimConfig cfg;
  cfg.n = 2;
  cfg.horizon = 20;
  cfg.channel.max_delay = 1;
  std::vector<InitDirective> workload{{4, 1, make_action(1, 0)}};
  class Sender : public Process {
   public:
    void on_tick(Env& env) override {
      if (env.self() == 0 && env.now() == 2 && env.outbox_empty()) {
        Message m;
        m.kind = MsgKind::kApp;
        env.send(1, m);  // sent t=3, ripe t=4
      }
    }
    void on_receive(ProcessId, const Message&, Env&) override {}
  };
  PerfectOracle oracle(4);  // report due at t=4 as well
  SimResult res = simulate(cfg, no_crashes(2), &oracle, workload,
                           [](ProcessId) { return std::make_unique<Sender>(); });
  const udc::Run& r = res.run;
  // p1's event AT t=4 is the init.
  std::size_t before = r.history_len(1, 3);
  ASSERT_EQ(r.history_len(1, 4), before + 1);
  EXPECT_EQ(r.history(1)[before].kind, EventKind::kInit);
  // The delivery arrives on a later tick, never lost.
  EXPECT_TRUE(r.has_event(1, r.horizon(), [](const Event& e) {
    return e.kind == EventKind::kRecv;
  }));
}

TEST(SimSemantics, FdReportBeatsDelivery) {
  // With both a due report and a ripe message, the report gets the slot.
  SimConfig cfg;
  cfg.n = 2;
  cfg.horizon = 20;
  cfg.channel.max_delay = 1;
  class Sender : public Process {
   public:
    void on_tick(Env& env) override {
      if (env.self() == 0 && env.now() == 7 && env.outbox_empty()) {
        Message m;
        m.kind = MsgKind::kApp;
        env.send(1, m);  // sent t=8, ripe t=9... next report tick is 12
      }
    }
    void on_receive(ProcessId, const Message&, Env&) override {}
  };
  // Crash at t=9 changes the oracle output, so a report is due at t=12.
  CrashPlan plan = make_crash_plan(2, {{0, 11}});
  PerfectOracle oracle(12);
  SimResult res = simulate(cfg, plan, &oracle, {}, [](ProcessId) {
    return std::make_unique<Sender>();
  });
  const udc::Run& r = res.run;
  // p1 at t=12: suspect report (crash happened at 11 < 12), even though the
  // app message has been ripe since t=9 or 10... the message should have
  // been delivered BEFORE t=12 though (recv at its ripeness, nothing else
  // pending).  So assert the ordering via event kinds in p1's history:
  // recv first (earlier tick), then suspect at exactly 12.
  std::vector<EventKind> kinds;
  for (const Event& e : r.history(1).events()) kinds.push_back(e.kind);
  ASSERT_GE(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], EventKind::kRecv);
  EXPECT_EQ(kinds[1], EventKind::kSuspect);
  // And the suspect landed exactly on its period tick.
  std::size_t idx = 1;
  EXPECT_EQ(r.event_time(1, idx) % 12, 0);
}

TEST(SimSemantics, WorkloadOnCrashedProcessIsCounted) {
  SimConfig cfg;
  cfg.n = 2;
  cfg.horizon = 20;
  std::vector<InitDirective> workload{{10, 0, make_action(0, 0)},
                                      {12, 1, make_action(1, 0)}};
  SimResult res = simulate(cfg, make_crash_plan(2, {{0, 5}}), nullptr,
                           workload, [](ProcessId) {
                             return std::make_unique<ScriptedProcess>();
                           });
  EXPECT_EQ(res.inits_skipped, 1u);
  EXPECT_TRUE(res.run.init_in(1, 12, make_action(1, 0)));
}

TEST(SimSemantics, LateDirectiveFiresAtItsTimeNotBefore) {
  SimConfig cfg;
  cfg.n = 1;
  cfg.horizon = 30;
  std::vector<InitDirective> workload{{17, 0, make_action(0, 0)}};
  class Idle : public Process {
   public:
    void on_receive(ProcessId, const Message&, Env&) override {}
  };
  SimResult res = simulate(cfg, no_crashes(1), nullptr, workload,
                           [](ProcessId) { return std::make_unique<Idle>(); });
  EXPECT_FALSE(res.run.init_in(0, 16, make_action(0, 0)));
  EXPECT_TRUE(res.run.init_in(0, 17, make_action(0, 0)));
}

}  // namespace
}  // namespace udc
