#include "udc/event/run.h"

#include <gtest/gtest.h>

#include "udc/common/check.h"
#include "udc/event/fairness.h"

namespace udc {
namespace {

Message alpha_msg(ActionId a) {
  Message m;
  m.kind = MsgKind::kAlpha;
  m.action = a;
  return m;
}

TEST(RunBuilder, EmptyRunHasHorizonZero) {
  udc::Run r = std::move(Run::Builder(3)).build();
  EXPECT_EQ(r.n(), 3);
  EXPECT_EQ(r.horizon(), 0);
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(r.history_len(p, 0), 0u);  // R1
  }
  EXPECT_TRUE(r.faulty_set().empty());
}

TEST(RunBuilder, R2AtMostOneEventPerStep) {
  Run::Builder b(2);
  b.append(0, Event::init(1));
  EXPECT_THROW(b.append(0, Event::do_action(1)), InvariantViolation);
  // Other processes still have their slot this step.
  EXPECT_NO_THROW(b.append(1, Event::init(2)));
}

TEST(RunBuilder, StepBoundariesTrackLengths) {
  Run::Builder b(2);
  b.append(0, Event::init(1)).end_step();
  b.end_step();  // idle step
  b.append(0, Event::do_action(1)).append(1, Event::do_action(1)).end_step();
  udc::Run r = std::move(b).build();
  EXPECT_EQ(r.horizon(), 3);
  EXPECT_EQ(r.history_len(0, 0), 0u);
  EXPECT_EQ(r.history_len(0, 1), 1u);
  EXPECT_EQ(r.history_len(0, 2), 1u);
  EXPECT_EQ(r.history_len(0, 3), 2u);
  EXPECT_EQ(r.history_len(1, 2), 0u);
  EXPECT_EQ(r.history_len(1, 3), 1u);
  // Queries beyond the horizon clamp.
  EXPECT_EQ(r.history_len(0, 99), 2u);
  // Event entry times invert the length curve.
  EXPECT_EQ(r.event_time(0, 0), 1);
  EXPECT_EQ(r.event_time(0, 1), 3);
}

TEST(RunBuilder, R4NoEventsAfterCrash) {
  Run::Builder b(1);
  b.append(0, Event::crash()).end_step();
  EXPECT_THROW(b.append(0, Event::do_action(1)), InvariantViolation);
}

TEST(RunBuilder, CrashRecordsFaultySetAndTime) {
  Run::Builder b(2);
  b.end_step();
  b.append(1, Event::crash()).end_step();
  udc::Run r = std::move(b).build();
  EXPECT_TRUE(r.is_faulty(1));
  EXPECT_FALSE(r.is_faulty(0));
  EXPECT_EQ(r.faulty_set(), ProcSet::singleton(1));
  EXPECT_EQ(r.correct_set(), ProcSet::singleton(0));
  EXPECT_EQ(r.crash_time(1), std::optional<Time>(2));
  EXPECT_EQ(r.crash_time(0), std::nullopt);
  EXPECT_FALSE(r.crashed_by(1, 1));
  EXPECT_TRUE(r.crashed_by(1, 2));
}

TEST(RunBuilder, R3ReceiveWithoutSendRejected) {
  Run::Builder b(2);
  b.append(1, Event::recv(0, alpha_msg(1))).end_step();
  EXPECT_THROW(std::move(b).build(), InvariantViolation);
}

TEST(RunBuilder, R3ReceiveBeforeSendRejected) {
  Run::Builder b(2);
  b.append(1, Event::recv(0, alpha_msg(1))).end_step();
  b.append(0, Event::send(1, alpha_msg(1))).end_step();
  EXPECT_THROW(std::move(b).build(), InvariantViolation);
}

TEST(RunBuilder, R3SameStepSendRecvAccepted) {
  Run::Builder b(2);
  b.append(0, Event::send(1, alpha_msg(1)))
      .append(1, Event::recv(0, alpha_msg(1)))
      .end_step();
  EXPECT_NO_THROW(std::move(b).build());
}

TEST(RunBuilder, R3MoreReceivesThanSendsRejected) {
  Run::Builder b(2);
  b.append(0, Event::send(1, alpha_msg(1))).end_step();
  b.append(1, Event::recv(0, alpha_msg(1))).end_step();
  b.append(1, Event::recv(0, alpha_msg(1))).end_step();
  EXPECT_THROW(std::move(b).build(), InvariantViolation);
}

TEST(RunBuilder, R3RetransmissionAllowsSecondReceive) {
  Run::Builder b(2);
  b.append(0, Event::send(1, alpha_msg(1))).end_step();
  b.append(0, Event::send(1, alpha_msg(1)))
      .append(1, Event::recv(0, alpha_msg(1)))
      .end_step();
  b.append(1, Event::recv(0, alpha_msg(1))).end_step();
  EXPECT_NO_THROW(std::move(b).build());
}

TEST(RunBuilder, DuplicateInitRejected) {
  Run::Builder b(2);
  b.append(0, Event::init(5)).end_step();
  b.append(0, Event::init(5)).end_step();
  EXPECT_THROW(std::move(b).build(), InvariantViolation);
}

TEST(RunBuilder, InitInTwoHistoriesRejected) {
  Run::Builder b(2);
  b.append(0, Event::init(5)).append(1, Event::init(5)).end_step();
  EXPECT_THROW(std::move(b).build(), InvariantViolation);
}

TEST(Run, SuspectsAtTracksLatestReport) {
  Run::Builder b(2);
  b.append(0, Event::suspect(ProcSet::singleton(1))).end_step();
  b.end_step();
  b.append(0, Event::suspect(ProcSet{})).end_step();
  udc::Run r = std::move(b).build();
  EXPECT_TRUE(r.suspects_at(0, 0).empty());  // no report yet
  EXPECT_EQ(r.suspects_at(0, 1), ProcSet::singleton(1));
  EXPECT_EQ(r.suspects_at(0, 2), ProcSet::singleton(1));
  EXPECT_TRUE(r.suspects_at(0, 3).empty());  // superseded
}

TEST(Run, GenSuspectsAtAndReportHistory) {
  Run::Builder b(3);
  b.append(0, Event::suspect_gen(ProcSet::full(3), 1)).end_step();
  b.append(0, Event::suspect_gen(ProcSet::singleton(2), 1)).end_step();
  udc::Run r = std::move(b).build();
  EXPECT_FALSE(r.gen_suspects_at(0, 0).has_value());
  auto latest = r.gen_suspects_at(0, 2);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->s, ProcSet::singleton(2));
  EXPECT_EQ(latest->k, 1);
  EXPECT_EQ(r.gen_reports_up_to(0, 2).size(), 2u);
  EXPECT_EQ(r.gen_reports_up_to(0, 1).size(), 1u);
}

TEST(Run, IndistinguishabilityIsPerProcess) {
  Run::Builder b1(2);
  b1.append(0, Event::init(1)).end_step();
  udc::Run r1 = std::move(b1).build();

  Run::Builder b2(2);
  b2.append(0, Event::init(1)).append(1, Event::init(2)).end_step();
  udc::Run r2 = std::move(b2).build();

  EXPECT_TRUE(Run::indistinguishable(r1, 1, r2, 1, 0));
  EXPECT_FALSE(Run::indistinguishable(r1, 1, r2, 1, 1));
  // Time 0 cuts are always indistinguishable (all empty).
  EXPECT_TRUE(Run::indistinguishable(r1, 0, r2, 0, 0));
  EXPECT_TRUE(Run::indistinguishable(r1, 0, r2, 0, 1));
}

TEST(Fairness, FlagsSilencedChannel) {
  Run::Builder b(2);
  for (int i = 0; i < 10; ++i) {
    b.append(0, Event::send(1, alpha_msg(1))).end_step();
  }
  udc::Run r = std::move(b).build();
  FairnessReport rep = check_fairness(r, /*threshold=*/5);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].sender, 0);
  EXPECT_EQ(rep.violations[0].recipient, 1);
  EXPECT_EQ(rep.violations[0].times_sent, 10u);
  EXPECT_FALSE(rep.fair());
}

TEST(Fairness, SingleReceiveSatisfiesSurrogate) {
  Run::Builder b(2);
  for (int i = 0; i < 9; ++i) {
    b.append(0, Event::send(1, alpha_msg(1))).end_step();
  }
  b.append(1, Event::recv(0, alpha_msg(1))).end_step();
  udc::Run r = std::move(b).build();
  EXPECT_TRUE(check_fairness(r, 5).fair());
}

TEST(Fairness, SendsToCrashedProcessExempt) {
  Run::Builder b(2);
  b.append(1, Event::crash()).end_step();
  for (int i = 0; i < 10; ++i) {
    b.append(0, Event::send(1, alpha_msg(1))).end_step();
  }
  udc::Run r = std::move(b).build();
  EXPECT_TRUE(check_fairness(r, 5).fair());
}

TEST(Fairness, BelowThresholdNotFlagged) {
  Run::Builder b(2);
  for (int i = 0; i < 4; ++i) {
    b.append(0, Event::send(1, alpha_msg(1))).end_step();
  }
  udc::Run r = std::move(b).build();
  EXPECT_TRUE(check_fairness(r, 5).fair());
}

}  // namespace
}  // namespace udc
