// Until, E_G, C_G, and the S5/epistemic axiom suite — including the
// coordinated-attack shape: over unreliable channels, E_G levels of "the
// message went through" are attainable but common knowledge is not.
#include <gtest/gtest.h>

#include "udc/coord/action.h"
#include "udc/coord/nudc_protocol.h"
#include "udc/logic/eval.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

// One 2-process run: a at times 0..2, b first true at time 3.
System until_system() {
  std::vector<udc::Run> runs;
  Run::Builder b(2);
  b.end_step();
  b.end_step();
  b.append(0, Event::init(1)).end_step();  // "b" = init_0(α1), true from 3
  b.end_step();
  runs.push_back(std::move(b).build());
  return System(std::move(runs));
}

TEST(Until, StrongUntilSemantics) {
  System sys = until_system();
  ModelChecker mc(sys);
  auto before = Formula::prim("pre", [](const udc::Run&, Time m) {
    return m < 3;
  });
  auto target = f_init(0, 1);
  // pre U init: holds at 0..3 (init reached at 3 with pre holding before).
  for (Time m = 0; m <= 3; ++m) {
    EXPECT_TRUE(mc.holds_at(Point{0, m}, f_until(before, target))) << m;
  }
  // At 4, init still holds, so b-now satisfies U trivially.
  EXPECT_TRUE(mc.holds_at(Point{0, 4}, f_until(before, target)));
  // Strong until fails when the target never comes.
  auto never = f_do(1, 99);
  EXPECT_FALSE(mc.holds_at(Point{0, 0}, f_until(before, never)));
  // And when the guard breaks before the target: guard false from t=1.
  auto early_guard = Formula::prim("t0", [](const udc::Run&, Time m) {
    return m < 1;
  });
  EXPECT_FALSE(mc.holds_at(Point{0, 0}, f_until(early_guard, target)));
}

TEST(Until, EventuallyIsTrueUntil) {
  System sys = until_system();
  ModelChecker mc(sys);
  auto target = f_init(0, 1);
  sys.for_each_point([&](Point at) {
    EXPECT_EQ(mc.holds_at(at, f_eventually(target)),
              mc.holds_at(at, f_until(Formula::truth(), target)));
  });
}

// Epistemic fixture: run 0 has the init; run 1 does not; p1 learns of it in
// run 0 via a message.
System epistemic_system() {
  std::vector<udc::Run> runs;
  {
    Run::Builder b(2);
    Message m;
    m.kind = MsgKind::kInitGossip;
    m.action = 1;
    b.append(0, Event::init(1)).end_step();
    b.append(0, Event::send(1, m)).end_step();
    b.append(1, Event::recv(0, m)).end_step();
    b.end_step();
    runs.push_back(std::move(b).build());
  }
  {
    Run::Builder b(2);
    b.end_step();
    b.end_step();
    b.end_step();
    b.end_step();
    runs.push_back(std::move(b).build());
  }
  return System(std::move(runs));
}

TEST(EveryoneKnows, MatchesConjunctionOfKnows) {
  System sys = epistemic_system();
  ModelChecker mc(sys);
  auto phi = f_init(0, 1);
  ProcSet g = ProcSet::full(2);
  sys.for_each_point([&](Point at) {
    bool e = mc.holds_at(at, f_everyone_knows(g, phi));
    bool k0 = mc.holds_at(at, f_knows(0, phi));
    bool k1 = mc.holds_at(at, f_knows(1, phi));
    EXPECT_EQ(e, k0 && k1) << "(" << at.run << "," << at.m << ")";
  });
  // After the message, everyone knows.
  EXPECT_TRUE(mc.holds_at(Point{0, 3}, f_everyone_knows(g, phi)));
  // But E is not E^2: p0 does not know that p1 knows (the ack never came).
  EXPECT_FALSE(mc.holds_at(Point{0, 3},
                           f_everyone_knows(g, f_everyone_knows(g, phi))));
}

TEST(CommonKnowledge, StrictlyStrongerThanIteratedE) {
  System sys = epistemic_system();
  ModelChecker mc(sys);
  auto phi = f_init(0, 1);
  ProcSet g = ProcSet::full(2);
  // C implies every E^k; here even E^2 fails, so C must fail.
  EXPECT_FALSE(mc.holds_at(Point{0, 3}, f_common_knows(g, phi)));
  // C_G(true) is valid (the component trivially satisfies truth).
  EXPECT_TRUE(mc.valid(f_common_knows(g, Formula::truth())));
  // C_G φ ⇒ φ and C_G φ ⇒ E_G C_G φ (fixpoint) are valid.
  auto c = f_common_knows(g, phi);
  EXPECT_TRUE(mc.valid(f_implies(c, phi)));
  EXPECT_TRUE(mc.valid(f_implies(c, f_everyone_knows(g, c))));
}

TEST(CommonKnowledge, CoordinatedAttackShape) {
  // Generated flooding system over a lossy channel, with the no-init
  // workload variant present (the "no attack" world): each extra message
  // buys one more level of E, but common knowledge of the init is never
  // attained at any point — the coordinated-attack impossibility.
  SimConfig cfg;
  cfg.n = 2;
  cfg.horizon = 60;
  cfg.channel.drop_prob = 0.3;
  cfg.seed = 11;
  std::vector<InitDirective> workload{{3, 0, make_action(0, 0)}};
  auto workloads = workload_variants(workload);
  auto plans = std::vector<CrashPlan>{no_crashes(2)};
  System sys = generate_system_multi(
      cfg, plans, workloads, nullptr,
      [](ProcessId) { return std::make_unique<NUdcProcess>(); }, 3);
  ModelChecker mc(sys);
  auto phi = f_init(0, make_action(0, 0));
  ProcSet g = ProcSet::full(2);
  // E_G attained somewhere (flooding gets the fact across)...
  bool e_attained = false;
  sys.for_each_point([&](Point at) {
    if (mc.holds_at(at, f_everyone_knows(g, phi))) e_attained = true;
  });
  EXPECT_TRUE(e_attained);
  // ...but C_G never is.
  sys.for_each_point([&](Point at) {
    EXPECT_FALSE(mc.holds_at(at, f_common_knows(g, phi)))
        << "(" << at.run << "," << at.m << ")";
  });
}

TEST(S5Axioms, HoldOnGeneratedSystems) {
  SimConfig cfg;
  cfg.n = 3;
  cfg.horizon = 60;
  cfg.channel.drop_prob = 0.25;
  cfg.seed = 3;
  auto workload = make_workload(3, 1, 3, 5);
  auto plans = all_crash_plans_up_to(3, 2, 15, 40);
  System sys = generate_system(
      cfg, plans, workload, nullptr,
      [](ProcessId) { return std::make_unique<NUdcProcess>(); }, 1);
  ModelChecker mc(sys);
  ActionId alpha = make_action(0, 0);
  std::vector<FormulaPtr> phis{
      f_init(0, alpha), f_crash(1), f_do(2, alpha),
      f_and(f_init(0, alpha), f_not(f_crash(2)))};
  for (ProcessId p = 0; p < 3; ++p) {
    for (const auto& phi : phis) {
      auto k = f_knows(p, phi);
      // T (veridicality), 4 (positive introspection), 5 (negative
      // introspection), K (distribution over implication).
      EXPECT_TRUE(mc.valid(f_implies(k, phi)));
      EXPECT_TRUE(mc.valid(f_implies(k, f_knows(p, k))));
      EXPECT_TRUE(
          mc.valid(f_implies(f_not(k), f_knows(p, f_not(k)))));
      for (const auto& psi : phis) {
        EXPECT_TRUE(mc.valid(f_implies(
            f_and(f_knows(p, f_implies(phi, psi)), k), f_knows(p, psi))));
      }
    }
  }
}

TEST(KnowledgeHierarchy, DistributedBelowIndividualBelowEveryoneBelowC) {
  System sys = epistemic_system();
  ModelChecker mc(sys);
  auto phi = f_init(0, 1);
  ProcSet g = ProcSet::full(2);
  // C ⇒ E ⇒ K_p ⇒ D, validly.
  EXPECT_TRUE(mc.valid(
      f_implies(f_common_knows(g, phi), f_everyone_knows(g, phi))));
  for (ProcessId p = 0; p < 2; ++p) {
    EXPECT_TRUE(
        mc.valid(f_implies(f_everyone_knows(g, phi), f_knows(p, phi))));
    EXPECT_TRUE(mc.valid(
        f_implies(f_knows(p, phi), Formula::dist_knows(g, phi))));
  }
}

}  // namespace
}  // namespace udc
