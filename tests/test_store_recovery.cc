// Durable crash-recovery end to end (rt/runtime.h + store/): a worker is
// hard-killed, its on-disk WAL/snapshot state is corrupted by a scripted
// StorageFault, and the restarted worker recovers FROM DISK — then the
// lifted run goes through the same DC1-DC3 and fd-property checkers as
// every other run.  The point of each test is the final conformance bit:
// no storage fault may ever surface as a non-conformant live run.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "udc/chaos/fault_script.h"
#include "udc/coord/action.h"
#include "udc/rt/runtime.h"

namespace udc {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  fs::path d = fs::temp_directory_path() / ("udc_recover_" + name);
  fs::remove_all(d);
  return d.string();  // run_live creates it
}

std::string violations_of(const RtVerdict& v) {
  std::string all;
  for (const std::string& viol : v.coord.violations) all += viol + "\n";
  return all;
}

// The durable twin of RunLive.RestartedWorkerReplaysItsLogAndPreserves-
// Uniformity: same crash, but the replay source is the disk, not the
// in-memory trace.
TEST(StoreRecovery, RestartedWorkerRecoversFromDiskAndPreservesUniformity) {
  RtOptions o;
  o.n = 4;
  o.t = 1;
  o.protocol = "strongfd";
  o.restartable_crashes = true;
  o.workload = make_workload(4, 1, 60, 40);
  o.script.crashes.push_back({1, 40});
  o.seed = 7;
  o.durable_dir = fresh_dir("basic");
  o.store.fsync = FsyncPolicy::kEveryAppend;
  RtVerdict v = run_live(o);
  EXPECT_EQ(v.status, BudgetStatus::kComplete);
  EXPECT_GE(v.counters.restarts, 1u);
  EXPECT_GE(v.counters.recoveries_total, 1u);  // the disk path actually ran
  EXPECT_TRUE(v.conformant) << violations_of(v);
  fs::remove_all(o.durable_dir);
}

// Kill the owner of the LAST directive just before it fires: by then the
// victim has a rich log, small snapshot_every has rotated it, and recovery
// is genuinely snapshot + WAL-tail replay (not the thin-log degenerate).
TEST(StoreRecovery, SnapshotPlusTailReplayCarriesALateCrash) {
  RtOptions o;
  o.n = 4;
  o.t = 1;
  o.protocol = "strongfd";
  o.restartable_crashes = true;
  o.workload = make_workload(4, 1, 60, 40);
  o.script.crashes.push_back(
      {o.workload.back().p, o.workload.back().at - 10});
  o.restart_after = 200;
  o.seed = 11;
  o.durable_dir = fresh_dir("snapshot_tail");
  o.store.fsync = FsyncPolicy::kEveryAppend;
  o.store.snapshot_every = 16;
  RtVerdict v = run_live(o);
  EXPECT_EQ(v.status, BudgetStatus::kComplete);
  EXPECT_GE(v.counters.snapshots_written, 1u);
  EXPECT_GE(v.counters.snapshots_loaded, 1u);
  EXPECT_GE(v.counters.wal_frames_replayed, 1u);
  EXPECT_TRUE(v.conformant) << violations_of(v);
  fs::remove_all(o.durable_dir);
}

// A torn write at kill time leaves a half frame on disk; recovery must cut
// it, count it, and still produce a conformant run.
TEST(StoreRecovery, TornTailIsTruncatedNotFatal) {
  RtOptions o;
  o.n = 4;
  o.t = 1;
  o.protocol = "strongfd";
  o.restartable_crashes = true;
  o.workload = make_workload(4, 1, 60, 40);
  o.script.crashes.push_back(
      {o.workload.back().p, o.workload.back().at - 10});
  o.restart_after = 200;
  StorageFault torn;
  torn.kind = StorageFault::Kind::kTornWrite;
  torn.victim = o.workload.back().p;
  o.script.storage_faults.push_back(torn);
  o.seed = 19;
  o.durable_dir = fresh_dir("torn");
  o.store.fsync = FsyncPolicy::kEveryAppend;
  RtVerdict v = run_live(o);
  EXPECT_EQ(v.status, BudgetStatus::kComplete);
  EXPECT_GE(v.counters.storage_faults_injected, 1u);
  EXPECT_GE(v.counters.torn_tails_truncated, 1u);
  EXPECT_TRUE(v.conformant) << violations_of(v);
  fs::remove_all(o.durable_dir);
}

// The worst durability level with the harshest fault: fsync never, and the
// machine-crash truncate reclaims the whole unsynced WAL.  The recovered
// worker restarts with (nearly) empty state; the supervisor re-injects the
// inits the disk forgot and the kRejoin beacon makes peers re-teach the
// rest — the run must still conform, now the hard way.
TEST(StoreRecovery, TotalLogLossUnderFsyncNeverStillReconverges) {
  RtOptions o;
  o.n = 4;
  o.t = 1;
  o.protocol = "strongfd";
  o.restartable_crashes = true;
  o.workload = make_workload(4, 1, 60, 40);
  o.script.crashes.push_back(
      {o.workload.back().p, o.workload.back().at - 10});
  o.restart_after = 200;
  StorageFault trunc;
  trunc.kind = StorageFault::Kind::kTruncate;
  trunc.victim = o.workload.back().p;
  o.script.storage_faults.push_back(trunc);
  o.seed = 23;
  o.durable_dir = fresh_dir("total_loss");
  o.store.fsync = FsyncPolicy::kNever;
  o.store.snapshot_every = 1'000'000;  // no snapshot floor either
  RtVerdict v = run_live(o);
  EXPECT_EQ(v.status, BudgetStatus::kComplete);
  EXPECT_GE(v.counters.recoveries_total, 1u);
  EXPECT_TRUE(v.conformant) << violations_of(v);
  fs::remove_all(o.durable_dir);
}

// Every fault kind, across both conformance-tested protocols: the scripted
// corruption may shrink what the disk remembers, never what the run proves.
TEST(StoreRecovery, EveryFaultKindYieldsAConformantRecovery) {
  const StorageFault::Kind kinds[] = {
      StorageFault::Kind::kTornWrite, StorageFault::Kind::kTruncate,
      StorageFault::Kind::kBitFlip, StorageFault::Kind::kShortRead,
      StorageFault::Kind::kSyncFail,
  };
  int i = 0;
  for (StorageFault::Kind kind : kinds) {
    RtOptions o;
    o.n = 4;
    o.t = 1;
    o.protocol = (i % 2 == 0) ? "strongfd" : "majority";
    o.restartable_crashes = true;
    o.workload = make_workload(4, 1, 60, 40);
    o.script.crashes.push_back(
        {o.workload.back().p, o.workload.back().at - 10});
    o.restart_after = 200;
    StorageFault f;
    f.kind = kind;
    f.victim = o.workload.back().p;
    o.script.storage_faults.push_back(f);
    o.seed = 31 + static_cast<std::uint64_t>(i);
    o.durable_dir = fresh_dir("kind_" + std::to_string(i));
    o.store.fsync = FsyncPolicy::kEveryN;
    o.store.fsync_every = 8;
    o.store.snapshot_every = 24;
    RtVerdict v = run_live(o);
    EXPECT_EQ(v.status, BudgetStatus::kComplete) << "kind " << i;
    EXPECT_GE(v.counters.recoveries_total, 1u) << "kind " << i;
    EXPECT_TRUE(v.conformant)
        << "kind " << i << " (" << o.protocol << ")\n" << violations_of(v);
    fs::remove_all(o.durable_dir);
    ++i;
  }
}

}  // namespace
}  // namespace udc
