// Deep structural invariants: the indistinguishability index partitions
// the point space; the Theorem 3.6 constructions behave at the all-crash
// edge; generated systems honor the §2.4 init-ownership discipline.
#include <gtest/gtest.h>

#include <set>

#include "udc/coord/action.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/oracle.h"
#include "udc/fd/properties.h"
#include "udc/kt/simulate_fd.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

System small_system() {
  SimConfig cfg;
  cfg.n = 3;
  cfg.horizon = 100;
  cfg.channel.drop_prob = 0.3;
  cfg.seed = 13;
  auto workload = make_workload(3, 1, 4, 6);
  auto plans = all_crash_plans_up_to(3, 3, 15, 60);  // includes all-crash
  return generate_system(
      cfg, plans, workload, [] { return std::make_unique<PerfectOracle>(4); },
      [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); }, 2);
}

TEST(Invariants, EquivalenceClassesPartitionThePointSpace) {
  System sys = small_system();
  for (ProcessId p = 0; p < sys.n(); ++p) {
    std::set<std::pair<std::size_t, Time>> seen;
    std::size_t total = 0;
    sys.for_each_point([&](Point at) {
      ++total;
      // Take the class only from its canonical representative (the first
      // member); every point must appear in exactly one class.
      auto cls = sys.equivalence_class(p, at);
      if (!(cls.front() == at)) return;
      for (Point q : cls) {
        bool inserted = seen.insert({q.run, q.m}).second;
        EXPECT_TRUE(inserted) << "point in two classes for p" << p;
      }
    });
    EXPECT_EQ(seen.size(), total) << "classes do not cover for p" << p;
  }
}

TEST(Invariants, EquivalenceIsSymmetricAndTransitiveInPractice) {
  System sys = small_system();
  // Spot-check: membership is mutual and classes are identical objects.
  sys.for_each_point([&](Point at) {
    auto cls = sys.equivalence_class(0, at);
    for (Point other : cls) {
      auto cls2 = sys.equivalence_class(0, other);
      ASSERT_EQ(cls.size(), cls2.size());
      ASSERT_EQ(cls.data(), cls2.data());  // same stored group
    }
  });
}

TEST(Invariants, BuildRfSurvivesAllCrashRuns) {
  // F(r) = Proc runs have no correct process: completeness is vacuous and
  // the construction must simply not misbehave (reports stop at crashes).
  System sys = small_system();
  bool has_all_crash = false;
  for (const udc::Run& r : sys.runs()) {
    has_all_crash |= r.correct_set().empty();
  }
  ASSERT_TRUE(has_all_crash);
  System rf = build_rf(sys);
  FdPropertyReport rep = check_fd_properties(rf, /*grace=*/80);
  EXPECT_TRUE(rep.strong_accuracy);
  for (std::size_t i = 0; i < rf.size(); ++i) {
    const udc::Run& r = rf.run(i);
    for (ProcessId p = 0; p < rf.n(); ++p) {
      // R4 in the image: nothing after crash.
      const History& h = r.history(p);
      for (std::size_t e = 0; e + 1 < h.size(); ++e) {
        EXPECT_NE(h[e].kind, EventKind::kCrash);
      }
    }
  }
}

TEST(Invariants, GeneratedRunsHonorInitOwnership) {
  // §2.4: init_p(α) only ever appears at α's owner, at most once.
  System sys = small_system();
  for (const udc::Run& r : sys.runs()) {
    for (ProcessId p = 0; p < sys.n(); ++p) {
      for (const Event& e : r.history(p).events()) {
        if (e.kind != EventKind::kInit) continue;
        EXPECT_EQ(action_owner(e.action), p);
      }
    }
  }
}

TEST(Invariants, SuspectReportsOnlyAtLiveProcesses) {
  System sys = small_system();
  for (const udc::Run& r : sys.runs()) {
    for (ProcessId p = 0; p < sys.n(); ++p) {
      const History& h = r.history(p);
      for (std::size_t i = 0; i < h.size(); ++i) {
        if (h[i].is_failure_detector_event()) {
          EXPECT_FALSE(r.crashed_by(p, r.event_time(p, i) - 1))
              << "report after crash";
        }
      }
    }
  }
}

}  // namespace
}  // namespace udc
