// Consensus internals: the CT-S value-vector packing, spec edge cases, and
// a parameterized (n, drop, t) grid for both algorithms.
#include <gtest/gtest.h>

#include "udc/consensus/ct_strong.h"
#include "udc/consensus/rotating.h"
#include "udc/consensus/spec.h"
#include "udc/fd/oracle.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

TEST(CtPacking, RoundTripsAllEntryStates) {
  std::vector<std::int8_t> v{-1, 0, 5, 126, -1, 7, -1, 1};
  std::uint64_t bits = CtStrongConsensus::pack(v);
  std::vector<std::int8_t> out(8, 99);
  CtStrongConsensus::unpack(bits, out);
  EXPECT_EQ(v, out);
}

TEST(CtPacking, UnknownIsNotValueZero) {
  // The known-flag bit must distinguish "no entry" from "value 0".
  std::vector<std::int8_t> unknown{-1};
  std::vector<std::int8_t> zero{0};
  EXPECT_NE(CtStrongConsensus::pack(unknown), CtStrongConsensus::pack(zero));
}

TEST(CtPacking, ShorterVectorsUseLowBytes) {
  std::vector<std::int8_t> v{3, -1, 4};
  std::uint64_t bits = CtStrongConsensus::pack(v);
  std::vector<std::int8_t> out(3, 0);
  CtStrongConsensus::unpack(bits, out);
  EXPECT_EQ(v, out);
  // High bytes untouched (zero).
  EXPECT_EQ(bits >> 24, 0u);
}

TEST(ConsensusSpec, SingleProcessDecidesAlone) {
  const std::vector<std::int64_t> values{9};
  SimConfig cfg;
  cfg.n = 1;
  cfg.horizon = 20;
  SimResult res =
      simulate(cfg, no_crashes(1), nullptr, {}, ct_strong_factory(values));
  ConsensusReport rep = check_consensus(res.run, values);
  EXPECT_TRUE(rep.achieved_uniform());
  EXPECT_EQ(decision_of(res.run, 0), std::optional<std::int64_t>(9));
}

TEST(ConsensusSpec, AllFaultyRunIsVacuouslyTerminated) {
  Run::Builder b(2);
  b.append(0, Event::crash()).append(1, Event::crash()).end_step();
  udc::Run r = std::move(b).build();
  std::vector<std::int64_t> values{1, 2};
  ConsensusReport rep = check_consensus(r, values);
  EXPECT_TRUE(rep.termination);  // no correct process left to bind it
  EXPECT_TRUE(rep.achieved_uniform());
}

TEST(ConsensusSpec, FaultyDeciderStillBindsUniformAgreement) {
  Run::Builder b(2);
  b.append(0, Event::do_action(decide_action(1))).end_step();
  b.append(0, Event::crash())
      .append(1, Event::do_action(decide_action(2)))
      .end_step();
  udc::Run r = std::move(b).build();
  std::vector<std::int64_t> values{1, 2};
  ConsensusReport rep = check_consensus(r, values);
  EXPECT_FALSE(rep.uniform_agreement);
  EXPECT_TRUE(rep.agreement);  // only one CORRECT decider
}

// ------------------------------------------------------------- grid sweep
struct ConsensusParam {
  int n;
  double drop;
  int t;
  bool rotating;  // rotating coordinator (t < n/2) vs CT-S
};

class ConsensusGrid : public ::testing::TestWithParam<ConsensusParam> {};

TEST_P(ConsensusGrid, UniformConsensusAcrossCrashPlans) {
  const ConsensusParam param = GetParam();
  std::vector<std::int64_t> values;
  for (int i = 0; i < param.n; ++i) values.push_back((i * 3 + 1) % 7);
  SimConfig cfg;
  cfg.n = param.n;
  cfg.horizon = 900;
  cfg.channel.drop_prob = param.drop;
  auto plans = all_crash_plans_up_to(param.n, param.t, 25, 120);
  OracleFactory oracle =
      param.rotating
          ? OracleFactory([] {
              return std::make_unique<EventuallyStrongOracle>(4, 60, 0.3);
            })
          : OracleFactory(
                [] { return std::make_unique<StrongOracle>(4, 0.2); });
  System sys = generate_system(cfg, plans, {}, oracle,
                               param.rotating
                                   ? rotating_consensus_factory(values)
                                   : ct_strong_factory(values),
                               1);
  ConsensusReport rep = check_consensus(sys, values);
  EXPECT_TRUE(rep.achieved_uniform())
      << (rep.violations.empty() ? "" : rep.violations[0]);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConsensusGrid,
    ::testing::Values(ConsensusParam{3, 0.0, 1, true},
                      ConsensusParam{3, 0.3, 1, true},
                      ConsensusParam{5, 0.3, 2, true},
                      ConsensusParam{5, 0.5, 2, true},
                      ConsensusParam{3, 0.3, 2, false},
                      ConsensusParam{4, 0.3, 3, false},
                      ConsensusParam{5, 0.3, 4, false},
                      ConsensusParam{6, 0.2, 5, false}),
    [](const ::testing::TestParamInfo<ConsensusParam>& info) {
      return std::string(info.param.rotating ? "rotating" : "cts") + "_n" +
             std::to_string(info.param.n) + "_t" +
             std::to_string(info.param.t) + "_drop" +
             std::to_string(static_cast<int>(info.param.drop * 10));
    });

}  // namespace
}  // namespace udc
