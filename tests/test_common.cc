// The common substrate: PRNG determinism/quality, invariant checking,
// message values.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "udc/common/check.h"
#include "udc/common/rng.h"
#include "udc/event/message.h"

namespace udc {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    auto x = a.next();
    EXPECT_EQ(x, b.next());
    // Different seeds diverge immediately with overwhelming probability.
    if (i == 0) {
      EXPECT_NE(x, c.next());
    }
  }
}

TEST(Rng, NextBelowIsInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(123);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  // Chi-squared with 7 dof; 99.9% critical value ~24.3.
  double expected = static_cast<double>(kSamples) / kBuckets;
  double chi2 = 0;
  for (int c : counts) {
    double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 24.3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  Rng rng2(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng2.chance(0.0));
  }
}

TEST(Check, ThrowsWithContext) {
  try {
    UDC_CHECK(false, "the message");
    FAIL() << "should have thrown";
  } catch (const InvariantViolation& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("test_common.cc"), std::string::npos);
  }
  EXPECT_NO_THROW(UDC_CHECK(true, "never seen"));
}

TEST(Message, EqualityIsFieldWise) {
  Message a;
  a.kind = MsgKind::kAlpha;
  a.action = 5;
  Message b = a;
  EXPECT_EQ(a, b);
  b.a = 1;
  EXPECT_FALSE(a == b);
  b = a;
  b.procs.insert(3);
  EXPECT_FALSE(a == b);
}

TEST(Message, HashMatchesEquality) {
  MessageHash h;
  Message a;
  a.kind = MsgKind::kAck;
  a.action = 9;
  Message b = a;
  EXPECT_EQ(h(a), h(b));
  // Distinct messages collide with negligible probability; spot-check a
  // family of near-misses.
  std::set<std::size_t> hashes{h(a)};
  for (int i = 0; i < 64; ++i) {
    Message c = a;
    c.b = i + 1;
    EXPECT_TRUE(hashes.insert(h(c)).second) << i;
  }
}

TEST(Message, RetransmissionsAreIdenticalValues) {
  // R5's premise: "the same message" — a retransmission must compare equal,
  // which is why Message carries no per-send sequence number.
  Message m;
  m.kind = MsgKind::kAlpha;
  m.action = 123;
  Message retx = m;
  EXPECT_EQ(m, retx);
  EXPECT_EQ(MessageHash{}(m), MessageHash{}(retx));
}

}  // namespace
}  // namespace udc
