// Segmented-WAL torture (store/wal.h): build a many-segment chain through
// the staged append path, then attack the on-disk files from the OUTSIDE —
// the way a crashed machine or a bad disk would — at EVERY byte position,
// and pin the exact recovered prefix for each variant.
//
// The attack shapes:
//   * active-segment truncation at every byte (process/machine kill while
//     the tail segment is mid-write, including inside its preallocated
//     zero tail);
//   * machine-crash cuts at every byte of every segment — truncate segment
//     s to b and delete everything after it, the exact shape
//     inject_truncate_to_synced produces, INCLUDING cuts landing exactly
//     on rotation boundaries;
//   * a bit flip at every byte of every file;
//   * a deleted mid-chain segment (a hole ends the global prefix);
//   * a seal interrupted between its last write and its ftruncate (zero
//     tail on a mid-chain segment — later synced segments must still
//     count);
//   * a rotation interrupted after preallocating the next segment but
//     before writing to it.
//
// Every variant also round-trips repair_wal: repair must converge (second
// repair reports nothing nonzero to cut), must never change what read_wal
// decodes, and must report a nonzero cut exactly when real frame bytes —
// not preallocation zeros — lie past the valid prefix.  Several thousand
// variants total; each expectation is computed from the pristine bytes, not
// from what the reader happens to say.
#include "udc/store/wal.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "udc/event/event.h"
#include "udc/store/codec.h"

namespace udc {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kHeader = 8;  // [u32le len][u32le crc] (wal.cc)

std::string fresh_base(const std::string& name) {
  fs::path d = fs::temp_directory_path() / ("udc_seg_" + name);
  fs::remove_all(d);
  fs::create_directories(d);
  return (d / "p0.wal").string();
}

Event event_at(Time t) {
  Message m;
  m.kind = MsgKind::kApp;
  m.a = 1'000'000 + t;
  switch (t % 3) {
    case 0:
      return Event::send(static_cast<ProcessId>(t % 7), m);
    case 1:
      return Event::recv(static_cast<ProcessId>(t % 5), m);
    default:
      return Event::do_action(static_cast<ActionId>(t));
  }
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void spill(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Frame end offsets within one pristine segment file, scanning the trusted
// len fields (a zero len is the preallocated tail of the active segment).
std::vector<std::size_t> frame_ends(const std::vector<std::uint8_t>& bytes) {
  std::vector<std::size_t> ends;
  std::size_t pos = 0;
  while (pos + kHeader <= bytes.size()) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(bytes[pos + i]) << (8 * i);
    }
    if (len == 0 || pos + kHeader + len > bytes.size()) break;
    pos += kHeader + len;
    ends.push_back(pos);
  }
  return ends;
}

// Largest frame-end <= b (0 if none): where the valid prefix of a file cut
// at byte b ends.
std::size_t prefix_end_at(const std::vector<std::size_t>& ends,
                          std::size_t b) {
  std::size_t e = 0;
  for (std::size_t end : ends) {
    if (end <= b) e = end;
  }
  return e;
}

std::size_t prefix_frames_at(const std::vector<std::size_t>& ends,
                             std::size_t b) {
  std::size_t k = 0;
  for (std::size_t end : ends) {
    if (end <= b) ++k;
  }
  return k;
}

// The pristine chain plus everything the variants need to predict exact
// prefixes: per-segment bytes, frame boundaries, and cumulative counts.
struct Chain {
  std::string base;
  std::vector<std::string> paths;                   // by sequence order
  std::vector<std::vector<std::uint8_t>> bytes;     // pristine images
  std::vector<std::vector<std::size_t>> ends;       // frame ends per file
  std::vector<std::size_t> before;                  // frames before file i
  std::size_t total = 0;

  void restore() const {
    for (const auto& [seq, path] : list_wal_segments(base)) {
      (void)seq;
      fs::remove(path);
    }
    for (std::size_t i = 0; i < paths.size(); ++i) spill(paths[i], bytes[i]);
  }
};

Chain build_chain(const std::string& name, Time records) {
  Chain c;
  c.base = fresh_base(name);
  WalOptions o;
  o.fsync = FsyncPolicy::kNever;
  o.segment_bytes = 128;  // a handful of frames per segment
  o.ring_frames = 16;
  o.preallocate = true;
  {
    WalWriter w(c.base, o);
    for (Time t = 1; t <= records; ++t) {
      w.append(StoreRecord{t, event_at(t)});
    }
    w.commit();  // drain + barrier: everything reaches the files
    w.close();
  }
  for (const auto& [seq, path] : list_wal_segments(c.base)) {
    (void)seq;
    c.paths.push_back(path);
    c.bytes.push_back(slurp(path));
    c.ends.push_back(frame_ends(c.bytes.back()));
    c.before.push_back(c.total);
    c.total += c.ends.back().size();
  }
  EXPECT_EQ(c.total, static_cast<std::size_t>(records));
  EXPECT_GE(c.paths.size(), 8u) << "torture wants a long chain";
  return c;
}

// One corrupted chain, checked end to end: exact read prefix, repair's
// nonzero-cut report, repair changing nothing the reader decodes, and
// repair convergence.
void check_variant(const Chain& c, std::size_t want_records,
                   bool want_nonzero_cut, const std::string& what) {
  WalReadResult r = read_wal(c.base);
  ASSERT_EQ(r.records.size(), want_records) << what;
  for (std::size_t i = 0; i < r.records.size(); ++i) {
    ASSERT_EQ(r.records[i].t, static_cast<Time>(i + 1)) << what << " @" << i;
    ASSERT_EQ(r.records[i].e, event_at(r.records[i].t)) << what << " @" << i;
  }
  EXPECT_EQ(repair_wal(c.base), want_nonzero_cut) << what;
  WalReadResult post = read_wal(c.base);
  EXPECT_EQ(post.records.size(), want_records) << what << " after repair";
  EXPECT_FALSE(repair_wal(c.base)) << what << " repair did not converge";
}

TEST(StoreSegment, PristineChainReadsBackInFull) {
  Chain c = build_chain("pristine", 48);
  check_variant(c, c.total, /*want_nonzero_cut=*/false, "pristine");
}

// Kill while the ACTIVE segment is mid-write: truncate it at every byte of
// its preallocated extent.  Cuts inside a frame lose that frame and report
// a torn (nonzero) cut; cuts on a boundary or inside the zero tail lose
// nothing nonzero.
TEST(StoreSegment, ActiveSegmentTruncatedAtEveryByte) {
  Chain c = build_chain("active", 48);
  const std::size_t last = c.paths.size() - 1;
  const auto& ends = c.ends[last];
  const std::size_t data_end = ends.empty() ? 0 : ends.back();
  for (std::size_t b = 0; b < c.bytes[last].size(); ++b) {
    c.restore();
    fs::resize_file(c.paths[last], b);
    const std::size_t want = c.before[last] + prefix_frames_at(ends, b);
    const bool cut = std::min(b, data_end) > prefix_end_at(ends, b);
    check_variant(c, want, cut, "active cut at " + std::to_string(b));
  }
}

// The machine-crash shape (inject_truncate_to_synced): everything past a
// global byte offset is gone — segment s cut to b, later segments deleted.
// Every byte of every segment's data region, which includes cuts landing
// exactly on segment/rotation boundaries (b == 0 and b == data end).
TEST(StoreSegment, MachineCrashCutAtEveryByteOfEverySegment) {
  Chain c = build_chain("crashcut", 48);
  for (std::size_t s = 0; s < c.paths.size(); ++s) {
    const auto& ends = c.ends[s];
    const std::size_t data_end = ends.empty() ? 0 : ends.back();
    for (std::size_t b = 0; b <= data_end; ++b) {
      c.restore();
      fs::resize_file(c.paths[s], b);
      for (std::size_t later = s + 1; later < c.paths.size(); ++later) {
        fs::remove(c.paths[later]);
      }
      const std::size_t want = c.before[s] + prefix_frames_at(ends, b);
      const bool cut = b > prefix_end_at(ends, b);
      check_variant(c, want, cut,
                    "crash cut seg " + std::to_string(s) + " at " +
                        std::to_string(b));
    }
  }
}

// A flipped byte anywhere in a frame invalidates that frame and everything
// after it chain-wide; a flipped byte in the active segment's zero tail is
// junk past the prefix but costs no records.
TEST(StoreSegment, BitFlipAtEveryByteOfEveryFile) {
  Chain c = build_chain("bitflip", 48);
  for (std::size_t s = 0; s < c.paths.size(); ++s) {
    const auto& ends = c.ends[s];
    const std::size_t data_end = ends.empty() ? 0 : ends.back();
    for (std::size_t off = 0; off < c.bytes[s].size(); ++off) {
      c.restore();
      std::vector<std::uint8_t> mutated = c.bytes[s];
      mutated[off] ^= 0xA5;
      spill(c.paths[s], mutated);
      std::size_t want;
      if (off >= data_end) {
        want = c.total;  // zero-tail flip: all frames still decode
      } else {
        want = c.before[s] + prefix_frames_at(ends, off);
      }
      check_variant(c, want, /*want_nonzero_cut=*/true,
                    "flip seg " + std::to_string(s) + " byte " +
                        std::to_string(off));
    }
  }
}

// A hole in the chain ends the global prefix: frames in later segments are
// unreachable even though their bytes are intact, and repair deletes them.
TEST(StoreSegment, DeletedMiddleSegmentEndsThePrefix) {
  Chain c = build_chain("hole", 48);
  for (std::size_t s = 1; s + 1 < c.paths.size(); ++s) {
    c.restore();
    fs::remove(c.paths[s]);
    check_variant(c, c.before[s], /*want_nonzero_cut=*/true,
                  "deleted seg " + std::to_string(s));
  }
}

// A seal interrupted between its last write and its ftruncate leaves a
// mid-chain segment at its full preallocated size with a zero tail.  The
// zeros carry no frames: later synced segments still count, and repair
// trims the tail silently (it is not a torn write).
TEST(StoreSegment, InterruptedSealZeroTailDoesNotEndThePrefix) {
  Chain c = build_chain("midseal", 48);
  for (std::size_t s = 0; s + 1 < c.paths.size(); ++s) {
    c.restore();
    std::vector<std::uint8_t> unsealed = c.bytes[s];
    unsealed.resize(128, 0);  // back to the preallocated extent
    spill(c.paths[s], unsealed);
    check_variant(c, c.total, /*want_nonzero_cut=*/false,
                  "unsealed seg " + std::to_string(s));
  }
}

// A rotation interrupted after preallocating the next segment but before
// writing its first frame: an all-zero tail segment is a clean end.
TEST(StoreSegment, PreallocatedButUnwrittenTailSegmentIsClean) {
  Chain c = build_chain("prealloc", 48);
  c.restore();
  const unsigned next_seq = static_cast<unsigned>(c.paths.size());
  spill(wal_segment_path(c.base, next_seq),
        std::vector<std::uint8_t>(128, 0));
  check_variant(c, c.total, /*want_nonzero_cut=*/false, "fresh tail seg");
}

}  // namespace
}  // namespace udc
