// Witness schema versioning (chaos/witness.h): the magic line
// "udc-witness v1" is the format gate.  Malformed or unsupported-version
// files surface as the typed WitnessFormatError — a subclass of
// InvariantViolation, so existing catch-alls still work, while tools can
// distinguish bad *input* (exit 2, see tools/udc_replay.cc and the ctest
// exit-code sweep in tools/CMakeLists.txt) from replay divergence (exit 1).
#include "udc/chaos/witness.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "udc/common/check.h"

namespace udc {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(UDC_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// The diagnostic a rejection carries; empty if the text parses.
std::string rejection_of(const std::string& text) {
  try {
    (void)parse_witness(text);
    return "";
  } catch (const WitnessFormatError& e) {
    return e.what();
  }
}

TEST(WitnessSchema, GoodFixturesParseUnderTheCurrentVersion) {
  ChaosWitness w = parse_witness(read_fixture("strongfd_perfect_dagger.witness"));
  EXPECT_EQ(w.scenario.protocol, "strongfd");
  ChaosWitness m = parse_witness(read_fixture("majority_tuseful_dagger.witness"));
  EXPECT_EQ(m.scenario.protocol, "majority");
}

TEST(WitnessSchema, BadMagicIsRejectedByName) {
  std::string why = rejection_of(read_fixture("bad_magic.witness"));
  EXPECT_NE(why.find("bad magic"), std::string::npos) << why;
}

TEST(WitnessSchema, UnsupportedVersionIsRejectedByNumber) {
  std::string why = rejection_of(read_fixture("bad_version.witness"));
  EXPECT_NE(why.find("unsupported witness version v2"), std::string::npos)
      << why;
  EXPECT_NE(why.find("this build reads v1"), std::string::npos) << why;
}

TEST(WitnessSchema, TruncationAndBadScriptLinesAreFormatErrors) {
  EXPECT_THROW((void)parse_witness(read_fixture("bad_truncated.witness")),
               WitnessFormatError);
  // The script block's own parser raises InvariantViolation; at the witness
  // boundary that converts to the typed format error (the file's fault).
  EXPECT_THROW((void)parse_witness(read_fixture("bad_script.witness")),
               WitnessFormatError);
  EXPECT_THROW((void)parse_witness(""), WitnessFormatError);
  EXPECT_THROW((void)replay_witness(read_fixture("bad_truncated.witness")),
               WitnessFormatError);
}

TEST(WitnessSchema, FormatErrorIsAnInvariantViolation) {
  // Subclassing keeps every pre-schema catch site working unchanged.
  EXPECT_THROW((void)parse_witness(read_fixture("bad_magic.witness")),
               InvariantViolation);
}

TEST(WitnessSchema, FormatterEmitsTheCurrentVersionAndRoundTrips) {
  ASSERT_EQ(kWitnessFormatVersion, 1);
  ChaosWitness w = parse_witness(read_fixture("strongfd_perfect_dagger.witness"));
  std::string text = format_witness(w);  // regenerates the run
  EXPECT_EQ(text.rfind("udc-witness v1\n", 0), 0u);
  ChaosWitness back = parse_witness(text);
  EXPECT_EQ(back.scenario.protocol, w.scenario.protocol);
  EXPECT_EQ(back.scenario.seed, w.scenario.seed);
  EXPECT_EQ(back.script, w.script);
  EXPECT_EQ(back.report.dc1, w.report.dc1);
  EXPECT_EQ(back.report.dc2, w.report.dc2);
  EXPECT_EQ(back.report.dc3, w.report.dc3);
}

TEST(WitnessSchema, AVersionBumpInTheTextIsTheOnlyChangeNeededToReject) {
  // Take a good witness and bump only the magic line: everything else is
  // valid v1 content, and it must still be refused up front.
  std::string text = read_fixture("strongfd_perfect_dagger.witness");
  ASSERT_EQ(text.rfind("udc-witness v1\n", 0), 0u);
  std::string bumped = "udc-witness v99\n" + text.substr(15);
  std::string why = rejection_of(bumped);
  EXPECT_NE(why.find("unsupported witness version v99"), std::string::npos)
      << why;
}

}  // namespace
}  // namespace udc
