// DC1-DC3 / DC2' checkers on hand-built runs, and agreement between the
// direct checkers and the formula semantics.
#include "udc/coord/spec.h"

#include <gtest/gtest.h>

#include "udc/logic/eval.h"

namespace udc {
namespace {

const ActionId kAlpha = make_action(0, 0);  // owned by p0

TEST(CoordSpec, VacuouslyAchievedWithNoActivity) {
  udc::Run r = std::move(Run::Builder(3).end_step()).build();
  std::vector<ActionId> actions{kAlpha};
  EXPECT_TRUE(check_udc(r, actions).achieved());
  EXPECT_TRUE(check_nudc(r, actions).achieved());
}

TEST(CoordSpec, HappyPathSatisfiesUdc) {
  Run::Builder b(2);
  b.append(0, Event::init(kAlpha)).end_step();
  b.append(0, Event::do_action(kAlpha)).end_step();
  b.append(1, Event::do_action(kAlpha)).end_step();
  udc::Run r = std::move(b).build();
  std::vector<ActionId> actions{kAlpha};
  CoordReport rep = check_udc(r, actions);
  EXPECT_TRUE(rep.achieved()) << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST(CoordSpec, Dc1ViolatedWhenInitiatorStalls) {
  Run::Builder b(2);
  b.append(0, Event::init(kAlpha)).end_step();
  b.end_step();
  udc::Run r = std::move(b).build();
  std::vector<ActionId> actions{kAlpha};
  CoordReport rep = check_udc(r, actions);
  EXPECT_FALSE(rep.dc1);
  EXPECT_TRUE(rep.dc2);  // nobody performed, so DC2 is vacuous
}

TEST(CoordSpec, Dc1SatisfiedByCrashInsteadOfDo) {
  Run::Builder b(2);
  b.append(0, Event::init(kAlpha)).end_step();
  b.append(0, Event::crash()).end_step();
  udc::Run r = std::move(b).build();
  std::vector<ActionId> actions{kAlpha};
  EXPECT_TRUE(check_udc(r, actions).dc1);
}

TEST(CoordSpec, Dc2ViolationIsTheUniformityGap) {
  // p0 inits, performs, crashes; p1 never performs.  UDC is violated (DC2)
  // but nUDC holds (DC2' exempts the crashed performer).
  Run::Builder b(2);
  b.append(0, Event::init(kAlpha)).end_step();
  b.append(0, Event::do_action(kAlpha)).end_step();
  b.append(0, Event::crash()).end_step();
  b.end_step();
  udc::Run r = std::move(b).build();
  std::vector<ActionId> actions{kAlpha};
  CoordReport udc = check_udc(r, actions);
  EXPECT_FALSE(udc.dc2);
  EXPECT_TRUE(udc.dc1);
  EXPECT_TRUE(udc.dc3);
  CoordReport nudc = check_nudc(r, actions);
  EXPECT_TRUE(nudc.achieved())
      << (nudc.violations.empty() ? "" : nudc.violations[0]);
}

TEST(CoordSpec, Dc2PrimeStillBindsForCorrectPerformers) {
  Run::Builder b(2);
  b.append(0, Event::init(kAlpha)).end_step();
  b.append(0, Event::do_action(kAlpha)).end_step();
  b.end_step();
  udc::Run r = std::move(b).build();
  std::vector<ActionId> actions{kAlpha};
  EXPECT_FALSE(check_nudc(r, actions).dc2);
}

TEST(CoordSpec, Dc3CatchesSpuriousPerform) {
  Run::Builder b(2);
  b.append(1, Event::do_action(kAlpha)).end_step();
  udc::Run r = std::move(b).build();
  std::vector<ActionId> actions{kAlpha};
  CoordReport rep = check_udc(r, actions);
  EXPECT_FALSE(rep.dc3);
}

TEST(CoordSpec, Dc3CatchesPerformBeforeInit) {
  Run::Builder b(2);
  b.append(1, Event::do_action(kAlpha)).end_step();
  b.append(0, Event::init(kAlpha)).end_step();
  b.append(0, Event::do_action(kAlpha)).end_step();
  udc::Run r = std::move(b).build();
  std::vector<ActionId> actions{kAlpha};
  EXPECT_FALSE(check_udc(r, actions).dc3);
}

TEST(CoordSpec, GraceExemptsLateInits) {
  Run::Builder b(2);
  for (int i = 0; i < 8; ++i) b.end_step();
  b.append(0, Event::init(kAlpha)).end_step();  // init at 9 of horizon 10
  b.end_step();
  udc::Run r = std::move(b).build();
  std::vector<ActionId> actions{kAlpha};
  EXPECT_FALSE(check_udc(r, actions, /*grace=*/0).dc1);
  EXPECT_TRUE(check_udc(r, actions, /*grace=*/3).dc1);
}

TEST(CoordSpec, FaultyNonPerformerSatisfiesDc2ByCrashing) {
  Run::Builder b(2);
  b.append(0, Event::init(kAlpha)).end_step();
  b.append(0, Event::do_action(kAlpha)).append(1, Event::crash()).end_step();
  udc::Run r = std::move(b).build();
  std::vector<ActionId> actions{kAlpha};
  EXPECT_TRUE(check_udc(r, actions).achieved());
}

// The formula semantics and the direct checker agree on a batch of runs
// covering all the cases above (grace = 0 on runs with enough slack).
TEST(CoordSpec, FormulaAndDirectCheckersAgree) {
  auto make_runs = [] {
    std::vector<udc::Run> runs;
    {
      Run::Builder b(2);  // happy path
      b.append(0, Event::init(kAlpha)).end_step();
      b.append(0, Event::do_action(kAlpha)).end_step();
      b.append(1, Event::do_action(kAlpha)).end_step();
      runs.push_back(std::move(b).build());
    }
    {
      Run::Builder b(2);  // DC2 violation
      b.append(0, Event::init(kAlpha)).end_step();
      b.append(0, Event::do_action(kAlpha)).end_step();
      b.append(0, Event::crash()).end_step();
      runs.push_back(std::move(b).build());
    }
    {
      Run::Builder b(2);  // DC3 violation
      b.append(1, Event::do_action(kAlpha)).end_step();
      b.end_step();
      b.end_step();
      runs.push_back(std::move(b).build());
    }
    return runs;
  };
  std::vector<ActionId> actions{kAlpha};
  std::vector<udc::Run> runs = make_runs();
  std::vector<bool> direct_udc, direct_nudc;
  for (const udc::Run& r : runs) {
    direct_udc.push_back(check_udc(r, actions).achieved());
    direct_nudc.push_back(check_nudc(r, actions).achieved());
  }
  System sys(make_runs());
  ModelChecker mc(sys);
  auto udc_f = udc_formula(kAlpha, 2);
  auto nudc_f = nudc_formula(kAlpha, 2);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    bool formula_udc = true;
    bool formula_nudc = true;
    for (Time m = 0; m <= sys.run(i).horizon(); ++m) {
      formula_udc &= mc.holds_at(Point{i, m}, udc_f);
      formula_nudc &= mc.holds_at(Point{i, m}, nudc_f);
    }
    EXPECT_EQ(formula_udc, direct_udc[i]) << "run " << i;
    EXPECT_EQ(formula_nudc, direct_nudc[i]) << "run " << i;
  }
}

TEST(Workload, MakeWorkloadShape) {
  auto w = make_workload(3, 2, 5, 4);
  ASSERT_EQ(w.size(), 6u);
  EXPECT_EQ(w[0].at, 5);
  EXPECT_EQ(w[0].p, 0);
  EXPECT_EQ(w[1].at, 9);
  EXPECT_EQ(w[1].p, 1);
  EXPECT_EQ(action_owner(w[4].action), 1);
  auto actions = workload_actions(w);
  EXPECT_EQ(actions.size(), 6u);
  // All distinct.
  std::sort(actions.begin(), actions.end());
  EXPECT_EQ(std::unique(actions.begin(), actions.end()), actions.end());
}

TEST(Workload, ActionOwnerEncoding) {
  EXPECT_EQ(action_owner(make_action(5, 123)), 5);
  EXPECT_EQ(action_owner(make_action(0, 0)), 0);
  EXPECT_NE(make_action(1, 0), make_action(0, 1));
}

}  // namespace
}  // namespace udc
