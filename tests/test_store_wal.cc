// WAL + record codec (store/wal.h, store/codec.h): the durable form of a
// process's recorded history.  The load-bearing property is the tolerant
// reader: for ANY byte-level corruption of the file — truncation at an
// arbitrary byte, a flipped byte, appended garbage — read_wal_file returns
// exactly the longest valid frame prefix and never throws, because that
// prefix is the suffix-loss model the recovery protocol (DESIGN.md §9) is
// built on.
#include "udc/store/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "udc/common/rng.h"
#include "udc/store/codec.h"
#include "udc/store/crc32.h"

namespace udc {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  fs::path d = fs::temp_directory_path() / ("udc_store_" + name);
  fs::remove_all(d);
  fs::create_directories(d);
  return d;
}

void write_bytes(const fs::path& p, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// One record of every event kind, every message-bearing field exercised.
std::vector<StoreRecord> sample_records() {
  Message alpha;
  alpha.kind = MsgKind::kAlpha;
  alpha.action = 7;
  Message gossip;
  gossip.kind = MsgKind::kSuspicionGossip;
  gossip.procs = ProcSet::full(3);
  gossip.a = -4;
  gossip.b = 1'234'567'890'123LL;
  ProcSet s;
  s.insert(1);
  s.insert(2);
  return {
      {1, Event::init(5)},         {2, Event::send(2, alpha)},
      {3, Event::recv(0, gossip)}, {4, Event::do_action(5)},
      {5, Event::suspect(s)},      {6, Event::suspect_gen(s, 1)},
      {7, Event::crash()},
  };
}

// --- codec ----------------------------------------------------------------

TEST(StoreCodec, RoundTripsEveryEventKind) {
  for (const StoreRecord& r : sample_records()) {
    std::vector<std::uint8_t> bytes = encode_record(r);
    ASSERT_GT(bytes.size(), 0u);
    ASSERT_LE(bytes.size(), kMaxStoreRecordBytes);
    auto back = decode_record(bytes.data(), bytes.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, r);
  }
}

TEST(StoreCodec, DecodeIsTotalShortBuffersAndBadTagsYieldNullopt) {
  std::vector<std::uint8_t> bytes = encode_record(sample_records()[0]);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(decode_record(bytes.data(), len).has_value()) << len;
  }
  // sample_records()[0] is {t=1, Event::init(5)}: t and peer are both
  // one-byte varints, so the raw event-kind tag sits at offset 1 and the
  // message-kind tag at offset 3.
  std::vector<std::uint8_t> bad_kind = bytes;
  bad_kind[1] = 0xFF;  // event kind tag
  EXPECT_FALSE(decode_record(bad_kind.data(), bad_kind.size()).has_value());
  std::vector<std::uint8_t> bad_msg = bytes;
  bad_msg[3] = 0xFF;  // message kind tag
  EXPECT_FALSE(decode_record(bad_msg.data(), bad_msg.size()).has_value());
}

TEST(StoreCodec, TypicalRecordsEncodeCompactly) {
  // The varint layout is a throughput claim, not just a format: fdatasync
  // writeback is priced per dirty byte, so a regression that re-inflates
  // send/recv records to their flat 66-byte ancestor shows up here first.
  Message m;
  m.kind = MsgKind::kApp;
  m.a = 1'000'000;
  EXPECT_LE(encode_record({1'000, Event::send(1, m)}).size(), 20u);
  EXPECT_LE(encode_record({1'001, Event::recv(0, m)}).size(), 20u);
  EXPECT_LE(encode_record({1'002, Event::do_action(7)}).size(), 20u);
}

TEST(StoreCodec, Crc32MatchesTheReferenceVector) {
  // The standard check value for reflected CRC-32 (IEEE 802.3).
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
}

TEST(StoreCodec, Crc32cMatchesTheReferenceVector) {
  // The standard check value for reflected CRC-32C (Castagnoli) — the WAL
  // frame checksum.  Pinned through BOTH entry points, so a machine where
  // the hardware dispatch kicks in proves the same polynomial as one where
  // the table walk runs.
  const char* s = "123456789";
  EXPECT_EQ(crc32c(s, 9), 0xE3069283u);
  EXPECT_EQ(crc32c_sw(s, 9), 0xE3069283u);
}

TEST(StoreCodec, Crc32cHardwareAgreesWithSoftwareOnRandomBuffers) {
  // The dispatched crc32c must be byte-identical to the table walk for
  // every length 0..256 (covers the 8-byte main loop, the byte tail, and
  // empty input) — otherwise a hardware box and a fallback box would
  // silently disagree about which WAL frames are valid.
  Rng rng(20260808);
  std::vector<std::uint8_t> buf(256);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_below(256));
  for (std::size_t len = 0; len <= buf.size(); ++len) {
    EXPECT_EQ(crc32c(buf.data(), len), crc32c_sw(buf.data(), len)) << len;
    EXPECT_EQ(crc32c(buf.data(), len, /*seed=*/0xDEADBEEFu),
              crc32c_sw(buf.data(), len, 0xDEADBEEFu))
        << len;
  }
}

// --- writer / reader ------------------------------------------------------

TEST(StoreWal, AppendedFramesReadBackInOrder) {
  fs::path dir = fresh_dir("roundtrip");
  std::string path = (dir / "p.wal").string();
  const std::vector<StoreRecord> recs = sample_records();
  {
    WalWriter w(path, FsyncPolicy::kEveryAppend, 1);
    for (const StoreRecord& r : recs) w.append(r);
    EXPECT_EQ(w.frames_appended(), recs.size());
    EXPECT_EQ(w.bytes_synced(), w.bytes_written());
  }
  WalReadResult r = read_wal_file(path);
  EXPECT_FALSE(r.tail_corrupt);
  EXPECT_EQ(r.valid_bytes, r.file_bytes);
  ASSERT_EQ(r.records.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(r.records[i], recs[i]);
  }
  fs::remove_all(dir);
}

TEST(StoreWal, MissingFileReadsAsEmptyNotAsAnError) {
  WalReadResult r = read_wal_file("/nonexistent/dir/p.wal");
  EXPECT_TRUE(r.records.empty());
  EXPECT_EQ(r.file_bytes, 0u);
  EXPECT_FALSE(r.tail_corrupt);
}

TEST(StoreWal, ShortReadChunksSeeTheSameLog) {
  fs::path dir = fresh_dir("shortread");
  std::string path = (dir / "p.wal").string();
  const std::vector<StoreRecord> recs = sample_records();
  WalWriter w(path, FsyncPolicy::kEveryAppend, 1);
  for (const StoreRecord& r : recs) w.append(r);
  // A 3-byte read chunk splits every frame header; the reader must still
  // assemble the identical log.
  WalReadResult full = read_wal_file(path);
  WalReadResult chunked = read_wal_file(path, /*max_read_chunk=*/3);
  EXPECT_EQ(chunked.records, full.records);
  EXPECT_EQ(chunked.valid_bytes, full.valid_bytes);
  fs::remove_all(dir);
}

TEST(StoreWal, FsyncPolicyGovernsTheSyncedWatermark) {
  fs::path dir = fresh_dir("fsync");
  std::string path = (dir / "p.wal").string();
  const std::vector<StoreRecord> recs = sample_records();
  WalWriter w(path, FsyncPolicy::kEveryN, /*fsync_every=*/2);
  w.append(recs[0]);
  EXPECT_LT(w.bytes_synced(), w.bytes_written());  // one frame unsynced
  w.append(recs[1]);
  EXPECT_EQ(w.bytes_synced(), w.bytes_written());  // batch of 2 flushed
  // A failing fsync is swallowed and counted; the watermark does not move.
  w.set_sync_failing(true);
  w.append(recs[2]);
  w.append(recs[3]);
  EXPECT_LT(w.bytes_synced(), w.bytes_written());
  EXPECT_GE(w.sync_failures(), 1u);
  // Once the device recovers an explicit sync catches up.
  w.set_sync_failing(false);
  w.sync();
  EXPECT_EQ(w.bytes_synced(), w.bytes_written());
  fs::remove_all(dir);
}

TEST(StoreWal, RepairCutsACorruptTailAndIsIdempotent) {
  fs::path dir = fresh_dir("repair");
  std::string path = (dir / "p.wal").string();
  const std::vector<StoreRecord> recs = sample_records();
  {
    WalWriter w(path, FsyncPolicy::kEveryAppend, 1);
    for (const StoreRecord& r : recs) w.append(r);
  }
  // Torn write: a strict prefix of one more frame.
  std::vector<std::uint8_t> frame = wal_frame(encode_record(recs[0]));
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size() / 2));
  }
  EXPECT_TRUE(read_wal_file(path).tail_corrupt);
  EXPECT_TRUE(repair_wal_file(path));   // cut happened
  EXPECT_FALSE(repair_wal_file(path));  // already clean
  WalReadResult r = read_wal_file(path);
  EXPECT_FALSE(r.tail_corrupt);
  ASSERT_EQ(r.records.size(), recs.size());
  fs::remove_all(dir);
}

// --- the torture property -------------------------------------------------

// 1000 seeded corruption variants (truncate at a random byte / flip a random
// byte / append random garbage) against a known-good log.  Every variant
// must recover EXACTLY the longest valid frame prefix — computed from the
// corruption site, not just "some prefix" — with zero throws, and repair
// must reach a clean fixpoint.
TEST(StoreWal, TortureAlwaysRecoversExactlyTheLongestValidPrefix) {
  fs::path dir = fresh_dir("torture");
  std::vector<StoreRecord> recs;
  for (Time t = 1; t <= 8; ++t) {
    recs.push_back({t, Event::do_action(t % 3)});
  }
  std::vector<std::uint8_t> clean;
  std::vector<std::size_t> boundary;  // byte offset after each frame
  for (const StoreRecord& r : recs) {
    std::vector<std::uint8_t> f = wal_frame(encode_record(r));
    clean.insert(clean.end(), f.begin(), f.end());
    boundary.push_back(clean.size());
  }
  auto frames_before = [&](std::size_t byte) {
    // Frames wholly contained in [0, byte).
    std::size_t n = 0;
    while (n < boundary.size() && boundary[n] <= byte) ++n;
    return n;
  };

  Rng rng(20260806);
  fs::path p = dir / "victim.wal";
  for (int variant = 0; variant < 1'000; ++variant) {
    std::vector<std::uint8_t> bytes = clean;
    std::size_t expected = recs.size();
    switch (rng.next_below(3)) {
      case 0: {  // truncation at an arbitrary byte
        std::size_t cut = static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(bytes.size()) + 1));
        bytes.resize(cut);
        expected = frames_before(cut);
        break;
      }
      case 1: {  // single-byte flip (CRC-32 detects every one)
        std::size_t off = static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(bytes.size())));
        bytes[off] ^= 0xFFu;
        expected = frames_before(off);  // the flipped frame and later are cut
        break;
      }
      case 2: {  // appended garbage
        std::size_t extra = 1 + static_cast<std::size_t>(rng.next_below(64));
        for (std::size_t i = 0; i < extra; ++i) {
          bytes.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
        }
        break;  // expected stays recs.size()
      }
    }
    write_bytes(p, bytes);

    WalReadResult r = read_wal_file(p.string());  // must not throw
    ASSERT_EQ(r.records.size(), expected) << "variant " << variant;
    for (std::size_t i = 0; i < r.records.size(); ++i) {
      ASSERT_EQ(r.records[i], recs[i]) << "variant " << variant;
    }
    repair_wal_file(p.string());
    WalReadResult fixed = read_wal_file(p.string());
    ASSERT_FALSE(fixed.tail_corrupt) << "variant " << variant;
    ASSERT_EQ(fixed.records.size(), expected) << "variant " << variant;
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace udc
