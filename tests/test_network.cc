#include "udc/net/network.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace udc {
namespace {

Message app_msg(std::int64_t tag) {
  Message m;
  m.kind = MsgKind::kApp;
  m.a = tag;
  return m;
}

TEST(Network, ReliableDeliversWithinMaxDelay) {
  Network net(2, std::make_shared<IidDropPolicy>(0.0), /*max_delay=*/3,
              /*seed=*/1);
  net.send(0, 1, app_msg(42), /*now=*/1);
  EXPECT_EQ(net.in_flight(), 1u);
  bool delivered = false;
  for (Time m = 2; m <= 4 && !delivered; ++m) {
    if (auto d = net.pop_deliverable(1, m)) {
      delivered = true;
      EXPECT_EQ(d->from, 0);
      EXPECT_EQ(d->msg.a, 42);
    }
  }
  EXPECT_TRUE(delivered);
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST(Network, NoDeliveryBeforeMinimumDelay) {
  Network net(2, std::make_shared<IidDropPolicy>(0.0), 3, 1);
  net.send(0, 1, app_msg(1), 5);
  EXPECT_FALSE(net.pop_deliverable(1, 5).has_value());  // delay >= 1
}

TEST(Network, AlwaysDropPolicyDropsEverything) {
  Network net(2, std::make_shared<IidDropPolicy>(1.0), 3, 1);
  for (int i = 0; i < 20; ++i) net.send(0, 1, app_msg(i), 1);
  EXPECT_EQ(net.total_sent(), 20u);
  EXPECT_EQ(net.total_dropped(), 20u);
  EXPECT_EQ(net.in_flight(), 0u);
  EXPECT_FALSE(net.pop_deliverable(1, 100).has_value());
}

TEST(Network, FairLossyDeliversSomeOfMany) {
  Network net(2, std::make_shared<IidDropPolicy>(0.5), 2, 7);
  for (int i = 0; i < 200; ++i) net.send(0, 1, app_msg(1), i + 1);
  std::size_t got = 0;
  for (Time m = 1; m <= 300; ++m) {
    while (net.pop_deliverable(1, m)) ++got;
  }
  // Statistically ~100; any generous bounds prove fairness-in-expectation.
  EXPECT_GT(got, 50u);
  EXPECT_LT(got, 150u);
  EXPECT_EQ(got + net.total_dropped(), 200u);
}

TEST(Network, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    Network net(2, std::make_shared<IidDropPolicy>(0.3), 4, seed);
    std::vector<std::int64_t> order;
    for (int i = 0; i < 50; ++i) net.send(0, 1, app_msg(i), 1);
    for (Time m = 1; m <= 10; ++m) {
      while (auto d = net.pop_deliverable(1, m)) order.push_back(d->msg.a);
    }
    return order;
  };
  EXPECT_EQ(run_once(11), run_once(11));
  EXPECT_NE(run_once(11), run_once(12));
}

TEST(Network, PartitionPolicySilencesChannelAfterCut) {
  auto policy = std::make_shared<PartitionDropPolicy>(
      ProcSet::singleton(0), ProcSet::singleton(1), /*cut_time=*/10,
      /*background_drop=*/0.0);
  Network net(3, policy, 1, 1);
  net.send(0, 1, app_msg(1), 5);   // before the cut: kept
  net.send(0, 1, app_msg(2), 10);  // at the cut: dropped
  net.send(0, 2, app_msg(3), 20);  // different recipient: kept
  net.send(2, 1, app_msg(4), 20);  // different sender: kept
  EXPECT_EQ(net.total_dropped(), 1u);
  EXPECT_TRUE(net.pop_deliverable(1, 6).has_value());
  EXPECT_TRUE(net.pop_deliverable(2, 21).has_value());
  EXPECT_TRUE(net.pop_deliverable(1, 21).has_value());
  EXPECT_FALSE(net.pop_deliverable(1, 50).has_value());
}

TEST(Network, GilbertElliottProducesBursts) {
  // With sticky states (low transition probabilities), losses cluster:
  // measure the longest drop burst and compare against i.i.d. loss of the
  // same average rate.
  auto longest_burst = [](std::shared_ptr<DropPolicy> policy,
                          std::uint64_t seed) {
    Network net(2, std::move(policy), 1, seed);
    int burst = 0, worst = 0;
    std::size_t dropped_before = 0;
    for (int i = 0; i < 2000; ++i) {
      net.send(0, 1, app_msg(1), i + 1);
      bool dropped = net.total_dropped() > dropped_before;
      dropped_before = net.total_dropped();
      burst = dropped ? burst + 1 : 0;
      worst = std::max(worst, burst);
    }
    return worst;
  };
  // GE with p_gb=0.02, p_bg=0.1: stationary bad fraction ~1/6, mean burst
  // length 10.
  int ge = longest_burst(std::make_shared<GilbertElliottPolicy>(0.02, 0.1), 5);
  int iid = longest_burst(std::make_shared<IidDropPolicy>(1.0 / 6.0), 5);
  EXPECT_GT(ge, 15);
  EXPECT_LT(iid, 15);
}

TEST(Network, GilbertElliottStatesArePerChannel) {
  // A bad episode on 0->1 must not imply drops on 0->2.
  auto policy = std::make_shared<GilbertElliottPolicy>(0.5, 0.05);
  Network net(3, policy, 1, 9);
  std::size_t delivered_12 = 0;
  for (int i = 0; i < 400; ++i) {
    net.send(0, 1, app_msg(1), i + 1);
    net.send(0, 2, app_msg(1), i + 1);
  }
  for (Time m = 1; m <= 500; ++m) {
    while (net.pop_deliverable(2, m)) ++delivered_12;
  }
  // Channel 0->2 has its own chain; it cannot be starved just because 0->1
  // is (both see the same parameters, so both deliver a nontrivial share).
  EXPECT_GT(delivered_12, 20u);
}

TEST(Network, GilbertElliottIsFairInTheLimit) {
  // As long as p_bad_to_good > 0, repeated sends get through: the fairness
  // R5 premise the simulator's protocols rely on.
  auto policy = std::make_shared<GilbertElliottPolicy>(0.3, 0.2);
  Network net(2, policy, 1, 11);
  for (int i = 0; i < 300; ++i) net.send(0, 1, app_msg(1), i + 1);
  std::size_t got = 0;
  for (Time m = 1; m <= 400; ++m) {
    while (net.pop_deliverable(1, m)) ++got;
  }
  EXPECT_GT(got, 50u);
}

TEST(Network, DelaysRespectConfiguredBounds) {
  for (int max_delay : {1, 3, 7}) {
    Network net(2, std::make_shared<IidDropPolicy>(0.0), max_delay, 99);
    std::vector<Time> latencies;
    for (int i = 0; i < 200; ++i) {
      Time sent = i * 20 + 1;
      net.send(0, 1, app_msg(i), sent);
      for (Time m = sent; m <= sent + max_delay; ++m) {
        if (auto d = net.pop_deliverable(1, m)) {
          latencies.push_back(m - sent);
          break;
        }
      }
    }
    ASSERT_EQ(latencies.size(), 200u) << "a message overshot max_delay";
    Time lo = *std::min_element(latencies.begin(), latencies.end());
    Time hi = *std::max_element(latencies.begin(), latencies.end());
    EXPECT_GE(lo, 1);
    EXPECT_LE(hi, max_delay);
    if (max_delay > 1) {
      EXPECT_LT(lo, hi);  // the delay really varies
    }
  }
}

TEST(Network, PerRecipientQueuesAreIndependent) {
  Network net(3, std::make_shared<IidDropPolicy>(0.0), 1, 1);
  net.send(0, 1, app_msg(1), 1);
  net.send(0, 2, app_msg(2), 1);
  auto d1 = net.pop_deliverable(1, 2);
  auto d2 = net.pop_deliverable(2, 2);
  ASSERT_TRUE(d1 && d2);
  EXPECT_EQ(d1->msg.a, 1);
  EXPECT_EQ(d2->msg.a, 2);
}

}  // namespace
}  // namespace udc
