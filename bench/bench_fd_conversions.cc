// Experiment P2.1/P2.2 — failure-detector conversions:
//   Prop 2.1: weak (resp. impermanent-weak) -> strong (resp.
//             impermanent-strong) completeness, via suspicion gossip.
//   Prop 2.2: impermanent-strong -> strong, by accumulating reports.
// Both preserve accuracy.  We print the property profile before and after
// each conversion over a crash-plan sweep.
#include "bench_util.h"

#include "udc/coord/nudc_protocol.h"
#include "udc/fd/convert.h"

namespace udc::bench {
namespace {

constexpr int kN = 5;
constexpr Time kHorizon = 320;
constexpr Time kGrace = 120;

System gossip_system(const OracleFactory& oracle) {
  SimConfig sim;
  sim.n = kN;
  sim.horizon = kHorizon;
  sim.channel.drop_prob = 0.25;
  auto plans = all_crash_plans_up_to(kN, kN - 1, 25, 120);
  return generate_system(sim, plans, {}, oracle, [](ProcessId) {
    return std::make_unique<SuspicionGossiper>();
  }, 1);
}

void report_line(const char* label, const FdPropertyReport& rep) {
  std::printf("  %-34s %-18s | %s\n", label,
              fd_class_name(strongest_class(rep)), rep.summary().c_str());
}

void run() {
  std::printf("Props 2.1 / 2.2: detector conversions preserve accuracy and "
              "upgrade completeness (n=%d, %zu-plan sweep)\n", kN,
              all_crash_plans_up_to(kN, kN - 1, 25, 120).size());

  heading("Prop 2.2: impermanent-strong -> strong (report accumulation)");
  {
    System sys = gossip_system(
        [] { return std::make_unique<ImpermanentStrongOracle>(4); });
    report_line("before", check_fd_properties(sys, kGrace));
    System converted = convert_impermanent_to_permanent(sys);
    report_line("after", check_fd_properties(converted, kGrace));
  }

  heading("Prop 2.1: weak -> strong (suspicion gossip)");
  {
    System sys =
        gossip_system([] { return std::make_unique<WeakOracle>(4, 0.1); });
    report_line("before", check_fd_properties(sys, kGrace));
    System converted = convert_weak_to_strong_via_gossip(sys);
    report_line("after", check_fd_properties(converted, kGrace));
  }

  heading("Prop 2.1 + 2.2 composed: impermanent-weak -> strong");
  {
    System sys = gossip_system(
        [] { return std::make_unique<ImpermanentWeakOracle>(4); });
    report_line("before", check_fd_properties(sys, kGrace));
    System converted = convert_weak_to_strong_via_gossip(sys);
    report_line("after", check_fd_properties(converted, kGrace));
  }

  heading("control: conversions cannot mint accuracy");
  {
    // A strong detector with false suspicions stays merely strong: the
    // conversions upgrade completeness, never accuracy.
    System sys =
        gossip_system([] { return std::make_unique<StrongOracle>(4, 0.5); });
    report_line("before (strong, noisy)", check_fd_properties(sys, kGrace));
    System converted = convert_weak_to_strong_via_gossip(sys);
    report_line("after", check_fd_properties(converted, kGrace));
  }
}

}  // namespace
}  // namespace udc::bench

int main() {
  return udc::guarded_main("bench_fd_conversions",
                           [] {
    udc::bench::run();
    return 0;
  });
}
