// Experiment T4.3 — Theorem 4.3: a system attaining UDC in a context with
// at most t failures simulates a t-USEFUL GENERALIZED detector via the
// f'(r) construction (P3'): the odd-step report is (S_l, k) with
// l = |r_p(m+1)| mod 2^n and k = max known-crashed count within S_l.
//
// Positive: bounded-t UDC systems -> R^f' t-useful, for each t.
// Controls: generalized accuracy holds for any source; the silenced-twin
// system (no UDC) fails generalized completeness.
#include "bench_util.h"

#include "udc/coord/nudc_protocol.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/kt/simulate_fd.h"

namespace udc::bench {
namespace {

constexpr int kN = 3;
constexpr Time kHorizon = 220;
constexpr Time kGrace = 90;

System udc_source(int t, std::uint64_t seed) {
  SimConfig sim;
  sim.n = kN;
  sim.horizon = kHorizon;
  sim.channel.drop_prob = 0.25;
  sim.seed = seed;
  auto workload = make_workload(kN, 2, 4, 6);
  auto plans = all_crash_plans_up_to(kN, t, 15, 60);
  // Parallel generation + sharded index build; bit-identical to the serial
  // factory (test_parallel.cc / test_checker_parallel.cc).
  return generate_system_parallel(
      sim, plans, workload, [] { return std::make_unique<PerfectOracle>(4); },
      [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); }, 1);
}

void run() {
  std::printf("Thm 4.3: bounded-t UDC systems simulate t-useful generalized "
              "FDs (f'(r), P3'); n=%d\n", kN);

  heading("positive direction: R^f' from UDC systems, per t");
  for (int t = 1; t <= kN - 1; ++t) {
    System sys = udc_source(t, 30 + static_cast<std::uint64_t>(t));
    auto workload = make_workload(kN, 2, 4, 6);
    auto actions = workload_actions(workload);
    bool udc = check_udc(sys, actions, kGrace).achieved();
    System rfp = build_rf_prime(sys);
    GenFdReport rep = check_t_useful(rfp, t, 2 * kGrace);
    std::printf("  t=%d: source-UDC=%-8s  R^f' t-useful=%-8s (accuracy=%s, "
                "completeness=%s) %s\n",
                t, verdict(udc), rep.t_useful() ? "YES" : "NO",
                rep.generalized_strong_accuracy ? "Y" : "N",
                rep.generalized_impermanent_strong_completeness ? "Y" : "N",
                rep.t_useful() ? "[as predicted]" : "[UNEXPECTED]");
  }

  heading("control: generalized accuracy is unconditional");
  {
    SimConfig sim;
    sim.n = kN;
    sim.horizon = 120;
    sim.channel.drop_prob = 0.5;
    auto plans = all_crash_plans_up_to(kN, kN, 10, 50);
    auto workload = make_workload(kN, 1, 3, 5);
    System sys = generate_system(
        sim, plans, workload, nullptr,
        [](ProcessId) { return std::make_unique<NUdcProcess>(); }, 2);
    System rfp = build_rf_prime(sys);
    GenFdReport rep = check_t_useful(rfp, kN - 1, /*grace=*/120);
    std::printf("  nUDC source (no FD): generalized accuracy = %s\n",
                rep.generalized_strong_accuracy ? "Y [as predicted]"
                                                : "N [UNEXPECTED]");
  }

  heading("control: without UDC, t-usefulness fails (silenced twins)");
  {
    SimConfig sim;
    sim.n = kN;
    sim.horizon = 120;
    sim.channel.custom_policy = std::make_shared<PartitionDropPolicy>(
        ProcSet::singleton(2), ProcSet::full(kN), 0, 0.0);
    std::vector<InitDirective> workload{{3, 0, make_action(0, 0)}};
    auto protocol = [](ProcessId) { return std::make_unique<NUdcProcess>(); };
    std::vector<Run> runs;
    runs.push_back(simulate(sim, make_crash_plan(kN, {{2, 30}}), nullptr,
                            workload, protocol)
                       .run);
    runs.push_back(
        simulate(sim, no_crashes(kN), nullptr, workload, protocol).run);
    System sys(std::move(runs));
    System rfp = build_rf_prime(sys);
    // t = 2 >= n/2: usefulness genuinely requires knowing the crash (for
    // t = 1 < n/2 even content-free reports would be useful — Cor 4.2).
    GenFdReport rep = check_t_useful(rfp, 2, 0);
    std::printf("  p2 silenced, crash-vs-no-crash twins: 2-useful = %s\n",
                rep.t_useful() ? "YES [UNEXPECTED]" : "NO [as predicted]");
  }
}

}  // namespace
}  // namespace udc::bench

int main() {
  return udc::guarded_main("bench_thm_4_3",
                           [] {
    udc::bench::run();
    return 0;
  });
}
