// Experiment P3.4 — Proposition 3.4: if a system satisfies A1 (failure
// independence) and A5_{n-1} (any n-1 processes may fail), then weak
// accuracy and strong accuracy coincide.
//
// Two empirical panels plus the proof replayed computationally:
//   (a) a shared-seed, exhaustive-plan system with an accurate detector:
//       high A1 coverage, weak AND strong accuracy hold;
//   (b) a noisy weakly-accurate detector: strong accuracy fails — and for
//       EVERY strong-accuracy violation we exhibit the A1-extension that
//       would violate weak accuracy (all-but-the-victim crash), i.e. such a
//       system cannot satisfy A1+A5 — which is the proposition's content.
#include "bench_util.h"

#include "udc/coord/nudc_protocol.h"
#include "udc/kt/assumptions.h"

namespace udc::bench {
namespace {

constexpr int kN = 4;

System fd_system(const OracleFactory& oracle, std::uint64_t seed) {
  SimConfig sim;
  sim.n = kN;
  sim.horizon = 200;
  sim.channel.drop_prob = 0.2;
  sim.seed = seed;
  auto workload = make_workload(kN, 1, 3, 5);
  std::vector<Run> runs;
  for (const CrashPlan& plan :
       all_crash_plans_up_to(kN, kN - 1, 40, 120)) {
    std::unique_ptr<FdOracle> o = oracle();
    runs.push_back(simulate(sim, plan, o.get(), workload, [](ProcessId) {
                     return std::make_unique<NUdcProcess>();
                   }).run);
  }
  return System(std::move(runs));
}

// Counts strong-accuracy violations and, for each, confirms that crashing
// Proc - {victim} (possible under A5_{n-1}, attachable at this very point
// under A1) makes the victim the sole correct process while suspected —
// a weak-accuracy violation in the extension.
void replay_proof(const System& sys) {
  std::size_t violations = 0;
  std::size_t extension_breaks_weak_accuracy = 0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const Run& r = sys.run(i);
    for (ProcessId p = 0; p < sys.n(); ++p) {
      const History& h = r.history(p);
      for (std::size_t e = 0; e < h.size(); ++e) {
        if (h[e].kind != EventKind::kSuspect) continue;
        Time m = r.event_time(p, e);
        for (ProcessId q : h[e].suspects) {
          if (r.crashed_by(q, m)) continue;
          ++violations;  // p suspects live q: strong accuracy broken here
          // The A1-extension: F = Proc - {q}.  q is then the only correct
          // process and it has been suspected — weak accuracy cannot hold.
          // The check is definitional; count it to make the 1:1 mapping
          // visible in the output.
          ++extension_breaks_weak_accuracy;
        }
      }
    }
  }
  std::printf("  strong-accuracy violations: %zu; A1-extensions in which the "
              "victim is the lone correct (and suspected) process: %zu\n",
              violations, extension_breaks_weak_accuracy);
}

void run() {
  std::printf("Prop 3.4: under A1 + A5_{n-1}, weak accuracy <=> strong "
              "accuracy (n=%d)\n", kN);

  heading("(a) accurate detector on an A1/A5-rich system");
  {
    System sys =
        fd_system([] { return std::make_unique<PerfectOracle>(4); }, 7);
    FdPropertyReport rep = check_fd_properties(sys, 60);
    AssumptionReport a5 = check_a5t(sys, kN - 1);
    AssumptionReport a1 = check_a1(sys, 8, 36);
    std::printf("  weak-acc=%s strong-acc=%s | A5_{n-1}: %zu/%zu  A1 "
                "(pre-crash window): %zu/%zu\n",
                rep.weak_accuracy ? "Y" : "N",
                rep.strong_accuracy ? "Y" : "N", a5.satisfied, a5.checked,
                a1.satisfied, a1.checked);
  }

  heading("(b) noisy weakly-accurate detector (false suspicions)");
  {
    System sys =
        fd_system([] { return std::make_unique<StrongOracle>(4, 0.4); }, 7);
    FdPropertyReport rep = check_fd_properties(sys, 60);
    AssumptionReport a1 = check_a1(sys, 8, 36);
    std::printf("  weak-acc=%s strong-acc=%s | A1 coverage %.2f — the system "
                "escapes the proposition only by violating A1\n",
                rep.weak_accuracy ? "Y" : "N",
                rep.strong_accuracy ? "Y" : "N", a1.coverage());
    replay_proof(sys);
  }

  std::printf("\nShape: panel (a) has both accuracies; panel (b) shows every "
              "false suspicion maps to an A1-extension that would break weak "
              "accuracy — so with A1+A5 the two notions coincide.\n");
}

}  // namespace
}  // namespace udc::bench

int main() {
  return udc::guarded_main("bench_prop_3_4",
                           [] {
    udc::bench::run();
    return 0;
  });
}
