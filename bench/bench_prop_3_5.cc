// Experiment P3.5 — Proposition 3.5: the knowledge precondition of
// performing.  At every point where a correct process has just performed α
// in a UDC-attaining system (generated under A1-A4-style richness):
//
//   antecedent:  K_p( init(α) ∧ ∧_q ◇(K_q init(α) ∨ crash(q)) )
//   consequent:  K_p( ∨_q □¬crash(q) ⇒ ∨_q (K_q init(α) ∧ □¬crash(q)) )
//
// both hold — "p knows that if anyone at all stays up, some never-crashing
// process knows the action was initiated".  We model-check both formulas at
// every perform point and report counts, plus timing for the model checker.
#include <chrono>

#include "bench_util.h"

#include "udc/coord/udc_strongfd.h"
#include "udc/logic/eval.h"

namespace udc::bench {
namespace {

constexpr int kN = 3;

void run() {
  std::printf("Prop 3.5: knowledge precondition at perform points (n=%d)\n",
              kN);
  SimConfig sim;
  sim.n = kN;
  sim.horizon = 200;
  sim.channel.drop_prob = 0.25;
  sim.seed = 21;
  auto workload = make_workload(kN, 1, 4, 6);
  auto actions = workload_actions(workload);
  auto workloads = workload_variants(workload);
  auto plans = all_crash_plans_up_to(kN, kN - 1, 20, 60);
  System sys = generate_system_multi(
      sim, plans, workloads, [] { return std::make_unique<PerfectOracle>(4); },
      [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); }, 1);
  std::printf("system: %zu runs, horizon %lld\n", sys.size(),
              static_cast<long long>(sim.horizon));

  ModelChecker mc(sys);
  std::size_t points = 0, antecedent_holds = 0, consequent_holds = 0;
  auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const Run& r = sys.run(i);
    for (ActionId alpha : actions) {
      ProcessId p_prime = action_owner(alpha);
      std::vector<FormulaPtr> learn, someone_up, witness;
      for (ProcessId q = 0; q < kN; ++q) {
        learn.push_back(f_eventually(
            f_or(f_knows(q, f_init(p_prime, alpha)), f_crash(q))));
        someone_up.push_back(f_always(f_not(f_crash(q))));
        witness.push_back(f_and(f_knows(q, f_init(p_prime, alpha)),
                                f_always(f_not(f_crash(q)))));
      }
      for (ProcessId p = 0; p < kN; ++p) {
        auto m_do = r.first_event_time(p, [alpha](const Event& e) {
          return e.kind == EventKind::kDo && e.action == alpha;
        });
        if (!m_do || r.is_faulty(p)) continue;
        ++points;
        Point at{i, *m_do};
        auto antecedent = f_knows(
            p, Formula::conjunction(
                   {f_init(p_prime, alpha), Formula::conjunction(learn)}));
        auto consequent =
            f_knows(p, f_implies(Formula::disjunction(someone_up),
                                 Formula::disjunction(witness)));
        if (mc.holds_at(at, antecedent)) ++antecedent_holds;
        if (mc.holds_at(at, consequent)) ++consequent_holds;
      }
    }
  }
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  std::printf("perform points checked:    %zu\n", points);
  std::printf("antecedent holds:          %zu/%zu\n", antecedent_holds,
              points);
  std::printf("consequent holds:          %zu/%zu\n", consequent_holds,
              points);
  std::printf("model-checker time:        %.2fs (%zu cache entries)\n",
              elapsed, mc.cache_entries());
  // Memory trajectory of the memo cache: the packed layout spends 2 bits
  // per point, lazily; the pre-interning layout spent 1 eagerly-allocated
  // byte per runs × (max_horizon + 1) slot for every touched formula.
  const std::size_t legacy_bytes =
      mc.cache_tables() * sys.size() *
      static_cast<std::size_t>(sys.max_horizon() + 1);
  std::printf("checker cache memory:      %zu bytes packed (%zu formulas, "
              "%zu points dense); legacy layout: %zu bytes (%.1fx)\n",
              mc.cache_bytes(), mc.cache_tables(), sys.total_points(),
              legacy_bytes,
              mc.cache_bytes() ? static_cast<double>(legacy_bytes) /
                                     static_cast<double>(mc.cache_bytes())
                               : 0.0);
  std::printf("\nShape: both 100%% — performing implies knowing that a "
              "correct knower exists, the engine of Theorem 3.6.\n");
}

}  // namespace
}  // namespace udc::bench

int main() {
  return udc::guarded_main("bench_prop_3_5",
                           [] {
    udc::bench::run();
    return 0;
  });
}
