// Experiment AB4 — the measured Chandra-Toueg detector lattice.
//
// For every oracle udckit ships, generate a crash-plan sweep and print the
// lattice class the property checkers certify, next to the class the
// oracle advertises.  This is the verification matrix behind every other
// experiment's "with a detector of class X" claim — oracles construct,
// checkers verify, and this bench is where the two meet in one table.
#include "bench_util.h"

#include "udc/fd/convert.h"
#include "udc/fd/lattice.h"
#include "udc/coord/nudc_protocol.h"
#include "udc/fd/quality.h"

namespace udc::bench {
namespace {

constexpr int kN = 5;
constexpr Time kHorizon = 320;
constexpr Time kGrace = 100;

class IdleProcess : public Process {
 public:
  void on_receive(ProcessId, const Message&, Env&) override {}
};

System oracle_system(const OracleFactory& oracle, bool gossip) {
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = kHorizon;
  cfg.channel.drop_prob = 0.2;
  auto plans = all_crash_plans_up_to(kN, kN - 1, 30, 140);
  ProtocolFactory protocol =
      gossip ? ProtocolFactory([](ProcessId) {
        return std::make_unique<SuspicionGossiper>(
            SuspicionGossiper::Mode::kCurrent);
      })
             : ProtocolFactory([](ProcessId) {
                 return std::make_unique<IdleProcess>();
               });
  return generate_system(cfg, plans, {}, oracle, protocol, 1);
}

void row(const char* name, const char* advertised,
         const OracleFactory& oracle) {
  System sys = oracle_system(oracle, false);
  CtLatticeClass got = classify_ct(sys, kGrace);
  FdQuality q = measure_fd_quality(sys);
  std::printf("  %-30s adv=%-7s measured=%-12s lat(mean/max)=%4.1f/%-3lld "
              "fp=%.3f missed=%zu\n",
              name, advertised, ct_class_name(got), q.mean_detection_latency,
              static_cast<long long>(q.max_detection_latency),
              q.false_positive_rate, q.missed);
}

void run() {
  std::printf("AB4: the measured CT96 detector lattice (n=%d, %zu-plan "
              "sweep, drop 0.2)\n", kN,
              all_crash_plans_up_to(kN, kN - 1, 30, 140).size());
  std::printf("\n              strong acc    weak acc    ev-strong    "
              "ev-weak\n  strong comp      P            S          <>P"
              "          <>S\n  weak comp        Q            W          <>Q"
              "          <>W\n\n");
  row("PerfectOracle", "P",
      [] { return std::make_unique<PerfectOracle>(4); });
  row("StrongOracle(noise 0.4)", "S",
      [] { return std::make_unique<StrongOracle>(4, 0.4); });
  row("QOracle (weak, no noise)", "Q",
      [] { return std::make_unique<QOracle>(4, 0.0); });
  row("WeakOracle(noise 0.4)", "W",
      [] { return std::make_unique<WeakOracle>(4, 0.4); });
  row("EventuallyStrongOracle", "<>P",
      [] { return std::make_unique<EventuallyStrongOracle>(4, 60, 0.5); });
  row("EventuallyWeakOracle", "<>Q",
      [] { return std::make_unique<EventuallyWeakOracle>(4, 60, 0.5); });
  row("ImpermanentStrongOracle", "none*",
      [] { return std::make_unique<ImpermanentStrongOracle>(4); });

  std::printf("\n(* impermanent completeness is outside the CT96 lattice — "
              "the paper's §2.2 extension; Prop 2.2 lifts it to S-column "
              "classes, below.)\n");

  heading("conversions move classes up the lattice");
  {
    System sys = oracle_system(
        [] { return std::make_unique<EventuallyWeakOracle>(4, 60, 0.5); },
        /*gossip=*/true);
    CtLatticeClass before = classify_ct(sys, kGrace);
    System conv = convert_eventually_weak_to_strong(sys);
    CtLatticeClass after = classify_ct(conv, kGrace);
    std::printf("  <>-gossip conversion: %-12s -> %s\n",
                ct_class_name(before), ct_class_name(after));
  }
  {
    System sys = oracle_system(
        [] { return std::make_unique<ImpermanentStrongOracle>(4); }, false);
    System conv = convert_impermanent_to_permanent(sys);
    std::printf("  Prop 2.2 accumulation:  %-12s -> %s\n",
                ct_class_name(classify_ct(sys, kGrace)),
                ct_class_name(classify_ct(conv, kGrace)));
  }
}

}  // namespace
}  // namespace udc::bench

int main() {
  return udc::guarded_main("bench_fd_lattice",
                           [] {
    udc::bench::run();
    return 0;
  });
}
