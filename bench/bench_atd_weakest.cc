// Experiment S5 — the paper's §5 discussion: the Aguilera-Toueg-Deianov
// characterization of the weakest failure detector for UDC/URB.
//
// ATD99's class = strong completeness + "at all times SOME correct process
// is unsuspected" (the witness may rotate).  Four measurements:
//   (1) separation: the rotating AtdOracle satisfies ATD accuracy but not
//       weak accuracy — the class is strictly weaker than Strong;
//   (2) inclusion: weakly-accurate detector runs always pass the ATD check;
//   (3) sufficiency: the current-suspicion protocol attains UDC with it;
//   (4) the gap it exposes: the paper's own Prop 3.1 (cumulative) protocol
//       is UNSOUND under ATD accuracy — a deterministic DC2 witness.
// Together these reproduce §5's comparison between the paper's A1-A4-based
// characterization and ATD99's reduction-based one.
#include "bench_util.h"

#include "udc/coord/udc_atd.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/atd.h"

namespace udc::bench {
namespace {

constexpr int kN = 5;

System atd_system(const ProtocolFactory& protocol) {
  SimConfig cfg;
  cfg.n = kN;
  cfg.horizon = 500;
  cfg.channel.drop_prob = 0.25;
  auto workload = make_workload(kN, 1, 5, 7);
  auto plans = all_crash_plans_up_to(kN, 2, 25, 120);
  return generate_system(cfg, plans, workload,
                         [] { return std::make_unique<AtdOracle>(6); },
                         protocol, 2);
}

void run() {
  std::printf("S5 / [ATD99]: the weakest-detector class for UDC (n=%d)\n",
              kN);

  heading("(1) separation: ATD accuracy is strictly weaker than weak acc.");
  {
    class Idle : public Process {
     public:
      void on_receive(ProcessId, const Message&, Env&) override {}
    };
    System sys =
        atd_system([](ProcessId) { return std::make_unique<Idle>(); });
    AtdAccuracyReport atd = check_atd_accuracy(sys);
    FdPropertyReport classic = check_fd_properties(sys, 180);
    std::printf("  rotating oracle: ATD-accuracy=%s weak-accuracy=%s "
                "strong-completeness=%s\n",
                atd.holds ? "Y" : "N", classic.weak_accuracy ? "Y" : "N",
                classic.strong_completeness ? "Y" : "N");
  }

  heading("(2) inclusion: weak accuracy implies ATD accuracy");
  {
    class Idle : public Process {
     public:
      void on_receive(ProcessId, const Message&, Env&) override {}
    };
    SimConfig cfg;
    cfg.n = kN;
    cfg.horizon = 300;
    auto plans = all_crash_plans_up_to(kN, 2, 25, 120);
    System sys = generate_system(
        cfg, plans, {}, [] { return std::make_unique<StrongOracle>(4, 0.3); },
        [](ProcessId) { return std::make_unique<Idle>(); }, 2);
    std::printf("  strong oracle sweep: weak-accuracy=%s => ATD-accuracy=%s\n",
                check_fd_properties(sys, 100).weak_accuracy ? "Y" : "N",
                check_atd_accuracy(sys).holds ? "Y" : "N");
  }

  heading("(3) sufficiency: current-suspicion protocol attains UDC with it");
  {
    System sys = atd_system(
        [](ProcessId) { return std::make_unique<UdcAtdProcess>(); });
    auto workload = make_workload(kN, 1, 5, 7);
    auto actions = workload_actions(workload);
    CoordReport rep = check_udc(sys, actions, 180);
    std::printf("  UDC over %zu runs: %s\n", sys.size(),
                verdict(rep.achieved()));
  }

  heading("(4) the cumulative (Prop 3.1) gate is unsound under ATD");
  {
    SimConfig cfg;
    cfg.n = kN;
    cfg.horizon = 400;
    cfg.channel.drop_prob = 0.0;
    std::vector<InitDirective> workload{{30, 0, make_action(0, 0)}};
    auto actions = workload_actions(workload);
    CrashPlan plan = make_crash_plan(kN, {{0, 32}});
    AtdOracle o1(4), o2(4);
    SimResult cumulative = simulate(cfg, plan, &o1, workload, [](ProcessId) {
      return std::make_unique<UdcStrongFdProcess>();
    });
    SimResult gated = simulate(cfg, plan, &o2, workload, [](ProcessId) {
      return std::make_unique<UdcAtdProcess>();
    });
    CoordReport bad = check_udc(cumulative.run, actions, 150);
    CoordReport good = check_udc(gated.run, actions, 150);
    std::printf("  cumulative gate:        UDC=%s\n", verdict(bad.achieved()));
    if (!bad.violations.empty()) {
      std::printf("    witness: %s\n", bad.violations.front().c_str());
    }
    std::printf("  current-suspicion gate: UDC=%s\n",
                verdict(good.achieved()));
  }

  std::printf("\nShape: the §5 comparison reproduces — ATD's class is "
              "strictly below Strong, still sufficient for UDC with the "
              "right gate, and the gate really matters.\n");
}

}  // namespace
}  // namespace udc::bench

int main() {
  return udc::guarded_main("bench_atd_weakest",
                           [] {
    udc::bench::run();
    return 0;
  });
}
