// Experiment P3.1 — Proposition 3.1 / Corollary 3.2: the ack-based protocol
// attains UDC under fair-lossy channels with no bound on failures, given a
// strong — or merely impermanent-strong, by Cor 3.2 — failure detector.
// Controls: weak completeness alone is NOT enough for this protocol's
// liveness (a crash watched by somebody else never unblocks us), and no
// detector at all deadlocks DC1.
#include "bench_util.h"

#include "udc/coord/udc_strongfd.h"

namespace udc::bench {
namespace {

void run() {
  std::printf("Prop 3.1: UDC with strong FDs, unreliable channels, "
              "unbounded failures\n");
  for (int n : {4, 6}) {
    heading(("n = " + std::to_string(n)).c_str());
    for (double drop : {0.0, 0.3, 0.5}) {
      CoordSweep cfg;
      cfg.n = n;
      cfg.drop = drop;
      cfg.horizon = drop >= 0.5 ? 900 : 600;
      cfg.grace = drop >= 0.5 ? 350 : 220;
      auto protocol = [](ProcessId) {
        return std::make_unique<UdcStrongFdProcess>();
      };
      {
        auto out = run_coord_sweep(
            cfg, n, [] { return std::make_unique<StrongOracle>(4, 0.2); },
            protocol);
        char label[64];
        std::snprintf(label, sizeof label, "drop=%.1f strong FD", drop);
        print_coord_row(label, out, true);
      }
      {
        auto out = run_coord_sweep(
            cfg, n,
            [] { return std::make_unique<ImpermanentStrongOracle>(4); },
            protocol);
        char label[64];
        std::snprintf(label, sizeof label,
                      "drop=%.1f impermanent-strong (Cor 3.2)", drop);
        print_coord_row(label, out, true);
      }
    }
  }

  heading("controls (n=4, drop=0.3, crashes present)");
  {
    CoordSweep cfg;
    cfg.n = 4;
    cfg.drop = 0.3;
    auto protocol = [](ProcessId) {
      return std::make_unique<UdcStrongFdProcess>();
    };
    auto weak = run_coord_sweep(
        cfg, 4, [] { return std::make_unique<WeakOracle>(4, 0.0); }, protocol);
    print_coord_row("weak FD only (completeness too weak)", weak, false);
    auto none = run_coord_sweep(cfg, 4, nullptr, protocol);
    print_coord_row("no FD (DC1 deadlock)", none, false);
  }
}

}  // namespace
}  // namespace udc::bench

int main() {
  return udc::guarded_main("bench_prop_3_1",
                           [] {
    udc::bench::run();
    return 0;
  });
}
