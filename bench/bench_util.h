// Shared plumbing for the experiment harnesses (one binary per table/figure
// row of the paper; see DESIGN.md §3).  Each harness prints paper-shaped
// rows plus the checker verdicts that justify them.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "udc/common/guarded_main.h"
#include "udc/coord/action.h"
#include "udc/coord/spec.h"
#include "udc/consensus/spec.h"
#include "udc/event/system.h"
#include "udc/fd/generalized.h"
#include "udc/fd/oracle.h"
#include "udc/fd/properties.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc::bench {

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline const char* verdict(bool achieved) {
  return achieved ? "ACHIEVED" : "VIOLATED";
}

// Standard workload + sweep used by most coordination experiments.
struct CoordSweep {
  int n = 5;
  Time horizon = 500;
  Time grace = 180;
  double drop = 0.3;
  int seeds_per_plan = 2;
  Time crash_earliest = 25;
  Time crash_latest = 140;
  int actions_per_process = 1;
};

struct CoordOutcome {
  CoordReport udc;
  CoordReport nudc;
  SystemStats stats;
  std::size_t runs = 0;
};

inline CoordOutcome run_coord_sweep(const CoordSweep& cfg, int t,
                                    const OracleFactory& oracle,
                                    const ProtocolFactory& protocol) {
  SimConfig sim;
  sim.n = cfg.n;
  sim.horizon = cfg.horizon;
  sim.channel.drop_prob = cfg.drop;
  auto workload =
      make_workload(cfg.n, cfg.actions_per_process, 5, 7);
  auto actions = workload_actions(workload);
  auto plans =
      all_crash_plans_up_to(cfg.n, t, cfg.crash_earliest, cfg.crash_latest);
  SystemStats stats;
  System sys = generate_system(sim, plans, workload, oracle, protocol,
                               cfg.seeds_per_plan, &stats);
  CoordOutcome out;
  out.udc = check_udc(sys, actions, cfg.grace);
  out.nudc = check_nudc(sys, actions, cfg.grace);
  out.stats = stats;
  out.runs = sys.size();
  return out;
}

inline void print_coord_row(const char* label, const CoordOutcome& out,
                            bool expect_udc) {
  std::printf("  %-46s runs=%-4zu msgs=%-7zu UDC=%-8s nUDC=%-8s %s\n", label,
              out.runs, out.stats.messages_sent, verdict(out.udc.achieved()),
              verdict(out.nudc.achieved()),
              out.udc.achieved() == expect_udc ? "[as predicted]"
                                               : "[UNEXPECTED]");
  if (!out.udc.achieved() && !out.udc.violations.empty()) {
    std::printf("      e.g. %s\n", out.udc.violations.front().c_str());
  }
}

}  // namespace udc::bench
