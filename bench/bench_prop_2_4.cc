// Experiment P2.4 — Proposition 2.4: with RELIABLE channels, the
// send-before-do protocol attains full UDC with no failure detector and no
// bound on failures.  The same protocol collapses the moment channels lose
// messages — the observation that motivates all of Section 3.
#include "bench_util.h"

#include "udc/coord/udc_reliable.h"

namespace udc::bench {
namespace {

void run() {
  std::printf("Prop 2.4: UDC with reliable channels, no FD, any failures\n");
  for (int n : {4, 6}) {
    heading(("n = " + std::to_string(n)).c_str());
    for (int t : {1, n / 2, n}) {
      CoordSweep cfg;
      cfg.n = n;
      cfg.drop = 0.0;
      auto out = run_coord_sweep(cfg, t, nullptr, [](ProcessId) {
        return std::make_unique<UdcReliableProcess>();
      });
      char label[64];
      std::snprintf(label, sizeof label, "t=%d reliable", t);
      print_coord_row(label, out, /*expect_udc=*/true);
    }
  }

  heading("the same protocol under loss (why Section 3 exists)");
  for (double drop : {0.2, 0.5}) {
    // Plain i.i.d. loss: the one-shot relays may all be dropped while a
    // performer crashes.  Not guaranteed to break on every sweep, so also
    // run the deterministic adversary below.
    CoordSweep cfg;
    cfg.n = 4;
    cfg.drop = drop;
    auto out = run_coord_sweep(cfg, 4, nullptr, [](ProcessId) {
      return std::make_unique<UdcReliableProcess>();
    });
    char label[64];
    std::snprintf(label, sizeof label, "iid drop=%.1f t=n", drop);
    std::printf("  %-28s UDC=%s\n", label, verdict(out.udc.achieved()));
  }
  {
    SimConfig sim;
    sim.n = 4;
    sim.horizon = 400;
    sim.channel.custom_policy = std::make_shared<PartitionDropPolicy>(
        ProcSet::singleton(0), ProcSet::full(4), 0, 0.0);
    std::vector<InitDirective> workload{{5, 0, make_action(0, 0)}};
    auto actions = workload_actions(workload);
    SimResult res = simulate(sim, make_crash_plan(4, {{0, 60}}), nullptr,
                             workload, [](ProcessId) {
                               return std::make_unique<UdcReliableProcess>();
                             });
    CoordReport udc = check_udc(res.run, actions, 100);
    std::printf("  %-28s UDC=%s (deterministic witness)\n",
                "adversarial silencing", verdict(udc.achieved()));
    if (!udc.violations.empty()) {
      std::printf("    witness: %s\n", udc.violations.front().c_str());
    }
  }
}

}  // namespace
}  // namespace udc::bench

int main() {
  return udc::guarded_main("bench_prop_2_4",
                           [] {
    udc::bench::run();
    return 0;
  });
}
