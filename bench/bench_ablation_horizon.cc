// Experiment AB3 — validity of the finite-horizon substitution: every
// "eventually" in the paper is checked up to a horizon T with a grace
// window (DESIGN.md §2).  This ablation sweeps T and shows the verdicts of
// the headline experiments are STABLE once T clears the protocol's natural
// completion scale — i.e. the substitution does not manufacture results.
//
// For each horizon we re-run a positive cell (Prop 3.1 UDC with strong FD)
// and a negative probe (no FD), plus the Theorem 3.6 pipeline, and print
// the verdicts.  Expected shape: a short transient of false negatives at
// tiny horizons (work genuinely unfinished), then verdicts locked in.
#include "bench_util.h"

#include "udc/coord/udc_strongfd.h"
#include "udc/kt/simulate_fd.h"

namespace udc::bench {
namespace {

constexpr int kN = 4;

void run() {
  std::printf("Ablation AB3: verdict stability under the finite-horizon "
              "substitution (n=%d)\n", kN);
  std::printf("%8s %8s | %-22s %-22s %-14s\n", "horizon", "grace",
              "UDC w/ strong FD", "UDC w/o FD (probe)", "Thm 3.6 R^f");
  for (Time horizon : {120, 200, 320, 500, 800, 1200}) {
    Time grace = horizon / 3;
    CoordSweep cfg;
    cfg.n = kN;
    cfg.drop = 0.3;
    cfg.horizon = horizon;
    cfg.grace = grace;
    auto with_fd = run_coord_sweep(
        cfg, kN, [] { return std::make_unique<StrongOracle>(4, 0.2); },
        [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); });
    auto without_fd = run_coord_sweep(cfg, kN, nullptr, [](ProcessId) {
      return std::make_unique<UdcStrongFdProcess>();
    });

    // Thm 3.6 pipeline at this horizon (smaller n keeps it fast).
    SimConfig sim;
    sim.n = 3;
    sim.horizon = horizon;
    sim.channel.drop_prob = 0.25;
    auto workload = make_workload(3, 2, 4, 6);
    auto plans = all_crash_plans_up_to(3, 2, 15, horizon / 4 + 15);
    System sys = generate_system(
        sim, plans, workload,
        [] { return std::make_unique<PerfectOracle>(4); },
        [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); }, 1);
    System rf = build_rf(sys);
    FdPropertyReport rf_rep = check_fd_properties(rf, 2 * grace);

    std::printf("%8lld %8lld | %-22s %-22s %-14s\n",
                static_cast<long long>(horizon),
                static_cast<long long>(grace),
                verdict(with_fd.udc.achieved()),
                verdict(without_fd.udc.achieved()),
                rf_rep.perfect() ? "Perfect" : "not-perfect");
  }
  std::printf(
      "\nShape: once the horizon clears the completion scale, the positive\n"
      "cell stays ACHIEVED, the probe stays VIOLATED, and R^f stays\n"
      "Perfect — verdicts are horizon-stable, so the substitution is\n"
      "sound at the operating points used throughout EXPERIMENTS.md.\n");
}

}  // namespace
}  // namespace udc::bench

int main() {
  return udc::guarded_main("bench_ablation_horizon",
                           [] {
    udc::bench::run();
    return 0;
  });
}
