// Experiment P4.1/C4.2 — Proposition 4.1 and Corollary 4.2: for every
// failure bound t, a t-useful generalized detector suffices for UDC under
// fair-lossy channels; for t < n/2 the content-free cycling detector is
// already t-useful (Gopal-Toueg: no failure information needed); for
// t >= n/2 it is not, and the protocol loses liveness.
#include "bench_util.h"

#include "udc/coord/udc_generalized.h"

namespace udc::bench {
namespace {

void run() {
  std::printf("Prop 4.1 / Cor 4.2: UDC with t-useful generalized FDs\n");
  for (int n : {4, 5}) {
    heading(("n = " + std::to_string(n)).c_str());
    for (int t = 1; t <= n; ++t) {
      CoordSweep cfg;
      cfg.n = n;
      cfg.drop = 0.3;
      {
        auto out = run_coord_sweep(
            cfg, t,
            [t] { return std::make_unique<TUsefulOracle>(t, 4, 1); },
            [t](ProcessId) {
              return std::make_unique<UdcGeneralizedProcess>(t);
            });
        char label[72];
        std::snprintf(label, sizeof label, "t=%d  t-useful oracle", t);
        print_coord_row(label, out, true);
      }
      {
        auto out = run_coord_sweep(
            cfg, t,
            [t] { return std::make_unique<TrivialGeneralizedOracle>(t, 2); },
            [t](ProcessId) {
              return std::make_unique<UdcGeneralizedProcess>(t);
            });
        char label[72];
        std::snprintf(label, sizeof label,
                      "t=%d  content-free (S,0) oracle%s", t,
                      2 * t < n ? " (Cor 4.2 regime)" : "");
        print_coord_row(label, out, /*expect_udc=*/2 * t < n);
      }
    }
  }
  std::printf("\nShape: t-useful achieves UDC for every t; the content-free "
              "detector achieves it exactly when t < n/2 — the Gopal-Toueg "
              "boundary.\n");
}

}  // namespace
}  // namespace udc::bench

int main() {
  return udc::guarded_main("bench_prop_4_1",
                           [] {
    udc::bench::run();
    return 0;
  });
}
