// Experiment AB1 — ablation: what does detector quality buy the UDC
// protocols, and what does it cost?  For each (detector class, drop rate)
// we measure, over a fixed crash-plan sweep:
//   - UDC verdict
//   - messages sent (protocol chatter)
//   - mean/max completion latency: init_p(α) -> last correct do(α)
// Paper-shape expectations: better detectors do not speed up the failure-
// free path (latency is handshake-bound), but they are what makes the
// crashy runs terminate at all; message cost grows with drop rate and with
// retransmission pressure, not with detector quality.
#include <algorithm>

#include "bench_util.h"

#include "udc/coord/metrics.h"
#include "udc/coord/udc_atd.h"
#include "udc/coord/udc_generalized.h"
#include "udc/coord/udc_majority.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/atd.h"

namespace udc::bench {
namespace {

constexpr int kN = 4;
constexpr Time kHorizon = 700;
constexpr Time kGrace = 250;

// Completion accounting via coord/metrics.h (the library form of what this
// bench originally hand-rolled).
void row(const char* label, const OracleFactory& oracle,
         const ProtocolFactory& protocol, double drop, bool expect_udc,
         int t = kN - 1) {
  SimConfig sim;
  sim.n = kN;
  sim.horizon = kHorizon;
  sim.channel.drop_prob = drop;
  auto workload = make_workload(kN, 1, 5, 7);
  auto actions = workload_actions(workload);
  auto plans = all_crash_plans_up_to(kN, t, 25, 140);
  SystemStats stats;
  System sys =
      generate_system(sim, plans, workload, oracle, protocol, 2, &stats);
  CoordinationMetrics lat = measure_coordination(sys, actions);
  bool udc = check_udc(sys, actions, kGrace).achieved();
  std::printf("  %-34s drop=%.1f UDC=%-8s msgs=%-7zu lat(mean/max)="
              "%5.1f/%-4lld done=%zu/%zu %s\n",
              label, drop, verdict(udc), stats.messages_sent,
              lat.mean_latency, static_cast<long long>(lat.max_latency),
              lat.completed, lat.initiated,
              udc == expect_udc ? "" : "[UNEXPECTED]");
}

void run() {
  std::printf("Ablation AB1: detector quality vs UDC protocol cost "
              "(n=%d, t=n-1 sweep)\n", kN);
  for (double drop : {0.0, 0.3, 0.5}) {
    heading("drop = " + std::to_string(drop).substr(0, 3));
    row("perfect FD + ack protocol",
        [] { return std::make_unique<PerfectOracle>(4); },
        [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); },
        drop, true);
    row("strong FD (noisy) + ack protocol",
        [] { return std::make_unique<StrongOracle>(4, 0.2); },
        [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); },
        drop, true);
    row("impermanent-strong + ack protocol",
        [] { return std::make_unique<ImpermanentStrongOracle>(4); },
        [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); },
        drop, true);
    row("t-useful generalized + Prop 4.1",
        [] { return std::make_unique<TUsefulOracle>(kN - 1, 4, 1); },
        [](ProcessId) {
          return std::make_unique<UdcGeneralizedProcess>(kN - 1);
        },
        drop, true);
    row("ATD rotating FD + current-gate",
        [] { return std::make_unique<AtdOracle>(6); },
        [](ProcessId) { return std::make_unique<UdcAtdProcess>(); }, drop,
        true, /*t=*/1);
    row("majority echo, no FD (t<n/2)", nullptr,
        [](ProcessId) { return std::make_unique<UdcMajorityProcess>(); },
        drop, true, /*t=*/(kN - 1) / 2);
    row("no FD (control)", nullptr,
        [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); },
        drop, false);
  }
  std::printf("\nShape: all real detectors achieve UDC at every drop rate; "
              "message cost scales with loss, latency with retransmission "
              "round-trips; noisier accuracy shortens crashy-run latency "
              "slightly (suspicion substitutes for a missing ack) at no "
              "spec cost.\n");
}

}  // namespace
}  // namespace udc::bench

int main() {
  return udc::guarded_main("bench_ablation_fd_quality",
                           [] {
    udc::bench::run();
    return 0;
  });
}
