// Experiment P2.3 — Proposition 2.3: the flooding protocol attains nUDC
// under fair-lossy channels with NO failure detector and NO bound on
// failures — and, pointedly, does NOT attain UDC once a performer can crash
// before its messages escape.
//
// Sweep: n in {4, 6}, drop rate 0 .. 0.7, all crash plans up to t = n.
// Paper-shape: nUDC ACHIEVED everywhere; the adversarial column exhibits
// the uniformity gap (UDC VIOLATED, nUDC intact).
#include "bench_util.h"

#include "udc/coord/nudc_protocol.h"

namespace udc::bench {
namespace {

void run() {
  std::printf("Prop 2.3: nUDC by flooding — no FD, unreliable channels, "
              "any number of failures\n");
  for (int n : {4, 6}) {
    heading(("n = " + std::to_string(n)).c_str());
    for (double drop : {0.0, 0.3, 0.5, 0.7}) {
      CoordSweep cfg;
      cfg.n = n;
      cfg.drop = drop;
      cfg.horizon = drop >= 0.5 ? 800 : 500;
      cfg.grace = drop >= 0.5 ? 300 : 180;
      // t = n: runs where everyone crashes are included.
      auto out = run_coord_sweep(cfg, n, nullptr, [](ProcessId) {
        return std::make_unique<NUdcProcess>();
      });
      char label[64];
      std::snprintf(label, sizeof label, "drop=%.1f t=n", drop);
      std::printf("  %-20s runs=%-4zu msgs=%-8zu nUDC=%-8s UDC=%-8s\n", label,
                  out.runs, out.stats.messages_sent,
                  verdict(out.nudc.achieved()), verdict(out.udc.achieved()));
    }
  }

  heading("uniformity gap witness (adversarial silencing of the performer)");
  {
    SimConfig sim;
    sim.n = 4;
    sim.horizon = 400;
    sim.channel.custom_policy = std::make_shared<PartitionDropPolicy>(
        ProcSet::singleton(0), ProcSet::full(4), 0, 0.0);
    std::vector<InitDirective> workload{{5, 0, make_action(0, 0)}};
    auto actions = workload_actions(workload);
    SimResult res = simulate(sim, make_crash_plan(4, {{0, 40}}), nullptr,
                             workload, [](ProcessId) {
                               return std::make_unique<NUdcProcess>();
                             });
    CoordReport udc = check_udc(res.run, actions, 100);
    CoordReport nudc = check_nudc(res.run, actions, 100);
    std::printf("  p0 performs then crashes silenced: UDC=%s nUDC=%s\n",
                verdict(udc.achieved()), verdict(nudc.achieved()));
    if (!udc.violations.empty()) {
      std::printf("    witness: %s\n", udc.violations.front().c_str());
    }
  }
}

}  // namespace
}  // namespace udc::bench

int main() {
  return udc::guarded_main("bench_prop_2_3",
                           [] {
    udc::bench::run();
    return 0;
  });
}
