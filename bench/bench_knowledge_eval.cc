// Experiment AB2 — microbenchmarks of the knowledge machinery: system
// indexing, K_p evaluation, knowledge-based suspicion extraction, and the
// f(r) construction, as functions of system size and horizon.  These bound
// the cost of the Theorem 3.6/4.3 pipelines.
#include <benchmark/benchmark.h>

#include "udc/coord/action.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/oracle.h"
#include "udc/kt/knowledge_fd.h"
#include "udc/kt/simulate_fd.h"
#include "udc/logic/eval.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

System make_system(int n, Time horizon, int seeds) {
  SimConfig sim;
  sim.n = n;
  sim.horizon = horizon;
  sim.channel.drop_prob = 0.25;
  auto workload = make_workload(n, 1, 4, 6);
  auto plans = all_crash_plans_up_to(n, n - 1, 15, horizon / 3);
  return generate_system(
      sim, plans, workload, [] { return std::make_unique<PerfectOracle>(4); },
      [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); }, seeds);
}

void BM_SystemIndexBuild(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Time horizon = state.range(1);
  // Pre-generate runs once; measure System construction (the index build).
  SimConfig sim;
  sim.n = n;
  sim.horizon = horizon;
  sim.channel.drop_prob = 0.25;
  auto workload = make_workload(n, 1, 4, 6);
  auto plans = all_crash_plans_up_to(n, n - 1, 15, horizon / 3);
  std::vector<Run> runs;
  std::uint64_t seed = 1;
  for (const CrashPlan& plan : plans) {
    SimConfig cfg = sim;
    cfg.seed = seed++;
    PerfectOracle oracle(4);
    runs.push_back(simulate(cfg, plan, &oracle, workload, [](ProcessId) {
                     return std::make_unique<UdcStrongFdProcess>();
                   }).run);
  }
  for (auto _ : state) {
    std::vector<Run> copy = runs;
    System sys(std::move(copy));
    benchmark::DoNotOptimize(sys.size());
  }
  state.SetLabel(std::to_string(runs.size()) + " runs");
}
BENCHMARK(BM_SystemIndexBuild)
    ->Args({3, 120})
    ->Args({4, 120})
    ->Args({4, 240})
    ->Args({5, 120});

void BM_KnowledgeEval(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  System sys = make_system(n, 150, 1);
  ModelChecker mc(sys);
  ActionId alpha = make_action(0, 0);
  // Nested-knowledge formula, evaluated over all points; the memo cache is
  // shared across iterations, so this measures the amortized query rate.
  auto phi = f_knows(1, f_eventually(f_or(f_knows(0, f_init(0, alpha)),
                                          f_crash(0))));
  std::size_t i = 0;
  for (auto _ : state) {
    Point at{i % sys.size(),
             static_cast<Time>((i * 13) % (sys.run(0).horizon() + 1))};
    benchmark::DoNotOptimize(mc.holds_at(at, phi));
    ++i;
  }
}
BENCHMARK(BM_KnowledgeEval)->Arg(3)->Arg(4)->Arg(5);

void BM_KnownCrashedExtraction(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  System sys = make_system(n, 150, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    Point at{i % sys.size(),
             static_cast<Time>((i * 7) % (sys.run(0).horizon() + 1))};
    benchmark::DoNotOptimize(
        known_crashed(sys, at, static_cast<ProcessId>(i % n)));
    ++i;
  }
}
BENCHMARK(BM_KnownCrashedExtraction)->Arg(3)->Arg(4)->Arg(5);

void BM_BuildRf(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  System sys = make_system(n, 120, 1);
  for (auto _ : state) {
    System rf = build_rf(sys);
    benchmark::DoNotOptimize(rf.size());
  }
}
BENCHMARK(BM_BuildRf)->Arg(3)->Arg(4);

void BM_BuildRfPrime(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  System sys = make_system(n, 120, 1);
  for (auto _ : state) {
    System rfp = build_rf_prime(sys);
    benchmark::DoNotOptimize(rfp.size());
  }
}
BENCHMARK(BM_BuildRfPrime)->Arg(3)->Arg(4);

void BM_SimulateRun(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  SimConfig sim;
  sim.n = n;
  sim.horizon = 400;
  sim.channel.drop_prob = 0.3;
  auto workload = make_workload(n, 1, 5, 7);
  CrashPlan plan = make_crash_plan(n, {{0, 40}});
  for (auto _ : state) {
    PerfectOracle oracle(4);
    SimResult res = simulate(sim, plan, &oracle, workload, [](ProcessId) {
      return std::make_unique<UdcStrongFdProcess>();
    });
    benchmark::DoNotOptimize(res.run.horizon());
  }
}
BENCHMARK(BM_SimulateRun)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace udc

BENCHMARK_MAIN();
