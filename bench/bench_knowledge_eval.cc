// Experiment AB2 — microbenchmarks of the knowledge machinery: system
// indexing, K_p evaluation, knowledge-based suspicion extraction, the f(r)
// construction, and full validity sweeps at several thread counts.  These
// bound the cost of the Theorem 3.6/4.3 pipelines.
//
// `--json <path>` (in addition to the usual google-benchmark flags) writes
// machine-readable rows {bench, n, horizon, threads, ns_per_op} so perf
// trajectories can accumulate across PRs (see BENCH_*.json at the repo
// root and tools/run_knowledge_bench.sh).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "udc/common/guarded_main.h"
#include "udc/coord/action.h"
#include "udc/coord/spec.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/oracle.h"
#include "udc/kt/knowledge_fd.h"
#include "udc/kt/simulate_fd.h"
#include "udc/logic/eval.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

namespace udc {
namespace {

System make_system(int n, Time horizon, int seeds) {
  SimConfig sim;
  sim.n = n;
  sim.horizon = horizon;
  sim.channel.drop_prob = 0.25;
  auto workload = make_workload(n, 1, 4, 6);
  auto plans = all_crash_plans_up_to(n, n - 1, 15, horizon / 3);
  return generate_system(
      sim, plans, workload, [] { return std::make_unique<PerfectOracle>(4); },
      [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); }, seeds);
}

void set_row_counters(benchmark::State& state, int n, Time horizon,
                      unsigned threads) {
  state.counters["n"] = static_cast<double>(n);
  state.counters["horizon"] = static_cast<double>(horizon);
  state.counters["threads"] = static_cast<double>(threads);
}

void BM_SystemIndexBuild(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Time horizon = state.range(1);
  unsigned threads = static_cast<unsigned>(state.range(2));
  // Pre-generate runs once; measure System construction (the index build).
  SimConfig sim;
  sim.n = n;
  sim.horizon = horizon;
  sim.channel.drop_prob = 0.25;
  auto workload = make_workload(n, 1, 4, 6);
  auto plans = all_crash_plans_up_to(n, n - 1, 15, horizon / 3);
  std::vector<Run> runs;
  std::uint64_t seed = 1;
  for (const CrashPlan& plan : plans) {
    SimConfig cfg = sim;
    cfg.seed = seed++;
    PerfectOracle oracle(4);
    runs.push_back(simulate(cfg, plan, &oracle, workload, [](ProcessId) {
                     return std::make_unique<UdcStrongFdProcess>();
                   }).run);
  }
  for (auto _ : state) {
    std::vector<Run> copy = runs;
    System sys(std::move(copy), threads);
    benchmark::DoNotOptimize(sys.size());
  }
  state.SetLabel(std::to_string(runs.size()) + " runs");
  set_row_counters(state, n, horizon, threads);
}
BENCHMARK(BM_SystemIndexBuild)
    ->Args({3, 120, 1})
    ->Args({4, 120, 1})
    ->Args({4, 240, 1})
    ->Args({4, 240, 8})
    ->Args({5, 120, 1})
    ->Args({5, 120, 8});

void BM_KnowledgeEval(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  System sys = make_system(n, 150, 1);
  ModelChecker mc(sys);
  ActionId alpha = make_action(0, 0);
  // Nested-knowledge formula, evaluated over all points; the memo cache is
  // shared across iterations, so this measures the amortized query rate.
  auto phi = f_knows(1, f_eventually(f_or(f_knows(0, f_init(0, alpha)),
                                          f_crash(0))));
  std::size_t i = 0;
  for (auto _ : state) {
    Point at{i % sys.size(),
             static_cast<Time>((i * 13) % (sys.run(0).horizon() + 1))};
    benchmark::DoNotOptimize(mc.holds_at(at, phi));
    ++i;
  }
  set_row_counters(state, n, 150, 1);
}
BENCHMARK(BM_KnowledgeEval)->Arg(3)->Arg(4)->Arg(5);

// Full validity sweeps of the DC1-DC3 + K_p(crash) suite with a fresh
// checker per iteration: this is the Prop 3.5 / Theorem 3.6 verification
// shape, and the benchmark the BENCH_*.json speedup trajectories track.
// threads = 1 is the exact legacy serial path.
void BM_ValiditySweep(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Time horizon = state.range(1);
  unsigned threads = static_cast<unsigned>(state.range(2));
  System sys = make_system(n, horizon, 1);
  auto workload = make_workload(n, 1, 4, 6);
  auto actions = workload_actions(workload);
  std::vector<FormulaPtr> suite;
  for (ActionId alpha : actions) {
    suite.push_back(dc1_formula(alpha, n));
    suite.push_back(dc3_formula(alpha, n));
  }
  for (ProcessId p = 0; p < n; ++p) {
    for (ProcessId q = 0; q < n; ++q) {
      suite.push_back(f_implies(f_knows(p, f_crash(q)), f_crash(q)));
    }
  }
  for (auto _ : state) {
    ModelChecker mc(sys);
    std::size_t valid_count = 0;
    for (const FormulaPtr& phi : suite) {
      valid_count += mc.valid_parallel(phi, threads) ? 1 : 0;
    }
    benchmark::DoNotOptimize(valid_count);
  }
  state.SetLabel(std::to_string(suite.size()) + " formulas x " +
                 std::to_string(sys.size()) + " runs");
  set_row_counters(state, n, horizon, threads);
}
BENCHMARK(BM_ValiditySweep)
    ->Unit(benchmark::kMillisecond)
    ->Args({3, 120, 1})
    ->Args({3, 120, 2})
    ->Args({3, 120, 8})
    ->Args({4, 120, 1})
    ->Args({4, 120, 2})
    ->Args({4, 120, 8});

void BM_KnownCrashedExtraction(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  System sys = make_system(n, 150, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    Point at{i % sys.size(),
             static_cast<Time>((i * 7) % (sys.run(0).horizon() + 1))};
    benchmark::DoNotOptimize(
        known_crashed(sys, at, static_cast<ProcessId>(i % n)));
    ++i;
  }
  set_row_counters(state, n, 150, 1);
}
BENCHMARK(BM_KnownCrashedExtraction)->Arg(3)->Arg(4)->Arg(5);

void BM_BuildRf(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  unsigned threads = static_cast<unsigned>(state.range(1));
  System sys = make_system(n, 120, 1);
  for (auto _ : state) {
    System rf = build_rf(sys, threads);
    benchmark::DoNotOptimize(rf.size());
  }
  set_row_counters(state, n, 120, threads);
}
BENCHMARK(BM_BuildRf)->Args({3, 1})->Args({3, 8})->Args({4, 1})->Args({4, 8});

void BM_BuildRfPrime(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  unsigned threads = static_cast<unsigned>(state.range(1));
  System sys = make_system(n, 120, 1);
  for (auto _ : state) {
    System rfp = build_rf_prime(sys, threads);
    benchmark::DoNotOptimize(rfp.size());
  }
  set_row_counters(state, n, 120, threads);
}
BENCHMARK(BM_BuildRfPrime)->Args({3, 1})->Args({3, 8})->Args({4, 1})->Args({4, 8});

void BM_SimulateRun(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  SimConfig sim;
  sim.n = n;
  sim.horizon = 400;
  sim.channel.drop_prob = 0.3;
  auto workload = make_workload(n, 1, 5, 7);
  CrashPlan plan = make_crash_plan(n, {{0, 40}});
  for (auto _ : state) {
    PerfectOracle oracle(4);
    SimResult res = simulate(sim, plan, &oracle, workload, [](ProcessId) {
      return std::make_unique<UdcStrongFdProcess>();
    });
    benchmark::DoNotOptimize(res.run.horizon());
  }
  set_row_counters(state, n, 400, 1);
}
BENCHMARK(BM_SimulateRun)->Arg(4)->Arg(8)->Arg(16);

// Console reporter that additionally writes one JSON row per benchmark —
// the schema the BENCH_*.json perf trajectories accumulate.  Counters fall
// back to 0 when a benchmark doesn't set them.
class JsonRowReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonRowReporter(std::string path) : path_(std::move(path)) {}

  bool write_failed() const { return write_failed_; }

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      Row row;
      row.bench = run.benchmark_name();
      row.n = counter_or(run, "n");
      row.horizon = counter_or(run, "horizon");
      row.threads = counter_or(run, "threads");
      row.ns_per_op = run.iterations == 0
                          ? 0.0
                          : run.real_accumulated_time * 1e9 /
                                static_cast<double>(run.iterations);
      rows_.push_back(std::move(row));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    std::FILE* out = std::fopen(path_.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      write_failed_ = true;
      return;
    }
    std::fprintf(out, "[\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(out,
                   "  {\"bench\": \"%s\", \"n\": %.0f, \"horizon\": %.0f, "
                   "\"threads\": %.0f, \"ns_per_op\": %.1f}%s\n",
                   r.bench.c_str(), r.n, r.horizon, r.threads, r.ns_per_op,
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    std::fclose(out);
  }

 private:
  struct Row {
    std::string bench;
    double n = 0, horizon = 0, threads = 0, ns_per_op = 0;
  };

  static double counter_or(const Run& run, const char* name) {
    auto it = run.counters.find(name);
    return it == run.counters.end() ? 0.0 : static_cast<double>(it->second);
  }

  std::string path_;
  std::vector<Row> rows_;
  bool write_failed_ = false;
};

}  // namespace
}  // namespace udc

int main(int argc, char** argv) {
  return udc::guarded_main("bench_knowledge_eval", [&] {
  // Peel off `--json <path>` before google-benchmark sees the argv.
  std::string json_path;
  std::vector<char*> args(argv, argv + argc);
  for (auto it = args.begin(); it != args.end();) {
    if (std::string(*it) == "--json" && it + 1 != args.end()) {
      json_path = *(it + 1);
      it = args.erase(it, it + 2);
    } else {
      ++it;
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  int rc = 0;
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    udc::JsonRowReporter reporter(json_path);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    if (reporter.write_failed()) rc = 1;
  }
  benchmark::Shutdown();
  return rc;
  });
}
