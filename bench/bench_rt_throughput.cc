// Experiment RTPERF — the live runtime's recording hot path (DESIGN.md §10).
//
// Every observable event a live worker produces funnels through
// TraceRecorder::record and, when durability is on, through the process's
// WAL.  This suite measures that funnel end to end and pins the PR's three
// claims against the PR-3/PR-4 baselines, which are kept in-tree precisely
// so the comparison never goes stale:
//
//   * BM_Record{Serial,Sharded}        — n workers hammering the recorder
//     (no disk): the single global mutex vs the per-process shards stamped
//     from one atomic clock.  Workers follow the real record-then-send /
//     receive-then-record discipline so every lifted run passes R1-R4.
//   * BM_Durable{InlineFsync,InlineFsyncEvery8,GroupCommit} — the same
//     workload with each event mirrored into its ProcessStore WAL.  The
//     inline policies pay the fsync barrier on the append path (kAlways =
//     strict per-event durability, kEveryN/8 = the PR-4 runtime default);
//     group commit moves the barrier onto the GroupCommitter's flusher
//     thread and the workers never wait on the disk.
//   * BM_Lift{Serial,Sharded}          — latency of lift() on a prefilled
//     recorder: the sharded merge must not give back what recording won.
//
// Rows report events_per_sec (the headline number; 0 for the lift rows) and
// ns_per_op.  `--json <path>` writes the rows machine-readably — that file,
// checked in as BENCH_pr6.json, is what the rt-bench-smoke CI job guards
// against >2x regressions (tools/run_rt_bench.sh regenerates it).
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "udc/common/guarded_main.h"
#include "udc/event/event.h"
#include "udc/event/message.h"
#include "udc/rt/record.h"
#include "udc/store/group_commit.h"
#include "udc/store/process_store.h"

namespace udc {
namespace {

namespace fs = std::filesystem;

Message tagged(std::int64_t tag) {
  Message m;
  m.kind = MsgKind::kApp;
  m.a = tag;
  return m;
}

// The same toy transport as tests/test_rt_record_concurrent.cc: enough of a
// channel that receives are recorded strictly after their matching sends,
// so the workload the recorder sees is model-shaped, not a synthetic spin.
struct Inbox {
  std::mutex mu;
  std::deque<Message> q;

  void push(Message m) {
    std::lock_guard<std::mutex> lock(mu);
    q.push_back(m);
  }
  bool pop(Message& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (q.empty()) return false;
    out = q.front();
    q.pop_front();
    return true;
  }
};

// Drives n workers through `sends_per_worker` record-send / recv-record
// pairs each (2 * n * sends_per_worker events total) and returns that count.
// Recorder is TraceRecorder or SerialTraceRecorder — same API, different
// locking, which is the entire point.
template <class Recorder>
std::size_t drive(Recorder& rec, int n, int sends_per_worker) {
  std::vector<Inbox> inboxes(static_cast<std::size_t>(n));
  std::atomic<int> senders_left{n};

  auto worker = [&](ProcessId self) {
    const ProcessId partner = static_cast<ProcessId>((self + 1) % n);
    const ProcessId prev = static_cast<ProcessId>((self + n - 1) % n);
    Inbox& in = inboxes[static_cast<std::size_t>(self)];
    auto drain = [&] {
      Message m;
      while (in.pop(m)) rec.record(self, Event::recv(prev, m));
    };
    for (int k = 0; k < sends_per_worker; ++k) {
      const Message msg = tagged(static_cast<std::int64_t>(self) * 1'000'000 + k);
      rec.record(self, Event::send(partner, msg));
      inboxes[static_cast<std::size_t>(partner)].push(msg);
      drain();
    }
    senders_left.fetch_sub(1);
    for (;;) {
      drain();
      if (senders_left.load() == 0) {
        drain();
        std::lock_guard<std::mutex> lock(in.mu);
        if (in.q.empty()) return;
      }
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p) threads.emplace_back(worker, p);
  for (auto& t : threads) t.join();
  return static_cast<std::size_t>(2) * static_cast<std::size_t>(n) *
         static_cast<std::size_t>(sends_per_worker);
}

void set_row(benchmark::State& state, int n, std::size_t events) {
  state.counters["n"] = static_cast<double>(n);
  state.counters["threads"] = static_cast<double>(n);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

// ---- pure recording: the lock structure alone -----------------------------

template <class Recorder>
void record_throughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int sends = static_cast<int>(state.range(1));
  std::size_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Recorder rec(n);
    state.ResumeTiming();
    events += drive(rec, n, sends);
  }
  set_row(state, n, events);
}

void BM_RecordSerial(benchmark::State& state) {
  record_throughput<SerialTraceRecorder>(state);
}
void BM_RecordSharded(benchmark::State& state) {
  record_throughput<TraceRecorder>(state);
}
BENCHMARK(BM_RecordSerial)
    ->Args({2, 1'000})->Args({4, 1'000})->Args({8, 1'000})
    ->Args({4, 4'000})
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime();
BENCHMARK(BM_RecordSharded)
    ->Args({2, 1'000})->Args({4, 1'000})->Args({8, 1'000})
    ->Args({4, 4'000})
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime();

// ---- durable recording: the full hot path incl. the WAL -------------------

class BenchSink final : public WalSink {
 public:
  explicit BenchSink(std::vector<std::unique_ptr<ProcessStore>>& stores)
      : stores_(stores) {}
  void append(ProcessId p, Time t, const Event& e) override {
    stores_[static_cast<std::size_t>(p)]->append(t, e);
  }
  void seal(ProcessId p) override {
    stores_[static_cast<std::size_t>(p)]->flush();
  }

 private:
  std::vector<std::unique_ptr<ProcessStore>>& stores_;
};

fs::path bench_dir() {
  fs::path d = fs::temp_directory_path() / "udc_bench_rt";
  fs::remove_all(d);
  fs::create_directories(d);
  return d;
}

template <class Recorder>
void durable_throughput(benchmark::State& state, const StoreOptions& opts,
                        bool group_commit) {
  const int n = static_cast<int>(state.range(0));
  const int sends = static_cast<int>(state.range(1));
  std::size_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const fs::path dir = bench_dir();
    std::vector<std::unique_ptr<ProcessStore>> stores;
    for (ProcessId p = 0; p < n; ++p) {
      stores.push_back(std::make_unique<ProcessStore>(
          dir.string(), p, opts, std::vector<StorageFault>{}));
    }
    BenchSink sink(stores);
    Recorder rec(n, &sink);
    // Same wiring as run_live: the committer takes its engine from the
    // store options so the measured pipeline is the shipping one.
    GroupCommitter committer(
        GroupCommitOptions{opts.barrier, opts.flusher_threads});
    if (group_commit) {
      for (auto& s : stores) committer.attach(s.get());
    }
    state.ResumeTiming();
    events += drive(rec, n, sends);
    // The tail flush is part of the price of the batched mode; the inline
    // modes already paid at append time.
    if (group_commit) committer.stop();
  }
  set_row(state, n, events);
}

StoreOptions inline_opts(FsyncPolicy policy, int every) {
  StoreOptions o;
  o.fsync = policy;
  o.fsync_every = every;
  return o;
}

StoreOptions group_opts() {
  // The shipping runtime configuration (rt_default_store_options):
  // segmented WAL, ring-staged appends, batched barrier rounds through the
  // pinned flusher pool (see the engine note in rt/runtime.h).
  StoreOptions o;
  o.group_commit = true;
  o.segment_bytes = 256 * 1024;
  o.ring_frames = 4096;
  o.commit_every = 1024;
  o.commit_interval = std::chrono::microseconds{5'000};
  o.snapshot_every = 1024;
  o.barrier = CommitBarrier::kPool;
  return o;
}

// Settle the writeback and journal debt the PREVIOUS benchmark left
// behind so each durable row measures its own configuration, not its
// predecessor's backlog.  sync() alone is not enough: jbd2 keeps
// checkpointing after it returns and the residue costs the next row ~20%
// (measured on the reference box) — hence the post-sync grace.  Runs off
// the clock.
void settle_disk(const benchmark::State&) {
  ::sync();
  std::this_thread::sleep_for(std::chrono::seconds(2));
}

// The strictest inline baseline: serial recorder, fsync on every append.
void BM_DurableInlineFsync(benchmark::State& state) {
  durable_throughput<SerialTraceRecorder>(
      state, inline_opts(FsyncPolicy::kEveryAppend, 1),
      /*group_commit=*/false);
}
// The PR-4 shipping configuration: serial recorder, fsync every 8 frames.
void BM_DurableInlineFsyncEvery8(benchmark::State& state) {
  durable_throughput<SerialTraceRecorder>(
      state, inline_opts(FsyncPolicy::kEveryN, 8), /*group_commit=*/false);
}
// This PR's configuration: sharded recorder, WAL group commit.
void BM_DurableGroupCommit(benchmark::State& state) {
  durable_throughput<TraceRecorder>(state, group_opts(),
                                    /*group_commit=*/true);
}
BENCHMARK(BM_DurableInlineFsync)
    ->Args({2, 250})->Args({4, 250})->Args({8, 250})
    ->Setup(settle_disk)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime();
BENCHMARK(BM_DurableInlineFsyncEvery8)
    ->Args({2, 250})->Args({4, 250})->Args({8, 250})->Args({4, 1'000})
    ->Setup(settle_disk)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime();
BENCHMARK(BM_DurableGroupCommit)
    ->Args({2, 250})->Args({4, 250})->Args({8, 250})->Args({4, 1'000})
    ->Setup(settle_disk)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime();

// ---- lift latency: the merge must stay cheap ------------------------------

template <class Recorder>
void lift_latency(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int sends = static_cast<int>(state.range(1));
  Recorder rec(n);
  drive(rec, n, sends);
  for (auto _ : state) {
    const Run run = rec.lift();  // re-validates R1-R4 every time
    benchmark::DoNotOptimize(run.horizon());
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["threads"] = static_cast<double>(n);
  state.counters["events_per_sec"] = 0.0;
}

void BM_LiftSerial(benchmark::State& state) {
  lift_latency<SerialTraceRecorder>(state);
}
void BM_LiftSharded(benchmark::State& state) {
  lift_latency<TraceRecorder>(state);
}
BENCHMARK(BM_LiftSerial)
    ->Args({4, 1'250})->Args({8, 1'250})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LiftSharded)
    ->Args({4, 1'250})->Args({8, 1'250})
    ->Unit(benchmark::kMillisecond);

// ---- machine-readable rows (same contract as bench_knowledge_eval) --------

class JsonRowReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonRowReporter(std::string path) : path_(std::move(path)) {}

  bool write_failed() const { return write_failed_; }

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      Row row;
      row.bench = run.benchmark_name();
      row.n = counter_or(run, "n");
      row.threads = counter_or(run, "threads");
      row.events_per_sec = counter_or(run, "events_per_sec");
      row.ns_per_op = run.iterations == 0
                          ? 0.0
                          : run.real_accumulated_time * 1e9 /
                                static_cast<double>(run.iterations);
      rows_.push_back(std::move(row));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    std::FILE* out = std::fopen(path_.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      write_failed_ = true;
      return;
    }
    std::fprintf(out, "[\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(out,
                   "  {\"bench\": \"%s\", \"n\": %.0f, \"threads\": %.0f, "
                   "\"events_per_sec\": %.1f, \"ns_per_op\": %.1f}%s\n",
                   r.bench.c_str(), r.n, r.threads, r.events_per_sec,
                   r.ns_per_op, i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    std::fclose(out);
  }

 private:
  struct Row {
    std::string bench;
    double n = 0, threads = 0, events_per_sec = 0, ns_per_op = 0;
  };

  static double counter_or(const Run& run, const char* name) {
    auto it = run.counters.find(name);
    return it == run.counters.end() ? 0.0 : static_cast<double>(it->second);
  }

  std::string path_;
  std::vector<Row> rows_;
  bool write_failed_ = false;
};

}  // namespace
}  // namespace udc

int main(int argc, char** argv) {
  return udc::guarded_main("bench_rt_throughput", [&] {
    std::string json_path;
    std::vector<char*> args(argv, argv + argc);
    for (auto it = args.begin(); it != args.end();) {
      if (std::string(*it) == "--json" && it + 1 != args.end()) {
        json_path = *(it + 1);
        it = args.erase(it, it + 2);
      } else {
        ++it;
      }
    }
    int filtered_argc = static_cast<int>(args.size());
    benchmark::Initialize(&filtered_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
      return 1;
    }
    int rc = 0;
    if (json_path.empty()) {
      benchmark::RunSpecifiedBenchmarks();
    } else {
      udc::JsonRowReporter reporter(json_path);
      benchmark::RunSpecifiedBenchmarks(&reporter);
      if (reporter.write_failed()) rc = 1;
    }
    benchmark::Shutdown();
    return rc;
  });
}
