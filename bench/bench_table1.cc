// Experiment T1 — Table 1 of the paper: the failure-detector class needed
// for UDC vs consensus, by channel reliability and failure bound t.
//
//                 |  0 < t < n/2  |  n/2 <= t < n-1  |  n-1 <= t <= n
//  Reliable   UDC |     no FD     |      no FD       |     no FD
//         consens |     dW †      |      Strong      |     Perfect †
//  Unreliable UDC |     no FD     |    t-useful †    |     Perfect †
//         consens |     dW †      |      Strong      |     Perfect †
//
// For every cell we run the matching protocol/detector across an exhaustive
// crash-plan sweep and verify the spec; for the daggered (optimality) cells
// we additionally run the NECESSITY probe: the next-weaker detector class
// must yield a concrete violation witness.  Absolute message counts are
// simulator-specific; the SHAPE — which cells achieve and which probes
// fail — is the reproduced result.
#include "bench_util.h"

#include "udc/consensus/ct_strong.h"
#include "udc/consensus/rotating.h"
#include "udc/coord/nudc_protocol.h"
#include "udc/coord/udc_generalized.h"
#include "udc/coord/udc_majority.h"
#include "udc/coord/udc_reliable.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/kt/simulate_fd.h"

namespace udc::bench {
namespace {

constexpr int kN = 5;

// Representative t per column: t=2 (< n/2), t=3 (n/2 <= t < n-1), t=5 (= n).
constexpr int kSmallT = 2;
constexpr int kMidT = 3;
constexpr int kBigT = kN;

CoordSweep coord_cfg(double drop) {
  CoordSweep cfg;
  cfg.n = kN;
  cfg.drop = drop;
  return cfg;
}

struct ConsensusOutcome {
  ConsensusReport report;
  std::size_t runs = 0;
};

ConsensusOutcome run_consensus_sweep(double drop, int t,
                                     const OracleFactory& oracle,
                                     bool rotating,
                                     Time crash_earliest = 25,
                                     Time crash_latest = 140) {
  const std::vector<std::int64_t> values{3, 1, 4, 1, 5};
  SimConfig sim;
  sim.n = kN;
  sim.horizon = 700;
  sim.channel.drop_prob = drop;
  auto plans = all_crash_plans_up_to(kN, t, crash_earliest, crash_latest);
  System sys = generate_system(
      sim, plans, {}, oracle,
      rotating ? rotating_consensus_factory(values)
               : ct_strong_factory(values),
      2);
  return ConsensusOutcome{check_consensus(sys, values), sys.size()};
}

void print_consensus_row(const char* label, const ConsensusOutcome& out,
                         bool expect) {
  std::printf("  %-46s runs=%-4zu uniform-consensus=%-8s %s\n", label,
              out.runs, verdict(out.report.achieved_uniform()),
              out.report.achieved_uniform() == expect ? "[as predicted]"
                                                      : "[UNEXPECTED]");
  if (!out.report.achieved_uniform() && !out.report.violations.empty()) {
    std::printf("      e.g. %s\n", out.report.violations.front().c_str());
  }
}

void run() {
  std::printf("Table 1 reproduction: FD class needed for UDC vs consensus\n");
  std::printf("n = %d; columns t=%d (<n/2), t=%d (n/2..n-2), t=%d (>=n-1)\n",
              kN, kSmallT, kMidT, kBigT);

  // ---------------------------------------------------- Reliable channels
  heading("Reliable channels / UDC: no failure detector, any t");
  for (int t : {kSmallT, kMidT, kBigT}) {
    auto out = run_coord_sweep(coord_cfg(0.0), t, nullptr, [](ProcessId) {
      return std::make_unique<UdcReliableProcess>();
    });
    char label[64];
    std::snprintf(label, sizeof label, "t=%d, Prop 2.4 protocol, no FD", t);
    print_coord_row(label, out, /*expect_udc=*/true);
  }

  heading("Reliable channels / consensus");
  print_consensus_row(
      "t<n/2: rotating coordinator + eventually-strong",
      run_consensus_sweep(0.0, kSmallT,
                          [] {
                            return std::make_unique<EventuallyStrongOracle>(
                                4, 60, 0.3);
                          },
                          /*rotating=*/true),
      true);
  print_consensus_row(
      "n/2<=t<n-1: CT-S + Strong FD",
      run_consensus_sweep(0.0, kMidT,
                          [] { return std::make_unique<StrongOracle>(4, 0.2); },
                          false),
      true);
  print_consensus_row(
      "t>=n-1: CT-S + Perfect FD",
      run_consensus_sweep(0.0, kN - 1,
                          [] { return std::make_unique<PerfectOracle>(4); },
                          false),
      true);
  // Necessity probe (the dagger on the dW cell).  Crashes land at ticks
  // 2-10, before consensus can finish: with no detector the survivors wait
  // on the dead coordinator forever (the FLP obstruction).
  print_consensus_row(
      "PROBE t<n/2 without any FD (FLP)",
      run_consensus_sweep(0.0, 1, nullptr, /*rotating=*/true, 2, 10), false);

  // -------------------------------------------------- Unreliable channels
  heading("Unreliable (fair-lossy) channels / UDC");
  {
    auto out = run_coord_sweep(coord_cfg(0.3), kSmallT, nullptr,
                               [](ProcessId) {
                                 return std::make_unique<UdcMajorityProcess>();
                               });
    print_coord_row("t<n/2: majority echo, literally no FD", out, true);
  }
  {
    auto out = run_coord_sweep(
        coord_cfg(0.3), kSmallT,
        [] { return std::make_unique<TrivialGeneralizedOracle>(kSmallT, 2); },
        [](ProcessId) {
          return std::make_unique<UdcGeneralizedProcess>(kSmallT);
        });
    print_coord_row("t<n/2: same cell via content-free (S,0) FD", out, true);
  }
  {
    // The t >= n/2 boundary for the detector-free protocol.  The crashes
    // must land before quorums assemble (here: by tick 10) — with the
    // default late window the echoes are already in and every run
    // coincidentally completes.
    CoordSweep early = coord_cfg(0.3);
    early.crash_earliest = 2;
    early.crash_latest = 10;
    auto out = run_coord_sweep(early, kMidT, nullptr, [](ProcessId) {
      return std::make_unique<UdcMajorityProcess>();
    });
    print_coord_row("PROBE t>=n/2: majority echo loses liveness", out, false);
  }
  {
    auto out = run_coord_sweep(
        coord_cfg(0.3), kMidT,
        [] { return std::make_unique<TUsefulOracle>(kMidT, 4, 1); },
        [](ProcessId) {
          return std::make_unique<UdcGeneralizedProcess>(kMidT);
        });
    print_coord_row("n/2<=t<n-1: t-useful generalized FD (Prop 4.1)", out,
                    true);
  }
  {
    auto out = run_coord_sweep(
        coord_cfg(0.3), kBigT,
        [] { return std::make_unique<PerfectOracle>(4); },
        [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); });
    print_coord_row("t>=n-1: Perfect FD (Prop 3.1)", out, true);
  }
  // Necessity probes.
  {
    auto out = run_coord_sweep(
        coord_cfg(0.3), kMidT,
        [] { return std::make_unique<TrivialGeneralizedOracle>(kMidT, 2); },
        [](ProcessId) {
          return std::make_unique<UdcGeneralizedProcess>(kMidT);
        });
    print_coord_row("PROBE t=n/2..: content-free FD is NOT t-useful", out,
                    false);
  }
  {
    auto out = run_coord_sweep(coord_cfg(0.3), kBigT, nullptr, [](ProcessId) {
      return std::make_unique<UdcStrongFdProcess>();
    });
    print_coord_row("PROBE t=n: no FD at all", out, false);
  }
  {
    // The deep necessity direction for the Perfect cell is Theorem 3.6:
    // a system attaining UDC simulates a perfect detector.  Run it here as
    // the probe (full experiment: bench_thm_3_6).
    SimConfig sim;
    sim.n = 3;
    sim.horizon = 220;
    sim.channel.drop_prob = 0.25;
    auto workload = make_workload(3, 2, 4, 6);
    auto plans = all_crash_plans_up_to(3, 2, 15, 60);
    System sys = generate_system(
        sim, plans, workload,
        [] { return std::make_unique<PerfectOracle>(4); },
        [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); }, 1);
    System rf = build_rf(sys);
    FdPropertyReport rep = check_fd_properties(rf, 180);
    std::printf("  %-46s %s (Thm 3.6: UDC system => R^f perfect)\n",
                "PROBE necessity: R^f detector class",
                rep.perfect() ? "Perfect [as predicted]" : "NOT perfect");
  }

  heading("Unreliable channels / consensus");
  print_consensus_row(
      "t<n/2: rotating coordinator + eventually-strong",
      run_consensus_sweep(0.3, kSmallT,
                          [] {
                            return std::make_unique<EventuallyStrongOracle>(
                                4, 60, 0.3);
                          },
                          true),
      true);
  print_consensus_row(
      "n/2<=t<n-1: CT-S + Strong FD",
      run_consensus_sweep(0.3, kMidT,
                          [] { return std::make_unique<StrongOracle>(4, 0.2); },
                          false),
      true);
  print_consensus_row(
      "t>=n-1: CT-S + Perfect FD",
      run_consensus_sweep(0.3, kN - 1,
                          [] { return std::make_unique<PerfectOracle>(4); },
                          false),
      true);
  print_consensus_row(
      "PROBE t<n/2 without any FD (FLP)",
      run_consensus_sweep(0.3, 1, nullptr, true, 2, 10), false);

  heading("scale spot-checks at n = 7");
  {
    CoordSweep big;
    big.n = 7;
    big.drop = 0.3;
    big.seeds_per_plan = 1;
    auto out = run_coord_sweep(big, 3, nullptr, [](ProcessId) {
      return std::make_unique<UdcMajorityProcess>();
    });
    print_coord_row("n=7 t=3 (<n/2): majority echo, no FD", out, true);
  }
  {
    CoordSweep big;
    big.n = 7;
    big.drop = 0.3;
    big.seeds_per_plan = 1;
    auto out = run_coord_sweep(
        big, 7, [] { return std::make_unique<PerfectOracle>(4); },
        [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); });
    print_coord_row("n=7 t=n: Perfect FD (Prop 3.1)", out, true);
  }

  std::printf(
      "\nShape check: every named cell ACHIEVED, every probe VIOLATED =>\n"
      "the Table 1 boundary reproduces.\n");
}

}  // namespace
}  // namespace udc::bench

int main() {
  return udc::guarded_main("bench_table1",
                           [] {
    udc::bench::run();
    return 0;
  });
}
