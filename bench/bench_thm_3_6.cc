// Experiment T3.6 — Theorem 3.6: a system that attains UDC (under A1-A4,
// A5_{n-1}, with actions initiated throughout) SIMULATES PERFECT FAILURE
// DETECTORS via the f(r) construction (P1-P3): odd steps report
// { q : K_p crash(q) }.
//
// Positive runs: UDC-attaining systems across detector/drop configurations
// -> R^f is Perfect.  Controls: (i) an nUDC flooding system with a silenced
// process — the crash is never knowable, R^f fails completeness; (ii)
// accuracy holds for R^f from ANY source system (veridicality of
// knowledge).  A-assumption coverage of each source system is reported.
#include "bench_util.h"

#include "udc/coord/nudc_protocol.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/kt/assumptions.h"
#include "udc/kt/simulate_fd.h"

namespace udc::bench {
namespace {

constexpr int kN = 3;
constexpr Time kHorizon = 220;
constexpr Time kGrace = 90;

System udc_source(const OracleFactory& oracle, double drop,
                  std::uint64_t seed) {
  SimConfig sim;
  sim.n = kN;
  sim.horizon = kHorizon;
  sim.channel.drop_prob = drop;
  sim.seed = seed;
  auto workload = make_workload(kN, 2, 4, 6);
  auto plans = all_crash_plans_up_to(kN, kN - 1, 15, 60);
  // Parallel generation + sharded index build; bit-identical to the serial
  // factory (test_parallel.cc / test_checker_parallel.cc).
  return generate_system_parallel(
      sim, plans, workload, oracle,
      [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); }, 1);
}

void positive_case(const char* label, const OracleFactory& oracle,
                   double drop, std::uint64_t seed) {
  System sys = udc_source(oracle, drop, seed);
  auto workload = make_workload(kN, 2, 4, 6);
  auto actions = workload_actions(workload);
  bool udc = check_udc(sys, actions, kGrace).achieved();
  System rf = build_rf(sys);
  FdPropertyReport rep = check_fd_properties(rf, 2 * kGrace);
  std::printf("  %-36s source-UDC=%-8s  R^f=%-18s %s\n", label, verdict(udc),
              fd_class_name(strongest_class(rep)),
              rep.perfect() ? "[as predicted]" : "[UNEXPECTED]");
}

void run() {
  std::printf("Thm 3.6: UDC-attaining systems simulate perfect failure "
              "detectors (f(r), P1-P3); n=%d\n", kN);

  heading("positive direction: R^f from UDC systems");
  positive_case("perfect oracle, drop 0.25",
                [] { return std::make_unique<PerfectOracle>(4); }, 0.25, 21);
  positive_case("perfect oracle, drop 0.5",
                [] { return std::make_unique<PerfectOracle>(4); }, 0.5, 22);
  positive_case("perfect oracle, reliable",
                [] { return std::make_unique<PerfectOracle>(4); }, 0.0, 23);

  heading("assumption coverage of the source system (finite witnesses)");
  {
    System sys =
        udc_source([] { return std::make_unique<PerfectOracle>(4); }, 0.25,
                   21);
    auto workload = make_workload(kN, 2, 4, 6);
    auto actions = workload_actions(workload);
    AssumptionReport a5 = check_a5t(sys, kN - 1);
    AssumptionReport a1 = check_a1(sys, 8);
    std::printf("  A5_{n-1}: %zu/%zu   A1: %zu/%zu (vacuous %zu)\n",
                a5.satisfied, a5.checked, a1.satisfied, a1.checked,
                a1.vacuous);
  }

  heading("control: knowledge accuracy is unconditional");
  {
    SimConfig sim;
    sim.n = kN;
    sim.horizon = 140;
    sim.channel.drop_prob = 0.5;
    auto plans = all_crash_plans_up_to(kN, kN, 10, 50);
    auto workload = make_workload(kN, 1, 3, 5);
    System sys = generate_system(
        sim, plans, workload, nullptr,
        [](ProcessId) { return std::make_unique<NUdcProcess>(); }, 2);
    System rf = build_rf(sys);
    FdPropertyReport rep = check_fd_properties(rf, /*grace=*/140);
    std::printf("  nUDC source (no FD): R^f strong accuracy = %s\n",
                rep.strong_accuracy ? "Y [as predicted]" : "N [UNEXPECTED]");
  }

  heading("control: without UDC, completeness fails (silenced-twin system)");
  {
    SimConfig sim;
    sim.n = kN;
    sim.horizon = 120;
    sim.channel.custom_policy = std::make_shared<PartitionDropPolicy>(
        ProcSet::singleton(2), ProcSet::full(kN), 0, 0.0);
    std::vector<InitDirective> workload{{3, 0, make_action(0, 0)}};
    auto protocol = [](ProcessId) { return std::make_unique<NUdcProcess>(); };
    std::vector<Run> runs;
    runs.push_back(simulate(sim, make_crash_plan(kN, {{2, 30}}), nullptr,
                            workload, protocol)
                       .run);
    runs.push_back(
        simulate(sim, no_crashes(kN), nullptr, workload, protocol).run);
    System sys(std::move(runs));
    System rf = build_rf(sys);
    FdPropertyReport rep = check_fd_properties(rf, 0);
    std::printf("  p2 silenced, crash-vs-no-crash twins: R^f completeness "
                "(any flavor) = %s\n",
                rep.impermanent_weak_completeness ? "Y [UNEXPECTED]"
                                                  : "N [as predicted]");
  }

  std::printf("\nShape: R^f is Perfect exactly for the UDC-attaining "
              "sources; accuracy always holds; completeness is what UDC "
              "buys — the theorem's content.\n");
}

}  // namespace
}  // namespace udc::bench

int main() {
  return udc::guarded_main("bench_thm_3_6",
                           [] {
    udc::bench::run();
    return 0;
  });
}
