// The paper's motivating scenario (§1): a replicated resource-allocation
// service.  Clients submit allocation requests; each replica that accepts a
// request initiates a UDC action for it.  Uniformity is the service-level
// guarantee that matters: once ANY replica applies an allocation — even one
// that crashes a tick later — every correct replica applies it too, so the
// service can never repudiate an acknowledged allocation.
//
// The run below engineers exactly the awkward case: replica 1 accepts and
// applies a request, then crashes.  With UDC the allocation survives in the
// communal history; the example also replays the same schedule under the
// non-uniform flooding protocol to show the repudiation anomaly UDC rules
// out.
//
//   build/examples/replicated_service
#include <cstdio>
#include <map>

#include "udc/coord/action.h"
#include "udc/coord/nudc_protocol.h"
#include "udc/coord/spec.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/oracle.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/simulator.h"

namespace {

using namespace udc;

constexpr int kReplicas = 5;

struct Request {
  const char* client;
  const char* resource;
  ProcessId accepted_by;  // the replica the client happened to reach
  Time at;
};

// Rebuild each replica's applied-allocations ledger from its do events.
std::map<ActionId, Time> ledger_of(const Run& r, ProcessId p) {
  std::map<ActionId, Time> out;
  const History& h = r.history(p);
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (h[i].kind == EventKind::kDo) out[h[i].action] = r.event_time(p, i);
  }
  return out;
}

void report(const char* title, const Run& r, const std::vector<Request>& reqs,
            const std::vector<ActionId>& actions) {
  std::printf("\n-- %s --\n", title);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Request& rq = reqs[i];
    std::printf("request %s/%s (accepted by replica %d%s):\n", rq.client,
                rq.resource, rq.accepted_by,
                r.is_faulty(rq.accepted_by) ? ", which later CRASHED" : "");
    for (ProcessId p = 0; p < kReplicas; ++p) {
      auto ledger = ledger_of(r, p);
      auto it = ledger.find(actions[i]);
      std::printf("  replica %d %-9s %s\n", p,
                  r.is_faulty(p) ? "(faulty)" : "(correct)",
                  it != ledger.end()
                      ? ("applied at t=" + std::to_string(it->second)).c_str()
                      : "NOT applied");
    }
  }
  CoordReport udc = check_udc(r, actions, 150);
  CoordReport nudc = check_nudc(r, actions, 150);
  std::printf("service guarantee: UDC=%s nUDC=%s\n",
              udc.achieved() ? "ACHIEVED" : "VIOLATED",
              nudc.achieved() ? "ACHIEVED" : "VIOLATED");
}

}  // namespace

int main() {
  using namespace udc;

  std::vector<Request> requests{
      {"alice", "gpu-7", 1, 10},
      {"bob", "volume-3", 3, 18},
  };
  std::vector<InitDirective> workload;
  std::vector<ActionId> actions;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ActionId a =
        make_action(requests[i].accepted_by, static_cast<ActionId>(i));
    actions.push_back(a);
    workload.push_back({requests[i].at, requests[i].accepted_by, a});
  }

  SimConfig config;
  config.n = kReplicas;
  config.horizon = 600;
  config.channel.drop_prob = 0.35;
  // Replica 1 crashes shortly after accepting alice's request; replica 4
  // crashes later, having been a bystander.
  CrashPlan plan = make_crash_plan(kReplicas, {{1, 26}, {4, 200}});

  {
    StrongOracle detector(4, 0.15);
    SimResult res =
        simulate(config, plan, &detector, workload, [](ProcessId) {
          return std::make_unique<UdcStrongFdProcess>();
        });
    report("UDC service (Prop 3.1 protocol, strong detector)", res.run,
           requests, actions);
  }
  {
    // Same schedule under non-uniform flooding: replica 1's application of
    // alice's allocation may die with it (if its messages were lost), which
    // is precisely what a client-facing service cannot tolerate.  To make
    // the anomaly deterministic, silence replica 1's channels.
    SimConfig cruel = config;
    cruel.channel.custom_policy = std::make_shared<PartitionDropPolicy>(
        ProcSet::singleton(1), ProcSet::full(kReplicas), 0, 0.0);
    SimResult res = simulate(cruel, plan, nullptr, workload, [](ProcessId) {
      return std::make_unique<NUdcProcess>();
    });
    report("non-uniform service (flooding, replica 1 silenced)", res.run,
           requests, actions);
    std::printf(
        "\nalice was told \"allocated\" by replica 1, but the surviving\n"
        "replicas never heard of it: the non-uniform service repudiates an\n"
        "acknowledged allocation.  UDC makes that impossible.\n");
  }
  return 0;
}
