// Uniform Reliable Multicast (Schiper & Sandoz [SS93]) as a special case of
// UDC — the paper points out that URM is exactly UDC where the only action
// is "deliver message m", and that [SS93] implement it over virtual
// synchrony because that simulates perfect failure detection, which (Thm
// 3.6) is what UDC fundamentally requires.
//
// This example builds a tiny URM facade on top of the UDC engine: mcast(m)
// initiates a delivery action; the uniform-delivery property is then DC2
// verbatim — if ANY group member delivers m (even one that crashes right
// after), every correct member delivers m.
//
//   build/examples/uniform_multicast
#include <cstdio>
#include <string>
#include <vector>

#include "udc/coord/action.h"
#include "udc/coord/spec.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/oracle.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/simulator.h"

namespace {

using namespace udc;

// A minimal URM session: maps message payloads to UDC actions and reads
// delivery events back out of the run.
class MulticastSession {
 public:
  explicit MulticastSession(int group_size) : n_(group_size) {}

  // Schedules sender to multicast `payload` at `at`.
  void mcast(ProcessId sender, Time at, std::string payload) {
    ActionId a = make_action(sender, static_cast<ActionId>(messages_.size()));
    messages_.push_back(std::move(payload));
    actions_.push_back(a);
    workload_.push_back({at, sender, a});
  }

  // Runs the group with the given crash schedule and prints the delivery
  // matrix plus the uniform-delivery verdict.
  void run(const CrashPlan& plan, double drop) {
    SimConfig config;
    config.n = n_;
    config.horizon = 600;
    config.channel.drop_prob = drop;
    StrongOracle detector(4, 0.1);
    SimResult res =
        simulate(config, plan, &detector, workload_, [](ProcessId) {
          return std::make_unique<UdcStrongFdProcess>();
        });

    std::printf("delivery matrix (rows: members; columns: messages):\n     ");
    for (std::size_t i = 0; i < messages_.size(); ++i) {
      std::printf(" %-12s", messages_[i].c_str());
    }
    std::printf("\n");
    for (ProcessId p = 0; p < n_; ++p) {
      std::printf("  p%d%s", p, res.run.is_faulty(p) ? "†" : " ");
      for (ActionId a : actions_) {
        auto t = res.run.first_event_time(p, [a](const Event& e) {
          return e.kind == EventKind::kDo && e.action == a;
        });
        if (t) {
          std::printf("  t=%-9lld", static_cast<long long>(*t));
        } else {
          std::printf("  %-11s", "-");
        }
      }
      std::printf("\n");
    }
    CoordReport rep = check_udc(res.run, actions_, /*grace=*/150);
    std::printf("uniform delivery (DC1-DC3): %s\n",
                rep.achieved() ? "ACHIEVED" : "VIOLATED");
    for (const std::string& v : rep.violations) {
      std::printf("  %s\n", v.c_str());
    }
  }

 private:
  int n_;
  std::vector<std::string> messages_;
  std::vector<ActionId> actions_;
  std::vector<InitDirective> workload_;
};

}  // namespace

int main() {
  using namespace udc;
  constexpr int kGroup = 5;

  MulticastSession session(kGroup);
  session.mcast(0, 8, "m1:config");
  session.mcast(2, 15, "m2:update");
  session.mcast(4, 22, "m3:commit");

  std::printf("URM group of %d over fair-lossy channels (30%% loss);\n"
              "member 2 crashes mid-session; member 4 crashes right after\n"
              "multicasting m3.\n\n",
              kGroup);
  CrashPlan plan = make_crash_plan(kGroup, {{2, 100}, {4, 35}});
  session.run(plan, 0.3);

  std::printf("\n† = crashed member.  Note m3: its sender died right after\n"
              "multicasting (possibly before anyone else had it), yet every\n"
              "correct member delivered — uniform delivery, DC2 verbatim.\n");
  return 0;
}
