// Quickstart: coordinate one action uniformly across a 4-process group over
// a lossy network, with a strong failure detector — the Proposition 3.1
// configuration, end to end in ~40 lines of user code.
//
//   build/examples/quickstart
#include <cstdio>

#include "udc/coord/action.h"
#include "udc/coord/spec.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/oracle.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/simulator.h"

int main() {
  using namespace udc;

  // A context: 4 processes, fair-lossy channels losing 30% of messages.
  SimConfig config;
  config.n = 4;
  config.horizon = 400;
  config.channel.drop_prob = 0.3;

  // Process 2 will crash at tick 60; the detector is strong (it may suspect
  // innocents, but every crash is eventually reported to everyone).
  CrashPlan plan = make_crash_plan(config.n, {{2, 60}});
  StrongOracle detector(/*period=*/4, /*false_rate=*/0.2);

  // The workload: process 0 initiates action α at tick 10.
  const ActionId alpha = make_action(/*owner=*/0, /*seq=*/0);
  std::vector<InitDirective> workload{{10, 0, alpha}};

  // Run the Prop 3.1 ack-based UDC protocol.
  SimResult result =
      simulate(config, plan, &detector, workload, [](ProcessId) {
        return std::make_unique<UdcStrongFdProcess>();
      });

  // Who performed α, and when?
  std::printf("action α (owned by p0), initiated at t=10:\n");
  for (ProcessId p = 0; p < config.n; ++p) {
    auto done = result.run.first_event_time(p, [&](const Event& e) {
      return e.kind == EventKind::kDo && e.action == alpha;
    });
    std::string when =
        done ? "performed at t=" + std::to_string(*done) : "never performed";
    std::printf("  p%d %-9s %s\n", p,
                result.run.is_faulty(p) ? "(faulty)" : "(correct)",
                when.c_str());
  }

  // Verify the Uniform Distributed Coordination spec (DC1-DC3).
  std::vector<ActionId> actions{alpha};
  CoordReport report = check_udc(result.run, actions, /*grace=*/100);
  std::printf("UDC: %s  (%zu messages sent, %zu dropped by the network)\n",
              report.achieved() ? "ACHIEVED" : "VIOLATED",
              result.messages_sent, result.messages_dropped);
  return report.achieved() ? 0 : 1;
}
