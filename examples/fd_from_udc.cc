// Theorem 3.6 as a runnable artifact: extract a PERFECT failure detector
// from a system that attains UDC, without ever reading the oracle — purely
// from what processes KNOW (indistinguishability over the system).
//
// We generate a small UDC-attaining system, build R^f (P1-P3: odd steps
// report { q : K_p crash(q) }), print one run's suspicion timeline next to
// the actual crashes, and verify the extracted detector's class.
//
//   build/examples/fd_from_udc
#include <cstdio>

#include "udc/coord/action.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/oracle.h"
#include "udc/fd/properties.h"
#include "udc/kt/knowledge_fd.h"
#include "udc/kt/simulate_fd.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

int main() {
  using namespace udc;
  constexpr int kN = 3;
  constexpr Time kHorizon = 200;

  SimConfig config;
  config.n = kN;
  config.horizon = kHorizon;
  config.channel.drop_prob = 0.25;
  auto workload = make_workload(kN, 2, 4, 6);
  auto plans = all_crash_plans_up_to(kN, kN - 1, 20, 70);
  System sys = generate_system(
      config, plans, workload,
      [] { return std::make_unique<PerfectOracle>(4); },
      [](ProcessId) { return std::make_unique<UdcStrongFdProcess>(); },
      /*seeds_per_plan=*/1);
  std::printf("source system: %zu runs of a UDC-attaining protocol\n",
              sys.size());

  // Pick a run with two crashes and show what p (a correct process) KNOWS
  // over time — this is exactly the detector f(r) installs.
  std::size_t pick = 0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    if (sys.run(i).faulty_set().size() == 2) pick = i;
  }
  const Run& r = sys.run(pick);
  ProcessId observer = *r.correct_set().begin();
  std::printf("\nrun %zu: crashes =", pick);
  for (ProcessId q : r.faulty_set()) {
    std::printf(" p%d@t=%lld", q,
                static_cast<long long>(*r.crash_time(q)));
  }
  std::printf("; observer = p%d\n", observer);
  std::printf("%6s  %-18s %s\n", "time", "actually crashed",
              "knowledge-derived suspicions { q : K_p crash(q) }");
  ProcSet last = ProcSet::full(kN);  // sentinel to force the first line
  for (Time m = 0; m <= r.horizon(); m += 2) {
    ProcSet known = known_crashed(sys, Point{pick, m}, observer);
    ProcSet actual;
    for (ProcessId q = 0; q < kN; ++q) {
      if (r.crashed_by(q, m)) actual.insert(q);
    }
    if (known == last) continue;  // print only the changes
    last = known;
    std::printf("%6lld  %-18s %s\n", static_cast<long long>(m),
                actual.to_string().c_str(), known.to_string().c_str());
  }

  // The full construction and its verdict.
  System rf = build_rf(sys);
  FdPropertyReport rep = check_fd_properties(rf, /*grace=*/180);
  std::printf("\nR^f detector class: %s\n",
              fd_class_name(strongest_class(rep)));
  std::printf("  %s\n", rep.summary().c_str());
  std::printf("The suspicions above were never read from an oracle — they\n"
              "are forced by the UDC protocol's information flow, which is\n"
              "the theorem: attaining UDC means being able to simulate a\n"
              "perfect failure detector.\n");
  return rep.perfect() ? 0 : 1;
}
