// The paper's §1 distinction between UDC and consensus, on the classic
// two-generals vocabulary:
//
//   "With UDC, if one process attacks, all the correct processes must
//    attack, and if one retreats, all must retreat.  But it is perfectly
//    consistent with UDC for the correct processes BOTH to attack and to
//    retreat."
//
// Two generals each initiate their own action — attack (owned by g0) and
// retreat (owned by g1).  Under UDC both actions propagate to every correct
// member: no choice is made, and none is needed when actions do not
// conflict (think: two independent resource grants).  Consensus is the
// machinery for CONFLICTING actions — it picks exactly one value — and
// costs the ✸W/Strong/Perfect detectors of Table 1's consensus rows even
// where UDC's row says "no FD".
//
//   build/examples/attack_retreat
#include <cstdio>
#include <string>

#include "udc/consensus/rotating.h"
#include "udc/consensus/spec.h"
#include "udc/coord/action.h"
#include "udc/coord/spec.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/fd/oracle.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/simulator.h"

int main() {
  using namespace udc;
  constexpr int kGenerals = 4;

  SimConfig config;
  config.n = kGenerals;
  config.horizon = 500;
  config.channel.drop_prob = 0.3;

  const ActionId attack = make_action(0, 0);
  const ActionId retreat = make_action(1, 0);
  std::vector<InitDirective> workload{{5, 0, attack}, {9, 1, retreat}};
  std::vector<ActionId> actions{attack, retreat};
  CrashPlan plan = make_crash_plan(kGenerals, {{3, 60}});

  std::printf("-- UDC: both actions, no conflict, no choice --\n");
  {
    StrongOracle detector(4, 0.2);
    SimResult res =
        simulate(config, plan, &detector, workload, [](ProcessId) {
          return std::make_unique<UdcStrongFdProcess>();
        });
    for (ProcessId g = 0; g < kGenerals; ++g) {
      auto t_attack = res.run.first_event_time(g, [&](const Event& e) {
        return e.kind == EventKind::kDo && e.action == attack;
      });
      auto t_retreat = res.run.first_event_time(g, [&](const Event& e) {
        return e.kind == EventKind::kDo && e.action == retreat;
      });
      std::string a = t_attack ? "at t=" + std::to_string(*t_attack) : "never";
      std::string r = t_retreat ? "at t=" + std::to_string(*t_retreat) : "never";
      std::printf("  general %d%s: attack %s, retreat %s\n", g,
                  res.run.is_faulty(g) ? " (crashed)" : "", a.c_str(),
                  r.c_str());
    }
    CoordReport rep = check_udc(res.run, actions, 150);
    std::printf("  UDC over both actions: %s — everyone (correct) did BOTH;"
                "\n  coordination without agreement.\n",
                rep.achieved() ? "ACHIEVED" : "VIOLATED");
  }

  std::printf("\n-- consensus: the same generals forced to pick ONE --\n");
  {
    // attack = 1, retreat = 0; generals 0,2 propose attack, 1,3 retreat.
    const std::vector<std::int64_t> proposals{1, 0, 1, 0};
    EventuallyStrongOracle detector(4, 60, 0.3);
    SimResult res =
        simulate(config, plan, &detector, {}, rotating_consensus_factory(proposals));
    for (ProcessId g = 0; g < kGenerals; ++g) {
      auto d = decision_of(res.run, g);
      std::printf("  general %d%s: decided %s\n", g,
                  res.run.is_faulty(g) ? " (crashed)" : "",
                  d ? (*d == 1 ? "ATTACK" : "RETREAT") : "nothing");
    }
    ConsensusReport rep = check_consensus(res.run, proposals);
    std::printf("  uniform consensus: %s — one value for everyone, bought\n"
                "  with an eventually-strong detector (Table 1's price for\n"
                "  conflicting actions).\n",
                rep.achieved_uniform() ? "ACHIEVED" : "VIOLATED");
  }
  return 0;
}
