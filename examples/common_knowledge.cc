// Common knowledge and the coordinated-attack impossibility — the
// knowledge-theoretic backdrop ([FHMV95]) of the paper's analysis.
//
// Two generals coordinate over a lossy channel.  General 0 decides to
// attack (initiates α) and messengers flood the fact across.  We track, at
// each time, the highest attained rung of the knowledge ladder:
//
//    init  →  K_1(init)  →  K_0 K_1(init)  →  K_1 K_0 K_1(init)  →  ...
//
// Each delivered message climbs one rung, but COMMON knowledge — the whole
// infinite ladder, what simultaneous coordinated attack would require — is
// never attained at any point of any run.  This is why UDC (which only
// needs *eventual* coordination) is attainable over lossy links while
// simultaneous coordination is not.
//
//   build/examples/common_knowledge
#include <cstdio>
#include <string>
#include <vector>

#include "udc/coord/action.h"
#include "udc/coord/nudc_protocol.h"
#include "udc/logic/eval.h"
#include "udc/sim/crash_schedule.h"
#include "udc/sim/system_factory.h"

int main() {
  using namespace udc;
  constexpr int kGenerals = 2;
  constexpr Time kHorizon = 80;

  SimConfig config;
  config.n = kGenerals;
  config.horizon = kHorizon;
  config.channel.drop_prob = 0.3;
  config.seed = 11;

  const ActionId attack = make_action(0, 0);
  std::vector<InitDirective> workload{{3, 0, attack}};
  // The epistemic alternatives matter as much as the actual run: the system
  // contains the no-attack worlds too (power-set workloads), under the same
  // seeds, so "maybe nothing happened" is always a live possibility.
  auto workloads = workload_power_set(workload);
  auto plans = std::vector<CrashPlan>{no_crashes(kGenerals)};
  System sys = generate_system_multi(
      config, plans, workloads, nullptr,
      [](ProcessId) { return std::make_unique<NUdcProcess>(); },
      /*seeds_per_combo=*/3);
  std::printf("system: %zu runs (attack and no-attack worlds, 3 seeds)\n\n",
              sys.size());

  ModelChecker mc(sys);
  auto phi = f_init(0, attack);
  ProcSet both = ProcSet::full(kGenerals);

  // The ladder: phi, K1 phi, K0 K1 phi, K1 K0 K1 phi, ...
  std::vector<FormulaPtr> ladder{phi};
  std::vector<std::string> names{"init"};
  ProcessId turn = 1;
  for (int depth = 1; depth <= 6; ++depth) {
    ladder.push_back(f_knows(turn, ladder.back()));
    names.push_back("K" + std::to_string(turn) + "(" + names.back() + ")");
    turn = 1 - turn;
  }

  // Find the attack run (full workload, first seed) and climb.
  std::size_t attack_run = 0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    if (sys.run(i).init_in(0, kHorizon, attack)) {
      attack_run = i;
      break;
    }
  }
  std::printf("knowledge ladder in run %zu (first time each rung holds):\n",
              attack_run);
  for (std::size_t d = 0; d < ladder.size(); ++d) {
    Time first = -1;
    for (Time m = 0; m <= kHorizon; ++m) {
      if (mc.holds_at(Point{attack_run, m}, ladder[d])) {
        first = m;
        break;
      }
    }
    if (first >= 0) {
      std::printf("  %-24s from t=%lld\n", names[d].c_str(),
                  static_cast<long long>(first));
    } else {
      std::printf("  %-24s never within the horizon\n", names[d].c_str());
    }
  }

  // Common knowledge: never, anywhere.
  bool c_anywhere = false;
  sys.for_each_point([&](Point at) {
    if (mc.holds_at(at, f_common_knows(both, phi))) c_anywhere = true;
  });
  std::printf("\nC_{0,1}(init) attained anywhere in the system: %s\n",
              c_anywhere ? "YES (?!)" : "no — coordinated attack is "
                                        "impossible over lossy links");
  std::printf(
      "\nEvery delivered messenger climbs one rung; the ladder never\n"
      "closes.  UDC sidesteps this: DC2 only demands that everyone\n"
      "EVENTUALLY acts, which (Thm 3.6) costs perfect failure detection\n"
      "rather than common knowledge.\n");
  return c_anywhere ? 1 : 0;
}
