// Client library for the replicated coordination service.
//
// One SvcClient owns one wire identity (kClientPeerBase + instance) and any
// number of client SESSIONS multiplexed over it.  Per session the contract
// is strict: at most one write in flight, write sequences dense from 1 —
// which is exactly what lets the server-side dedup table stay O(1) per
// session and makes a retry across a leader crash commit exactly once.
//
// Retry discipline (the robustness story lives here, not in happy paths):
//   * every in-flight op carries a request timeout; on expiry the client
//     ROTATES its leader guess and resends the SAME (session, seq) — the
//     session table makes the duplicate harmless;
//   * kNotLeader switches to the server's hint (or rotates) and resends
//     almost immediately — redirect chasing is cheap;
//   * kRetryLater waits max(server-suggested backoff, the client's own
//     jittered exponential schedule) — backpressure is honored, and jitter
//     decorrelates the herd when an overloaded leader sheds load;
//   * an admitted write may be answered only when it APPLIES, possibly by a
//     later retry hitting the dedup cache after a failover — the client
//     keeps retrying the same op until some leader says kOk.
//
// Completion callbacks fire on the client's internal threads, once per op,
// in per-session submission order; the latency reported is measured from
// the FIRST submission (open-loop honest: retries and failovers count).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

#include "udc/common/rng.h"
#include "udc/common/types.h"
#include "udc/net/backoff.h"
#include "udc/net/reactor.h"
#include "udc/svc/checker.h"
#include "udc/svc/wire.h"

namespace udc {

struct SvcClientOptions {
  int instance = 0;  // wire id = kClientPeerBase + instance
  std::uint64_t run_id = 0;
  int n = 0;  // fleet size, for leader-guess rotation
  std::uint64_t seed = 1;
  std::chrono::milliseconds request_timeout{40};
  BackoffOptions backoff{/*base=*/2, /*growth=*/1.6, /*cap=*/120,
                         /*jitter=*/0.4};  // milliseconds
};

struct SvcClientStats {
  std::uint64_t completions = 0;
  std::uint64_t writes_done = 0;
  std::uint64_t reads_done = 0;
  std::uint64_t resends = 0;       // timeout-driven duplicates
  std::uint64_t redirects = 0;     // kNotLeader replies seen
  std::uint64_t retry_later = 0;   // backpressure replies honored
  std::uint64_t out_of_order = 0;  // kOutOfOrder replies seen
};

class SvcClient {
 public:
  // `on_done` fires once per completed op with the confirmed record and the
  // first-submit-to-completion latency in milliseconds.
  using DoneFn = std::function<void(const SvcClientRecord&, double)>;

  SvcClient(SvcClientOptions opts, DoneFn on_done);
  ~SvcClient();

  SvcClient(const SvcClient&) = delete;
  SvcClient& operator=(const SvcClient&) = delete;

  // (Re)points node `id`'s endpoint; the reactor dials/redials.  Called by
  // the fleet whenever a node (re)starts on a fresh port.
  void set_node_port(ProcessId node, std::uint16_t port);

  // Enqueues one op on `session` (FIFO per session, one in flight).  The
  // session id must be unique to this client instance across the fleet.
  void write(std::uint64_t session, std::int32_t reg, std::int64_t value);
  void read(std::uint64_t session, std::int32_t reg);

  // Ops submitted but not yet completed (queued + in flight).
  std::size_t inflight() const;

  SvcClientStats stats() const;

  // Stops the retry thread and the reactor.  Idempotent; the destructor
  // calls it.  In-flight ops are abandoned (no completion fires).
  void stop();

 private:
  struct Session {
    // Reads and writes share the reply-matching key (on_reply matches by
    // seq alone), so the nonce stream MUST be disjoint from the dense
    // write sequence — a colliding delayed read reply would complete a
    // later write that never applied.  Writes can't reach 1<<62 in any run.
    static constexpr std::uint64_t kReadNonceBase = std::uint64_t{1} << 62;
    std::uint64_t next_write_seq = 1;
    std::uint64_t next_read_nonce = kReadNonceBase;
    std::deque<SvcOp> queue;
    bool busy = false;
    SvcOp cur;
    std::chrono::steady_clock::time_point first_submit;
    std::chrono::steady_clock::time_point next_fire;  // timeout or retry
    bool rotate_on_fire = true;
    int attempts = 0;
  };

  void submit(std::uint64_t session, SvcOp op);
  void send_cur(Session& s, std::chrono::steady_clock::time_point now);
  void on_reply(const SvcReply& r);
  void timer_loop();

  SvcClientOptions opts_;
  DoneFn on_done_;
  Reactor reactor_;
  std::thread timer_;

  mutable std::mutex mu_;
  std::map<std::uint64_t, Session> sessions_;
  ProcessId leader_guess_ = 0;
  std::size_t inflight_ = 0;
  SvcClientStats stats_;
  Rng rng_;
  bool stopped_ = false;
};

}  // namespace udc
