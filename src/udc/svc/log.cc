#include "udc/svc/log.h"

#include <algorithm>

namespace udc {

namespace {

bool commute(const SvcBatch& a, const SvcBatch& b) {
  // Two batches may swap apply order only if NO observable state is shared:
  // disjoint sessions (or per-session order breaks) AND disjoint registers
  // (or replicas applying in different orders diverge on final values and
  // report crash-unstable versions).  Batches are small (bounded by the
  // seal cap); sets beat anything fancier at this size.
  std::set<std::uint64_t> sa;
  std::set<std::int32_t> ra;
  for (const auto& op : a.ops) {
    sa.insert(op.session);
    ra.insert(op.reg);
  }
  for (const auto& op : b.ops) {
    if (sa.count(op.session) || ra.count(op.reg)) return false;
  }
  return true;
}

}  // namespace

bool ReplicatedLog::accept(const SvcBatch& b, bool known_committed) {
  // An action re-sealed at a NEW slot (failover adoption) obsoletes any
  // uncommitted entry still holding it at an old slot: left in place, that
  // stale entry could never commit (its action commits elsewhere) and would
  // block the applied floor forever.  A committed old slot instead refuses
  // the move — the action already has the home the cluster agreed on.
  auto prev = by_action_.find(b.action);
  if (prev != by_action_.end() && prev->second != b.slot) {
    auto pt = slots_.find(prev->second);
    if (pt != slots_.end()) {
      if (pt->second.committed || pt->second.applied) return false;
      slots_.erase(pt);
    }
    by_action_.erase(prev);
  }
  auto it = slots_.find(b.slot);
  if (it != slots_.end()) {
    SvcLogEntry& e = it->second;
    if (e.committed || e.applied) {
      // Re-accept of committed content with the same action is an
      // idempotent re-teach; different content is refused.
      return e.batch.action == b.action;
    }
    if (b.term < e.batch.term && !known_committed) return false;
    if (e.batch.action != b.action) {
      by_action_.erase(e.batch.action);
      by_action_[b.action] = b.slot;
    }
    if (e.batch.action != b.action || e.batch.term != b.term) {
      // An ack vouches for ONE (action, term) acceptance.  Acks recorded
      // under an older term may cover a different acceptance the acker has
      // since replaced — counting them toward quorum after a re-seal would
      // commit on a fake majority (two actions could commit at one slot at
      // different replicas).  Content or term changed: all acks are void.
      e.acks = ProcSet();
    }
    e.batch = b;
    return true;
  }
  SvcLogEntry e;
  e.batch = b;
  by_action_[b.action] = b.slot;
  slots_.emplace(b.slot, std::move(e));
  return true;
}

void ReplicatedLog::ack(std::uint64_t slot, ProcessId from) {
  auto it = slots_.find(slot);
  if (it == slots_.end()) return;
  it->second.acks.insert(from);
}

bool ReplicatedLog::has_quorum(std::uint64_t slot, int n) const {
  auto it = slots_.find(slot);
  return it != slots_.end() && it->second.acks.size() * 2 > n;
}

void ReplicatedLog::mark_committed(std::uint64_t slot) {
  auto it = slots_.find(slot);
  if (it != slots_.end()) it->second.committed = true;
}

bool ReplicatedLog::applicable(std::uint64_t slot) const {
  auto it = slots_.find(slot);
  if (it == slots_.end() || !it->second.committed || it->second.applied) {
    return false;
  }
  for (std::uint64_t j = applied_floor_ + 1; j < slot; ++j) {
    auto jt = slots_.find(j);
    if (jt == slots_.end()) return false;  // unknown gap: wait for catch-up
    if (jt->second.applied) continue;
    if (!commute(jt->second.batch, it->second.batch)) return false;
  }
  return true;
}

bool ReplicatedLog::mark_applied(std::uint64_t slot) {
  auto it = slots_.find(slot);
  if (it == slots_.end() || it->second.applied) return false;
  it->second.applied = true;
  it->second.committed = true;
  ++applied_count_;
  bool out_of_order = slot != applied_floor_ + 1;
  for (;;) {
    auto nt = slots_.find(applied_floor_ + 1);
    if (nt == slots_.end() || !nt->second.applied) break;
    ++applied_floor_;
  }
  return out_of_order;
}

std::vector<std::uint64_t> ReplicatedLog::ready() const {
  std::vector<std::uint64_t> out;
  for (const auto& [slot, e] : slots_) {
    if (e.committed && !e.applied && applicable(slot)) out.push_back(slot);
  }
  return out;
}

const SvcLogEntry* ReplicatedLog::entry(std::uint64_t slot) const {
  auto it = slots_.find(slot);
  return it == slots_.end() ? nullptr : &it->second;
}

std::optional<std::uint64_t> ReplicatedLog::slot_of(ActionId action) const {
  auto it = by_action_.find(action);
  if (it == by_action_.end()) return std::nullopt;
  return it->second;
}

void ReplicatedLog::learn_floor(std::uint64_t f, std::uint64_t notice_term) {
  for (auto& [slot, e] : slots_) {
    if (slot > f) break;
    if (e.batch.term == notice_term) e.committed = true;
  }
}

std::uint64_t ReplicatedLog::max_slot() const {
  return slots_.empty() ? 0 : slots_.rbegin()->first;
}

std::vector<std::uint64_t> ReplicatedLog::applied_above_floor() const {
  std::vector<std::uint64_t> out;
  for (auto it = slots_.upper_bound(applied_floor_); it != slots_.end();
       ++it) {
    if (it->second.applied) out.push_back(it->first);
  }
  return out;
}

std::vector<const SvcLogEntry*> ReplicatedLog::uncommitted() const {
  std::vector<const SvcLogEntry*> out;
  for (const auto& [slot, e] : slots_) {
    if (!e.committed) out.push_back(&e);
  }
  return out;
}

}  // namespace udc
