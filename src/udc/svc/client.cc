#include "udc/svc/client.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "udc/common/check.h"
#include "udc/net/wire.h"

namespace udc {

namespace {

ReactorOptions client_reactor_options(const SvcClientOptions& o) {
  ReactorOptions r;
  r.self = kClientPeerBase + o.instance;
  r.n = 0;  // pure dialer: accept whatever id the dialed node presents
  r.run_id = o.run_id;
  r.seed = o.seed ^ 0x636c6e74ull;  // "clnt"
  return r;
}

}  // namespace

SvcClient::SvcClient(SvcClientOptions opts, DoneFn on_done)
    : opts_(opts),
      on_done_(std::move(on_done)),
      reactor_(
          client_reactor_options(opts),
          [this](ProcessId /*peer*/, std::uint64_t /*epoch*/,
                 const WireFrame& f) {
            if (f.type != FrameType::kSvcReply) return;
            if (auto r = decode_svc_reply(f.payload.data(),
                                          f.payload.size())) {
              on_reply(*r);
            }
          },
          [](ProcessId, std::uint64_t, bool, std::uint16_t) {}),
      rng_(opts.seed ^ 0x72747279ull) {  // "rtry"
  UDC_CHECK(opts_.n >= 1, "svc client: bad fleet size");
  reactor_.start();
  timer_ = std::thread([this] { timer_loop(); });
}

SvcClient::~SvcClient() { stop(); }

void SvcClient::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  if (timer_.joinable()) timer_.join();
  reactor_.stop();
}

void SvcClient::set_node_port(ProcessId node, std::uint16_t port) {
  reactor_.set_endpoint(node, port);
}

void SvcClient::write(std::uint64_t session, std::int32_t reg,
                      std::int64_t value) {
  SvcOp op;
  op.session = session;
  op.kind = SvcOpKind::kWrite;
  op.reg = reg;
  op.value = value;
  submit(session, op);
}

void SvcClient::read(std::uint64_t session, std::int32_t reg) {
  SvcOp op;
  op.session = session;
  op.kind = SvcOpKind::kRead;
  op.reg = reg;
  submit(session, op);
}

std::size_t SvcClient::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

SvcClientStats SvcClient::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SvcClient::submit(std::uint64_t session, SvcOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return;
  Session& s = sessions_[session];
  // Sequence assignment is the client's job: writes dense from 1 (the dedup
  // contract), reads from a disjoint nonce stream (echo-only).
  if (op.kind == SvcOpKind::kWrite) {
    op.seq = s.next_write_seq++;
  } else {
    op.seq = s.next_read_nonce++;
  }
  ++inflight_;
  if (s.busy) {
    s.queue.push_back(op);
    return;
  }
  s.busy = true;
  s.cur = op;
  const auto now = std::chrono::steady_clock::now();
  s.first_submit = now;
  s.attempts = 0;
  send_cur(s, now);
}

void SvcClient::send_cur(Session& s,
                         std::chrono::steady_clock::time_point now) {
  SvcRequest rq;
  rq.op = s.cur;
  reactor_.send(leader_guess_, FrameType::kSvcRequest,
                encode_svc_request(rq));
  s.next_fire = now + opts_.request_timeout;
  s.rotate_on_fire = true;
}

void SvcClient::on_reply(const SvcReply& r) {
  SvcClientRecord done;
  double latency_ms = 0;
  bool completed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(r.session);
    if (it == sessions_.end()) return;
    Session& s = it->second;
    if (!s.busy || s.cur.seq != r.seq) return;  // stale duplicate reply
    const auto now = std::chrono::steady_clock::now();
    switch (r.status) {
      case SvcStatus::kOk: {
        done.session = r.session;
        done.seq = r.seq;
        done.kind = s.cur.kind;
        done.reg = s.cur.reg;
        done.value = r.value;
        done.version = r.version;
        latency_ms =
            std::chrono::duration<double, std::milli>(now - s.first_submit)
                .count();
        completed = true;
        ++stats_.completions;
        if (s.cur.kind == SvcOpKind::kWrite) {
          ++stats_.writes_done;
        } else {
          ++stats_.reads_done;
        }
        --inflight_;
        if (s.queue.empty()) {
          s.busy = false;
        } else {
          s.cur = s.queue.front();
          s.queue.pop_front();
          s.first_submit = now;
          s.attempts = 0;
          send_cur(s, now);
        }
        break;
      }
      case SvcStatus::kNotLeader: {
        ++stats_.redirects;
        if (r.leader_hint >= 0 && r.leader_hint < opts_.n &&
            r.leader_hint != leader_guess_) {
          leader_guess_ = r.leader_hint;
        } else if (r.leader_hint == leader_guess_ ||
                   r.leader_hint == kInvalidProcess) {
          leader_guess_ = (leader_guess_ + 1) % opts_.n;
        }
        // Chase the redirect after a short jittered pause (an electing
        // fleet answers kNotLeader in a tight loop otherwise).
        s.next_fire = now + std::chrono::milliseconds(backoff_delay_jittered(
                                opts_.backoff, std::min(s.attempts, 3), rng_));
        s.rotate_on_fire = false;
        ++s.attempts;
        break;
      }
      case SvcStatus::kRetryLater: {
        ++stats_.retry_later;
        const auto own = std::chrono::milliseconds(
            backoff_delay_jittered(opts_.backoff, s.attempts, rng_));
        const auto suggested = std::chrono::milliseconds(r.backoff_ms);
        s.next_fire = now + std::max(own, suggested);
        s.rotate_on_fire = false;  // backpressure: same leader, later
        ++s.attempts;
        break;
      }
      case SvcStatus::kOutOfOrder: {
        // Our previous write has not applied at this leader yet (or a read
        // raced a failover): back off and retry the same op.
        ++stats_.out_of_order;
        s.next_fire = now + std::chrono::milliseconds(backoff_delay_jittered(
                                opts_.backoff, s.attempts, rng_));
        s.rotate_on_fire = false;
        ++s.attempts;
        break;
      }
    }
  }
  if (completed && on_done_) on_done_(done, latency_ms);
}

void SvcClient::timer_loop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      const auto now = std::chrono::steady_clock::now();
      for (auto& [id, s] : sessions_) {
        if (!s.busy || now < s.next_fire) continue;
        if (s.rotate_on_fire) {
          // Request timeout: the guessed leader is dead, partitioned, or
          // never had our frame — rotate and duplicate the request.
          leader_guess_ = (leader_guess_ + 1) % opts_.n;
          ++stats_.resends;
        }
        ++s.attempts;
        send_cur(s, now);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace udc
