// Leader lease: the FD-backed right to answer reads from local state.
//
// A leader may serve a read without replicating it only while it can prove
// no successor can have committed a conflicting write: operationally, while
// a MAJORITY of replicas (itself included) has talked to it within the
// lease window.  A successor needs a majority sync to open for business;
// two majorities intersect, so while this lease holds, any would-be
// successor's sync is still waiting on a replica that is still answering
// the old leader — the old leader's applied state cannot be behind a
// committed write it hasn't seen.  The window must be comfortably SHORTER
// than the failure detector's suspicion timeout for that argument to have
// slack under real clocks; the defaults keep a ~4x margin.
//
// This is deliberately wall-clock: the lease guards against real elapsed
// silence (a partitioned leader serving stale reads), which logical ticks
// cannot measure while isolated.
#pragma once

#include <chrono>
#include <map>

#include "udc/common/types.h"

namespace udc {

class LeaderLease {
 public:
  LeaderLease(int n, ProcessId self, std::chrono::milliseconds window)
      : n_(n), self_(self), window_(window) {}

  // Any authenticated svc traffic from `peer` while we lead counts.
  void observe(ProcessId peer, std::chrono::steady_clock::time_point now) {
    last_seen_[peer] = now;
  }

  bool valid(std::chrono::steady_clock::time_point now) const {
    int fresh = 1;  // self
    for (const auto& [peer, t] : last_seen_) {
      if (peer != self_ && now - t <= window_) ++fresh;
    }
    return fresh * 2 > n_;
  }

  // Demotion / election: a new incarnation of leadership starts with no
  // evidence.
  void reset() { last_seen_.clear(); }

 private:
  int n_;
  ProcessId self_;
  std::chrono::milliseconds window_;
  std::map<ProcessId, std::chrono::steady_clock::time_point> last_seen_;
};

}  // namespace udc
