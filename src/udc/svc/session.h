// Server-side session dedup table: the exactly-once half of the service.
//
// A client retries a timed-out write with the SAME (session, seq) — across
// backoff, across a leader crash, across the successor re-proposing the
// dead leader's in-flight batch.  Replication alone therefore commits the
// op's CONTENT possibly twice (once in the orphaned batch the successor
// adopts, once in the client's retry batch); the model-level checkers are
// happy either way, because each batch is its own action.  Exactly-once is
// a STATE-MACHINE property: every replica runs its applies through this
// table, and an op whose (session, seq) has already been applied mutates
// nothing — it is a suppressed duplicate with a cached answer.
//
// The table exploits the session contract (at most one write in flight per
// session, sequences dense from 1), so per session it needs only the last
// applied sequence and its result: seq == last is THE duplicate a live
// client can still be waiting on (cached reply); seq < last is a stale
// duplicate nobody is waiting on; seq == last+1 is the next fresh op;
// seq > last+1 is a hole that a correct client/leader pair never produces.
//
// Determinism matters: the table is part of the replicated state machine,
// so identical apply sequences yield identical tables at every replica —
// that is what the soak's session checker verifies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>

#include "udc/common/check.h"

namespace udc {

struct SvcResult {
  std::int64_t value = 0;
  std::uint64_t version = 0;

  friend bool operator==(const SvcResult&, const SvcResult&) = default;
};

class SessionTable {
 public:
  // The next sequence this session may apply (1 for an unknown session).
  std::uint64_t expected(std::uint64_t session) const {
    auto it = sessions_.find(session);
    return it == sessions_.end() ? 1 : it->second.last_seq + 1;
  }

  // True iff (session, seq) has already been applied here.
  bool applied(std::uint64_t session, std::uint64_t seq) const {
    auto it = sessions_.find(session);
    return it != sessions_.end() && seq <= it->second.last_seq;
  }

  // The cached result, available only for the LAST applied op of the
  // session — the only duplicate a well-behaved client can still await.
  std::optional<SvcResult> cached(std::uint64_t session,
                                  std::uint64_t seq) const {
    auto it = sessions_.find(session);
    if (it == sessions_.end() || seq != it->second.last_seq) {
      return std::nullopt;
    }
    return it->second.last;
  }

  // Records an applied op.  `seq` must be exactly expected(session): the
  // caller (the replica's apply loop) filters duplicates via applied()
  // first, and holes cannot reach apply by construction.
  void record(std::uint64_t session, std::uint64_t seq, SvcResult r) {
    UDC_CHECK(seq == expected(session),
              "session table: out-of-order record");
    auto& s = sessions_[session];
    s.last_seq = seq;
    s.last = r;
  }

  std::size_t size() const { return sessions_.size(); }

  friend bool operator==(const SessionTable&, const SessionTable&) = default;

 private:
  struct Session {
    std::uint64_t last_seq = 0;
    SvcResult last;

    friend bool operator==(const Session&, const Session&) = default;
  };
  std::map<std::uint64_t, Session> sessions_;
};

}  // namespace udc
