// Latency accounting for the open-loop load generator.
//
// Open-loop means arrivals do not wait for completions, so a sample's
// latency includes client-side queueing (a session with an op in flight
// queues the next arrival) — that is the honest number under overload,
// where closed-loop generators flatter the tail by self-throttling.
// Samples are kept raw and sorted once at read time: the soak produces at
// most a few hundred thousand, and exact quantiles beat a sketch when the
// p999 is the headline.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace udc {

struct LatencyQuantiles {
  std::size_t count = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double max_ms = 0;
};

class LatencyRecorder {
 public:
  void add(double ms) { samples_.push_back(ms); }

  std::size_t count() const { return samples_.size(); }

  LatencyQuantiles quantiles() const {
    LatencyQuantiles q;
    q.count = samples_.size();
    if (samples_.empty()) return q;
    std::vector<double> s = samples_;
    std::sort(s.begin(), s.end());
    auto at = [&](double p) {
      std::size_t i = static_cast<std::size_t>(p * (s.size() - 1));
      return s[i];
    };
    q.p50_ms = at(0.50);
    q.p99_ms = at(0.99);
    q.p999_ms = at(0.999);
    q.max_ms = s.back();
    return q;
  }

 private:
  std::vector<double> samples_;
};

}  // namespace udc
