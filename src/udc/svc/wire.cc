#include "udc/svc/wire.h"

#include <cstdint>

namespace udc {

namespace {

// Same varint/zigzag discipline as net/wire and store/codec: every read
// fails cleanly at the buffer's end, decode rejects trailing bytes.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_zigzag(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

struct Cursor {
  const std::uint8_t* d;
  std::size_t len;
  std::size_t pos = 0;
  bool fail = false;

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (pos < len && shift < 64) {
      std::uint8_t b = d[pos++];
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
    fail = true;  // ran off the buffer or overlong encoding
    return 0;
  }
  std::int64_t zig() { return unzigzag(varint()); }
  std::int32_t zig32() {
    std::int64_t v = zig();
    if (v < INT32_MIN || v > INT32_MAX) fail = true;
    return static_cast<std::int32_t>(v);
  }
  std::uint8_t byte() {
    if (pos >= len) {
      fail = true;
      return 0;
    }
    return d[pos++];
  }
  bool done() const { return !fail && pos == len; }
};

// Element-count sanity caps: a corrupted count must fail decode, not drive
// a giant reserve.  All are generous multiples of what a frame under
// kMaxWirePayload can actually hold.
constexpr std::uint64_t kMaxOpsPerBatch = 1u << 16;
constexpr std::uint64_t kMaxEntriesPerSync = 1u << 12;
constexpr std::uint64_t kMaxListElems = 1u << 12;

void put_op(std::vector<std::uint8_t>& out, const SvcOp& op) {
  put_varint(out, op.session);
  put_varint(out, op.seq);
  out.push_back(static_cast<std::uint8_t>(op.kind));
  put_zigzag(out, op.reg);
  put_zigzag(out, op.value);
}

std::optional<SvcOp> get_op(Cursor& c) {
  SvcOp op;
  op.session = c.varint();
  op.seq = c.varint();
  std::uint8_t kind = c.byte();
  if (kind < static_cast<std::uint8_t>(SvcOpKind::kWrite) ||
      kind > static_cast<std::uint8_t>(SvcOpKind::kRead)) {
    c.fail = true;
  }
  op.kind = static_cast<SvcOpKind>(kind);
  op.reg = c.zig32();
  op.value = c.zig();
  if (c.fail) return std::nullopt;
  return op;
}

std::optional<SvcBatch> get_batch(Cursor& c) {
  SvcBatch b;
  b.slot = c.varint();
  b.term = c.varint();
  b.action = c.zig();
  std::uint64_t nops = c.varint();
  if (c.fail || nops > kMaxOpsPerBatch) return std::nullopt;
  b.ops.reserve(nops);
  for (std::uint64_t i = 0; i < nops; ++i) {
    auto op = get_op(c);
    if (!op) return std::nullopt;
    b.ops.push_back(*op);
  }
  if (c.fail) return std::nullopt;
  return b;
}

}  // namespace

void put_svc_batch(std::vector<std::uint8_t>& out, const SvcBatch& b) {
  put_varint(out, b.slot);
  put_varint(out, b.term);
  put_zigzag(out, b.action);
  put_varint(out, b.ops.size());
  for (const auto& op : b.ops) put_op(out, op);
}

std::optional<SvcBatch> decode_svc_batch(const std::uint8_t* d,
                                         std::size_t len) {
  Cursor c{d, len};
  auto b = get_batch(c);
  if (!b || !c.done()) return std::nullopt;
  return b;
}

std::vector<std::uint8_t> encode_svc_request(const SvcRequest& r) {
  std::vector<std::uint8_t> out;
  put_op(out, r.op);
  return out;
}

std::optional<SvcRequest> decode_svc_request(const std::uint8_t* d,
                                             std::size_t len) {
  Cursor c{d, len};
  SvcRequest r;
  auto op = get_op(c);
  if (!op || !c.done()) return std::nullopt;
  r.op = *op;
  return r;
}

std::vector<std::uint8_t> encode_svc_reply(const SvcReply& r) {
  std::vector<std::uint8_t> out;
  put_varint(out, r.session);
  put_varint(out, r.seq);
  out.push_back(static_cast<std::uint8_t>(r.status));
  put_zigzag(out, r.value);
  put_varint(out, r.version);
  put_zigzag(out, r.leader_hint);
  put_varint(out, r.backoff_ms);
  return out;
}

std::optional<SvcReply> decode_svc_reply(const std::uint8_t* d,
                                         std::size_t len) {
  Cursor c{d, len};
  SvcReply r;
  r.session = c.varint();
  r.seq = c.varint();
  std::uint8_t status = c.byte();
  if (status < static_cast<std::uint8_t>(SvcStatus::kOk) ||
      status > static_cast<std::uint8_t>(SvcStatus::kOutOfOrder)) {
    c.fail = true;
  }
  r.status = static_cast<SvcStatus>(status);
  r.value = c.zig();
  r.version = c.varint();
  r.leader_hint = c.zig32();
  std::uint64_t backoff = c.varint();
  if (backoff > UINT32_MAX) c.fail = true;
  r.backoff_ms = static_cast<std::uint32_t>(backoff);
  if (!c.done()) return std::nullopt;
  return r;
}

std::vector<std::uint8_t> encode_svc_propose(const SvcPropose& p) {
  std::vector<std::uint8_t> out;
  put_varint(out, p.term);
  put_zigzag(out, p.clock);
  put_svc_batch(out, p.batch);
  return out;
}

std::optional<SvcPropose> decode_svc_propose(const std::uint8_t* d,
                                             std::size_t len) {
  Cursor c{d, len};
  SvcPropose p;
  p.term = c.varint();
  p.clock = c.zig();
  auto b = get_batch(c);
  if (!b || !c.done()) return std::nullopt;
  p.batch = std::move(*b);
  return p;
}

std::vector<std::uint8_t> encode_svc_ack(const SvcAck& a) {
  std::vector<std::uint8_t> out;
  put_varint(out, a.term);
  put_varint(out, a.slot);
  out.push_back(a.ok ? 1 : 0);
  put_zigzag(out, a.clock);
  return out;
}

std::optional<SvcAck> decode_svc_ack(const std::uint8_t* d, std::size_t len) {
  Cursor c{d, len};
  SvcAck a;
  a.term = c.varint();
  a.slot = c.varint();
  std::uint8_t ok = c.byte();
  if (ok > 1) c.fail = true;
  a.ok = ok == 1;
  a.clock = c.zig();
  if (!c.done()) return std::nullopt;
  return a;
}

std::vector<std::uint8_t> encode_svc_commit(const SvcCommit& m) {
  std::vector<std::uint8_t> out;
  put_varint(out, m.term);
  put_zigzag(out, m.clock);
  put_varint(out, m.floor);
  put_varint(out, m.extra.size());
  for (auto s : m.extra) put_varint(out, s);
  return out;
}

std::optional<SvcCommit> decode_svc_commit(const std::uint8_t* d,
                                           std::size_t len) {
  Cursor c{d, len};
  SvcCommit m;
  m.term = c.varint();
  m.clock = c.zig();
  m.floor = c.varint();
  std::uint64_t k = c.varint();
  if (c.fail || k > kMaxListElems) return std::nullopt;
  m.extra.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i) m.extra.push_back(c.varint());
  if (!c.done()) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> encode_svc_hb(const SvcHb& h) {
  std::vector<std::uint8_t> out;
  put_varint(out, h.term);
  put_zigzag(out, h.leader);
  put_zigzag(out, h.clock);
  put_varint(out, h.floor);
  return out;
}

std::optional<SvcHb> decode_svc_hb(const std::uint8_t* d, std::size_t len) {
  Cursor c{d, len};
  SvcHb h;
  h.term = c.varint();
  h.leader = c.zig32();
  h.clock = c.zig();
  h.floor = c.varint();
  if (!c.done()) return std::nullopt;
  return h;
}

std::vector<std::uint8_t> encode_svc_sync_req(const SvcSyncReq& r) {
  std::vector<std::uint8_t> out;
  put_varint(out, r.term);
  put_zigzag(out, r.clock);
  put_varint(out, r.floor);
  return out;
}

std::optional<SvcSyncReq> decode_svc_sync_req(const std::uint8_t* d,
                                              std::size_t len) {
  Cursor c{d, len};
  SvcSyncReq r;
  r.term = c.varint();
  r.clock = c.zig();
  r.floor = c.varint();
  if (!c.done()) return std::nullopt;
  return r;
}

std::vector<std::uint8_t> encode_svc_sync_resp(const SvcSyncResp& r) {
  std::vector<std::uint8_t> out;
  put_varint(out, r.term);
  put_zigzag(out, r.clock);
  put_varint(out, r.floor);
  out.push_back(r.last ? 1 : 0);
  put_varint(out, r.entries.size());
  for (std::size_t i = 0; i < r.entries.size(); ++i) {
    put_svc_batch(out, r.entries[i]);
    out.push_back(i < r.committed.size() && r.committed[i] ? 1 : 0);
  }
  return out;
}

std::optional<SvcSyncResp> decode_svc_sync_resp(const std::uint8_t* d,
                                                std::size_t len) {
  Cursor c{d, len};
  SvcSyncResp r;
  r.term = c.varint();
  r.clock = c.zig();
  r.floor = c.varint();
  std::uint8_t last = c.byte();
  if (last > 1) c.fail = true;
  r.last = last == 1;
  std::uint64_t k = c.varint();
  if (c.fail || k > kMaxEntriesPerSync) return std::nullopt;
  r.entries.reserve(k);
  r.committed.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i) {
    auto b = get_batch(c);
    if (!b) return std::nullopt;
    std::uint8_t flag = c.byte();
    if (c.fail || flag > 1) return std::nullopt;
    r.entries.push_back(std::move(*b));
    r.committed.push_back(flag);
  }
  if (!c.done()) return std::nullopt;
  return r;
}

std::vector<std::uint8_t> encode_svc_status(const SvcNodeStatus& s) {
  std::vector<std::uint8_t> out;
  put_zigzag(out, s.id);
  put_varint(out, s.epoch);
  put_varint(out, s.term);
  put_zigzag(out, s.leader);
  put_zigzag(out, s.clock);
  put_varint(out, s.floor);
  put_varint(out, s.applied);
  put_varint(out, s.log_size);
  put_varint(out, s.sessions);
  put_varint(out, s.orphans);
  put_varint(out, s.durable_events);
  out.push_back(s.syncing ? 1 : 0);
  out.push_back(s.done ? 1 : 0);
  put_varint(out, s.counters.size());
  for (auto v : s.counters) put_varint(out, v);
  return out;
}

std::optional<SvcNodeStatus> decode_svc_status(const std::uint8_t* d,
                                               std::size_t len) {
  Cursor c{d, len};
  SvcNodeStatus s;
  s.id = c.zig32();
  s.epoch = c.varint();
  s.term = c.varint();
  s.leader = c.zig32();
  s.clock = c.zig();
  s.floor = c.varint();
  s.applied = c.varint();
  s.log_size = c.varint();
  s.sessions = c.varint();
  s.orphans = c.varint();
  s.durable_events = c.varint();
  std::uint8_t syncing = c.byte();
  std::uint8_t done = c.byte();
  if (syncing > 1 || done > 1) c.fail = true;
  s.syncing = syncing == 1;
  s.done = done == 1;
  std::uint64_t k = c.varint();
  if (c.fail || k > kMaxListElems) return std::nullopt;
  s.counters.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i) s.counters.push_back(c.varint());
  if (!c.done()) return std::nullopt;
  return s;
}

}  // namespace udc
