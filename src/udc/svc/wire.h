// Payload envelopes for the replicated coordination service.
//
// The service speaks over the same CRC-guarded frame codec as the rest of
// the cross-process runtime (net/wire); these are the payloads behind
// FrameType::kSvc*.  Every envelope that travels node-to-node carries the
// sender's Lamport clock, and every receiver folds it in BEFORE recording
// model events — that is what keeps the paper-side ordering honest: a
// batch's kInit (recorded at the admitting leader when the batch seals) is
// causally below every kDo it produces, at every replica, in the merged
// run the checkers see.  Decode is total: nullopt on truncation, trailing
// bytes, or out-of-range tags, exactly like net/wire.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "udc/common/types.h"

namespace udc {

// One client operation.  `session` names a client session (stable across
// retries and leader failovers); `seq` is the session's write sequence
// number — the dedup key.  Reads carry a client-side nonce in `seq` and are
// never recorded in the session table (they are idempotent and, under a
// valid lease, never enter a batch at all).
enum class SvcOpKind : std::uint8_t {
  kWrite = 1,  // set register `reg` to `value`
  kRead = 2,   // read register `reg`
};

struct SvcOp {
  std::uint64_t session = 0;
  std::uint64_t seq = 0;
  SvcOpKind kind = SvcOpKind::kWrite;
  std::int32_t reg = 0;
  std::int64_t value = 0;

  friend bool operator==(const SvcOp&, const SvcOp&) = default;
};

// Reply status.  kOk carries the result; everything else tells the client
// what to do next instead of leaving it to guess from silence.
enum class SvcStatus : std::uint8_t {
  kOk = 1,          // applied (or duplicate of the last applied op: cached)
  kNotLeader = 2,   // try `leader_hint`
  kRetryLater = 3,  // admission queue full / lease invalid: back off
  kOutOfOrder = 4,  // seq is ahead of the session's expected sequence
};

struct SvcRequest {
  SvcOp op;

  friend bool operator==(const SvcRequest&, const SvcRequest&) = default;
};

struct SvcReply {
  std::uint64_t session = 0;
  std::uint64_t seq = 0;
  SvcStatus status = SvcStatus::kOk;
  std::int64_t value = 0;      // read result / applied write value
  std::uint64_t version = 0;   // register version after/at the op
  ProcessId leader_hint = kInvalidProcess;
  std::uint32_t backoff_ms = 0;  // server-suggested wait for kRetryLater

  friend bool operator==(const SvcReply&, const SvcReply&) = default;
};

// A sealed batch: the unit of replication and of paper-model coordination.
// `action` is the batch's model action id (make_action(admitting leader,
// per-leader seal counter)); `term` is the term under which the batch was
// last sealed or re-sealed (failover adoption re-seals an orphaned batch
// under the successor's term, with the SAME action id — dedup at apply
// makes the content overlap safe).
struct SvcBatch {
  std::uint64_t slot = 0;
  std::uint64_t term = 0;
  ActionId action = kInvalidAction;
  std::vector<SvcOp> ops;

  friend bool operator==(const SvcBatch&, const SvcBatch&) = default;
};

struct SvcPropose {
  std::uint64_t term = 0;
  Time clock = 0;  // leader's Lamport clock at send (> the batch kInit tick)
  SvcBatch batch;

  friend bool operator==(const SvcPropose&, const SvcPropose&) = default;
};

// ok=true: the follower has the batch DURABLY logged (svclog fdatasync'd)
// — an ack is a promise that survives kill -9.  ok=false is a term nack:
// `term` is the acker's higher term and the proposer must step down.
struct SvcAck {
  std::uint64_t term = 0;
  std::uint64_t slot = 0;
  bool ok = true;
  Time clock = 0;

  friend bool operator==(const SvcAck&, const SvcAck&) = default;
};

// Commit notice: every slot <= floor is committed, plus `extra` slots
// committed out of order (DC2'-permitted: they commute — disjoint sessions
// AND registers — with every uncommitted earlier slot, so applying them
// early cannot reorder any session's operations or diverge any state).
struct SvcCommit {
  std::uint64_t term = 0;
  Time clock = 0;
  std::uint64_t floor = 0;
  std::vector<std::uint64_t> extra;

  friend bool operator==(const SvcCommit&, const SvcCommit&) = default;
};

struct SvcHb {
  std::uint64_t term = 0;
  ProcessId leader = kInvalidProcess;  // sender's current belief
  Time clock = 0;
  std::uint64_t floor = 0;

  friend bool operator==(const SvcHb&, const SvcHb&) = default;
};

// Failover sync / follower catch-up / adoption offer, all one shape:
// "here is where my applied prefix ends" (request) and "here is everything
// I hold above yours" (response, chunked under the frame cap; `last` marks
// the final chunk).  entry_terms[i] is the term under which entries[i] was
// last accepted locally.
struct SvcSyncReq {
  std::uint64_t term = 0;
  Time clock = 0;
  std::uint64_t floor = 0;  // requester's applied floor

  friend bool operator==(const SvcSyncReq&, const SvcSyncReq&) = default;
};

struct SvcSyncResp {
  std::uint64_t term = 0;
  Time clock = 0;
  std::uint64_t floor = 0;  // responder's applied floor
  std::vector<SvcBatch> entries;
  // committed[i] == 1 iff the responder holds entries[i] COMMITTED —
  // quorum-durable truth the receiver must absorb even over a higher-term
  // uncommitted leftover at the same slot.  The bare `floor` cannot carry
  // this: it vouches for slot NUMBERS, not for whichever content the
  // receiver happens to hold there.
  std::vector<std::uint8_t> committed;
  bool last = true;

  friend bool operator==(const SvcSyncResp&, const SvcSyncResp&) = default;
};

// Compact node -> supervisor status.  Deliberately NOT WireStatus: under
// live load the durable init/perform lists grow with every batch, and a
// 2ms-cadence report must stay O(1).  Counters ride in rt slot order
// followed by the svc slots (svc/node.h).
struct SvcNodeStatus {
  ProcessId id = kInvalidProcess;
  std::uint64_t epoch = 0;
  std::uint64_t term = 0;
  ProcessId leader = kInvalidProcess;
  Time clock = 0;
  std::uint64_t floor = 0;         // applied floor (all slots <= are applied)
  std::uint64_t applied = 0;       // batches applied
  std::uint64_t log_size = 0;      // batches held (applied + pending)
  std::uint64_t sessions = 0;      // session-table size
  std::uint64_t orphans = 0;       // displaced batches awaiting re-adoption
  std::uint64_t durable_events = 0;
  bool syncing = false;            // leader-elect still collecting sync quorum
  bool done = false;               // final report before a clean exit
  std::vector<std::uint64_t> counters;

  friend bool operator==(const SvcNodeStatus&, const SvcNodeStatus&) = default;
};

std::vector<std::uint8_t> encode_svc_request(const SvcRequest& r);
std::optional<SvcRequest> decode_svc_request(const std::uint8_t* d,
                                             std::size_t len);

std::vector<std::uint8_t> encode_svc_reply(const SvcReply& r);
std::optional<SvcReply> decode_svc_reply(const std::uint8_t* d,
                                         std::size_t len);

std::vector<std::uint8_t> encode_svc_propose(const SvcPropose& p);
std::optional<SvcPropose> decode_svc_propose(const std::uint8_t* d,
                                             std::size_t len);

std::vector<std::uint8_t> encode_svc_ack(const SvcAck& a);
std::optional<SvcAck> decode_svc_ack(const std::uint8_t* d, std::size_t len);

std::vector<std::uint8_t> encode_svc_commit(const SvcCommit& c);
std::optional<SvcCommit> decode_svc_commit(const std::uint8_t* d,
                                           std::size_t len);

std::vector<std::uint8_t> encode_svc_hb(const SvcHb& h);
std::optional<SvcHb> decode_svc_hb(const std::uint8_t* d, std::size_t len);

std::vector<std::uint8_t> encode_svc_sync_req(const SvcSyncReq& r);
std::optional<SvcSyncReq> decode_svc_sync_req(const std::uint8_t* d,
                                              std::size_t len);

std::vector<std::uint8_t> encode_svc_sync_resp(const SvcSyncResp& r);
std::optional<SvcSyncResp> decode_svc_sync_resp(const std::uint8_t* d,
                                                std::size_t len);

std::vector<std::uint8_t> encode_svc_status(const SvcNodeStatus& s);
std::optional<SvcNodeStatus> decode_svc_status(const std::uint8_t* d,
                                               std::size_t len);

// Serialized batch payload for the durable service log (svc/svclog): the
// same encoding the propose envelope embeds, reused so an accepted frame
// and its on-disk record can never drift apart.
void put_svc_batch(std::vector<std::uint8_t>& out, const SvcBatch& b);
std::optional<SvcBatch> decode_svc_batch(const std::uint8_t* d,
                                         std::size_t len);

}  // namespace udc
