#include "udc/svc/svclog.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "udc/common/check.h"
#include "udc/net/wire.h"
#include "udc/store/crc32.h"
#include "udc/store/wal.h"

namespace udc {

SvcDurableLog::SvcDurableLog(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
               0644);
  UDC_CHECK(fd_ >= 0, "svclog: open(" + path_ +
                          ") failed: " + std::strerror(errno));
}

SvcDurableLog::~SvcDurableLog() {
  if (fd_ >= 0) ::close(fd_);
}

void SvcDurableLog::append(const SvcBatch& b) {
  std::vector<std::uint8_t> payload;
  put_svc_batch(payload, b);
  auto frame = wal_frame(payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    ssize_t w = ::write(fd_, frame.data() + off, frame.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw InvariantViolation("svclog: write failed: " +
                               std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(w);
  }
  UDC_CHECK(::fdatasync(fd_) == 0, "svclog: fdatasync failed");
  ++appended_;
}

namespace {

struct ScanResult {
  std::vector<SvcBatch> entries;
  std::uint64_t valid_bytes = 0;
  std::uint64_t file_bytes = 0;
};

ScanResult scan_log(const std::string& path) {
  ScanResult res;
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return res;  // missing log = empty log
  std::vector<std::uint8_t> data;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) break;
    data.insert(data.end(), buf, buf + r);
  }
  ::close(fd);
  res.file_bytes = data.size();
  // Longest valid frame prefix: stop at the first frame whose header,
  // length, or checksum does not hold (a torn tail, not corruption to
  // resync past — this file has exactly one writer).
  std::size_t pos = 0;
  while (data.size() - pos >= 8) {
    const std::uint8_t* p = data.data() + pos;
    std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                        (static_cast<std::uint32_t>(p[1]) << 8) |
                        (static_cast<std::uint32_t>(p[2]) << 16) |
                        (static_cast<std::uint32_t>(p[3]) << 24);
    std::uint32_t want = static_cast<std::uint32_t>(p[4]) |
                         (static_cast<std::uint32_t>(p[5]) << 8) |
                         (static_cast<std::uint32_t>(p[6]) << 16) |
                         (static_cast<std::uint32_t>(p[7]) << 24);
    if (len == 0 || len > kMaxWirePayload || data.size() - pos - 8 < len) {
      break;
    }
    std::uint32_t crc = crc32c(p, 4);
    crc = crc32c(p + 8, len, crc);
    if (crc != want) break;
    auto b = decode_svc_batch(p + 8, len);
    if (!b) break;
    res.entries.push_back(std::move(*b));
    pos += 8 + len;
  }
  res.valid_bytes = pos;
  return res;
}

}  // namespace

std::vector<SvcBatch> SvcDurableLog::read(const std::string& path) {
  return scan_log(path).entries;
}

std::vector<SvcBatch> SvcDurableLog::recover(const std::string& path) {
  ScanResult res = scan_log(path);
  if (res.valid_bytes < res.file_bytes) {
    int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd >= 0) {
      if (::ftruncate(fd, static_cast<off_t>(res.valid_bytes)) == 0) {
        ::fdatasync(fd);
      }
      ::close(fd);
    }
  }
  return std::move(res.entries);
}

}  // namespace udc
