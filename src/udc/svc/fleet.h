// run_svc_fleet: the replicated coordination service under chaos, at live
// load, with the verdict lifted from the survivors' disks.
//
// The supervisor forks one udc_svc_node per replica, points a set of
// SvcClients (svc/client.h) at the fleet, and drives an OPEN-LOOP workload:
// arrivals follow a heavy-tailed (bounded-Pareto) interarrival process and
// do not wait for completions, so overload and failover latency land in the
// tail instead of throttling the generator.  While the load runs, the
// chosen chaos arm fires: SIGKILL of the current leader (relaunched epoch+1
// against the same disks), a rolling restart of every replica in turn, or a
// healing partition lowered to real connection teardown inside the nodes.
//
// Quiescence is a convergence contract, not a timer: every submitted op
// completed, every relaunch done, and every replica reporting the same
// applied floor with nothing unapplied, unsynced, or orphaned.  Then the
// fleet is stopped and judged on ground truth:
//   * the merged WAL shards are lifted into one model Run and pushed
//     through the UNCHANGED DC1-DC3 checkers (check_nudc; the action set is
//     every batch action any shard initiated),
//   * each replica's applied batch sequence (durable kDo order joined to
//     the service logs) goes through the linearizable-session checker
//     (exactly-once, per-session order, agreement, client-confirmed) and
//     the replicated-log agreement checker,
//   * exits must be clean: 0 or a SIGKILL the supervisor sent.
// Client-observed latency quantiles and throughput ride along for the
// bench harness.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "udc/common/budget.h"
#include "udc/consensus/spec.h"
#include "udc/coord/metrics.h"
#include "udc/coord/spec.h"
#include "udc/event/run.h"
#include "udc/svc/checker.h"
#include "udc/svc/latency.h"
#include "udc/svc/node.h"

namespace udc {

enum class SvcChaosArm {
  kNone,        // load only: the bench arm
  kLeaderKill,  // SIGKILL the majority-view leader, relaunch epoch+1
  kRolling,     // kill + relaunch every replica, one at a time
  kPartition,   // bidirectional cut of node 0, healing mid-run
};

const char* svc_chaos_arm_name(SvcChaosArm arm);

struct SvcFleetOptions {
  int n = 3;
  SvcChaosArm arm = SvcChaosArm::kNone;
  std::uint64_t seed = 1;
  std::string run_dir;      // scratch: WAL shards, service logs, node logs
  std::string node_binary;  // udc_svc_node executable

  // Open-loop load: `ops` total operations spread over `clients` client
  // processes-worth of sessions, bounded-Pareto interarrivals with this
  // mean, `read_fraction` of arrivals issued as lease reads.
  int clients = 2;
  int sessions_per_client = 4;
  int ops = 600;
  double read_fraction = 0.2;
  double mean_interarrival_us = 800;

  // Chaos pacing (wall clock).
  std::chrono::milliseconds chaos_after{150};  // first fault
  std::chrono::milliseconds restart_after{300};
  std::chrono::milliseconds kill_spacing{800};
  int leader_kills = 2;  // kLeaderKill arm only

  SvcNodeOptions node;  // knob template: heartbeat, lease, batching
  std::chrono::milliseconds deadline{20'000};
};

struct SvcFleetVerdict {
  BudgetStatus status = BudgetStatus::kComplete;
  std::optional<Run> run;          // merged from the WAL shards
  std::vector<ActionId> actions;   // every batch action initiated anywhere
  CoordReport coord;               // DC1-DC3 over the lifted run (nUDC)
  SvcSessionReport sessions;       // exactly-once / order / agreement
  LogAgreementReport log_agreement;
  RuntimeCounters counters;

  LatencyQuantiles latency;  // client-observed, first submit to completion
  double ops_per_sec = 0;
  double elapsed_s = 0;      // load start to last completion (or stop)
  std::uint64_t completions = 0;

  bool clean_exits = true;
  bool conformant = false;
};

// Forks the fleet, drives load + chaos, merges the shards, checks the
// lifted run.  Throws InvariantViolation for malformed options; everything
// fault-induced is reported through the verdict.
SvcFleetVerdict run_svc_fleet(const SvcFleetOptions& opts);

}  // namespace udc
