#include "udc/svc/node.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "udc/chaos/fault_script.h"
#include "udc/common/budget.h"
#include "udc/common/check.h"
#include "udc/coord/action.h"
#include "udc/event/event.h"
#include "udc/net/reactor.h"
#include "udc/net/wire.h"
#include "udc/rt/remote/lamport.h"
#include "udc/store/group_commit.h"
#include "udc/svc/lease.h"
#include "udc/svc/log.h"
#include "udc/svc/session.h"
#include "udc/svc/svclog.h"
#include "udc/svc/wire.h"

namespace udc {

std::vector<std::uint64_t> pack_svc_counters(const RuntimeCounters& c) {
  std::vector<std::uint64_t> v(kSvcCounterSlots, 0);
  v[kSvcSlotRequests] = c.svc_requests;
  v[kSvcSlotAdmitted] = c.svc_admitted;
  v[kSvcSlotDupsSuppressed] = c.svc_dups_suppressed;
  v[kSvcSlotRetryLater] = c.svc_retry_later;
  v[kSvcSlotRedirects] = c.svc_redirects;
  v[kSvcSlotBatchesSealed] = c.svc_batches_sealed;
  v[kSvcSlotBatchesCommitted] = c.svc_batches_committed;
  v[kSvcSlotOooCommits] = c.svc_ooo_commits;
  v[kSvcSlotElections] = c.svc_elections;
  v[kSvcSlotSyncRounds] = c.svc_sync_rounds;
  v[kSvcSlotAdoptions] = c.svc_adoptions;
  v[kSvcSlotLeaseReads] = c.svc_lease_reads;
  v[kSvcSlotLeaseDenied] = c.svc_lease_denied;
  return v;
}

void unpack_svc_counters(const std::vector<std::uint64_t>& v,
                         std::size_t offset, RuntimeCounters* c) {
  auto at = [&](std::size_t slot) -> std::size_t {
    slot += offset;
    return slot < v.size() ? static_cast<std::size_t>(v[slot]) : 0;
  };
  c->svc_requests = at(kSvcSlotRequests);
  c->svc_admitted = at(kSvcSlotAdmitted);
  c->svc_dups_suppressed = at(kSvcSlotDupsSuppressed);
  c->svc_retry_later = at(kSvcSlotRetryLater);
  c->svc_redirects = at(kSvcSlotRedirects);
  c->svc_batches_sealed = at(kSvcSlotBatchesSealed);
  c->svc_batches_committed = at(kSvcSlotBatchesCommitted);
  c->svc_ooo_commits = at(kSvcSlotOooCommits);
  c->svc_elections = at(kSvcSlotElections);
  c->svc_sync_rounds = at(kSvcSlotSyncRounds);
  c->svc_adoptions = at(kSvcSlotAdoptions);
  c->svc_lease_reads = at(kSvcSlotLeaseReads);
  c->svc_lease_denied = at(kSvcSlotLeaseDenied);
}

namespace {

constexpr int kRegisters = 64;
constexpr std::size_t kSyncChunk = 32;  // batches per kSvcSyncResp frame
constexpr int kResendBurst = 32;        // uncommitted re-proposes per tick

struct Register {
  std::int64_t value = 0;
  std::uint64_t version = 0;
};

// Worker input: one decoded frame with its sender, or the stop order.  The
// svc node cannot reuse rt's Mailbox (RtMail carries model Messages); this
// queue carries raw wire frames instead, same single-consumer discipline.
struct SvcMail {
  bool stop = false;
  ProcessId peer = kInvalidProcess;
  WireFrame frame;
};

class SvcMailQueue {
 public:
  void push(SvcMail m) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(m));
    }
    cv_.notify_one();
  }
  std::optional<SvcMail> pop_for(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout, [this] { return !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    SvcMail m = std::move(queue_.front());
    queue_.pop_front();
    return m;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<SvcMail> queue_;
};

// Same discipline as the rt node's recorder: Lamport tick, durable append,
// in-memory mirror.  Worker thread only.
class SvcRecorder {
 public:
  SvcRecorder(LamportClock& clock, ProcessStore& store,
              std::vector<Event>& mirror)
      : clock_(clock), store_(store), mirror_(mirror) {}

  Time record(const Event& e) {
    const Time t = clock_.tick();
    store_.append(t, e);
    mirror_.push_back(e);
    return t;
  }

  std::size_t mirror_len() const { return mirror_.size(); }

 private:
  LamportClock& clock_;
  ProcessStore& store_;
  std::vector<Event>& mirror_;
};

FaultScript load_svc_script(const std::string& path) {
  if (path.empty()) return {};
  std::ifstream in(path);
  UDC_CHECK(in.good(), "svc node: cannot open fault script file");
  std::ostringstream text;
  text << in.rdbuf();
  return FaultScript::parse(text.str());
}

bool bidirectional_cut(const FaultScript& script, ProcessId self,
                       ProcessId peer, Time now) {
  bool fwd = false;
  bool rev = false;
  for (const PartitionWindow& w : script.partitions) {
    if (now < w.from || now >= w.heal) continue;
    if (w.senders.contains(self) && w.recipients.contains(peer)) fwd = true;
    if (w.senders.contains(peer) && w.recipients.contains(self)) rev = true;
    if (fwd && rev) return true;
  }
  return false;
}

}  // namespace

int run_svc_node(const SvcNodeOptions& opts) {
  UDC_CHECK(opts.n >= 1 && opts.n <= kMaxProcesses, "svc node: bad n");
  UDC_CHECK(opts.id >= 0 && opts.id < opts.n, "svc node: bad process id");
  UDC_CHECK(opts.supervisor_port != 0, "svc node: bad supervisor port");
  UDC_CHECK(!opts.dir.empty() && std::filesystem::is_directory(opts.dir),
            "svc node: run dir missing");
  UDC_CHECK(opts.max_batch_ops >= 1 && opts.max_inflight_slots >= 1,
            "svc node: bad batching limits");

  const FaultScript script = load_svc_script(opts.script_file);

  // --- durable state --------------------------------------------------------
  ProcessStore store(opts.dir, opts.id, opts.store, {});
  std::vector<Event> mirror;
  std::set<ActionId> my_inits;
  std::vector<ActionId> wal_do_order;  // kDo replay order = apply order
  Time recovered_tick = 0;
  if (opts.epoch > 0) {
    for (const StoreRecord& r : store.recover()) {
      mirror.push_back(r.e);
      if (r.t > recovered_tick) recovered_tick = r.t;
      if (r.e.kind == EventKind::kInit) my_inits.insert(r.e.action);
      if (r.e.kind == EventKind::kDo) wal_do_order.push_back(r.e.action);
    }
  }
  std::optional<GroupCommitter> committer;
  if (opts.store.group_commit) {
    committer.emplace(
        GroupCommitOptions{opts.store.barrier, opts.store.flusher_threads});
    committer->attach(&store);
  }

  LamportClock clock(recovered_tick);
  SvcRecorder rec(clock, store, mirror);

  const std::string slog_path =
      opts.dir + "/svc-" + std::to_string(opts.id) + ".log";
  const std::vector<SvcBatch> slog_recovered =
      SvcDurableLog::recover(slog_path);
  SvcDurableLog slog(slog_path);

  // --- service state --------------------------------------------------------
  ReplicatedLog log;
  SessionTable sessions;
  std::array<Register, kRegisters> regs{};
  std::uint64_t term = 0;
  std::uint64_t max_term_seen = 0;
  ProcessId leader = kInvalidProcess;
  bool syncing = false;
  ProcSet sync_acks;
  std::uint64_t next_slot = 1;
  ActionId admission_seq = 0;  // per-owner action counter, dense from 0
  std::map<std::uint64_t, std::uint64_t> pending_seq;  // session -> seq
  std::map<std::uint64_t, ProcessId> client_of;        // session -> peer
  std::vector<SvcOp> open_ops;
  std::deque<std::uint64_t> unsent;  // sealed slots awaiting 1st propose
  std::map<std::uint64_t, std::size_t> seal_gate;  // slot -> durable gate
  std::uint64_t commit_floor_learned = 0;  // leader's floor, from notices
  std::uint64_t max_committed_slot = 0;    // highest slot known committed
  // Displaced batches: a new leader that never saw slot s's old content
  // legitimately reuses s, and accept() evicts the old batch from the
  // in-memory log.  Its kInit may already be durable at the owner, so the
  // batch must stay ADOPTABLE until its action lands in some slot — a
  // batch that silently vanished here would leave a durable init with no
  // do anywhere, which is exactly the DC1 violation the checkers hunt.
  // Value: (batch, durable-send gate for its kInit).
  std::map<ActionId, std::pair<SvcBatch, std::size_t>> orphans;
  RuntimeCounters svcc;

  // --- recovery: rebuild the replicated state machine -----------------------
  // Last record per action wins: the highest-term acceptance, the only one
  // the cluster can have committed (svclog.h).
  std::map<ActionId, SvcBatch> by_action;
  for (const SvcBatch& b : slog_recovered) by_action[b.action] = b;

  auto apply_batch_content = [&](const SvcBatch& b) {
    for (const SvcOp& op : b.ops) {
      if (op.kind != SvcOpKind::kWrite) continue;
      if (op.reg < 0 || op.reg >= kRegisters) continue;  // never admitted
      if (sessions.applied(op.session, op.seq)) {
        ++svcc.svc_dups_suppressed;
        continue;
      }
      if (op.seq != sessions.expected(op.session)) continue;  // checker's job
      auto& r = regs[static_cast<std::size_t>(op.reg)];
      r.value = op.value;
      ++r.version;
      sessions.record(op.session, op.seq, SvcResult{op.value, r.version});
      auto pit = pending_seq.find(op.session);
      if (pit != pending_seq.end() && pit->second <= op.seq) {
        pending_seq.erase(pit);
      }
    }
  };

  // Replay applies in durable kDo order: an ack preceded every apply, so a
  // durable kDo is always backed by a durable service-log record.
  for (ActionId a : wal_do_order) {
    auto it = by_action.find(a);
    UDC_CHECK(it != by_action.end(),
              "svc node: durable kDo without a service-log record");
    const SvcBatch& b = it->second;
    log.accept(b);
    log.mark_committed(b.slot);
    max_committed_slot = std::max(max_committed_slot, b.slot);
    apply_batch_content(b);
    log.mark_applied(b.slot);
  }
  // Remaining records are accepted-but-unapplied: hold them for adoption /
  // catch-up.  An own-owned batch whose kInit the WAL lost is re-recorded
  // here — safe, because the durable-send gate means its content never left
  // this process (no other replica can hold a kDo for it), so the fresh
  // tick still precedes every eventual kDo.  A batch whose slot the replay
  // committed to different content goes to the orphan stash instead of the
  // log: it still carries init obligations, and adoption re-homes it.
  for (const auto& [a, b] : by_action) {
    if (log.slot_of(a)) continue;
    std::size_t gate = 0;
    if (action_owner(a) == opts.id && my_inits.count(a) == 0) {
      my_inits.insert(a);
      rec.record(Event::init(a));
      gate = rec.mirror_len();
    }
    if (!log.accept(b)) {
      orphans.emplace(a, std::make_pair(b, gate));
      continue;
    }
    if (gate != 0) seal_gate[b.slot] = gate;
  }
  next_slot = log.max_slot() + 1;
  commit_floor_learned = log.applied_floor();
  for (const SvcBatch& b : slog_recovered) {
    max_term_seen = std::max(max_term_seen, b.term);
  }
  term = max_term_seen;
  for (ActionId a : my_inits) {
    if (action_owner(a) == opts.id) {
      admission_seq = std::max(admission_seq, (a & kMaxActionSeq) + 1);
    }
  }

  // --- wire plane -----------------------------------------------------------
  SvcMailQueue mail;
  ReactorOptions ropts;
  ropts.self = opts.id;
  ropts.n = opts.n;
  ropts.epoch = opts.epoch;
  ropts.run_id = opts.run_id;
  ropts.seed = opts.seed ^ 0x73766377ull;  // "svcw"
  ropts.accept_clients = true;
  std::atomic<bool> sup_up{false};
  std::atomic<bool> sup_ever_up{false};

  Reactor reactor(
      ropts,
      [&](ProcessId peer, std::uint64_t /*epoch*/, const WireFrame& f) {
        if (peer == kSupervisorPeer) {
          if (f.type == FrameType::kStop) {
            SvcMail m;
            m.stop = true;
            mail.push(std::move(m));
          } else if (f.type == FrameType::kPeers) {
            if (auto p = decode_peers(f.payload.data(), f.payload.size())) {
              SvcMail m;
              m.peer = peer;
              m.frame = f;
              mail.push(std::move(m));
              (void)p;
            }
          }
          return;
        }
        SvcMail m;
        m.peer = peer;
        m.frame = f;
        mail.push(std::move(m));
      },
      [&](ProcessId peer, std::uint64_t /*epoch*/, bool up,
          std::uint16_t /*data_port*/) {
        if (peer == kSupervisorPeer) {
          sup_up.store(up, std::memory_order_relaxed);
          if (up) sup_ever_up.store(true, std::memory_order_relaxed);
        }
      });

  reactor.listen(opts.data_port);
  reactor.set_endpoint(kSupervisorPeer, opts.supervisor_port);
  reactor.start();

  // --- failure detection, lease, admission budget ---------------------------
  HeartbeatDetector detector(opts.n, opts.id, opts.heartbeat, clock.now());
  LeaderLease lease(opts.n, opts.id, opts.lease_window);
  const Budget admission = Budget().with_max_points(opts.admission_cap);

  // --- helpers --------------------------------------------------------------
  auto gate_of = [&](std::uint64_t slot) -> std::size_t {
    auto it = seal_gate.find(slot);
    return it == seal_gate.end() ? 0 : it->second;
  };

  // Must run BEFORE any accept that may reuse `incoming.slot` for a
  // different action: the evicted batch moves to the stash, not oblivion.
  // The durable-send gate at the slot (if any) guards the batch being
  // DISPLACED — it moves into the stash with it.  Left behind, the foreign
  // incoming batch would inherit a gate that has nothing to do with it and
  // sit out adoption offers until an unrelated durable floor passes.
  auto stash_displaced = [&](const SvcBatch& incoming) {
    const SvcLogEntry* prev = log.entry(incoming.slot);
    if (!prev || prev->committed || prev->applied) return;
    if (prev->batch.action == incoming.action) return;
    std::size_t gate = 0;
    auto git = seal_gate.find(incoming.slot);
    if (git != seal_gate.end()) {
      gate = git->second;
      seal_gate.erase(git);
    }
    orphans.emplace(prev->batch.action, std::make_pair(prev->batch, gate));
  };

  auto prune_orphans = [&]() {
    for (auto it = orphans.begin(); it != orphans.end();) {
      if (log.slot_of(it->first)) {
        it = orphans.erase(it);
      } else {
        ++it;
      }
    }
  };

  auto broadcast = [&](FrameType t, const std::vector<std::uint8_t>& payload) {
    for (ProcessId q = 0; q < opts.n; ++q) {
      if (q != opts.id) reactor.send(q, t, payload);
    }
  };

  auto reply_client = [&](ProcessId to, const SvcReply& r) {
    reactor.send(to, FrameType::kSvcReply, encode_svc_reply(r));
  };

  auto note_committed = [&](std::uint64_t slot) {
    log.mark_committed(slot);
    max_committed_slot = std::max(max_committed_slot, slot);
  };

  auto apply_slot = [&](std::uint64_t slot) {
    const SvcLogEntry* e = log.entry(slot);
    if (!e || e->applied) return;
    rec.record(Event::do_action(e->batch.action));
    const SvcBatch batch = e->batch;  // copy: replies may resize the map
    for (const SvcOp& op : batch.ops) {
      if (op.kind != SvcOpKind::kWrite) continue;
      if (op.reg < 0 || op.reg >= kRegisters) continue;
      if (sessions.applied(op.session, op.seq)) {
        ++svcc.svc_dups_suppressed;
        continue;
      }
      if (op.seq != sessions.expected(op.session)) continue;
      auto& r = regs[static_cast<std::size_t>(op.reg)];
      r.value = op.value;
      ++r.version;
      sessions.record(op.session, op.seq, SvcResult{op.value, r.version});
      auto pit = pending_seq.find(op.session);
      if (pit != pending_seq.end() && pit->second <= op.seq) {
        pending_seq.erase(pit);
      }
      if (leader == opts.id && !syncing) {
        auto cit = client_of.find(op.session);
        if (cit != client_of.end()) {
          SvcReply rep;
          rep.session = op.session;
          rep.seq = op.seq;
          rep.status = SvcStatus::kOk;
          rep.value = op.value;
          rep.version = r.version;
          reply_client(cit->second, rep);
        }
      }
    }
    if (log.mark_applied(slot)) ++svcc.svc_ooo_commits;
  };

  auto drain_ready = [&]() {
    for (;;) {
      const auto ready = log.ready();
      if (ready.empty()) break;
      for (std::uint64_t s : ready) apply_slot(s);
    }
  };

  auto seal_at = [&](std::uint64_t slot, std::vector<SvcOp> ops) {
    UDC_CHECK(admission_seq <= kMaxActionSeq,
              "svc node: per-leader action space exhausted");
    SvcBatch b;
    b.slot = slot;
    b.term = term;
    b.action = make_action(opts.id, admission_seq++);
    b.ops = std::move(ops);
    rec.record(Event::init(b.action));
    my_inits.insert(b.action);
    seal_gate[slot] = rec.mirror_len();
    slog.append(b);
    UDC_CHECK(log.accept(b), "svc node: own seal refused");
    log.ack(slot, opts.id);
    unsent.push_back(slot);
    ++svcc.svc_batches_sealed;
  };

  auto propose_slot = [&](std::uint64_t slot) {
    const SvcLogEntry* e = log.entry(slot);
    if (!e || e->committed) return;
    SvcPropose p;
    p.term = term;
    p.clock = clock.now();
    p.batch = e->batch;
    broadcast(FrameType::kSvcPropose, encode_svc_propose(p));
  };

  auto pump_unsent = [&]() {
    while (!unsent.empty()) {
      const std::uint64_t slot = unsent.front();
      if (store.durable_floor() < gate_of(slot)) break;
      propose_slot(slot);
      unsent.pop_front();
    }
  };

  auto try_commit = [&](std::uint64_t slot) {
    const SvcLogEntry* e = log.entry(slot);
    if (!e || e->committed) return;
    if (log.has_quorum(slot, opts.n)) {
      note_committed(slot);
      ++svcc.svc_batches_committed;
    }
  };

  std::uint64_t last_notice_floor = ~std::uint64_t{0};
  std::vector<std::uint64_t> last_notice_extra;
  auto send_commit_notice = [&]() {
    SvcCommit c;
    c.term = term;
    c.clock = clock.now();
    c.floor = log.applied_floor();
    c.extra = log.applied_above_floor();
    last_notice_floor = c.floor;
    last_notice_extra = c.extra;
    broadcast(FrameType::kSvcCommit, encode_svc_commit(c));
  };

  auto become_follower = [&](std::uint64_t new_term, ProcessId new_leader) {
    term = std::max(term, new_term);
    max_term_seen = std::max(max_term_seen, new_term);
    leader = new_leader;
    syncing = false;
    // Leader-side bookkeeping dies with the leadership: unsealed admissions
    // and reply routing regrow from client retries at the successor; sealed
    // uncommitted batches stay in the log for adoption offers.
    open_ops.clear();
    pending_seq.clear();
    unsent.clear();
    lease.reset();
  };

  auto finish_sync = [&]() {
    syncing = false;
    next_slot = std::max(next_slot, log.max_slot() + 1);
    // Every hole below next_slot gets a no-op batch (a dead leader may have
    // allocated the slot and told no one); every orphan is re-sealed under
    // this term.  Both must commit before the floor can pass them.
    for (std::uint64_t s = log.applied_floor() + 1; s < next_slot; ++s) {
      const SvcLogEntry* e = log.entry(s);
      if (!e) {
        seal_at(s, {});
        continue;
      }
      if (e->committed) continue;
      if (e->batch.term != term) {
        SvcBatch b = e->batch;
        b.term = term;
        UDC_CHECK(log.accept(b), "svc node: re-seal refused");
        slog.append(b);
        log.ack(s, opts.id);  // accept voided the old-term acks; re-add self
        ++svcc.svc_adoptions;
      }
      unsent.push_back(s);
    }
    // Stashed orphans this node holds are adopted by this leadership
    // directly: same action id (the owner keeps the DC1/DC3 obligations),
    // fresh slot, this term.
    prune_orphans();
    for (auto& [a, stash] : orphans) {
      SvcBatch b = stash.first;
      b.slot = next_slot++;
      b.term = term;
      slog.append(b);
      UDC_CHECK(log.accept(b), "svc node: orphan re-seal refused");
      log.ack(b.slot, opts.id);
      if (stash.second != 0) seal_gate[b.slot] = stash.second;
      unsent.push_back(b.slot);
      ++svcc.svc_adoptions;
    }
    orphans.clear();
    last_notice_floor = ~std::uint64_t{0};  // force a fresh commit notice
  };

  auto maybe_finish_sync = [&]() {
    if (syncing && sync_acks.size() * 2 > opts.n) finish_sync();
  };

  auto sync_started = std::chrono::steady_clock::now();
  auto begin_leadership = [&]() {
    // Terms are id-stamped (term % n == id, VR-style view numbers), so two
    // concurrent candidates can never claim the SAME term — without this,
    // both could collect sync responses from disjoint-enough majorities at
    // one term and split the brain; with it, any two leaderships are term-
    // ordered and the propose/ack term checks arbitrate.
    const std::uint64_t base = max_term_seen + 1;
    const std::uint64_t n64 = static_cast<std::uint64_t>(opts.n);
    std::uint64_t t =
        (base / n64) * n64 + static_cast<std::uint64_t>(opts.id);
    if (t < base) t += n64;
    term = t;
    max_term_seen = term;
    leader = opts.id;
    syncing = true;
    sync_acks = ProcSet();
    sync_acks.insert(opts.id);
    open_ops.clear();
    pending_seq.clear();
    unsent.clear();
    lease.reset();
    sync_started = std::chrono::steady_clock::now();
    ++svcc.svc_elections;
    ++svcc.svc_sync_rounds;
    SvcSyncReq req;
    req.term = term;
    req.clock = clock.now();
    req.floor = log.applied_floor();
    broadcast(FrameType::kSvcSyncReq, encode_svc_sync_req(req));
    maybe_finish_sync();  // n == 1: a majority is just us
  };

  auto respond_sync = [&](ProcessId to, std::uint64_t from_floor) {
    std::vector<SvcBatch> out;
    std::vector<std::uint8_t> flags;
    const std::uint64_t hi = log.max_slot();
    for (std::uint64_t s = from_floor + 1; s <= hi && hi != 0; ++s) {
      const SvcLogEntry* e = log.entry(s);
      if (!e) continue;
      // Never ship a batch whose kInit is not yet durable here: the batch
      // would outrun its init's durability, reopening the DC3 hole the
      // durable-send gate closes.
      if (store.durable_floor() < gate_of(s)) continue;
      out.push_back(e->batch);
      flags.push_back(e->committed || e->applied ? 1 : 0);
    }
    std::size_t sent = 0;
    do {
      SvcSyncResp resp;
      resp.term = term;
      resp.clock = clock.now();
      resp.floor = log.applied_floor();
      const std::size_t take = std::min(kSyncChunk, out.size() - sent);
      resp.entries.assign(out.begin() + static_cast<std::ptrdiff_t>(sent),
                          out.begin() + static_cast<std::ptrdiff_t>(sent + take));
      resp.committed.assign(
          flags.begin() + static_cast<std::ptrdiff_t>(sent),
          flags.begin() + static_cast<std::ptrdiff_t>(sent + take));
      sent += take;
      resp.last = sent >= out.size();
      reactor.send(to, FrameType::kSvcSyncResp, encode_svc_sync_resp(resp));
    } while (sent < out.size());
  };

  // --- frame handlers (worker thread) ---------------------------------------
  auto on_request = [&](ProcessId peer, const WireFrame& f,
                        std::chrono::steady_clock::time_point wall) {
    auto rq = decode_svc_request(f.payload.data(), f.payload.size());
    if (!rq) return;
    ++svcc.svc_requests;
    const SvcOp& op = rq->op;
    client_of[op.session] = peer;
    SvcReply rep;
    rep.session = op.session;
    rep.seq = op.seq;
    if (leader != opts.id || syncing) {
      rep.status = SvcStatus::kNotLeader;
      rep.leader_hint = leader;
      ++svcc.svc_redirects;
      reply_client(peer, rep);
      return;
    }
    if (op.kind == SvcOpKind::kRead) {
      if (op.reg < 0 || op.reg >= kRegisters) {
        rep.status = SvcStatus::kOutOfOrder;
        reply_client(peer, rep);
        return;
      }
      // Lease reads: only while a majority is provably fresh AND every slot
      // known committed is applied here — otherwise a client could observe a
      // register version regress across a failover.
      if (!lease.valid(wall) || log.applied_floor() < max_committed_slot) {
        rep.status = SvcStatus::kRetryLater;
        rep.backoff_ms = 2;
        ++svcc.svc_lease_denied;
        reply_client(peer, rep);
        return;
      }
      const auto& r = regs[static_cast<std::size_t>(op.reg)];
      rep.status = SvcStatus::kOk;
      rep.value = r.value;
      rep.version = r.version;
      ++svcc.svc_lease_reads;
      reply_client(peer, rep);
      return;
    }
    // Writes: dedup, order, backpressure, admit.
    if (op.reg < 0 || op.reg >= kRegisters) {
      rep.status = SvcStatus::kOutOfOrder;
      reply_client(peer, rep);
      return;
    }
    if (auto cached = sessions.cached(op.session, op.seq)) {
      rep.status = SvcStatus::kOk;
      rep.value = cached->value;
      rep.version = cached->version;
      ++svcc.svc_dups_suppressed;
      reply_client(peer, rep);
      return;
    }
    if (sessions.applied(op.session, op.seq)) return;  // stale: nobody waits
    if (pending_seq.count(op.session)) return;  // in flight: apply will reply
    if (op.seq != sessions.expected(op.session)) {
      rep.status = SvcStatus::kOutOfOrder;
      reply_client(peer, rep);
      return;
    }
    const std::size_t inflight_slots =
        static_cast<std::size_t>(log.size()) -
        static_cast<std::size_t>(log.applied_count());
    if (admission.points_exhausted(pending_seq.size()) ||
        (inflight_slots >= static_cast<std::size_t>(opts.max_inflight_slots) &&
         open_ops.size() >= static_cast<std::size_t>(opts.max_batch_ops))) {
      rep.status = SvcStatus::kRetryLater;
      rep.backoff_ms = static_cast<std::uint32_t>(
          std::min<std::size_t>(20, 1 + pending_seq.size() / 256));
      ++svcc.svc_retry_later;
      reply_client(peer, rep);
      return;
    }
    open_ops.push_back(op);
    pending_seq[op.session] = op.seq;
    ++svcc.svc_admitted;
  };

  auto on_propose = [&](ProcessId peer, const WireFrame& f) {
    auto p = decode_svc_propose(f.payload.data(), f.payload.size());
    if (!p) return;
    clock.observe(p->clock);
    SvcAck a;
    a.slot = p->batch.slot;
    if (p->term < term) {
      a.term = term;
      a.ok = false;
      a.clock = clock.now();
      reactor.send(peer, FrameType::kSvcAck, encode_svc_ack(a));
      return;
    }
    if (p->term > term || leader != peer) become_follower(p->term, peer);
    const SvcLogEntry* prev = log.entry(p->batch.slot);
    const bool already = prev != nullptr && prev->batch == p->batch;
    stash_displaced(p->batch);
    const bool ok = log.accept(p->batch);
    if (ok && !already) slog.append(p->batch);
    a.term = term;
    a.ok = ok;
    a.clock = clock.now();
    reactor.send(peer, FrameType::kSvcAck, encode_svc_ack(a));
  };

  auto on_ack = [&](ProcessId peer, const WireFrame& f,
                    std::chrono::steady_clock::time_point wall) {
    auto a = decode_svc_ack(f.payload.data(), f.payload.size());
    if (!a) return;
    clock.observe(a->clock);
    if (!a->ok) {
      if (a->term > term) become_follower(a->term, kInvalidProcess);
      return;
    }
    if (leader != opts.id || a->term != term) return;
    lease.observe(peer, wall);
    log.ack(a->slot, peer);
    try_commit(a->slot);
    drain_ready();
  };

  auto on_commit = [&](ProcessId peer, const WireFrame& f) {
    auto c = decode_svc_commit(f.payload.data(), f.payload.size());
    if (!c) return;
    clock.observe(c->clock);
    if (c->term < term) return;
    if (c->term > term || leader != peer) become_follower(c->term, peer);
    commit_floor_learned = std::max(commit_floor_learned, c->floor);
    log.learn_floor(c->floor, c->term);
    max_committed_slot = std::max(max_committed_slot, c->floor);
    // Same term-vouching rule for the out-of-order extras: a notice only
    // proves content for entries accepted under ITS term.  Mismatches are
    // left for catch-up sync, which carries per-entry flags.
    for (std::uint64_t s : c->extra) {
      const SvcLogEntry* e = log.entry(s);
      if (e != nullptr && (e->committed || e->batch.term == c->term)) {
        note_committed(s);
      }
    }
    drain_ready();
  };

  auto on_hb = [&](ProcessId peer, const WireFrame& f,
                   std::chrono::steady_clock::time_point wall) {
    auto h = decode_svc_hb(f.payload.data(), f.payload.size());
    if (!h) return;
    clock.observe(h->clock);
    detector.observe_heartbeat(peer, clock.now());
    if (h->term > term) {
      become_follower(h->term, h->leader);
    } else if (h->term == term && leader == kInvalidProcess &&
               h->leader != kInvalidProcess) {
      leader = h->leader;
    }
    max_term_seen = std::max(max_term_seen, h->term);
    if (leader == opts.id) lease.observe(peer, wall);
    if (peer == leader) {
      commit_floor_learned = std::max(commit_floor_learned, h->floor);
      log.learn_floor(h->floor, h->term);
      max_committed_slot = std::max(max_committed_slot, h->floor);
      drain_ready();
    }
  };

  auto on_sync_req = [&](ProcessId peer, const WireFrame& f) {
    auto r = decode_svc_sync_req(f.payload.data(), f.payload.size());
    if (!r) return;
    clock.observe(r->clock);
    max_term_seen = std::max(max_term_seen, r->term);
    if (r->term > term) become_follower(r->term, peer);  // leadership claim
    respond_sync(peer, r->floor);
  };

  auto on_sync_resp = [&](ProcessId peer, const WireFrame& f) {
    auto resp = decode_svc_sync_resp(f.payload.data(), f.payload.size());
    if (!resp) return;
    clock.observe(resp->clock);
    max_term_seen = std::max(max_term_seen, resp->term);
    // Absorbing taught entries is the same dance in sync and catch-up mode:
    // accept (committed content wins over any uncommitted local leftover —
    // the leftover is stashed for adoption first), durably log what's new,
    // and mark committed exactly the entries the responder vouched for.
    auto absorb = [&](const SvcBatch& b, bool known_committed) {
      const SvcLogEntry* prev = log.entry(b.slot);
      const bool already = prev != nullptr && prev->batch == b;
      stash_displaced(b);
      if (log.accept(b, known_committed) && !already) slog.append(b);
      if (known_committed) {
        // Guard against marking a bystander: only commit the slot if it now
        // holds the vouched-for action (accept can refuse — e.g. the action
        // is already committed at another slot, which would be a protocol
        // violation the checkers will surface; don't compound it here).
        const SvcLogEntry* now = log.entry(b.slot);
        if (now != nullptr && now->batch.action == b.action) {
          note_committed(b.slot);
        }
      }
    };
    auto vouched = [&](std::size_t i) {
      return i < resp->committed.size() && resp->committed[i] != 0;
    };
    if (syncing && resp->term == term) {
      // Failover sync: absorb everything a majority holds before opening.
      for (std::size_t i = 0; i < resp->entries.size(); ++i) {
        absorb(resp->entries[i], vouched(i));
      }
      max_committed_slot = std::max(max_committed_slot, resp->floor);
      commit_floor_learned = std::max(commit_floor_learned, resp->floor);
      drain_ready();
      if (resp->last) {
        sync_acks.insert(peer);
        maybe_finish_sync();
      }
      return;
    }
    if (leader == opts.id && !syncing) {
      // Adoption offer: a follower holds batches this leadership has never
      // placed.  Only CURRENT-term offers count: a higher-term offer means
      // this leadership is already deposed (keep sealing and every batch is
      // nacked, re-adopted later — pure churn and duplicate svclog records
      // every failover race), a lower-term one is a lagging follower that
      // will re-offer once heartbeats teach it the term.
      if (resp->term > term) {
        become_follower(resp->term, kInvalidProcess);
        return;
      }
      if (resp->term < term) return;
      // Re-seal each unknown action at a fresh slot under this
      // term — SAME action id, no new kInit (the owner keeps the DC1/DC3
      // obligations; the offer's clock rider carried the causality).
      for (const SvcBatch& e : resp->entries) {
        if (log.slot_of(e.action)) continue;
        SvcBatch b;
        b.slot = next_slot++;
        b.term = term;
        b.action = e.action;
        b.ops = e.ops;
        slog.append(b);
        UDC_CHECK(log.accept(b), "svc node: adoption accept refused");
        log.ack(b.slot, opts.id);
        unsent.push_back(b.slot);
        ++svcc.svc_adoptions;
      }
      return;
    }
    // Follower catch-up data from the leader.
    if (peer == leader) {
      for (std::size_t i = 0; i < resp->entries.size(); ++i) {
        if (resp->entries[i].slot <= log.applied_floor()) continue;
        absorb(resp->entries[i], vouched(i));
      }
      max_committed_slot = std::max(max_committed_slot, resp->floor);
      commit_floor_learned = std::max(commit_floor_learned, resp->floor);
      drain_ready();
    }
  };

  // --- status reporting -----------------------------------------------------
  auto send_status = [&](bool done) {
    SvcNodeStatus s;
    s.id = opts.id;
    s.epoch = opts.epoch;
    s.term = term;
    s.leader = leader;
    s.clock = clock.now();
    s.floor = log.applied_floor();
    s.applied = log.applied_count();
    s.log_size = log.size();
    s.sessions = sessions.size();
    prune_orphans();
    s.orphans = orphans.size();
    s.durable_events = std::min(store.durable_floor(), mirror.size());
    s.syncing = syncing;
    s.done = done;
    RuntimeCounters rc = svcc;
    rc.suspicions = detector.suspicions_raised();
    rc.false_suspicions = detector.false_suspicions();
    rc.trust_restores = detector.trust_restores();
    fold_wire_counters(reactor.counters(), &rc);
    const StoreCounters sc = store.counters();
    rc.wal_frames_replayed = sc.wal_frames_replayed;
    rc.snapshots_written = sc.snapshots_written;
    rc.snapshots_loaded = sc.snapshots_loaded;
    rc.torn_tails_truncated = sc.torn_tails_truncated;
    rc.recoveries_total = sc.recoveries_total;
    rc.wal_group_commits = sc.group_commits;
    s.counters = pack_node_counters(rc);
    const auto svcv = pack_svc_counters(rc);
    s.counters.insert(s.counters.end(), svcv.begin(), svcv.end());
    reactor.send(kSupervisorPeer, FrameType::kSvcStatus,
                 encode_svc_status(s));
  };

  // --- main loop ------------------------------------------------------------
  Time next_hb = 0;
  std::vector<bool> refusing(static_cast<std::size_t>(opts.n), false);
  constexpr auto kStatusEvery = std::chrono::milliseconds(2);
  constexpr auto kSyncRetryAfter = std::chrono::milliseconds(250);
  auto next_status = std::chrono::steady_clock::now();
  auto next_prune = std::chrono::steady_clock::now();
  auto next_seal = std::chrono::steady_clock::now();
  auto next_resend = std::chrono::steady_clock::now();
  auto next_catchup = std::chrono::steady_clock::now();
  auto sup_down_since = std::chrono::steady_clock::now();
  bool stopping = false;
  int exit_code = 0;

  while (!stopping) {
    auto m = mail.pop_for(std::chrono::microseconds(300));
    const auto wall = std::chrono::steady_clock::now();
    if (m) {
      if (m->stop) {
        stopping = true;
      } else if (m->peer == kSupervisorPeer) {
        if (m->frame.type == FrameType::kPeers) {
          if (auto p = decode_peers(m->frame.payload.data(),
                                    m->frame.payload.size())) {
            for (const auto& [pid, port] : p->ports) {
              // One dialer per pair: dial only peers below our id.
              if (pid >= 0 && pid < opts.id && port != 0) {
                reactor.set_endpoint(pid, port);
              }
            }
          }
        }
      } else if (m->peer >= kClientPeerBase) {
        if (m->frame.type == FrameType::kSvcRequest) {
          on_request(m->peer, m->frame, wall);
        }
      } else {
        switch (m->frame.type) {
          case FrameType::kSvcPropose:
            on_propose(m->peer, m->frame);
            break;
          case FrameType::kSvcAck:
            on_ack(m->peer, m->frame, wall);
            break;
          case FrameType::kSvcCommit:
            on_commit(m->peer, m->frame);
            break;
          case FrameType::kSvcHb:
            on_hb(m->peer, m->frame, wall);
            break;
          case FrameType::kSvcSyncReq:
            on_sync_req(m->peer, m->frame);
            break;
          case FrameType::kSvcSyncResp:
            on_sync_resp(m->peer, m->frame);
            break;
          default:
            break;
        }
      }
    } else {
      clock.tick();  // idle: logical time advances anyway
    }

    const Time now = clock.now();
    if (now >= next_hb) {
      SvcHb h;
      h.term = term;
      h.leader = leader;
      h.clock = now;
      h.floor = log.applied_floor();
      broadcast(FrameType::kSvcHb, encode_svc_hb(h));
      ++svcc.heartbeats;
      next_hb = now + opts.heartbeat.interval;
    }
    (void)detector.poll(now);

    // FD-driven leadership: the lowest unsuspected id is the candidate; it
    // takes over only when the incumbent is unknown or suspected (no
    // gratuitous churn when a lower id rejoins behind a healthy leader).
    {
      const ProcSet sus = detector.suspects();
      ProcessId cand = opts.id;
      for (ProcessId q = 0; q < opts.n; ++q) {
        if (q == opts.id || !sus.contains(q)) {
          cand = q;
          break;
        }
      }
      if (cand == opts.id && leader != opts.id &&
          (leader == kInvalidProcess || sus.contains(leader))) {
        begin_leadership();
      }
      if (syncing && wall - sync_started > kSyncRetryAfter) {
        begin_leadership();  // fresh term, fresh round: the last one stalled
      }
    }

    if (leader == opts.id && !syncing) {
      const std::size_t inflight_slots =
          static_cast<std::size_t>(log.size()) -
          static_cast<std::size_t>(log.applied_count());
      if (!open_ops.empty() &&
          (open_ops.size() >= static_cast<std::size_t>(opts.max_batch_ops) ||
           wall >= next_seal) &&
          inflight_slots < static_cast<std::size_t>(opts.max_inflight_slots)) {
        std::vector<SvcOp> ops;
        ops.swap(open_ops);
        seal_at(next_slot++, std::move(ops));
        next_seal = wall + opts.seal_interval;
      }
      pump_unsent();
      drain_ready();
      if (log.applied_floor() != last_notice_floor ||
          log.applied_above_floor() != last_notice_extra) {
        send_commit_notice();
      }
      if (wall >= next_resend) {
        // Oldest-first burst, capped: commits drain lowest slots first, so
        // re-proposing a bounded prefix makes the same progress as the full
        // backlog would — without the quadratic frame storm a long backlog
        // otherwise feeds (which delays the very acks that would drain it).
        int burst = 0;
        for (const SvcLogEntry* e : log.uncommitted()) {
          if (burst >= kResendBurst) break;
          if (store.durable_floor() >= gate_of(e->batch.slot)) {
            propose_slot(e->batch.slot);
            ++burst;
          }
        }
        next_resend = wall + opts.resend_interval;
      }
    } else if (leader != kInvalidProcess && leader != opts.id &&
               wall >= next_resend) {
      // Adoption offers: the orphan stash first (displaced batches with no
      // slot anywhere — the live DC1 obligations), then durably backed
      // uncommitted entries; one chunk per tick keeps the offer traffic
      // bounded while repeats cover the rest.
      std::vector<SvcBatch> offers;
      prune_orphans();
      for (const auto& [a, stash] : orphans) {
        if (store.durable_floor() >= stash.second) {
          offers.push_back(stash.first);
        }
      }
      for (const SvcLogEntry* e : log.uncommitted()) {
        if (offers.size() >= kSyncChunk) break;
        if (store.durable_floor() >= gate_of(e->batch.slot)) {
          offers.push_back(e->batch);
        }
      }
      if (offers.size() > kSyncChunk) offers.resize(kSyncChunk);
      if (!offers.empty()) {
        SvcSyncResp resp;
        resp.term = term;
        resp.clock = clock.now();
        resp.floor = log.applied_floor();
        resp.entries = std::move(offers);
        resp.last = true;
        reactor.send(leader, FrameType::kSvcSyncResp,
                     encode_svc_sync_resp(resp));
      }
      // Catch-up: the leader's floor is ahead of ours — ask for the gap.
      // Paced slower than the resend tick: each request triggers a full
      // re-ship of everything above our floor, so back-to-back requests
      // while one response is already in flight just multiply frames.
      if (commit_floor_learned > log.applied_floor() &&
          wall >= next_catchup) {
        SvcSyncReq req;
        req.term = term;
        req.clock = clock.now();
        req.floor = log.applied_floor();
        reactor.send(leader, FrameType::kSvcSyncReq,
                     encode_svc_sync_req(req));
        ++svcc.svc_sync_rounds;
        next_catchup = wall + 5 * opts.resend_interval;
      }
      next_resend = wall + opts.resend_interval;
    }

    // Bidirectional partition windows become refuse windows, as in run_node.
    for (ProcessId q = 0; q < opts.n; ++q) {
      if (q == opts.id) continue;
      const bool cut = bidirectional_cut(script, opts.id, q, now);
      if (cut != refusing[static_cast<std::size_t>(q)]) {
        refusing[static_cast<std::size_t>(q)] = cut;
        reactor.set_refuse(q, cut);
      }
    }

    if (wall >= next_status) {
      if (sup_up.load(std::memory_order_relaxed)) send_status(false);
      next_status = wall + kStatusEvery;
    }

    if (wall >= next_prune) {
      // Both maps would otherwise grow for the whole run.  A gate at or
      // below the applied floor can never gate a ship again (a batch only
      // commits after its init cleared the gate), and reply routing is
      // only needed while a write is pending — a dropped route costs one
      // retry into the dedup cache, never a duplicate apply.
      seal_gate.erase(seal_gate.begin(),
                      seal_gate.upper_bound(log.applied_floor()));
      for (auto it = client_of.begin(); it != client_of.end();) {
        if (pending_seq.count(it->first)) {
          ++it;
        } else {
          it = client_of.erase(it);
        }
      }
      next_prune = wall + std::chrono::milliseconds(100);
    }

    if (sup_up.load(std::memory_order_relaxed) ||
        !sup_ever_up.load(std::memory_order_relaxed)) {
      sup_down_since = wall;
    } else if (wall - sup_down_since > opts.orphan_after) {
      stopping = true;
      exit_code = 3;
    }
  }

  if (committer) committer->stop();
  store.flush();
  if (exit_code == 0 && sup_up.load(std::memory_order_relaxed)) {
    send_status(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  reactor.stop();
  return exit_code;
}

}  // namespace udc
