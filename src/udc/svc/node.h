// run_svc_node: one replica of the replicated coordination service as one
// OS process.
//
// The node stacks the service on the PR-7 cross-process substrate: the same
// ProcessStore WAL shard (the node's model trace, merged and checked by the
// supervisor), the same Lamport clock discipline, the same epoll reactor —
// plus a second durable file, the service log (svc/svclog), which backs
// every replication ack.  Roles are FD-driven: the HeartbeatDetector over
// kSvcHb frames elects the lowest unsuspected id; a fresh leader syncs
// against a majority before admitting anything (two majorities intersect,
// so it cannot miss a committed batch), re-seals orphans under its term,
// and plugs slot holes with no-op batches so the applied floor can always
// advance.
//
// Model-event mapping (how chaos results get checked): sealing a batch
// records kInit(action) at the admitting leader; applying it records
// kDo(action) at every replica.  The batch propose leaves the leader only
// once the kInit is WAL-durable (the svc-level durable-send gate), and
// every svc frame carries a clock rider folded in before any recording, so
// in the merged run each kDo tick strictly exceeds its kInit tick — DC3's
// operational face, surviving kill -9 because a restarted owner re-records
// any kInit its WAL lost for a batch its service log still holds, before
// offering that batch for adoption.
//
// Exit codes match run_node: 0 on supervisor-ordered stop, 3 if orphaned.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "udc/common/types.h"
#include "udc/coord/metrics.h"
#include "udc/fd/heartbeat.h"
#include "udc/rt/remote/node.h"
#include "udc/store/process_store.h"

namespace udc {

// Status-frame slots appended AFTER the rt slots (NodeCounterSlot): the
// node packs pack_node_counters + pack_svc_counters, the supervisor splits
// at kNodeCounterSlots.
enum SvcCounterSlot : std::size_t {
  kSvcSlotRequests = 0,
  kSvcSlotAdmitted,
  kSvcSlotDupsSuppressed,
  kSvcSlotRetryLater,
  kSvcSlotRedirects,
  kSvcSlotBatchesSealed,
  kSvcSlotBatchesCommitted,
  kSvcSlotOooCommits,
  kSvcSlotElections,
  kSvcSlotSyncRounds,
  kSvcSlotAdoptions,
  kSvcSlotLeaseReads,
  kSvcSlotLeaseDenied,
  kSvcCounterSlots,
};

std::vector<std::uint64_t> pack_svc_counters(const RuntimeCounters& c);
// Unpacks the svc slots from `v` starting at `offset` (the rt slot count in
// a status frame) into the matching fields of `c`.
void unpack_svc_counters(const std::vector<std::uint64_t>& v,
                         std::size_t offset, RuntimeCounters* c);

struct SvcNodeOptions {
  ProcessId id = kInvalidProcess;
  int n = 0;
  std::uint64_t epoch = 0;   // incarnation; > 0 recovers WAL + service log
  std::uint64_t run_id = 0;
  std::uint16_t supervisor_port = 0;
  std::uint16_t data_port = 0;  // 0 = ephemeral
  std::string dir;              // run dir: WAL shard + svc-<id>.log
  std::string script_file;      // partition windows -> refuse windows
  std::uint64_t seed = 1;
  StoreOptions store = mp_store_options();
  // FD pacing in logical ticks, like the rt node.
  HeartbeatOptions heartbeat{/*interval=*/24, /*initial_timeout=*/240,
                             /*timeout_backoff=*/2.0, /*max_timeout=*/4096};
  // Lease window (wall clock): must sit well under the detector's effective
  // suspicion latency for the lease intersection argument to have slack.
  std::chrono::milliseconds lease_window{60};
  int max_batch_ops = 128;                     // seal size cap
  std::chrono::microseconds seal_interval{500};   // seal pacing (wall)
  int max_inflight_slots = 8;                  // uncommitted-slot admission cap
  std::size_t admission_cap = 4096;            // in-flight op budget (ops)
  std::chrono::microseconds resend_interval{20'000};  // re-propose pacing
  std::chrono::milliseconds orphan_after{2'000};
};

int run_svc_node(const SvcNodeOptions& opts);

}  // namespace udc
