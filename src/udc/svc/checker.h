// Linearizable-session checker: exactly-once, per-session order, and
// replica agreement over a whole chaotic run.
//
// Inputs are ground truth, not protocol claims: each replica's applied
// batch sequence is reconstructed from its DURABLE model history (the kDo
// order its WAL shard survived with, joined to batch content from the
// service logs), and the confirmed list is what clients actually saw
// acknowledged.  The checker replays every replica's sequence through a
// reference dedup + state machine and asserts:
//
//   per_session_order — each session's effective applies are seq 1,2,3,...
//                       dense and in order at every replica
//   exactly_once      — a (session, seq) never applies effectively twice,
//                       and duplicates never carry conflicting content
//   agreement         — all replicas converge: same effective apply set,
//                       same per-op results, same final register state
//   client_confirmed  — every write a client saw acknowledged is
//                       effectively applied at EVERY replica, with the
//                       result the client observed (an acked-then-lost
//                       write after kill -9 is the uniformity violation
//                       this service exists to rule out)
//   read_monotone     — per session, observed register versions never
//                       regress across its completions, and every read's
//                       (version, value) pair matches the write that
//                       produced that version
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "udc/svc/wire.h"

namespace udc {

// One client-confirmed completion, in client completion order.
struct SvcClientRecord {
  std::uint64_t session = 0;
  std::uint64_t seq = 0;
  SvcOpKind kind = SvcOpKind::kWrite;
  std::int32_t reg = 0;
  std::int64_t value = 0;     // write payload / read result
  std::uint64_t version = 0;  // register version the reply reported
};

struct SvcSessionReport {
  bool per_session_order = true;
  bool exactly_once = true;
  bool agreement = true;
  bool client_confirmed = true;
  bool read_monotone = true;
  std::uint64_t effective_applies = 0;     // across all replicas
  std::uint64_t suppressed_duplicates = 0;
  std::vector<std::string> violations;

  bool achieved() const {
    return per_session_order && exactly_once && agreement &&
           client_confirmed && read_monotone;
  }
};

SvcSessionReport check_sessions(
    const std::vector<std::vector<SvcBatch>>& applied_per_node,
    const std::vector<SvcClientRecord>& confirmed);

}  // namespace udc
