// In-memory replicated log: slots, terms, quorum, and DC2'-shaped
// out-of-order commit.
//
// One entry per slot, each holding a sealed batch (svc/wire).  The term
// rules are Raft-shaped and deliberately boring: a slot accepts a batch
// only at a term >= the one it last accepted, a committed slot is
// quorum-durable (every acker fdatasync'd it first), and a successor's
// majority sync therefore always sees every committed slot.  What is NOT
// boring is the apply rule: the service promises per-SESSION order, not
// total order, so a committed slot may apply before an earlier slot is
// even committed — exactly when it COMMUTES with every unapplied earlier
// slot (disjoint sessions and disjoint registers: no session can observe
// the inversion and no replica can diverge on state; this is the
// operational face of the paper's DC2' relaxation, which binds performing
// only where coordination demands it).  The applied FLOOR
// (every slot <= floor applied) is what travels in heartbeats and status
// reports; out-of-order applied slots above the floor ride commit notices
// explicitly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "udc/common/proc_set.h"
#include "udc/svc/wire.h"

namespace udc {

struct SvcLogEntry {
  SvcBatch batch;
  bool committed = false;
  bool applied = false;
  ProcSet acks;  // replicas whose DISK holds the batch (self included)
};

class ReplicatedLog {
 public:
  // Accepts `b` at b.slot iff the slot is empty or holds a term <= b.term
  // (idempotent re-accept of the same action included).  Returns true if
  // the entry was stored/updated — the caller's cue to durably log and
  // ack.  A committed slot never changes its batch (a higher-term
  // overwrite of committed content would be the uniformity violation the
  // whole design exists to prevent; the checkers would catch it, this
  // check refuses it locally first).
  //
  // `known_committed` inverts the term rule for UNCOMMITTED local entries:
  // a batch some replica holds committed is quorum-durable truth, and a
  // higher-term local leftover at its slot is provably NOT committed (the
  // commit quorum intersects every sync majority) — the leftover yields,
  // whatever its term.  Without this, a failover sync can wedge: the
  // leader-elect refuses the committed content, the floor never passes the
  // slot, and every re-propose is nacked forever.  The caller stashes the
  // displaced batch and marks the slot committed afterwards.
  bool accept(const SvcBatch& b, bool known_committed = false);

  // Records a durable ack for `slot` from `from`.  Unknown slot: no-op.
  void ack(std::uint64_t slot, ProcessId from);

  // True iff `slot` holds an entry acked by a majority of `n`.
  bool has_quorum(std::uint64_t slot, int n) const;

  void mark_committed(std::uint64_t slot);

  // The DC2' rule.  A committed, unapplied slot `s` is applicable iff for
  // every unapplied slot j < s above the applied floor: the entry for j is
  // KNOWN here and commutes with s — disjoint sessions (no session can
  // observe the inversion) AND disjoint registers (the swapped applies
  // yield identical state, so replicas applying in different orders still
  // converge and acked versions survive a crash-and-replay).  An unknown
  // earlier slot might share either — refuse until catch-up fills it.
  bool applicable(std::uint64_t slot) const;

  // Marks `slot` applied and advances the floor past every contiguously
  // applied slot.  Returns true if this apply was out of slot order (some
  // earlier slot was still unapplied).
  bool mark_applied(std::uint64_t slot);

  // Committed-but-unapplied slots that pass applicable(), lowest first —
  // the apply loop drains these until empty.
  std::vector<std::uint64_t> ready() const;

  const SvcLogEntry* entry(std::uint64_t slot) const;
  // Slot holding `action`, if any (adoption dedup: a successor must not
  // re-seal an action it already holds).
  std::optional<std::uint64_t> slot_of(ActionId action) const;

  std::uint64_t applied_floor() const { return applied_floor_; }
  // Learns "every slot <= f is committed" from a term-`notice_term` commit
  // notice or heartbeat.  A floor is just a number: it vouches for the
  // CLUSTER'S content at those slots, not for whatever this replica
  // happens to hold.  Within one term a slot maps to exactly one batch
  // (a leader never reuses a slot within its own term), so a local entry
  // accepted under the SAME term provably matches the leader's — it is
  // marked committed.  An entry under a DIFFERENT term might be a
  // displaced leftover the cluster committed differently; it stays
  // uncommitted and catch-up sync re-teaches it with per-entry flags.
  void learn_floor(std::uint64_t f, std::uint64_t notice_term);

  std::uint64_t max_slot() const;
  std::size_t size() const { return slots_.size(); }
  std::uint64_t applied_count() const { return applied_count_; }

  // Out-of-order applied slots above the floor (for commit notices).
  std::vector<std::uint64_t> applied_above_floor() const;

  // Uncommitted entries, lowest slot first (re-propose / adoption offers).
  std::vector<const SvcLogEntry*> uncommitted() const;

 private:
  std::map<std::uint64_t, SvcLogEntry> slots_;
  std::map<ActionId, std::uint64_t> by_action_;
  std::uint64_t applied_floor_ = 0;
  std::uint64_t applied_count_ = 0;
};

}  // namespace udc
