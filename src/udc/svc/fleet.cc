#include "udc/svc/fleet.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "udc/chaos/fault_script.h"
#include "udc/common/check.h"
#include "udc/common/rng.h"
#include "udc/coord/action.h"
#include "udc/event/event.h"
#include "udc/net/reactor.h"
#include "udc/net/wire.h"
#include "udc/store/process_store.h"
#include "udc/svc/client.h"
#include "udc/svc/svclog.h"
#include "udc/svc/wire.h"

namespace udc {

const char* svc_chaos_arm_name(SvcChaosArm arm) {
  switch (arm) {
    case SvcChaosArm::kNone:
      return "none";
    case SvcChaosArm::kLeaderKill:
      return "leader-kill";
    case SvcChaosArm::kRolling:
      return "rolling";
    case SvcChaosArm::kPartition:
      return "partition";
  }
  return "?";
}

namespace {

// Partition arm: node 0 (the likely first leader) cut both ways in logical
// time, healing mid-run.  Tick velocity under load is thousands per second,
// so the window opens almost immediately and heals well inside the deadline.
constexpr Time kCutFrom = 1'500;
constexpr Time kCutHeal = 15'000;

struct NodeView {
  bool up = false;
  std::uint64_t epoch = 0;      // epoch of the established control stream
  std::uint16_t data_port = 0;  // from the node's hello
  bool have_status = false;
  SvcNodeStatus status;
};

struct Child {
  pid_t pid = -1;
  std::uint64_t epoch = 0;
  bool running = false;
  bool killed_by_us = false;
  bool awaiting_relaunch = false;
  std::chrono::steady_clock::time_point relaunch_at{};
  int exit_status = 0;
  bool reaped = false;
};

// One scheduled open-loop arrival.
struct Arrival {
  std::int64_t at_us = 0;  // offset from load start
  int client = 0;
  std::uint64_t session = 0;
  bool read = false;
  std::int32_t reg = 0;
  std::int64_t value = 0;
};

std::vector<std::string> node_argv(const SvcFleetOptions& opts, ProcessId id,
                                   std::uint64_t epoch, std::uint64_t run_id,
                                   std::uint16_t sup_port,
                                   const std::string& script_path) {
  auto arg = [](const std::string& k, const auto& v) {
    std::ostringstream os;
    os << k << '=' << v;
    return os.str();
  };
  const SvcNodeOptions& nd = opts.node;
  std::vector<std::string> a;
  a.push_back(opts.node_binary);
  a.push_back(arg("--id", id));
  a.push_back(arg("--n", opts.n));
  a.push_back(arg("--epoch", epoch));
  a.push_back(arg("--run-id", run_id));
  a.push_back(arg("--supervisor-port", sup_port));
  a.push_back(arg("--dir", opts.run_dir));
  if (!script_path.empty()) a.push_back(arg("--script", script_path));
  a.push_back(arg("--seed", opts.seed + 0x9e37u * (std::uint64_t)(id + 1) +
                               epoch));
  a.push_back(arg("--hb-interval", nd.heartbeat.interval));
  a.push_back(arg("--hb-timeout", nd.heartbeat.initial_timeout));
  a.push_back(arg("--lease-ms", nd.lease_window.count()));
  a.push_back(arg("--batch-ops", nd.max_batch_ops));
  a.push_back(arg("--seal-us", nd.seal_interval.count()));
  a.push_back(arg("--inflight", nd.max_inflight_slots));
  a.push_back(arg("--admission-cap", nd.admission_cap));
  a.push_back(arg("--resend-us", nd.resend_interval.count()));
  a.push_back(arg("--orphan-ms", nd.orphan_after.count()));
  return a;
}

pid_t spawn_node(const std::vector<std::string>& argv,
                 const std::string& log_path) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& s : argv) {
    cargv.push_back(const_cast<char*>(s.c_str()));
  }
  cargv.push_back(nullptr);
  pid_t pid = ::fork();
  UDC_CHECK(pid >= 0, "svc fleet: fork failed");
  if (pid == 0) {
    int fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      if (fd > STDERR_FILENO) ::close(fd);
    }
    ::execv(cargv[0], cargv.data());
    _exit(127);
  }
  return pid;
}

// Bounded Pareto (alpha = 1.5): the mean interarrival is honored but the
// tail is heavy — bursts arrive, which is what makes backpressure earn its
// keep.  Capped at 40x the mean so one sample cannot stall the schedule.
std::int64_t pareto_us(double mean_us, Rng& rng) {
  const double alpha = 1.5;
  const double xm = mean_us * (alpha - 1.0) / alpha;
  double u = rng.next_double();
  if (u < 1e-12) u = 1e-12;
  const double x = xm / std::pow(u, 1.0 / alpha);
  const double cap = mean_us * 40.0;
  return static_cast<std::int64_t>(std::min(x, cap));
}

std::vector<Arrival> make_schedule(const SvcFleetOptions& opts, Rng& rng) {
  std::vector<Arrival> sched;
  sched.reserve(static_cast<std::size_t>(opts.ops));
  std::int64_t t = 0;
  for (int i = 0; i < opts.ops; ++i) {
    t += pareto_us(opts.mean_interarrival_us, rng);
    Arrival a;
    a.at_us = t;
    a.client = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(opts.clients)));
    const std::uint64_t s = rng.next_below(
        static_cast<std::uint64_t>(opts.sessions_per_client));
    a.session = (static_cast<std::uint64_t>(a.client) << 8) | (s + 1);
    a.read = rng.chance(opts.read_fraction);
    a.reg = static_cast<std::int32_t>(rng.next_below(64));
    a.value = i + 1;
    sched.push_back(a);
  }
  return sched;
}

}  // namespace

SvcFleetVerdict run_svc_fleet(const SvcFleetOptions& opts) {
  UDC_CHECK(opts.n >= 1 && opts.n <= kMaxProcesses, "svc fleet: bad n");
  UDC_CHECK(!opts.run_dir.empty(), "svc fleet: run dir required");
  UDC_CHECK(!opts.node_binary.empty() &&
                std::filesystem::exists(opts.node_binary),
            "svc fleet: node binary missing");
  UDC_CHECK(opts.clients >= 1 && opts.sessions_per_client >= 1 &&
                opts.ops >= 1,
            "svc fleet: bad load shape");
  std::filesystem::create_directories(opts.run_dir);

  std::string script_path;
  if (opts.arm == SvcChaosArm::kPartition && opts.n >= 2) {
    FaultScript script;
    PartitionWindow w;
    w.senders = ProcSet::singleton(0);
    w.recipients = ProcSet::full(opts.n);
    w.recipients.erase(0);
    w.from = kCutFrom;
    w.heal = kCutHeal;
    script.partitions.push_back(w);
    PartitionWindow rev;
    rev.senders = w.recipients;
    rev.recipients = w.senders;
    rev.from = kCutFrom;
    rev.heal = kCutHeal;
    script.partitions.push_back(rev);
    script_path =
        (std::filesystem::path(opts.run_dir) / "script.txt").string();
    std::ofstream out(script_path, std::ios::trunc);
    out << script.format();
    UDC_CHECK(out.good(), "svc fleet: cannot write script file");
  }

  const std::uint64_t run_id =
      (static_cast<std::uint64_t>(::getpid()) << 32) ^ opts.seed ^
      0x737663ull;  // "svc"

  // --- control plane --------------------------------------------------------
  std::mutex mu;
  std::vector<NodeView> views(static_cast<std::size_t>(opts.n));
  std::map<std::pair<ProcessId, std::uint64_t>, RuntimeCounters> counters_by;
  bool directory_dirty = false;

  ReactorOptions ropts;
  ropts.self = kSupervisorPeer;
  ropts.n = opts.n;
  ropts.run_id = run_id;
  ropts.seed = opts.seed ^ 0x73757065ull;  // "supe"
  Reactor reactor(
      ropts,
      [&](ProcessId peer, std::uint64_t epoch, const WireFrame& f) {
        if (f.type != FrameType::kSvcStatus || peer < 0 || peer >= opts.n) {
          return;
        }
        auto s = decode_svc_status(f.payload.data(), f.payload.size());
        if (!s || s->id != peer) return;
        std::lock_guard<std::mutex> lk(mu);
        NodeView& v = views[static_cast<std::size_t>(peer)];
        v.have_status = true;
        v.status = *s;
        RuntimeCounters rc = unpack_node_counters(s->counters);
        unpack_svc_counters(s->counters, kNodeCounterSlots, &rc);
        counters_by[{peer, epoch}] = rc;
      },
      [&](ProcessId peer, std::uint64_t epoch, bool up,
          std::uint16_t data_port) {
        if (peer < 0 || peer >= opts.n) return;
        std::lock_guard<std::mutex> lk(mu);
        NodeView& v = views[static_cast<std::size_t>(peer)];
        v.up = up;
        if (up) {
          v.epoch = epoch;
          v.data_port = data_port;
          directory_dirty = true;
        }
      });
  const std::uint16_t sup_port = reactor.listen(0);
  reactor.start();

  // --- the fleet ------------------------------------------------------------
  std::vector<Child> children(static_cast<std::size_t>(opts.n));
  std::size_t crash_count = 0;
  std::size_t restart_count = 0;
  auto launch = [&](ProcessId p, std::uint64_t epoch) {
    Child& c = children[static_cast<std::size_t>(p)];
    c.epoch = epoch;
    c.killed_by_us = false;
    c.reaped = false;
    c.exit_status = 0;
    c.pid = spawn_node(
        node_argv(opts, p, epoch, run_id, sup_port, script_path),
        (std::filesystem::path(opts.run_dir) /
         ("node-" + std::to_string(p) + ".log"))
            .string());
    c.running = true;
    c.awaiting_relaunch = false;
  };
  for (ProcessId p = 0; p < opts.n; ++p) launch(p, 0);

  auto hard_kill = [&](ProcessId p) {
    Child& c = children[static_cast<std::size_t>(p)];
    if (!c.running) return;
    ::kill(c.pid, SIGKILL);
    int st = 0;
    ::waitpid(c.pid, &st, 0);
    c.exit_status = st;
    c.reaped = true;
    c.running = false;
    c.killed_by_us = true;
    ++crash_count;
    {
      std::lock_guard<std::mutex> lk(mu);
      views[static_cast<std::size_t>(p)].up = false;
    }
  };

  // --- the load -------------------------------------------------------------
  std::mutex done_mu;
  std::vector<SvcClientRecord> confirmed;
  LatencyRecorder latency;
  auto load_start = std::chrono::steady_clock::now();
  auto last_completion = load_start;
  std::vector<std::unique_ptr<SvcClient>> clients;
  for (int ci = 0; ci < opts.clients; ++ci) {
    SvcClientOptions co;
    co.instance = ci;
    co.run_id = run_id;
    co.n = opts.n;
    co.seed = opts.seed + 0x11u * static_cast<std::uint64_t>(ci + 1);
    clients.push_back(std::make_unique<SvcClient>(
        co, [&](const SvcClientRecord& r, double ms) {
          std::lock_guard<std::mutex> lk(done_mu);
          confirmed.push_back(r);
          latency.add(ms);
          last_completion = std::chrono::steady_clock::now();
        }));
  }

  Rng rng(opts.seed ^ 0x6c6f6164ull);  // "load"
  const std::vector<Arrival> schedule = make_schedule(opts, rng);
  std::size_t next_arrival = 0;

  // --- drive ----------------------------------------------------------------
  SvcFleetVerdict v;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + opts.deadline;
  load_start = start;

  // Chaos state.
  int kills_done = 0;
  auto next_kill = start + opts.chaos_after;
  int rolling_victim = 0;
  bool rolling_waiting = false;
  auto rolling_gate = start + opts.chaos_after;

  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const auto wall = std::chrono::steady_clock::now();
    if (wall >= deadline) {
      v.status = BudgetStatus::kBudgetExceeded;
      break;
    }

    std::vector<NodeView> snap;
    bool dirty = false;
    {
      std::lock_guard<std::mutex> lk(mu);
      snap = views;
      dirty = directory_dirty;
      directory_dirty = false;
    }

    // Port directory: nodes learn each other, clients learn everyone.
    if (dirty) {
      WirePeers peers;
      for (ProcessId p = 0; p < opts.n; ++p) {
        const NodeView& nv = snap[static_cast<std::size_t>(p)];
        if (nv.data_port != 0) peers.ports.push_back({p, nv.data_port});
      }
      auto payload = encode_peers(peers);
      for (ProcessId p = 0; p < opts.n; ++p) {
        if (snap[static_cast<std::size_t>(p)].up) {
          reactor.send(p, FrameType::kPeers, payload);
        }
      }
      for (auto& cl : clients) {
        for (const auto& [pid, port] : peers.ports) {
          cl->set_node_port(pid, port);
        }
      }
    }

    // Open-loop arrivals: issue everything due, never wait for completions.
    const std::int64_t elapsed_us =
        std::chrono::duration_cast<std::chrono::microseconds>(wall -
                                                              load_start)
            .count();
    while (next_arrival < schedule.size() &&
           schedule[next_arrival].at_us <= elapsed_us) {
      const Arrival& a = schedule[next_arrival++];
      if (a.read) {
        clients[static_cast<std::size_t>(a.client)]->read(a.session, a.reg);
      } else {
        clients[static_cast<std::size_t>(a.client)]->write(a.session, a.reg,
                                                           a.value);
      }
    }

    // Chaos.
    bool chaos_done = true;
    switch (opts.arm) {
      case SvcChaosArm::kNone:
        break;
      case SvcChaosArm::kLeaderKill: {
        chaos_done = kills_done >= opts.leader_kills;
        if (!chaos_done && wall >= next_kill) {
          // Majority view of the leader; no kill while the fleet is still
          // arguing (an electing fleet has no leader to fail over from).
          std::map<ProcessId, int> votes;
          for (const NodeView& nv : snap) {
            if (nv.up && nv.have_status &&
                nv.status.leader != kInvalidProcess) {
              ++votes[nv.status.leader];
            }
          }
          ProcessId target = kInvalidProcess;
          for (const auto& [who, n] : votes) {
            if (n * 2 > opts.n) target = who;
          }
          if (target != kInvalidProcess &&
              children[static_cast<std::size_t>(target)].running) {
            hard_kill(target);
            Child& c = children[static_cast<std::size_t>(target)];
            c.awaiting_relaunch = true;
            c.relaunch_at = wall + opts.restart_after;
            ++kills_done;
            next_kill = wall + opts.kill_spacing;
          }
        }
        break;
      }
      case SvcChaosArm::kRolling: {
        chaos_done = rolling_victim >= opts.n;
        if (!chaos_done && wall >= rolling_gate) {
          Child& c = children[static_cast<std::size_t>(rolling_victim)];
          if (!rolling_waiting) {
            if (c.running) {
              hard_kill(static_cast<ProcessId>(rolling_victim));
              c.awaiting_relaunch = true;
              c.relaunch_at = wall + opts.restart_after;
              rolling_waiting = true;
            }
          } else {
            // Move on only once the relaunched incarnation reports in: a
            // rolling restart never has two replicas down at once.
            const NodeView& nv =
                snap[static_cast<std::size_t>(rolling_victim)];
            if (c.running && !c.awaiting_relaunch && nv.up &&
                nv.have_status && nv.status.epoch == c.epoch) {
              ++rolling_victim;
              rolling_waiting = false;
              rolling_gate = wall + std::chrono::milliseconds(200);
            }
          }
        }
        break;
      }
      case SvcChaosArm::kPartition: {
        chaos_done = true;
        for (const NodeView& nv : snap) {
          if (!nv.have_status ||
              nv.status.clock <= kCutHeal) {
            chaos_done = false;
          }
        }
        break;
      }
    }

    // Relaunches.
    for (ProcessId p = 0; p < opts.n; ++p) {
      Child& c = children[static_cast<std::size_t>(p)];
      if (c.awaiting_relaunch && wall >= c.relaunch_at) {
        ++restart_count;
        launch(p, c.epoch + 1);
      }
    }

    // Unexpected deaths: reap; conformance accounting at the end.
    for (ProcessId p = 0; p < opts.n; ++p) {
      Child& c = children[static_cast<std::size_t>(p)];
      if (!c.running) continue;
      int st = 0;
      if (::waitpid(c.pid, &st, WNOHANG) == c.pid) {
        c.exit_status = st;
        c.reaped = true;
        c.running = false;
      }
    }

    // Quiescence: all load completed, all chaos done, every replica caught
    // up, applied out, and agreeing on the floor.
    if (next_arrival < schedule.size() || !chaos_done) continue;
    std::size_t inflight = 0;
    for (const auto& cl : clients) inflight += cl->inflight();
    if (inflight != 0) continue;
    bool settled = true;
    std::uint64_t floor0 = 0;
    for (ProcessId p = 0; p < opts.n && settled; ++p) {
      const Child& c = children[static_cast<std::size_t>(p)];
      const NodeView& nv = snap[static_cast<std::size_t>(p)];
      if (!c.running || c.awaiting_relaunch || !nv.up || !nv.have_status ||
          nv.status.epoch != c.epoch || nv.status.syncing ||
          nv.status.orphans != 0 ||
          nv.status.log_size != nv.status.applied) {
        settled = false;
        break;
      }
      if (p == 0) {
        floor0 = nv.status.floor;
      } else if (nv.status.floor != floor0) {
        settled = false;
      }
    }
    if (settled) break;
  }

  // --- shutdown -------------------------------------------------------------
  for (auto& cl : clients) cl->stop();
  const auto stop_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5'000);
  auto next_stop_send = std::chrono::steady_clock::now();
  for (;;) {
    if (std::chrono::steady_clock::now() >= next_stop_send) {
      for (ProcessId p = 0; p < opts.n; ++p) {
        if (children[static_cast<std::size_t>(p)].running) {
          reactor.send(p, FrameType::kStop, {});
        }
      }
      next_stop_send =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
    }
    bool any_running = false;
    for (ProcessId p = 0; p < opts.n; ++p) {
      Child& c = children[static_cast<std::size_t>(p)];
      if (!c.running) continue;
      int st = 0;
      if (::waitpid(c.pid, &st, WNOHANG) == c.pid) {
        c.exit_status = st;
        c.reaped = true;
        c.running = false;
      } else {
        any_running = true;
      }
    }
    if (!any_running || std::chrono::steady_clock::now() >= stop_deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  bool clean_exits = true;
  for (ProcessId p = 0; p < opts.n; ++p) {
    Child& c = children[static_cast<std::size_t>(p)];
    if (c.running) {
      ::kill(c.pid, SIGKILL);
      int st = 0;
      ::waitpid(c.pid, &st, 0);
      c.exit_status = st;
      c.reaped = true;
      c.running = false;
      clean_exits = false;
    } else if (!c.killed_by_us && c.reaped &&
               !(WIFEXITED(c.exit_status) &&
                 WEXITSTATUS(c.exit_status) == 0)) {
      clean_exits = false;
    }
  }
  reactor.stop();

  // --- merge: the shards ARE the run ---------------------------------------
  struct MergedRecord {
    Time tick = 0;
    ProcessId p = kInvalidProcess;
    std::size_t idx = 0;
    Event e;
  };
  std::vector<MergedRecord> merged;
  std::set<ActionId> initiated;
  std::vector<std::vector<ActionId>> do_order(
      static_cast<std::size_t>(opts.n));
  for (ProcessId p = 0; p < opts.n; ++p) {
    ProcessStore shard(opts.run_dir, p, opts.node.store, {});
    std::size_t idx = 0;
    for (const StoreRecord& r : shard.recover()) {
      merged.push_back({r.t, p, idx++, r.e});
      if (r.e.kind == EventKind::kInit) initiated.insert(r.e.action);
      if (r.e.kind == EventKind::kDo) {
        do_order[static_cast<std::size_t>(p)].push_back(r.e.action);
      }
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const MergedRecord& a, const MergedRecord& b) {
                     if (a.tick != b.tick) return a.tick < b.tick;
                     if (a.p != b.p) return a.p < b.p;
                     return a.idx < b.idx;
                   });
  Run::Builder b(opts.n);
  for (const MergedRecord& r : merged) {
    b.append(r.p, r.e);
    b.end_step();
  }
  v.run = std::move(b).build();
  v.actions.assign(initiated.begin(), initiated.end());

  // Replica apply sequences: durable kDo order joined to the service logs.
  std::vector<std::vector<SvcBatch>> applied_per_node(
      static_cast<std::size_t>(opts.n));
  std::vector<std::vector<std::pair<std::uint64_t, ActionId>>> applied_slots(
      static_cast<std::size_t>(opts.n));
  bool join_ok = true;
  for (ProcessId p = 0; p < opts.n; ++p) {
    std::map<ActionId, SvcBatch> by_action;
    const std::string slog_path =
        opts.run_dir + "/svc-" + std::to_string(p) + ".log";
    for (const SvcBatch& sb : SvcDurableLog::read(slog_path)) {
      by_action[sb.action] = sb;
    }
    for (ActionId a : do_order[static_cast<std::size_t>(p)]) {
      auto it = by_action.find(a);
      if (it == by_action.end()) {
        join_ok = false;
        continue;
      }
      applied_per_node[static_cast<std::size_t>(p)].push_back(it->second);
      applied_slots[static_cast<std::size_t>(p)].push_back(
          {it->second.slot, a});
    }
  }

  // --- verdict --------------------------------------------------------------
  v.clean_exits = clean_exits;
  {
    std::lock_guard<std::mutex> lk(mu);
    for (const auto& [key, rc] : counters_by) v.counters.merge(rc);
  }
  fold_wire_counters(reactor.counters(), &v.counters);
  v.counters.crashes = crash_count;
  v.counters.restarts = restart_count;
  v.counters.events_recorded = merged.size();
  v.coord = check_nudc(*v.run, v.actions, /*grace=*/0);
  {
    std::lock_guard<std::mutex> lk(done_mu);
    v.sessions = check_sessions(applied_per_node, confirmed);
    v.latency = latency.quantiles();
    v.completions = confirmed.size();
    v.elapsed_s =
        std::chrono::duration<double>(last_completion - load_start).count();
  }
  if (!join_ok) {
    v.sessions.agreement = false;
    v.sessions.violations.push_back(
        "durable kDo with no service-log record (shard/slog drift)");
  }
  v.log_agreement = check_log_agreement(applied_slots);
  if (v.elapsed_s > 0) {
    v.ops_per_sec = static_cast<double>(v.completions) / v.elapsed_s;
  }
  v.conformant = v.status == BudgetStatus::kComplete && v.coord.achieved() &&
                 v.sessions.achieved() && v.log_agreement.achieved() &&
                 clean_exits;
  return v;
}

}  // namespace udc
