#include "udc/svc/checker.h"

#include <array>
#include <map>
#include <sstream>
#include <utility>

#include "udc/svc/session.h"

namespace udc {

namespace {

constexpr int kRegisters = 64;

struct NodeState {
  std::map<std::uint64_t, std::uint64_t> last;  // session -> last applied seq
  std::map<std::pair<std::uint64_t, std::uint64_t>, SvcResult> results;
  std::array<std::pair<std::int64_t, std::uint64_t>, kRegisters> regs{};
};

}  // namespace

SvcSessionReport check_sessions(
    const std::vector<std::vector<SvcBatch>>& applied_per_node,
    const std::vector<SvcClientRecord>& confirmed) {
  SvcSessionReport rep;
  const std::size_t n = applied_per_node.size();
  std::vector<NodeState> st(n);
  // Write content by (session, seq): duplicates across retries and adopted
  // batches must agree byte-for-byte — a conflicting duplicate means two
  // different operations claimed one dedup slot.
  std::map<std::pair<std::uint64_t, std::uint64_t>, SvcOp> content;
  // (reg, version) -> value, from the reference replay: what each register
  // version actually held, for validating read results.
  std::map<std::pair<std::int32_t, std::uint64_t>, std::int64_t> written;

  for (std::size_t p = 0; p < n; ++p) {
    for (const SvcBatch& b : applied_per_node[p]) {
      for (const SvcOp& op : b.ops) {
        if (op.kind != SvcOpKind::kWrite) continue;  // reads never batch
        const auto key = std::make_pair(op.session, op.seq);
        auto [cit, fresh] = content.emplace(key, op);
        if (!fresh && (cit->second.reg != op.reg ||
                       cit->second.value != op.value)) {
          rep.exactly_once = false;
          std::ostringstream out;
          out << "exactly-once: session " << op.session << " seq " << op.seq
              << " carries conflicting content across duplicates";
          rep.violations.push_back(out.str());
        }
        if (op.reg < 0 || op.reg >= kRegisters) {
          rep.per_session_order = false;
          std::ostringstream out;
          out << "apply: p" << p << " batch slot " << b.slot
              << " op with register " << op.reg << " out of range";
          rep.violations.push_back(out.str());
          continue;
        }
        auto& last = st[p].last[op.session];
        if (op.seq <= last) {
          ++rep.suppressed_duplicates;
          continue;
        }
        if (op.seq != last + 1) {
          rep.per_session_order = false;
          std::ostringstream out;
          out << "order: p" << p << " session " << op.session
              << " jumped from seq " << last << " to " << op.seq
              << " (slot " << b.slot << ")";
          rep.violations.push_back(out.str());
        }
        last = op.seq;
        auto& reg = st[p].regs[static_cast<std::size_t>(op.reg)];
        reg.first = op.value;
        ++reg.second;
        st[p].results[key] = SvcResult{op.value, reg.second};
        ++rep.effective_applies;
        if (p == 0) written[{op.reg, reg.second}] = op.value;
      }
    }
  }

  // Agreement: every replica converged to the same effective history and
  // the same final state.  (The supervisor quiesces the fleet before
  // checking, so lag is not an excuse here.)
  for (std::size_t p = 1; p < n; ++p) {
    if (st[p].results != st[0].results) {
      rep.agreement = false;
      std::ostringstream out;
      out << "agreement: p" << p << " effective applies ("
          << st[p].results.size() << ") differ from p0 ("
          << st[0].results.size() << ")";
      rep.violations.push_back(out.str());
    }
    if (st[p].regs != st[0].regs) {
      rep.agreement = false;
      std::ostringstream out;
      out << "agreement: p" << p << " final register state differs from p0";
      rep.violations.push_back(out.str());
    }
  }

  // Client-confirmed writes must be applied at EVERY replica with the
  // acknowledged result — acked-then-lost is the uniformity violation.
  for (const SvcClientRecord& c : confirmed) {
    if (c.kind != SvcOpKind::kWrite) continue;
    const auto key = std::make_pair(c.session, c.seq);
    for (std::size_t p = 0; p < n; ++p) {
      auto it = st[p].results.find(key);
      if (it == st[p].results.end()) {
        rep.client_confirmed = false;
        std::ostringstream out;
        out << "confirmed: session " << c.session << " seq " << c.seq
            << " acked to the client but never applied at p" << p;
        rep.violations.push_back(out.str());
        continue;
      }
      if (it->second.value != c.value || it->second.version != c.version) {
        rep.client_confirmed = false;
        std::ostringstream out;
        out << "confirmed: session " << c.session << " seq " << c.seq
            << " acked as (v=" << c.value << ", ver=" << c.version
            << ") but applied as (v=" << it->second.value
            << ", ver=" << it->second.version << ") at p" << p;
        rep.violations.push_back(out.str());
      }
    }
  }

  // Session causality over completions: versions a session observes for a
  // register never regress, and every read's (version, value) pair is one
  // some write actually produced (version 0 reads the initial zero).
  std::map<std::pair<std::uint64_t, std::int32_t>, std::uint64_t> seen;
  for (const SvcClientRecord& c : confirmed) {
    auto& floor = seen[{c.session, c.reg}];
    if (c.version < floor) {
      rep.read_monotone = false;
      std::ostringstream out;
      out << "monotone: session " << c.session << " observed register "
          << c.reg << " regress from version " << floor << " to "
          << c.version;
      rep.violations.push_back(out.str());
    }
    floor = std::max(floor, c.version);
    if (c.kind == SvcOpKind::kRead && c.version != 0) {
      auto it = written.find({c.reg, c.version});
      if (it == written.end() || it->second != c.value) {
        rep.read_monotone = false;
        std::ostringstream out;
        out << "read: session " << c.session << " observed register "
            << c.reg << " = (v=" << c.value << ", ver=" << c.version
            << "), which no write produced";
        rep.violations.push_back(out.str());
      }
    }
  }

  return rep;
}

}  // namespace udc
