// Durable per-replica service log: the promise behind every replication ack.
//
// A follower acks a proposed batch only after the batch is ON DISK here
// (write + fdatasync), so a quorum of acks is a quorum of disks — the same
// discipline as the model WAL, reused at the service layer because a
// SIGKILLed follower that acked from RAM would silently shrink the quorum
// a committed batch stands on.
//
// Framing is the store WAL's: [u32le len][u32le crc32c(len||payload)]
// [payload], built by wal_frame(); the payload is the batch encoding the
// propose envelope embeds (put_svc_batch), so the frame a follower accepted
// and the record it persisted can never drift apart.  Recovery reads the
// longest valid frame prefix — a torn tail from a kill mid-append costs
// exactly the unacked record being written.
//
// The log is append-only and re-appends are meaningful: a batch re-sealed
// under a higher term (failover adoption) or accepted at a new slot appends
// a fresh record, and recovery keeps the LAST record per action id — the
// highest-term acceptance, which is the only one the cluster can have
// committed (a committed slot is quorum-durable, so a successor's sync
// majority always intersects it and never re-seals that action elsewhere).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "udc/svc/wire.h"

namespace udc {

class SvcDurableLog {
 public:
  // Opens `path` for appending (created if missing).  Throws
  // InvariantViolation if the file cannot be opened.
  explicit SvcDurableLog(std::string path);
  ~SvcDurableLog();

  SvcDurableLog(const SvcDurableLog&) = delete;
  SvcDurableLog& operator=(const SvcDurableLog&) = delete;

  // Durably appends one accepted/sealed batch: the call returns only after
  // fdatasync, so a subsequent ack or propose is backed by the disk.
  void append(const SvcBatch& b);

  std::uint64_t appended() const { return appended_; }
  const std::string& path() const { return path_; }

  // Tolerant whole-log read: every batch in the longest valid frame
  // prefix, in append order (re-acceptances of one action appear multiple
  // times; the caller keeps the last).  A missing file reads as empty.
  static std::vector<SvcBatch> read(const std::string& path);

  // read() plus truncation to the valid prefix — what recovery must use
  // before re-opening for append: a torn tail left in place would hide
  // every frame appended after it from the next read.
  static std::vector<SvcBatch> recover(const std::string& path);

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t appended_ = 0;
};

}  // namespace udc
