#include "udc/net/wire.h"

#include <cstring>

#include "udc/common/check.h"
#include "udc/store/crc32.h"

namespace udc {

namespace {

// Varint/zigzag helpers, same encoding discipline as store/codec: every
// read fails cleanly at the buffer's end, so no strict prefix of a valid
// encoding ever decodes.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_zigzag(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

struct Cursor {
  const std::uint8_t* d;
  std::size_t len;
  std::size_t pos = 0;
  bool fail = false;

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (pos < len && shift < 64) {
      std::uint8_t b = d[pos++];
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
    fail = true;  // ran off the buffer or overlong encoding
    return 0;
  }
  std::int64_t zig() { return unzigzag(varint()); }
  std::int32_t zig32() {
    std::int64_t v = zig();
    if (v < INT32_MIN || v > INT32_MAX) fail = true;
    return static_cast<std::int32_t>(v);
  }
  std::uint8_t byte() {
    if (pos >= len) {
      fail = true;
      return 0;
    }
    return d[pos++];
  }
  bool done() const { return !fail && pos == len; }
};

void put_message(std::vector<std::uint8_t>& out, const Message& m) {
  out.push_back(static_cast<std::uint8_t>(m.kind));
  put_zigzag(out, m.action);
  put_varint(out, m.procs.bits());
  put_zigzag(out, m.a);
  put_zigzag(out, m.b);
}

std::optional<Message> get_message(Cursor& c) {
  Message m;
  std::uint8_t kind = c.byte();
  if (kind > static_cast<std::uint8_t>(MsgKind::kRejoin)) c.fail = true;
  m.kind = static_cast<MsgKind>(kind);
  m.action = c.zig();
  m.procs = ProcSet(c.varint());
  m.a = c.zig();
  m.b = c.zig();
  if (c.fail) return std::nullopt;
  return m;
}

std::uint32_t le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       const std::uint8_t* payload,
                                       std::size_t len) {
  UDC_CHECK(len <= kMaxWirePayload, "wire frame payload exceeds the cap");
  std::vector<std::uint8_t> out(kWireHeaderBytes + len);
  out[0] = kWireMagic0;
  out[1] = kWireMagic1;
  out[2] = kWireVersion;
  out[3] = static_cast<std::uint8_t>(type);
  store_le32(out.data() + 4, static_cast<std::uint32_t>(len));
  if (len > 0) std::memcpy(out.data() + kWireHeaderBytes, payload, len);
  // CRC over version, type, length AND payload: a flipped length or type
  // can never pass, and the payload needs no second checksum.
  std::uint32_t crc = crc32c(out.data() + 2, 6);
  crc = crc32c(payload, len, crc);
  store_le32(out.data() + 8, crc);
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t len) {
  compact();
  buf_.insert(buf_.end(), data, data + len);
}

void FrameDecoder::compact() {
  // Reclaim the consumed prefix once it dominates the buffer, so a
  // long-lived connection does not grow its reassembly buffer forever.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

void FrameDecoder::reset() {
  buf_.clear();
  pos_ = 0;
}

std::optional<WireFrame> FrameDecoder::next() {
  for (;;) {
    const std::size_t avail = buf_.size() - pos_;
    if (avail < kWireHeaderBytes) return std::nullopt;
    const std::uint8_t* h = buf_.data() + pos_;

    // Validate the fixed header fields BEFORE trusting the length: a
    // stream positioned mid-garbage must cost one byte at a time, never a
    // 4GB read-ahead.
    const bool header_ok =
        h[0] == kWireMagic0 && h[1] == kWireMagic1 && h[2] == kWireVersion &&
        h[3] >= 1 && h[3] <= kMaxFrameType && le32(h + 4) <= kMaxWirePayload;
    if (!header_ok) {
      // Explicit resynchronization: skip to the next candidate magic pair.
      ++counters_.resyncs;
      std::size_t skip = 1;
      while (pos_ + skip + 1 < buf_.size() &&
             !(buf_[pos_ + skip] == kWireMagic0 &&
               buf_[pos_ + skip + 1] == kWireMagic1)) {
        ++skip;
      }
      if (pos_ + skip + 1 >= buf_.size()) {
        // No magic pair in what's buffered; keep at most one byte (a
        // trailing kWireMagic0 may be the start of the next frame).
        std::size_t keep = avail >= 1 && buf_.back() == kWireMagic0 ? 1 : 0;
        counters_.junk_bytes += avail - keep;
        pos_ = buf_.size() - keep;
        compact();
        return std::nullopt;
      }
      counters_.junk_bytes += skip;
      pos_ += skip;
      continue;
    }

    const std::uint32_t len = le32(h + 4);
    if (avail < kWireHeaderBytes + len) return std::nullopt;  // need bytes

    std::uint32_t crc = crc32c(h + 2, 6);
    crc = crc32c(h + kWireHeaderBytes, len, crc);
    if (crc != le32(h + 8)) {
      // A corrupt frame body.  Resync from the byte after the magic pair —
      // the frame boundary itself is untrusted.
      ++counters_.crc_drops;
      ++counters_.resyncs;
      ++counters_.junk_bytes;
      pos_ += 1;
      continue;
    }

    WireFrame f;
    f.type = static_cast<FrameType>(h[3]);
    f.payload.assign(h + kWireHeaderBytes, h + kWireHeaderBytes + len);
    pos_ += kWireHeaderBytes + len;
    ++counters_.frames;
    compact();
    return f;
  }
}

// --------------------------- payload envelopes -----------------------------

std::vector<std::uint8_t> encode_hello(const WireHello& h) {
  std::vector<std::uint8_t> out;
  put_zigzag(out, h.id);
  put_zigzag(out, h.n);
  put_varint(out, h.epoch);
  put_varint(out, h.run_id);
  put_varint(out, h.data_port);
  return out;
}

std::optional<WireHello> decode_hello(const std::uint8_t* d,
                                      std::size_t len) {
  Cursor c{d, len};
  WireHello h;
  h.id = c.zig32();
  h.n = c.zig32();
  h.epoch = c.varint();
  h.run_id = c.varint();
  std::uint64_t port = c.varint();
  if (port > 0xFFFF) c.fail = true;
  h.data_port = static_cast<std::uint16_t>(port);
  if (!c.done()) return std::nullopt;
  return h;
}

std::vector<std::uint8_t> encode_data(const WireData& d) {
  std::vector<std::uint8_t> out;
  put_zigzag(out, d.from);
  put_zigzag(out, d.to);
  put_varint(out, d.seq);
  put_zigzag(out, d.send_tick);
  put_zigzag(out, d.clock);
  put_message(out, d.msg);
  put_varint(out, d.acks.size());
  for (std::uint64_t a : d.acks) put_varint(out, a);
  return out;
}

std::optional<WireData> decode_data(const std::uint8_t* d, std::size_t len) {
  Cursor c{d, len};
  WireData w;
  w.from = c.zig32();
  w.to = c.zig32();
  w.seq = c.varint();
  w.send_tick = c.zig();
  w.clock = c.zig();
  auto m = get_message(c);
  if (!m) return std::nullopt;
  w.msg = *m;
  std::uint64_t k = c.varint();
  if (c.fail || k > len) return std::nullopt;  // k bounded by input size
  w.acks.reserve(static_cast<std::size_t>(k));
  for (std::uint64_t i = 0; i < k; ++i) w.acks.push_back(c.varint());
  if (!c.done()) return std::nullopt;
  return w;
}

std::vector<std::uint8_t> encode_ack(const WireAck& a) {
  std::vector<std::uint8_t> out;
  put_zigzag(out, a.from);
  put_zigzag(out, a.to);
  put_varint(out, a.seqs.size());
  for (std::uint64_t s : a.seqs) put_varint(out, s);
  return out;
}

std::optional<WireAck> decode_ack(const std::uint8_t* d, std::size_t len) {
  Cursor c{d, len};
  WireAck a;
  a.from = c.zig32();
  a.to = c.zig32();
  std::uint64_t k = c.varint();
  if (c.fail || k > len) return std::nullopt;
  a.seqs.reserve(static_cast<std::size_t>(k));
  for (std::uint64_t i = 0; i < k; ++i) a.seqs.push_back(c.varint());
  if (!c.done()) return std::nullopt;
  return a;
}

std::vector<std::uint8_t> encode_status(const WireStatus& s) {
  std::vector<std::uint8_t> out;
  put_zigzag(out, s.id);
  put_varint(out, s.epoch);
  put_zigzag(out, s.clock);
  put_varint(out, s.durable_events);
  put_varint(out, s.inits.size());
  for (ActionId a : s.inits) put_zigzag(out, a);
  put_varint(out, s.performs.size());
  for (ActionId a : s.performs) put_zigzag(out, a);
  put_varint(out, s.counters.size());
  for (std::uint64_t v : s.counters) put_varint(out, v);
  out.push_back(s.done ? 1 : 0);
  return out;
}

std::optional<WireStatus> decode_status(const std::uint8_t* d,
                                        std::size_t len) {
  Cursor c{d, len};
  WireStatus s;
  s.id = c.zig32();
  s.epoch = c.varint();
  s.clock = c.zig();
  s.durable_events = c.varint();
  std::uint64_t ni = c.varint();
  if (c.fail || ni > len) return std::nullopt;
  s.inits.reserve(static_cast<std::size_t>(ni));
  for (std::uint64_t i = 0; i < ni; ++i) s.inits.push_back(c.zig());
  std::uint64_t np = c.varint();
  if (c.fail || np > len) return std::nullopt;
  s.performs.reserve(static_cast<std::size_t>(np));
  for (std::uint64_t i = 0; i < np; ++i) s.performs.push_back(c.zig());
  std::uint64_t nc = c.varint();
  if (c.fail || nc > len) return std::nullopt;
  s.counters.reserve(static_cast<std::size_t>(nc));
  for (std::uint64_t i = 0; i < nc; ++i) s.counters.push_back(c.varint());
  std::uint8_t done = c.byte();
  if (done > 1) c.fail = true;
  s.done = done == 1;
  if (!c.done()) return std::nullopt;
  return s;
}

std::vector<std::uint8_t> encode_init(const WireInit& i) {
  std::vector<std::uint8_t> out;
  put_zigzag(out, i.action);
  return out;
}

std::optional<WireInit> decode_init(const std::uint8_t* d, std::size_t len) {
  Cursor c{d, len};
  WireInit i;
  i.action = c.zig();
  if (!c.done()) return std::nullopt;
  return i;
}

std::vector<std::uint8_t> encode_peers(const WirePeers& p) {
  std::vector<std::uint8_t> out;
  put_varint(out, p.ports.size());
  for (const auto& [id, port] : p.ports) {
    put_zigzag(out, id);
    put_varint(out, port);
  }
  return out;
}

std::optional<WirePeers> decode_peers(const std::uint8_t* d,
                                      std::size_t len) {
  Cursor c{d, len};
  WirePeers p;
  std::uint64_t k = c.varint();
  if (c.fail || k > len) return std::nullopt;
  p.ports.reserve(static_cast<std::size_t>(k));
  for (std::uint64_t i = 0; i < k; ++i) {
    ProcessId id = c.zig32();
    std::uint64_t port = c.varint();
    if (port > 0xFFFF) c.fail = true;
    p.ports.emplace_back(id, static_cast<std::uint16_t>(port));
  }
  if (!c.done()) return std::nullopt;
  return p;
}

}  // namespace udc
