// Nonblocking epoll reactor with per-peer connection state machines.
//
// One Reactor per OS process owns every socket that process speaks through:
// a listening socket for inbound peers, one outbound dial per peer this
// side is responsible for, and the frame codec on each established stream.
// Per-peer lifecycle:
//
//   kConnecting --connect() done--> kHandshaking --hello/ack--> kEstablished
//        ^                                                          |
//        +---- jittered-backoff redial <---- close/error/refuse ----+
//
// The handshake carries (process id, epoch, run id, fleet size): a peer
// from another run, a stale binary with the wrong n, or a partitioned-away
// peer is REJECTED and counted, never half-adopted.  The epoch is the
// incarnation number — a node relaunched after SIGKILL dials back in with
// epoch+1, and the upper layer (rt/remote) treats the new epoch as the
// reconnect-as-rejoin signal: dedup state resets, pending sends re-teach.
//
// Dial responsibility is endpoint-driven: this side dials exactly the peers
// it was given an endpoint for (set_endpoint), so the fleet picks one
// dialer per pair (lower id accepts, higher id dials; everyone dials the
// supervisor) and duplicate connections cannot arise by construction —
// if one shows up anyway (a stale half-open socket plus a fresh dial), the
// newest established stream wins and the old one is closed.
//
// Keepalive: an established stream silent for `keepalive` gets a kPing,
// another after each further `keepalive` of silence; once `keepalive_misses`
// consecutive probes go unanswered the stream is declared dead and torn
// down (with `dead_after` kept as a hard backstop, which also times out
// stuck handshakes) — that is how a half-open TCP connection (peer
// SIGKILLed, no FIN ever sent) is detected and converted into peer-down +
// redial, well before a redial would have noticed.
//
// Chaos enters here, between the reactor and the codec: an installed shim
// is consulted before any kData frame is written to a socket, so scripted
// silences, bursts and directional partitions become REAL socket-level
// drops; refuse windows (set_refuse) tear the connection down and bounce
// the peer's handshake while open — a partition is a dead wire, not a
// polite flag.
//
// Threading: all socket I/O and all callbacks run on the reactor's own
// thread.  Public methods are thread-safe commands handed over via an
// eventfd-woken queue; callbacks must not call back into the reactor
// synchronously except via those same thread-safe methods.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "udc/common/rng.h"
#include "udc/common/types.h"
#include "udc/net/backoff.h"
#include "udc/net/wire.h"

namespace udc {

struct ReactorOptions {
  ProcessId self = kInvalidProcess;  // our id in handshakes
  std::int32_t n = 0;                // fleet size (0 = accept any)
  std::uint64_t epoch = 0;
  std::uint64_t run_id = 0;
  std::uint16_t advertised_port = 0;  // our data port, sent in hellos
  std::uint64_t seed = 1;             // reconnect jitter stream
  // Reconnect schedule, in milliseconds.
  BackoffOptions reconnect{/*base=*/20, /*growth=*/1.7, /*cap=*/500,
                           /*jitter=*/0.4};
  std::chrono::milliseconds keepalive{150};   // ping after this much silence
  int keepalive_misses = 4;                   // unanswered pings => peer down
                                              // (0 disables miss detection)
  std::chrono::milliseconds dead_after{1500}; // hard-silence backstop
  std::size_t max_outbuf_bytes = 4u << 20;    // per-conn write backlog cap
  // Accept handshakes from service clients (ids >= kClientPeerBase) in
  // addition to fleet peers in [0, n) and the supervisor.
  bool accept_clients = false;
};

struct WireCounters {
  std::uint64_t dials = 0;             // connect() attempts
  std::uint64_t connects = 0;          // streams that reached kEstablished
  std::uint64_t reconnects = 0;        // established again after a loss
  std::uint64_t accepts = 0;           // inbound accept(2)s
  std::uint64_t handshake_rejects = 0; // hellos bounced (mismatch/refused)
  std::uint64_t frames_tx = 0;
  std::uint64_t frames_rx = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;
  std::uint64_t crc_drops = 0;         // codec-level drops (chaos corruption)
  std::uint64_t resyncs = 0;
  std::uint64_t keepalive_probes = 0;
  std::uint64_t dead_closes = 0;       // keepalive-silence teardowns
  std::uint64_t shim_drops = 0;        // kData frames eaten by the chaos shim
  std::uint64_t send_unroutable = 0;   // sends with no established stream
  std::uint64_t partitions_enforced = 0;  // refuse-window teardowns/bounces
};

class Reactor {
 public:
  // `on_frame` receives every decoded frame from an ESTABLISHED peer, with
  // the peer's id and epoch from its handshake.  `on_peer` fires on every
  // established/lost transition.  Both run on the reactor thread.
  using FrameFn = std::function<void(ProcessId peer, std::uint64_t epoch,
                                     const WireFrame& frame)>;
  // `data_port` is the port the peer advertised in its hello (its data
  // listen port; 0 for pure dialers) — how the supervisor learns where a
  // freshly (re)started node can be reached.
  using PeerFn = std::function<void(ProcessId peer, std::uint64_t epoch,
                                    bool up, std::uint16_t data_port)>;
  // Chaos shim: return false to drop this outbound kData frame at the wire.
  using ShimFn = std::function<bool(ProcessId peer, const WireFrame& frame)>;

  Reactor(ReactorOptions opts, FrameFn on_frame, PeerFn on_peer);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Binds 127.0.0.1:<port> (0 = ephemeral), starts listening, and returns
  // the actual port.  Must be called before start().  Throws
  // InvariantViolation if the port cannot be bound.
  std::uint16_t listen(std::uint16_t port);

  // Starts the reactor thread.  listen() is optional (a pure dialer, e.g.
  // a node talking only to the supervisor, never listens).
  void start();

  // Installs the chaos shim (called on the reactor thread).  Install
  // before start(); the shim must outlive the reactor.
  void set_shim(ShimFn shim) { shim_ = std::move(shim); }

  // We become the dialer for `peer` at 127.0.0.1:<port>.  Re-setting with a
  // new port closes any current stream and redials (the peer restarted on
  // a fresh ephemeral port).  Thread-safe.
  void set_endpoint(ProcessId peer, std::uint16_t port);

  // Opens/closes a partition-refusal window against `peer`: on open, the
  // current stream (if any) is torn down, inbound hellos from the peer are
  // rejected, and outbound dials are suppressed.  Thread-safe.
  void set_refuse(ProcessId peer, bool refuse);

  // Queues one frame to `peer`.  Returns false (and counts) if the peer has
  // no established stream or the write backlog is full — the caller's ARQ
  // treats that exactly like wire loss.  Thread-safe.
  bool send(ProcessId peer, FrameType type,
            std::vector<std::uint8_t> payload);

  bool peer_established(ProcessId peer) const;

  WireCounters counters() const;

  // Stops the reactor thread and closes every socket.
  void stop();

 private:
  enum class ConnState { kConnecting, kHandshaking, kEstablished };

  struct Conn {
    int fd = -1;
    std::uint32_t gen = 0;  // stamps epoll events; stale fd reuse is ignored
    ConnState state = ConnState::kConnecting;
    bool dialed = false;               // we initiated this stream
    ProcessId peer = kInvalidProcess;  // known immediately when dialed
    std::uint64_t peer_epoch = 0;
    std::uint16_t peer_data_port = 0;  // from the peer's hello
    FrameDecoder decoder;
    std::uint64_t crc_seen = 0;     // decoder counter snapshots, for
    std::uint64_t resync_seen = 0;  // delta-folding into WireCounters
    std::vector<std::uint8_t> outbuf;
    std::size_t out_pos = 0;
    std::chrono::steady_clock::time_point last_rx;
    int pings_unanswered = 0;  // consecutive probes with no bytes back
  };

  struct Peer {
    std::uint16_t port = 0;  // nonzero: we dial this peer
    int fd = -1;             // established stream, if any
    bool refused = false;
    bool was_established = false;  // a later establish is a reconnect
    int attempt = 0;
    std::chrono::steady_clock::time_point next_dial;
  };

  struct Command {
    enum class Kind { kSend, kEndpoint, kRefuse, kStop } kind = Kind::kStop;
    ProcessId peer = kInvalidProcess;
    FrameType type = FrameType::kPing;
    std::vector<std::uint8_t> payload;
    std::uint16_t port = 0;
    bool refuse = false;
  };

  void loop();
  void run_commands();
  void do_send(ProcessId peer, FrameType type,
               const std::vector<std::uint8_t>& payload);
  void dial(ProcessId peer);
  void accept_ready();
  void conn_readable(int fd);
  void conn_writable(int fd);
  void handle_frame(int fd, const WireFrame& f);
  void establish(int fd, ProcessId peer, std::uint64_t epoch,
                 std::uint16_t data_port);
  void close_conn(int fd, bool notify);
  void queue_frame(Conn& c, FrameType type, const std::uint8_t* payload,
                   std::size_t len);
  void flush_conn(int fd);
  void timers(std::chrono::steady_clock::time_point now);
  void arm(int fd, bool want_write);

  ReactorOptions opts_;
  FrameFn on_frame_;
  PeerFn on_peer_;
  ShimFn shim_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;
  Rng rng_;

  std::map<int, Conn> conns_;
  std::map<ProcessId, Peer> peers_;
  std::uint32_t conn_gen_ = 0;  // next connection generation stamp

  mutable std::mutex cmd_mu_;
  std::deque<Command> commands_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::thread thread_;

  // Established-peer map mirrored for the thread-safe peer_established();
  // counters likewise accumulate under cmd_mu_-independent lock.
  mutable std::mutex state_mu_;
  std::map<ProcessId, bool> established_;
  WireCounters counters_;
};

}  // namespace udc
