// POSIX I/O helpers for the wire layer: full-length reads and writes that
// loop on EINTR and short counts, with peer-death surfaced as a value.
//
// Sockets fail in two morally different ways.  EPIPE, ECONNRESET and a
// zero-byte read mean the PEER is gone — in a failure-detector runtime that
// is an ordinary, expected event (it is the event the whole system exists
// to observe), so it must come back as a status the caller dispatches on,
// never as an exception or a crash.  Everything else (EBADF, EFAULT, ...)
// is a local programming or configuration error and is reported as kError
// with errno preserved.  EINTR is not an outcome at all: every helper
// restarts the syscall, because a signal landing mid-read is a scheduling
// accident, not information.
//
// Writes go through send(MSG_NOSIGNAL) when the descriptor is a socket so a
// dead peer yields EPIPE-as-value instead of SIGPIPE-as-process-death; on
// ENOTSOCK they fall back to write(2), so the same helpers serve pipes and
// regular files in tests.
#pragma once

#include <sys/uio.h>

#include <cstddef>
#include <cstdint>

namespace udc {

enum class IoStatus {
  kOk,         // the full count was transferred
  kPeerDown,   // EOF on read, or EPIPE/ECONNRESET on write: peer is gone
  kWouldBlock, // nonblocking descriptor has no room/data right now
  kError,      // local error; io_errno() holds the errno
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;  // bytes actually transferred (may be short on
                          // kPeerDown/kWouldBlock/kError)
  int error = 0;          // errno for kError (0 otherwise)

  bool ok() const { return status == IoStatus::kOk; }
};

const char* io_status_name(IoStatus s);

// Reads exactly `len` bytes unless the peer closes first.  Loops on EINTR
// and short reads.  On a BLOCKING descriptor kWouldBlock is never returned;
// on a nonblocking one it reports how far it got before EAGAIN.
IoResult full_read(int fd, void* buf, std::size_t len);

// Writes exactly `len` bytes.  Loops on EINTR and short writes; a dead peer
// (EPIPE/ECONNRESET) is kPeerDown with the partial count, not a signal.
IoResult full_write(int fd, const void* buf, std::size_t len);

// Gathered write of the full iovec array, restarting after EINTR and short
// counts (the iovec array is copied locally and advanced; the caller's
// array is never mutated).
IoResult full_writev(int fd, const struct iovec* iov, int iovcnt);

// One read(2)/recv(2), EINTR-restarted only — the reactor's edge-pump
// primitive.  bytes == 0 with kOk never happens: a zero-byte read is
// kPeerDown.
IoResult read_some(int fd, void* buf, std::size_t len);

// One send/write, EINTR-restarted only.
IoResult write_some(int fd, const void* buf, std::size_t len);

// fcntl helpers; return false (with errno intact) on failure.
bool set_nonblocking(int fd);
bool set_cloexec(int fd);

}  // namespace udc
