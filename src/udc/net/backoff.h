// Jittered exponential backoff schedules for retry/backoff channels.
//
// The live transport (rt/transport.h) realizes fair-lossy channels
// operationally: a send that is lost (or unacked) is retried until it lands.
// Naive fixed-interval retries synchronize — every sender that lost a message
// in the same partition window retries in lockstep, and the recovered link is
// hit by a thundering herd exactly when it heals.  The standard cure is
// exponential backoff with jitter: attempt k waits base * growth^k, capped,
// then scaled by a random factor in [1 - jitter, 1 + jitter] so retry clocks
// decorrelate.  The schedule is a pure function of (options, attempt, rng
// stream), so tests pin it deterministically.
#pragma once

#include <algorithm>
#include <cstdint>

#include "udc/common/check.h"
#include "udc/common/rng.h"

namespace udc {

struct BackoffOptions {
  // First retry delay, in the caller's time unit (the live transport uses
  // microseconds; tests use abstract ticks).
  std::int64_t base = 500;
  // Multiplier per attempt; must be >= 1.
  double growth = 2.0;
  // Upper bound on the un-jittered delay (0 = uncapped).
  std::int64_t cap = 64'000;
  // Jitter fraction in [0, 1): the delay is scaled by a uniform factor in
  // [1 - jitter, 1 + jitter].  0 disables jitter.
  double jitter = 0.25;
};

// Un-jittered delay before retry `attempt` (attempt 0 = first retry).
inline std::int64_t backoff_delay(const BackoffOptions& opts, int attempt) {
  UDC_CHECK(attempt >= 0, "backoff attempt must be >= 0");
  UDC_CHECK(opts.base >= 1 && opts.growth >= 1.0,
            "backoff needs base >= 1 and growth >= 1");
  double d = static_cast<double>(opts.base);
  for (int i = 0; i < attempt; ++i) {
    d *= opts.growth;
    if (opts.cap > 0 && d >= static_cast<double>(opts.cap)) {
      return opts.cap;
    }
  }
  std::int64_t v = static_cast<std::int64_t>(d);
  if (opts.cap > 0) v = std::min(v, opts.cap);
  return std::max<std::int64_t>(v, 1);
}

// Jittered delay: backoff_delay scaled by a factor drawn from `rng`.  The
// result stays within [1, cap] — the cap is re-applied AFTER jitter, so a
// configured ceiling is a real ceiling; upward jitter saturates at it
// rather than overshooting by up to (1 + jitter).
inline std::int64_t backoff_delay_jittered(const BackoffOptions& opts,
                                           int attempt, Rng& rng) {
  UDC_CHECK(opts.jitter >= 0.0 && opts.jitter < 1.0,
            "backoff jitter must be in [0, 1)");
  std::int64_t d = backoff_delay(opts, attempt);
  if (opts.jitter == 0.0) return d;
  double factor = 1.0 + opts.jitter * (2.0 * rng.next_double() - 1.0);
  std::int64_t v = static_cast<std::int64_t>(static_cast<double>(d) * factor);
  if (opts.cap > 0) v = std::min(v, opts.cap);
  return std::max<std::int64_t>(v, 1);
}

}  // namespace udc
