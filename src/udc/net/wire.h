// Length-prefixed, CRC-guarded frame codec for the cross-process runtime.
//
// The in-process runtime hands Message values between threads; once each
// worker is its own OS process, every envelope crosses a byte stream that
// can be cut mid-frame, bit-flipped by a chaos shim, or rejoined mid-noise
// after a reconnect.  The wire format therefore carries its own skeleton:
//
//   [u8 magic0][u8 magic1][u8 version][u8 type]
//   [u32le payload_len][u32le crc32c]  -- crc over version..len + payload
//   [payload_len bytes of payload]
//
// Twelve header bytes.  The CRC covers the length field, so a corrupted
// length cannot silently re-frame the rest of the stream (same rule as the
// store WAL), and it covers version and type, so a flipped type byte cannot
// redirect a payload into the wrong decoder.
//
// The decoder is TOTAL and RESYNCHRONIZING: arbitrary garbage yields frame
// drops, never an exception, never a read past the buffer, and after a bad
// frame the decoder explicitly scans forward for the next magic pair —
// resyncs and CRC drops are counted so the chaos soaks can report how much
// of the stream the adversary cost.  A TCP stream normally never corrupts
// (the kernel already checksums), but the chaos shim injects corruption
// above the socket, and a codec that trusts its input is one bad length
// away from allocating 4GB.
//
// Payload codecs for the runtime's envelopes live here too (varint/zigzag,
// same idiom as store/codec): the data envelope keeps the SEND-TICK rider,
// so the lifted cross-process run still asserts R3 operationally, exactly
// as the in-process transport does.  Every decode_* is total: nullopt on
// truncation, trailing bytes, or out-of-range tags.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "udc/common/types.h"
#include "udc/event/message.h"

namespace udc {

inline constexpr std::uint8_t kWireMagic0 = 0xD5;
inline constexpr std::uint8_t kWireMagic1 = 0xCF;
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderBytes = 12;
// Bound on one payload.  The runtime's envelopes are tens of bytes; the cap
// exists so a corrupted-but-CRC-unchecked length can never drive a huge
// allocation (the decoder rejects the header before trusting the length).
inline constexpr std::size_t kMaxWirePayload = 1u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,     // handshake: who am I, which epoch, which run
  kHelloAck = 2,  // handshake accepted
  kPing = 3,      // keepalive probe
  kPong = 4,      // keepalive reply
  kData = 5,      // protocol/heartbeat/rejoin Message envelope + acks
  kAck = 6,       // pure ack batch (no data to piggyback on)
  kStatus = 7,    // node -> supervisor durable-state report
  kInit = 8,      // supervisor -> node: initiate an action
  kStop = 9,      // supervisor -> node: flush, final status, exit
  kPeers = 10,    // supervisor -> node: data-port directory
  kBye = 11,      // orderly close
  // Replicated coordination service (svc/): payload codecs in svc/wire.h.
  kSvcRequest = 12,   // client -> leader: one session op
  kSvcReply = 13,     // leader -> client: result / redirect / backpressure
  kSvcPropose = 14,   // leader -> follower: sealed batch for a slot
  kSvcAck = 15,       // follower -> leader: durable accept (or term nack)
  kSvcCommit = 16,    // leader -> all: commit floor + out-of-order slots
  kSvcHb = 17,        // svc heartbeat: term, leader, commit floor
  kSvcSyncReq = 18,   // failover/catch-up: send entries above my floor
  kSvcSyncResp = 19,  // entries above the requested floor (chunked)
  kSvcStatus = 20,    // svc node -> supervisor: compact status report
};
inline constexpr std::uint8_t kMaxFrameType = 20;

struct WireFrame {
  FrameType type = FrameType::kPing;
  std::vector<std::uint8_t> payload;
};

// Builds one encoded frame (header + payload).  Throws InvariantViolation
// if payload exceeds kMaxWirePayload — oversize is a caller bug, not input.
std::vector<std::uint8_t> encode_frame(FrameType type,
                                       const std::uint8_t* payload,
                                       std::size_t len);
inline std::vector<std::uint8_t> encode_frame(
    FrameType type, const std::vector<std::uint8_t>& payload) {
  return encode_frame(type, payload.data(), payload.size());
}

struct WireDecodeCounters {
  std::uint64_t frames = 0;      // frames decoded clean
  std::uint64_t crc_drops = 0;   // header accepted, checksum failed
  std::uint64_t resyncs = 0;     // explicit scans for the next magic pair
  std::uint64_t junk_bytes = 0;  // bytes skipped while resynchronizing
};

// Streaming frame decoder over a reassembly buffer.  feed() appends raw
// bytes; next() pops the next complete frame or nullopt when more bytes are
// needed.  Malformed input (bad magic, bad version, out-of-range type,
// oversize length, CRC mismatch) advances ONE byte and rescans for the
// magic pair — resynchronization is explicit and counted, and the decoder
// never reads past what was fed.
class FrameDecoder {
 public:
  void feed(const std::uint8_t* data, std::size_t len);
  std::optional<WireFrame> next();

  const WireDecodeCounters& counters() const { return counters_; }
  std::size_t buffered() const { return buf_.size() - pos_; }
  // Drops all buffered bytes (connection reset: a new stream starts clean).
  void reset();

 private:
  void compact();

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  WireDecodeCounters counters_;
};

// ---------------------------------------------------------------------------
// Payload envelopes.  All integers are varints (zigzag for signed); decode
// is total and rejects trailing bytes.
// ---------------------------------------------------------------------------

// Peer id used by the supervisor's control endpoint in handshakes; data
// peers use their ProcessId in [0, n).
inline constexpr ProcessId kSupervisorPeer = 1000;
// Service clients handshake with ids at or above this base (one id per
// client instance).  Nodes accept them only when ReactorOptions.accept_clients
// is set; clients are never part of the fleet's [0, n) id space.
inline constexpr ProcessId kClientPeerBase = 2000;

struct WireHello {
  ProcessId id = kInvalidProcess;  // sender's process id (or kSupervisorPeer)
  std::int32_t n = 0;              // fleet size, validated against ours
  std::uint64_t epoch = 0;         // incarnation: bumped on every relaunch
  std::uint64_t run_id = 0;        // one fleet = one run id; rejects strays
  std::uint16_t data_port = 0;     // the sender's data listen port (nodes)

  friend bool operator==(const WireHello&, const WireHello&) = default;
};

// The Message envelope, with everything the in-process transport carried in
// shared memory: the recorded send tick (R3's rider), the sender's Lamport
// clock at transmission (receivers fold it in so logical time stays
// coupled across silence), a per-ordered-channel wire sequence for ARQ
// dedup, and piggybacked acks for the reverse direction.
struct WireData {
  ProcessId from = kInvalidProcess;
  ProcessId to = kInvalidProcess;
  std::uint64_t seq = 0;        // 0 = below-model fire-and-forget (no ack)
  Time send_tick = 0;           // tick of the recorded kSend (0 below-model)
  Time clock = 0;               // sender's logical clock at transmission
  Message msg;
  std::vector<std::uint64_t> acks;  // seqs of `to`->`from` data being acked

  friend bool operator==(const WireData&, const WireData&) = default;
};

struct WireAck {
  ProcessId from = kInvalidProcess;
  ProcessId to = kInvalidProcess;
  std::vector<std::uint64_t> seqs;

  friend bool operator==(const WireAck&, const WireAck&) = default;
};

// Durable-state report: everything the supervisor's board and completion
// detector need, derived from the node's durable prefix only (what the disk
// is guaranteed to remember is the only state worth coordinating on — a
// report ahead of the WAL would un-happen in a kill).
struct WireStatus {
  ProcessId id = kInvalidProcess;
  std::uint64_t epoch = 0;
  Time clock = 0;                   // node's logical clock
  std::uint64_t durable_events = 0; // records covered by snapshot + barriers
  std::vector<ActionId> inits;      // durably recorded kInit actions
  std::vector<ActionId> performs;   // durably recorded kDo actions
  std::vector<std::uint64_t> counters;  // rt-defined slot order (node.h)
  bool done = false;                // final report before a clean exit

  friend bool operator==(const WireStatus&, const WireStatus&) = default;
};

struct WireInit {
  ActionId action = kInvalidAction;

  friend bool operator==(const WireInit&, const WireInit&) = default;
};

struct WirePeers {
  std::vector<std::pair<ProcessId, std::uint16_t>> ports;

  friend bool operator==(const WirePeers&, const WirePeers&) = default;
};

std::vector<std::uint8_t> encode_hello(const WireHello& h);
std::optional<WireHello> decode_hello(const std::uint8_t* d, std::size_t len);

std::vector<std::uint8_t> encode_data(const WireData& d);
std::optional<WireData> decode_data(const std::uint8_t* d, std::size_t len);

std::vector<std::uint8_t> encode_ack(const WireAck& a);
std::optional<WireAck> decode_ack(const std::uint8_t* d, std::size_t len);

std::vector<std::uint8_t> encode_status(const WireStatus& s);
std::optional<WireStatus> decode_status(const std::uint8_t* d,
                                        std::size_t len);

std::vector<std::uint8_t> encode_init(const WireInit& i);
std::optional<WireInit> decode_init(const std::uint8_t* d, std::size_t len);

std::vector<std::uint8_t> encode_peers(const WirePeers& p);
std::optional<WirePeers> decode_peers(const std::uint8_t* d, std::size_t len);

}  // namespace udc
