// Simulated point-to-point network.
//
// The paper's channel model (§2.1): completely connected, no corruption, no
// spontaneous messages (R3), unbounded delay, possibly lossy, but *fair*
// (R5).  We realize this as:
//
//   - reliable channel  = drop probability 0
//   - fair lossy channel = i.i.d. Bernoulli(drop_prob) loss per send; since
//     protocols retransmit, a message sent repeatedly is delivered with
//     probability 1 - drop_prob^k, which realizes R5 statistically on any
//     horizon long enough for the retransmission count
//   - unbounded delay   = per-message uniform delay in [1, max_delay],
//     which also yields reordering
//
// For the necessity probes (the daggered cells of Table 1) a DropPolicy can
// instead be adversarial — e.g. silence a set of channels after a cut time —
// which deliberately violates fairness to exhibit spec-violation witnesses.
#pragma once

#include <deque>
#include <map>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "udc/common/rng.h"
#include "udc/common/types.h"
#include "udc/event/message.h"

namespace udc {

// Decides the fate of each send.  Implementations must be deterministic
// given the Rng stream.
class DropPolicy {
 public:
  virtual ~DropPolicy() = default;
  virtual bool drop(ProcessId from, ProcessId to, const Message& msg, Time now,
                    Rng& rng) = 0;
  // A fresh instance with the same configuration but pristine internal
  // state.  ChannelConfig::make_policy clones per simulation, so a stateful
  // policy (Gilbert-Elliott chains, scripted faults) cannot bleed state
  // across the runs of a seed sweep.
  virtual std::shared_ptr<DropPolicy> clone() const = 0;
};

class IidDropPolicy final : public DropPolicy {
 public:
  explicit IidDropPolicy(double drop_prob) : drop_prob_(drop_prob) {}
  bool drop(ProcessId, ProcessId, const Message&, Time, Rng& rng) override {
    return drop_prob_ > 0 && rng.chance(drop_prob_);
  }
  std::shared_ptr<DropPolicy> clone() const override {
    return std::make_shared<IidDropPolicy>(drop_prob_);
  }

 private:
  double drop_prob_;
};

// Heterogeneous links: an explicit per-ordered-channel loss matrix, for
// experiments where one flaky link must not be smeared into a global rate
// (e.g. "only the p0->p2 path is bad").  Unset entries use default_drop.
class PerLinkDropPolicy final : public DropPolicy {
 public:
  explicit PerLinkDropPolicy(double default_drop)
      : default_drop_(default_drop) {}

  PerLinkDropPolicy& set(ProcessId from, ProcessId to, double drop) {
    rates_[key(from, to)] = drop;
    return *this;
  }

  bool drop(ProcessId from, ProcessId to, const Message&, Time,
            Rng& rng) override {
    auto it = rates_.find(key(from, to));
    double p = it == rates_.end() ? default_drop_ : it->second;
    return p > 0 && rng.chance(p);
  }
  std::shared_ptr<DropPolicy> clone() const override {
    return std::make_shared<PerLinkDropPolicy>(*this);
  }

 private:
  static std::uint32_t key(ProcessId from, ProcessId to) {
    return static_cast<std::uint32_t>(from) * kMaxProcesses +
           static_cast<std::uint32_t>(to);
  }
  double default_drop_;
  std::map<std::uint32_t, double> rates_;
};

// Gilbert-Elliott burst loss: each ordered channel is a two-state Markov
// chain (Good/Bad); messages sent while the channel is Bad are dropped.
// Models the correlated loss of real links (congestion episodes, route
// flaps) rather than i.i.d. coin flips — fairness R5 still holds as long
// as p_bad_to_good > 0, since Bad episodes are almost surely finite.  The
// state advances one step per send on that channel.
class GilbertElliottPolicy final : public DropPolicy {
 public:
  GilbertElliottPolicy(double p_good_to_bad, double p_bad_to_good)
      : p_gb_(p_good_to_bad), p_bg_(p_bad_to_good) {}

  bool drop(ProcessId from, ProcessId to, const Message&, Time,
            Rng& rng) override {
    auto key = static_cast<std::size_t>(from) * kMaxProcesses +
               static_cast<std::size_t>(to);
    if (bad_.size() <= key) bad_.resize(key + 1, false);
    bool was_bad = bad_[key];
    bad_[key] = was_bad ? !rng.chance(p_bg_) : rng.chance(p_gb_);
    return was_bad;
  }
  // Fresh Markov state: every ordered channel starts Good again.
  std::shared_ptr<DropPolicy> clone() const override {
    return std::make_shared<GilbertElliottPolicy>(p_gb_, p_bg_);
  }

 private:
  double p_gb_;
  double p_bg_;
  std::vector<bool> bad_;  // per ordered channel
};

// Drops everything sent on channels (from in `senders`, to in `recipients`)
// at or after `cut_time`.  Violates fairness by design; used for
// impossibility/necessity experiments.
class PartitionDropPolicy final : public DropPolicy {
 public:
  PartitionDropPolicy(ProcSet senders, ProcSet recipients, Time cut_time,
                      double background_drop)
      : senders_(senders),
        recipients_(recipients),
        cut_time_(cut_time),
        background_drop_(background_drop) {}

  bool drop(ProcessId from, ProcessId to, const Message&, Time now,
            Rng& rng) override {
    if (now >= cut_time_ && senders_.contains(from) &&
        recipients_.contains(to)) {
      return true;
    }
    return background_drop_ > 0 && rng.chance(background_drop_);
  }
  std::shared_ptr<DropPolicy> clone() const override {
    return std::make_shared<PartitionDropPolicy>(*this);
  }

 private:
  ProcSet senders_;
  ProcSet recipients_;
  Time cut_time_;
  double background_drop_;
};

struct Delivery {
  ProcessId from = kInvalidProcess;
  Message msg;
};

class Network {
 public:
  // max_delay >= 1.  One seed determines the whole run; internally every
  // ordered channel (from, to) gets its OWN PRNG stream derived from it, so
  // traffic on one channel never perturbs the drop/delay draws of another.
  // That isolation is what makes same-seed runs with different workloads
  // diverge only along actual information flow — the property the
  // knowledge/causality experiments (A3/A4 richness, chain==knowledge)
  // depend on.
  Network(int n, std::shared_ptr<DropPolicy> policy, int max_delay,
          std::uint64_t seed);

  // Sends msg from -> to at time `now`.  May drop (per policy); otherwise
  // schedules delivery at now + Uniform[1, max_delay].
  void send(ProcessId from, ProcessId to, const Message& msg, Time now);

  // Pops one message deliverable to `to` at time `now` (delivery time
  // reached), if any.  Among ripe messages the earliest-scheduled is
  // delivered first (FIFO per ripeness, not per channel — reordering is
  // intended).
  std::optional<Delivery> pop_deliverable(ProcessId to, Time now);

  std::size_t in_flight() const { return in_flight_count_; }
  std::size_t total_sent() const { return total_sent_; }
  std::size_t total_dropped() const { return total_dropped_; }

 private:
  struct Pending {
    Time deliver_at;
    ProcessId from;
    Message msg;
  };

  Rng& channel_rng(ProcessId from, ProcessId to) {
    return channel_rngs_[static_cast<std::size_t>(from) *
                             static_cast<std::size_t>(n_) +
                         static_cast<std::size_t>(to)];
  }

  int n_;
  std::shared_ptr<DropPolicy> policy_;
  int max_delay_;
  std::vector<Rng> channel_rngs_;           // per ordered channel
  std::vector<std::deque<Pending>> inbox_;  // per recipient, ordered by send
  std::size_t in_flight_count_ = 0;
  std::size_t total_sent_ = 0;
  std::size_t total_dropped_ = 0;
};

}  // namespace udc
