#include "udc/net/network.h"

#include <algorithm>

#include "udc/common/check.h"

namespace udc {

Network::Network(int n, std::shared_ptr<DropPolicy> policy, int max_delay,
                 std::uint64_t seed)
    : n_(n),
      policy_(std::move(policy)),
      max_delay_(max_delay),
      inbox_(static_cast<std::size_t>(n)) {
  channel_rngs_.reserve(static_cast<std::size_t>(n) * n);
  for (int from = 0; from < n; ++from) {
    for (int to = 0; to < n; ++to) {
      channel_rngs_.emplace_back(
          seed ^ (0x9e3779b97f4a7c15ull *
                  (static_cast<std::uint64_t>(from) * 64 + to + 1)));
    }
  }
  UDC_CHECK(max_delay_ >= 1, "max_delay must be at least 1");
  UDC_CHECK(policy_ != nullptr, "drop policy required");
}

void Network::send(ProcessId from, ProcessId to, const Message& msg,
                   Time now) {
  UDC_CHECK(to >= 0 && to < n_ && from >= 0 && from < n_,
            "endpoint out of range");
  ++total_sent_;
  Rng& rng = channel_rng(from, to);
  if (policy_->drop(from, to, msg, now, rng)) {
    ++total_dropped_;
    return;
  }
  Time delay = 1 + static_cast<Time>(
                       rng.next_below(static_cast<std::uint64_t>(max_delay_)));
  inbox_[to].push_back(Pending{now + delay, from, msg});
  ++in_flight_count_;
}

std::optional<Delivery> Network::pop_deliverable(ProcessId to, Time now) {
  auto& box = inbox_[to];
  // Deques are ordered by send time; scan for the first ripe message.  Boxes
  // stay small (protocols pace themselves on acknowledgments) so the linear
  // scan is fine.
  for (auto it = box.begin(); it != box.end(); ++it) {
    if (it->deliver_at <= now) {
      Delivery d{it->from, it->msg};
      box.erase(it);
      --in_flight_count_;
      return d;
    }
  }
  return std::nullopt;
}

}  // namespace udc
