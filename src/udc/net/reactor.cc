#include "udc/net/reactor.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "udc/common/check.h"
#include "udc/net/io.h"

namespace udc {

namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Epoll events carry (generation << 32) | fd: if a conn closed earlier in
// an epoll_wait batch and a fresh accept reused its fd number, the stale
// queued events for the old stream carry the old generation and are
// ignored instead of tearing down the new connection.
std::uint64_t epoll_key(int fd, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) |
         static_cast<std::uint32_t>(fd);
}

}  // namespace

Reactor::Reactor(ReactorOptions opts, FrameFn on_frame, PeerFn on_peer)
    : opts_(opts),
      on_frame_(std::move(on_frame)),
      on_peer_(std::move(on_peer)),
      rng_(opts.seed ^ 0x9e3779b97f4a7c15ull) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  UDC_CHECK(epoll_fd_ >= 0, "epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  UDC_CHECK(wake_fd_ >= 0, "eventfd failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = epoll_key(wake_fd_, 0);
  UDC_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0,
            "epoll_ctl(wake) failed");
}

Reactor::~Reactor() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::uint16_t Reactor::listen(std::uint16_t port) {
  UDC_CHECK(!started_.load(), "listen() must precede start()");
  UDC_CHECK(listen_fd_ < 0, "reactor already listening");
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  UDC_CHECK(fd >= 0, "socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int e = errno;
    ::close(fd);
    throw InvariantViolation(std::string("bind(127.0.0.1:") +
                             std::to_string(port) +
                             ") failed: " + std::strerror(e));
  }
  UDC_CHECK(::listen(fd, 64) == 0, "listen() failed");
  socklen_t alen = sizeof(addr);
  UDC_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen) == 0,
            "getsockname() failed");
  listen_fd_ = fd;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = epoll_key(listen_fd_, 0);
  UDC_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0,
            "epoll_ctl(listen) failed");
  std::uint16_t bound = ntohs(addr.sin_port);
  if (opts_.advertised_port == 0) opts_.advertised_port = bound;
  return bound;
}

void Reactor::start() {
  UDC_CHECK(!started_.exchange(true), "reactor started twice");
  thread_ = std::thread([this] { loop(); });
}

void Reactor::set_endpoint(ProcessId peer, std::uint16_t port) {
  Command c;
  c.kind = Command::Kind::kEndpoint;
  c.peer = peer;
  c.port = port;
  {
    std::lock_guard<std::mutex> lk(cmd_mu_);
    commands_.push_back(std::move(c));
  }
  std::uint64_t one = 1;
  [[maybe_unused]] auto r = ::write(wake_fd_, &one, sizeof(one));
}

void Reactor::set_refuse(ProcessId peer, bool refuse) {
  Command c;
  c.kind = Command::Kind::kRefuse;
  c.peer = peer;
  c.refuse = refuse;
  {
    std::lock_guard<std::mutex> lk(cmd_mu_);
    commands_.push_back(std::move(c));
  }
  std::uint64_t one = 1;
  [[maybe_unused]] auto r = ::write(wake_fd_, &one, sizeof(one));
}

bool Reactor::send(ProcessId peer, FrameType type,
                   std::vector<std::uint8_t> payload) {
  bool routable;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    auto it = established_.find(peer);
    routable = it != established_.end() && it->second;
    if (!routable) ++counters_.send_unroutable;
  }
  Command c;
  c.kind = Command::Kind::kSend;
  c.peer = peer;
  c.type = type;
  c.payload = std::move(payload);
  {
    std::lock_guard<std::mutex> lk(cmd_mu_);
    commands_.push_back(std::move(c));
  }
  std::uint64_t one = 1;
  [[maybe_unused]] auto r = ::write(wake_fd_, &one, sizeof(one));
  return routable;
}

bool Reactor::peer_established(ProcessId peer) const {
  std::lock_guard<std::mutex> lk(state_mu_);
  auto it = established_.find(peer);
  return it != established_.end() && it->second;
}

WireCounters Reactor::counters() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return counters_;
}

void Reactor::stop() {
  if (!started_.load()) return;
  if (!stopping_.exchange(true)) {
    std::uint64_t one = 1;
    [[maybe_unused]] auto r = ::write(wake_fd_, &one, sizeof(one));
  }
  if (thread_.joinable()) thread_.join();
}

void Reactor::loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load()) {
    int k = ::epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout_ms=*/10);
    if (k < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself broke: nothing sane left to do
    }
    for (int i = 0; i < k; ++i) {
      const std::uint64_t key = events[i].data.u64;
      const int fd = static_cast<int>(key & 0xffffffffu);
      const auto gen = static_cast<std::uint32_t>(key >> 32);
      std::uint32_t ev = events[i].events;
      if (fd == wake_fd_) {
        std::uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      auto cit = conns_.find(fd);
      if (cit == conns_.end() || cit->second.gen != gen) {
        continue;  // stale event for a closed conn whose fd was reused
      }
      if (ev & (EPOLLHUP | EPOLLERR)) {
        close_conn(fd, /*notify=*/true);
        continue;
      }
      if (ev & EPOLLOUT) conn_writable(fd);
      cit = conns_.find(fd);
      if (cit != conns_.end() && cit->second.gen == gen &&
          (ev & EPOLLIN)) {
        conn_readable(fd);
      }
    }
    run_commands();
    timers(std::chrono::steady_clock::now());
  }
  // Shutdown: close every stream (peers learn via EOF or keepalive).
  while (!conns_.empty()) close_conn(conns_.begin()->first, /*notify=*/false);
}

void Reactor::run_commands() {
  std::deque<Command> batch;
  {
    std::lock_guard<std::mutex> lk(cmd_mu_);
    batch.swap(commands_);
  }
  auto now = std::chrono::steady_clock::now();
  for (auto& c : batch) {
    switch (c.kind) {
      case Command::Kind::kSend:
        do_send(c.peer, c.type, c.payload);
        break;
      case Command::Kind::kEndpoint: {
        Peer& p = peers_[c.peer];
        bool changed = p.port != c.port;
        p.port = c.port;
        if (changed && p.fd >= 0) close_conn(p.fd, /*notify=*/true);
        p.attempt = 0;
        p.next_dial = now;
        break;
      }
      case Command::Kind::kRefuse: {
        Peer& p = peers_[c.peer];
        if (p.refused == c.refuse) break;
        p.refused = c.refuse;
        if (c.refuse) {
          {
            std::lock_guard<std::mutex> lk(state_mu_);
            ++counters_.partitions_enforced;
          }
          if (p.fd >= 0) close_conn(p.fd, /*notify=*/true);
        } else {
          p.attempt = 0;
          p.next_dial = now;
        }
        break;
      }
      case Command::Kind::kStop:
        break;
    }
  }
}

void Reactor::do_send(ProcessId peer, FrameType type,
                      const std::vector<std::uint8_t>& payload) {
  auto pit = peers_.find(peer);
  if (pit == peers_.end() || pit->second.fd < 0) return;
  auto cit = conns_.find(pit->second.fd);
  if (cit == conns_.end() || cit->second.state != ConnState::kEstablished) {
    return;
  }
  if (type == FrameType::kData && shim_) {
    WireFrame probe;
    probe.type = type;
    probe.payload = payload;
    if (!shim_(peer, probe)) {
      std::lock_guard<std::mutex> lk(state_mu_);
      ++counters_.shim_drops;
      return;
    }
  }
  queue_frame(cit->second, type, payload.data(), payload.size());
  flush_conn(cit->first);
}

void Reactor::dial(ProcessId peer) {
  Peer& p = peers_[peer];
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    p.next_dial = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(
                      backoff_delay_jittered(opts_.reconnect, p.attempt++,
                                             rng_));
    return;
  }
  set_nodelay(fd);
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    ++counters_.dials;
  }
  sockaddr_in addr = loopback_addr(p.port);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    p.next_dial = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(
                      backoff_delay_jittered(opts_.reconnect, p.attempt++,
                                             rng_));
    return;
  }
  Conn c;
  c.fd = fd;
  c.gen = ++conn_gen_;
  c.state = ConnState::kConnecting;
  c.dialed = true;
  c.peer = peer;
  c.last_rx = std::chrono::steady_clock::now();
  const std::uint32_t gen = c.gen;
  conns_.emplace(fd, std::move(c));
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.u64 = epoll_key(fd, gen);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    conns_.erase(fd);
    ::close(fd);
  }
}

void Reactor::accept_ready() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept error: epoll will re-arm
    }
    set_nodelay(fd);
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      ++counters_.accepts;
    }
    Conn c;
    c.fd = fd;
    c.gen = ++conn_gen_;
    c.state = ConnState::kHandshaking;
    c.dialed = false;
    c.last_rx = std::chrono::steady_clock::now();
    const std::uint32_t gen = c.gen;
    conns_.emplace(fd, std::move(c));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = epoll_key(fd, gen);
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      conns_.erase(fd);
      ::close(fd);
    }
  }
}

void Reactor::conn_readable(int fd) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    IoResult r = read_some(fd, buf, sizeof(buf));
    if (r.status == IoStatus::kWouldBlock) break;
    if (!r.ok()) {
      close_conn(fd, /*notify=*/true);
      return;
    }
    it->second.decoder.feed(buf, r.bytes);
    it->second.last_rx = std::chrono::steady_clock::now();
    it->second.pings_unanswered = 0;
    for (;;) {
      auto cit = conns_.find(fd);
      if (cit == conns_.end()) return;  // handle_frame closed it
      auto f = cit->second.decoder.next();
      if (!f) break;
      handle_frame(fd, *f);
    }
    // Fold codec-drop deltas into the wire counters.
    auto cit = conns_.find(fd);
    if (cit != conns_.end()) {
      const auto& dc = cit->second.decoder.counters();
      std::lock_guard<std::mutex> lk(state_mu_);
      counters_.crc_drops += dc.crc_drops - cit->second.crc_seen;
      counters_.resyncs += dc.resyncs - cit->second.resync_seen;
      cit->second.crc_seen = dc.crc_drops;
      cit->second.resync_seen = dc.resyncs;
      counters_.bytes_rx += r.bytes;
    }
    if (r.bytes < sizeof(buf)) break;  // short read: stream drained
  }
}

void Reactor::conn_writable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  if (c.state == ConnState::kConnecting) {
    int err = 0;
    socklen_t elen = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen) != 0 || err != 0) {
      close_conn(fd, /*notify=*/false);
      return;
    }
    c.state = ConnState::kHandshaking;
    WireHello h;
    h.id = opts_.self;
    h.n = opts_.n;
    h.epoch = opts_.epoch;
    h.run_id = opts_.run_id;
    h.data_port = opts_.advertised_port;
    auto payload = encode_hello(h);
    queue_frame(c, FrameType::kHello, payload.data(), payload.size());
  }
  flush_conn(fd);
}

void Reactor::handle_frame(int fd, const WireFrame& f) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    ++counters_.frames_rx;
  }
  switch (f.type) {
    case FrameType::kHello: {
      auto h = decode_hello(f.payload.data(), f.payload.size());
      bool id_ok =
          h && (h->id == kSupervisorPeer ||
                (opts_.accept_clients && h->id >= kClientPeerBase) ||
                (h->id >= 0 && (opts_.n == 0 || h->id < opts_.n)));
      bool run_ok = h && h->run_id == opts_.run_id;
      bool n_ok = h && (opts_.n == 0 || h->n == 0 || h->n == opts_.n);
      bool refused = h && peers_.count(h->id) && peers_[h->id].refused;
      if (c.dialed || c.state != ConnState::kHandshaking || !id_ok ||
          !run_ok || !n_ok || refused) {
        std::lock_guard<std::mutex> lk(state_mu_);
        ++counters_.handshake_rejects;
        if (refused) ++counters_.partitions_enforced;
        break;  // falls through to close below
      }
      c.peer = h->id;
      WireHello mine;
      mine.id = opts_.self;
      mine.n = opts_.n;
      mine.epoch = opts_.epoch;
      mine.run_id = opts_.run_id;
      mine.data_port = opts_.advertised_port;
      auto payload = encode_hello(mine);
      queue_frame(c, FrameType::kHelloAck, payload.data(), payload.size());
      flush_conn(fd);
      establish(fd, h->id, h->epoch, h->data_port);
      return;
    }
    case FrameType::kHelloAck: {
      auto h = decode_hello(f.payload.data(), f.payload.size());
      if (!c.dialed || c.state != ConnState::kHandshaking || !h ||
          h->run_id != opts_.run_id || h->id != c.peer) {
        std::lock_guard<std::mutex> lk(state_mu_);
        ++counters_.handshake_rejects;
        break;
      }
      establish(fd, h->id, h->epoch, h->data_port);
      return;
    }
    case FrameType::kPing: {
      queue_frame(c, FrameType::kPong, nullptr, 0);
      flush_conn(fd);
      return;
    }
    case FrameType::kPong:
      return;  // last_rx already refreshed by the read pump
    case FrameType::kBye:
      close_conn(fd, /*notify=*/true);
      return;
    default: {
      if (c.state == ConnState::kEstablished) {
        on_frame_(c.peer, c.peer_epoch, f);
      }
      return;
    }
  }
  close_conn(fd, /*notify=*/false);
}

void Reactor::establish(int fd, ProcessId peer, std::uint64_t epoch,
                        std::uint16_t data_port) {
  Peer& p = peers_[peer];
  if (p.fd >= 0 && p.fd != fd) {
    // A fresh stream replaces a stale one; the upper layer may see a second
    // "up" with no intervening "down" — establish is idempotent up there.
    int old = p.fd;
    p.fd = -1;
    close_conn(old, /*notify=*/false);
  }
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  c.state = ConnState::kEstablished;
  c.peer = peer;
  c.peer_epoch = epoch;
  c.peer_data_port = data_port;
  p.fd = fd;
  p.attempt = 0;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    ++counters_.connects;
    if (p.was_established) ++counters_.reconnects;
    established_[peer] = true;
  }
  p.was_established = true;
  on_peer_(peer, epoch, true, data_port);
}

void Reactor::close_conn(int fd, bool notify) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn c = std::move(it->second);
  conns_.erase(it);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  if (c.peer == kInvalidProcess) return;
  auto pit = peers_.find(c.peer);
  bool owned = pit != peers_.end() && pit->second.fd == fd;
  if (owned) {
    pit->second.fd = -1;
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      established_[c.peer] = false;
    }
    if (notify && c.state == ConnState::kEstablished) {
      on_peer_(c.peer, c.peer_epoch, false, c.peer_data_port);
    }
  }
  // If we are the dialer for this peer, schedule a redial (unless refused).
  if (c.dialed && pit != peers_.end() && pit->second.port != 0 &&
      !pit->second.refused && pit->second.fd < 0) {
    pit->second.next_dial =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(backoff_delay_jittered(
            opts_.reconnect, pit->second.attempt++, rng_));
  }
}

void Reactor::queue_frame(Conn& c, FrameType type, const std::uint8_t* payload,
                          std::size_t len) {
  auto frame = encode_frame(type, payload, len);
  if (c.outbuf.size() - c.out_pos + frame.size() > opts_.max_outbuf_bytes) {
    // Backlog cap: drop at the wire; ARQ retries will re-teach.
    std::lock_guard<std::mutex> lk(state_mu_);
    ++counters_.send_unroutable;
    return;
  }
  c.outbuf.insert(c.outbuf.end(), frame.begin(), frame.end());
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    ++counters_.frames_tx;
    counters_.bytes_tx += frame.size();
  }
}

void Reactor::flush_conn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  while (c.out_pos < c.outbuf.size()) {
    IoResult r =
        write_some(fd, c.outbuf.data() + c.out_pos, c.outbuf.size() - c.out_pos);
    if (r.status == IoStatus::kWouldBlock) {
      arm(fd, /*want_write=*/true);
      return;
    }
    if (!r.ok()) {
      close_conn(fd, /*notify=*/true);
      return;
    }
    c.out_pos += r.bytes;
  }
  c.outbuf.clear();
  c.out_pos = 0;
  if (c.state != ConnState::kConnecting) arm(fd, /*want_write=*/false);
}

void Reactor::timers(std::chrono::steady_clock::time_point now) {
  // Dial peers whose backoff expired.
  for (auto& [peer, p] : peers_) {
    if (p.port != 0 && p.fd < 0 && !p.refused && p.next_dial <= now) {
      bool already_connecting = false;
      for (const auto& [fd, c] : conns_) {
        if (c.dialed && c.peer == peer &&
            c.state != ConnState::kEstablished) {
          already_connecting = true;
          break;
        }
      }
      if (!already_connecting) dial(peer);
    }
  }
  // Keepalive and dead-stream detection (also times out stuck handshakes).
  // Probe writes are deferred past the scan: flush_conn can close a conn on
  // write failure, which would invalidate the iteration.
  std::vector<int> dead;
  std::vector<int> probe;
  for (auto& [fd, c] : conns_) {
    auto silence = now - c.last_rx;
    if (silence > opts_.dead_after) {
      dead.push_back(fd);
      continue;
    }
    if (c.state != ConnState::kEstablished) continue;
    if (opts_.keepalive_misses > 0 &&
        c.pings_unanswered >= opts_.keepalive_misses) {
      dead.push_back(fd);
      continue;
    }
    if (silence > opts_.keepalive * (c.pings_unanswered + 1)) {
      ++c.pings_unanswered;
      probe.push_back(fd);
    }
  }
  for (int fd : probe) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      ++counters_.keepalive_probes;
    }
    queue_frame(it->second, FrameType::kPing, nullptr, 0);
    flush_conn(fd);
  }
  for (int fd : dead) {
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      ++counters_.dead_closes;
    }
    close_conn(fd, /*notify=*/true);
  }
}

void Reactor::arm(int fd, bool want_write) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = epoll_key(fd, it->second.gen);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

}  // namespace udc
