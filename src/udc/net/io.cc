#include "udc/net/io.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <vector>

namespace udc {

namespace {

bool peer_down_errno(int e) {
  return e == EPIPE || e == ECONNRESET || e == ECONNABORTED || e == ENOTCONN;
}

bool would_block_errno(int e) {
  return e == EAGAIN || e == EWOULDBLOCK;
}

// send(MSG_NOSIGNAL) so a dead peer is EPIPE-as-value, not SIGPIPE; fall
// back to write(2) for non-socket descriptors (pipes, files in tests).
ssize_t write_raw(int fd, const void* buf, std::size_t len) {
  ssize_t k = ::send(fd, buf, len, MSG_NOSIGNAL);
  if (k < 0 && errno == ENOTSOCK) k = ::write(fd, buf, len);
  return k;
}

}  // namespace

const char* io_status_name(IoStatus s) {
  switch (s) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kPeerDown: return "peer-down";
    case IoStatus::kWouldBlock: return "would-block";
    case IoStatus::kError: return "error";
  }
  return "?";
}

IoResult full_read(int fd, void* buf, std::size_t len) {
  IoResult r;
  auto* p = static_cast<std::uint8_t*>(buf);
  while (r.bytes < len) {
    ssize_t k = ::read(fd, p + r.bytes, len - r.bytes);
    if (k > 0) {
      r.bytes += static_cast<std::size_t>(k);
      continue;
    }
    if (k == 0) {  // orderly EOF: the peer is gone, not an error
      r.status = IoStatus::kPeerDown;
      return r;
    }
    if (errno == EINTR) continue;
    if (would_block_errno(errno)) {
      r.status = IoStatus::kWouldBlock;
      return r;
    }
    r.status = peer_down_errno(errno) ? IoStatus::kPeerDown : IoStatus::kError;
    r.error = r.status == IoStatus::kError ? errno : 0;
    return r;
  }
  return r;
}

IoResult full_write(int fd, const void* buf, std::size_t len) {
  IoResult r;
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (r.bytes < len) {
    ssize_t k = write_raw(fd, p + r.bytes, len - r.bytes);
    if (k >= 0) {
      r.bytes += static_cast<std::size_t>(k);
      continue;
    }
    if (errno == EINTR) continue;
    if (would_block_errno(errno)) {
      r.status = IoStatus::kWouldBlock;
      return r;
    }
    r.status = peer_down_errno(errno) ? IoStatus::kPeerDown : IoStatus::kError;
    r.error = r.status == IoStatus::kError ? errno : 0;
    return r;
  }
  return r;
}

IoResult full_writev(int fd, const struct iovec* iov, int iovcnt) {
  IoResult r;
  std::vector<iovec> v(iov, iov + iovcnt);
  std::size_t i = 0;
  while (i < v.size()) {
    // sendmsg(MSG_NOSIGNAL) for the same EPIPE-as-value contract as
    // write_raw; writev(2) serves non-socket descriptors.
    msghdr mh{};
    mh.msg_iov = v.data() + i;
    mh.msg_iovlen = v.size() - i;
    ssize_t k = ::sendmsg(fd, &mh, MSG_NOSIGNAL);
    if (k < 0 && errno == ENOTSOCK) {
      k = ::writev(fd, v.data() + i, static_cast<int>(v.size() - i));
    }
    if (k < 0) {
      if (errno == EINTR) continue;
      if (would_block_errno(errno)) {
        r.status = IoStatus::kWouldBlock;
        return r;
      }
      r.status =
          peer_down_errno(errno) ? IoStatus::kPeerDown : IoStatus::kError;
      r.error = r.status == IoStatus::kError ? errno : 0;
      return r;
    }
    r.bytes += static_cast<std::size_t>(k);
    auto left = static_cast<std::size_t>(k);
    while (i < v.size() && left >= v[i].iov_len) {
      left -= v[i].iov_len;
      ++i;
    }
    if (i < v.size() && left > 0) {
      v[i].iov_base = static_cast<std::uint8_t*>(v[i].iov_base) + left;
      v[i].iov_len -= left;
    }
  }
  return r;
}

IoResult read_some(int fd, void* buf, std::size_t len) {
  IoResult r;
  for (;;) {
    ssize_t k = ::read(fd, buf, len);
    if (k > 0) {
      r.bytes = static_cast<std::size_t>(k);
      return r;
    }
    if (k == 0) {
      r.status = IoStatus::kPeerDown;
      return r;
    }
    if (errno == EINTR) continue;
    if (would_block_errno(errno)) {
      r.status = IoStatus::kWouldBlock;
      return r;
    }
    r.status = peer_down_errno(errno) ? IoStatus::kPeerDown : IoStatus::kError;
    r.error = r.status == IoStatus::kError ? errno : 0;
    return r;
  }
}

IoResult write_some(int fd, const void* buf, std::size_t len) {
  IoResult r;
  for (;;) {
    ssize_t k = write_raw(fd, buf, len);
    if (k >= 0) {
      r.bytes = static_cast<std::size_t>(k);
      return r;
    }
    if (errno == EINTR) continue;
    if (would_block_errno(errno)) {
      r.status = IoStatus::kWouldBlock;
      return r;
    }
    r.status = peer_down_errno(errno) ? IoStatus::kPeerDown : IoStatus::kError;
    r.error = r.status == IoStatus::kError ? errno : 0;
    return r;
  }
}

bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_cloexec(int fd) {
  int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) == 0;
}

}  // namespace udc
