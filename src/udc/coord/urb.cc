#include "udc/coord/urb.h"

#include "udc/common/check.h"
#include "udc/coord/udc_strongfd.h"

namespace udc {

UrbSession::UrbSession(int group_size) : n_(group_size) {
  UDC_CHECK(group_size > 0 && group_size <= kMaxProcesses,
            "group size out of range");
  next_seq_.assign(static_cast<std::size_t>(group_size), 0);
}

ActionId UrbSession::broadcast(ProcessId sender, Time at) {
  UDC_CHECK(sender >= 0 && sender < n_, "sender outside the group");
  ActionId a = make_action(sender, next_seq_[static_cast<std::size_t>(sender)]++);
  messages_.push_back(a);
  workload_.push_back({at, sender, a});
  return a;
}

UrbSession::Outcome UrbSession::execute(const SimConfig& config,
                                        const CrashPlan& plan,
                                        FdOracle* detector) const {
  UDC_CHECK(config.n == n_, "config group size mismatch");
  SimResult res = simulate(config, plan, detector, workload_, [](ProcessId) {
    return std::make_unique<UdcStrongFdProcess>();
  });
  return Outcome{std::move(res.run), res.messages_sent, res.messages_dropped};
}

std::optional<Time> UrbSession::Outcome::delivered_at(ActionId message,
                                                      ProcessId p) const {
  return run.first_event_time(p, [message](const Event& e) {
    return e.kind == EventKind::kDo && e.action == message;
  });
}

CoordReport UrbSession::Outcome::uniform_delivery(
    std::span<const ActionId> messages, Time grace) const {
  return check_udc(run, messages, grace);
}

}  // namespace udc
