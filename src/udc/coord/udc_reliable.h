// The UDC protocol of Proposition 2.4: reliable channels, no failure
// detector, any number of failures.
//
// On entering the UDC(α) state a process first sends an α-message to every
// other process and only then performs α.  With reliable channels, if q
// performed α then q's α-messages were already sent, so every correct
// process eventually receives one, relays (once), and performs — even if q
// crashes immediately after performing.  The send-BEFORE-do ordering is the
// entire trick; the outbox FIFO of the simulator preserves it.
#pragma once

#include <vector>

#include "udc/sim/process.h"

namespace udc {

class UdcReliableProcess : public Process {
 public:
  void on_init(ActionId alpha, Env& env) override;
  void on_receive(ProcessId from, const Message& msg, Env& env) override;

 private:
  void enter_state(ActionId alpha, Env& env);
  std::vector<ActionId> known_;
};

}  // namespace udc
