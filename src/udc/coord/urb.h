// Uniform Reliable Broadcast (URB) as a library facade over the UDC engine.
//
// The paper observes (§1, §5) that Schiper-Sandoz Uniform Reliable
// Multicast — and the URB of Aguilera-Toueg-Deianov — is exactly UDC where
// the coordination action is "deliver message m": broadcast(m) = init, and
// deliver(m) = do.  UrbSession packages that correspondence: register
// broadcasts, execute the group under a context, and read deliveries and
// the uniform-delivery verdict back out.
#pragma once

#include <optional>
#include <vector>

#include "udc/coord/action.h"
#include "udc/coord/spec.h"
#include "udc/fd/oracle.h"
#include "udc/sim/simulator.h"

namespace udc {

class UrbSession {
 public:
  explicit UrbSession(int group_size);

  // Registers "at time `at`, `sender` broadcasts a message"; the returned
  // id identifies the message in delivery queries.
  ActionId broadcast(ProcessId sender, Time at);

  struct Outcome {
    Run run;
    std::size_t messages_sent = 0;
    std::size_t messages_dropped = 0;

    // When p delivered the message, if it did.
    std::optional<Time> delivered_at(ActionId message, ProcessId p) const;
    // Uniform delivery = the UDC spec on the delivery actions.
    CoordReport uniform_delivery(std::span<const ActionId> messages,
                                 Time grace) const;
  };

  // Runs the group.  `detector` may be null (then only reliable channels
  // give uniformity — Prop 2.4 vs Prop 3.1 in broadcast clothing).
  Outcome execute(const SimConfig& config, const CrashPlan& plan,
                  FdOracle* detector) const;

  const std::vector<ActionId>& messages() const { return messages_; }

 private:
  int n_;
  std::vector<InitDirective> workload_;
  std::vector<ActionId> messages_;
  std::vector<ActionId> next_seq_;  // per sender
};

}  // namespace udc
