// Majority-echo UDC for t < n/2 — the honest "no failure detector" entry
// of Table 1's unreliable row (Gopal-Toueg [GT89], as the paper's
// Corollary 4.2 frames it).
//
// Every process that learns of α (by initiating or by receiving any
// α-traffic) ECHOES it: it repeatedly announces "I have α" to everyone.  A
// process performs α once it has collected echoes from a MAJORITY of the
// group (its own included).  Uniformity without any detector: a performer's
// majority quorum intersects the (> n/2) correct processes, so some correct
// process holds α and keeps echoing; every correct process therefore
// eventually collects the ≥ n - t > n/2 correct echoes itself.  Liveness
// needs t < n/2 — with half or more faulty, the quorum may never fill and
// DC1 fails, which is exactly the boundary the Table 1 probes show.
//
// Echoes double as the flooding that spreads α, so the protocol is one
// message kind: kAlpha from ANY process is both content and echo.
#pragma once

#include <cstdint>
#include <vector>

#include "udc/common/proc_set.h"
#include "udc/sim/process.h"

namespace udc {

class UdcMajorityProcess : public Process {
 public:
  explicit UdcMajorityProcess(Time resend_interval = 8)
      : resend_interval_(resend_interval) {}

  void on_init(ActionId alpha, Env& env) override;
  void on_receive(ProcessId from, const Message& msg, Env& env) override;
  void on_tick(Env& env) override;

 private:
  struct ActionState {
    ActionId alpha = kInvalidAction;
    ProcSet echoed_by;  // processes seen echoing alpha (self included)
    bool performed = false;
    std::vector<Time> last_sent;
  };

  void enter_state(ActionId alpha, Env& env);
  ActionState* find(ActionId alpha);
  void maybe_perform(ActionState& st, Env& env);

  Time resend_interval_;
  std::vector<ActionState> active_;
  std::size_t cursor_ = 0;
};

}  // namespace udc
