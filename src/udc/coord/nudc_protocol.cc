#include "udc/coord/nudc_protocol.h"

#include <algorithm>

namespace udc {

void NUdcProcess::enter_state(ActionId alpha, Env& env) {
  if (std::find(active_.begin(), active_.end(), alpha) != active_.end()) {
    return;
  }
  active_.push_back(alpha);
  last_sent_.emplace_back(static_cast<std::size_t>(env.n()), -resend_interval_);
  env.perform(alpha);  // perform immediately; flooding continues via on_tick
}

void NUdcProcess::on_init(ActionId alpha, Env& env) { enter_state(alpha, env); }

void NUdcProcess::on_receive(ProcessId, const Message& msg, Env& env) {
  if (msg.kind == MsgKind::kAlpha) enter_state(msg.action, env);
}

void NUdcProcess::on_tick(Env& env) {
  // One paced retransmission per idle tick, round-robin over
  // (action, peer): every pair recurs forever, which is what fairness R5
  // rewards, but never more often than resend_interval_.
  if (!env.outbox_empty() || active_.empty()) return;
  const std::size_t peers = static_cast<std::size_t>(env.n()) - 1;
  if (peers == 0) return;
  std::size_t total = active_.size() * peers;
  for (std::size_t probe = 0; probe < total; ++probe) {
    std::size_t slot = cursor_ % total;
    cursor_ = (cursor_ + 1) % total;
    std::size_t action_idx = slot / peers;
    ProcessId to = static_cast<ProcessId>(slot % peers);
    if (to >= env.self()) ++to;  // skip self
    Time& last = last_sent_[action_idx][static_cast<std::size_t>(to)];
    if (env.now() - last < resend_interval_) continue;
    last = env.now();
    Message m;
    m.kind = MsgKind::kAlpha;
    m.action = active_[action_idx];
    env.send(to, m);
    return;
  }
}

void SuspicionGossiper::on_tick(Env& env) {
  if (!env.outbox_empty()) return;
  if (env.n() <= 1) return;
  if (next_peer_ == env.self()) next_peer_ = (next_peer_ + 1) % env.n();
  Message m;
  m.kind = MsgKind::kSuspicionGossip;
  m.procs = heard_;
  env.send(next_peer_, m);
  next_peer_ = (next_peer_ + 1) % env.n();
}

}  // namespace udc
