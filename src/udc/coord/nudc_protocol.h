// The nUDC flooding protocol of Proposition 2.3, plus the suspicion-gossip
// mixin used by the Proposition 2.1 conversion experiments.
//
// Prop 2.3's protocol: on init_p(α), p enters an nUDC(α) state, performs α,
// and sends α-messages to all other processes forever; a receiver enters the
// state (performing α and flooding in turn) the first time it hears of α.
// No failure detector, no acknowledgments, works under fair-lossy channels
// with any number of failures — but only attains the *non-uniform* spec:
// a process may perform α and then crash before any α-message gets through.
#pragma once

#include <cstdint>
#include <vector>

#include "udc/sim/process.h"

namespace udc {

class NUdcProcess : public Process {
 public:
  // resend_interval: minimum ticks between retransmissions of the same
  // (action, peer) pair.  Pacing matters: an unpaced flooder saturates the
  // one-event-per-tick budget of every process (each duplicate also costs
  // the receiver a slot), which starves the very coordination it drives.
  explicit NUdcProcess(Time resend_interval = 8)
      : resend_interval_(resend_interval) {}

  void on_init(ActionId alpha, Env& env) override;
  void on_receive(ProcessId from, const Message& msg, Env& env) override;
  void on_tick(Env& env) override;

 protected:
  void enter_state(ActionId alpha, Env& env);

  Time resend_interval_;
  std::vector<ActionId> active_;  // actions in nUDC(alpha) state
  std::vector<std::vector<Time>> last_sent_;  // per action, per peer
  std::size_t cursor_ = 0;        // round-robin over (action, peer) pairs
};

// Periodically broadcasts its failure detector's suspicions as
// kSuspicionGossip messages; fills idle outbox slots, round-robin over
// peers.  Two modes:
//   kCumulative — gossip the union of everything ever reported.  Feeds
//                 fd/convert.h's weak->strong conversion (Prop 2.1).
//   kCurrent    — gossip the LATEST report only, so retractions propagate.
//                 Feeds the eventually-weak -> eventually-strong conversion
//                 (the CT96 dW ~ dS equivalence), where pre-stabilization
//                 noise must be forgettable.
class SuspicionGossiper : public Process {
 public:
  enum class Mode { kCumulative, kCurrent };
  explicit SuspicionGossiper(Mode mode = Mode::kCumulative) : mode_(mode) {}

  void on_receive(ProcessId, const Message&, Env&) override {}
  void on_suspect(ProcSet suspects, Env&) override {
    heard_ = mode_ == Mode::kCumulative ? (heard_ | suspects) : suspects;
  }
  void on_tick(Env& env) override;

 private:
  Mode mode_;
  ProcSet heard_;
  ProcessId next_peer_ = 0;
};

}  // namespace udc
