// The UDC protocol of Proposition 3.1: fair-lossy channels, strong (or
// impermanent-strong) failure detector, no bound on failures.
//
// In the UDC(α) state a process retransmits α-messages to every peer until
// acknowledged.  It performs α once, for every peer q, it either holds an
// ack for α from q or its failure detector HAS EVER reported q ("says or
// has said that q is faulty" — cumulative, which is why impermanent
// completeness suffices).  Receivers ack every α-message and enter the
// state themselves.
//
// Weak accuracy is what makes this uniform: some correct q* is never
// suspected, so a performer must hold q*'s ack, so q* is in the state and
// will drive every correct process into it.
#pragma once

#include <cstdint>
#include <vector>

#include "udc/common/proc_set.h"
#include "udc/sim/process.h"

namespace udc {

class UdcStrongFdProcess : public Process {
 public:
  // resend_interval paces per-(action, peer) retransmission; see
  // NUdcProcess for why unpaced flooding self-congests.
  //
  // quiescent: the paper's footnote 11 — with a STRONGLY ACCURATE detector,
  // a process may stop retransmitting an action's messages once it has
  // performed it (every unacked peer really is crashed).  With merely weak
  // accuracy this is UNSOUND: halting on a false suspicion strands a live
  // peer.  test_quiescence.cc demonstrates both directions.
  explicit UdcStrongFdProcess(Time resend_interval = 8,
                              bool quiescent = false)
      : resend_interval_(resend_interval), quiescent_(quiescent) {}

  void on_init(ActionId alpha, Env& env) override;
  void on_receive(ProcessId from, const Message& msg, Env& env) override;
  void on_suspect(ProcSet suspects, Env& env) override;
  void on_tick(Env& env) override;
  void on_peer_recovered(ProcessId q, Env& env) override;

 protected:
  struct ActionState {
    ActionId alpha = kInvalidAction;
    ProcSet acked;        // peers whose ack for alpha we hold
    bool performed = false;
    std::vector<Time> last_sent;  // per peer
  };

  void enter_state(ActionId alpha, Env& env);
  ActionState* find(ActionId alpha);
  void maybe_perform(ActionState& st, Env& env);

  Time resend_interval_;
  bool quiescent_;
  std::vector<ActionState> active_;
  ProcSet ever_suspected_;  // cumulative failure-detector output
  std::size_t cursor_ = 0;
};

}  // namespace udc
