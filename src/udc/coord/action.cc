#include "udc/coord/action.h"

namespace udc {

std::vector<InitDirective> make_workload(int n, int per_process, Time start,
                                         Time spacing) {
  std::vector<InitDirective> out;
  out.reserve(static_cast<std::size_t>(n) * per_process);
  Time at = start;
  for (int round = 0; round < per_process; ++round) {
    for (ProcessId p = 0; p < n; ++p) {
      out.push_back(InitDirective{at, p, make_action(p, round)});
      at += spacing;
    }
  }
  return out;
}

std::vector<ActionId> workload_actions(const std::vector<InitDirective>& w) {
  std::vector<ActionId> out;
  out.reserve(w.size());
  for (const InitDirective& d : w) out.push_back(d.action);
  return out;
}

std::vector<std::vector<InitDirective>> workload_variants(
    const std::vector<InitDirective>& w) {
  std::vector<std::vector<InitDirective>> out;
  out.push_back(w);
  for (const InitDirective& omit : w) {
    std::vector<InitDirective> variant;
    variant.reserve(w.size() - 1);
    for (const InitDirective& d : w) {
      if (d.action != omit.action) variant.push_back(d);
    }
    out.push_back(std::move(variant));
  }
  return out;
}

std::vector<std::vector<InitDirective>> workload_power_set(
    const std::vector<InitDirective>& w) {
  // Collect the distinct actions, preserving order.
  std::vector<ActionId> actions;
  for (const InitDirective& d : w) {
    bool seen = false;
    for (ActionId a : actions) seen |= a == d.action;
    if (!seen) actions.push_back(d.action);
  }
  UDC_CHECK(actions.size() <= 6, "power set capped at 6 actions");
  std::vector<std::vector<InitDirective>> out;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << actions.size());
       ++mask) {
    std::vector<InitDirective> variant;
    for (const InitDirective& d : w) {
      for (std::size_t i = 0; i < actions.size(); ++i) {
        if (actions[i] == d.action && ((mask >> i) & 1)) {
          variant.push_back(d);
        }
      }
    }
    out.push_back(std::move(variant));
  }
  return out;
}

}  // namespace udc
