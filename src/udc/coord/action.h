// Coordination actions (§2.4).
//
// Each process p owns a disjoint set A_p of actions it alone may *initiate*
// (any process may *perform* them).  We encode the owner in the ActionId so
// ownership is a pure function — no registry object to thread through
// protocols and checkers.
#pragma once

#include <vector>

#include "udc/common/check.h"
#include "udc/common/types.h"
#include "udc/sim/context.h"

namespace udc {

inline constexpr ActionId kActionOwnerShift = 20;
inline constexpr ActionId kMaxActionSeq = (ActionId{1} << kActionOwnerShift) - 1;

inline ActionId make_action(ProcessId owner, ActionId seq) {
  UDC_CHECK(owner >= 0 && owner < kMaxProcesses, "bad action owner");
  UDC_CHECK(seq >= 0 && seq <= kMaxActionSeq, "action sequence out of range");
  return (static_cast<ActionId>(owner) << kActionOwnerShift) | seq;
}

inline ProcessId action_owner(ActionId a) {
  return static_cast<ProcessId>(a >> kActionOwnerShift);
}

// A workload: `per_process` actions initiated by each of the n processes,
// starting at `start` and spaced `spacing` ticks apart (round-robin over
// processes).  This realizes the theorem-side requirement that correct
// processes keep initiating actions (Theorem 3.6's "infinitely many actions
// are initiated", truncated to the horizon).
std::vector<InitDirective> make_workload(int n, int per_process, Time start,
                                         Time spacing);

// All actions appearing in a workload.
std::vector<ActionId> workload_actions(const std::vector<InitDirective>& w);

// The workload itself plus, for each action it contains, a variant with
// that action's init removed.  Feeding these to generate_system_multi makes
// "α was never initiated" a live possibility at every point — the richness
// that A3/A4-style insensitivity needs (a process crashing before hearing
// of α must have an indistinguishable twin where α never happened).
std::vector<std::vector<InitDirective>> workload_variants(
    const std::vector<InitDirective>& w);

// ALL subsets of the workload's actions (2^k variants, k <= 6 enforced).
// workload_variants is not closed under intersection, which lets a process
// "know" an init by elimination: observing no α-traffic narrows the
// possible worlds to those where every OTHER action still happened.  The
// power set closes that gap; use it whenever knowledge is the subject.
std::vector<std::vector<InitDirective>> workload_power_set(
    const std::vector<InitDirective>& w);

}  // namespace udc
