#include "udc/coord/udc_atd.h"

namespace udc {

UdcAtdProcess::ActionState* UdcAtdProcess::find(ActionId alpha) {
  for (auto& st : active_) {
    if (st.alpha == alpha) return &st;
  }
  return nullptr;
}

void UdcAtdProcess::enter_state(ActionId alpha, Env& env) {
  if (find(alpha) != nullptr) return;
  ActionState st;
  st.alpha = alpha;
  st.last_sent.assign(static_cast<std::size_t>(env.n()), -resend_interval_);
  active_.push_back(std::move(st));
  maybe_perform(active_.back(), env);
}

void UdcAtdProcess::maybe_perform(ActionState& st, Env& env) {
  if (st.performed) return;
  // The ATD gate: everyone not CURRENTLY suspected has acked.
  for (ProcessId q = 0; q < env.n(); ++q) {
    if (q == env.self()) continue;
    if (!st.acked.contains(q) && !current_suspects_.contains(q)) return;
  }
  st.performed = true;
  env.perform(st.alpha);
}

void UdcAtdProcess::on_init(ActionId alpha, Env& env) {
  enter_state(alpha, env);
}

void UdcAtdProcess::on_receive(ProcessId from, const Message& msg, Env& env) {
  if (msg.kind == MsgKind::kAlpha) {
    Message ack;
    ack.kind = MsgKind::kAck;
    ack.action = msg.action;
    env.send(from, ack);
    enter_state(msg.action, env);
  } else if (msg.kind == MsgKind::kAck) {
    if (ActionState* st = find(msg.action)) {
      st->acked.insert(from);
      maybe_perform(*st, env);
    }
  }
}

void UdcAtdProcess::on_suspect(ProcSet suspects, Env& env) {
  current_suspects_ = suspects;  // latest report only
  for (auto& st : active_) maybe_perform(st, env);
}

void UdcAtdProcess::on_tick(Env& env) {
  // Retransmission continues for every non-acked peer — unlike the
  // cumulative protocol we may yet need an ack from a currently-suspected
  // process (its suspicion may rotate away).
  if (!env.outbox_empty() || active_.empty()) return;
  const std::size_t peers = static_cast<std::size_t>(env.n()) - 1;
  if (peers == 0) return;
  const std::size_t total = active_.size() * peers;
  for (std::size_t probe = 0; probe < total; ++probe) {
    std::size_t slot = cursor_ % total;
    cursor_ = (cursor_ + 1) % total;
    ActionState& st = active_[slot / peers];
    ProcessId to = static_cast<ProcessId>(slot % peers);
    if (to >= env.self()) ++to;
    if (st.acked.contains(to)) continue;
    Time& last = st.last_sent[static_cast<std::size_t>(to)];
    if (env.now() - last < resend_interval_) continue;
    last = env.now();
    Message m;
    m.kind = MsgKind::kAlpha;
    m.action = st.alpha;
    env.send(to, m);
    return;
  }
}

}  // namespace udc
