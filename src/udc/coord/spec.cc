#include "udc/coord/spec.h"

#include <algorithm>
#include <sstream>

namespace udc {

void CoordReport::merge(const CoordReport& other) {
  dc1 &= other.dc1;
  dc2 &= other.dc2;
  dc3 &= other.dc3;
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
}

namespace {

std::optional<Time> first_do_time(const Run& r, ProcessId q, ActionId alpha) {
  return r.first_event_time(q, [alpha](const Event& e) {
    return e.kind == EventKind::kDo && e.action == alpha;
  });
}

std::optional<Time> init_time(const Run& r, ProcessId p, ActionId alpha) {
  return r.first_event_time(p, [alpha](const Event& e) {
    return e.kind == EventKind::kInit && e.action == alpha;
  });
}

CoordReport check_one(const Run& r, ActionId alpha, Time grace, bool uniform) {
  CoordReport rep;
  const int n = r.n();
  const Time T = r.horizon();
  const ProcessId p = action_owner(alpha);

  // DC3: performing requires a prior (or simultaneous) init by the owner.
  for (ProcessId q = 0; q < n; ++q) {
    auto m_do = first_do_time(r, q, alpha);
    if (m_do && !r.init_in(p, *m_do, alpha)) {
      rep.dc3 = false;
      std::ostringstream out;
      out << "DC3: p" << q << " performed α" << alpha << " at " << *m_do
          << " but owner p" << p << " had not initiated it";
      rep.violations.push_back(out.str());
    }
  }

  // DC1: the initiator performs or crashes.
  auto m_init = init_time(r, p, alpha);
  if (m_init && *m_init <= T - grace) {
    if (!r.do_in(p, T, alpha) && !r.is_faulty(p)) {
      rep.dc1 = false;
      std::ostringstream out;
      out << "DC1: p" << p << " initiated α" << alpha << " at " << *m_init
          << " but never performed it nor crashed";
      rep.violations.push_back(out.str());
    }
  }

  // DC2 (or DC2'): once performed, everyone correct performs.
  std::optional<Time> earliest_binding_do;
  for (ProcessId q1 = 0; q1 < n; ++q1) {
    auto m1 = first_do_time(r, q1, alpha);
    if (!m1 || *m1 > T - grace) continue;
    if (!uniform && r.is_faulty(q1)) continue;  // DC2' exempts faulty doers
    if (!earliest_binding_do || *m1 < *earliest_binding_do) {
      earliest_binding_do = m1;
    }
  }
  if (earliest_binding_do) {
    for (ProcessId q2 = 0; q2 < n; ++q2) {
      if (r.do_in(q2, T, alpha) || r.is_faulty(q2)) continue;
      rep.dc2 = false;
      std::ostringstream out;
      out << (uniform ? "DC2" : "DC2'") << ": α" << alpha
          << " was performed (first at " << *earliest_binding_do
          << ") but correct p" << q2 << " never performed it";
      rep.violations.push_back(out.str());
    }
  }
  return rep;
}

CoordReport check_many(const Run& r, std::span<const ActionId> actions,
                       Time grace, bool uniform) {
  CoordReport rep;
  for (ActionId alpha : actions) {
    rep.merge(check_one(r, alpha, grace, uniform));
  }
  return rep;
}

}  // namespace

CoordReport check_udc(const Run& r, std::span<const ActionId> actions,
                      Time grace) {
  return check_many(r, actions, grace, /*uniform=*/true);
}

CoordReport check_udc(const System& sys, std::span<const ActionId> actions,
                      Time grace) {
  CoordReport rep;
  for (const Run& r : sys.runs()) rep.merge(check_udc(r, actions, grace));
  return rep;
}

CoordReport check_nudc(const Run& r, std::span<const ActionId> actions,
                       Time grace) {
  return check_many(r, actions, grace, /*uniform=*/false);
}

CoordReport check_nudc(const System& sys, std::span<const ActionId> actions,
                       Time grace) {
  CoordReport rep;
  for (const Run& r : sys.runs()) rep.merge(check_nudc(r, actions, grace));
  return rep;
}

FormulaPtr dc1_formula(ActionId alpha, int n) {
  (void)n;
  ProcessId p = action_owner(alpha);
  return f_implies(f_init(p, alpha),
                   f_eventually(f_or(f_do(p, alpha), f_crash(p))));
}

FormulaPtr dc2_formula(ActionId alpha, int n) {
  std::vector<FormulaPtr> clauses;
  for (ProcessId q1 = 0; q1 < n; ++q1) {
    for (ProcessId q2 = 0; q2 < n; ++q2) {
      clauses.push_back(
          f_implies(f_do(q1, alpha),
                    f_eventually(f_or(f_do(q2, alpha), f_crash(q2)))));
    }
  }
  return Formula::conjunction(std::move(clauses));
}

FormulaPtr dc2_prime_formula(ActionId alpha, int n) {
  std::vector<FormulaPtr> clauses;
  for (ProcessId q1 = 0; q1 < n; ++q1) {
    for (ProcessId q2 = 0; q2 < n; ++q2) {
      clauses.push_back(f_implies(
          f_do(q1, alpha),
          f_eventually(Formula::disjunction(
              {f_do(q2, alpha), f_crash(q2), f_crash(q1)}))));
    }
  }
  return Formula::conjunction(std::move(clauses));
}

FormulaPtr dc3_formula(ActionId alpha, int n) {
  ProcessId p = action_owner(alpha);
  std::vector<FormulaPtr> clauses;
  for (ProcessId q2 = 0; q2 < n; ++q2) {
    clauses.push_back(f_implies(f_do(q2, alpha), f_init(p, alpha)));
  }
  return Formula::conjunction(std::move(clauses));
}

FormulaPtr udc_formula(ActionId alpha, int n) {
  return Formula::conjunction(
      {dc1_formula(alpha, n), dc2_formula(alpha, n), dc3_formula(alpha, n)});
}

FormulaPtr nudc_formula(ActionId alpha, int n) {
  return Formula::conjunction({dc1_formula(alpha, n),
                               dc2_prime_formula(alpha, n),
                               dc3_formula(alpha, n)});
}

}  // namespace udc
