#include "udc/coord/udc_reliable.h"

#include <algorithm>

namespace udc {

void UdcReliableProcess::enter_state(ActionId alpha, Env& env) {
  if (std::find(known_.begin(), known_.end(), alpha) != known_.end()) return;
  known_.push_back(alpha);
  // Queue the α-messages to all peers FIRST, the do second: the simulator
  // drains the outbox in order, so by the time do_p(α) is in the history,
  // every send_p(q, α) already is too (the proof obligation of Prop 2.4).
  Message m;
  m.kind = MsgKind::kAlpha;
  m.action = alpha;
  for (ProcessId q = 0; q < env.n(); ++q) {
    if (q != env.self()) env.send(q, m);
  }
  env.perform(alpha);
}

void UdcReliableProcess::on_init(ActionId alpha, Env& env) {
  enter_state(alpha, env);
}

void UdcReliableProcess::on_receive(ProcessId, const Message& msg, Env& env) {
  if (msg.kind == MsgKind::kAlpha) enter_state(msg.action, env);
}

}  // namespace udc
