#include "udc/coord/metrics.h"

#include <algorithm>
#include <sstream>

namespace udc {

ActionMetrics measure_action(const Run& r, ActionId action) {
  ActionMetrics m;
  m.action = action;
  ProcessId owner = action_owner(action);
  m.initiated_at = r.first_event_time(owner, [action](const Event& e) {
    return e.kind == EventKind::kInit && e.action == action;
  });
  Time last_correct_do = -1;
  bool all_correct_did = !r.correct_set().empty();
  for (ProcessId q = 0; q < r.n(); ++q) {
    auto t = r.first_event_time(q, [action](const Event& e) {
      return e.kind == EventKind::kDo && e.action == action;
    });
    if (t && (!m.first_do || *t < *m.first_do)) m.first_do = t;
    if (!r.is_faulty(q)) {
      if (!t) {
        all_correct_did = false;
      } else {
        last_correct_do = std::max(last_correct_do, *t);
      }
    }
  }
  if (all_correct_did && last_correct_do >= 0) {
    m.completed_at = last_correct_do;
  }
  return m;
}

CoordinationMetrics measure_coordination(const System& sys,
                                         std::span<const ActionId> actions) {
  CoordinationMetrics agg;
  double total_latency = 0;
  for (const Run& r : sys.runs()) {
    for (ActionId a : actions) {
      ActionMetrics m = measure_action(r, a);
      if (!m.initiated_at) continue;
      ++agg.initiated;
      if (auto lat = m.latency()) {
        ++agg.completed;
        total_latency += static_cast<double>(*lat);
        agg.max_latency = std::max(agg.max_latency, *lat);
      }
    }
  }
  if (agg.completed > 0) {
    agg.mean_latency = total_latency / static_cast<double>(agg.completed);
  }
  return agg;
}

Time last_send_time(const Run& r) {
  Time last = 0;
  for (ProcessId p = 0; p < r.n(); ++p) {
    const History& h = r.history(p);
    for (std::size_t i = h.size(); i-- > 0;) {
      if (h[i].kind == EventKind::kSend) {
        last = std::max(last, r.event_time(p, i));
        break;
      }
    }
  }
  return last;
}

void RuntimeCounters::merge(const RuntimeCounters& other) {
  sends += other.sends;
  delivered += other.delivered;
  drops += other.drops;
  retransmits += other.retransmits;
  acks += other.acks;
  abandoned += other.abandoned;
  heartbeats += other.heartbeats;
  dedup_suppressed += other.dedup_suppressed;
  acks_piggybacked += other.acks_piggybacked;
  suspicions += other.suspicions;
  false_suspicions += other.false_suspicions;
  trust_restores += other.trust_restores;
  crashes += other.crashes;
  restarts += other.restarts;
  events_recorded += other.events_recorded;
  wal_frames_replayed += other.wal_frames_replayed;
  snapshots_written += other.snapshots_written;
  snapshots_loaded += other.snapshots_loaded;
  torn_tails_truncated += other.torn_tails_truncated;
  recoveries_total += other.recoveries_total;
  storage_faults_injected += other.storage_faults_injected;
  sync_failures += other.sync_failures;
  wal_group_commits += other.wal_group_commits;
  mailbox_refused += other.mailbox_refused;
  connects += other.connects;
  reconnects += other.reconnects;
  handshake_rejects += other.handshake_rejects;
  frames_tx += other.frames_tx;
  frames_rx += other.frames_rx;
  crc_drops += other.crc_drops;
  wire_resyncs += other.wire_resyncs;
  wire_drops += other.wire_drops;
  partitions_enforced += other.partitions_enforced;
  svc_requests += other.svc_requests;
  svc_admitted += other.svc_admitted;
  svc_dups_suppressed += other.svc_dups_suppressed;
  svc_retry_later += other.svc_retry_later;
  svc_redirects += other.svc_redirects;
  svc_batches_sealed += other.svc_batches_sealed;
  svc_batches_committed += other.svc_batches_committed;
  svc_ooo_commits += other.svc_ooo_commits;
  svc_elections += other.svc_elections;
  svc_sync_rounds += other.svc_sync_rounds;
  svc_adoptions += other.svc_adoptions;
  svc_lease_reads += other.svc_lease_reads;
  svc_lease_denied += other.svc_lease_denied;
}

std::string format_runtime_counters(const RuntimeCounters& c) {
  std::ostringstream out;
  out << "sends=" << c.sends << " delivered=" << c.delivered
      << " drops=" << c.drops << " retransmits=" << c.retransmits
      << " acks=" << c.acks << " abandoned=" << c.abandoned
      << " heartbeats=" << c.heartbeats
      << " dedup_suppressed=" << c.dedup_suppressed
      << " acks_piggybacked=" << c.acks_piggybacked
      << " suspicions=" << c.suspicions
      << " false_suspicions=" << c.false_suspicions
      << " trust_restores=" << c.trust_restores << " crashes=" << c.crashes
      << " restarts=" << c.restarts << " events=" << c.events_recorded
      << " wal_replayed=" << c.wal_frames_replayed
      << " snapshots_written=" << c.snapshots_written
      << " snapshots_loaded=" << c.snapshots_loaded
      << " torn_tails=" << c.torn_tails_truncated
      << " recoveries=" << c.recoveries_total
      << " storage_faults=" << c.storage_faults_injected
      << " sync_failures=" << c.sync_failures
      << " group_commits=" << c.wal_group_commits
      << " mailbox_refused=" << c.mailbox_refused
      << " connects=" << c.connects << " reconnects=" << c.reconnects
      << " handshake_rejects=" << c.handshake_rejects
      << " frames_tx=" << c.frames_tx << " frames_rx=" << c.frames_rx
      << " crc_drops=" << c.crc_drops << " wire_resyncs=" << c.wire_resyncs
      << " wire_drops=" << c.wire_drops
      << " partitions_enforced=" << c.partitions_enforced;
  if (c.svc_requests || c.svc_batches_sealed || c.svc_elections) {
    out << " svc_requests=" << c.svc_requests
        << " svc_admitted=" << c.svc_admitted
        << " svc_dups_suppressed=" << c.svc_dups_suppressed
        << " svc_retry_later=" << c.svc_retry_later
        << " svc_redirects=" << c.svc_redirects
        << " svc_sealed=" << c.svc_batches_sealed
        << " svc_committed=" << c.svc_batches_committed
        << " svc_ooo_commits=" << c.svc_ooo_commits
        << " svc_elections=" << c.svc_elections
        << " svc_sync_rounds=" << c.svc_sync_rounds
        << " svc_adoptions=" << c.svc_adoptions
        << " svc_lease_reads=" << c.svc_lease_reads
        << " svc_lease_denied=" << c.svc_lease_denied;
  }
  return out.str();
}

}  // namespace udc
