// UDC / nUDC specifications (§2.4) and their checkers.
//
//   DC1:  init_p(α) ⇒ ◇(do_p(α) ∨ crash(p))
//   DC2:  do_q1(α)  ⇒ ◇(do_q2(α) ∨ crash(q2))        for all q1, q2
//   DC2′: do_q1(α)  ⇒ ◇(do_q2(α) ∨ crash(q2) ∨ crash(q1))
//   DC3:  do_q2(α)  ⇒ init_p(α)                       for all q2
//
// UDC(α)  = DC1 ∧ DC2 ∧ DC3;  nUDC(α) = DC1 ∧ DC2′ ∧ DC3.
//
// Checkers come in two flavors: a direct run-level implementation (fast, the
// workhorse for benches) and formula builders for the §2.3 language so the
// model checker can verify the same facts — tests assert the two agree.
// "Eventually" is read up to the horizon; a `grace` window exempts actions
// initiated or first performed too close to the horizon to have finished
// propagating (finite-run substitution, DESIGN.md §2).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "udc/coord/action.h"
#include "udc/event/run.h"
#include "udc/event/system.h"
#include "udc/logic/formula.h"

namespace udc {

struct CoordReport {
  bool dc1 = true;
  bool dc2 = true;   // the checked variant: DC2 for UDC, DC2' for nUDC
  bool dc3 = true;
  std::vector<std::string> violations;

  bool achieved() const { return dc1 && dc2 && dc3; }
  void merge(const CoordReport& other);
};

// Checks UDC of every action in `actions` on run r.  DC1 binds only for
// inits at or before horizon - grace; DC2 only when the earliest do is at or
// before horizon - grace.
CoordReport check_udc(const Run& r, std::span<const ActionId> actions,
                      Time grace = 0);
CoordReport check_udc(const System& sys, std::span<const ActionId> actions,
                      Time grace = 0);

CoordReport check_nudc(const Run& r, std::span<const ActionId> actions,
                       Time grace = 0);
CoordReport check_nudc(const System& sys, std::span<const ActionId> actions,
                       Time grace = 0);

// Formula forms of DC1-DC3 for one action (valid-in-system checks).
FormulaPtr dc1_formula(ActionId alpha, int n);
FormulaPtr dc2_formula(ActionId alpha, int n);
FormulaPtr dc2_prime_formula(ActionId alpha, int n);
FormulaPtr dc3_formula(ActionId alpha, int n);
FormulaPtr udc_formula(ActionId alpha, int n);
FormulaPtr nudc_formula(ActionId alpha, int n);

}  // namespace udc
