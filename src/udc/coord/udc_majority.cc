#include "udc/coord/udc_majority.h"

namespace udc {

UdcMajorityProcess::ActionState* UdcMajorityProcess::find(ActionId alpha) {
  for (auto& st : active_) {
    if (st.alpha == alpha) return &st;
  }
  return nullptr;
}

void UdcMajorityProcess::enter_state(ActionId alpha, Env& env) {
  if (find(alpha) != nullptr) return;
  ActionState st;
  st.alpha = alpha;
  st.echoed_by = ProcSet::singleton(env.self());
  st.last_sent.assign(static_cast<std::size_t>(env.n()), -resend_interval_);
  active_.push_back(std::move(st));
  maybe_perform(active_.back(), env);  // n == 1: own echo is a majority
}

void UdcMajorityProcess::maybe_perform(ActionState& st, Env& env) {
  if (st.performed) return;
  if (st.echoed_by.size() < env.n() / 2 + 1) return;
  st.performed = true;
  env.perform(st.alpha);
}

void UdcMajorityProcess::on_init(ActionId alpha, Env& env) {
  enter_state(alpha, env);
}

void UdcMajorityProcess::on_receive(ProcessId from, const Message& msg,
                                    Env& env) {
  if (msg.kind != MsgKind::kAlpha) return;
  enter_state(msg.action, env);
  if (ActionState* st = find(msg.action)) {
    st->echoed_by.insert(from);
    maybe_perform(*st, env);
  }
}

void UdcMajorityProcess::on_tick(Env& env) {
  // Echo forever (paced): the retransmission is what carries both the
  // content and the quorum evidence through the lossy network; there is no
  // detector to tell us when a peer is beyond convincing.
  if (!env.outbox_empty() || active_.empty()) return;
  const std::size_t peers = static_cast<std::size_t>(env.n()) - 1;
  if (peers == 0) return;
  const std::size_t total = active_.size() * peers;
  for (std::size_t probe = 0; probe < total; ++probe) {
    std::size_t slot = cursor_ % total;
    cursor_ = (cursor_ + 1) % total;
    ActionState& st = active_[slot / peers];
    ProcessId to = static_cast<ProcessId>(slot % peers);
    if (to >= env.self()) ++to;
    Time& last = st.last_sent[static_cast<std::size_t>(to)];
    if (env.now() - last < resend_interval_) continue;
    last = env.now();
    Message m;
    m.kind = MsgKind::kAlpha;
    m.action = st.alpha;
    env.send(to, m);
    return;
  }
}

}  // namespace udc
