#include "udc/coord/udc_generalized.h"

#include <algorithm>

namespace udc {

UdcGeneralizedProcess::ActionState* UdcGeneralizedProcess::find(
    ActionId alpha) {
  for (auto& st : active_) {
    if (st.alpha == alpha) return &st;
  }
  return nullptr;
}

void UdcGeneralizedProcess::enter_state(ActionId alpha, Env& env) {
  if (find(alpha) != nullptr) return;
  ActionState st;
  st.alpha = alpha;
  st.last_sent.assign(static_cast<std::size_t>(env.n()), -resend_interval_);
  active_.push_back(std::move(st));
  maybe_perform(active_.back(), env);
}

void UdcGeneralizedProcess::maybe_perform(ActionState& st, Env& env) {
  if (st.performed) return;
  const int n = env.n();
  for (const Report& rep : reports_) {
    if (n - rep.s.size() <= std::min(t_, n - 1) - rep.k) continue;
    // Need acks from everyone outside S (self counts for free).
    ProcSet needed = rep.s.complement(n);
    needed.erase(env.self());
    if (needed.subset_of(st.acked)) {
      st.performed = true;
      env.perform(st.alpha);
      return;
    }
  }
}

void UdcGeneralizedProcess::on_init(ActionId alpha, Env& env) {
  enter_state(alpha, env);
}

void UdcGeneralizedProcess::on_receive(ProcessId from, const Message& msg,
                                       Env& env) {
  if (msg.kind == MsgKind::kAlpha) {
    Message ack;
    ack.kind = MsgKind::kAck;
    ack.action = msg.action;
    env.send(from, ack);
    enter_state(msg.action, env);
  } else if (msg.kind == MsgKind::kAck) {
    if (ActionState* st = find(msg.action)) {
      st->acked.insert(from);
      maybe_perform(*st, env);
    }
  }
}

void UdcGeneralizedProcess::on_suspect_gen(ProcSet s, int k, Env& env) {
  // Keep only one report per S (the one with the largest k dominates).
  for (Report& rep : reports_) {
    if (rep.s == s) {
      rep.k = std::max(rep.k, k);
      for (auto& st : active_) maybe_perform(st, env);
      return;
    }
  }
  reports_.push_back(Report{s, k});
  for (auto& st : active_) maybe_perform(st, env);
}

void UdcGeneralizedProcess::on_tick(Env& env) {
  if (!env.outbox_empty() || active_.empty()) return;
  const int n = env.n();
  const std::size_t peers = static_cast<std::size_t>(n) - 1;
  if (peers == 0) return;
  const std::size_t total = active_.size() * peers;
  for (std::size_t probe = 0; probe < total; ++probe) {
    std::size_t slot = cursor_ % total;
    cursor_ = (cursor_ + 1) % total;
    ActionState& st = active_[slot / peers];
    ProcessId to = static_cast<ProcessId>(slot % peers);
    if (to >= env.self()) ++to;
    if (st.acked.contains(to)) continue;
    Time& last = st.last_sent[static_cast<std::size_t>(to)];
    if (env.now() - last < resend_interval_) continue;
    last = env.now();
    Message m;
    m.kind = MsgKind::kAlpha;
    m.action = st.alpha;
    env.send(to, m);
    return;
  }
}

}  // namespace udc
