// The UDC protocol of Proposition 4.1: failure bound t, t-useful generalized
// failure detector, fair-lossy channels.
//
// A process in the UDC(α) state retransmits α-messages and performs α once
// there is a generalized report (S, k) it has received — any report in its
// history, they are cumulative — with
//     n - |S| > min(t, n-1) - k      (the t-usefulness inequality)
// and acknowledgments for α from ALL of Proc - S.  Intuition: the report
// guarantees that if anyone at all is correct then someone in Proc - S is,
// and that someone now shares the obligation to finish the coordination.
//
// With the trivial (S, 0) detector and t < n/2 this degenerates to "collect
// acks from some n - t processes" — exactly Gopal-Toueg (Corollary 4.2).
#pragma once

#include <cstdint>
#include <vector>

#include "udc/common/proc_set.h"
#include "udc/sim/process.h"

namespace udc {

class UdcGeneralizedProcess : public Process {
 public:
  explicit UdcGeneralizedProcess(int t, Time resend_interval = 8)
      : t_(t), resend_interval_(resend_interval) {}

  void on_init(ActionId alpha, Env& env) override;
  void on_receive(ProcessId from, const Message& msg, Env& env) override;
  void on_suspect_gen(ProcSet s, int k, Env& env) override;
  void on_tick(Env& env) override;

 private:
  struct Report {
    ProcSet s;
    int k = 0;
  };
  struct ActionState {
    ActionId alpha = kInvalidAction;
    ProcSet acked;
    bool performed = false;
    std::vector<Time> last_sent;  // per peer
  };

  void enter_state(ActionId alpha, Env& env);
  ActionState* find(ActionId alpha);
  void maybe_perform(ActionState& st, Env& env);

  int t_;
  Time resend_interval_;
  std::vector<Report> reports_;  // every generalized report ever received
  std::vector<ActionState> active_;
  std::size_t cursor_ = 0;
};

}  // namespace udc
