#include "udc/coord/udc_fip.h"

namespace udc {

void FipUdcProcess::on_receive(ProcessId from, const Message& msg, Env& env) {
  if (msg.kind == MsgKind::kInitGossip) {
    // Gossip is proof of initiation (it is only ever sent for actions whose
    // init is causally upstream), so joining the coordination is safe.
    enter_state(msg.action, env);
    return;
  }
  UdcStrongFdProcess::on_receive(from, msg, env);
}

void FipUdcProcess::on_tick(Env& env) {
  // The ack machinery has priority; gossip fills one slot per interval.
  UdcStrongFdProcess::on_tick(env);
  if (!env.outbox_empty() || active_.empty()) return;
  if (env.now() - last_gossip_ < gossip_interval_) return;
  const std::size_t peers = static_cast<std::size_t>(env.n()) - 1;
  if (peers == 0) return;
  const std::size_t total = active_.size() * peers;
  std::size_t slot = gossip_cursor_ % total;
  gossip_cursor_ = (gossip_cursor_ + 1) % total;
  ProcessId to = static_cast<ProcessId>(slot % peers);
  if (to >= env.self()) ++to;
  Message m;
  m.kind = MsgKind::kInitGossip;
  m.action = active_[slot / peers].alpha;
  env.send(to, m);
  last_gossip_ = env.now();
}

}  // namespace udc
