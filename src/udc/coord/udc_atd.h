// UDC with the ATD99 weakest detector (paper §5).
//
// The Prop 3.1 protocol gates performing on acked-or-EVER-suspected, which
// needs weak accuracy: a fixed q* whose ack is always demanded.  Under the
// strictly weaker ATD accuracy (only a ROTATING correct process is ever
// unsuspected) the cumulative gate is unsound — over time every correct
// peer gets suspected at least once, so a performer may have collected no
// correct ack at all and then die with the action.
//
// The ATD-style gate uses CURRENT suspicions instead:
//
//   perform α when every process outside Suspects_now has acked α.
//
// ATD accuracy guarantees the instantaneous unsuspected-correct process is
// in that ack set, so some correct process co-owns the action at the moment
// of performance — the same q*-argument as Prop 3.1, made per-instant.
// Strong completeness keeps the gate live (crashed peers eventually sit in
// Suspects_now permanently).  This is the algorithmic content of ATD99's
// "weakest failure detector for URB" as it manifests in our framework;
// test_atd.cc and bench_atd_weakest run both directions (the cumulative
// protocol breaking, this one working).
#pragma once

#include <cstdint>
#include <vector>

#include "udc/common/proc_set.h"
#include "udc/sim/process.h"

namespace udc {

class UdcAtdProcess : public Process {
 public:
  explicit UdcAtdProcess(Time resend_interval = 8)
      : resend_interval_(resend_interval) {}

  void on_init(ActionId alpha, Env& env) override;
  void on_receive(ProcessId from, const Message& msg, Env& env) override;
  void on_suspect(ProcSet suspects, Env& env) override;
  void on_tick(Env& env) override;

 private:
  struct ActionState {
    ActionId alpha = kInvalidAction;
    ProcSet acked;
    bool performed = false;
    std::vector<Time> last_sent;
  };

  void enter_state(ActionId alpha, Env& env);
  ActionState* find(ActionId alpha);
  void maybe_perform(ActionState& st, Env& env);

  Time resend_interval_;
  ProcSet current_suspects_;  // the latest report — NOT cumulative
  std::vector<ActionState> active_;
  std::size_t cursor_ = 0;
};

}  // namespace udc
