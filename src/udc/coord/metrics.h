// Quantitative coordination metrics: how long UDC takes and how much it
// costs, per action and per run — the measurement layer behind the
// ablation experiments (AB1) and the examples' reporting.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "udc/coord/action.h"
#include "udc/event/run.h"
#include "udc/event/system.h"

namespace udc {

// Per-action account of one run.
struct ActionMetrics {
  ActionId action = kInvalidAction;
  std::optional<Time> initiated_at;
  // First do at the initiator / any process / the LAST correct process.
  std::optional<Time> first_do;
  std::optional<Time> completed_at;  // set only if every correct process did
  // Completion latency: completed_at - initiated_at.
  std::optional<Time> latency() const {
    if (!initiated_at || !completed_at) return std::nullopt;
    return *completed_at - *initiated_at;
  }
};

ActionMetrics measure_action(const Run& r, ActionId action);

// Aggregate over a system x action set.
struct CoordinationMetrics {
  std::size_t initiated = 0;
  std::size_t completed = 0;  // completed at every correct process
  double mean_latency = 0;    // over completed actions
  Time max_latency = 0;
  double completion_rate() const {
    return initiated == 0
               ? 1.0
               : static_cast<double>(completed) /
                     static_cast<double>(initiated);
  }
};

CoordinationMetrics measure_coordination(const System& sys,
                                         std::span<const ActionId> actions);

// Network quiescence: the time of the last send event in the run (0 if the
// run is silent).  A quiescent protocol's value sits well below the
// horizon; a chattering one's hugs it (see footnote 11 / test_quiescence).
Time last_send_time(const Run& r);

// Operational counters for the live runtime (rt/): every layer — transport,
// heartbeat detector, supervisor — accumulates into one of these, and both
// the udc_rt_soak tool and the EXPERIMENTS.md RT numbers are printed from
// format_runtime_counters, so there is exactly one reporting code path.
struct RuntimeCounters {
  // Transport plane.
  std::size_t sends = 0;            // protocol-level sends handed over
  std::size_t delivered = 0;        // deliveries that reached a mailbox
  std::size_t drops = 0;            // attempts lost to the drop policy
  std::size_t retransmits = 0;      // link-layer retry attempts
  std::size_t acks = 0;             // link-layer acks received
  std::size_t abandoned = 0;        // unacked sends given up at shutdown
  std::size_t heartbeats = 0;       // heartbeat broadcasts (below the model)
  std::size_t dedup_suppressed = 0; // duplicate copies swallowed by dedup
  std::size_t acks_piggybacked = 0; // acks that rode a data frame for free
  // Failure-detection plane.
  std::size_t suspicions = 0;       // suspicions raised
  std::size_t false_suspicions = 0; // later retracted by a live heartbeat
  std::size_t trust_restores = 0;   // retractions delivered to protocols
  // Supervision plane.
  std::size_t crashes = 0;          // permanent worker crashes injected
  std::size_t restarts = 0;         // workers restarted after a crash
  std::size_t events_recorded = 0;  // model-level events in the lifted trace
  // Durability plane (store/; zero unless the run used a durable_dir).
  std::size_t wal_frames_replayed = 0;   // tail frames consumed by recoveries
  std::size_t snapshots_written = 0;     // compactions (incl. post-recovery)
  std::size_t snapshots_loaded = 0;      // recoveries that found a snapshot
  std::size_t torn_tails_truncated = 0;  // recoveries that repaired the WAL
  std::size_t recoveries_total = 0;      // completed disk recoveries
  std::size_t storage_faults_injected = 0;  // scripted faults that landed
  std::size_t sync_failures = 0;         // fsyncs swallowed by kSyncFail
  std::size_t wal_group_commits = 0;     // batched fsyncs (group commit)
  // Mailbox plane.
  std::size_t mailbox_refused = 0;       // pushes refused by a closed mailbox
  // Wire plane (net/reactor; zero unless the run crossed real sockets).
  std::size_t connects = 0;              // streams that completed a handshake
  std::size_t reconnects = 0;            // re-establishes after a stream loss
  std::size_t handshake_rejects = 0;     // hellos bounced (mismatch/refusal)
  std::size_t frames_tx = 0;             // frames queued to sockets
  std::size_t frames_rx = 0;             // frames decoded off sockets
  std::size_t crc_drops = 0;             // frames lost to checksum mismatch
  std::size_t wire_resyncs = 0;          // codec rescans for the magic pair
  std::size_t wire_drops = 0;            // kData frames eaten by the chaos shim
  std::size_t partitions_enforced = 0;   // refuse-window teardowns/bounces
  // Service plane (svc/; zero unless the run served client traffic).
  std::size_t svc_requests = 0;          // client ops received
  std::size_t svc_admitted = 0;          // ops admitted into a batch
  std::size_t svc_dups_suppressed = 0;   // retries the session table absorbed
  std::size_t svc_retry_later = 0;       // backpressure replies sent
  std::size_t svc_redirects = 0;         // kNotLeader replies sent
  std::size_t svc_batches_sealed = 0;    // batches sealed (incl. no-op fills)
  std::size_t svc_batches_committed = 0; // batches quorum-committed here
  std::size_t svc_ooo_commits = 0;       // DC2' out-of-slot-order applies
  std::size_t svc_elections = 0;         // leaderships this node assumed
  std::size_t svc_sync_rounds = 0;       // failover/catch-up sync exchanges
  std::size_t svc_adoptions = 0;         // orphaned batches re-sealed
  std::size_t svc_lease_reads = 0;       // reads served under a valid lease
  std::size_t svc_lease_denied = 0;      // reads bounced (lease invalid)

  void merge(const RuntimeCounters& other);
};

// Transport-plane counters as RELAXED ATOMICS: the data path bumps them
// lock-free from every dispatcher shard, and counters() snapshots them
// without taking any transport lock — a metrics poll never contends with a
// delivery.  Relaxed ordering is sound because each field is a statistically
// independent monotone tally: no reader infers cross-field invariants from
// a mid-flight snapshot, and the transport publishes a final consistent
// snapshot after its dispatchers are joined.
struct AtomicRuntimeCounters {
  std::atomic<std::size_t> sends{0};
  std::atomic<std::size_t> delivered{0};
  std::atomic<std::size_t> drops{0};
  std::atomic<std::size_t> retransmits{0};
  std::atomic<std::size_t> acks{0};
  std::atomic<std::size_t> abandoned{0};
  std::atomic<std::size_t> heartbeats{0};
  std::atomic<std::size_t> dedup_suppressed{0};
  std::atomic<std::size_t> acks_piggybacked{0};
  std::atomic<std::size_t> mailbox_refused{0};

  void add(std::atomic<std::size_t>& c, std::size_t v = 1) {
    c.fetch_add(v, std::memory_order_relaxed);
  }
  // Relaxed snapshot into the value struct every reporting path consumes.
  RuntimeCounters snapshot() const {
    RuntimeCounters c;
    c.sends = sends.load(std::memory_order_relaxed);
    c.delivered = delivered.load(std::memory_order_relaxed);
    c.drops = drops.load(std::memory_order_relaxed);
    c.retransmits = retransmits.load(std::memory_order_relaxed);
    c.acks = acks.load(std::memory_order_relaxed);
    c.abandoned = abandoned.load(std::memory_order_relaxed);
    c.heartbeats = heartbeats.load(std::memory_order_relaxed);
    c.dedup_suppressed = dedup_suppressed.load(std::memory_order_relaxed);
    c.acks_piggybacked = acks_piggybacked.load(std::memory_order_relaxed);
    c.mailbox_refused = mailbox_refused.load(std::memory_order_relaxed);
    return c;
  }
};

// One line, key=value pairs, stable field order — the soak tool's output and
// the EXPERIMENTS tables both come from here.
std::string format_runtime_counters(const RuntimeCounters& c);

}  // namespace udc
