// Quantitative coordination metrics: how long UDC takes and how much it
// costs, per action and per run — the measurement layer behind the
// ablation experiments (AB1) and the examples' reporting.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "udc/coord/action.h"
#include "udc/event/run.h"
#include "udc/event/system.h"

namespace udc {

// Per-action account of one run.
struct ActionMetrics {
  ActionId action = kInvalidAction;
  std::optional<Time> initiated_at;
  // First do at the initiator / any process / the LAST correct process.
  std::optional<Time> first_do;
  std::optional<Time> completed_at;  // set only if every correct process did
  // Completion latency: completed_at - initiated_at.
  std::optional<Time> latency() const {
    if (!initiated_at || !completed_at) return std::nullopt;
    return *completed_at - *initiated_at;
  }
};

ActionMetrics measure_action(const Run& r, ActionId action);

// Aggregate over a system x action set.
struct CoordinationMetrics {
  std::size_t initiated = 0;
  std::size_t completed = 0;  // completed at every correct process
  double mean_latency = 0;    // over completed actions
  Time max_latency = 0;
  double completion_rate() const {
    return initiated == 0
               ? 1.0
               : static_cast<double>(completed) /
                     static_cast<double>(initiated);
  }
};

CoordinationMetrics measure_coordination(const System& sys,
                                         std::span<const ActionId> actions);

// Network quiescence: the time of the last send event in the run (0 if the
// run is silent).  A quiescent protocol's value sits well below the
// horizon; a chattering one's hugs it (see footnote 11 / test_quiescence).
Time last_send_time(const Run& r);

}  // namespace udc
