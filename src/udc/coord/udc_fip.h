// Full-information variant of the Prop 3.1 protocol — the A4 discussion
// made executable.
//
// The paper justifies assumption A4 ("if nobody in S knows φ, there is a
// point where φ is false that they all consider possible") by supposing the
// processes run a full-information protocol: whenever p sends to q, it
// tells q everything it knows.  Our plain protocols are deliberately lean —
// an α-message carries one action id — which leaves knowledge of OTHER
// actions to travel only on their own messages.  FipUdcProcess closes that
// gap for the facts A4 actually ranges over (which actions were initiated):
// alongside the ack machinery it continuously gossips kInitGossip records
// for every action it knows to be initiated, and treats received gossip as
// proof of initiation (entering the UDC state for it).
//
// The effect, measured by test_fip.cc: knowledge of inits spreads along
// every message chain (not just α-chains), A4 witness coverage rises, and
// the UDC guarantee is untouched — DC3 stays safe because gossip is only
// ever emitted for genuinely initiated actions.
#pragma once

#include <vector>

#include "udc/coord/udc_strongfd.h"

namespace udc {

class FipUdcProcess : public UdcStrongFdProcess {
 public:
  explicit FipUdcProcess(Time resend_interval = 8, Time gossip_interval = 10)
      : UdcStrongFdProcess(resend_interval),
        gossip_interval_(gossip_interval) {}

  void on_receive(ProcessId from, const Message& msg, Env& env) override;
  void on_tick(Env& env) override;

 private:
  Time gossip_interval_;
  Time last_gossip_ = -100;
  std::size_t gossip_cursor_ = 0;  // round-robin over (action, peer)
};

}  // namespace udc
