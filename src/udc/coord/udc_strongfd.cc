#include "udc/coord/udc_strongfd.h"

namespace udc {

UdcStrongFdProcess::ActionState* UdcStrongFdProcess::find(ActionId alpha) {
  for (auto& st : active_) {
    if (st.alpha == alpha) return &st;
  }
  return nullptr;
}

void UdcStrongFdProcess::enter_state(ActionId alpha, Env& env) {
  if (find(alpha) != nullptr) return;
  ActionState st;
  st.alpha = alpha;
  st.last_sent.assign(static_cast<std::size_t>(env.n()), -resend_interval_);
  active_.push_back(std::move(st));
  maybe_perform(active_.back(), env);  // n == 1 edge case
}

void UdcStrongFdProcess::maybe_perform(ActionState& st, Env& env) {
  if (st.performed) return;
  for (ProcessId q = 0; q < env.n(); ++q) {
    if (q == env.self()) continue;
    if (!st.acked.contains(q) && !ever_suspected_.contains(q)) return;
  }
  st.performed = true;
  env.perform(st.alpha);
}

void UdcStrongFdProcess::on_init(ActionId alpha, Env& env) {
  enter_state(alpha, env);
}

void UdcStrongFdProcess::on_receive(ProcessId from, const Message& msg,
                                    Env& env) {
  if (msg.kind == MsgKind::kAlpha) {
    // Ack every α-message (retransmissions included: our ack may have been
    // lost) and join the coordination.
    Message ack;
    ack.kind = MsgKind::kAck;
    ack.action = msg.action;
    env.send(from, ack);
    enter_state(msg.action, env);
  } else if (msg.kind == MsgKind::kAck) {
    if (ActionState* st = find(msg.action)) {
      st->acked.insert(from);
      maybe_perform(*st, env);
    }
  }
}

void UdcStrongFdProcess::on_peer_recovered(ProcessId q, Env& env) {
  // q restarted from a possibly lossy durable log, so the ack we hold from
  // q may certify knowledge q has forgotten — and this protocol's
  // retransmission toward q STOPS once that ack is in hand, which is
  // exactly the state that would strand a forgetful q and break DC2'.
  // Withdraw q's acks: retransmission resumes, q re-acks from its rebuilt
  // state, and uniformity is re-established by repetition.  ever_suspected_
  // stays cumulative (the proposition only needs impermanent reports), and
  // performed flags are never unwound — recovery may deepen an ack debt,
  // never un-perform an action.
  for (ActionState& st : active_) {
    if (!st.acked.contains(q)) continue;
    st.acked.erase(q);
    st.last_sent[static_cast<std::size_t>(q)] = env.now() - resend_interval_;
  }
}

void UdcStrongFdProcess::on_suspect(ProcSet suspects, Env& env) {
  ever_suspected_ |= suspects;
  for (auto& st : active_) maybe_perform(st, env);
}

void UdcStrongFdProcess::on_tick(Env& env) {
  // Retransmit α-messages to not-yet-acked peers, one per idle tick,
  // round-robin across (action, peer) pairs.  Per the proposition's
  // protocol, retransmission continues even after performing, until every
  // ack is in hand (which may never happen if a peer crashed).
  if (!env.outbox_empty() || active_.empty()) return;
  const int n = env.n();
  const std::size_t peers = static_cast<std::size_t>(n) - 1;
  if (peers == 0) return;
  const std::size_t total = active_.size() * peers;
  for (std::size_t probe = 0; probe < total; ++probe) {
    std::size_t slot = cursor_ % total;
    cursor_ = (cursor_ + 1) % total;
    ActionState& st = active_[slot / peers];
    if (quiescent_ && st.performed) continue;  // footnote 11
    ProcessId to = static_cast<ProcessId>(slot % peers);
    if (to >= env.self()) ++to;
    if (st.acked.contains(to)) continue;
    Time& last = st.last_sent[static_cast<std::size_t>(to)];
    if (env.now() - last < resend_interval_) continue;
    last = env.now();
    Message m;
    m.kind = MsgKind::kAlpha;
    m.action = st.alpha;
    env.send(to, m);
    return;
  }
}

}  // namespace udc
