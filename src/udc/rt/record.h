// TraceRecorder: lifts a concurrent execution into the paper's run model.
//
// The model checker builds runs directly; the live runtime has to *earn* one.
// Every observable event (send, recv, do, init, suspect, crash) from every
// worker thread passes through one recorder, which serializes them under a
// mutex and stamps each with a fresh tick of a global logical clock.  The
// total order this produces is exactly a run satisfying R1-R4:
//
//   R1  processes start with empty histories (the builder starts empty),
//   R2  one event per process per step, trivially: one event per *step*,
//   R3  sends are recorded before the transport ever sees the message, so a
//       matching send always precedes its receive in the total order,
//   R4  a crash seals the process inside the same critical section that
//       records it, so no later event of that process can be admitted.
//
// The supervisor bumps the clock on idle polls, so logical time advances even
// when no events flow (heartbeat timeouts and fault-script windows need time
// to pass during silence).  The recorder also doubles as each process's
// write-ahead log: a restarted worker replays its recorded local history to
// reconstruct protocol state, which is what makes restarts uniformity-safe.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "udc/common/types.h"
#include "udc/event/event.h"
#include "udc/event/run.h"

namespace udc {

// Durable mirror of the recorder's appends (store/process_store.h is the
// real implementation).  Called inside the recorder's critical section,
// immediately after the event is admitted, so the on-disk order per process
// IS the recorded order and no admitted event can be lost between the two.
class WalSink {
 public:
  virtual ~WalSink() = default;
  virtual void append(ProcessId p, Time t, const Event& e) = 0;
};

class TraceRecorder {
 public:
  // `sink`, when non-null, receives every admitted event (including kCrash)
  // under the recorder's mutex; it must outlive the recorder.
  explicit TraceRecorder(int n, WalSink* sink = nullptr);

  // Appends `e` to p's history at a fresh tick.  Returns the tick, or
  // nullopt if p is sealed (crashed permanently) — the caller must then
  // treat the event as never having happened.
  std::optional<Time> record(ProcessId p, const Event& e);

  // Records a kCrash event and seals p atomically (R4).  nullopt if p was
  // already sealed.
  std::optional<Time> record_crash(ProcessId p);

  // Advances the logical clock by one empty step.  Called by the supervisor
  // on idle polls so that time passes during network silence.
  Time bump();

  Time now() const;
  std::size_t event_count() const;
  bool sealed(ProcessId p) const;

  // Snapshot of p's recorded events, in order — the write-ahead log a
  // restarted worker replays through a fresh protocol instance.
  std::vector<Event> history_of(ProcessId p) const;

  // Builds the Run (horizon = current clock).  Run's constructor re-validates
  // R1-R4 from scratch, so a lift that violates the model throws rather than
  // producing a bogus conformance verdict.
  Run lift() const;

 private:
  struct TimedEvent {
    Time t;
    Event e;
  };

  mutable std::mutex mu_;
  WalSink* sink_ = nullptr;
  Time now_ = 0;
  std::size_t count_ = 0;
  std::vector<std::vector<TimedEvent>> histories_;  // per process, t ascending
  std::vector<bool> sealed_;
};

}  // namespace udc
