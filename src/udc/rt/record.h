// TraceRecorder: lifts a concurrent execution into the paper's run model.
//
// The model checker builds runs directly; the live runtime has to *earn* one.
// Every observable event (send, recv, do, init, suspect, crash) from every
// worker thread passes through the recorder.  The original implementation
// (kept below as SerialTraceRecorder — the conformance baseline the property
// tests and the throughput bench compare against) serialized every event
// from every worker through ONE mutex, which capped recording throughput at
// one core regardless of n.  The sharded recorder removes that global
// serialization point without weakening any model guarantee:
//
//   * the logical clock is a single ATOMIC counter; every record takes a
//     fresh tick with fetch_add, so ticks are globally unique and any two
//     causally ordered records get causally ordered ticks,
//   * each process's event log is its own shard, guarded by a per-process
//     mutex (the owning worker and the supervisor's record_crash are the
//     only writers), so appends on different processes never contend,
//   * lift() merges the shards by tick — a deterministic total order.
//
// Why the merged order is still a run satisfying R1-R4:
//
//   R1  processes start with empty histories (the builder starts empty),
//   R2  one event per process per step: ticks are globally unique, so each
//       step of the merged order contains exactly one event,
//   R3  the sender takes its tick and appends the send to its shard BEFORE
//       the transport ever sees the message (record-then-send inside
//       RtEnv::send); the receive is recorded only after the message came
//       out of the transport, so the receive's fetch_add happens-after the
//       send's and returns a strictly larger tick.  The send tick is also
//       stamped into the transport envelope so the receiving worker can
//       assert recv_tick > send_tick at runtime rather than trusting this
//       argument,
//   R4  record_crash seals the process inside the same per-process critical
//       section that appends kCrash, so no later event of that process can
//       be admitted — and no other process's shard is involved in R4 at all.
//
// Run's constructor re-validates R1-R4 from scratch on every lift(), so the
// sharded fast path is backed by the same safety net the serial recorder
// had: a merge that violated the model would throw, never produce a bogus
// conformance verdict.
//
// The supervisor bumps the clock on idle polls, so logical time advances
// even when no events flow (heartbeat timeouts and fault-script windows need
// time to pass during silence).  The recorder also doubles as each process's
// write-ahead log: a restarted worker replays its recorded local history to
// reconstruct protocol state, which is what makes restarts uniformity-safe.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "udc/common/types.h"
#include "udc/event/event.h"
#include "udc/event/run.h"

namespace udc {

// Durable mirror of the recorder's appends (store/process_store.h is the
// real implementation).  append() is called inside the owning process's
// per-shard critical section, immediately after the event is admitted, so
// the on-disk order per process IS the recorded order and no admitted event
// can be lost between the two.  Different processes' appends run
// CONCURRENTLY under the sharded recorder — implementations must be safe
// for that (ProcessStore is per-process, so it is).  seal() fires after a
// kCrash append (still under the shard lock): a durable sink should flush
// that process's batched writes so the crash record is on disk before the
// supervisor moves on (group commit's flush_on_seal).
class WalSink {
 public:
  virtual ~WalSink() = default;
  virtual void append(ProcessId p, Time t, const Event& e) = 0;
  virtual void seal(ProcessId /*p*/) {}
};

class TraceRecorder {
 public:
  // `sink`, when non-null, receives every admitted event (including kCrash)
  // under the per-process shard mutex; it must outlive the recorder.
  explicit TraceRecorder(int n, WalSink* sink = nullptr);

  // Appends `e` to p's history at a fresh tick.  Returns the tick, or
  // nullopt if p is sealed (crashed permanently) — the caller must then
  // treat the event as never having happened.
  std::optional<Time> record(ProcessId p, const Event& e);

  // Records a kCrash event and seals p atomically (R4).  nullopt if p was
  // already sealed.
  std::optional<Time> record_crash(ProcessId p);

  // Advances the logical clock by one empty step.  Called by the supervisor
  // on idle polls so that time passes during network silence.
  Time bump();

  Time now() const;
  std::size_t event_count() const;
  bool sealed(ProcessId p) const;

  // Snapshot of p's recorded events, in order — the write-ahead log a
  // restarted worker replays through a fresh protocol instance.
  std::vector<Event> history_of(ProcessId p) const;

  // Builds the Run (horizon = current clock) by merging the per-process
  // shards in tick order.  Takes every shard lock, so it is safe to call
  // concurrently with recording, though the runtime only lifts after the
  // workers have been joined.  Run's constructor re-validates R1-R4 from
  // scratch, so a lift that violates the model throws rather than producing
  // a bogus conformance verdict.
  Run lift() const;

 private:
  struct TimedEvent {
    Time t;
    Event e;
  };
  // One process's log.  Aligned out to its own cache line so two workers
  // recording concurrently never false-share lock words.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::vector<TimedEvent> log;
    bool sealed = false;
  };

  // No event counter lives here: now_ is the only shared word the record
  // hot path touches, and event_count() sums the shard logs on demand (it
  // is a supervisor-poll rate, not a per-event one).
  std::atomic<Time> now_{0};
  WalSink* sink_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;  // per process, t ascending
};

// The PR-3 single-mutex recorder, verbatim: every event from every worker
// serialized through one lock.  Kept as the semantics baseline — the
// concurrent-recording property test replays the sharded recorder's merged
// order through one of these and demands bit-identical verdicts, and
// bench_rt_throughput measures the sharded speedup against it.  Not used by
// the live runtime.
class SerialTraceRecorder {
 public:
  explicit SerialTraceRecorder(int n, WalSink* sink = nullptr);

  std::optional<Time> record(ProcessId p, const Event& e);
  std::optional<Time> record_crash(ProcessId p);
  Time bump();

  Time now() const;
  std::size_t event_count() const;
  bool sealed(ProcessId p) const;
  std::vector<Event> history_of(ProcessId p) const;
  Run lift() const;

 private:
  struct TimedEvent {
    Time t;
    Event e;
  };

  mutable std::mutex mu_;
  WalSink* sink_ = nullptr;
  Time now_ = 0;
  std::size_t count_ = 0;
  std::vector<std::vector<TimedEvent>> histories_;  // per process, t ascending
  std::vector<bool> sealed_;
};

}  // namespace udc
