#include "udc/rt/runtime.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "udc/chaos/registry.h"
#include "udc/common/check.h"
#include "udc/common/rng.h"
#include "udc/coord/action.h"
#include "udc/coord/udc_majority.h"
#include "udc/coord/udc_strongfd.h"
#include "udc/rt/mailbox.h"
#include "udc/rt/record.h"
#include "udc/store/group_commit.h"
#include "udc/store/process_store.h"

namespace udc {

FaultScript sanitize_for_live(const FaultScript& script, int n, int t,
                              Time window_cap) {
  UDC_CHECK(n >= 1 && n <= kMaxProcesses, "sanitize_for_live: bad n");
  UDC_CHECK(t >= 0 && t < n, "sanitize_for_live: bad t");
  UDC_CHECK(window_cap >= 1, "sanitize_for_live: bad window cap");
  const ProcSet all = ProcSet::full(n);
  FaultScript out;

  // A process crashes once; the failure bound t caps how many do.  Keep the
  // earliest injection per victim, then the t earliest victims overall.
  std::map<ProcessId, Time> first_crash;
  for (const CrashInjection& c : script.crashes) {
    if (c.victim < 0 || c.victim >= n) continue;
    Time at = std::max<Time>(c.at, 1);
    auto [it, fresh] = first_crash.emplace(c.victim, at);
    if (!fresh) it->second = std::min(it->second, at);
  }
  for (const auto& [victim, at] : first_crash) {
    out.crashes.push_back({victim, at});
  }
  std::sort(out.crashes.begin(), out.crashes.end(),
            [](const CrashInjection& a, const CrashInjection& b) {
              return a.at != b.at ? a.at < b.at : a.victim < b.victim;
            });
  if (static_cast<int>(out.crashes.size()) > t) {
    out.crashes.resize(static_cast<std::size_t>(t));
  }

  // Unbounded fault windows would starve a live run forever; clamp every
  // "never heals" to begin + window_cap logical ticks, after which R5-style
  // retransmission delivers whatever is still pending.
  for (PartitionWindow w : script.partitions) {
    w.senders &= all;
    w.recipients &= all;
    if (w.senders.empty() || w.recipients.empty()) continue;
    if (w.heal == kTimeMax || w.heal > w.from + window_cap) {
      w.heal = w.from + window_cap;
    }
    out.partitions.push_back(w);
  }
  for (SilenceWindow s : script.silences) {
    if (s.from < 0 || s.from >= n || s.to < 0 || s.to >= n) continue;
    if (s.end == kTimeMax || s.end > s.begin + window_cap) {
      s.end = s.begin + window_cap;
    }
    out.silences.push_back(s);
  }
  for (BurstSegment b : script.bursts) {
    if (b.end == kTimeMax || b.end > b.begin + window_cap) {
      b.end = b.begin + window_cap;
    }
    out.bursts.push_back(b);
  }
  // Lies are oracle directives; the live runtime has no oracle to corrupt —
  // its detector is a real program whose misbehavior comes from real loss.

  // Storage faults attack durable state at kill/recovery time, not the
  // wire, so their windows need no clamping: an unbounded window just means
  // "whenever the kill lands".  kInvalidProcess targets every process.
  for (const StorageFault& f : script.storage_faults) {
    if (f.victim != kInvalidProcess && (f.victim < 0 || f.victim >= n)) {
      continue;
    }
    out.storage_faults.push_back(f);
  }
  return out;
}

// Protocols under live test get the coarser RT retransmission pacing;
// anything else resolves through the ordinary chaos registry.
ProtocolFactory live_protocol_factory(const std::string& name, int t,
                                      Time resend_interval) {
  if (name == "strongfd") {
    return [resend_interval](ProcessId) {
      return std::make_unique<UdcStrongFdProcess>(resend_interval);
    };
  }
  if (name == "majority") {
    return [resend_interval](ProcessId) {
      return std::make_unique<UdcMajorityProcess>(resend_interval);
    };
  }
  return protocol_factory_by_name(name, t);
}

namespace {

// Init/do bookkeeping shared by workers and the supervisor's completion
// detector.  `initiated` holds actions whose kInit was actually recorded;
// `performed` holds (process, action) pairs.
struct Board {
  std::mutex mu;
  std::set<ActionId> initiated;
  std::set<std::pair<ProcessId, ActionId>> performed;

  void note_init(ActionId a) {
    std::lock_guard<std::mutex> lock(mu);
    initiated.insert(a);
  }
  void note_do(ProcessId p, ActionId a) {
    std::lock_guard<std::mutex> lock(mu);
    performed.insert({p, a});
  }
  bool has_init(ActionId a) {
    std::lock_guard<std::mutex> lock(mu);
    return initiated.count(a) > 0;
  }
};

// The live Env.  In live mode every intent is recorded first, then acted
// on — record-before-send is what gives the lifted run R3.  In replay mode
// (rebuilding a restarted worker's protocol state from the write-ahead log)
// sends are swallowed — the peers' retransmissions make them moot — and
// perform() records only actions the log does NOT already contain a kDo
// for: that closes the crash-between-recv-and-do window without double
// recording the ones the previous incarnation did perform.
class RtEnv final : public Env {
 public:
  RtEnv(ProcessId self, int n, TraceRecorder& rec, RtTransport& transport,
        Board& board)
      : self_(self), n_(n), rec_(rec), transport_(transport), board_(board) {}

  void begin_replay(std::set<ActionId> already_performed) {
    live_ = false;
    wal_performed_ = std::move(already_performed);
  }
  void end_replay() { live_ = true; }

  ProcessId self() const override { return self_; }
  int n() const override { return n_; }
  Time now() const override { return rec_.now(); }

  void send(ProcessId to, const Message& msg) override {
    if (!live_ || dead_) return;
    if (auto tick = rec_.record(self_, Event::send(to, msg))) {
      // The recorded tick rides the transport envelope so the receiver can
      // assert recv_tick > send_tick — R3, checked operationally.
      transport_.send(self_, to, msg, *tick);
    } else {
      dead_ = true;
    }
  }

  void perform(ActionId alpha) override {
    if (dead_) return;
    if (!live_ && wal_performed_.count(alpha) > 0) {
      board_.note_do(self_, alpha);
      return;
    }
    if (rec_.record(self_, Event::do_action(alpha))) {
      board_.note_do(self_, alpha);
    } else {
      dead_ = true;
    }
  }

  bool outbox_empty() const override { return true; }
  std::size_t outbox_size() const override { return 0; }
  bool dead() const { return dead_; }

 private:
  ProcessId self_;
  int n_;
  TraceRecorder& rec_;
  RtTransport& transport_;
  Board& board_;
  bool live_ = true;
  bool dead_ = false;  // recorder sealed us: permanent crash took effect
  std::set<ActionId> wal_performed_;
};

// Mirrors every recorded event into the owning process's durable store.
// Runs inside the recorder's per-process critical section, so the on-disk
// order per process is exactly the recorded order (different processes'
// appends run concurrently; ProcessStore is per-process, so that is fine).
class StoreSink final : public WalSink {
 public:
  explicit StoreSink(std::vector<std::unique_ptr<ProcessStore>>& stores)
      : stores_(stores) {}
  void append(ProcessId p, Time t, const Event& e) override {
    stores_[static_cast<std::size_t>(p)]->append(t, e);
  }
  // flush_on_seal: a kCrash record must not sit in a group-commit batch —
  // it is the last thing this process will ever write.
  void seal(ProcessId p) override {
    stores_[static_cast<std::size_t>(p)]->flush();
  }

 private:
  std::vector<std::unique_ptr<ProcessStore>>& stores_;
};

// Detector counters a worker leaves behind at exit; accumulated across the
// incarnations of one process.
struct WorkerResult {
  std::size_t suspicions = 0;
  std::size_t false_suspicions = 0;
  std::size_t trust_restores = 0;
};

struct WorkerArgs {
  ProcessId id = 0;
  int n = 0;
  std::shared_ptr<Mailbox> mailbox;
  TraceRecorder* rec = nullptr;
  RtTransport* transport = nullptr;
  Board* board = nullptr;
  const ProtocolFactory* factory = nullptr;
  HeartbeatOptions hb;
  std::vector<Event> wal;  // empty for the first incarnation
  // Durable restarts only: inits the disk forgot (recorded by the previous
  // incarnation, absent from the recovered log) to re-apply during replay,
  // and whether to broadcast the below-model kRejoin beacon after it.
  std::vector<ActionId> reinit;
  bool announce_recovery = false;
  WorkerResult* result = nullptr;
};

void worker_main(WorkerArgs args) {
  std::unique_ptr<Process> proto = (*args.factory)(args.id);
  RtEnv env(args.id, args.n, *args.rec, *args.transport, *args.board);

  if (args.wal.empty() && args.reinit.empty()) {
    proto->on_start(env);
  } else {
    // Restarted incarnation: rebuild protocol state by replaying the local
    // history this process already recorded (its write-ahead log).
    std::set<ActionId> done;
    for (const Event& e : args.wal) {
      if (e.kind == EventKind::kDo) done.insert(e.action);
    }
    env.begin_replay(std::move(done));
    proto->on_start(env);
    for (const Event& e : args.wal) {
      switch (e.kind) {
        case EventKind::kInit:
          proto->on_init(e.action, env);
          break;
        case EventKind::kRecv:
          proto->on_receive(e.peer, e.msg, env);
          break;
        case EventKind::kSuspect:
          proto->on_suspect(e.suspects, env);
          break;
        case EventKind::kSuspectGen:
          proto->on_suspect_gen(e.suspects, e.k, env);
          break;
        case EventKind::kDo:
          args.board->note_do(args.id, e.action);
          break;
        case EventKind::kSend:
        case EventKind::kCrash:
          break;  // sends are regenerated by retransmission; kCrash cannot
                  // appear in a restartable process's log
      }
    }
    // Inits the durable log lost (its loss is a suffix, and kInit may be in
    // it) are re-applied here, still in replay mode: the board proves they
    // were recorded, so recording them again would duplicate the run's one
    // init event.  Sends regrow via on_tick; a lost kDo re-records (the run
    // model admits repeated do_p).
    for (ActionId a : args.reinit) proto->on_init(a, env);
    env.end_replay();
  }

  if (args.announce_recovery) {
    // Below the model: tell every peer this process restarted from disk so
    // they withdraw acks it may have forgotten (Process::on_peer_recovered).
    // Sent on the reliable ARQ path but never recorded — like heartbeats,
    // it is infrastructure beneath the paper's runs.
    Message rejoin;
    rejoin.kind = MsgKind::kRejoin;
    for (ProcessId q = 0; q < args.n; ++q) {
      if (q != args.id) args.transport->send(args.id, q, rejoin);
    }
  }

  HeartbeatDetector detector(args.n, args.id, args.hb, args.rec->now());
  Message hb_msg;
  hb_msg.kind = MsgKind::kHeartbeat;
  Time next_hb = 0;  // announce liveness immediately

  while (true) {
    auto mail = args.mailbox->pop_for(std::chrono::microseconds(300));
    if (!mail && args.mailbox->closed()) break;
    if (mail) {
      if (mail->kind == RtMail::Kind::kStop) break;
      if (mail->kind == RtMail::Kind::kInit) {
        if (args.rec->record(args.id, Event::init(mail->action))) {
          args.board->note_init(mail->action);
          proto->on_init(mail->action, env);
        } else {
          break;  // sealed: the crash tick preceded this init
        }
      } else if (mail->msg.kind == MsgKind::kHeartbeat) {
        // Below the model: observed by the detector, never recorded.
        detector.observe_heartbeat(mail->from, args.rec->now());
      } else if (mail->msg.kind == MsgKind::kRejoin) {
        // Below the model, like the heartbeat it rode in next to: the
        // sender restarted from a possibly lossy disk; withdraw protocol
        // state that certifies knowledge it may have lost.
        proto->on_peer_recovered(mail->from, env);
      } else {
        if (auto rt = args.rec->record(args.id,
                                       Event::recv(mail->from, mail->msg))) {
          // R3, operationally: the sender recorded its kSend (taking
          // send_tick from the shared clock) strictly before the transport
          // saw the message, so our tick must exceed it.
          UDC_CHECK(mail->send_tick == 0 || *rt > mail->send_tick,
                    "rt: recv tick did not exceed send tick (R3)");
          proto->on_receive(mail->from, mail->msg, env);
        } else {
          break;
        }
      }
    }
    if (env.dead()) break;

    Time now = args.rec->now();
    if (now >= next_hb) {
      for (ProcessId q = 0; q < args.n; ++q) {
        if (q != args.id) args.transport->send_heartbeat(args.id, q, hb_msg);
      }
      next_hb = now + args.hb.interval;
    }
    if (auto report = detector.poll(now)) {
      if (args.rec->record(args.id, Event::suspect(*report))) {
        proto->on_suspect(*report, env);
      } else {
        break;
      }
    }
    proto->on_tick(env);
    if (env.dead()) break;
  }

  args.result->suspicions += detector.suspicions_raised();
  args.result->false_suspicions += detector.false_suspicions();
  args.result->trust_restores += detector.trust_restores();
}

}  // namespace

RtVerdict run_live(const RtOptions& opts) {
  UDC_CHECK(opts.n >= 1 && opts.n <= kMaxProcesses, "run_live: bad n");
  UDC_CHECK(opts.t >= 0 && opts.t < opts.n, "run_live: bad t");
  UDC_CHECK(opts.resend_interval >= 1, "run_live: bad resend interval");
  UDC_CHECK(opts.restart_after >= 1, "run_live: bad restart delay");
  UDC_CHECK(opts.max_events >= 1, "run_live: bad event cap");
  for (const InitDirective& d : opts.workload) {
    UDC_CHECK(d.p >= 0 && d.p < opts.n, "run_live: workload names bad owner");
    UDC_CHECK(action_owner(d.action) == d.p,
              "run_live: directive owner mismatch");
  }

  const FaultScript script = sanitize_for_live(opts.script, opts.n, opts.t);
  Budget budget = opts.budget;
  if (!budget.has_deadline()) {
    budget.with_deadline(opts.default_deadline);
  }

  // Durable mode: every recorded event is mirrored to a per-process disk
  // store, and restarts recover from disk under the script's storage
  // faults.  Declared before the recorder so the sink outlives it.
  const bool durable = opts.restartable_crashes && !opts.durable_dir.empty();
  std::vector<std::unique_ptr<ProcessStore>> stores;
  StoreSink sink(stores);
  if (durable) {
    std::filesystem::create_directories(opts.durable_dir);
    stores.reserve(static_cast<std::size_t>(opts.n));
    for (ProcessId p = 0; p < opts.n; ++p) {
      std::vector<StorageFault> faults;
      for (const StorageFault& f : script.storage_faults) {
        if (f.victim == p || f.victim == kInvalidProcess) faults.push_back(f);
      }
      stores.push_back(std::make_unique<ProcessStore>(
          opts.durable_dir, p, opts.store, std::move(faults)));
    }
  }
  Rng fault_rng(opts.seed ^ 0x73746f7265ULL);  // "store"

  // Group commit: one flusher amortizes the fsync barriers across all
  // stores, batching each round through the configured SyncBarrier engine.
  // Declared after the stores (it holds raw pointers into them) and
  // stopped explicitly before counters are read.
  std::optional<GroupCommitter> committer;
  if (durable && opts.store.group_commit) {
    committer.emplace(
        GroupCommitOptions{opts.store.barrier, opts.store.flusher_threads});
    for (auto& ps : stores) committer->attach(ps.get());
  }

  TraceRecorder rec(opts.n, durable ? &sink : nullptr);
  Board board;
  const ProtocolFactory factory =
      live_protocol_factory(opts.protocol, opts.t, opts.resend_interval);

  // Mailbox registry: the transport's dispatcher resolves recipients here;
  // the supervisor swaps entries on restart, so access is mutex-guarded.
  std::mutex slots_mu;
  std::vector<std::shared_ptr<Mailbox>> slots(
      static_cast<std::size_t>(opts.n));
  for (auto& s : slots) s = std::make_shared<Mailbox>();

  std::atomic<std::size_t> mailbox_refused{0};
  RtTransport transport(
      opts.n, opts.transport,
      std::make_shared<ScriptDropPolicy>(script, opts.background_drop),
      opts.seed, [&rec] { return rec.now(); },
      [&slots_mu, &slots, &mailbox_refused](ProcessId from, ProcessId to,
                                            const Message& msg,
                                            Time send_tick) {
        std::shared_ptr<Mailbox> mb;
        {
          std::lock_guard<std::mutex> lock(slots_mu);
          mb = slots[static_cast<std::size_t>(to)];
        }
        RtMail m;
        m.kind = RtMail::Kind::kDeliver;
        m.from = from;
        m.msg = msg;
        m.send_tick = send_tick;
        if (mb->push(std::move(m)) == MailboxPush::kAccepted) return true;
        // Refused: the process is down.  The transport treats this as
        // channel loss and keeps retrying; we only account for it.
        mailbox_refused.fetch_add(1, std::memory_order_relaxed);
        return false;
      });

  struct WorkerState {
    std::thread thread;
    WorkerResult result;
    bool down = false;  // restartable-crash window: awaiting restart
    Time restart_at = 0;
  };
  std::vector<WorkerState> workers(static_cast<std::size_t>(opts.n));

  auto spawn = [&](ProcessId p, std::vector<Event> wal,
                   std::vector<ActionId> reinit, bool announce) {
    WorkerArgs args;
    args.id = p;
    args.n = opts.n;
    {
      std::lock_guard<std::mutex> lock(slots_mu);
      args.mailbox = slots[static_cast<std::size_t>(p)];
    }
    args.rec = &rec;
    args.transport = &transport;
    args.board = &board;
    args.factory = &factory;
    args.hb = opts.heartbeat;
    args.wal = std::move(wal);
    args.reinit = std::move(reinit);
    args.announce_recovery = announce;
    args.result = &workers[static_cast<std::size_t>(p)].result;
    workers[static_cast<std::size_t>(p)].thread =
        std::thread(worker_main, std::move(args));
  };
  for (ProcessId p = 0; p < opts.n; ++p) spawn(p, {}, {}, false);

  struct DirectiveState {
    InitDirective d;
    bool pushed = false;
    bool skipped = false;  // owner permanently crashed before injection
  };
  std::vector<DirectiveState> dirs;
  dirs.reserve(opts.workload.size());
  for (const InitDirective& d : opts.workload) dirs.push_back({d});

  struct CrashState {
    CrashInjection c;
    bool applied = false;
  };
  std::vector<CrashState> crashes;
  crashes.reserve(script.crashes.size());
  for (const CrashInjection& c : script.crashes) crashes.push_back({c});

  BudgetStatus status = BudgetStatus::kComplete;
  std::size_t crash_count = 0;
  std::size_t restart_count = 0;

  // Supervisor pacing: poll fast while events flow, back off (up to 4x)
  // while the system is quiet — an idle live run should not keep a core hot
  // just to advance the clock.  Logical windows are measured in ticks, so
  // the backoff stays small enough not to stretch heartbeat timeouts or
  // restart delays past the run's wall-clock budget.
  constexpr auto kPollMin = std::chrono::microseconds(200);
  constexpr auto kPollMax = std::chrono::microseconds(800);
  auto poll = kPollMin;
  std::size_t last_count = rec.event_count();

  for (;;) {
    std::this_thread::sleep_for(poll);
    // The idle bump keeps logical time flowing during network silence —
    // heartbeat timeouts and script windows are measured in these ticks.
    const Time tick = rec.bump();
    const std::size_t count = rec.event_count();
    poll = count == last_count ? std::min(poll * 2, kPollMax) : kPollMin;
    last_count = count;

    if (budget.deadline_expired() || rec.event_count() > opts.max_events) {
      status = BudgetStatus::kBudgetExceeded;
      break;
    }

    for (CrashState& cs : crashes) {
      if (cs.applied || tick < cs.c.at) continue;
      cs.applied = true;
      const ProcessId victim = cs.c.victim;
      if (opts.restartable_crashes) {
        // No kCrash event: in the lifted run the process merely goes silent
        // and later resumes — its queued mail (and nothing else) is lost.
        ++crash_count;
        workers[static_cast<std::size_t>(victim)].down = true;
        workers[static_cast<std::size_t>(victim)].restart_at =
            tick + opts.restart_after;
        {
          std::lock_guard<std::mutex> lock(slots_mu);
          slots[static_cast<std::size_t>(victim)]->close();
        }
        // Directives pushed into the dying mailbox but never recorded were
        // lost with it; re-arm them for after the restart.  (The guard at
        // push time re-checks the board, so a racing record is harmless.)
        std::lock_guard<std::mutex> lock(board.mu);
        for (DirectiveState& ds : dirs) {
          if (ds.d.p == victim && ds.pushed &&
              board.initiated.count(ds.d.action) == 0) {
            ds.pushed = false;
          }
        }
      } else {
        if (rec.record_crash(victim)) ++crash_count;
        {
          std::lock_guard<std::mutex> lock(slots_mu);
          slots[static_cast<std::size_t>(victim)]->close();
        }
        transport.abandon_to(victim);
      }
    }

    for (ProcessId p = 0; p < opts.n; ++p) {
      WorkerState& w = workers[static_cast<std::size_t>(p)];
      if (!w.down || tick < w.restart_at) continue;
      if (w.thread.joinable()) w.thread.join();
      ++restart_count;
      {
        std::lock_guard<std::mutex> lock(slots_mu);
        slots[static_cast<std::size_t>(p)] = std::make_shared<Mailbox>();
      }
      w.down = false;
      if (durable) {
        // Recover FROM DISK: corrupt the dead worker's files per the fault
        // script (it is joined, so nobody else touches them), repair, load
        // snapshot + tail.  The disk may have lost a recorded suffix; diff
        // against the board to re-inject forgotten inits, and have the new
        // incarnation announce itself so peers re-teach the rest.
        ProcessStore& ps = *stores[static_cast<std::size_t>(p)];
        ps.apply_kill_faults(tick, fault_rng);
        std::vector<StoreRecord> recovered = ps.recover();
        std::vector<Event> wal;
        wal.reserve(recovered.size());
        std::set<ActionId> disk_inits;
        for (const StoreRecord& r : recovered) {
          wal.push_back(r.e);
          if (r.e.kind == EventKind::kInit) disk_inits.insert(r.e.action);
        }
        std::vector<ActionId> reinit;
        {
          std::lock_guard<std::mutex> lock(board.mu);
          for (ActionId a : board.initiated) {
            if (action_owner(a) == p && disk_inits.count(a) == 0) {
              reinit.push_back(a);
            }
          }
        }
        spawn(p, std::move(wal), std::move(reinit), /*announce=*/true);
      } else {
        spawn(p, rec.history_of(p), {}, false);
      }
    }

    for (DirectiveState& ds : dirs) {
      if (ds.pushed || ds.skipped || tick < ds.d.at) continue;
      if (rec.sealed(ds.d.p)) {
        ds.skipped = true;
        continue;
      }
      if (board.has_init(ds.d.action)) {
        ds.pushed = true;  // recorded by a pre-crash incarnation
        continue;
      }
      if (workers[static_cast<std::size_t>(ds.d.p)].down) continue;
      std::shared_ptr<Mailbox> mb;
      {
        std::lock_guard<std::mutex> lock(slots_mu);
        mb = slots[static_cast<std::size_t>(ds.d.p)];
      }
      RtMail m;
      m.kind = RtMail::Kind::kInit;
      m.action = ds.d.action;
      if (mb->push(std::move(m)) == MailboxPush::kAccepted) ds.pushed = true;
    }

    // Completion: nobody awaiting restart, every directive either recorded
    // or excused by a permanent crash, and every initiated action performed
    // by every unsealed process.  (That is DC1-DC3 achieved operationally;
    // the lifted run re-proves it.)
    bool any_down = false;
    for (const WorkerState& w : workers) any_down |= w.down;
    if (any_down) continue;
    std::set<ActionId> initiated;
    std::set<std::pair<ProcessId, ActionId>> performed;
    {
      std::lock_guard<std::mutex> lock(board.mu);
      initiated = board.initiated;
      performed = board.performed;
    }
    bool resolved = true;
    for (const DirectiveState& ds : dirs) {
      // A sealed owner resolves its directives even when the init was
      // pushed but never recorded: the mail died with the process, and a
      // never-initiated action is vacuously coordinated.
      resolved &= ds.skipped || rec.sealed(ds.d.p) ||
                  (ds.pushed && initiated.count(ds.d.action) > 0);
    }
    if (!resolved) continue;
    bool done = true;
    for (ActionId a : initiated) {
      for (ProcessId p = 0; p < opts.n && done; ++p) {
        if (!rec.sealed(p) && performed.count({p, a}) == 0) done = false;
      }
      if (!done) break;
    }
    if (done) break;
  }

  {
    std::lock_guard<std::mutex> lock(slots_mu);
    for (auto& s : slots) s->close();
  }
  for (WorkerState& w : workers) {
    if (w.thread.joinable()) w.thread.join();
  }
  transport.stop();
  if (committer) committer->stop();  // final flush; counters now stable

  RtVerdict v;
  v.status = status;
  v.counters = transport.counters();
  for (const WorkerState& w : workers) {
    v.counters.suspicions += w.result.suspicions;
    v.counters.false_suspicions += w.result.false_suspicions;
    v.counters.trust_restores += w.result.trust_restores;
  }
  v.counters.crashes = crash_count;
  v.counters.restarts = restart_count;
  v.counters.events_recorded = rec.event_count();
  for (const auto& ps : stores) {
    const StoreCounters sc = ps->counters();
    v.counters.wal_frames_replayed += sc.wal_frames_replayed;
    v.counters.snapshots_written += sc.snapshots_written;
    v.counters.snapshots_loaded += sc.snapshots_loaded;
    v.counters.torn_tails_truncated += sc.torn_tails_truncated;
    v.counters.recoveries_total += sc.recoveries_total;
    v.counters.storage_faults_injected += sc.storage_faults_injected;
    v.counters.sync_failures += sc.sync_failures;
    v.counters.wal_group_commits += sc.group_commits;
  }
  v.counters.mailbox_refused +=
      mailbox_refused.load(std::memory_order_relaxed);

  v.run = rec.lift();
  v.actions = workload_actions(opts.workload);
  v.coord = opts.restartable_crashes
                ? check_nudc(*v.run, v.actions, opts.grace)
                : check_udc(*v.run, v.actions, opts.grace);
  v.fd = check_fd_properties(*v.run, opts.grace);
  v.accuracy = check_eventual_accuracy(*v.run);
  v.conformant = status == BudgetStatus::kComplete && v.coord.achieved();
  return v;
}

}  // namespace udc
