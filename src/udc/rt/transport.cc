#include "udc/rt/transport.h"

#include <algorithm>

#include "udc/common/check.h"

namespace udc {

namespace {

// Link-layer ack for pending send `seq`.  Never recorded, never handed to a
// protocol — it exists only to retire the sender's retransmission timer, but
// it crosses the reverse channel, so the drop policy gets a say.
Message make_link_ack(std::uint64_t seq) {
  Message m;
  m.kind = MsgKind::kAck;
  m.a = static_cast<std::int64_t>(seq);
  return m;
}

}  // namespace

RtTransport::RtTransport(int n, RtTransportOptions opts,
                         std::shared_ptr<DropPolicy> policy,
                         std::uint64_t seed, std::function<Time()> clock,
                         DeliverFn deliver)
    : n_(n),
      opts_(opts),
      policy_(std::move(policy)),
      clock_(std::move(clock)),
      deliver_(std::move(deliver)) {
  UDC_CHECK(n_ >= 1 && n_ <= kMaxProcesses, "RtTransport: bad process count");
  UDC_CHECK(policy_ != nullptr, "RtTransport: null drop policy");
  UDC_CHECK(opts_.min_delay.count() >= 0 &&
                opts_.max_delay >= opts_.min_delay,
            "RtTransport: bad delay range");
  UDC_CHECK(opts_.dedup_window >= 1, "RtTransport: bad dedup window");
  // Per-ordered-channel PRNG streams, mirroring Network: traffic on one
  // channel never perturbs the draws of another.
  channel_rngs_.reserve(static_cast<std::size_t>(n_) * n_);
  for (std::size_t i = 0; i < static_cast<std::size_t>(n_) * n_; ++i) {
    channel_rngs_.emplace_back(seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
  }
  channel_next_wire_.assign(static_cast<std::size_t>(n_) * n_, 0);
  dedup_.resize(static_cast<std::size_t>(n_) * n_);
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

RtTransport::~RtTransport() { stop(); }

std::size_t RtTransport::channel_index(ProcessId from, ProcessId to) const {
  return static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
         static_cast<std::size_t>(to);
}

Rng& RtTransport::channel_rng(ProcessId from, ProcessId to) {
  return channel_rngs_[channel_index(from, to)];
}

void RtTransport::push_op(Op op) {
  op.id = next_op_id_++;
  ops_.push(std::move(op));
  cv_.notify_one();
}

void RtTransport::send(ProcessId from, ProcessId to, const Message& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return;
  std::uint64_t seq = next_seq_++;
  PendingSend p{from, to, msg};
  p.wire_seq = ++channel_next_wire_[channel_index(from, to)];
  pending_.emplace(seq, std::move(p));
  ++counters_.sends;
  Op op;
  op.at = std::chrono::steady_clock::now();
  op.kind = OpKind::kAttempt;
  op.seq = seq;
  push_op(std::move(op));
}

void RtTransport::send_heartbeat(ProcessId from, ProcessId to,
                                 const Message& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return;
  ++counters_.heartbeats;
  if (policy_->drop(from, to, msg, clock_(), channel_rng(from, to))) {
    ++counters_.drops;
    return;
  }
  Rng& rng = channel_rng(from, to);
  auto span =
      static_cast<std::uint64_t>((opts_.max_delay - opts_.min_delay).count());
  Op op;
  op.at = std::chrono::steady_clock::now() + opts_.min_delay +
          std::chrono::microseconds(span == 0 ? 0 : rng.next_below(span + 1));
  op.kind = OpKind::kDeliver;
  op.seq = 0;  // heartbeat: no pending entry
  op.hb_from = from;
  op.hb_to = to;
  op.hb_msg = msg;
  push_op(std::move(op));
}

void RtTransport::abandon_to(ProcessId p) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.to == p) {
      ++counters_.abandoned;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  if (pending_.empty()) quiesce_cv_.notify_all();
}

bool RtTransport::quiesce(std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  quiesce_cv_.wait_until(lock, deadline,
                         [this] { return pending_.empty() || stopping_; });
  return pending_.empty();
}

void RtTransport::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already stopped; fall through to join in case of a racing caller.
    }
    stopping_ = true;
  }
  cv_.notify_all();
  quiesce_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

RuntimeCounters RtTransport::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::size_t RtTransport::dedup_peak() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dedup_peak_;
}

void RtTransport::dispatch_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (ops_.empty()) {
      cv_.wait(lock, [this] { return stopping_ || !ops_.empty(); });
      continue;
    }
    auto now = std::chrono::steady_clock::now();
    // Copy the deadline out of the queue: wait_until releases the lock, and
    // a concurrent push_op may reallocate the queue's storage, so a
    // reference into ops_.top() must not be held across the wait.
    const auto wake_at = ops_.top().at;
    if (wake_at > now) {
      cv_.wait_until(lock, wake_at);
      continue;
    }
    Op op = ops_.top();
    ops_.pop();
    switch (op.kind) {
      case OpKind::kAttempt:
        handle_attempt(op.seq);
        break;
      case OpKind::kDeliver:
        handle_deliver(lock, std::move(op));
        break;
      case OpKind::kAck:
        handle_ack(op.seq);
        break;
    }
  }
}

void RtTransport::handle_attempt(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // acked or abandoned meanwhile
  PendingSend& p = it->second;
  if (p.attempt > 0) ++counters_.retransmits;
  int attempt = p.attempt++;
  if (opts_.max_attempts > 0 && p.attempt > opts_.max_attempts) {
    ++counters_.abandoned;
    pending_.erase(it);
    if (pending_.empty()) quiesce_cv_.notify_all();
    return;
  }
  auto now = std::chrono::steady_clock::now();
  Rng& rng = channel_rng(p.from, p.to);
  bool dropped = policy_->drop(p.from, p.to, p.msg, clock_(), rng);
  if (dropped) {
    ++counters_.drops;
  } else {
    auto span = static_cast<std::uint64_t>(
        (opts_.max_delay - opts_.min_delay).count());
    Op del;
    del.at = now + opts_.min_delay +
             std::chrono::microseconds(span == 0 ? 0 : rng.next_below(span + 1));
    del.kind = OpKind::kDeliver;
    del.seq = seq;
    push_op(std::move(del));
  }
  // Always schedule the next attempt: it covers both a dropped attempt and a
  // delivered-but-ack-lost round trip.  A received ack erases the pending
  // entry and the retry becomes a no-op.
  Op retry;
  retry.at = now + std::chrono::microseconds(
                       backoff_delay_jittered(opts_.backoff, attempt, rng));
  retry.kind = OpKind::kAttempt;
  retry.seq = seq;
  push_op(std::move(retry));
}

void RtTransport::handle_deliver(std::unique_lock<std::mutex>& lock, Op op) {
  if (op.seq == 0) {
    // Heartbeat: fire and forget.  Refusal (process down) is just loss.
    ProcessId from = op.hb_from;
    ProcessId to = op.hb_to;
    Message msg = std::move(op.hb_msg);
    lock.unlock();
    deliver_(from, to, msg);
    lock.lock();
    return;
  }
  auto it = pending_.find(op.seq);
  if (it == pending_.end()) return;
  ProcessId from = it->second.from;
  ProcessId to = it->second.to;
  std::uint64_t wire = it->second.wire_seq;
  Message msg = it->second.msg;
  ChannelDedup& d = dedup_[channel_index(from, to)];
  bool duplicate = wire <= d.watermark || d.seen.count(wire) > 0;
  bool accepted = true;
  if (duplicate) {
    // Already surfaced (or folded into the watermark): suppress, but still
    // ack below — re-acking duplicates is what ends retransmission when
    // the first ack was lost.
    ++counters_.dedup_suppressed;
  } else {
    // First copy: hand it up, without transport locks (the recipient's
    // mailbox push takes its own lock, and the worker may call back into
    // send() from another thread meanwhile).
    lock.unlock();
    accepted = deliver_(from, to, msg);
    lock.lock();
    it = pending_.find(op.seq);  // re-validate: ack/abandon may have raced
    if (it == pending_.end()) return;
    if (accepted) {
      ++counters_.delivered;
      d.seen.insert(wire);
      // Contiguous prefix folds into the watermark...
      while (d.seen.count(d.watermark + 1) > 0) {
        d.seen.erase(d.watermark + 1);
        ++d.watermark;
      }
      // ...and reordering beyond the window folds forcibly: seqs skipped
      // over here are suppressed if they ever arrive, i.e. channel loss,
      // which protocol retransmission (a fresh wire seq) re-learns.
      while (d.seen.size() > opts_.dedup_window) {
        d.watermark = *d.seen.begin();
        d.seen.erase(d.seen.begin());
        while (d.seen.count(d.watermark + 1) > 0) {
          d.seen.erase(d.watermark + 1);
          ++d.watermark;
        }
      }
      dedup_peak_ = std::max(dedup_peak_, d.seen.size());
    }
  }
  // Ack every successfully delivered copy, duplicates included — re-acking
  // duplicates is what ends retransmission when the first ack was lost.
  if (accepted) {
    Rng& rng = channel_rng(to, from);
    if (policy_->drop(to, from, make_link_ack(op.seq), clock_(), rng)) {
      ++counters_.drops;
      return;
    }
    auto span = static_cast<std::uint64_t>(
        (opts_.max_delay - opts_.min_delay).count());
    Op ack;
    ack.at = std::chrono::steady_clock::now() + opts_.min_delay +
             std::chrono::microseconds(span == 0 ? 0 : rng.next_below(span + 1));
    ack.kind = OpKind::kAck;
    ack.seq = op.seq;
    push_op(std::move(ack));
  }
}

void RtTransport::handle_ack(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // duplicate ack
  ++counters_.acks;
  pending_.erase(it);
  if (pending_.empty()) quiesce_cv_.notify_all();
}

}  // namespace udc
