#include "udc/rt/transport.h"

#include <algorithm>

#include "udc/common/check.h"

namespace udc {

namespace {

// Link-layer ack frame for a batch of pending sends.  Never recorded, never
// handed to a protocol — it exists only to retire the sender's
// retransmission timer, but it crosses the reverse channel, so the drop
// policy gets a say (one draw per batch: the batch IS one frame).
Message make_link_ack(std::uint64_t first_seq) {
  Message m;
  m.kind = MsgKind::kAck;
  m.a = static_cast<std::int64_t>(first_seq);
  return m;
}

}  // namespace

RtTransport::RtTransport(int n, RtTransportOptions opts,
                         std::shared_ptr<DropPolicy> policy,
                         std::uint64_t seed, std::function<Time()> clock,
                         DeliverFn deliver)
    : n_(n),
      opts_(opts),
      clock_(std::move(clock)),
      deliver_(std::move(deliver)) {
  UDC_CHECK(n_ >= 1 && n_ <= kMaxProcesses, "RtTransport: bad process count");
  UDC_CHECK(policy != nullptr, "RtTransport: null drop policy");
  UDC_CHECK(opts_.min_delay.count() >= 0 &&
                opts_.max_delay >= opts_.min_delay,
            "RtTransport: bad delay range");
  UDC_CHECK(opts_.dedup_window >= 1, "RtTransport: bad dedup window");
  UDC_CHECK(opts_.shards >= 0, "RtTransport: bad shard count");
  // Per-ordered-channel PRNG streams, mirroring Network: traffic on one
  // channel never perturbs the draws of another.  Each stream is owned by
  // the shard that owns the channel's pair, so no stream needs a lock.
  const std::size_t channels = static_cast<std::size_t>(n_) * n_;
  channel_rngs_.reserve(channels);
  for (std::size_t i = 0; i < channels; ++i) {
    channel_rngs_.emplace_back(seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
  }
  channel_next_wire_.assign(channels, 0);
  dedup_.resize(channels);
  owed_acks_.resize(channels);
  ack_flush_scheduled_.assign(channels, 0);

  const int shard_count =
      opts_.shards > 0 ? opts_.shards : std::min(n_, 8);
  shards_.reserve(static_cast<std::size_t>(shard_count));
  for (int s = 0; s < shard_count; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->policy = policy->clone();
    shards_.push_back(std::move(sh));
  }
  for (auto& sh : shards_) {
    Shard* raw = sh.get();
    raw->dispatcher = std::thread([this, raw] { dispatch_loop(*raw); });
  }
}

RtTransport::~RtTransport() { stop(); }

std::size_t RtTransport::channel_index(ProcessId from, ProcessId to) const {
  return static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
         static_cast<std::size_t>(to);
}

RtTransport::Shard& RtTransport::shard_of(ProcessId a, ProcessId b) {
  // Keyed by the UNORDERED pair, so p->q data and its q->p acks always land
  // in the same shard and the ack path never crosses a shard boundary.
  const std::size_t lo = static_cast<std::size_t>(std::min(a, b));
  const std::size_t hi = static_cast<std::size_t>(std::max(a, b));
  return *shards_[(lo * static_cast<std::size_t>(n_) + hi) % shards_.size()];
}

std::chrono::microseconds RtTransport::draw_delay(Rng& rng) {
  auto span =
      static_cast<std::uint64_t>((opts_.max_delay - opts_.min_delay).count());
  return opts_.min_delay +
         std::chrono::microseconds(span == 0 ? 0 : rng.next_below(span + 1));
}

void RtTransport::push_op(Shard& sh, Op op) {
  op.id = sh.next_op_id++;
  sh.ops.push(std::move(op));
  sh.cv.notify_one();
}

void RtTransport::ensure_scan(Shard& sh,
                              std::chrono::steady_clock::time_point at) {
  if (sh.scan_scheduled && sh.scan_at <= at) return;
  Op scan;
  scan.at = at;
  scan.kind = OpKind::kRetryScan;
  push_op(sh, std::move(scan));
  sh.scan_scheduled = true;
  sh.scan_at = at;
}

void RtTransport::note_retired(std::size_t k) {
  if (k == 0) return;
  if (pending_total_.fetch_sub(k, std::memory_order_acq_rel) == k) {
    std::lock_guard<std::mutex> lock(quiesce_mu_);
    quiesce_cv_.notify_all();
  }
}

void RtTransport::send(ProcessId from, ProcessId to, const Message& msg,
                       Time send_tick) {
  if (stopped_.load(std::memory_order_acquire)) return;
  Shard& sh = shard_of(from, to);
  std::lock_guard<std::mutex> lock(sh.mu);
  if (sh.stopping) return;
  const std::uint64_t seq =
      next_seq_.fetch_add(1, std::memory_order_relaxed);
  PendingSend p{from, to, msg, send_tick};
  p.wire_seq = ++channel_next_wire_[channel_index(from, to)];
  sh.pending.emplace(seq, std::move(p));
  pending_total_.fetch_add(1, std::memory_order_acq_rel);
  counters_.add(counters_.sends);
  // First attempt runs inline on the sender's thread — the common clean-
  // channel case schedules exactly one op (the delivery) and touches only
  // this pair's shard.
  attempt_locked(sh, seq, std::chrono::steady_clock::now());
}

void RtTransport::send_heartbeat(ProcessId from, ProcessId to,
                                 const Message& msg) {
  if (stopped_.load(std::memory_order_acquire)) return;
  Shard& sh = shard_of(from, to);
  std::lock_guard<std::mutex> lock(sh.mu);
  if (sh.stopping) return;
  counters_.add(counters_.heartbeats);
  Rng& rng = channel_rngs_[channel_index(from, to)];
  if (sh.policy->drop(from, to, msg, clock_(), rng)) {
    counters_.add(counters_.drops);
    return;
  }
  Op op;
  op.at = std::chrono::steady_clock::now() + draw_delay(rng);
  op.kind = OpKind::kDeliver;
  op.seq = 0;  // heartbeat: no pending entry
  op.hb_from = from;
  op.hb_to = to;
  op.hb_msg = msg;
  push_op(sh, std::move(op));
}

void RtTransport::abandon_to(ProcessId p) {
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    std::size_t retired = 0;
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      for (auto it = sh.pending.begin(); it != sh.pending.end();) {
        if (it->second.to == p) {
          counters_.add(counters_.abandoned);
          it = sh.pending.erase(it);
          ++retired;
        } else {
          ++it;
        }
      }
    }
    note_retired(retired);
  }
}

bool RtTransport::quiesce(std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  quiesce_cv_.wait_until(lock, deadline, [this] {
    return pending_total_.load(std::memory_order_acquire) == 0 ||
           stopped_.load(std::memory_order_acquire);
  });
  return pending_total_.load(std::memory_order_acquire) == 0;
}

void RtTransport::stop() {
  const bool already = stopped_.exchange(true, std::memory_order_acq_rel);
  if (!already) {
    for (auto& shp : shards_) {
      std::lock_guard<std::mutex> lock(shp->mu);
      shp->stopping = true;
      shp->cv.notify_all();
    }
    std::lock_guard<std::mutex> lock(quiesce_mu_);
    quiesce_cv_.notify_all();
  }
  // Join unconditionally so a racing second stop() still waits for the
  // dispatchers to be gone before returning.
  for (auto& shp : shards_) {
    if (shp->dispatcher.joinable()) shp->dispatcher.join();
  }
}

RuntimeCounters RtTransport::counters() const {
  return counters_.snapshot();
}

std::size_t RtTransport::dedup_peak() const {
  std::size_t peak = 0;
  for (const auto& shp : shards_) {
    std::lock_guard<std::mutex> lock(shp->mu);
    peak = std::max(peak, shp->dedup_peak);
  }
  return peak;
}

void RtTransport::dispatch_loop(Shard& sh) {
  std::unique_lock<std::mutex> lock(sh.mu);
  while (!sh.stopping) {
    if (sh.ops.empty()) {
      sh.cv.wait(lock, [&sh] { return sh.stopping || !sh.ops.empty(); });
      continue;
    }
    auto now = std::chrono::steady_clock::now();
    // Copy the deadline out of the queue: wait_until releases the lock, and
    // a concurrent push_op may reallocate the queue's storage, so a
    // reference into ops.top() must not be held across the wait.
    const auto wake_at = sh.ops.top().at;
    if (wake_at > now) {
      sh.cv.wait_until(lock, wake_at);
      continue;
    }
    Op op = sh.ops.top();
    sh.ops.pop();
    switch (op.kind) {
      case OpKind::kDeliver:
        handle_deliver(sh, lock, std::move(op));
        break;
      case OpKind::kRetryScan:
        handle_retry_scan(sh);
        break;
      case OpKind::kAckFlush:
        handle_ack_flush(sh, op.chan);
        break;
    }
  }
}

void RtTransport::attempt_locked(Shard& sh, std::uint64_t seq,
                                 std::chrono::steady_clock::time_point now) {
  auto it = sh.pending.find(seq);
  if (it == sh.pending.end()) return;  // acked or abandoned meanwhile
  PendingSend& p = it->second;
  if (p.attempt > 0) counters_.add(counters_.retransmits);
  const int attempt = p.attempt++;
  if (opts_.max_attempts > 0 && p.attempt > opts_.max_attempts) {
    counters_.add(counters_.abandoned);
    sh.pending.erase(it);
    note_retired(1);
    return;
  }
  Rng& rng = channel_rngs_[channel_index(p.from, p.to)];
  if (sh.policy->drop(p.from, p.to, p.msg, clock_(), rng)) {
    counters_.add(counters_.drops);
  } else {
    Op del;
    del.at = now + draw_delay(rng);
    del.kind = OpKind::kDeliver;
    del.seq = seq;
    push_op(sh, std::move(del));
  }
  // Always arm the next attempt: it covers both a dropped attempt and a
  // delivered-but-ack-lost round trip.  A received ack erases the pending
  // entry and the re-attempt becomes a no-op.
  p.next_at = now + std::chrono::microseconds(
                        backoff_delay_jittered(opts_.backoff, attempt, rng));
  ensure_scan(sh, p.next_at);
}

void RtTransport::handle_retry_scan(Shard& sh) {
  sh.scan_scheduled = false;
  const auto now = std::chrono::steady_clock::now();
  // One pass over the shard's pending sends replaces the per-send retry op
  // of PR 3: collect what is due, re-attempt it, then re-arm at the
  // earliest remaining deadline.
  std::vector<std::uint64_t> due;
  for (const auto& [seq, p] : sh.pending) {
    if (p.next_at <= now) due.push_back(seq);
  }
  for (std::uint64_t seq : due) attempt_locked(sh, seq, now);
  if (sh.pending.empty()) return;
  auto next = std::chrono::steady_clock::time_point::max();
  for (const auto& [seq, p] : sh.pending) next = std::min(next, p.next_at);
  ensure_scan(sh, next);
}

void RtTransport::owe_ack(Shard& sh, ProcessId acker, ProcessId to,
                          std::uint64_t seq) {
  const std::size_t chan = channel_index(acker, to);
  owed_acks_[chan].push_back(seq);
  if (ack_flush_scheduled_[chan]) return;  // batch onto the queued flush
  ack_flush_scheduled_[chan] = 1;
  Rng& rng = channel_rngs_[chan];
  Op flush;
  flush.at = std::chrono::steady_clock::now() + draw_delay(rng);
  flush.kind = OpKind::kAckFlush;
  flush.chan = chan;
  push_op(sh, std::move(flush));
}

void RtTransport::handle_ack_flush(Shard& sh, std::size_t chan) {
  ack_flush_scheduled_[chan] = 0;
  std::vector<std::uint64_t> batch;
  batch.swap(owed_acks_[chan]);
  if (batch.empty()) return;  // everything already piggybacked
  const ProcessId acker = static_cast<ProcessId>(chan / n_);
  const ProcessId to = static_cast<ProcessId>(chan % n_);
  Rng& rng = channel_rngs_[chan];
  if (sh.policy->drop(acker, to, make_link_ack(batch.front()), clock_(),
                      rng)) {
    // The whole ack frame is lost; retransmission redelivers, dedup
    // suppresses, and the duplicate is re-acked.
    counters_.add(counters_.drops);
    return;
  }
  std::size_t retired = 0;
  for (std::uint64_t seq : batch) {
    if (sh.pending.erase(seq) > 0) {
      counters_.add(counters_.acks);
      ++retired;
    }
  }
  note_retired(retired);
}

void RtTransport::handle_deliver(Shard& sh, std::unique_lock<std::mutex>& lock,
                                 Op op) {
  if (op.seq == 0) {
    // Heartbeat: fire and forget.  Refusal (process down) is just loss.
    ProcessId from = op.hb_from;
    ProcessId to = op.hb_to;
    Message msg = std::move(op.hb_msg);
    lock.unlock();
    deliver_(from, to, msg, /*send_tick=*/0);
    lock.lock();
    return;
  }
  auto it = sh.pending.find(op.seq);
  if (it == sh.pending.end()) return;
  const ProcessId from = it->second.from;
  const ProcessId to = it->second.to;

  // Piggybacking: this frame physically crossed from->to, so every ack owed
  // in that direction rides it for free — no drop draw, no extra op.  (Acks
  // owed on from->to retire sends that travelled to->from; both directions
  // of the pair live in this shard.)
  {
    const std::size_t chan = channel_index(from, to);
    std::size_t retired = 0;
    for (std::uint64_t acked : owed_acks_[chan]) {
      if (sh.pending.erase(acked) > 0) {
        counters_.add(counters_.acks);
        counters_.add(counters_.acks_piggybacked);
        ++retired;
      }
    }
    owed_acks_[chan].clear();
    note_retired(retired);
  }
  it = sh.pending.find(op.seq);  // self-channel piggyback may retire op.seq
  if (it == sh.pending.end()) return;
  const std::uint64_t wire = it->second.wire_seq;
  const Message msg = it->second.msg;
  const Time send_tick = it->second.send_tick;

  ChannelDedup& d = dedup_[channel_index(from, to)];
  if (wire <= d.watermark || d.seen.count(wire) > 0) {
    // Already surfaced (or folded into the watermark): suppress, but still
    // ack — re-acking duplicates is what ends retransmission when the
    // first ack was lost.
    counters_.add(counters_.dedup_suppressed);
    owe_ack(sh, to, from, op.seq);
    return;
  }
  // First copy: hand it up, without transport locks (the recipient's
  // mailbox push takes its own lock, and the worker may call back into
  // send() meanwhile).
  lock.unlock();
  const bool accepted = deliver_(from, to, msg, send_tick);
  lock.lock();
  it = sh.pending.find(op.seq);  // re-validate: ack/abandon may have raced
  if (it == sh.pending.end()) return;
  if (!accepted) return;  // refused (process down): stays pending, retries
  counters_.add(counters_.delivered);
  d.seen.insert(wire);
  // Contiguous prefix folds into the watermark...
  while (d.seen.count(d.watermark + 1) > 0) {
    d.seen.erase(d.watermark + 1);
    ++d.watermark;
  }
  // ...and reordering beyond the window folds forcibly: seqs skipped over
  // here are suppressed if they ever arrive, i.e. channel loss, which
  // protocol retransmission (a fresh wire seq) re-learns.
  while (d.seen.size() > opts_.dedup_window) {
    d.watermark = *d.seen.begin();
    d.seen.erase(d.seen.begin());
    while (d.seen.count(d.watermark + 1) > 0) {
      d.seen.erase(d.watermark + 1);
      ++d.watermark;
    }
  }
  sh.dedup_peak = std::max(sh.dedup_peak, d.seen.size());
  owe_ack(sh, to, from, op.seq);
}

}  // namespace udc
