// RtTransport: the paper's fair-lossy channels, realized operationally.
//
// The simulator's Network realizes R1-R5 by construction inside one thread;
// here the same channel model runs for real.  A single dispatcher thread owns
// a time-ordered queue of link operations:
//
//   attempt  — evaluate the DropPolicy (same interface the simulator and the
//              chaos scripts use, with `now` read from the run's logical
//              clock so script windows line up with the recorded trace).
//              A dropped attempt schedules a retransmission after a jittered
//              exponential backoff; a passed attempt schedules a delivery
//              after a random link delay.
//   deliver  — hand the message to the recipient (first copy only: the
//              receiver side dedups link-layer retransmissions, because run
//              validation R3 counts receives against sends multiset-wise and
//              a protocol-level send must surface at most once per link-level
//              success).  Dedup state is BOUNDED: each ordered channel keeps
//              a contiguous watermark ("every wire seq <= this has been
//              seen") plus a window of at most `dedup_window` out-of-order
//              seqs above it.  When reordering overflows the window the
//              oldest seq is folded into the watermark — any not-yet-seen
//              seq swallowed that way is suppressed on arrival (acked but
//              not surfaced), which is just channel loss; protocol-level
//              retransmission re-learns it with a fresh wire seq.  A
//              successful delivery triggers an ack on the reverse channel,
//              itself subject to the drop policy.
//   ack      — retires the pending send; retransmissions stop.
//
// Fairness R5 falls out: as long as the drop policy eventually lets the
// channel pass (healed partition, i.i.d. loss), bounded-backoff retries
// deliver every pending message.  Heartbeats are fire-and-forget — one
// attempt, no ack, no retry — they sit below the model and are never
// recorded, so their loss is indistinguishable from a silent process, which
// is precisely what a heartbeat failure detector is supposed to suspect on.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <set>
#include <thread>
#include <vector>

#include "udc/common/rng.h"
#include "udc/common/types.h"
#include "udc/coord/metrics.h"
#include "udc/event/message.h"
#include "udc/net/backoff.h"
#include "udc/net/network.h"

namespace udc {

struct RtTransportOptions {
  // Link delay for a passed attempt, uniform in [min_delay, max_delay].
  std::chrono::microseconds min_delay{40};
  std::chrono::microseconds max_delay{400};
  // Retransmission schedule for unacked sends (values in microseconds).
  BackoffOptions backoff{/*base=*/300, /*growth=*/2.0, /*cap=*/8'000,
                         /*jitter=*/0.25};
  // Give up on a pending send after this many attempts; 0 = never.  The
  // supervisor's budget bounds total runtime either way.
  int max_attempts = 0;
  // Max out-of-order wire seqs remembered per ordered channel for
  // receiver-side dedup (>= 1).  Overflow folds into the watermark; see the
  // file comment for why that is loss, not corruption.
  std::size_t dedup_window = 64;
};

class RtTransport {
 public:
  // `deliver` is invoked from the dispatcher thread, without transport locks
  // held; it returns false if the recipient refused the message (process
  // down), in which case the send stays pending and keeps retrying.
  // `clock` supplies the logical time handed to the drop policy.
  using DeliverFn = std::function<bool(ProcessId from, ProcessId to,
                                       const Message& msg)>;

  RtTransport(int n, RtTransportOptions opts,
              std::shared_ptr<DropPolicy> policy, std::uint64_t seed,
              std::function<Time()> clock, DeliverFn deliver);
  ~RtTransport();

  RtTransport(const RtTransport&) = delete;
  RtTransport& operator=(const RtTransport&) = delete;

  // Reliable-with-retry send (protocol traffic).  The caller must already
  // have recorded the kSend event — ordering of record-then-send is what
  // gives the lifted run R3.
  void send(ProcessId from, ProcessId to, const Message& msg);

  // Fire-and-forget, below the model: one attempt, no ack, no retry.
  void send_heartbeat(ProcessId from, ProcessId to, const Message& msg);

  // Drops every pending send addressed to `p` (permanent crash: the channel
  // into a dead process delivers nothing, and R5 does not apply to it).
  void abandon_to(ProcessId p);

  // Waits until no protocol sends are pending, or `deadline` passes.
  // Returns true on quiescence.
  bool quiesce(std::chrono::steady_clock::time_point deadline);

  // Stops the dispatcher; pending sends are abandoned.
  void stop();

  RuntimeCounters counters() const;

  // High-water mark of out-of-order dedup entries across all channels —
  // the regression test's witness that dedup memory stays bounded.
  std::size_t dedup_peak() const;

 private:
  struct PendingSend {
    ProcessId from;
    ProcessId to;
    Message msg;
    std::uint64_t wire_seq = 0;  // per-ordered-channel, monotone from 1
    int attempt = 0;             // attempts made so far
  };

  // Receiver-side dedup state for one ordered channel: everything at or
  // below `watermark` has been seen; `seen` holds the out-of-order seqs
  // above it, at most dedup_window of them.
  struct ChannelDedup {
    std::uint64_t watermark = 0;
    std::set<std::uint64_t> seen;
  };

  enum class OpKind { kAttempt, kDeliver, kAck };
  struct Op {
    std::chrono::steady_clock::time_point at;
    std::uint64_t id;  // tie-break: FIFO among equal deadlines
    OpKind kind;
    std::uint64_t seq;       // pending-send key (kInvalid for heartbeats)
    ProcessId hb_from = kInvalidProcess;  // heartbeat delivery
    ProcessId hb_to = kInvalidProcess;
    Message hb_msg;
    bool operator>(const Op& o) const {
      return at != o.at ? at > o.at : id > o.id;
    }
  };

  std::size_t channel_index(ProcessId from, ProcessId to) const;
  Rng& channel_rng(ProcessId from, ProcessId to);
  void push_op(Op op);  // callers hold mu_
  void dispatch_loop();
  void handle_attempt(std::uint64_t seq);              // mu_ held
  void handle_deliver(std::unique_lock<std::mutex>& lock, Op op);
  void handle_ack(std::uint64_t seq);                  // mu_ held

  const int n_;
  const RtTransportOptions opts_;
  std::shared_ptr<DropPolicy> policy_;
  std::function<Time()> clock_;
  DeliverFn deliver_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // dispatcher wake-up
  std::condition_variable quiesce_cv_;
  bool stopping_ = false;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_op_id_ = 1;
  std::map<std::uint64_t, PendingSend> pending_;
  std::priority_queue<Op, std::vector<Op>, std::greater<Op>> ops_;
  std::vector<Rng> channel_rngs_;  // per ordered channel, like Network
  std::vector<std::uint64_t> channel_next_wire_;  // per ordered channel
  std::vector<ChannelDedup> dedup_;               // per ordered channel
  std::size_t dedup_peak_ = 0;
  RuntimeCounters counters_;

  std::thread dispatcher_;
};

}  // namespace udc
