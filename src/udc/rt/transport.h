// RtTransport: the paper's fair-lossy channels, realized operationally —
// and sharded so that traffic on independent channels never serializes.
//
// The simulator's Network realizes R1-R5 by construction inside one thread;
// here the same channel model runs for real.  PR 3 drove everything through
// ONE dispatcher thread behind ONE mutex; every channel in the system
// serialized on it.  This version shards the transport by UNORDERED process
// pair: the ordered channels p->q and q->p always land in the same shard, so
// a data message and the link ack it provokes — which travel opposite
// directions of the same pair — are handled entirely within one shard, with
// no cross-shard locking anywhere on the data path.  Each shard owns its
// dispatcher thread, op queue, pending-send map, dedup state, per-channel
// PRNG streams (same seeding formula as before, so one channel's traffic
// never perturbs another's draws), and a CLONE of the drop policy (a
// stateful policy such as Gilbert-Elliott keeps independent chains per
// shard, exactly as ChannelConfig::make_policy isolates simulator runs).
//
// Per-shard op kinds:
//
//   attempt   — evaluate the DropPolicy (same interface the simulator and
//               the chaos scripts use, with `now` read from the run's
//               logical clock so script windows line up with the recorded
//               trace).  A passed attempt schedules a delivery after a
//               random link delay; pass or drop, the send's next retry time
//               is computed from the jittered exponential backoff.
//   deliver   — hand the message (with its send tick) to the recipient.
//               First copy only: the receiver side dedups link-layer
//               retransmissions with a bounded watermark + out-of-order
//               window (overflow folds into the watermark — swallowed seqs
//               are channel loss, re-learned by protocol retransmission
//               under a fresh wire seq).  A delivered frame also carries,
//               for free, every ack owed in its direction (piggybacking);
//               remaining acks are batched into one flush op per channel.
//   retryscan — ONE op per shard that walks the shard's pending sends and
//               re-attempts every one whose backoff deadline has passed,
//               then re-arms itself at the earliest remaining deadline.
//               PR 3 queued one retry op per pending send; under load that
//               made the op heap the hot structure.  The scan replaces
//               O(pending) heap churn with one amortized pass.
//   ackflush  — deliver the batch of acks owed on one ordered channel: one
//               drop-policy draw and one delay draw for the whole batch
//               (the batch models one ack frame).  Each acked seq retires
//               its pending send; a dropped flush is channel loss and
//               retransmission re-learns it.
//
// Counters are relaxed atomics (AtomicRuntimeCounters): shards tally
// lock-free, and counters() never takes a shard lock.  Quiescence is a
// global atomic pending-count with a dedicated cv — waiting for the network
// to drain does not contend with deliveries.
//
// Fairness R5 falls out unchanged: as long as the drop policy eventually
// lets the channel pass, bounded-backoff retries deliver every pending
// message.  Heartbeats are fire-and-forget — one attempt, no ack, no retry —
// they sit below the model and are never recorded, so their loss is
// indistinguishable from a silent process, which is precisely what a
// heartbeat failure detector is supposed to suspect on.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <set>
#include <thread>
#include <vector>

#include "udc/common/rng.h"
#include "udc/common/types.h"
#include "udc/coord/metrics.h"
#include "udc/event/message.h"
#include "udc/net/backoff.h"
#include "udc/net/network.h"

namespace udc {

struct RtTransportOptions {
  // Link delay for a passed attempt, uniform in [min_delay, max_delay].
  std::chrono::microseconds min_delay{40};
  std::chrono::microseconds max_delay{400};
  // Retransmission schedule for unacked sends (values in microseconds).
  BackoffOptions backoff{/*base=*/300, /*growth=*/2.0, /*cap=*/8'000,
                         /*jitter=*/0.25};
  // Give up on a pending send after this many attempts; 0 = never.  The
  // supervisor's budget bounds total runtime either way.
  int max_attempts = 0;
  // Max out-of-order wire seqs remembered per ordered channel for
  // receiver-side dedup (>= 1).  Overflow folds into the watermark; see the
  // file comment for why that is loss, not corruption.
  std::size_t dedup_window = 64;
  // Dispatcher shards; 0 = auto (min(n, 8)).  Unordered process pairs are
  // mapped onto shards, so n = 1 shard reproduces the PR 3 single-dispatcher
  // schedule class.
  int shards = 0;
};

class RtTransport {
 public:
  // `deliver` is invoked from a shard's dispatcher thread, without transport
  // locks held; it returns false if the recipient refused the message
  // (process down), in which case the send stays pending and keeps retrying.
  // `send_tick` is the logical tick at which the sender RECORDED the kSend —
  // receivers assert their recv tick exceeds it (R3 made operational).
  // `clock` supplies the logical time handed to the drop policy.
  using DeliverFn = std::function<bool(ProcessId from, ProcessId to,
                                       const Message& msg, Time send_tick)>;

  RtTransport(int n, RtTransportOptions opts,
              std::shared_ptr<DropPolicy> policy, std::uint64_t seed,
              std::function<Time()> clock, DeliverFn deliver);
  ~RtTransport();

  RtTransport(const RtTransport&) = delete;
  RtTransport& operator=(const RtTransport&) = delete;

  // Reliable-with-retry send (protocol traffic).  The caller must already
  // have recorded the kSend event at `send_tick` — ordering of
  // record-then-send is what gives the lifted run R3.
  void send(ProcessId from, ProcessId to, const Message& msg,
            Time send_tick = 0);

  // Fire-and-forget, below the model: one attempt, no ack, no retry.
  void send_heartbeat(ProcessId from, ProcessId to, const Message& msg);

  // Drops every pending send addressed to `p` (permanent crash: the channel
  // into a dead process delivers nothing, and R5 does not apply to it).
  void abandon_to(ProcessId p);

  // Waits until no protocol sends are pending, or `deadline` passes.
  // Returns true on quiescence.
  bool quiesce(std::chrono::steady_clock::time_point deadline);

  // Stops every shard dispatcher; pending sends are abandoned.
  void stop();

  RuntimeCounters counters() const;

  // High-water mark of out-of-order dedup entries across all channels —
  // the regression test's witness that dedup memory stays bounded.
  std::size_t dedup_peak() const;

 private:
  struct PendingSend {
    ProcessId from;
    ProcessId to;
    Message msg;
    Time send_tick = 0;
    std::uint64_t wire_seq = 0;  // per-ordered-channel, monotone from 1
    int attempt = 0;             // attempts made so far
    std::chrono::steady_clock::time_point next_at;  // backoff deadline
  };

  // Receiver-side dedup state for one ordered channel: everything at or
  // below `watermark` has been seen; `seen` holds the out-of-order seqs
  // above it, at most dedup_window of them.
  struct ChannelDedup {
    std::uint64_t watermark = 0;
    std::set<std::uint64_t> seen;
  };

  enum class OpKind { kDeliver, kRetryScan, kAckFlush };
  struct Op {
    std::chrono::steady_clock::time_point at;
    std::uint64_t id;  // tie-break: FIFO among equal deadlines
    OpKind kind;
    std::uint64_t seq = 0;   // pending-send key (0 for heartbeats)
    std::size_t chan = 0;    // ordered-channel index (kAckFlush)
    ProcessId hb_from = kInvalidProcess;  // heartbeat delivery
    ProcessId hb_to = kInvalidProcess;
    Message hb_msg;
    bool operator>(const Op& o) const {
      return at != o.at ? at > o.at : id > o.id;
    }
  };

  // One shard owns a disjoint set of unordered process pairs: both ordered
  // channels of a pair, their rngs, wire counters, dedup and owed-ack state,
  // every pending send between the pair, and a dispatcher thread.
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;  // dispatcher wake-up
    bool stopping = false;
    std::shared_ptr<DropPolicy> policy;  // per-shard clone
    std::uint64_t next_op_id = 1;
    std::map<std::uint64_t, PendingSend> pending;
    std::priority_queue<Op, std::vector<Op>, std::greater<Op>> ops;
    bool scan_scheduled = false;
    std::chrono::steady_clock::time_point scan_at;
    std::size_t dedup_peak = 0;
    std::thread dispatcher;
  };

  std::size_t channel_index(ProcessId from, ProcessId to) const;
  Shard& shard_of(ProcessId a, ProcessId b);
  std::chrono::microseconds draw_delay(Rng& rng);
  void push_op(Shard& sh, Op op);                       // sh.mu held
  void ensure_scan(Shard& sh,
                   std::chrono::steady_clock::time_point at);  // sh.mu held
  void retire_locked(Shard& sh, std::uint64_t seq);     // sh.mu held
  void note_retired(std::size_t k);
  // One transmission attempt for pending send `seq`; schedules the delivery
  // on pass and always re-arms the backoff deadline (unless abandoned).
  void attempt_locked(Shard& sh, std::uint64_t seq,
                      std::chrono::steady_clock::time_point now);
  void dispatch_loop(Shard& sh);
  void handle_deliver(Shard& sh, std::unique_lock<std::mutex>& lock, Op op);
  void handle_retry_scan(Shard& sh);                    // sh.mu held
  void handle_ack_flush(Shard& sh, std::size_t chan);   // sh.mu held
  void owe_ack(Shard& sh, ProcessId acker, ProcessId to,
               std::uint64_t seq);                      // sh.mu held

  const int n_;
  const RtTransportOptions opts_;
  std::function<Time()> clock_;
  DeliverFn deliver_;

  // Indexed by ordered channel (from * n + to); each entry is touched only
  // under the owning shard's mutex, so none of these need their own locks.
  std::vector<Rng> channel_rngs_;
  std::vector<std::uint64_t> channel_next_wire_;
  std::vector<ChannelDedup> dedup_;
  std::vector<std::vector<std::uint64_t>> owed_acks_;
  std::vector<char> ack_flush_scheduled_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::size_t> pending_total_{0};
  std::atomic<bool> stopped_{false};

  mutable std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;

  mutable AtomicRuntimeCounters counters_;
};

}  // namespace udc
