#include "udc/rt/record.h"

#include <algorithm>

#include "udc/common/check.h"

namespace udc {

namespace {

// Shared by both recorders: turn a tick-sorted slot sequence into a Run.
// Ticks are globally unique, so the sequence is a total order with no ties;
// empty ticks (idle bumps, and under the sharded recorder ticks taken by a
// record that lost its seal race) become empty steps.
struct LiftSlot {
  Time t;
  ProcessId p;
  const Event* e;
};

Run build_run(std::vector<LiftSlot>& slots, int n, Time horizon) {
  std::sort(slots.begin(), slots.end(),
            [](const LiftSlot& a, const LiftSlot& b) { return a.t < b.t; });
  Run::Builder b(n);
  Time cur = 0;
  for (const LiftSlot& s : slots) {
    UDC_CHECK(s.t > cur, "TraceRecorder: duplicate tick in lift");
    while (cur < s.t - 1) {
      b.end_step();
      ++cur;
    }
    b.append(s.p, *s.e);
    b.end_step();
    ++cur;
  }
  while (cur < horizon) {
    b.end_step();
    ++cur;
  }
  return std::move(b).build();
}

}  // namespace

// --- TraceRecorder (sharded) ------------------------------------------------

TraceRecorder::TraceRecorder(int n, WalSink* sink) : sink_(sink) {
  UDC_CHECK(n >= 1 && n <= kMaxProcesses, "TraceRecorder: bad process count");
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

std::optional<Time> TraceRecorder::record(ProcessId p, const Event& e) {
  auto idx = static_cast<std::size_t>(p);
  UDC_CHECK(p >= 0 && idx < shards_.size(), "TraceRecorder: bad process");
  Shard& s = *shards_[idx];
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.sealed) return std::nullopt;
  // The tick is taken INSIDE the shard lock, so p's log stays tick-ascending
  // even when the supervisor's record_crash races the worker's record.
  const Time t = now_.fetch_add(1, std::memory_order_acq_rel) + 1;
  s.log.push_back({t, e});
  if (sink_ != nullptr) sink_->append(p, t, e);
  return t;
}

std::optional<Time> TraceRecorder::record_crash(ProcessId p) {
  auto idx = static_cast<std::size_t>(p);
  UDC_CHECK(p >= 0 && idx < shards_.size(), "TraceRecorder: bad process");
  Shard& s = *shards_[idx];
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.sealed) return std::nullopt;
  const Time t = now_.fetch_add(1, std::memory_order_acq_rel) + 1;
  s.log.push_back({t, Event::crash()});
  s.sealed = true;  // R4: same critical section as the kCrash append
  if (sink_ != nullptr) {
    sink_->append(p, t, Event::crash());
    sink_->seal(p);  // flush_on_seal: the crash record must not sit batched
  }
  return t;
}

Time TraceRecorder::bump() {
  return now_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

Time TraceRecorder::now() const {
  return now_.load(std::memory_order_acquire);
}

std::size_t TraceRecorder::event_count() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->log.size();
  }
  return n;
}

bool TraceRecorder::sealed(ProcessId p) const {
  auto idx = static_cast<std::size_t>(p);
  UDC_CHECK(p >= 0 && idx < shards_.size(), "TraceRecorder: bad process");
  Shard& s = *shards_[idx];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.sealed;
}

std::vector<Event> TraceRecorder::history_of(ProcessId p) const {
  auto idx = static_cast<std::size_t>(p);
  UDC_CHECK(p >= 0 && idx < shards_.size(), "TraceRecorder: bad process");
  Shard& s = *shards_[idx];
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<Event> out;
  out.reserve(s.log.size());
  for (const TimedEvent& te : s.log) out.push_back(te.e);
  return out;
}

Run TraceRecorder::lift() const {
  // Lock every shard for the duration of the merge: the snapshot must be a
  // consistent cut.  Locks are taken in process order; nothing else ever
  // holds two shard locks, so the order cannot deadlock.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& s : shards_) locks.emplace_back(s->mu);
  const Time horizon = now_.load(std::memory_order_acquire);
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->log.size();
  std::vector<LiftSlot> slots;
  slots.reserve(total);
  for (std::size_t p = 0; p < shards_.size(); ++p) {
    for (const TimedEvent& te : shards_[p]->log) {
      slots.push_back({te.t, static_cast<ProcessId>(p), &te.e});
    }
  }
  return build_run(slots, static_cast<int>(shards_.size()), horizon);
}

// --- SerialTraceRecorder (baseline) -----------------------------------------

SerialTraceRecorder::SerialTraceRecorder(int n, WalSink* sink) : sink_(sink) {
  UDC_CHECK(n >= 1 && n <= kMaxProcesses,
            "SerialTraceRecorder: bad process count");
  histories_.resize(static_cast<std::size_t>(n));
  sealed_.assign(static_cast<std::size_t>(n), false);
}

std::optional<Time> SerialTraceRecorder::record(ProcessId p, const Event& e) {
  std::lock_guard<std::mutex> lock(mu_);
  auto idx = static_cast<std::size_t>(p);
  UDC_CHECK(p >= 0 && idx < histories_.size(),
            "SerialTraceRecorder: bad process");
  if (sealed_[idx]) return std::nullopt;
  ++now_;
  histories_[idx].push_back({now_, e});
  ++count_;
  if (sink_ != nullptr) sink_->append(p, now_, e);
  return now_;
}

std::optional<Time> SerialTraceRecorder::record_crash(ProcessId p) {
  std::lock_guard<std::mutex> lock(mu_);
  auto idx = static_cast<std::size_t>(p);
  UDC_CHECK(p >= 0 && idx < histories_.size(),
            "SerialTraceRecorder: bad process");
  if (sealed_[idx]) return std::nullopt;
  ++now_;
  histories_[idx].push_back({now_, Event::crash()});
  sealed_[idx] = true;
  ++count_;
  if (sink_ != nullptr) {
    sink_->append(p, now_, Event::crash());
    sink_->seal(p);
  }
  return now_;
}

Time SerialTraceRecorder::bump() {
  std::lock_guard<std::mutex> lock(mu_);
  return ++now_;
}

Time SerialTraceRecorder::now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

std::size_t SerialTraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

bool SerialTraceRecorder::sealed(ProcessId p) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto idx = static_cast<std::size_t>(p);
  UDC_CHECK(p >= 0 && idx < sealed_.size(),
            "SerialTraceRecorder: bad process");
  return sealed_[idx];
}

std::vector<Event> SerialTraceRecorder::history_of(ProcessId p) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto idx = static_cast<std::size_t>(p);
  UDC_CHECK(p >= 0 && idx < histories_.size(),
            "SerialTraceRecorder: bad process");
  std::vector<Event> out;
  out.reserve(histories_[idx].size());
  for (const TimedEvent& te : histories_[idx]) out.push_back(te.e);
  return out;
}

Run SerialTraceRecorder::lift() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LiftSlot> slots;
  slots.reserve(count_);
  for (std::size_t p = 0; p < histories_.size(); ++p) {
    for (const TimedEvent& te : histories_[p]) {
      slots.push_back({te.t, static_cast<ProcessId>(p), &te.e});
    }
  }
  return build_run(slots, static_cast<int>(histories_.size()), now_);
}

}  // namespace udc
