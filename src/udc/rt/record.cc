#include "udc/rt/record.h"

#include <algorithm>

#include "udc/common/check.h"

namespace udc {

TraceRecorder::TraceRecorder(int n, WalSink* sink) : sink_(sink) {
  UDC_CHECK(n >= 1 && n <= kMaxProcesses, "TraceRecorder: bad process count");
  histories_.resize(static_cast<std::size_t>(n));
  sealed_.assign(static_cast<std::size_t>(n), false);
}

std::optional<Time> TraceRecorder::record(ProcessId p, const Event& e) {
  std::lock_guard<std::mutex> lock(mu_);
  auto idx = static_cast<std::size_t>(p);
  UDC_CHECK(p >= 0 && idx < histories_.size(), "TraceRecorder: bad process");
  if (sealed_[idx]) return std::nullopt;
  ++now_;
  histories_[idx].push_back({now_, e});
  ++count_;
  if (sink_ != nullptr) sink_->append(p, now_, e);
  return now_;
}

std::optional<Time> TraceRecorder::record_crash(ProcessId p) {
  std::lock_guard<std::mutex> lock(mu_);
  auto idx = static_cast<std::size_t>(p);
  UDC_CHECK(p >= 0 && idx < histories_.size(), "TraceRecorder: bad process");
  if (sealed_[idx]) return std::nullopt;
  ++now_;
  histories_[idx].push_back({now_, Event::crash()});
  sealed_[idx] = true;
  ++count_;
  if (sink_ != nullptr) sink_->append(p, now_, Event::crash());
  return now_;
}

Time TraceRecorder::bump() {
  std::lock_guard<std::mutex> lock(mu_);
  return ++now_;
}

Time TraceRecorder::now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

bool TraceRecorder::sealed(ProcessId p) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto idx = static_cast<std::size_t>(p);
  UDC_CHECK(p >= 0 && idx < sealed_.size(), "TraceRecorder: bad process");
  return sealed_[idx];
}

std::vector<Event> TraceRecorder::history_of(ProcessId p) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto idx = static_cast<std::size_t>(p);
  UDC_CHECK(p >= 0 && idx < histories_.size(), "TraceRecorder: bad process");
  std::vector<Event> out;
  out.reserve(histories_[idx].size());
  for (const TimedEvent& te : histories_[idx]) out.push_back(te.e);
  return out;
}

Run TraceRecorder::lift() const {
  struct Slot {
    Time t;
    ProcessId p;
    const Event* e;
  };
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Slot> slots;
  slots.reserve(count_);
  for (std::size_t p = 0; p < histories_.size(); ++p) {
    for (const TimedEvent& te : histories_[p]) {
      slots.push_back({te.t, static_cast<ProcessId>(p), &te.e});
    }
  }
  // Ticks are globally unique, so this is a total order with no ties.
  std::sort(slots.begin(), slots.end(),
            [](const Slot& a, const Slot& b) { return a.t < b.t; });
  Run::Builder b(static_cast<int>(histories_.size()));
  Time cur = 0;
  for (const Slot& s : slots) {
    UDC_CHECK(s.t > cur, "TraceRecorder: duplicate tick in lift");
    while (cur < s.t - 1) {
      b.end_step();
      ++cur;
    }
    b.append(s.p, *s.e);
    b.end_step();
    ++cur;
  }
  while (cur < now_) {
    b.end_step();
    ++cur;
  }
  return std::move(b).build();
}

}  // namespace udc
