// ArmWatchdog: a wall-clock deadline on one soak arm, with diagnostics
// instead of a hung CI job.
//
// A cross-process arm can hang in ways its own deadline never sees — a
// supervisor blocked in waitpid on a child wedged in D-state, a reactor
// thread deadlocked before the deadline check runs.  The watchdog is a
// detached-from-the-arm thread holding ONLY a condition variable: if the
// arm finishes, cancel() returns and nothing happened; if the deadline
// passes first, the watchdog runs the caller's diagnostic dump (per-node
// state, log tails — whatever helps a postmortem) and then the exit
// function, by default _exit(4) — skipping destructors on purpose, because
// a process stuck enough to trip the watchdog cannot be trusted to unwind.
//
// The exit function is injectable so tests can observe a firing without
// dying; production callers leave the default.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unistd.h>

namespace udc {

// Postmortem dump for a wedged cross-process arm: every file in the run
// directory with its size, plus the tail of each per-node log — the state
// a human needs first when a CI job would otherwise just time out mute.
inline void dump_run_dir_diagnostics(const std::string& run_dir,
                                     std::FILE* out = stderr) {
  std::error_code ec;
  if (!std::filesystem::is_directory(run_dir, ec)) {
    std::fprintf(out, "watchdog: run dir missing: %s\n", run_dir.c_str());
    return;
  }
  for (const auto& entry :
       std::filesystem::directory_iterator(run_dir, ec)) {
    std::error_code sec;
    const auto size = entry.is_regular_file(sec)
                          ? std::filesystem::file_size(entry.path(), sec)
                          : 0;
    std::fprintf(out, "watchdog:   %-32s %10llu bytes\n",
                 entry.path().filename().string().c_str(),
                 static_cast<unsigned long long>(size));
  }
  constexpr std::size_t kTail = 2048;
  for (const auto& entry :
       std::filesystem::directory_iterator(run_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("node-", 0) != 0 || name.find(".log") == std::string::npos) {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    if (!in.good()) continue;
    in.seekg(0, std::ios::end);
    const auto len = static_cast<std::size_t>(in.tellg());
    const auto take = std::min(kTail, len);
    in.seekg(static_cast<std::streamoff>(len - take));
    std::string tail(take, '\0');
    in.read(tail.data(), static_cast<std::streamsize>(take));
    std::fprintf(out, "watchdog: ---- tail of %s ----\n%s\n", name.c_str(),
                 tail.c_str());
  }
}

class ArmWatchdog {
 public:
  using DiagFn = std::function<void()>;
  using ExitFn = std::function<void()>;

  ArmWatchdog(std::chrono::milliseconds timeout, DiagFn diag,
              ExitFn exit_fn = [] { ::_exit(4); })
      : diag_(std::move(diag)), exit_fn_(std::move(exit_fn)) {
    thread_ = std::thread([this, timeout] {
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, timeout, [this] { return cancelled_; })) {
        return;  // the arm finished first
      }
      fired_ = true;
      lock.unlock();
      if (diag_) diag_();
      if (exit_fn_) exit_fn_();
    });
  }

  ~ArmWatchdog() { cancel(); }

  ArmWatchdog(const ArmWatchdog&) = delete;
  ArmWatchdog& operator=(const ArmWatchdog&) = delete;

  // Disarms the watchdog and joins its thread.  Idempotent.  If the
  // watchdog already fired (injectable exit only), the diagnostics have
  // completed by the time cancel() returns.
  void cancel() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      cancelled_ = true;
    }
    cv_.notify_one();
    if (thread_.joinable()) thread_.join();
  }

  // True iff the deadline passed before cancel().  Meaningful only with an
  // injected exit function; the default never returns control.
  bool fired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fired_;
  }

 private:
  DiagFn diag_;
  ExitFn exit_fn_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool cancelled_ = false;
  bool fired_ = false;
  std::thread thread_;
};

}  // namespace udc
