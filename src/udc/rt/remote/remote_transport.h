// RemoteTransport: the in-process transport's ARQ + dedup semantics, over
// real TCP streams — with one rule the in-process version never needed:
// THE DURABLE-SEND GATE.
//
// In-process, a kSend record and the message handoff were a single
// process-local sequence; a crash took both or neither.  Across processes a
// SIGKILL can land between "recorded kSend into the WAL ring" and "the WAL
// barrier made it durable" — if the frame had already escaped onto the wire,
// the merged run would contain a receive with no recorded send, an R3
// violation manufactured by the crash.  So a protocol frame leaves this node
// only after the store's durable_floor() covers its kSend record.  WAL loss
// is always a suffix; therefore anything on the wire is durable, and
// recv-without-send is impossible BY CONSTRUCTION, for any kill point.  (The
// cost is send latency bounded by the group-commit interval; heartbeats and
// rejoin beacons sit below the model, are never recorded, and skip the
// gate.)
//
// Everything else mirrors rt/transport.h, re-cut for streams:
//   * per-ordered-channel wire seqs with jittered-backoff retransmission
//     until acked (R5 realized operationally over a lossy chaos shim);
//   * receiver-side dedup keyed per (peer, EPOCH) — a restarted peer begins
//     a fresh seq space, so its dedup state must not leak across
//     incarnations — with the bounded watermark + out-of-order window
//     (overflow folds into the watermark: that is channel loss, re-learned
//     by retransmission);
//   * acks piggyback on data frames in the reverse direction and flush as
//     standalone kAck batches otherwise;
//   * a peer-up event (reconnect) re-arms every pending send to that peer
//     for immediate retransmission — reconnect IS rejoin: the stream that
//     died took undelivered frames with it, and the ARQ re-teaches them.
//
// Threading: send/pump run on the node's worker thread; on_wire_* and
// on_peer_up run on the reactor thread.  One mutex guards the maps; the
// reactor's own command queue makes the outbound path safe to call from
// either side.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "udc/common/rng.h"
#include "udc/common/types.h"
#include "udc/coord/metrics.h"
#include "udc/event/message.h"
#include "udc/net/backoff.h"
#include "udc/net/reactor.h"
#include "udc/net/wire.h"

namespace udc {

struct RemoteTransportOptions {
  // Retransmission schedule for unacked sends, in MICROseconds of wall
  // clock (streams retransmit on real time, not logical ticks).
  BackoffOptions backoff{/*base=*/2'000, /*growth=*/2.0, /*cap=*/120'000,
                         /*jitter=*/0.25};
  std::size_t dedup_window = 64;
};

class RemoteTransport {
 public:
  // `deliver` receives each first copy (and every below-model frame); runs
  // on the reactor thread — it must only enqueue, never block.
  using DeliverFn =
      std::function<void(ProcessId from, const Message& msg, Time send_tick)>;

  RemoteTransport(ProcessId self, int n, RemoteTransportOptions opts,
                  Reactor& reactor, std::function<std::size_t()> durable_floor,
                  std::function<Time()> clock_now,
                  std::function<void(Time)> clock_observe, DeliverFn deliver,
                  AtomicRuntimeCounters& counters, std::uint64_t seed);

  RemoteTransport(const RemoteTransport&) = delete;
  RemoteTransport& operator=(const RemoteTransport&) = delete;

  // Durable-gated protocol send: the frame is held until durable_floor()
  // reaches `gate` (the mirror length right after the kSend was appended).
  // `send_tick` is the recorded kSend tick — R3's rider.
  void send(ProcessId to, const Message& msg, Time send_tick,
            std::size_t gate);

  // Reliable but ungated and unrecorded — the kRejoin beacon: below the
  // model, yet it must eventually arrive (ARQ), and it certifies no
  // knowledge, so durability does not apply.
  void send_control(ProcessId to, const Message& msg);

  // Fire-and-forget, below the model: one attempt, wire seq 0, no retry.
  void send_heartbeat(ProcessId to, const Message& msg);

  // Reactor-thread entry points.
  void on_wire_data(ProcessId peer, std::uint64_t epoch, const WireData& d);
  void on_wire_ack(ProcessId peer, const WireAck& a);
  void on_peer_up(ProcessId peer);

  // Node-loop heartbeat: releases gated sends whose records became durable,
  // retransmits overdue pending sends, and flushes owed ack batches.
  void pump();

  std::size_t pending_count() const;

 private:
  struct PendingSend {
    Message msg;
    Time send_tick = 0;
    std::size_t gate = 0;   // release when durable_floor() >= gate
    bool released = false;  // first transmission happened
    int attempt = 0;
    std::chrono::steady_clock::time_point next_at;
  };

  // Receiver-side state for one peer, valid for one incarnation (epoch).
  struct PeerChannel {
    std::uint64_t epoch = 0;
    bool epoch_known = false;
    std::uint64_t watermark = 0;
    std::set<std::uint64_t> seen;
    std::vector<std::uint64_t> owed_acks;
  };

  void transmit_locked(ProcessId to, std::uint64_t seq, PendingSend& ps);
  std::vector<std::uint64_t> take_owed_locked(ProcessId peer);

  const ProcessId self_;
  const int n_;
  const RemoteTransportOptions opts_;
  Reactor& reactor_;
  std::function<std::size_t()> durable_floor_;
  std::function<Time()> clock_now_;
  std::function<void(Time)> clock_observe_;
  DeliverFn deliver_;
  AtomicRuntimeCounters& counters_;

  mutable std::mutex mu_;
  Rng rng_;
  std::map<ProcessId, std::uint64_t> next_seq_;
  std::map<ProcessId, std::map<std::uint64_t, PendingSend>> pending_;
  std::map<ProcessId, PeerChannel> chan_;
};

}  // namespace udc
