#include "udc/rt/remote/fleet.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "udc/common/check.h"
#include "udc/coord/action.h"
#include "udc/event/event.h"
#include "udc/net/reactor.h"
#include "udc/net/wire.h"
#include "udc/rt/runtime.h"
#include "udc/store/process_store.h"

namespace udc {

namespace {

// Everything the reactor thread learns about one node, mutex-shared with
// the supervisor loop.
struct NodeView {
  bool up = false;
  std::uint64_t epoch = 0;        // epoch of the established stream
  std::uint16_t data_port = 0;    // from the node's hello
  bool have_status = false;
  WireStatus status;              // latest durable-state report
  bool done = false;              // final report seen
};

struct Child {
  pid_t pid = -1;
  std::uint64_t epoch = 0;
  bool running = false;
  bool killed_by_us = false;     // SIGKILL we sent (chaos, not failure)
  bool permanently_dead = false; // killed, no relaunch coming
  bool awaiting_relaunch = false;
  Time relaunch_at = 0;          // fleet tick
  int exit_status = 0;           // raw waitpid status once reaped
  bool reaped = false;
};

std::vector<std::string> node_argv(const FleetOptions& opts, ProcessId id,
                                   std::uint64_t epoch, std::uint64_t run_id,
                                   std::uint16_t sup_port,
                                   const std::string& script_path) {
  auto arg = [](const std::string& k, const auto& v) {
    std::ostringstream os;
    os << k << '=' << v;
    return os.str();
  };
  std::vector<std::string> a;
  a.push_back(opts.node_binary);
  a.push_back(arg("--id", id));
  a.push_back(arg("--n", opts.n));
  a.push_back(arg("--t", opts.t));
  a.push_back(arg("--protocol", opts.protocol));
  a.push_back(arg("--resend-interval", opts.resend_interval));
  a.push_back(arg("--epoch", epoch));
  a.push_back(arg("--run-id", run_id));
  a.push_back(arg("--supervisor-port", sup_port));
  a.push_back(arg("--wal-dir", opts.run_dir));
  if (!script_path.empty()) a.push_back(arg("--script", script_path));
  a.push_back(arg("--background-drop", opts.background_drop));
  a.push_back(arg("--seed", opts.seed + 0x9e37u * (std::uint64_t)(id + 1) +
                               epoch));
  a.push_back(arg("--hb-interval", opts.heartbeat.interval));
  a.push_back(arg("--hb-timeout", opts.heartbeat.initial_timeout));
  return a;
}

pid_t spawn_node(const std::vector<std::string>& argv,
                 const std::string& log_path) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& s : argv) {
    cargv.push_back(const_cast<char*>(s.c_str()));
  }
  cargv.push_back(nullptr);

  pid_t pid = ::fork();
  UDC_CHECK(pid >= 0, "fleet: fork failed");
  if (pid == 0) {
    // Child: own log file (appended across relaunches), then exec.
    int fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      if (fd > STDERR_FILENO) ::close(fd);
    }
    ::execv(cargv[0], cargv.data());
    _exit(127);  // exec failed; the supervisor sees a dirty exit
  }
  return pid;
}

}  // namespace

FleetVerdict run_fleet(const FleetOptions& opts) {
  UDC_CHECK(opts.n >= 1 && opts.n <= kMaxProcesses, "fleet: bad n");
  UDC_CHECK(opts.t >= 0 && opts.t < opts.n, "fleet: bad t");
  UDC_CHECK(!opts.run_dir.empty(), "fleet: run dir required");
  UDC_CHECK(!opts.node_binary.empty() &&
                std::filesystem::exists(opts.node_binary),
            "fleet: node binary missing");
  UDC_CHECK(opts.restart_after >= 1, "fleet: bad restart delay");
  for (const InitDirective& d : opts.workload) {
    UDC_CHECK(d.p >= 0 && d.p < opts.n, "fleet: workload names bad owner");
    UDC_CHECK(action_owner(d.action) == d.p,
              "fleet: directive owner mismatch");
  }
  for (ProcessId v : opts.kill_after_perform) {
    UDC_CHECK(v >= 0 && v < opts.n, "fleet: bad kill victim");
  }

  std::filesystem::create_directories(opts.run_dir);
  const FaultScript script = sanitize_for_live(opts.script, opts.n, opts.t);
  std::string script_path;
  {
    // Wire-level faults travel to the nodes via a file; crash injections
    // stay with the supervisor (a cross-process crash IS a SIGKILL, not
    // something a node does to itself).  Storage faults are not lowered in
    // the MP runtime (DESIGN.md §12).
    FaultScript wire_only = script;
    wire_only.crashes.clear();
    wire_only.storage_faults.clear();
    if (!wire_only.empty() || opts.background_drop > 0) {
      script_path = (std::filesystem::path(opts.run_dir) / "script.txt")
                        .string();
      std::ofstream out(script_path, std::ios::trunc);
      out << wire_only.format();
      UDC_CHECK(out.good(), "fleet: cannot write script file");
    }
  }
  // One fleet = one run id: strays from an earlier run on a recycled port
  // fail the handshake instead of injecting foreign frames.
  const std::uint64_t run_id =
      (static_cast<std::uint64_t>(::getpid()) << 32) ^ opts.seed ^
      0x666c656574ull;  // "fleet"

  // --- control plane --------------------------------------------------------
  std::mutex mu;
  std::vector<NodeView> views(static_cast<std::size_t>(opts.n));
  // Latest counters per (node, epoch): dead incarnations keep their tallies.
  std::map<std::pair<ProcessId, std::uint64_t>, RuntimeCounters> counters_by;
  bool directory_dirty = false;

  ReactorOptions ropts;
  ropts.self = kSupervisorPeer;
  ropts.n = opts.n;
  ropts.run_id = run_id;
  ropts.seed = opts.seed ^ 0x73757065ull;  // "supe"
  Reactor reactor(
      ropts,
      [&](ProcessId peer, std::uint64_t epoch, const WireFrame& f) {
        if (f.type != FrameType::kStatus || peer < 0 || peer >= opts.n) {
          return;
        }
        auto s = decode_status(f.payload.data(), f.payload.size());
        if (!s || s->id != peer) return;
        std::lock_guard<std::mutex> lk(mu);
        NodeView& v = views[static_cast<std::size_t>(peer)];
        v.have_status = true;
        v.status = *s;
        if (s->done) v.done = true;
        counters_by[{peer, epoch}] = unpack_node_counters(s->counters);
      },
      [&](ProcessId peer, std::uint64_t epoch, bool up,
          std::uint16_t data_port) {
        if (peer < 0 || peer >= opts.n) return;
        std::lock_guard<std::mutex> lk(mu);
        NodeView& v = views[static_cast<std::size_t>(peer)];
        v.up = up;
        if (up) {
          v.epoch = epoch;
          v.data_port = data_port;
          directory_dirty = true;  // rebroadcast ports to everyone
        }
      });
  const std::uint16_t sup_port = reactor.listen(0);
  reactor.start();

  // --- the fleet ------------------------------------------------------------
  std::vector<Child> children(static_cast<std::size_t>(opts.n));
  auto launch = [&](ProcessId p, std::uint64_t epoch) {
    Child& c = children[static_cast<std::size_t>(p)];
    c.epoch = epoch;
    // Fresh incarnation, fresh exit accounting: a stale killed_by_us from a
    // chaos SIGKILL of the previous incarnation must not excuse THIS one
    // from the clean_exits check if it dies on its own.
    c.killed_by_us = false;
    c.reaped = false;
    c.exit_status = 0;
    c.pid = spawn_node(
        node_argv(opts, p, epoch, run_id, sup_port, script_path),
        (std::filesystem::path(opts.run_dir) /
         ("node-" + std::to_string(p) + ".log"))
            .string());
    c.running = true;
    c.awaiting_relaunch = false;
  };
  for (ProcessId p = 0; p < opts.n; ++p) launch(p, 0);

  auto hard_kill = [&](ProcessId p) {
    Child& c = children[static_cast<std::size_t>(p)];
    if (!c.running) return;
    ::kill(c.pid, SIGKILL);
    int st = 0;
    ::waitpid(c.pid, &st, 0);
    c.exit_status = st;
    c.reaped = true;
    c.running = false;
    c.killed_by_us = true;
    {
      std::lock_guard<std::mutex> lk(mu);
      views[static_cast<std::size_t>(p)].up = false;
    }
  };

  struct DirectiveState {
    InitDirective d;
    std::chrono::steady_clock::time_point next_send{};
  };
  std::vector<DirectiveState> dirs;
  dirs.reserve(opts.workload.size());
  for (const InitDirective& d : opts.workload) dirs.push_back({d});

  struct CrashState {
    CrashInjection c;
    bool applied = false;
  };
  std::vector<CrashState> crashes;
  for (const CrashInjection& c : script.crashes) crashes.push_back({c});

  std::set<ProcessId> perform_kills_pending(opts.kill_after_perform.begin(),
                                            opts.kill_after_perform.end());
  const bool has_perform_kills = !perform_kills_pending.empty();
  bool kills_settling = false;
  auto settle_deadline = std::chrono::steady_clock::now();

  BudgetStatus status = BudgetStatus::kComplete;
  std::size_t crash_count = 0;
  std::size_t restart_count = 0;
  const auto deadline = std::chrono::steady_clock::now() + opts.deadline;
  constexpr auto kInitResend = std::chrono::milliseconds(100);

  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const auto wall = std::chrono::steady_clock::now();
    if (wall >= deadline) {
      status = BudgetStatus::kBudgetExceeded;
      break;
    }

    // Snapshot the board.
    Time fleet_tick = 0;
    std::vector<NodeView> snap;
    bool dirty = false;
    {
      std::lock_guard<std::mutex> lk(mu);
      snap = views;
      dirty = directory_dirty;
      directory_dirty = false;
    }
    for (const NodeView& v : snap) {
      if (v.have_status && v.status.clock > fleet_tick) {
        fleet_tick = v.status.clock;
      }
    }

    // Port directory: rebroadcast to every up node whenever any stream
    // (re)establishes, so dialers learn restarted peers' fresh ports.
    if (dirty) {
      WirePeers peers;
      for (ProcessId p = 0; p < opts.n; ++p) {
        const NodeView& v = snap[static_cast<std::size_t>(p)];
        if (v.data_port != 0) peers.ports.push_back({p, v.data_port});
      }
      auto payload = encode_peers(peers);
      for (ProcessId p = 0; p < opts.n; ++p) {
        if (snap[static_cast<std::size_t>(p)].up) {
          reactor.send(p, FrameType::kPeers, payload);
        }
      }
    }

    // Scripted crashes: real SIGKILL at the scripted tick.
    for (CrashState& cs : crashes) {
      if (cs.applied || fleet_tick < cs.c.at) continue;
      cs.applied = true;
      const ProcessId victim = cs.c.victim;
      Child& c = children[static_cast<std::size_t>(victim)];
      if (!c.running) continue;
      hard_kill(victim);
      ++crash_count;
      if (opts.restartable_crashes) {
        c.awaiting_relaunch = true;
        c.relaunch_at = fleet_tick + opts.restart_after;
      } else {
        c.permanently_dead = true;
      }
    }

    // Perform-triggered kills: fire the moment the victim's DURABLE state
    // shows a perform — the dagger construction's timing.
    if (!perform_kills_pending.empty()) {
      for (auto it = perform_kills_pending.begin();
           it != perform_kills_pending.end();) {
        const ProcessId victim = *it;
        const NodeView& v = snap[static_cast<std::size_t>(victim)];
        Child& c = children[static_cast<std::size_t>(victim)];
        if (c.running && v.have_status && !v.status.performs.empty()) {
          hard_kill(victim);
          ++crash_count;
          if (opts.restartable_crashes) {
            c.awaiting_relaunch = true;
            c.relaunch_at = fleet_tick + opts.restart_after;
          } else {
            c.permanently_dead = true;
          }
          it = perform_kills_pending.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (has_perform_kills && perform_kills_pending.empty() &&
        !kills_settling) {
      kills_settling = true;
      settle_deadline = wall + opts.settle_after_kills;
    }
    if (kills_settling && wall >= settle_deadline) break;

    // Relaunches: epoch+1, same WAL directory — recovery is the node's job.
    for (ProcessId p = 0; p < opts.n; ++p) {
      Child& c = children[static_cast<std::size_t>(p)];
      if (c.awaiting_relaunch && fleet_tick >= c.relaunch_at) {
        ++restart_count;
        launch(p, c.epoch + 1);
      }
    }

    // Unexpected deaths (a node hit exit 2/3 or crashed on its own): reap
    // so they do not linger as zombies; conformance accounting at the end.
    for (ProcessId p = 0; p < opts.n; ++p) {
      Child& c = children[static_cast<std::size_t>(p)];
      if (!c.running) continue;
      int st = 0;
      if (::waitpid(c.pid, &st, WNOHANG) == c.pid) {
        c.exit_status = st;
        c.reaped = true;
        c.running = false;
        c.permanently_dead = true;
      }
    }

    // Workload: re-send each kInit until the owner's durable status lists
    // it.  A kill may roll a non-durable init back; the re-send loop simply
    // keeps going until durability is proven.
    bool all_resolved = true;
    for (DirectiveState& ds : dirs) {
      if (fleet_tick < ds.d.at) {
        all_resolved = false;
        continue;
      }
      const auto owner = static_cast<std::size_t>(ds.d.p);
      const Child& c = children[owner];
      const NodeView& v = snap[owner];
      const bool durable =
          v.have_status &&
          std::find(v.status.inits.begin(), v.status.inits.end(),
                    ds.d.action) != v.status.inits.end();
      if (durable) continue;
      if (c.permanently_dead && !c.awaiting_relaunch) continue;  // excused
      all_resolved = false;
      if (v.up && wall >= ds.next_send) {
        WireInit wi;
        wi.action = ds.d.action;
        reactor.send(ds.d.p, FrameType::kInit, encode_init(wi));
        ds.next_send = wall + kInitResend;
      }
    }

    // Completion: every directive durably initiated (or excused by a
    // permanent death), nobody awaiting relaunch, and every durably
    // initiated action durably performed at every surviving node.
    if (!all_resolved) continue;
    bool any_pending = false;
    for (const Child& c : children) any_pending |= c.awaiting_relaunch;
    if (any_pending) continue;
    std::set<ActionId> initiated;
    for (const NodeView& v : snap) {
      if (!v.have_status) continue;
      initiated.insert(v.status.inits.begin(), v.status.inits.end());
    }
    bool done = true;
    for (ProcessId p = 0; p < opts.n && done; ++p) {
      const Child& c = children[static_cast<std::size_t>(p)];
      if (c.permanently_dead) continue;
      const NodeView& v = snap[static_cast<std::size_t>(p)];
      if (!v.have_status) {
        done = false;
        break;
      }
      for (ActionId a : initiated) {
        if (std::find(v.status.performs.begin(), v.status.performs.end(),
                      a) == v.status.performs.end()) {
          done = false;
          break;
        }
      }
    }
    if (done) break;
  }

  // --- shutdown -------------------------------------------------------------
  // kStop is RE-SENT until each node dies: a node whose control stream was
  // momentarily down (mid-reconnect after a kill, say) would miss a
  // one-shot broadcast forever and then be mis-scored as a straggler.
  // Resending is idempotent — a stopping node's mailbox is closed.
  const auto stop_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5'000);
  auto next_stop_send = std::chrono::steady_clock::now();
  for (;;) {
    if (std::chrono::steady_clock::now() >= next_stop_send) {
      for (ProcessId p = 0; p < opts.n; ++p) {
        if (children[static_cast<std::size_t>(p)].running) {
          reactor.send(p, FrameType::kStop, {});
        }
      }
      next_stop_send =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
    }
    bool any_running = false;
    for (ProcessId p = 0; p < opts.n; ++p) {
      Child& c = children[static_cast<std::size_t>(p)];
      if (!c.running) continue;
      int st = 0;
      if (::waitpid(c.pid, &st, WNOHANG) == c.pid) {
        c.exit_status = st;
        c.reaped = true;
        c.running = false;
      } else {
        any_running = true;
      }
    }
    if (!any_running || std::chrono::steady_clock::now() >= stop_deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  bool clean_exits = true;
  for (ProcessId p = 0; p < opts.n; ++p) {
    Child& c = children[static_cast<std::size_t>(p)];
    if (c.running) {
      // Straggler: it ignored kStop within the grace window.
      ::kill(c.pid, SIGKILL);
      int st = 0;
      ::waitpid(c.pid, &st, 0);
      c.exit_status = st;
      c.reaped = true;
      c.running = false;
      clean_exits = false;
    } else if (!c.killed_by_us && c.reaped &&
               !(WIFEXITED(c.exit_status) &&
                 WEXITSTATUS(c.exit_status) == 0)) {
      clean_exits = false;
    }
  }
  reactor.stop();

  // --- merge: the shards ARE the run ---------------------------------------
  struct MergedRecord {
    Time tick = 0;
    ProcessId p = kInvalidProcess;
    std::size_t idx = 0;  // per-shard order, the sort tiebreaker
    Event e;
  };
  std::vector<MergedRecord> merged;
  FleetVerdict v;
  for (ProcessId p = 0; p < opts.n; ++p) {
    ProcessStore shard(opts.run_dir, p, opts.store, {});
    std::vector<StoreRecord> records = shard.recover();
    Time last_tick = 0;
    std::size_t idx = 0;
    for (const StoreRecord& r : records) {
      merged.push_back({r.t, p, idx++, r.e});
      if (r.t > last_tick) last_tick = r.t;
    }
    const Child& c = children[static_cast<std::size_t>(p)];
    if (c.permanently_dead && !c.awaiting_relaunch) {
      // R4: the kill was this process's last event.  The shard cannot
      // contain the crash (SIGKILL writes nothing); synthesize it one tick
      // past everything the disk remembers.
      merged.push_back({last_tick + 1, p, idx, Event::crash()});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const MergedRecord& a, const MergedRecord& b) {
                     if (a.tick != b.tick) return a.tick < b.tick;
                     if (a.p != b.p) return a.p < b.p;
                     return a.idx < b.idx;
                   });
  // One event per Builder step: R2 by construction, and the Lamport sort
  // guarantees each kRecv lands on a strictly later step than its kSend
  // (recv tick > send tick), so build()'s R3 validation passes iff the
  // durable-send gate actually held.
  Run::Builder b(opts.n);
  for (const MergedRecord& r : merged) {
    b.append(r.p, r.e);
    b.end_step();
  }
  v.run = std::move(b).build();

  // --- verdict --------------------------------------------------------------
  v.status = status;
  v.clean_exits = clean_exits;
  {
    std::lock_guard<std::mutex> lk(mu);
    for (const auto& [key, rc] : counters_by) v.counters.merge(rc);
  }
  fold_wire_counters(reactor.counters(), &v.counters);
  v.counters.crashes = crash_count;
  v.counters.restarts = restart_count;
  v.counters.events_recorded = merged.size();
  v.actions = workload_actions(opts.workload);
  v.coord = opts.restartable_crashes
                ? check_nudc(*v.run, v.actions, opts.grace)
                : check_udc(*v.run, v.actions, opts.grace);
  v.fd = check_fd_properties(*v.run, opts.grace);
  v.accuracy = check_eventual_accuracy(*v.run);
  v.conformant =
      status == BudgetStatus::kComplete && v.coord.achieved() && clean_exits;
  return v;
}

}  // namespace udc
