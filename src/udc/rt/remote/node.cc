#include "udc/rt/remote/node.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "udc/chaos/fault_script.h"
#include "udc/common/check.h"
#include "udc/common/rng.h"
#include "udc/coord/action.h"
#include "udc/event/event.h"
#include "udc/net/wire.h"
#include "udc/rt/mailbox.h"
#include "udc/rt/remote/lamport.h"
#include "udc/sim/process.h"
#include "udc/store/group_commit.h"

namespace udc {

std::vector<std::uint64_t> pack_node_counters(const RuntimeCounters& c) {
  std::vector<std::uint64_t> v(kNodeCounterSlots, 0);
  v[kSlotSends] = c.sends;
  v[kSlotDelivered] = c.delivered;
  v[kSlotRetransmits] = c.retransmits;
  v[kSlotAcks] = c.acks;
  v[kSlotDedupSuppressed] = c.dedup_suppressed;
  v[kSlotAcksPiggybacked] = c.acks_piggybacked;
  v[kSlotHeartbeats] = c.heartbeats;
  v[kSlotSuspicions] = c.suspicions;
  v[kSlotFalseSuspicions] = c.false_suspicions;
  v[kSlotTrustRestores] = c.trust_restores;
  v[kSlotConnects] = c.connects;
  v[kSlotReconnects] = c.reconnects;
  v[kSlotHandshakeRejects] = c.handshake_rejects;
  v[kSlotFramesTx] = c.frames_tx;
  v[kSlotFramesRx] = c.frames_rx;
  v[kSlotCrcDrops] = c.crc_drops;
  v[kSlotWireResyncs] = c.wire_resyncs;
  v[kSlotWireDrops] = c.wire_drops;
  v[kSlotPartitionsEnforced] = c.partitions_enforced;
  v[kSlotWalReplayed] = c.wal_frames_replayed;
  v[kSlotSnapshotsWritten] = c.snapshots_written;
  v[kSlotSnapshotsLoaded] = c.snapshots_loaded;
  v[kSlotTornTails] = c.torn_tails_truncated;
  v[kSlotRecoveries] = c.recoveries_total;
  v[kSlotGroupCommits] = c.wal_group_commits;
  return v;
}

RuntimeCounters unpack_node_counters(const std::vector<std::uint64_t>& v) {
  RuntimeCounters c;
  auto at = [&v](std::size_t slot) -> std::size_t {
    return slot < v.size() ? static_cast<std::size_t>(v[slot]) : 0;
  };
  c.sends = at(kSlotSends);
  c.delivered = at(kSlotDelivered);
  c.retransmits = at(kSlotRetransmits);
  c.acks = at(kSlotAcks);
  c.dedup_suppressed = at(kSlotDedupSuppressed);
  c.acks_piggybacked = at(kSlotAcksPiggybacked);
  c.heartbeats = at(kSlotHeartbeats);
  c.suspicions = at(kSlotSuspicions);
  c.false_suspicions = at(kSlotFalseSuspicions);
  c.trust_restores = at(kSlotTrustRestores);
  c.connects = at(kSlotConnects);
  c.reconnects = at(kSlotReconnects);
  c.handshake_rejects = at(kSlotHandshakeRejects);
  c.frames_tx = at(kSlotFramesTx);
  c.frames_rx = at(kSlotFramesRx);
  c.crc_drops = at(kSlotCrcDrops);
  c.wire_resyncs = at(kSlotWireResyncs);
  c.wire_drops = at(kSlotWireDrops);
  c.partitions_enforced = at(kSlotPartitionsEnforced);
  c.wal_frames_replayed = at(kSlotWalReplayed);
  c.snapshots_written = at(kSlotSnapshotsWritten);
  c.snapshots_loaded = at(kSlotSnapshotsLoaded);
  c.torn_tails_truncated = at(kSlotTornTails);
  c.recoveries_total = at(kSlotRecoveries);
  c.wal_group_commits = at(kSlotGroupCommits);
  return c;
}

void fold_wire_counters(const WireCounters& w, RuntimeCounters* c) {
  c->connects += static_cast<std::size_t>(w.connects);
  c->reconnects += static_cast<std::size_t>(w.reconnects);
  c->handshake_rejects += static_cast<std::size_t>(w.handshake_rejects);
  c->frames_tx += static_cast<std::size_t>(w.frames_tx);
  c->frames_rx += static_cast<std::size_t>(w.frames_rx);
  c->crc_drops += static_cast<std::size_t>(w.crc_drops);
  c->wire_resyncs += static_cast<std::size_t>(w.resyncs);
  c->wire_drops += static_cast<std::size_t>(w.shim_drops);
  c->partitions_enforced += static_cast<std::size_t>(w.partitions_enforced);
}

namespace {

// Records one event: Lamport tick, durable append, in-memory mirror (the
// status scanner walks the mirror up to the store's durable floor).  Worker
// thread only — the reactor thread never records, it only enqueues mail.
class NodeRecorder {
 public:
  NodeRecorder(LamportClock& clock, ProcessStore& store,
               std::vector<Event>& mirror)
      : clock_(clock), store_(store), mirror_(mirror) {}

  // Returns the tick the event was recorded at; after the call,
  // mirror_len() is the durable-send gate for this event.
  Time record(const Event& e) {
    const Time t = clock_.tick();
    store_.append(t, e);
    mirror_.push_back(e);
    return t;
  }

  std::size_t mirror_len() const { return mirror_.size(); }

 private:
  LamportClock& clock_;
  ProcessStore& store_;
  std::vector<Event>& mirror_;
};

// The cross-process Env: record-then-transmit with the durable-send gate.
// Replay mode mirrors RtEnv's (rt/runtime.cc): sends are swallowed — peers'
// ARQ retransmissions regrow them — and performs re-record only what the
// recovered log does not already contain.
class NodeEnv final : public Env {
 public:
  NodeEnv(ProcessId self, int n, LamportClock& clock, NodeRecorder& rec,
          RemoteTransport& transport)
      : self_(self), n_(n), clock_(clock), rec_(rec), transport_(transport) {}

  void begin_replay(std::set<ActionId> already_performed) {
    live_ = false;
    wal_performed_ = std::move(already_performed);
  }
  void end_replay() { live_ = true; }

  ProcessId self() const override { return self_; }
  int n() const override { return n_; }
  Time now() const override { return clock_.now(); }

  void send(ProcessId to, const Message& msg) override {
    if (!live_) return;
    const Time tick = rec_.record(Event::send(to, msg));
    // Gate: this frame may not reach a socket until the store's durable
    // floor covers the kSend just appended.
    transport_.send(to, msg, tick, rec_.mirror_len());
  }

  void perform(ActionId alpha) override {
    if (!live_ && wal_performed_.count(alpha) > 0) return;
    rec_.record(Event::do_action(alpha));
  }

  bool outbox_empty() const override { return true; }
  std::size_t outbox_size() const override { return 0; }

 private:
  ProcessId self_;
  int n_;
  LamportClock& clock_;
  NodeRecorder& rec_;
  RemoteTransport& transport_;
  bool live_ = true;
  std::set<ActionId> wal_performed_;
};

FaultScript load_script(const std::string& path) {
  if (path.empty()) return {};
  std::ifstream in(path);
  UDC_CHECK(in.good(), "node: cannot open fault script file");
  std::ostringstream text;
  text << in.rdbuf();
  return FaultScript::parse(text.str());
}

// A partition window that cuts BOTH directions of the (self, peer) pair is
// lowered to a refuse window: the reactor tears the stream down and bounces
// the peer's handshake while the window is open.  One-directional windows
// stay in the drop shim (a live TCP stream that eats one direction).
bool bidirectional_cut(const FaultScript& script, ProcessId self,
                       ProcessId peer, Time now) {
  bool fwd = false;
  bool rev = false;
  for (const PartitionWindow& w : script.partitions) {
    if (now < w.from || now >= w.heal) continue;
    if (w.senders.contains(self) && w.recipients.contains(peer)) fwd = true;
    if (w.senders.contains(peer) && w.recipients.contains(self)) rev = true;
    if (fwd && rev) return true;
  }
  return false;
}

}  // namespace

int run_node(const NodeOptions& opts) {
  UDC_CHECK(opts.n >= 1 && opts.n <= kMaxProcesses, "node: bad n");
  UDC_CHECK(opts.id >= 0 && opts.id < opts.n, "node: bad process id");
  UDC_CHECK(opts.t >= 0 && opts.t < opts.n, "node: bad t");
  UDC_CHECK(opts.supervisor_port != 0, "node: bad supervisor port");
  UDC_CHECK(!opts.wal_dir.empty() &&
                std::filesystem::is_directory(opts.wal_dir),
            "node: wal dir missing");
  UDC_CHECK(opts.resend_interval >= 1, "node: bad resend interval");

  const FaultScript script = load_script(opts.script_file);

  // Durable state first: an epoch > 0 node recovers what its previous
  // incarnation managed to persist before the SIGKILL landed.
  ProcessStore store(opts.wal_dir, opts.id, opts.store, {});
  std::vector<Event> mirror;
  std::set<ActionId> my_inits;  // recorded (not necessarily durable) kInits
  std::set<ActionId> wal_performed;
  Time recovered_tick = 0;  // last recovered tick: logical time resumes past it
  if (opts.epoch > 0) {
    for (const StoreRecord& r : store.recover()) {
      mirror.push_back(r.e);
      if (r.t > recovered_tick) recovered_tick = r.t;
      if (r.e.kind == EventKind::kInit) my_inits.insert(r.e.action);
      if (r.e.kind == EventKind::kDo) wal_performed.insert(r.e.action);
    }
  }
  std::optional<GroupCommitter> committer;
  if (opts.store.group_commit) {
    committer.emplace(
        GroupCommitOptions{opts.store.barrier, opts.store.flusher_threads});
    committer->attach(&store);
  }

  LamportClock clock(recovered_tick);
  NodeRecorder rec(clock, store, mirror);

  Mailbox mailbox;
  AtomicRuntimeCounters atomic_counters;

  // --- wire plane -----------------------------------------------------------
  ReactorOptions ropts;
  ropts.self = opts.id;
  ropts.n = opts.n;
  ropts.epoch = opts.epoch;
  ropts.run_id = opts.run_id;
  ropts.seed = opts.seed ^ 0x77697265ull;  // "wire"
  std::atomic<bool> sup_up{false};
  std::atomic<bool> sup_ever_up{false};

  RemoteTransport* transport_ptr = nullptr;
  Reactor reactor(
      ropts,
      [&](ProcessId peer, std::uint64_t epoch, const WireFrame& f) {
        if (peer == kSupervisorPeer) {
          switch (f.type) {
            case FrameType::kInit: {
              if (auto i = decode_init(f.payload.data(), f.payload.size())) {
                RtMail m;
                m.kind = RtMail::Kind::kInit;
                m.action = i->action;
                mailbox.push(std::move(m));
              }
              break;
            }
            case FrameType::kStop: {
              RtMail m;
              m.kind = RtMail::Kind::kStop;
              mailbox.push(std::move(m));
              break;
            }
            case FrameType::kPeers: {
              if (auto p = decode_peers(f.payload.data(), f.payload.size())) {
                // One dialer per pair: we dial only peers below our id (we
                // accept the rest), so duplicate streams cannot arise.
                for (const auto& [pid, port] : p->ports) {
                  if (pid >= 0 && pid < opts.id && port != 0) {
                    reactor.set_endpoint(pid, port);
                  }
                }
              }
              break;
            }
            default:
              break;
          }
          return;
        }
        if (f.type == FrameType::kData) {
          if (auto d = decode_data(f.payload.data(), f.payload.size())) {
            transport_ptr->on_wire_data(peer, epoch, *d);
          }
        } else if (f.type == FrameType::kAck) {
          if (auto a = decode_ack(f.payload.data(), f.payload.size())) {
            transport_ptr->on_wire_ack(peer, *a);
          }
        }
      },
      [&](ProcessId peer, std::uint64_t /*epoch*/, bool up,
          std::uint16_t /*data_port*/) {
        if (peer == kSupervisorPeer) {
          sup_up.store(up, std::memory_order_relaxed);
          if (up) sup_ever_up.store(true, std::memory_order_relaxed);
        } else if (up) {
          // Reconnect-as-rejoin: the dead stream took in-flight frames with
          // it; re-arm every pending send for immediate retransmission.
          transport_ptr->on_peer_up(peer);
        }
      });

  // Chaos shim: scripted silences, partitions and bursts become real
  // socket-level drops, applied to outbound kData frames only (handshake,
  // keepalive and acks are infrastructure beneath the script's channels).
  ScriptDropPolicy drop_policy(script, opts.background_drop);
  Rng shim_rng(opts.seed ^ 0x7368696dull);  // "shim"
  reactor.set_shim([&](ProcessId peer, const WireFrame& f) {
    if (f.type != FrameType::kData || peer == kSupervisorPeer) return true;
    auto d = decode_data(f.payload.data(), f.payload.size());
    if (!d) return true;
    return !drop_policy.drop(opts.id, peer, d->msg, clock.now(), shim_rng);
  });

  const std::uint16_t data_port = reactor.listen(opts.data_port);
  (void)data_port;  // advertised automatically (hellos carry the bound port)

  RemoteTransport transport(
      opts.id, opts.n, opts.transport, reactor,
      [&store] { return store.durable_floor(); },
      [&clock] { return clock.now(); },
      [&clock](Time remote) { clock.observe(remote); },
      [&](ProcessId from, const Message& msg, Time send_tick) {
        RtMail m;
        m.kind = RtMail::Kind::kDeliver;
        m.from = from;
        m.msg = msg;
        m.send_tick = send_tick;
        mailbox.push(std::move(m));
      },
      atomic_counters, opts.seed);
  transport_ptr = &transport;

  reactor.set_endpoint(kSupervisorPeer, opts.supervisor_port);
  reactor.start();

  // --- protocol plane -------------------------------------------------------
  const ProtocolFactory factory =
      live_protocol_factory(opts.protocol, opts.t, opts.resend_interval);
  std::unique_ptr<Process> proto = factory(opts.id);
  NodeEnv env(opts.id, opts.n, clock, rec, transport);

  if (opts.epoch == 0) {
    proto->on_start(env);
  } else {
    // Replay the recovered prefix through a fresh protocol instance, then
    // tell every peer we restarted from a possibly lossy disk (kRejoin,
    // reliable but unrecorded) so they withdraw stale ack-state.
    env.begin_replay(wal_performed);
    proto->on_start(env);
    // Replay only the recovered prefix, by index and by copy: a replayed
    // handler may call env.perform (re-recording a kDo lost from the WAL
    // suffix), which appends to `mirror` and would invalidate range-for
    // iterators mid-loop.
    const std::size_t recovered = mirror.size();
    for (std::size_t i = 0; i < recovered; ++i) {
      const Event e = mirror[i];
      switch (e.kind) {
        case EventKind::kInit:
          proto->on_init(e.action, env);
          break;
        case EventKind::kRecv:
          proto->on_receive(e.peer, e.msg, env);
          break;
        case EventKind::kSuspect:
          proto->on_suspect(e.suspects, env);
          break;
        case EventKind::kSuspectGen:
          proto->on_suspect_gen(e.suspects, e.k, env);
          break;
        case EventKind::kSend:
        case EventKind::kDo:
        case EventKind::kCrash:
          break;
      }
    }
    env.end_replay();
    Message rejoin;
    rejoin.kind = MsgKind::kRejoin;
    for (ProcessId q = 0; q < opts.n; ++q) {
      if (q != opts.id) transport.send_control(q, rejoin);
    }
  }

  HeartbeatDetector detector(opts.n, opts.id, opts.heartbeat, clock.now());
  Message hb_msg;
  hb_msg.kind = MsgKind::kHeartbeat;
  Time next_hb = 0;

  // Refuse-window edge tracking, one flag per peer.
  std::vector<bool> refusing(static_cast<std::size_t>(opts.n), false);

  // Status plumbing: everything reported derives from the DURABLE prefix.
  std::set<ActionId> durable_inits;
  std::set<ActionId> durable_performs;
  std::size_t scanned = 0;
  auto send_status = [&](bool done) {
    const std::size_t floor = store.durable_floor();
    const std::size_t limit = std::min(floor, mirror.size());
    for (; scanned < limit; ++scanned) {
      const Event& e = mirror[scanned];
      if (e.kind == EventKind::kInit) durable_inits.insert(e.action);
      if (e.kind == EventKind::kDo) durable_performs.insert(e.action);
    }
    WireStatus s;
    s.id = opts.id;
    s.epoch = opts.epoch;
    s.clock = clock.now();
    s.durable_events = limit;
    s.inits.assign(durable_inits.begin(), durable_inits.end());
    s.performs.assign(durable_performs.begin(), durable_performs.end());
    RuntimeCounters rc = atomic_counters.snapshot();
    rc.suspicions = detector.suspicions_raised();
    rc.false_suspicions = detector.false_suspicions();
    rc.trust_restores = detector.trust_restores();
    fold_wire_counters(reactor.counters(), &rc);
    const StoreCounters sc = store.counters();
    rc.wal_frames_replayed = sc.wal_frames_replayed;
    rc.snapshots_written = sc.snapshots_written;
    rc.snapshots_loaded = sc.snapshots_loaded;
    rc.torn_tails_truncated = sc.torn_tails_truncated;
    rc.recoveries_total = sc.recoveries_total;
    rc.wal_group_commits = sc.group_commits;
    s.counters = pack_node_counters(rc);
    s.done = done;
    reactor.send(kSupervisorPeer, FrameType::kStatus, encode_status(s));
  };

  constexpr auto kStatusEvery = std::chrono::milliseconds(2);
  auto next_status = std::chrono::steady_clock::now();
  auto sup_down_since = std::chrono::steady_clock::now();
  bool stopping = false;
  int exit_code = 0;

  while (!stopping) {
    auto mail = mailbox.pop_for(std::chrono::microseconds(300));
    if (mail) {
      if (mail->kind == RtMail::Kind::kStop) {
        stopping = true;
      } else if (mail->kind == RtMail::Kind::kInit) {
        // The supervisor re-sends kInit until our status proves the init is
        // durable; dedupe against everything this node ever recorded (the
        // recovered prefix plus this incarnation).  An init the WAL LOST is
        // correctly absent here and re-records — the shard is the only
        // source for this node's events, so no duplicate can arise.
        if (my_inits.count(mail->action) == 0) {
          my_inits.insert(mail->action);
          rec.record(Event::init(mail->action));
          proto->on_init(mail->action, env);
        }
      } else if (mail->msg.kind == MsgKind::kHeartbeat) {
        detector.observe_heartbeat(mail->from, clock.now());
      } else if (mail->msg.kind == MsgKind::kRejoin) {
        proto->on_peer_recovered(mail->from, env);
      } else {
        const Time rt = rec.record(Event::recv(mail->from, mail->msg));
        // R3 over real sockets: the sender recorded its kSend at send_tick,
        // the envelope carried the sender's clock, observe() folded it in
        // before this mail was enqueued — so our recv tick must exceed it.
        UDC_CHECK(mail->send_tick == 0 || rt > mail->send_tick,
                  "node: recv tick did not exceed send tick (R3)");
        proto->on_receive(mail->from, mail->msg, env);
      }
    } else {
      // Idle: logical time advances anyway — heartbeat pacing, detector
      // timeouts and script windows are all measured in these ticks.
      clock.tick();
    }

    const Time now = clock.now();
    if (now >= next_hb) {
      for (ProcessId q = 0; q < opts.n; ++q) {
        if (q != opts.id) transport.send_heartbeat(q, hb_msg);
      }
      next_hb = now + opts.heartbeat.interval;
    }
    if (auto report = detector.poll(now)) {
      rec.record(Event::suspect(*report));
      proto->on_suspect(*report, env);
    }
    proto->on_tick(env);
    transport.pump();

    // Bidirectional partition windows become refuse windows: real stream
    // teardown plus handshake bounce for as long as the window is open.
    for (ProcessId q = 0; q < opts.n; ++q) {
      if (q == opts.id) continue;
      const bool cut = bidirectional_cut(script, opts.id, q, now);
      if (cut != refusing[static_cast<std::size_t>(q)]) {
        refusing[static_cast<std::size_t>(q)] = cut;
        reactor.set_refuse(q, cut);
      }
    }

    const auto wall = std::chrono::steady_clock::now();
    if (wall >= next_status) {
      if (sup_up.load(std::memory_order_relaxed)) send_status(false);
      next_status = wall + kStatusEvery;
    }

    // Orphan watchdog: a SIGKILLed supervisor must not leave this process
    // running forever.  The clock starts once we have connected at least
    // once (startup dialing is not orphanhood).
    if (sup_up.load(std::memory_order_relaxed) ||
        !sup_ever_up.load(std::memory_order_relaxed)) {
      sup_down_since = wall;
    } else if (wall - sup_down_since > opts.orphan_after) {
      stopping = true;
      exit_code = 3;
    }
  }

  // Orderly exit: make everything durable, report the final durable state
  // with done=true, give the frame a moment to drain, then tear down.
  if (committer) committer->stop();
  store.flush();
  if (exit_code == 0 && sup_up.load(std::memory_order_relaxed)) {
    send_status(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  reactor.stop();
  return exit_code;
}

}  // namespace udc
