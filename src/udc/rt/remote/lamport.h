// Lamport clock for the cross-process runtime.
//
// The in-process runtime had ONE shared atomic tick counter, so "time" was
// globally total by construction.  Across OS processes there is no shared
// counter; each node keeps a Lamport clock instead: every recorded event
// ticks it, and every received envelope carries the sender's clock, which
// the receiver folds in with a CAS-max BEFORE recording the receive.  That
// yields the one ordering property the lifted run needs — a kRecv's tick is
// strictly greater than the matching kSend's tick (R3) — and per-node ticks
// are strictly increasing, so each WAL shard is already in recorded order.
// The fleet's merge sorts shards by (tick, process) and renumbers into
// globally unique steps; Lamport's happened-before guarantees the sort never
// places a receive at or before its send.
#pragma once

#include <atomic>

#include "udc/common/types.h"

namespace udc {

class LamportClock {
 public:
  explicit LamportClock(Time start = 0) : t_(start) {}

  // Next event tick: strictly increasing per node.
  Time tick() { return t_.fetch_add(1, std::memory_order_relaxed) + 1; }

  Time now() const { return t_.load(std::memory_order_relaxed); }

  // Folds a remote clock value in: after observe(c), the next tick() exceeds
  // c.  Called with the envelope's clock rider before the receive is
  // recorded, from the reactor thread (hence the CAS loop).
  void observe(Time remote) {
    Time cur = t_.load(std::memory_order_relaxed);
    while (remote > cur &&
           !t_.compare_exchange_weak(cur, remote, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<Time> t_;
};

}  // namespace udc
