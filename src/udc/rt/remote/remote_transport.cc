#include "udc/rt/remote/remote_transport.h"

#include "udc/common/check.h"

namespace udc {

RemoteTransport::RemoteTransport(ProcessId self, int n,
                                 RemoteTransportOptions opts, Reactor& reactor,
                                 std::function<std::size_t()> durable_floor,
                                 std::function<Time()> clock_now,
                                 std::function<void(Time)> clock_observe,
                                 DeliverFn deliver,
                                 AtomicRuntimeCounters& counters,
                                 std::uint64_t seed)
    : self_(self),
      n_(n),
      opts_(opts),
      reactor_(reactor),
      durable_floor_(std::move(durable_floor)),
      clock_now_(std::move(clock_now)),
      clock_observe_(std::move(clock_observe)),
      deliver_(std::move(deliver)),
      counters_(counters),
      rng_(seed ^ 0x72656d6f7465ull) {  // "remote"
  UDC_CHECK(opts_.dedup_window >= 1, "remote transport: bad dedup window");
}

void RemoteTransport::send(ProcessId to, const Message& msg, Time send_tick,
                           std::size_t gate) {
  counters_.add(counters_.sends);
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t seq = ++next_seq_[to];
  PendingSend ps;
  ps.msg = msg;
  ps.send_tick = send_tick;
  ps.gate = gate;
  pending_[to].emplace(seq, std::move(ps));
  // Not transmitted here: pump() releases it once the kSend is durable.
}

void RemoteTransport::send_control(ProcessId to, const Message& msg) {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t seq = ++next_seq_[to];
  PendingSend ps;
  ps.msg = msg;
  ps.send_tick = 0;
  ps.gate = 0;  // ungated: transmits on the next pump
  pending_[to].emplace(seq, std::move(ps));
}

void RemoteTransport::send_heartbeat(ProcessId to, const Message& msg) {
  counters_.add(counters_.heartbeats);
  WireData d;
  d.from = self_;
  d.to = to;
  d.seq = 0;
  d.send_tick = 0;
  d.clock = clock_now_();
  d.msg = msg;
  {
    std::lock_guard<std::mutex> lk(mu_);
    d.acks = take_owed_locked(to);
    if (!d.acks.empty()) {
      counters_.add(counters_.acks_piggybacked, d.acks.size());
    }
  }
  reactor_.send(to, FrameType::kData, encode_data(d));
}

void RemoteTransport::on_wire_data(ProcessId peer, std::uint64_t epoch,
                                   const WireData& d) {
  if (d.to != self_ || d.from != peer) return;  // misrouted: drop
  clock_observe_(d.clock);

  bool fresh = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Fold piggybacked acks: each retires a pending send of ours.
    if (!d.acks.empty()) {
      auto pit = pending_.find(peer);
      if (pit != pending_.end()) {
        for (std::uint64_t s : d.acks) {
          if (pit->second.erase(s) > 0) counters_.add(counters_.acks);
        }
      }
    }
    if (d.seq == 0) {
      fresh = true;  // below the model: no dedup, no ack owed
    } else {
      PeerChannel& ch = chan_[peer];
      if (!ch.epoch_known || ch.epoch != epoch) {
        // New incarnation of the peer: its seq space restarted, so stale
        // dedup state would wrongly swallow its fresh traffic.
        ch = PeerChannel{};
        ch.epoch = epoch;
        ch.epoch_known = true;
      }
      if (d.seq <= ch.watermark || ch.seen.count(d.seq) > 0) {
        counters_.add(counters_.dedup_suppressed);
      } else {
        fresh = true;
        if (d.seq == ch.watermark + 1) {
          ++ch.watermark;
          while (!ch.seen.empty() &&
                 *ch.seen.begin() == ch.watermark + 1) {
            ch.seen.erase(ch.seen.begin());
            ++ch.watermark;
          }
        } else {
          ch.seen.insert(d.seq);
          if (ch.seen.size() > opts_.dedup_window) {
            // Overflow folds into the watermark: every seq at or below the
            // new watermark is treated as seen.  Any genuinely unseen seq
            // swallowed this way is channel loss; the protocol layer
            // retransmits under a fresh wire seq.
            ch.watermark = *ch.seen.rbegin();
            ch.seen.clear();
          }
        }
      }
      // Ack even duplicates — the sender keeps retrying until it hears one.
      ch.owed_acks.push_back(d.seq);
    }
  }
  if (fresh) {
    counters_.add(counters_.delivered);
    deliver_(peer, d.msg, d.send_tick);
  }
}

void RemoteTransport::on_wire_ack(ProcessId peer, const WireAck& a) {
  if (a.to != self_ || a.from != peer) return;
  std::lock_guard<std::mutex> lk(mu_);
  auto pit = pending_.find(peer);
  if (pit == pending_.end()) return;
  for (std::uint64_t s : a.seqs) {
    if (pit->second.erase(s) > 0) counters_.add(counters_.acks);
  }
}

void RemoteTransport::on_peer_up(ProcessId peer) {
  // The dead stream took whatever was in flight with it; re-teach now
  // rather than waiting out each send's backoff.
  auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lk(mu_);
  auto pit = pending_.find(peer);
  if (pit == pending_.end()) return;
  for (auto& [seq, ps] : pit->second) {
    if (ps.released) ps.next_at = now;
  }
}

void RemoteTransport::transmit_locked(ProcessId to, std::uint64_t seq,
                                      PendingSend& ps) {
  WireData d;
  d.from = self_;
  d.to = to;
  d.seq = seq;
  d.send_tick = ps.send_tick;
  d.clock = clock_now_();
  d.msg = ps.msg;
  d.acks = take_owed_locked(to);
  if (!d.acks.empty()) {
    counters_.add(counters_.acks_piggybacked, d.acks.size());
  }
  reactor_.send(to, FrameType::kData, encode_data(d));
  if (ps.released) counters_.add(counters_.retransmits);
  ps.released = true;
  ps.next_at = std::chrono::steady_clock::now() +
               std::chrono::microseconds(backoff_delay_jittered(
                   opts_.backoff, ps.attempt, rng_));
  ++ps.attempt;
}

std::vector<std::uint64_t> RemoteTransport::take_owed_locked(ProcessId peer) {
  auto cit = chan_.find(peer);
  if (cit == chan_.end() || cit->second.owed_acks.empty()) return {};
  std::vector<std::uint64_t> owed;
  owed.swap(cit->second.owed_acks);
  return owed;
}

void RemoteTransport::pump() {
  const std::size_t floor = durable_floor_();
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [to, sends] : pending_) {
    for (auto& [seq, ps] : sends) {
      if (!ps.released) {
        if (ps.gate <= floor) transmit_locked(to, seq, ps);
      } else if (now >= ps.next_at) {
        transmit_locked(to, seq, ps);
      }
    }
  }
  // Owed acks with no reverse data to ride: flush as standalone batches.
  for (auto& [peer, ch] : chan_) {
    if (ch.owed_acks.empty()) continue;
    WireAck a;
    a.from = self_;
    a.to = peer;
    a.seqs.swap(ch.owed_acks);
    reactor_.send(peer, FrameType::kAck, encode_ack(a));
  }
}

std::size_t RemoteTransport::pending_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t k = 0;
  for (const auto& [to, sends] : pending_) k += sends.size();
  return k;
}

}  // namespace udc
