// run_node: one process of the paper's model as one OS process.
//
// The in-process runtime's worker thread becomes a real process: a Mailbox
// fed by an epoll reactor instead of a shared-memory transport, a protocol
// instance from the same registry, a HeartbeatDetector observing heartbeat
// frames off real sockets, and a ProcessStore WAL that IS the node's trace
// shard — every recorded event is durably appended, the supervisor later
// recovers each shard and merges them into one Run for the DC1-DC3/FD
// checkers.  Logical time is a Lamport clock (remote/lamport.h): ticked per
// event, bumped once per idle loop iteration (the same role the in-process
// supervisor's rec.bump() played), and folded in from every received
// envelope.
//
// Lifecycle: dial the supervisor (handshake carries id + epoch + run id),
// learn the peer directory from kPeers frames, dial peers with smaller ids,
// accept the rest.  Epoch 0 starts fresh; epoch > 0 means this is a
// relaunch after a real SIGKILL — recover the durable prefix from the WAL,
// replay it through a fresh protocol instance (exactly worker_main's replay
// branch), then broadcast the kRejoin beacon so peers withdraw ack-state the
// disk may have forgotten.  Status frames report ONLY durable state (inits,
// performs, clock, counters): anything less durable could un-happen at the
// next kill, and the supervisor's board must never know something no disk
// remembers.
//
// A node whose supervisor stream stays down past `orphan_after` exits with
// code 3: a SIGKILLed supervisor must not leave the fleet running forever.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "udc/common/types.h"
#include "udc/coord/metrics.h"
#include "udc/fd/heartbeat.h"
#include "udc/net/reactor.h"
#include "udc/rt/remote/remote_transport.h"
#include "udc/rt/runtime.h"
#include "udc/store/process_store.h"

namespace udc {

// Store layout shared by nodes (writing) and the fleet merge (recovering):
// both sides MUST construct ProcessStore with the same options or recovery
// reads the wrong layout.  Tighter commit pacing than the in-process
// default because the durable-send gate puts the group-commit interval on
// the protocol's critical path.
inline StoreOptions mp_store_options() {
  StoreOptions s = rt_default_store_options();
  s.commit_every = 64;
  s.commit_interval = std::chrono::microseconds{1'000};
  s.snapshot_every = 512;
  return s;
}

// Fixed slot order for WireStatus::counters — the node packs, the
// supervisor unpacks; both sides compile against this enum so the wire
// stays in sync by construction.
enum NodeCounterSlot : std::size_t {
  kSlotSends = 0,
  kSlotDelivered,
  kSlotRetransmits,
  kSlotAcks,
  kSlotDedupSuppressed,
  kSlotAcksPiggybacked,
  kSlotHeartbeats,
  kSlotSuspicions,
  kSlotFalseSuspicions,
  kSlotTrustRestores,
  kSlotConnects,
  kSlotReconnects,
  kSlotHandshakeRejects,
  kSlotFramesTx,
  kSlotFramesRx,
  kSlotCrcDrops,
  kSlotWireResyncs,
  kSlotWireDrops,
  kSlotPartitionsEnforced,
  kSlotWalReplayed,
  kSlotSnapshotsWritten,
  kSlotSnapshotsLoaded,
  kSlotTornTails,
  kSlotRecoveries,
  kSlotGroupCommits,
  kNodeCounterSlots,
};

std::vector<std::uint64_t> pack_node_counters(const RuntimeCounters& c);
RuntimeCounters unpack_node_counters(const std::vector<std::uint64_t>& v);

// Folds the reactor's wire-plane tallies into the shared counter struct.
void fold_wire_counters(const WireCounters& w, RuntimeCounters* c);

struct NodeOptions {
  ProcessId id = kInvalidProcess;
  int n = 0;
  int t = 0;
  std::string protocol = "strongfd";
  Time resend_interval = 64;
  HeartbeatOptions heartbeat{/*interval=*/24, /*initial_timeout=*/240,
                             /*timeout_backoff=*/2.0, /*max_timeout=*/4096};
  std::uint64_t epoch = 0;   // incarnation; > 0 recovers from the WAL
  std::uint64_t run_id = 0;  // handshake guard: one fleet, one run id
  std::uint16_t supervisor_port = 0;
  std::uint16_t data_port = 0;  // 0 = ephemeral (the normal case)
  std::string wal_dir;          // must already exist
  std::string script_file;      // chaos script lowered at this node ("" = none)
  double background_drop = 0.0;
  std::uint64_t seed = 1;
  StoreOptions store = mp_store_options();
  RemoteTransportOptions transport{};
  std::chrono::milliseconds orphan_after{2'000};
};

// Runs the node until the supervisor says kStop (returns 0) or the
// supervisor stream stays down past orphan_after (returns 3).  Throws
// InvariantViolation for malformed options or an unbindable data port.
int run_node(const NodeOptions& opts);

}  // namespace udc
