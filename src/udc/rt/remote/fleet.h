// run_fleet: the cross-process supervisor — real processes, real SIGKILL,
// and a lifted Run assembled from the survivors' disks.
//
// The in-process runtime (rt/runtime.h) shares one address space: its
// "crash" is a joined thread and its trace recorder sees every event.  The
// fleet shares NOTHING with its nodes but a run directory and a TCP port.
// It forks one udc_rt_node per process, hands each the chaos script, drives
// the workload over the control connection (kInit frames, re-sent until the
// node's durable status proves the init stuck), and lowers the script's
// crash injections to actual `kill(pid, SIGKILL)` — no flushing, no
// goodbye, the kernel reclaims the sockets mid-frame.  Restartable victims
// are re-exec'd with epoch+1 against the same WAL directory and recover the
// paper's way: replay the durable prefix, broadcast kRejoin, let the ARQ
// re-teach the lost suffix.
//
// When the fleet quiesces (or the deadline trips), the supervisor owns the
// only copy of the truth that matters: each node's WAL shard.  It recovers
// every shard with the same ProcessStore recovery the nodes use, merges the
// records by (Lamport tick, process id) — the clock rider guarantees every
// receive sorts strictly after its send — renumbers them one event per
// Builder step, synthesizes the trailing kCrash for permanently killed
// victims (R4), and pushes the lifted Run through the EXISTING DC1-DC3 /
// FD-property checkers.  The conformance claim is the same as run_live's,
// one level harder: a fleet of OS processes killed mid-execution is still a
// run of the paper's model.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "udc/chaos/fault_script.h"
#include "udc/common/budget.h"
#include "udc/common/types.h"
#include "udc/coord/metrics.h"
#include "udc/coord/spec.h"
#include "udc/event/run.h"
#include "udc/fd/heartbeat.h"
#include "udc/fd/properties.h"
#include "udc/rt/remote/node.h"
#include "udc/sim/context.h"

namespace udc {

struct FleetOptions {
  int n = 3;
  int t = 1;
  std::string protocol = "strongfd";
  std::vector<InitDirective> workload;  // `at` in logical (Lamport) ticks
  FaultScript script;                   // sanitized internally
  double background_drop = 0.0;
  std::uint64_t seed = 1;

  Time resend_interval = 64;
  HeartbeatOptions heartbeat{/*interval=*/24, /*initial_timeout=*/240,
                             /*timeout_backoff=*/2.0, /*max_timeout=*/4096};

  // Scripted crashes: SIGKILL, then either permanent (verdict checks DC2 /
  // UDC) or re-exec'd with epoch+1 after `restart_after` ticks (DC2' /
  // nUDC).
  bool restartable_crashes = false;
  Time restart_after = 600;

  // SIGKILL these processes the moment their status reports a DURABLE
  // perform — the kill lands after do_p(alpha) survives any crash, which is
  // exactly the Table-1 dagger construction's timing.  Subject to
  // restartable_crashes like any other kill.
  std::vector<ProcessId> kill_after_perform;
  // With kill_after_perform active the run usually CANNOT complete (that is
  // the point); once every listed victim is dead, wait this long for the
  // survivors' state to settle, then stop and lift what happened.
  std::chrono::milliseconds settle_after_kills{1'500};

  // Scratch directory for this run: WAL shards, the lowered script file,
  // per-node logs.  Created if missing; expected fresh per run.
  std::string run_dir;
  // The udc_rt_node executable to exec.
  std::string node_binary;

  StoreOptions store = mp_store_options();
  Time grace = 0;  // spec-check grace for the lifted run
  std::chrono::milliseconds deadline{20'000};
};

struct FleetVerdict {
  BudgetStatus status = BudgetStatus::kComplete;
  std::optional<Run> run;  // merged from the WAL shards
  std::vector<ActionId> actions;
  CoordReport coord;  // DC2 variant per restartable_crashes (UDC vs nUDC)
  FdPropertyReport fd;
  EventualAccuracyReport accuracy;
  RuntimeCounters counters;

  // Every node exited how the supervisor told it to (0, or SIGKILL we
  // sent).  An unexpected exit code / signal is an infrastructure failure
  // even when the lifted run still checks out.
  bool clean_exits = true;

  bool conformant = false;
};

// Forks the fleet, drives it, merges the shards, checks the lifted run.
// Throws InvariantViolation for malformed options (bad n/t, missing node
// binary); everything fault-induced is reported through the verdict.
FleetVerdict run_fleet(const FleetOptions& opts);

}  // namespace udc
