// run_live: the paper's model, executed by real threads, then re-checked
// against itself.
//
// Each of the n processes is a worker thread: a Mailbox, a protocol instance
// from the same registry the simulator uses (unmodified — Env is the
// entire seam), and a HeartbeatDetector whose suspect stream replaces the
// simulator's FdOracle.  An RtTransport carries messages under a chaos
// DropPolicy; a TraceRecorder serializes every observable event; a
// supervisor (the calling thread) drives the logical clock, injects the
// workload and the fault script, restarts crashed workers, and detects
// completion.  The lifted Run then goes through the EXISTING spec.h and
// fd/properties.h checkers — the conformance claim is precisely that a
// concurrent execution of udckit is a run of the paper's model.
//
// Crash semantics, and why restarts preserve uniformity (DC2/DC2'):
//   * permanent crash — the recorder seals the process (R4: kCrash is its
//     last event); the transport abandons traffic toward it.  DC clauses
//     excuse it via their crash(q) disjuncts.
//   * restartable crash — NO kCrash is recorded (in the lifted run the
//     process is merely silent for a while, exactly the paper's reading of
//     a process that crashes and recovers with its state intact).  The
//     worker is torn down, its queued mail is lost, and after
//     `restart_after` ticks a fresh worker replays the process's recorded
//     history — the trace doubles as a write-ahead log — through a fresh
//     protocol instance, reconstructing its pre-crash protocol state.
//     Because the replayed state includes every do_p the process already
//     performed, a restart can never un-perform an action, so uniformity
//     is preserved by construction and re-verified by the checker.
//   * durable restart (`durable_dir` non-empty) — the write-ahead log moves
//     to DISK: every recorded event is mirrored into a per-process
//     store/ProcessStore (CRC-framed WAL + rotated snapshots), scripted
//     StorageFaults corrupt it at kill time, and the restarted worker
//     replays snapshot + repaired WAL tail instead of the in-memory trace.
//     Whatever the disk lost is a suffix of the process's history; the
//     recovery protocol re-learns it: the supervisor re-injects inits the
//     disk forgot (board vs. log diff), and the restarted worker broadcasts
//     a below-model kRejoin beacon so peers withdraw acks they hold from it
//     (see Process::on_peer_recovered) and retransmission re-teaches the
//     rest.  DC2' is then re-proven on the lifted run, not assumed.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "udc/chaos/fault_script.h"
#include "udc/common/budget.h"
#include "udc/common/types.h"
#include "udc/coord/metrics.h"
#include "udc/coord/spec.h"
#include "udc/event/run.h"
#include "udc/fd/heartbeat.h"
#include "udc/fd/properties.h"
#include "udc/rt/transport.h"
#include "udc/sim/context.h"
#include "udc/sim/process.h"
#include "udc/store/process_store.h"

namespace udc {

// StoreOptions for the live runtime: identical to the store default except
// that group commit is ON (the standalone store tests exercise the inline
// fsync policies; the runtime's hot path should not pay per-append fsyncs).
inline StoreOptions rt_default_store_options() {
  // The shipping durable path (DESIGN.md §11): group commit over a
  // segmented, preallocated WAL with ring-staged appends.  Appends are two
  // memcpys into a fixed slot; the committer drains each store with one
  // gathered write and batches every store's fdatasync through one
  // SyncBarrier round (io_uring when the kernel grants it).  commit_every /
  // commit_interval are sized so a saturated store contributes roughly one
  // barrier round per ~1k events instead of per 32.
  StoreOptions s;
  s.group_commit = true;
  s.segment_bytes = 256 * 1024;
  s.ring_frames = 4096;
  s.commit_every = 1024;
  s.commit_interval = std::chrono::microseconds{5'000};
  s.snapshot_every = 1024;
  // Measured choice, not a fallback: at n=8 the final-commit phase costs
  // ~106ns of process CPU per event through the pinned pool vs ~122-131
  // through io_uring on the reference box (EXPERIMENTS.md) — the kernel
  // punts fsync to io-wq threads either way, so batching the submissions
  // buys nothing and the per-round worker churn costs more than four
  // parked flushers.  kAuto / kUring stay available where that flips.
  s.barrier = CommitBarrier::kPool;
  return s;
}

struct RtOptions {
  int n = 4;
  int t = 1;  // failure bound: sanitize_for_live caps scripted crashes at t
  // Protocol under test, by chaos-registry name.  Any protocol driven by
  // standard suspect reports works; "strongfd" and "majority" are the
  // conformance-tested ones (the generalized (S,k) family needs a
  // generalized detector, which the heartbeat module does not emit).
  std::string protocol = "strongfd";
  std::vector<InitDirective> workload;  // `at` in logical ticks
  FaultScript script;                   // sanitized internally
  double background_drop = 0.05;
  std::uint64_t seed = 1;

  HeartbeatOptions heartbeat{/*interval=*/24, /*initial_timeout=*/240,
                             /*timeout_backoff=*/2.0, /*max_timeout=*/4096};
  RtTransportOptions transport{};
  // Protocol retransmission pacing, in logical ticks.  Coarser than the
  // simulator's default: every protocol-level resend is a recorded send,
  // and R3 validation on the lifted run is quadratic in per-channel
  // duplicates of one message value.
  Time resend_interval = 64;
  Time grace = 0;  // spec-check grace for the lifted run

  // Restartable crashes: scripted crashes take the worker down for
  // `restart_after` ticks instead of sealing it; the supervisor restarts it
  // from the write-ahead log and the verdict checks DC2' (nUDC).  With
  // false, crashes are permanent and the verdict checks DC2 (UDC).
  bool restartable_crashes = false;
  Time restart_after = 600;

  // Durable restarts: when non-empty, each process keeps a disk WAL +
  // snapshots under this directory (created if missing; expected fresh per
  // run) and restartable crashes recover FROM DISK under the script's
  // StorageFaults instead of from the in-memory trace.  Ignored when
  // restartable_crashes is false.
  //
  // Live runs default to GROUP COMMIT (DESIGN.md §10): appends never fsync
  // inline; a background flusher batches the barriers, and seal/teardown
  // force a final flush.  Set store.group_commit = false to get the PR 4
  // inline-fsync path (the recovery soak cycles both).
  std::string durable_dir;
  StoreOptions store = rt_default_store_options();

  // Wall-clock envelope.  A budget without a deadline gets
  // `default_deadline` so a wedged live run can never hang the caller;
  // tripping either bound yields a kBudgetExceeded partial verdict.
  Budget budget;
  std::chrono::milliseconds default_deadline{10'000};
  std::size_t max_events = 250'000;
};

struct RtVerdict {
  BudgetStatus status = BudgetStatus::kComplete;
  std::optional<Run> run;  // the lifted trace (present even on budget trips)
  std::vector<ActionId> actions;
  CoordReport coord;  // DC2 variant per restartable_crashes (UDC vs nUDC)
  FdPropertyReport fd;
  EventualAccuracyReport accuracy;
  RuntimeCounters counters;

  // Completed within budget AND the lifted run passes DC1-DC3.
  bool conformant = false;
};

// Clamps a chaos script to something a live run can survive: crash victims
// deduped and capped at t, unbounded partition heals / silence and burst
// ends clamped to begin + window_cap ticks (a live run cannot wait for
// "never"), references to processes >= n dropped, lie directives dropped
// (there is no lying oracle below a real heartbeat detector).
FaultScript sanitize_for_live(const FaultScript& script, int n, int t,
                              Time window_cap = 2'000);

// Protocol registry for live runs: "strongfd" and "majority" get the coarser
// RT retransmission pacing; anything else resolves through the chaos
// registry.  Shared by run_live and the cross-process node (rt/remote).
ProtocolFactory live_protocol_factory(const std::string& name, int t,
                                      Time resend_interval);

// Executes the live system and returns the checked verdict.  Throws
// InvariantViolation only for malformed options; fault-induced misbehavior
// is reported through the verdict, and budget exhaustion through status.
RtVerdict run_live(const RtOptions& opts);

}  // namespace udc
